package gist_test

// Compile-time API compatibility: every public symbol of the facade, old
// and new, pinned to its exact signature. A refactor that renames, retypes
// or drops any of these fails this file's compilation — the facade's
// stability contract.

import (
	"gist"
	"gist/internal/train"
)

// Pre-Trainer surface (the planning facade), pinned as it shipped.
var (
	_ func() *gist.Graph                                                              = gist.NewGraph
	_ func(gist.Request) (*gist.Plan, error)                                          = gist.Build
	_ func(gist.Request) *gist.Plan                                                   = gist.MustBuild
	_ func() gist.Config                                                              = gist.Lossless
	_ func(gist.Format) gist.Config                                                   = gist.LossyLossless
	_ func() gist.Device                                                              = gist.TitanX
	_ func(gist.Device, func(int) *gist.Graph, gist.Config, int) int                  = gist.LargestFittingMinibatch
	_ func(int) *gist.Graph                                                           = gist.AlexNet
	_ func(int) *gist.Graph                                                           = gist.NiN
	_ func(int) *gist.Graph                                                           = gist.Overfeat
	_ func(int) *gist.Graph                                                           = gist.VGG16
	_ func(int) *gist.Graph                                                           = gist.Inception
	_ func(int) *gist.Graph                                                           = gist.ResNet50
	_ func(int, int) *gist.Graph                                                      = gist.ResNetCIFAR
	_ [4]gist.Format                                                                  = [...]gist.Format{gist.FP32, gist.FP16, gist.FP10, gist.FP8}
	_ [2]int                                                                          = [...]int{int(gist.StaticAllocation), int(gist.DynamicAllocation)}
	_ *gist.Node                                                                      = (*gist.Node)(nil)
)

// Trainer surface added by the pooling redesign.
var (
	_ func(int, int) *gist.Graph                                                      = gist.TinyCNN
	_ func(int, int) *gist.Graph                                                      = gist.TinyVGG
	_ func(...int) *gist.Tensor                                                       = gist.NewTensor
	_ func(int, int, int, float64, uint64) *gist.Dataset                              = gist.NewDataset
	_ func() *gist.Telemetry                                                          = gist.NewTelemetry
	_ func() *gist.BufferPool                                                         = gist.NewBufferPool
	_ func() *gist.BufferPool                                                         = gist.SharedBufferPool
	_ func(*gist.Graph, ...gist.TrainerOption) *gist.Trainer                          = gist.NewTrainer
	_ func(uint64) gist.TrainerOption                                                 = gist.WithSeed
	_ func(gist.Config) gist.TrainerOption                                            = gist.WithEncodings
	_ func() gist.TrainerOption                                                       = gist.WithIntegrity
	_ func(int) gist.TrainerOption                                                    = gist.WithParallelism
	_ func(*gist.Telemetry) gist.TrainerOption                                        = gist.WithTelemetry
	_ func(...*gist.BufferPool) gist.TrainerOption                                    = gist.WithPooling
	_ func(gist.FaultConfig) gist.TrainerOption                                       = gist.WithFaults
	_ func(*gist.Trainer, *gist.Tensor, []int, float32) (float64, int, error)         = (*gist.Trainer).Step
	_ func(*gist.Trainer, *gist.Tensor, []int) (float64, int)                         = (*gist.Trainer).Eval
	_ func(*gist.Trainer, *gist.Dataset, gist.RunConfig) []gist.Record                = (*gist.Trainer).Run
	_ func(*gist.Trainer) *train.Executor                                             = (*gist.Trainer).Executor
	_ func(*gist.Trainer) *gist.Telemetry                                             = (*gist.Trainer).Telemetry
	_ func(*gist.Trainer) gist.PoolStats                                              = (*gist.Trainer).PoolStats
)
