// Package encoding implements Gist's three layer-specific encodings as
// graph-level analyses plus runtime kernels:
//
//   - Binarize (lossless): for ReLU layers all of whose backward-pass
//     readers are MaxPool layers, the stashed ReLU output is replaced by a
//     1-bit positive mask (32x) and each MaxPool consumer's stashed
//     input/output pair is replaced by a 4-bit Y-to-X argmax map (8x).
//   - SSDC (lossless): for ReLU (or ReLU-fed Pool) outputs read by
//     convolution-like backward passes, the stash is stored in narrow-CSR
//     between its uses and decoded to dense FP32 just before the backward
//     use.
//   - DPR (lossy): every remaining stashed feature map is reduced to
//     FP16/FP10/FP8 after its last forward use; SSDC value arrays are
//     DPR-compressed too, while all control metadata (CSR indices, Binarize
//     masks, argmax maps) stays exact.
//
// Analyze inspects a graph and assigns at most one technique to every
// stashed feature map; the liveness and memory-planning packages consume
// the assignments, and the training executor runs the matching kernels.
package encoding

import (
	"fmt"
	"math"

	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/sparse"
)

// Technique identifies which Gist encoding a stashed feature map uses.
type Technique int

// Techniques, in priority order.
const (
	None Technique = iota
	Binarize
	SSDC
	DPR
)

// String returns the paper's name for the technique.
func (t Technique) String() string {
	switch t {
	case None:
		return "None"
	case Binarize:
		return "Binarize"
	case SSDC:
		return "SSDC"
	case DPR:
		return "DPR"
	}
	return fmt.Sprintf("Technique(%d)", int(t))
}

// Config selects which encodings the Schedule Builder may apply.
type Config struct {
	// Binarize enables the 1-bit ReLU-Pool encoding.
	Binarize bool
	// SSDC enables sparse storage for ReLU-Conv / Pool-Conv stashes.
	SSDC bool
	// DPR, when not FP32, applies delayed precision reduction at the given
	// format to all remaining stashes and to SSDC value arrays.
	DPR floatenc.Format
	// Inplace enables ReLU inplace computation (an optimization for
	// immediately consumed data, not an encoding, but applied by the same
	// Schedule Builder pass).
	Inplace bool
	// FCIsConvLike treats fully connected layers like convolutions for
	// SSDC purposes (their backward passes read X identically). The
	// paper's taxonomy names only convolution; default matches it.
	FCIsConvLike bool
	// Sparsity predicts the zero fraction of a node's output at planning
	// time. Nil uses DefaultSparsity.
	Sparsity func(n *graph.Node) float64
}

// Lossless is the paper's "lossless" configuration: Binarize + SSDC +
// inplace.
func Lossless() Config {
	return Config{Binarize: true, SSDC: true, DPR: floatenc.FP32, Inplace: true}
}

// LossyLossless is lossless plus DPR at the given format — the paper's
// full "Gist" configuration.
func LossyLossless(f floatenc.Format) Config {
	c := Lossless()
	c.DPR = f
	return c
}

// DefaultReLUSparsity is the planning-time zero-fraction assumed for ReLU
// outputs when no measured value is available. The paper reports ReLU
// sparsity typically in the 50-90% band (over 80% for VGG16); 0.7 is the
// middle of that band and is calibrated against the paper's end-to-end MFR.
const DefaultReLUSparsity = 0.7

// DefaultSparsity models output sparsity by kind: ReLU outputs use
// DefaultReLUSparsity; a MaxPool output keeps a zero only when its whole
// window is zero, so its sparsity is the input sparsity raised to the
// window size; everything else is dense.
func DefaultSparsity(n *graph.Node) float64 {
	switch n.Kind() {
	case layers.ReLU:
		return DefaultReLUSparsity
	case layers.MaxPool:
		if len(n.Inputs) == 1 && n.Inputs[0].Kind() == layers.ReLU {
			p := n.Op.(*layers.MaxPoolOp)
			return math.Pow(DefaultReLUSparsity, float64(p.K*p.K))
		}
	}
	return 0
}

// Assignment records the encoding chosen for one stashed feature map.
type Assignment struct {
	Node *graph.Node
	Tech Technique
	// Format is the DPR format applied to the stash (FP32 when DPR is off;
	// for SSDC it compresses only the CSR value array).
	Format floatenc.Format
	// Sparsity is the planning-time zero fraction used for SSDC sizing.
	Sparsity float64
	// EncodedBytes is the size of the encoded representation stashed
	// between the two uses.
	EncodedBytes int64
	// NeedsDecode reports whether a transient FP32 staging buffer is
	// materialized before the backward use (true for SSDC and DPR; false
	// for Binarize, whose backward kernels consume the mask directly).
	NeedsDecode bool
}

// Analysis is the output of the Gist static analysis over one graph.
type Analysis struct {
	Graph  *graph.Graph
	Config Config
	// ByNode maps node ID to the assignment for that node's stashed
	// output feature map. Only stashed outputs appear.
	ByNode map[int]*Assignment
	// PoolMaps lists MaxPool nodes whose stashed X/Y pair was replaced by
	// a 4-bit argmax map (the Binarize pool-side rewrite).
	PoolMaps map[int]int64 // pool node ID -> argmax map bytes
	// effectiveNeeds overrides op Needs for rewritten backward passes.
	effectiveNeeds map[int]layers.BackwardNeeds
}

// EffectiveNeeds returns the backward-pass stash requirements of node n
// after Gist's rewrites (a Binarize-optimized MaxPool no longer needs X or
// Y).
func (a *Analysis) EffectiveNeeds(n *graph.Node) layers.BackwardNeeds {
	if needs, ok := a.effectiveNeeds[n.ID]; ok {
		return needs
	}
	return n.Op.Needs()
}

// OutputStashed reports whether node n's output feature map still has a
// backward-pass reader under the effective needs.
func (a *Analysis) OutputStashed(n *graph.Node) bool {
	if a.EffectiveNeeds(n).Y {
		return true
	}
	for _, c := range n.Consumers() {
		if a.EffectiveNeeds(c).X {
			return true
		}
	}
	return false
}

// convLike reports whether a node's backward pass reads its input as dense
// values (the condition that rules out Binarize and invites SSDC).
func convLike(cfg Config, k layers.Kind) bool {
	if k == layers.Conv {
		return true
	}
	return cfg.FCIsConvLike && k == layers.FC
}

// Analyze runs the Gist pattern analysis over the graph and assigns an
// encoding to every stashed feature map permitted by the configuration.
func Analyze(g *graph.Graph, cfg Config) *Analysis {
	if cfg.Sparsity == nil {
		cfg.Sparsity = DefaultSparsity
	}
	a := &Analysis{
		Graph:          g,
		Config:         cfg,
		ByNode:         map[int]*Assignment{},
		PoolMaps:       map[int]int64{},
		effectiveNeeds: map[int]layers.BackwardNeeds{},
	}

	// Pass 1 — the MaxPool rewrite: the paper's optimized pool backward
	// uses a 4-bit Y-to-X argmax map recorded in the forward pass instead
	// of rescanning its stashed input and output (Section IV-A), removing
	// the pool's X and Y dependence for every MaxPool in the graph.
	if cfg.Binarize {
		for _, n := range g.Nodes {
			if n.Kind() != layers.MaxPool {
				continue
			}
			a.PoolMaps[n.ID] = argmaxMapBytes(n.OutShape.NumElements())
			a.effectiveNeeds[n.ID] = layers.BackwardNeeds{}
		}
	}

	// Pass 2 — Binarize: with pools rewritten, a ReLU none of whose
	// remaining backward readers needs dense X values keeps only its own
	// sign dependence, which the 1-bit mask serves (32x).
	if cfg.Binarize {
		for _, n := range g.Nodes {
			if n.Kind() != layers.ReLU || len(n.Consumers()) == 0 {
				continue
			}
			ok := true
			for _, c := range n.Consumers() {
				if a.EffectiveNeeds(c).X {
					ok = false
				}
			}
			if !ok {
				continue
			}
			elems := n.OutShape.NumElements()
			if binarizeMaskBytes(elems) >= n.OutShape.Bytes() {
				continue // sub-word stash: the mask would not shrink it
			}
			a.ByNode[n.ID] = &Assignment{
				Node:         n,
				Tech:         Binarize,
				Format:       floatenc.FP32,
				EncodedBytes: binarizeMaskBytes(elems),
			}
			a.effectiveNeeds[n.ID] = layers.BackwardNeeds{} // Y served by the mask
		}
	}

	// Pass 3 — SSDC: ReLU or (ReLU-fed) MaxPool outputs whose backward
	// readers include a convolution and whose predicted sparsity clears
	// the narrow-CSR break-even point.
	if cfg.SSDC {
		for _, n := range g.Nodes {
			if _, done := a.ByNode[n.ID]; done {
				continue
			}
			isReLU := n.Kind() == layers.ReLU
			isPoolAfterReLU := n.Kind() == layers.MaxPool &&
				len(n.Inputs) == 1 && n.Inputs[0].Kind() == layers.ReLU
			if !isReLU && !isPoolAfterReLU {
				continue
			}
			if !a.OutputStashed(n) {
				continue
			}
			feedsConv := false
			for _, c := range n.Consumers() {
				if convLike(cfg, c.Kind()) && c.Op.Needs().X {
					feedsConv = true
				}
			}
			if !feedsConv {
				continue
			}
			s := cfg.Sparsity(n)
			if s < sparse.BreakEvenSparsity(1) {
				continue // narrow CSR would not compress
			}
			elems := n.OutShape.NumElements()
			enc := ssdcBytes(elems, s, cfg.DPR)
			if enc >= n.OutShape.Bytes() {
				// Tiny stashes lose to CSR's fixed row-pointer overhead;
				// leave them for DPR.
				continue
			}
			a.ByNode[n.ID] = &Assignment{
				Node:         n,
				Tech:         SSDC,
				Format:       cfg.DPR,
				Sparsity:     s,
				EncodedBytes: enc,
				NeedsDecode:  true,
			}
		}
	}

	// Pass 4 — DPR: every remaining stashed feature map.
	if cfg.DPR != floatenc.FP32 {
		for _, n := range g.Nodes {
			if _, done := a.ByNode[n.ID]; done {
				continue
			}
			if !a.OutputStashed(n) {
				continue
			}
			elems := n.OutShape.NumElements()
			a.ByNode[n.ID] = &Assignment{
				Node:         n,
				Tech:         DPR,
				Format:       cfg.DPR,
				EncodedBytes: cfg.DPR.PackedBytes(elems),
				NeedsDecode:  true,
			}
		}
	}
	return a
}

// binarizeMaskBytes is the packed size of a 1-bit mask over n elements.
func binarizeMaskBytes(n int) int64 {
	return int64((n+63)/64) * 8
}

// argmaxMapBytes is the packed size of a 4-bit argmax map over n pool
// outputs.
func argmaxMapBytes(n int) int64 {
	return int64((n+7)/8) * 4
}

// ssdcBytes models the narrow-CSR footprint of an n-element stash at the
// given sparsity, with the value array optionally DPR-compressed.
func ssdcBytes(n int, sparsity float64, f floatenc.Format) int64 {
	base := sparse.CSRBytesModel(n, sparsity)
	if f == floatenc.FP32 {
		return base
	}
	nnz := int64(float64(n)*(1-sparsity) + 0.5)
	valueSavings := nnz*4 - f.PackedBytes(int(nnz))
	return base - valueSavings
}

// CompressionRatio returns FP32 bytes over encoded bytes for the
// assignment's stash.
func (as *Assignment) CompressionRatio() float64 {
	fp32 := as.Node.OutShape.Bytes()
	return float64(fp32) / float64(as.EncodedBytes)
}
