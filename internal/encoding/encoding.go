// Package encoding implements Gist's three layer-specific encodings as
// graph-level analyses plus runtime kernels:
//
//   - Binarize (lossless): for ReLU layers all of whose backward-pass
//     readers are MaxPool layers, the stashed ReLU output is replaced by a
//     1-bit positive mask (32x) and each MaxPool consumer's stashed
//     input/output pair is replaced by a 4-bit Y-to-X argmax map (8x).
//   - SSDC (lossless): for ReLU (or ReLU-fed Pool) outputs read by
//     convolution-like backward passes, the stash is stored in narrow-CSR
//     between its uses and decoded to dense FP32 just before the backward
//     use.
//   - DPR (lossy): every remaining stashed feature map is reduced to
//     FP16/FP10/FP8 after its last forward use; SSDC value arrays are
//     DPR-compressed too, while all control metadata (CSR indices, Binarize
//     masks, argmax maps) stays exact.
//
// Analyze inspects a graph and assigns at most one technique to every
// stashed feature map; the liveness and memory-planning packages consume
// the assignments, and the training executor runs the matching kernels.
package encoding

import (
	"fmt"
	"math"
	"sort"

	"gist/internal/entropy"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/sparse"
)

// Technique identifies which Gist encoding a stashed feature map uses.
type Technique int

// Techniques, in priority order. Binarize/SSDC/DPR are the paper's three
// encodings; ZVC (zero-value compression: nonzero bitmask + compacted
// values) and Entropy (zero-run-length + Huffman over the packed bytes)
// are the lossless tier layered on top, selectable per layer by the
// adaptive planner.
const (
	None Technique = iota
	Binarize
	SSDC
	DPR
	ZVC
	Entropy
)

// String returns the paper's name for the technique, resolved through the
// technique registry.
func (t Technique) String() string {
	if t == None {
		return "None"
	}
	if impl, ok := techImpl(t); ok {
		return impl.name()
	}
	return fmt.Sprintf("Technique(%d)", int(t))
}

// Config selects which encodings the Schedule Builder may apply.
type Config struct {
	// Binarize enables the 1-bit ReLU-Pool encoding.
	Binarize bool
	// SSDC enables sparse storage for ReLU-Conv / Pool-Conv stashes.
	SSDC bool
	// DPR, when not FP32, applies delayed precision reduction at the given
	// format to all remaining stashes and to SSDC value arrays.
	DPR floatenc.Format
	// ZVC enables zero-value compression (nonzero bitmask + compacted
	// values) for sparse stashes SSDC did not claim.
	ZVC bool
	// Entropy enables the generic ZRL+Huffman stage over packed stash
	// bytes — the expensive, highest-ratio lossless tier.
	Entropy bool
	// AdaptiveSet, when non-empty, replaces the fixed SSDC/ZVC/Entropy
	// priority passes with per-layer minimum-predicted-bytes selection
	// among the listed techniques; the runner-up techniques become the
	// assignment's runtime fallback chain. Binarize still runs first (it
	// rewrites backward needs, which runtime selection cannot), and DPR in
	// the set means "dense packed" as a selectable terminal.
	AdaptiveSet []Technique
	// Inplace enables ReLU inplace computation (an optimization for
	// immediately consumed data, not an encoding, but applied by the same
	// Schedule Builder pass).
	Inplace bool
	// FCIsConvLike treats fully connected layers like convolutions for
	// SSDC purposes (their backward passes read X identically). The
	// paper's taxonomy names only convolution; default matches it.
	FCIsConvLike bool
	// Sparsity predicts the zero fraction of a node's output at planning
	// time. Nil uses DefaultSparsity.
	Sparsity func(n *graph.Node) float64
}

// WithTechnique returns a copy of the configuration narrowed to one
// technique: every technique selection is cleared, then only the named
// technique's pass is re-enabled. DPR keeps the configured format but
// defaults to FP16 when the base left precision reduction off (a DPR
// selection that reduced nothing would be a no-op); None turns every
// encoding off. The consolidated -technique flags resolve through this.
func (c Config) WithTechnique(t Technique) Config {
	c.Binarize, c.SSDC, c.ZVC, c.Entropy, c.AdaptiveSet = false, false, false, false, nil
	switch t {
	case Binarize:
		c.Binarize = true
	case SSDC:
		c.SSDC = true
	case ZVC:
		c.ZVC = true
	case Entropy:
		c.Entropy = true
	case DPR:
		if c.DPR == floatenc.FP32 {
			c.DPR = floatenc.FP16
		}
	case None:
		c.DPR = floatenc.FP32
		c.Inplace = false
	}
	return c
}

// Enabled reports whether the configuration selects any encoding, rewrite
// or adaptive set at all (the zero Config is the no-encoding baseline).
func (c Config) Enabled() bool {
	return c.Binarize || c.SSDC || c.ZVC || c.Entropy || c.Inplace ||
		c.DPR != floatenc.FP32 || len(c.AdaptiveSet) > 0
}

// AdaptiveAll is the full lossless-tier adaptive set the consolidated
// -technique flags name "adaptive": per-layer minimum-predicted-bytes
// selection among SSDC, ZVC, Entropy and dense DPR.
func AdaptiveAll() []Technique { return []Technique{SSDC, ZVC, Entropy, DPR} }

// Lossless is the paper's "lossless" configuration: Binarize + SSDC +
// inplace.
func Lossless() Config {
	return Config{Binarize: true, SSDC: true, DPR: floatenc.FP32, Inplace: true}
}

// LossyLossless is lossless plus DPR at the given format — the paper's
// full "Gist" configuration.
func LossyLossless(f floatenc.Format) Config {
	c := Lossless()
	c.DPR = f
	return c
}

// DefaultReLUSparsity is the planning-time zero-fraction assumed for ReLU
// outputs when no measured value is available. The paper reports ReLU
// sparsity typically in the 50-90% band (over 80% for VGG16); 0.7 is the
// middle of that band and is calibrated against the paper's end-to-end MFR.
const DefaultReLUSparsity = 0.7

// DefaultSparsity models output sparsity by kind: ReLU outputs use
// DefaultReLUSparsity; a MaxPool output keeps a zero only when its whole
// window is zero, so its sparsity is the input sparsity raised to the
// window size; everything else is dense.
func DefaultSparsity(n *graph.Node) float64 {
	switch n.Kind() {
	case layers.ReLU:
		return DefaultReLUSparsity
	case layers.MaxPool:
		if len(n.Inputs) == 1 && n.Inputs[0].Kind() == layers.ReLU {
			p := n.Op.(*layers.MaxPoolOp)
			return math.Pow(DefaultReLUSparsity, float64(p.K*p.K))
		}
	}
	return 0
}

// Assignment records the encoding chosen for one stashed feature map.
type Assignment struct {
	Node *graph.Node
	Tech Technique
	// Format is the DPR format applied to the stash (FP32 when DPR is off;
	// for SSDC it compresses only the CSR value array).
	Format floatenc.Format
	// Sparsity is the planning-time zero fraction used for SSDC sizing.
	Sparsity float64
	// EncodedBytes is the size of the encoded representation stashed
	// between the two uses.
	EncodedBytes int64
	// NeedsDecode reports whether a transient FP32 staging buffer is
	// materialized before the backward use (true for SSDC, ZVC, Entropy
	// and DPR; false for Binarize, whose backward kernels consume the mask
	// directly).
	NeedsDecode bool
	// Fallbacks is the runtime degradation chain for adaptive encoding:
	// when the primary technique's cost guard fires (runtime sparsity
	// defeated the plan), these techniques are tried in order before the
	// dense DPR terminal. Populated by adaptive-set planning; empty
	// otherwise.
	Fallbacks []Technique
}

// Analysis is the output of the Gist static analysis over one graph.
type Analysis struct {
	Graph  *graph.Graph
	Config Config
	// ByNode maps node ID to the assignment for that node's stashed
	// output feature map. Only stashed outputs appear.
	ByNode map[int]*Assignment
	// PoolMaps lists MaxPool nodes whose stashed X/Y pair was replaced by
	// a 4-bit argmax map (the Binarize pool-side rewrite).
	PoolMaps map[int]int64 // pool node ID -> argmax map bytes
	// effectiveNeeds overrides op Needs for rewritten backward passes.
	effectiveNeeds map[int]layers.BackwardNeeds
}

// EffectiveNeeds returns the backward-pass stash requirements of node n
// after Gist's rewrites (a Binarize-optimized MaxPool no longer needs X or
// Y).
func (a *Analysis) EffectiveNeeds(n *graph.Node) layers.BackwardNeeds {
	if needs, ok := a.effectiveNeeds[n.ID]; ok {
		return needs
	}
	return n.Op.Needs()
}

// OutputStashed reports whether node n's output feature map still has a
// backward-pass reader under the effective needs.
func (a *Analysis) OutputStashed(n *graph.Node) bool {
	if a.EffectiveNeeds(n).Y {
		return true
	}
	for _, c := range n.Consumers() {
		if a.EffectiveNeeds(c).X {
			return true
		}
	}
	return false
}

// convLike reports whether a node's backward pass reads its input as dense
// values (the condition that rules out Binarize and invites SSDC).
func convLike(cfg Config, k layers.Kind) bool {
	if k == layers.Conv {
		return true
	}
	return cfg.FCIsConvLike && k == layers.FC
}

// sparseStash reports whether node n's output carries a ReLU-induced zero
// pattern (a ReLU, or a MaxPool fed directly by one) — the precondition
// for the sparsity-exploiting encodings.
func sparseStash(n *graph.Node) bool {
	if n.Kind() == layers.ReLU {
		return true
	}
	return n.Kind() == layers.MaxPool && len(n.Inputs) == 1 && n.Inputs[0].Kind() == layers.ReLU
}

// adaptiveEligible reports whether the technique can serve node n's stash
// at planning time; the runtime cost guards still apply at encode.
func adaptiveEligible(cfg Config, n *graph.Node, tech Technique, s float64) bool {
	switch tech {
	case SSDC:
		if !sparseStash(n) || s < sparse.BreakEvenSparsity(1) {
			return false
		}
		for _, c := range n.Consumers() {
			if convLike(cfg, c.Kind()) && c.Op.Needs().X {
				return true
			}
		}
		return false
	case ZVC:
		return sparseStash(n)
	case Entropy:
		return true
	case DPR:
		return cfg.DPR != floatenc.FP32
	default:
		// Binarize rewrites backward needs in its own pass; None and
		// unknown techniques are never adaptive candidates.
		return false
	}
}

// runtimeFallback reports whether the technique's encoder carries a cost
// guard and so can be retried at runtime (dense DPR always succeeds;
// Binarize needs the analysis rewrite and cannot be chosen after the fact).
func runtimeFallback(t Technique) bool {
	return t == SSDC || t == ZVC || t == Entropy
}

// Analyze runs the Gist pattern analysis over the graph and assigns an
// encoding to every stashed feature map permitted by the configuration.
func Analyze(g *graph.Graph, cfg Config) *Analysis {
	if cfg.Sparsity == nil {
		cfg.Sparsity = DefaultSparsity
	}
	a := &Analysis{
		Graph:          g,
		Config:         cfg,
		ByNode:         map[int]*Assignment{},
		PoolMaps:       map[int]int64{},
		effectiveNeeds: map[int]layers.BackwardNeeds{},
	}

	// Pass 1 — the MaxPool rewrite: the paper's optimized pool backward
	// uses a 4-bit Y-to-X argmax map recorded in the forward pass instead
	// of rescanning its stashed input and output (Section IV-A), removing
	// the pool's X and Y dependence for every MaxPool in the graph.
	if cfg.Binarize {
		for _, n := range g.Nodes {
			if n.Kind() != layers.MaxPool {
				continue
			}
			a.PoolMaps[n.ID] = argmaxMapBytes(n.OutShape.NumElements())
			a.effectiveNeeds[n.ID] = layers.BackwardNeeds{}
		}
	}

	// Pass 2 — Binarize: with pools rewritten, a ReLU none of whose
	// remaining backward readers needs dense X values keeps only its own
	// sign dependence, which the 1-bit mask serves (32x).
	if cfg.Binarize {
		for _, n := range g.Nodes {
			if n.Kind() != layers.ReLU || len(n.Consumers()) == 0 {
				continue
			}
			ok := true
			for _, c := range n.Consumers() {
				if a.EffectiveNeeds(c).X {
					ok = false
				}
			}
			if !ok {
				continue
			}
			elems := n.OutShape.NumElements()
			if binarizeMaskBytes(elems) >= n.OutShape.Bytes() {
				continue // sub-word stash: the mask would not shrink it
			}
			a.ByNode[n.ID] = &Assignment{
				Node:         n,
				Tech:         Binarize,
				Format:       floatenc.FP32,
				EncodedBytes: binarizeMaskBytes(elems),
			}
			a.effectiveNeeds[n.ID] = layers.BackwardNeeds{} // Y served by the mask
		}
	}

	// Pass 3a — adaptive selection: when an adaptive set is configured it
	// replaces the fixed SSDC/ZVC/Entropy priority passes below. Each
	// stashed node gets the minimum-predicted-bytes eligible technique;
	// the beaten runtime-retryable candidates become the fallback chain,
	// ordered by predicted size, so the encoder degrades along the
	// planner's own ranking when the runtime zero pattern disappoints.
	if len(cfg.AdaptiveSet) > 0 {
		for _, n := range g.Nodes {
			if _, done := a.ByNode[n.ID]; done {
				continue
			}
			if !a.OutputStashed(n) {
				continue
			}
			s := cfg.Sparsity(n)
			elems := n.OutShape.NumElements()
			type candidate struct {
				tech  Technique
				bytes int64
			}
			var cands []candidate
			for _, tech := range cfg.AdaptiveSet {
				if !adaptiveEligible(cfg, n, tech, s) {
					continue
				}
				b := PlanBytes(tech, elems, s, cfg.DPR)
				if b >= n.OutShape.Bytes() {
					continue // would not beat the raw FP32 stash
				}
				cands = append(cands, candidate{tech, b})
			}
			if len(cands) == 0 {
				continue // pass 4 may still DPR it
			}
			sort.SliceStable(cands, func(i, j int) bool { return cands[i].bytes < cands[j].bytes })
			var fbs []Technique
			for _, c := range cands[1:] {
				if runtimeFallback(c.tech) {
					fbs = append(fbs, c.tech)
				}
			}
			a.ByNode[n.ID] = &Assignment{
				Node:         n,
				Tech:         cands[0].tech,
				Format:       cfg.DPR,
				Sparsity:     s,
				EncodedBytes: cands[0].bytes,
				NeedsDecode:  true,
				Fallbacks:    fbs,
			}
		}
	}

	// Pass 3 — SSDC: ReLU or (ReLU-fed) MaxPool outputs whose backward
	// readers include a convolution and whose predicted sparsity clears
	// the narrow-CSR break-even point.
	if cfg.SSDC {
		for _, n := range g.Nodes {
			if _, done := a.ByNode[n.ID]; done {
				continue
			}
			isReLU := n.Kind() == layers.ReLU
			isPoolAfterReLU := n.Kind() == layers.MaxPool &&
				len(n.Inputs) == 1 && n.Inputs[0].Kind() == layers.ReLU
			if !isReLU && !isPoolAfterReLU {
				continue
			}
			if !a.OutputStashed(n) {
				continue
			}
			feedsConv := false
			for _, c := range n.Consumers() {
				if convLike(cfg, c.Kind()) && c.Op.Needs().X {
					feedsConv = true
				}
			}
			if !feedsConv {
				continue
			}
			s := cfg.Sparsity(n)
			if s < sparse.BreakEvenSparsity(1) {
				continue // narrow CSR would not compress
			}
			elems := n.OutShape.NumElements()
			enc := ssdcBytes(elems, s, cfg.DPR)
			if enc >= n.OutShape.Bytes() {
				// Tiny stashes lose to CSR's fixed row-pointer overhead;
				// leave them for DPR.
				continue
			}
			a.ByNode[n.ID] = &Assignment{
				Node:         n,
				Tech:         SSDC,
				Format:       cfg.DPR,
				Sparsity:     s,
				EncodedBytes: enc,
				NeedsDecode:  true,
			}
		}
	}

	// Pass 3b — ZVC: sparse stashes SSDC did not claim (any backward
	// reader qualifies — ZVC decodes to dense for whoever reads it) whose
	// predicted footprint beats the dense alternative at the same format.
	if cfg.ZVC {
		for _, n := range g.Nodes {
			if _, done := a.ByNode[n.ID]; done {
				continue
			}
			if !sparseStash(n) || !a.OutputStashed(n) {
				continue
			}
			s := cfg.Sparsity(n)
			elems := n.OutShape.NumElements()
			enc := zvcBytes(elems, s, cfg.DPR)
			if enc >= cfg.DPR.PackedBytes(elems) {
				continue // the dense (possibly DPR-packed) stash is smaller
			}
			a.ByNode[n.ID] = &Assignment{
				Node:         n,
				Tech:         ZVC,
				Format:       cfg.DPR,
				Sparsity:     s,
				EncodedBytes: enc,
				NeedsDecode:  true,
			}
		}
	}

	// Pass 3c — Entropy: any remaining stash whose predicted ZRL+Huffman
	// stream beats the dense alternative. Nothing structural rules the
	// generic stage out; the cost model's heavy compute charge is what
	// keeps it from being picked when speed matters.
	if cfg.Entropy {
		for _, n := range g.Nodes {
			if _, done := a.ByNode[n.ID]; done {
				continue
			}
			if !a.OutputStashed(n) {
				continue
			}
			s := cfg.Sparsity(n)
			elems := n.OutShape.NumElements()
			enc := entropyBytes(elems, s, cfg.DPR)
			if enc >= cfg.DPR.PackedBytes(elems) {
				continue
			}
			a.ByNode[n.ID] = &Assignment{
				Node:         n,
				Tech:         Entropy,
				Format:       cfg.DPR,
				Sparsity:     s,
				EncodedBytes: enc,
				NeedsDecode:  true,
			}
		}
	}

	// Pass 4 — DPR: every remaining stashed feature map.
	if cfg.DPR != floatenc.FP32 {
		for _, n := range g.Nodes {
			if _, done := a.ByNode[n.ID]; done {
				continue
			}
			if !a.OutputStashed(n) {
				continue
			}
			elems := n.OutShape.NumElements()
			a.ByNode[n.ID] = &Assignment{
				Node:         n,
				Tech:         DPR,
				Format:       cfg.DPR,
				EncodedBytes: cfg.DPR.PackedBytes(elems),
				NeedsDecode:  true,
			}
		}
	}
	return a
}

// binarizeMaskBytes is the packed size of a 1-bit mask over n elements.
func binarizeMaskBytes(n int) int64 {
	return int64((n+63)/64) * 8
}

// argmaxMapBytes is the packed size of a 4-bit argmax map over n pool
// outputs.
func argmaxMapBytes(n int) int64 {
	return int64((n+7)/8) * 4
}

// ssdcBytes models the narrow-CSR footprint of an n-element stash at the
// given sparsity, with the value array optionally DPR-compressed.
func ssdcBytes(n int, sparsity float64, f floatenc.Format) int64 {
	base := sparse.CSRBytesModel(n, sparsity)
	if f == floatenc.FP32 {
		return base
	}
	nnz := int64(float64(n)*(1-sparsity) + 0.5)
	valueSavings := nnz*4 - f.PackedBytes(int(nnz))
	return base - valueSavings
}

// zvcBytes models the ZVC footprint of an n-element stash at the given
// sparsity: the 1-bit nonzero mask plus the surviving values, credited at
// the packed DPR width when a format is layered on.
func zvcBytes(n int, sparsity float64, f floatenc.Format) int64 {
	nnz := int(float64(n)*(1-sparsity) + 0.5)
	return binarizeMaskBytes(n) + f.PackedBytes(nnz)
}

// entropyBytes models the ZRL+Huffman stream over the packed bytes of an
// n-element stash. Zero elements become zero bytes (≈2 bytes per 255-byte
// run); nonzero bytes stay literals with a mild Huffman gain (7/8); each
// chunk pays the fixed code-table overhead plus its block-length slot.
func entropyBytes(n int, sparsity float64, f floatenc.Format) int64 {
	if n == 0 {
		return 0
	}
	packed := float64(f.PackedBytes(n))
	zeros := packed * sparsity
	lits := packed - zeros
	nc := int64((n + DefaultChunkElems - 1) / DefaultChunkElems)
	return int64(lits*7/8+zeros/255*2+0.5) + nc*int64(entropy.TableBytes+4)
}

// CompressionRatio returns FP32 bytes over encoded bytes for the
// assignment's stash.
func (as *Assignment) CompressionRatio() float64 {
	fp32 := as.Node.OutShape.Bytes()
	return float64(fp32) / float64(as.EncodedBytes)
}
