package encoding

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"gist/internal/entropy"
	"gist/internal/floatenc"
	"gist/internal/tensor"
)

// entropyTech is the generic entropy backend: the stash is DPR-packed
// (raw FP32 words when the format is FP32) and each chunk's packed bytes
// run through a zero-run-length + canonical-Huffman stage
// (internal/entropy). It compresses anything with a skewed byte histogram
// — sparse activations above all — without assuming a zero pattern the
// way ZVC and SSDC do, at a much higher compute cost per byte. Chunks
// compress independently, so encode and decode parallelize and the stream
// layout is a pure function of the data and chunk size.

// EntropyPayload is the held entropy-coded representation.
type EntropyPayload struct {
	// Format is the DPR format of the packed bytes under the entropy
	// stage (FP32 = raw words).
	Format floatenc.Format
	// N is the element count.
	N int
	// Lens holds each chunk's compressed block length; the blocks sit
	// back to back in Stream in chunk order.
	Lens []uint32
	// Stream is the concatenated entropy blocks — the corruption surface
	// FlipBit addresses.
	Stream []byte

	// scratch keeps the encode-side packed container alive across steps
	// so the pooled re-encode path stops allocating it.
	scratch *floatenc.Packed
}

// Bytes is the payload's storage footprint (stream plus block table).
func (p *EntropyPayload) Bytes() int64 {
	return int64(len(p.Stream)) + int64(len(p.Lens))*4
}

type entropyTech struct{}

func init() { registerTechnique(Entropy, entropyTech{}) }

func (entropyTech) name() string     { return "Entropy" }
func (entropyTech) wireVersion() int { return 2 }

func (entropyTech) encodeInto(cdc Codec, e *EncodedStash, as *Assignment, t *tensor.Tensor) error {
	if e.Ent == nil {
		e.Ent = &EntropyPayload{}
	}
	p := e.Ent
	n := len(t.Data)
	p.Format = as.Format
	p.N = n
	p.scratch = cdc.encodePackedInto(p.scratch, as.Format, t.Data)
	words := p.scratch.Words
	ce := cdc.chunkElems()
	nc := 0
	if n > 0 {
		nc = (n + ce - 1) / ce
	}
	vpw := as.Format.ValuesPerWord()
	blocks := make([][]byte, nc)
	cdc.Tel.Counter("codec.chunks").Add(int64(nc))
	cdc.pool().ForEach(nc, func(c int) {
		lo, hi := c*ce, min((c+1)*ce, n)
		w0, w1 := lo/vpw, (hi+vpw-1)/vpw
		src := make([]byte, (w1-w0)*4)
		for i := w0; i < w1; i++ {
			binary.LittleEndian.PutUint32(src[(i-w0)*4:], words[i])
		}
		blocks[c] = entropy.Encode(nil, src)
	})
	p.Lens = p.Lens[:0]
	p.Stream = p.Stream[:0]
	for _, b := range blocks {
		p.Lens = append(p.Lens, uint32(len(b)))
		p.Stream = append(p.Stream, b...)
	}
	if dense := as.Format.PackedBytes(n); p.Bytes() >= dense {
		return errEntropyLargerThanDense
	}
	return nil
}

func (entropyTech) decodeInto(cdc Codec, out *tensor.Tensor, e *EncodedStash) error {
	p := e.Ent
	if p == nil || p.N != len(out.Data) {
		return fmt.Errorf("%w: entropy payload over %d elements, shape %v", ErrShapeMismatch, entN(p), e.Shape)
	}
	vpw, ok := packedValuesPerWord(p.Format)
	if !ok {
		return fmt.Errorf("%w: unknown packed format %d", ErrCorruptStash, int(p.Format))
	}
	n := p.N
	// The block layout is fixed by the stash's encode-time chunk size,
	// not the decoding codec's.
	ce := normalizeChunkElems(e.ChunkElems)
	nc := 0
	if n > 0 {
		nc = (n + ce - 1) / ce
	}
	if len(p.Lens) != nc {
		return fmt.Errorf("%w: %d entropy blocks for %d chunks", ErrCorruptStash, len(p.Lens), nc)
	}
	offs := make([]int, nc+1)
	for c, l := range p.Lens {
		offs[c+1] = offs[c] + int(l)
	}
	if offs[nc] != len(p.Stream) {
		return fmt.Errorf("%w: entropy blocks total %d bytes, stream has %d", ErrCorruptStash, offs[nc], len(p.Stream))
	}
	pk := &floatenc.Packed{Format: p.Format, N: n, Words: make([]uint32, (n+vpw-1)/vpw)}
	errs := make([]error, nc)
	cdc.Tel.Counter("codec.chunks").Add(int64(nc))
	cdc.pool().ForEach(nc, func(c int) {
		lo, hi := c*ce, min((c+1)*ce, n)
		w0, w1 := lo/vpw, (hi+vpw-1)/vpw
		raw := make([]byte, (w1-w0)*4)
		if err := entropy.Decode(raw, p.Stream[offs[c]:offs[c+1]]); err != nil {
			errs[c] = err
			return
		}
		for i := w0; i < w1; i++ {
			pk.Words[i] = binary.LittleEndian.Uint32(raw[(i-w0)*4:])
		}
		pk.DecodeRange(out.Data, lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorruptStash, err)
		}
	}
	return nil
}

// entN is the nil-tolerant element count for error messages.
func entN(p *EntropyPayload) int {
	if p == nil {
		return 0
	}
	return p.N
}

func (entropyTech) payloadElems(e *EncodedStash) int {
	if e.Ent != nil {
		return e.Ent.N
	}
	return 0
}

func (entropyTech) bytes(e *EncodedStash) int64 { return e.Ent.Bytes() }

func (entropyTech) payloadBits(e *EncodedStash) int { return len(e.Ent.Stream) * 8 }

func (entropyTech) flipBit(e *EncodedStash, i int) {
	e.Ent.Stream[i/8] ^= 1 << (uint(i) % 8)
}

func (entropyTech) chunkOfBit(e *EncodedStash, i, ce, nc int) int {
	b := i / 8
	off := 0
	for c, l := range e.Ent.Lens {
		off += int(l)
		if b < off {
			return c
		}
	}
	return clampChunk(nc-1, nc)
}

func (entropyTech) chunkSpanBytes(e *EncodedStash, elemLo, elemHi int) (int64, int64) {
	ce := normalizeChunkElems(e.ChunkElems)
	c := elemLo / ce
	if c >= len(e.Ent.Lens) {
		return -1, -1
	}
	off := int64(0)
	for i := 0; i < c; i++ {
		off += int64(e.Ent.Lens[i])
	}
	return off, off + int64(e.Ent.Lens[c])
}

func (entropyTech) checksumPayload(e *EncodedStash, w *crcWriter) {
	p := e.Ent
	w.u32(uint32(p.Format))
	w.u32(uint32(p.N))
	w.u32(uint32(len(p.Lens)))
	for _, l := range p.Lens {
		w.u32(l)
	}
	w.raw(p.Stream)
}

// entMetaCRC continues a running CRC over the payload metadata exactly as
// checksumPayload orders it (format, element count, block table) — the
// extended header piece of the chunked roll-up. Keeping the metadata out
// of PayloadBits means fault injection only ever lands in Stream, so the
// chunk layout survives every flip and attribution stays exact.
func entMetaCRC(crc uint32, p *EntropyPayload) uint32 {
	var buf [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:], v)
		crc = crc32.Update(crc, crcTable, buf[:])
	}
	put(uint32(p.Format))
	put(uint32(p.N))
	put(uint32(len(p.Lens)))
	for _, l := range p.Lens {
		put(l)
	}
	return crc
}

func (entropyTech) chunkChecksums(cdc Codec, e *EncodedStash, ce int, hcrc uint32) (full uint32, chunks []uint32, ok bool) {
	p := e.Ent
	if p == nil {
		return 0, nil, false
	}
	n := p.N
	if n == 0 {
		if len(p.Lens) != 0 || len(p.Stream) != 0 {
			return 0, nil, false
		}
		return entMetaCRC(hcrc, p), nil, true
	}
	nc := (n + ce - 1) / ce
	if len(p.Lens) != nc {
		return 0, nil, false
	}
	offs := make([]int, nc+1)
	for c, l := range p.Lens {
		offs[c+1] = offs[c] + int(l)
	}
	if offs[nc] != len(p.Stream) {
		return 0, nil, false
	}
	crcs := make([]uint32, nc)
	lens := make([]int64, nc)
	cdc.pool().ForEach(nc, func(c int) {
		blk := p.Stream[offs[c]:offs[c+1]]
		crcs[c] = crcBytes(blk)
		lens[c] = int64(len(blk))
	})
	full = entMetaCRC(hcrc, p)
	for c := range crcs {
		full = crc32Combine(full, crcs[c], lens[c])
	}
	return full, crcs, true
}

func (entropyTech) marshalPayload(e *EncodedStash, out []byte) ([]byte, error) {
	p := e.Ent
	if p == nil {
		return nil, fmt.Errorf("encoding: marshal: Entropy stash without payload")
	}
	u32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }
	u32(uint32(p.Format))
	u32(uint32(p.N))
	u32(uint32(len(p.Lens)))
	for _, l := range p.Lens {
		u32(l)
	}
	u32(uint32(len(p.Stream)))
	out = append(out, p.Stream...)
	return out, nil
}

func (entropyTech) unmarshalPayload(e *EncodedStash, r *stashReader) {
	f := floatenc.Format(r.u32())
	if _, okFmt := packedValuesPerWord(f); r.err == nil && !okFmt {
		r.fail("unknown packed format %d", int(f))
	}
	n := r.count("entropy element", maxStashElems, 0)
	nLens := r.count("entropy block", maxStashElems, 4)
	lens := make([]uint32, 0, nLens)
	for i := 0; i < nLens && r.err == nil; i++ {
		lens = append(lens, r.u32())
	}
	sLen := r.count("entropy stream byte", maxStashElems*8, 1)
	stream := append([]byte(nil), r.bytes(sLen)...)
	if r.err == nil {
		e.Ent = &EntropyPayload{Format: f, N: n, Lens: lens, Stream: stream}
	}
}

func (entropyTech) planBytes(elems int, sparsity float64, f floatenc.Format) int64 {
	return entropyBytes(elems, sparsity, f)
}

func (entropyTech) overheadTime(t float64, stream func(int64) float64, dense, enc int64) float64 {
	// Byte-serial entropy (de)coding runs far below streaming bandwidth;
	// modeled as eight dense-size passes each way. Entropy is the
	// expensive tier — the selector picks it for ratio, never for speed.
	t += 8 * stream(dense)
	t += 8 * stream(dense)
	return t
}
