package encoding

import (
	"encoding/binary"
	"fmt"
	"math"

	"gist/internal/bitpack"
	"gist/internal/floatenc"
	"gist/internal/tensor"
)

// zvcTech is zero-value compression (the cDMA-style encoding): a 1-bit
// nonzero mask plus the nonzero values compacted in mask order. Unlike
// Binarize the values survive, so ZVC is lossless at FP32 and applies to
// any sparse stash regardless of what reads it — including the
// dense-consuming convolutions SSDC targets, at a lower metadata cost than
// CSR when rows are dense enough. With DPR layered on, the data is
// quantized first (flush-to-zero widens the mask's zero set) and the cost
// guard credits the packed width of the value array, mirroring SSDC.
//
// The mask chunks by 64-bit word ranges (768-aligned boundaries); the
// value array chunks by proportional index spans — like SSDC's
// ColIdx/Values — so the chunk layout never depends on the (possibly
// corrupted) mask contents and FlipBit attribution stays exact.

// ZVCPayload is the held ZVC representation.
type ZVCPayload struct {
	// Mask has bit i set iff element i is nonzero (-0 canonicalizes to
	// +0, matching the scalar != 0 predicate).
	Mask *bitpack.BitMask
	// Values holds the nonzero values in index order, FP32-width (already
	// DPR-quantized when a format is layered on).
	Values []float32
}

// Bytes is the payload's storage footprint.
func (z *ZVCPayload) Bytes() int64 {
	return z.Mask.Bytes() + int64(len(z.Values))*4
}

type zvcTech struct{}

func init() { registerTechnique(ZVC, zvcTech{}) }

func (zvcTech) name() string     { return "ZVC" }
func (zvcTech) wireVersion() int { return 2 }

func (zvcTech) encodeInto(cdc Codec, e *EncodedStash, as *Assignment, t *tensor.Tensor) error {
	// Quantize first when DPR is layered on, exactly as SSDC does: the
	// mask is built over the quantized data, so flushed-to-zero values
	// drop out of the payload entirely.
	data := t.Data
	pooledScratch := false
	if as.Format != floatenc.FP32 {
		data = cdc.quantizedCopy(as.Format, t.Data)
		pooledScratch = cdc.Buf != nil
	}
	if e.ZVC == nil {
		e.ZVC = &ZVCPayload{}
	}
	z := e.ZVC
	n := len(data)
	if z.Mask == nil {
		z.Mask = bitpack.NewBitMask(n)
	} else {
		z.Mask.Reset(n)
	}
	// Pass 1: the nonzero mask, chunk-parallel (chunks own whole words).
	if ce, serial := cdc.serialChunks(n); serial {
		for lo := 0; lo < n; lo += ce {
			z.Mask.FillNonzeroRange(data, lo, min(lo+ce, n))
		}
	} else {
		cdc.forChunks(n, func(lo, hi int) {
			z.Mask.FillNonzeroRange(data, lo, hi)
		})
	}
	nnz := z.Mask.PopCount()
	if cap(z.Values) >= nnz {
		z.Values = z.Values[:nnz]
	} else {
		z.Values = make([]float32, nnz)
	}
	// Pass 2: compact the nonzeros. Each chunk's output offset is the
	// mask popcount before it, a pure function of the mask, so the value
	// layout is byte-identical at every worker count. The serial loop
	// carries the offset instead of rescanning.
	if ce, serial := cdc.serialChunks(n); serial {
		off := 0
		for lo := 0; lo < n; lo += ce {
			off += z.Mask.GatherNonzero(data, lo, min(lo+ce, n), z.Values[off:])
		}
	} else {
		cdc.forChunks(n, func(lo, hi int) {
			start := z.Mask.PopCountRange(0, lo)
			z.Mask.GatherNonzero(data, lo, hi, z.Values[start:])
		})
	}
	if pooledScratch {
		cdc.Buf.RecycleSlice(data)
	}
	// Cost guard against the dense DPR alternative, with the same
	// packed-width credit on the value array as ssdcBytes applies.
	effective := z.Bytes()
	if as.Format != floatenc.FP32 {
		effective -= int64(nnz)*4 - as.Format.PackedBytes(nnz)
	}
	if dense := as.Format.PackedBytes(n); effective >= dense {
		return errZVCLargerThanDense
	}
	return nil
}

func (zvcTech) decodeInto(cdc Codec, out *tensor.Tensor, e *EncodedStash) error {
	z := e.ZVC
	if z == nil || z.Mask == nil || z.Mask.Len() != len(out.Data) {
		return fmt.Errorf("%w: ZVC mask %d bits, shape %v", ErrShapeMismatch, zvcBits(z), e.Shape)
	}
	n := z.Mask.Len()
	if len(z.Mask.Words()) != (n+63)/64 {
		return fmt.Errorf("%w: ZVC mask has %d words for %d bits", ErrCorruptStash, len(z.Mask.Words()), n)
	}
	if nnz := z.Mask.PopCount(); len(z.Values) != nnz {
		return fmt.Errorf("%w: ZVC mask selects %d values, payload has %d", ErrCorruptStash, nnz, len(z.Values))
	}
	if ce, serial := cdc.serialChunks(n); serial {
		off := 0
		for lo := 0; lo < n; lo += ce {
			off += z.Mask.ScatterNonzero(out.Data, lo, min(lo+ce, n), z.Values[off:])
		}
	} else {
		cdc.forChunks(n, func(lo, hi int) {
			start := z.Mask.PopCountRange(0, lo)
			z.Mask.ScatterNonzero(out.Data, lo, hi, z.Values[start:])
		})
	}
	return nil
}

// zvcBits is the nil-tolerant mask length for error messages.
func zvcBits(z *ZVCPayload) int {
	if z == nil || z.Mask == nil {
		return 0
	}
	return z.Mask.Len()
}

func (zvcTech) payloadElems(e *EncodedStash) int {
	if e.ZVC != nil && e.ZVC.Mask != nil {
		return e.ZVC.Mask.Len()
	}
	return 0
}

func (zvcTech) bytes(e *EncodedStash) int64 { return e.ZVC.Bytes() }

func (zvcTech) payloadBits(e *EncodedStash) int {
	return len(e.ZVC.Mask.Words())*64 + len(e.ZVC.Values)*32
}

func (zvcTech) flipBit(e *EncodedStash, i int) {
	z := e.ZVC
	if n := len(z.Mask.Words()) * 64; i < n {
		z.Mask.Words()[i/64] ^= 1 << (uint(i) % 64)
		return
	} else {
		i -= n
	}
	bits := math.Float32bits(z.Values[i/32]) ^ 1<<(uint(i)%32)
	z.Values[i/32] = math.Float32frombits(bits)
}

func (zvcTech) chunkOfBit(e *EncodedStash, i, ce, nc int) int {
	z := e.ZVC
	if n := len(z.Mask.Words()) * 64; i < n {
		// Mask bit i is element i; padding bits clamp into the final chunk.
		return clampChunk(min(i, z.Mask.Len()-1)/ce, nc)
	} else {
		i -= n
	}
	return spanOf(i/32, len(z.Values), nc)
}

func (zvcTech) chunkSpanBytes(e *EncodedStash, elemLo, elemHi int) (int64, int64) {
	// ZVC chunks span two backing arrays (mask words and values); no
	// single byte range describes them.
	return -1, -1
}

func (zvcTech) checksumPayload(e *EncodedStash, w *crcWriter) {
	for _, word := range e.ZVC.Mask.Words() {
		w.u64(word)
	}
	for _, v := range e.ZVC.Values {
		w.u32(math.Float32bits(v))
	}
}

func (zvcTech) chunkChecksums(cdc Codec, e *EncodedStash, ce int, hcrc uint32) (full uint32, chunks []uint32, ok bool) {
	z := e.ZVC
	if z == nil || z.Mask == nil {
		return 0, nil, false
	}
	n := z.Mask.Len()
	words := z.Mask.Words()
	if len(words) != (n+63)/64 {
		return 0, nil, false
	}
	if n == 0 {
		if len(z.Values) != 0 {
			return 0, nil, false
		}
		return hcrc, nil, true
	}
	nc := (n + ce - 1) / ce
	// Two piece arrays per chunk: its mask word range and a proportional
	// index span of Values (content-independent, so a flipped mask bit
	// never moves the chunk layout out from under attribution).
	mk := make([]uint32, nc)
	mkLen := make([]int64, nc)
	va := make([]uint32, nc)
	vaLen := make([]int64, nc)
	cdc.pool().ForEach(2*nc, func(t int) {
		c := t % nc
		switch t / nc {
		case 0:
			w0 := c * ce / 64
			w1 := (min((c+1)*ce, n) + 63) / 64
			mk[c] = crcUint64s(words[w0:w1])
			mkLen[c] = int64(w1-w0) * 8
		case 1:
			lo, hi := spanBounds(c, len(z.Values), nc)
			va[c] = crcFloat32s(z.Values[lo:hi])
			vaLen[c] = int64(hi-lo) * 4
		}
	})
	full = hcrc
	for c := 0; c < nc; c++ {
		full = crc32Combine(full, mk[c], mkLen[c])
	}
	for c := 0; c < nc; c++ {
		full = crc32Combine(full, va[c], vaLen[c])
	}
	chunks = make([]uint32, nc)
	for c := 0; c < nc; c++ {
		chunks[c] = crc32Combine(mk[c], va[c], vaLen[c])
	}
	return full, chunks, true
}

func (zvcTech) marshalPayload(e *EncodedStash, out []byte) ([]byte, error) {
	z := e.ZVC
	if z == nil || z.Mask == nil {
		return nil, fmt.Errorf("encoding: marshal: ZVC stash without mask")
	}
	u32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }
	u32(uint32(z.Mask.Len()))
	u32(uint32(len(z.Values)))
	for _, w := range z.Mask.Words() {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	for _, v := range z.Values {
		u32(math.Float32bits(v))
	}
	return out, nil
}

func (zvcTech) unmarshalPayload(e *EncodedStash, r *stashReader) {
	n := r.count("ZVC mask bit", maxStashElems, 0)
	nnz := r.count("ZVC value", maxStashElems, 4)
	words := make([]uint64, 0, (n+63)/64)
	for i := 0; i < (n+63)/64; i++ {
		words = append(words, r.u64())
	}
	vals := make([]float32, 0, nnz)
	for i := 0; i < nnz && r.err == nil; i++ {
		vals = append(vals, math.Float32frombits(r.u32()))
	}
	if r.err == nil {
		e.ZVC = &ZVCPayload{Mask: bitpack.MaskFromWords(n, words), Values: vals}
	}
}

func (zvcTech) planBytes(elems int, sparsity float64, f floatenc.Format) int64 {
	return zvcBytes(elems, sparsity, f)
}

func (zvcTech) overheadTime(t float64, stream func(int64) float64, dense, enc int64) float64 {
	// Encode is a mask-build pass plus a compaction pass (read dense
	// twice, write the compacted payload); decode expands it back.
	t += stream(2*dense + enc)
	t += stream(dense + enc)
	return t
}
