package encoding

import (
	"encoding/binary"
	"fmt"

	"gist/internal/tensor"
)

// Binary serialization of an EncodedStash — the wire format the crash-safe
// recovery path and the decode fuzzer exercise. The format is little-endian
// throughout and self-describing enough that UnmarshalStash can rebuild the
// exact in-memory structures (including the seal) or reject the bytes with
// a typed error; it never panics, whatever the input.
//
// Two container versions exist. "GSTS" (v1) is the original format whose
// byte layout is frozen — every v1 blob ever written (Binarize, SSDC, DPR)
// still parses byte-identically. "GST2" (v2) has the identical header and
// seal layout but admits the payload techniques added after the freeze
// (ZVC, Entropy); a v2-only technique inside a v1 container is rejected as
// corrupt rather than misparsed.

// stashMagic leads every v1 serialized stash; stashMagicV2 the v2 ones.
var (
	stashMagic   = [4]byte{'G', 'S', 'T', 'S'}
	stashMagicV2 = [4]byte{'G', 'S', 'T', '2'}
)

const (
	// maxStashDims bounds the serialized shape rank.
	maxStashDims = 8
	// maxStashElems bounds the element count a deserialized stash may claim,
	// capping what Decode would allocate for hostile inputs (16Mi elements
	// = 64 MiB of FP32, comfortably above any benchmark shape).
	maxStashElems = 1 << 24
)

// MarshalBinary serializes the stash: magic (picked by the technique's
// wire version), technique, seal state, chunk layout, shape,
// technique-specific payload, and (when sealed) the checksum plus
// per-chunk CRCs.
func (e *EncodedStash) MarshalBinary() ([]byte, error) {
	impl, ok := techImpl(e.Tech)
	if !ok {
		return nil, fmt.Errorf("%w (technique %v)", ErrNoTechnique, e.Tech)
	}
	var out []byte
	u32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }
	magic := stashMagic
	if impl.wireVersion() >= 2 {
		magic = stashMagicV2
	}
	out = append(out, magic[:]...)
	u32(uint32(e.Tech))
	sealed := uint32(0)
	if e.sealed {
		sealed = 1
	}
	u32(sealed)
	u32(uint32(e.ChunkElems))
	u32(uint32(len(e.Shape)))
	for _, d := range e.Shape {
		u32(uint32(d))
	}
	out, err := impl.marshalPayload(e, out)
	if err != nil {
		return nil, err
	}
	if e.sealed {
		u32(e.Checksum)
		u32(uint32(len(e.ChunkCRCs)))
		for _, c := range e.ChunkCRCs {
			u32(c)
		}
	}
	return out, nil
}

// stashReader is a bounds-checked little-endian cursor over serialized
// bytes; every read either succeeds or records an ErrCorruptStash-wrapped
// error, so parsing code never indexes past the buffer.
type stashReader struct {
	data []byte
	off  int
	err  error
}

func (r *stashReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: unmarshal: %s", ErrCorruptStash, fmt.Sprintf(format, args...))
	}
}

func (r *stashReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.off {
		r.fail("need %d bytes at offset %d, have %d", n, r.off, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *stashReader) u32() uint32 {
	if b := r.bytes(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *stashReader) u64() uint64 {
	if b := r.bytes(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// count reads a u32 element count and validates it against the cap and the
// bytes remaining at elemBytes each, so slice allocations stay bounded by
// the input size.
func (r *stashReader) count(what string, cap, elemBytes int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n > cap {
		r.fail("%s count %d exceeds cap %d", what, n, cap)
		return 0
	}
	if n*elemBytes > len(r.data)-r.off {
		r.fail("%s count %d needs %d bytes, have %d", what, n, n*elemBytes, len(r.data)-r.off)
		return 0
	}
	return n
}

// UnmarshalStash parses a serialized stash. Malformed or truncated input
// returns an error wrapping ErrCorruptStash (ErrNoTechnique for an unknown
// technique tag); the function never panics. A successfully parsed stash is
// structurally safe to Verify and Decode — those may still reject it with
// their own typed errors (bad checksum, shape mismatch, invalid CSR).
func UnmarshalStash(data []byte) (*EncodedStash, error) {
	r := &stashReader{data: data}
	version := 0
	if m := r.bytes(4); r.err == nil {
		switch [4]byte(m) {
		case stashMagic:
			version = 1
		case stashMagicV2:
			version = 2
		default:
			r.fail("bad magic %q", m)
		}
	}
	tech := Technique(r.u32())
	sealed := r.u32()
	chunkElems := int(r.u32())
	if r.err == nil && (chunkElems < 0 || chunkElems > maxStashElems) {
		r.fail("chunk size %d outside [0,%d]", chunkElems, maxStashElems)
	}
	rank := r.count("shape dim", maxStashDims, 4)
	shape := make(tensor.Shape, 0, rank)
	elems := 1
	for i := 0; i < rank; i++ {
		d := int(r.u32())
		if r.err != nil {
			break
		}
		if d < 0 || d > maxStashElems || elems*max(d, 1) > maxStashElems {
			r.fail("shape dim %d overflows element cap %d", d, maxStashElems)
			break
		}
		elems *= max(d, 1)
		shape = append(shape, d)
	}
	e := &EncodedStash{Tech: tech, Shape: shape, ChunkElems: chunkElems}
	if impl, okT := techImpl(tech); okT {
		if r.err == nil && impl.wireVersion() > version {
			// A v2-only technique tag inside a v1 container: the bytes
			// cannot be a stash any v1 writer produced.
			r.fail("technique %v not valid in a v%d stash", tech, version)
		}
		impl.unmarshalPayload(e, r)
	} else if r.err == nil {
		return nil, fmt.Errorf("%w (technique %v)", ErrNoTechnique, tech)
	}
	if sealed != 0 && r.err == nil {
		e.Checksum = r.u32()
		nCRCs := r.count("chunk crc", maxStashElems, 4)
		for i := 0; i < nCRCs; i++ {
			e.ChunkCRCs = append(e.ChunkCRCs, r.u32())
		}
		e.sealed = true
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("%w: unmarshal: %d trailing bytes", ErrCorruptStash, len(r.data)-r.off)
	}
	return e, nil
}
