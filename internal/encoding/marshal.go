package encoding

import (
	"encoding/binary"
	"fmt"
	"math"

	"gist/internal/bitpack"
	"gist/internal/floatenc"
	"gist/internal/sparse"
	"gist/internal/tensor"
)

// Binary serialization of an EncodedStash — the wire format the crash-safe
// recovery path and the decode fuzzer exercise. The format is little-endian
// throughout and self-describing enough that UnmarshalStash can rebuild the
// exact in-memory structures (including the seal) or reject the bytes with
// a typed error; it never panics, whatever the input.

// stashMagic leads every serialized stash.
var stashMagic = [4]byte{'G', 'S', 'T', 'S'}

const (
	// maxStashDims bounds the serialized shape rank.
	maxStashDims = 8
	// maxStashElems bounds the element count a deserialized stash may claim,
	// capping what Decode would allocate for hostile inputs (16Mi elements
	// = 64 MiB of FP32, comfortably above any benchmark shape).
	maxStashElems = 1 << 24
)

// MarshalBinary serializes the stash: magic, technique, seal state, chunk
// layout, shape, technique-specific payload, and (when sealed) the checksum
// plus per-chunk CRCs.
func (e *EncodedStash) MarshalBinary() ([]byte, error) {
	var out []byte
	u32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }
	out = append(out, stashMagic[:]...)
	u32(uint32(e.Tech))
	sealed := uint32(0)
	if e.sealed {
		sealed = 1
	}
	u32(sealed)
	u32(uint32(e.ChunkElems))
	u32(uint32(len(e.Shape)))
	for _, d := range e.Shape {
		u32(uint32(d))
	}
	switch e.Tech {
	case Binarize:
		if e.Mask == nil {
			return nil, fmt.Errorf("encoding: marshal: Binarize stash without mask")
		}
		u32(uint32(e.Mask.Len()))
		for _, w := range e.Mask.Words() {
			out = binary.LittleEndian.AppendUint64(out, w)
		}
	case SSDC:
		if e.CSR == nil {
			return nil, fmt.Errorf("encoding: marshal: SSDC stash without CSR")
		}
		u32(uint32(e.CSR.N))
		u32(uint32(e.CSR.Cols))
		u32(uint32(len(e.CSR.Values)))
		for _, p := range e.CSR.RowPtr {
			u32(uint32(p))
		}
		out = append(out, e.CSR.ColIdx...)
		for _, v := range e.CSR.Values {
			u32(math.Float32bits(v))
		}
	case DPR:
		if e.Packed == nil {
			return nil, fmt.Errorf("encoding: marshal: DPR stash without payload")
		}
		u32(uint32(e.Packed.Format))
		u32(uint32(e.Packed.N))
		for _, w := range e.Packed.Words {
			u32(w)
		}
	default:
		return nil, fmt.Errorf("%w (technique %v)", ErrNoTechnique, e.Tech)
	}
	if e.sealed {
		u32(e.Checksum)
		u32(uint32(len(e.ChunkCRCs)))
		for _, c := range e.ChunkCRCs {
			u32(c)
		}
	}
	return out, nil
}

// stashReader is a bounds-checked little-endian cursor over serialized
// bytes; every read either succeeds or records an ErrCorruptStash-wrapped
// error, so parsing code never indexes past the buffer.
type stashReader struct {
	data []byte
	off  int
	err  error
}

func (r *stashReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: unmarshal: %s", ErrCorruptStash, fmt.Sprintf(format, args...))
	}
}

func (r *stashReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.off {
		r.fail("need %d bytes at offset %d, have %d", n, r.off, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *stashReader) u32() uint32 {
	if b := r.bytes(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *stashReader) u64() uint64 {
	if b := r.bytes(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// count reads a u32 element count and validates it against the cap and the
// bytes remaining at elemBytes each, so slice allocations stay bounded by
// the input size.
func (r *stashReader) count(what string, cap, elemBytes int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n > cap {
		r.fail("%s count %d exceeds cap %d", what, n, cap)
		return 0
	}
	if n*elemBytes > len(r.data)-r.off {
		r.fail("%s count %d needs %d bytes, have %d", what, n, n*elemBytes, len(r.data)-r.off)
		return 0
	}
	return n
}

// UnmarshalStash parses a serialized stash. Malformed or truncated input
// returns an error wrapping ErrCorruptStash (ErrNoTechnique for an unknown
// technique tag); the function never panics. A successfully parsed stash is
// structurally safe to Verify and Decode — those may still reject it with
// their own typed errors (bad checksum, shape mismatch, invalid CSR).
func UnmarshalStash(data []byte) (*EncodedStash, error) {
	r := &stashReader{data: data}
	if m := r.bytes(4); r.err == nil && [4]byte(m) != stashMagic {
		r.fail("bad magic %q", m)
	}
	tech := Technique(r.u32())
	sealed := r.u32()
	chunkElems := int(r.u32())
	if r.err == nil && (chunkElems < 0 || chunkElems > maxStashElems) {
		r.fail("chunk size %d outside [0,%d]", chunkElems, maxStashElems)
	}
	rank := r.count("shape dim", maxStashDims, 4)
	shape := make(tensor.Shape, 0, rank)
	elems := 1
	for i := 0; i < rank; i++ {
		d := int(r.u32())
		if r.err != nil {
			break
		}
		if d < 0 || d > maxStashElems || elems*max(d, 1) > maxStashElems {
			r.fail("shape dim %d overflows element cap %d", d, maxStashElems)
			break
		}
		elems *= max(d, 1)
		shape = append(shape, d)
	}
	e := &EncodedStash{Tech: tech, Shape: shape, ChunkElems: chunkElems}
	switch tech {
	case Binarize:
		n := r.count("mask bit", maxStashElems, 0)
		words := make([]uint64, 0, (n+63)/64)
		for i := 0; i < (n+63)/64; i++ {
			words = append(words, r.u64())
		}
		if r.err == nil {
			e.Mask = bitpack.MaskFromWords(n, words)
		}
	case SSDC:
		n := r.count("element", maxStashElems, 0)
		cols := int(r.u32())
		if r.err == nil && (cols <= 0 || cols > 256) {
			r.fail("CSR cols %d outside (0,256]", cols)
		}
		nnz := r.count("non-zero", maxStashElems, 5)
		rows := 0
		if r.err == nil {
			rows = (n + cols - 1) / cols
			if (rows+1)*4 > len(r.data)-r.off {
				r.fail("row pointers for %d rows exceed remaining bytes", rows)
			}
		}
		csr := &sparse.CSR{Rows: rows, Cols: cols, N: n}
		for i := 0; i < rows+1 && r.err == nil; i++ {
			csr.RowPtr = append(csr.RowPtr, int32(r.u32()))
		}
		csr.ColIdx = append([]uint8(nil), r.bytes(nnz)...)
		for i := 0; i < nnz && r.err == nil; i++ {
			csr.Values = append(csr.Values, math.Float32frombits(r.u32()))
		}
		if r.err == nil {
			e.CSR = csr
		}
	case DPR:
		f := floatenc.Format(r.u32())
		vpw, okFmt := packedValuesPerWord(f)
		if r.err == nil && !okFmt {
			r.fail("unknown packed format %d", int(f))
		}
		n := r.count("packed value", maxStashElems, 0)
		p := &floatenc.Packed{Format: f, N: n}
		if r.err == nil {
			if nw := (n + vpw - 1) / vpw; nw*4 > len(r.data)-r.off {
				r.fail("%d packed words exceed remaining bytes", nw)
			} else {
				for i := 0; i < nw; i++ {
					p.Words = append(p.Words, r.u32())
				}
			}
		}
		if r.err == nil {
			e.Packed = p
		}
	default:
		if r.err == nil {
			return nil, fmt.Errorf("%w (technique %v)", ErrNoTechnique, tech)
		}
	}
	if sealed != 0 && r.err == nil {
		e.Checksum = r.u32()
		nCRCs := r.count("chunk crc", maxStashElems, 4)
		for i := 0; i < nCRCs; i++ {
			e.ChunkCRCs = append(e.ChunkCRCs, r.u32())
		}
		e.sealed = true
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("%w: unmarshal: %d trailing bytes", ErrCorruptStash, len(r.data)-r.off)
	}
	return e, nil
}
