package encoding

import (
	"errors"
	"math"
	"testing"

	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/tensor"
)

// vggBlock builds Input -> conv -> relu -> conv -> relu -> pool -> conv ->
// relu -> fc -> loss: contains ReLU-Conv, ReLU-Pool and Pool-Conv pairs.
func vggBlock(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(4, 3, 32, 32))
	c1 := g.MustAdd("conv1", layers.NewConv2D(16, 3, 1, 1), in)
	r1 := g.MustAdd("relu1", layers.NewReLU(), c1)
	c2 := g.MustAdd("conv2", layers.NewConv2D(16, 3, 1, 1), r1)
	r2 := g.MustAdd("relu2", layers.NewReLU(), c2)
	p1 := g.MustAdd("pool1", layers.NewMaxPool(2, 2, 0), r2)
	c3 := g.MustAdd("conv3", layers.NewConv2D(32, 3, 1, 1), p1)
	r3 := g.MustAdd("relu3", layers.NewReLU(), c3)
	fc := g.MustAdd("fc", layers.NewFC(10), r3)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	return g
}

func TestAnalyzePatterns(t *testing.T) {
	g := vggBlock(t)
	a := Analyze(g, Config{Binarize: true, SSDC: true, DPR: floatenc.FP8, FCIsConvLike: true})

	// relu1 feeds conv2: SSDC.
	if as := a.ByNode[g.Lookup("relu1").ID]; as == nil || as.Tech != SSDC {
		t.Errorf("relu1 should be SSDC, got %v", as)
	}
	// relu2 feeds pool1 only: Binarize.
	if as := a.ByNode[g.Lookup("relu2").ID]; as == nil || as.Tech != Binarize {
		t.Errorf("relu2 should be Binarize, got %v", as)
	}
	// pool1 feeds conv3 and follows a ReLU: SSDC (sparsity permitting).
	p1 := g.Lookup("pool1")
	if as := a.ByNode[p1.ID]; as != nil && as.Tech == SSDC {
		// Pool sparsity = 0.7^4 ≈ 0.24, just above break-even 0.2.
		if as.Sparsity < 0.2 {
			t.Errorf("pool1 SSDC below break-even: %v", as.Sparsity)
		}
	} else if as == nil {
		t.Error("pool1 should have an assignment (SSDC or DPR)")
	}
	// relu3 feeds fc (conv-like here): SSDC.
	if as := a.ByNode[g.Lookup("relu3").ID]; as == nil || as.Tech != SSDC {
		t.Errorf("relu3 should be SSDC, got %v", as)
	}
	// input feeds conv1 (needs X): stashed, DPR.
	if as := a.ByNode[g.Lookup("input").ID]; as == nil || as.Tech != DPR {
		t.Errorf("input should be DPR, got %v", as)
	}
	// conv1 output is not stashed (ReLU needs only Y): no assignment.
	if as := a.ByNode[g.Lookup("conv1").ID]; as != nil {
		t.Errorf("conv1 should have no assignment, got %v", as.Tech)
	}
	// Binarize rewired pool1's backward needs.
	if a.EffectiveNeeds(p1) != (layers.BackwardNeeds{}) {
		t.Error("binarized pool must need neither X nor Y")
	}
	// The pool argmax map exists.
	if a.PoolMaps[p1.ID] == 0 {
		t.Error("pool1 argmax map missing")
	}
}

func TestAnalyzeWithoutFCConvLike(t *testing.T) {
	g := vggBlock(t)
	a := Analyze(g, Config{SSDC: true, DPR: floatenc.FP32})
	// relu3 feeds only FC; without FCIsConvLike it gets no SSDC and, with
	// DPR off, no assignment at all.
	if as := a.ByNode[g.Lookup("relu3").ID]; as != nil {
		t.Errorf("relu3 should be unassigned, got %v", as.Tech)
	}
}

func TestBinarizeBlockedByConvConsumer(t *testing.T) {
	// Inception-style branch: relu feeds both a pool and a conv. Binarize
	// must not apply; SSDC must take over.
	g := graph.New()
	in := g.MustAdd("in", layers.NewInput(2, 8, 16, 16))
	c := g.MustAdd("conv", layers.NewConv2D(8, 3, 1, 1), in)
	r := g.MustAdd("relu", layers.NewReLU(), c)
	g.MustAdd("pool", layers.NewMaxPool(2, 2, 0), r)
	g.MustAdd("branchconv", layers.NewConv2D(8, 1, 1, 0), r)
	a := Analyze(g, Config{Binarize: true, SSDC: true})
	as := a.ByNode[r.ID]
	if as == nil || as.Tech != SSDC {
		t.Fatalf("branching relu should be SSDC, got %v", as)
	}
}

func TestSSDCSkippedBelowBreakEven(t *testing.T) {
	g := vggBlock(t)
	a := Analyze(g, Config{SSDC: true, Sparsity: func(*graph.Node) float64 { return 0.1 }})
	for id, as := range a.ByNode {
		if as.Tech == SSDC {
			t.Errorf("node %d got SSDC at 10%% sparsity", id)
		}
	}
}

func TestEncodedSizes(t *testing.T) {
	g := vggBlock(t)
	a := Analyze(g, LossyLossless(floatenc.FP8))
	r2 := g.Lookup("relu2")
	as := a.ByNode[r2.ID]
	elems := r2.OutShape.NumElements()
	// Binarize mask: ~1 bit/elem => ratio near 32 (padding aside).
	if ratio := as.CompressionRatio(); ratio < 30 || ratio > 32.5 {
		t.Errorf("Binarize ratio = %v", ratio)
	}
	_ = elems
	// Pool argmax map: 4 bits per pool output.
	p1 := g.Lookup("pool1")
	wantMap := int64((p1.OutShape.NumElements()+7)/8) * 4
	if a.PoolMaps[p1.ID] != wantMap {
		t.Errorf("pool map bytes = %d, want %d", a.PoolMaps[p1.ID], wantMap)
	}
	// DPR FP8: 4x.
	inN := g.Lookup("input")
	asIn := a.ByNode[inN.ID]
	if r := asIn.CompressionRatio(); math.Abs(r-4) > 0.01 {
		t.Errorf("DPR FP8 ratio = %v", r)
	}
}

func TestSSDCWithDPRCompressesValues(t *testing.T) {
	g := vggBlock(t)
	plain := Analyze(g, Config{SSDC: true})
	withDPR := Analyze(g, Config{SSDC: true, DPR: floatenc.FP8})
	r1 := g.Lookup("relu1")
	pb := plain.ByNode[r1.ID].EncodedBytes
	db := withDPR.ByNode[r1.ID].EncodedBytes
	if db >= pb {
		t.Fatalf("DPR over SSDC must shrink values: %d vs %d", db, pb)
	}
	// The savings must be value-array-only: meta (1 byte/nnz + rowptr)
	// untouched. With FP8 values 4B->1B, total ~ nnz*2+rowptr vs nnz*5+rowptr.
	if float64(db) < float64(pb)*0.3 {
		t.Fatalf("savings too large — meta must stay exact: %d vs %d", db, pb)
	}
}

func TestLosslessConfigHasNoDPR(t *testing.T) {
	g := vggBlock(t)
	a := Analyze(g, Lossless())
	for _, as := range a.ByNode {
		if as.Tech == DPR {
			t.Error("Lossless() must not assign DPR")
		}
	}
	// Not every stash is covered by lossless encodings: "Others" remain.
	covered := len(a.ByNode)
	total := 0
	tl := graph.BuildTimeline(g)
	_ = tl
	for _, n := range g.Nodes {
		if graph.OutputStashed(n) {
			total++
		}
	}
	if covered >= total {
		t.Errorf("lossless should leave some stashes unencoded: %d of %d", covered, total)
	}
}

func TestEffectiveStashednessChanges(t *testing.T) {
	g := vggBlock(t)
	a := Analyze(g, Lossless())
	// Baseline: relu2 output stashed. After Binarize, its FP32 form has no
	// backward reader (mask serves ReLU, argmax map serves pool).
	r2 := g.Lookup("relu2")
	if !graph.OutputStashed(r2) {
		t.Fatal("baseline should stash relu2")
	}
	if a.OutputStashed(r2) {
		t.Error("after Binarize, relu2's FP32 output must not be stashed")
	}
}

func TestTechniqueString(t *testing.T) {
	if None.String() != "None" || Binarize.String() != "Binarize" ||
		SSDC.String() != "SSDC" || DPR.String() != "DPR" {
		t.Error("names wrong")
	}
	if Technique(9).String() != "Technique(9)" {
		t.Error("unknown formatting")
	}
}

func TestRuntimeBinarizeRoundTrip(t *testing.T) {
	g := vggBlock(t)
	a := Analyze(g, Lossless())
	r2 := g.Lookup("relu2")
	as := a.ByNode[r2.ID]
	x := tensor.New(r2.OutShape...)
	x.FillUniform(tensor.NewRNG(3), -1, 1)
	// ReLU output: clamp negatives to zero first.
	x.Apply(func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	e, err := EncodeStash(as, x)
	if err != nil {
		t.Fatalf("EncodeStash: %v", err)
	}
	dec, err := e.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for i, v := range x.Data {
		want := float32(0)
		if v > 0 {
			want = 1
		}
		if dec.Data[i] != want {
			t.Fatalf("mask decode[%d] = %v, want %v", i, dec.Data[i], want)
		}
	}
	if e.Bytes() != as.EncodedBytes {
		t.Errorf("runtime bytes %d != planned %d", e.Bytes(), as.EncodedBytes)
	}
}

func TestRuntimeSSDCRoundTripLossless(t *testing.T) {
	g := vggBlock(t)
	a := Analyze(g, Lossless())
	r1 := g.Lookup("relu1")
	as := a.ByNode[r1.ID]
	if as.Tech != SSDC {
		t.Fatal("expected SSDC")
	}
	x := tensor.New(r1.OutShape...)
	r := tensor.NewRNG(4)
	for i := range x.Data {
		if r.Float64() > 0.7 {
			x.Data[i] = r.Float32()
		}
	}
	e, err := EncodeStash(as, x)
	if err != nil {
		t.Fatalf("EncodeStash: %v", err)
	}
	dec, err := e.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !dec.Equal(x) {
		t.Fatal("SSDC must be bit-exact")
	}
}

func TestRuntimeSSDCWithDPRQuantizesValues(t *testing.T) {
	g := vggBlock(t)
	a := Analyze(g, LossyLossless(floatenc.FP16))
	r1 := g.Lookup("relu1")
	as := a.ByNode[r1.ID]
	x := tensor.New(r1.OutShape...)
	r := tensor.NewRNG(4)
	for i := range x.Data {
		if r.Float64() > 0.5 {
			x.Data[i] = r.Float32() + 0.1
		}
	}
	e, err := EncodeStash(as, x)
	if err != nil {
		t.Fatalf("EncodeStash: %v", err)
	}
	dec, err := e.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for i, v := range x.Data {
		if dec.Data[i] != floatenc.FP16.Quantize(v) {
			t.Fatalf("SSDC+DPR decode[%d] = %v, want %v", i, dec.Data[i], floatenc.FP16.Quantize(v))
		}
	}
	// Zero pattern preserved exactly.
	for i, v := range x.Data {
		if (v == 0) != (dec.Data[i] == 0) {
			t.Fatal("zero pattern must survive DPR-over-SSDC")
		}
	}
}

func TestRuntimeDPRRoundTrip(t *testing.T) {
	g := vggBlock(t)
	a := Analyze(g, LossyLossless(floatenc.FP10))
	inN := g.Lookup("input")
	as := a.ByNode[inN.ID]
	if as.Tech != DPR {
		t.Fatal("expected DPR on the input stash")
	}
	x := tensor.New(inN.OutShape...)
	x.FillNormal(tensor.NewRNG(5), 0, 1)
	e, err := EncodeStash(as, x)
	if err != nil {
		t.Fatalf("EncodeStash: %v", err)
	}
	dec, err := e.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for i, v := range x.Data {
		if dec.Data[i] != floatenc.FP10.Quantize(v) {
			t.Fatalf("DPR decode[%d] = %v, want %v", i, dec.Data[i], floatenc.FP10.Quantize(v))
		}
	}
	if e.Bytes() != as.EncodedBytes {
		t.Errorf("runtime bytes %d != planned %d", e.Bytes(), as.EncodedBytes)
	}
}

func TestEncodeStashNoTechniqueErrors(t *testing.T) {
	if _, err := EncodeStash(&Assignment{Tech: None}, tensor.New(1)); !errors.Is(err, ErrNoTechnique) {
		t.Fatalf("err = %v, want ErrNoTechnique", err)
	}
}

func TestDefaultSparsityModel(t *testing.T) {
	g := vggBlock(t)
	if s := DefaultSparsity(g.Lookup("relu1")); s != DefaultReLUSparsity {
		t.Errorf("relu sparsity = %v", s)
	}
	// Pool after relu: 0.7^4.
	want := math.Pow(DefaultReLUSparsity, 4)
	if s := DefaultSparsity(g.Lookup("pool1")); math.Abs(s-want) > 1e-12 {
		t.Errorf("pool sparsity = %v, want %v", s, want)
	}
	if s := DefaultSparsity(g.Lookup("conv1")); s != 0 {
		t.Errorf("conv sparsity = %v, want 0", s)
	}
}
