package encoding

import (
	"testing"

	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/parallel"
	"gist/internal/tensor"
)

// adaptiveTestGraph builds a small conv → relu → conv → relu → pool → fc →
// loss graph: sparse stashes that feed conv readers (SSDC-eligible) next to
// dense stashes that are not.
func adaptiveTestGraph() *graph.Graph {
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(8, 3, 16, 16))
	c1 := g.MustAdd("conv1", layers.NewConv2D(8, 3, 1, 1), in)
	r1 := g.MustAdd("relu1", layers.NewReLU(), c1)
	c2 := g.MustAdd("conv2", layers.NewConv2D(8, 3, 1, 1), r1)
	r2 := g.MustAdd("relu2", layers.NewReLU(), c2)
	p1 := g.MustAdd("pool1", layers.NewMaxPool(2, 2, 0), r2)
	fc := g.MustAdd("fc", layers.NewFC(4), p1)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	return g
}

// TestParseTechnique pins the registry's name surface: every registered
// technique round-trips through its name case-insensitively, "none" is the
// distinguished empty selection, and unknown names are typed errors.
func TestParseTechnique(t *testing.T) {
	regs := RegisteredTechniques()
	want := []Technique{Binarize, SSDC, DPR, ZVC, Entropy}
	if len(regs) != len(want) {
		t.Fatalf("RegisteredTechniques = %v, want %d techniques", regs, len(want))
	}
	for i, tech := range want {
		if regs[i] != tech {
			t.Fatalf("RegisteredTechniques[%d] = %v, want %v", i, regs[i], tech)
		}
	}
	for _, tech := range regs {
		for _, name := range []string{tech.String(), "  "} {
			if name == "  " {
				continue
			}
			got, err := ParseTechnique(name)
			if err != nil || got != tech {
				t.Errorf("ParseTechnique(%q) = %v, %v; want %v", name, got, err, tech)
			}
		}
	}
	if got, err := ParseTechnique("zVc"); err != nil || got != ZVC {
		t.Errorf("ParseTechnique(zVc) = %v, %v; want ZVC", got, err)
	}
	if got, err := ParseTechnique("none"); err != nil || got != None {
		t.Errorf("ParseTechnique(none) = %v, %v; want None", got, err)
	}
	if _, err := ParseTechnique("lzma"); err == nil {
		t.Error("ParseTechnique(lzma) succeeded, want error")
	}
}

// TestConfigWithTechnique pins the consolidated-flag semantics: narrowing
// to one technique clears every other selection, DPR defaults to FP16 when
// the base left precision off, and None disables everything.
func TestConfigWithTechnique(t *testing.T) {
	base := LossyLossless(floatenc.FP10)
	base.AdaptiveSet = AdaptiveAll()
	for _, tech := range []Technique{Binarize, SSDC, ZVC, Entropy} {
		c := base.WithTechnique(tech)
		on := map[Technique]bool{Binarize: c.Binarize, SSDC: c.SSDC, ZVC: c.ZVC, Entropy: c.Entropy}
		for k, v := range on {
			if v != (k == tech) {
				t.Errorf("WithTechnique(%v): %v selection = %v", tech, k, v)
			}
		}
		if len(c.AdaptiveSet) != 0 {
			t.Errorf("WithTechnique(%v) kept the adaptive set", tech)
		}
		if c.DPR != floatenc.FP10 {
			t.Errorf("WithTechnique(%v) changed the base DPR format to %v", tech, c.DPR)
		}
		if !c.Enabled() {
			t.Errorf("WithTechnique(%v).Enabled() = false", tech)
		}
	}
	if c := (Config{DPR: floatenc.FP32}).WithTechnique(DPR); c.DPR != floatenc.FP16 {
		t.Errorf("WithTechnique(DPR) over an FP32 base = %v, want the FP16 default", c.DPR)
	}
	if c := base.WithTechnique(None); c.Enabled() {
		t.Errorf("WithTechnique(None).Enabled() = true: %+v", c)
	}
	if (Config{}).Enabled() {
		t.Error("zero Config reports Enabled")
	}
}

// TestPlanBytesModels sanity-checks the planning cost models the adaptive
// selector ranks by: ZVC shrinks with sparsity and beats dense FP32 on a
// sparse map; entropy includes its per-chunk table overhead; None prices
// at dense FP32.
func TestPlanBytesModels(t *testing.T) {
	const n = 100000
	dense := int64(n) * 4
	if b := PlanBytes(None, n, 0.9, floatenc.FP32); b != dense {
		t.Errorf("PlanBytes(None) = %d, want dense %d", b, dense)
	}
	sparse := PlanBytes(ZVC, n, 0.9, floatenc.FP32)
	densier := PlanBytes(ZVC, n, 0.1, floatenc.FP32)
	if sparse >= densier || sparse >= dense {
		t.Errorf("zvc model: 90%% sparse = %d, 10%% sparse = %d, dense = %d; want strictly decreasing", sparse, densier, dense)
	}
	if zfp16 := PlanBytes(ZVC, n, 0.9, floatenc.FP16); zfp16 >= sparse {
		t.Errorf("zvc model ignores the packed-value credit: FP16 %d >= FP32 %d", zfp16, sparse)
	}
	ent := PlanBytes(Entropy, n, 0.9, floatenc.FP32)
	if ent <= 0 || ent >= dense {
		t.Errorf("entropy model = %d for a 90%% sparse map, want in (0, %d)", ent, dense)
	}
	if b := PlanBytes(Entropy, 0, 0.5, floatenc.FP32); b != 0 {
		t.Errorf("entropy model prices an empty stash at %d", b)
	}
	// The roofline overheads: ZVC costs its extra passes, the entropy
	// stage costs strictly more (it is the expensive tier), Binarize is a
	// net saving (the mask replaces two dense backward reads), and None
	// leaves the accumulator untouched.
	stream := func(b int64) float64 { return float64(b) }
	zvcCost := AddOverheadTime(ZVC, 0, stream, dense, dense/4)
	entCost := AddOverheadTime(Entropy, 0, stream, dense, dense/4)
	if zvcCost <= 0 || entCost <= zvcCost {
		t.Errorf("overheads: zvc %g, entropy %g; want 0 < zvc < entropy", zvcCost, entCost)
	}
	if c := AddOverheadTime(Binarize, 0, stream, dense, dense/32); c >= 0 {
		t.Errorf("overhead(Binarize) = %g, want a net saving (negative)", c)
	}
	if c := AddOverheadTime(None, 1.5, stream, dense, dense); c != 1.5 {
		t.Errorf("overhead(None) moved the accumulator to %g", c)
	}
}

// TestAnalyzeAdaptiveSet drives the planner's per-layer selection: every
// stashed map gets the minimum-predicted-bytes eligible technique from the
// set, losers that carry runtime cost guards become the fallback chain in
// predicted-size order, and the chosen technique's prediction beats the
// raw stash.
func TestAnalyzeAdaptiveSet(t *testing.T) {
	g := adaptiveTestGraph()
	cfg := Config{DPR: floatenc.FP16, AdaptiveSet: AdaptiveAll()}
	a := Analyze(g, cfg)
	assigned := 0
	for _, n := range g.Nodes {
		as := a.ByNode[n.ID]
		if as == nil {
			continue
		}
		assigned++
		inSet := false
		for _, tech := range cfg.AdaptiveSet {
			if as.Tech == tech {
				inSet = true
			}
		}
		if !inSet {
			t.Errorf("%s: assigned %v, not in the adaptive set", n.Name, as.Tech)
		}
		if as.EncodedBytes >= n.OutShape.Bytes() {
			t.Errorf("%s: predicted %d bytes does not beat the raw %d", n.Name, as.EncodedBytes, n.OutShape.Bytes())
		}
		prev := as.EncodedBytes
		for _, fb := range as.Fallbacks {
			if !runtimeFallback(fb) {
				t.Errorf("%s: fallback %v has no runtime cost guard", n.Name, fb)
			}
			b := PlanBytes(fb, n.OutShape.NumElements(), as.Sparsity, cfg.DPR)
			if b < prev {
				t.Errorf("%s: fallback %v predicted %d bytes, smaller than its predecessor %d", n.Name, fb, b, prev)
			}
			prev = b
		}
		// The winner must actually be the argmin over eligible candidates.
		for _, tech := range cfg.AdaptiveSet {
			if !adaptiveEligible(cfg, n, tech, as.Sparsity) {
				continue
			}
			if b := PlanBytes(tech, n.OutShape.NumElements(), as.Sparsity, cfg.DPR); b < as.EncodedBytes {
				t.Errorf("%s: %v predicts %d bytes, beating the chosen %v at %d",
					n.Name, tech, b, as.Tech, as.EncodedBytes)
			}
		}
	}
	if assigned == 0 {
		t.Fatal("adaptive analysis assigned nothing")
	}
	// The sparse ReLU stashes are eligible for several techniques, so the
	// losers must be recorded as runtime fallbacks alongside a measured
	// sparsity estimate.
	for _, n := range g.Nodes {
		if n.Kind() != layers.ReLU {
			continue
		}
		as := a.ByNode[n.ID]
		if as == nil {
			t.Errorf("%s: sparse stash left unassigned", n.Name)
			continue
		}
		if as.Sparsity <= 0 {
			t.Errorf("%s: sparse stash planned with sparsity %v", n.Name, as.Sparsity)
		}
		if len(as.Fallbacks) == 0 {
			t.Errorf("%s: multi-candidate stash has no fallback chain", n.Name)
		}
	}
}

// TestAdaptiveFallbackChain forces the runtime degradation path: a stash
// planned as ZVC but fully dense at runtime must fail ZVC's cost guard,
// walk the fallback chain, and land on the terminal dense encode — with
// the stash still decoding correctly.
func TestAdaptiveFallbackChain(t *testing.T) {
	rng := tensor.NewRNG(23)
	c := Codec{Pool: parallel.NewPool(2), ChunkElems: 768}
	tt := tensor.New(4096)
	for i := range tt.Data {
		tt.Data[i] = rng.Float32() + 0.25 // dense, incompressible
	}
	as := &Assignment{Tech: ZVC, Format: floatenc.FP32, Fallbacks: []Technique{SSDC}}
	e := &EncodedStash{}
	fellBack, err := c.EncodeStashAdaptiveInto(e, as, tt)
	if err != nil {
		t.Fatalf("adaptive encode: %v", err)
	}
	if !fellBack {
		t.Fatal("dense data did not trip the ZVC cost guard")
	}
	if e.Tech != DPR {
		t.Fatalf("fallback chain landed on %v, want the terminal dense DPR", e.Tech)
	}
	c.Seal(e)
	dec, err := c.Decode(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range tt.Data {
		if dec.Data[i] != v {
			t.Fatalf("dense fallback decode[%d] = %v, want %v", i, dec.Data[i], v)
		}
	}

	// The chain stops at the first fallback whose guard passes: the same
	// dense map is entropy-codable (its float bytes are heavily skewed), so
	// a ZVC → Entropy chain lands on Entropy rather than dense.
	as2 := &Assignment{Tech: ZVC, Format: floatenc.FP32, Fallbacks: []Technique{Entropy}}
	e3 := &EncodedStash{}
	fellBack, err = c.EncodeStashAdaptiveInto(e3, as2, tt)
	if err != nil {
		t.Fatalf("entropy-chain encode: %v", err)
	}
	if !fellBack || e3.Tech != Entropy {
		t.Fatalf("entropy chain: fellBack=%v tech=%v, want fallback onto Entropy", fellBack, e3.Tech)
	}

	// A sparse map with the same chain sticks with the primary.
	copy(tt.Data, randStash(rng, 4096, 0.8))
	e2 := &EncodedStash{}
	fellBack, err = c.EncodeStashAdaptiveInto(e2, as, tt)
	if err != nil {
		t.Fatalf("sparse adaptive encode: %v", err)
	}
	if fellBack || e2.Tech != ZVC {
		t.Fatalf("sparse stash: fellBack=%v tech=%v, want primary ZVC", fellBack, e2.Tech)
	}
}
