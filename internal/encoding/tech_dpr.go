package encoding

import (
	"encoding/binary"
	"fmt"

	"gist/internal/floatenc"
	"gist/internal/tensor"
)

// dprTech is delayed precision reduction (paper Section V): the stash is
// packed at FP16/FP10/FP8 after its last forward use and expanded back to
// FP32 before the backward use. Payload is the packed 32-bit word array;
// chunks own whole storage words (768 is a multiple of every
// values-per-word packing). DPR also serves as the dense-fallback
// container, holding raw FP32 words when the format is FP32.

type dprTech struct{}

func init() { registerTechnique(DPR, dprTech{}) }

func (dprTech) name() string     { return "DPR" }
func (dprTech) wireVersion() int { return 1 }

func (dprTech) encodeInto(cdc Codec, e *EncodedStash, as *Assignment, t *tensor.Tensor) error {
	e.Packed = cdc.encodePackedInto(e.Packed, as.Format, t.Data)
	return nil
}

func (dprTech) decodeInto(cdc Codec, out *tensor.Tensor, e *EncodedStash) error {
	if e.Packed == nil || e.Packed.N != len(out.Data) {
		return fmt.Errorf("%w: packed %d elements, shape %v", ErrShapeMismatch, packedN(e.Packed), e.Shape)
	}
	vpw, ok := packedValuesPerWord(e.Packed.Format)
	if !ok {
		return fmt.Errorf("%w: unknown packed format %d", ErrCorruptStash, int(e.Packed.Format))
	}
	if len(e.Packed.Words) != (e.Packed.N+vpw-1)/vpw {
		return fmt.Errorf("%w: %d packed words for %d %s values",
			ErrCorruptStash, len(e.Packed.Words), e.Packed.N, e.Packed.Format)
	}
	if ce, serial := cdc.serialChunks(len(out.Data)); serial {
		for lo := 0; lo < len(out.Data); lo += ce {
			e.Packed.DecodeRange(out.Data, lo, min(lo+ce, len(out.Data)))
		}
	} else {
		cdc.forChunks(len(out.Data), func(lo, hi int) {
			e.Packed.DecodeRange(out.Data, lo, hi)
		})
	}
	return nil
}

func (dprTech) payloadElems(e *EncodedStash) int {
	if e.Packed != nil {
		return e.Packed.N
	}
	return 0
}

func (dprTech) bytes(e *EncodedStash) int64 { return e.Packed.Bytes() }

func (dprTech) payloadBits(e *EncodedStash) int { return len(e.Packed.Words) * 32 }

func (dprTech) flipBit(e *EncodedStash, i int) {
	e.Packed.Words[i/32] ^= 1 << (uint(i) % 32)
}

func (dprTech) chunkOfBit(e *EncodedStash, i, ce, nc int) int {
	vpw := e.Packed.Format.ValuesPerWord()
	elem := (i / 32) * vpw
	n := e.Packed.N
	return clampChunk(min(elem, n-1)/ce, nc)
}

func (dprTech) chunkSpanBytes(e *EncodedStash, elemLo, elemHi int) (int64, int64) {
	vpw, ok := packedValuesPerWord(e.Packed.Format)
	if !ok {
		return -1, -1
	}
	w0 := elemLo / vpw
	w1 := (elemHi + vpw - 1) / vpw
	return int64(w0) * 4, int64(w1) * 4
}

func (dprTech) checksumPayload(e *EncodedStash, w *crcWriter) {
	for _, word := range e.Packed.Words {
		w.u32(word)
	}
}

func (dprTech) chunkChecksums(cdc Codec, e *EncodedStash, ce int, hcrc uint32) (full uint32, chunks []uint32, ok bool) {
	p := e.Packed
	if p == nil {
		return 0, nil, false
	}
	vpw, okFmt := packedValuesPerWord(p.Format)
	if !okFmt {
		return 0, nil, false
	}
	n := p.N
	if len(p.Words) != (n+vpw-1)/vpw {
		return 0, nil, false
	}
	if n == 0 {
		return hcrc, nil, true
	}
	nc := (n + ce - 1) / ce
	crcs := make([]uint32, nc)
	lens := make([]int64, nc)
	cdc.pool().ForEach(nc, func(c int) {
		w0 := c * ce / vpw
		w1 := (min((c+1)*ce, n) + vpw - 1) / vpw
		crcs[c] = crcUint32s(p.Words[w0:w1])
		lens[c] = int64(w1-w0) * 4
	})
	full = hcrc
	for c := range crcs {
		full = crc32Combine(full, crcs[c], lens[c])
	}
	return full, crcs, true
}

func (dprTech) marshalPayload(e *EncodedStash, out []byte) ([]byte, error) {
	if e.Packed == nil {
		return nil, fmt.Errorf("encoding: marshal: DPR stash without payload")
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(e.Packed.Format))
	out = binary.LittleEndian.AppendUint32(out, uint32(e.Packed.N))
	for _, w := range e.Packed.Words {
		out = binary.LittleEndian.AppendUint32(out, w)
	}
	return out, nil
}

func (dprTech) unmarshalPayload(e *EncodedStash, r *stashReader) {
	f := floatenc.Format(r.u32())
	vpw, okFmt := packedValuesPerWord(f)
	if r.err == nil && !okFmt {
		r.fail("unknown packed format %d", int(f))
	}
	n := r.count("packed value", maxStashElems, 0)
	p := &floatenc.Packed{Format: f, N: n}
	if r.err == nil {
		if nw := (n + vpw - 1) / vpw; nw*4 > len(r.data)-r.off {
			r.fail("%d packed words exceed remaining bytes", nw)
		} else {
			for i := 0; i < nw; i++ {
				p.Words = append(p.Words, r.u32())
			}
		}
	}
	if r.err == nil {
		e.Packed = p
	}
}

func (dprTech) planBytes(elems int, sparsity float64, f floatenc.Format) int64 {
	return f.PackedBytes(elems)
}

func (dprTech) overheadTime(t float64, stream func(int64) float64, dense, enc int64) float64 {
	// Quantize pass (read FP32, write packed) + decode pass.
	t += stream(dense + enc)
	t += stream(dense + enc)
	return t
}
