package encoding

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"gist/internal/floatenc"
	"gist/internal/parallel"
	"gist/internal/tensor"
)

// randStash fills a length-n buffer with the mixed-sign, partly-zero data
// the codecs see in training: zero with probability sparsity, otherwise a
// uniform value in (-1, 1) (sign exercises Binarize, zeros exercise SSDC).
func randStash(rng *tensor.RNG, n int, sparsity float64) []float32 {
	xs := make([]float32, n)
	for i := range xs {
		if rng.Float64() >= sparsity {
			xs[i] = rng.Float32()*2 - 1
			if xs[i] == 0 {
				xs[i] = 0.5
			}
		}
	}
	return xs
}

// propAssignments are the technique/format combinations the property tests
// sweep: every codec, including DPR layered on SSDC/ZVC and the entropy
// stage over both raw and DPR-packed words.
func propAssignments() []*Assignment {
	return []*Assignment{
		{Tech: Binarize, Format: floatenc.FP32},
		{Tech: SSDC, Format: floatenc.FP32},
		{Tech: SSDC, Format: floatenc.FP16},
		{Tech: DPR, Format: floatenc.FP16},
		{Tech: DPR, Format: floatenc.FP10},
		{Tech: DPR, Format: floatenc.FP8},
		{Tech: ZVC, Format: floatenc.FP32},
		{Tech: ZVC, Format: floatenc.FP16},
		{Tech: Entropy, Format: floatenc.FP32},
		{Tech: Entropy, Format: floatenc.FP16},
	}
}

// propWorkers returns the deduplicated worker counts to sweep: 1 (serial)
// through 2x GOMAXPROCS (oversubscribed).
func propWorkers() []int {
	maxProcs := runtime.GOMAXPROCS(0)
	seen := map[int]bool{}
	var ws []int
	for _, w := range []int{1, 2, 3, maxProcs, 2 * maxProcs} {
		if w >= 1 && !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	return ws
}

// propSizes covers the chunk-boundary edge cases relative to the 768-element
// alignment and the test chunk sizes: below/at/above word (64), row (256)
// and alignment (768) boundaries, exact chunk multiples (zero remainder) and
// off-by-one neighbours.
var propSizes = []int{1, 7, 63, 64, 65, 255, 256, 257, 767, 768, 769, 1535, 1536, 1537, 4096, 10000}

// propChunkElems sweeps chunk sizes: one alignment group, two, a value that
// is not a multiple of 768 (rounded up by the codec), and the default.
var propChunkElems = []int{768, 1536, 1000, 0}

// assertStashesIdentical requires two encoded stashes to agree byte for
// byte: payload arrays, chunk layout, checksum and chunk CRCs.
func assertStashesIdentical(t *testing.T, want, got *EncodedStash, label string) {
	t.Helper()
	if want.Tech != got.Tech || !want.Shape.Equal(got.Shape) {
		t.Fatalf("%s: tech/shape %v %v, want %v %v", label, got.Tech, got.Shape, want.Tech, want.Shape)
	}
	switch want.Tech {
	case Binarize:
		if want.Mask.Len() != got.Mask.Len() {
			t.Fatalf("%s: mask %d bits, want %d", label, got.Mask.Len(), want.Mask.Len())
		}
		for i, w := range want.Mask.Words() {
			if got.Mask.Words()[i] != w {
				t.Fatalf("%s: mask word %d = %#x, want %#x", label, i, got.Mask.Words()[i], w)
			}
		}
	case SSDC:
		if want.CSR.Rows != got.CSR.Rows || want.CSR.Cols != got.CSR.Cols || want.CSR.N != got.CSR.N {
			t.Fatalf("%s: CSR dims %dx%d/%d, want %dx%d/%d", label,
				got.CSR.Rows, got.CSR.Cols, got.CSR.N, want.CSR.Rows, want.CSR.Cols, want.CSR.N)
		}
		for i, p := range want.CSR.RowPtr {
			if got.CSR.RowPtr[i] != p {
				t.Fatalf("%s: RowPtr[%d] = %d, want %d", label, i, got.CSR.RowPtr[i], p)
			}
		}
		if len(want.CSR.ColIdx) != len(got.CSR.ColIdx) {
			t.Fatalf("%s: %d non-zeros, want %d", label, len(got.CSR.ColIdx), len(want.CSR.ColIdx))
		}
		for i := range want.CSR.ColIdx {
			if got.CSR.ColIdx[i] != want.CSR.ColIdx[i] {
				t.Fatalf("%s: ColIdx[%d] = %d, want %d", label, i, got.CSR.ColIdx[i], want.CSR.ColIdx[i])
			}
			if math.Float32bits(got.CSR.Values[i]) != math.Float32bits(want.CSR.Values[i]) {
				t.Fatalf("%s: Values[%d] = %v, want %v", label, i, got.CSR.Values[i], want.CSR.Values[i])
			}
		}
	case DPR:
		if want.Packed.Format != got.Packed.Format || want.Packed.N != got.Packed.N {
			t.Fatalf("%s: packed %s/%d, want %s/%d", label,
				got.Packed.Format, got.Packed.N, want.Packed.Format, want.Packed.N)
		}
		for i, w := range want.Packed.Words {
			if got.Packed.Words[i] != w {
				t.Fatalf("%s: packed word %d = %#x, want %#x", label, i, got.Packed.Words[i], w)
			}
		}
	case ZVC:
		if want.ZVC.Mask.Len() != got.ZVC.Mask.Len() {
			t.Fatalf("%s: zvc mask %d bits, want %d", label, got.ZVC.Mask.Len(), want.ZVC.Mask.Len())
		}
		for i, w := range want.ZVC.Mask.Words() {
			if got.ZVC.Mask.Words()[i] != w {
				t.Fatalf("%s: zvc mask word %d = %#x, want %#x", label, i, got.ZVC.Mask.Words()[i], w)
			}
		}
		if len(want.ZVC.Values) != len(got.ZVC.Values) {
			t.Fatalf("%s: %d zvc values, want %d", label, len(got.ZVC.Values), len(want.ZVC.Values))
		}
		for i := range want.ZVC.Values {
			if math.Float32bits(got.ZVC.Values[i]) != math.Float32bits(want.ZVC.Values[i]) {
				t.Fatalf("%s: zvc value %d = %v, want %v", label, i, got.ZVC.Values[i], want.ZVC.Values[i])
			}
		}
	case Entropy:
		if want.Ent.Format != got.Ent.Format || want.Ent.N != got.Ent.N {
			t.Fatalf("%s: entropy %s/%d, want %s/%d", label,
				got.Ent.Format, got.Ent.N, want.Ent.Format, want.Ent.N)
		}
		if len(want.Ent.Lens) != len(got.Ent.Lens) {
			t.Fatalf("%s: %d entropy blocks, want %d", label, len(got.Ent.Lens), len(want.Ent.Lens))
		}
		for i, l := range want.Ent.Lens {
			if got.Ent.Lens[i] != l {
				t.Fatalf("%s: entropy block %d len %d, want %d", label, i, got.Ent.Lens[i], l)
			}
		}
		if len(want.Ent.Stream) != len(got.Ent.Stream) {
			t.Fatalf("%s: entropy stream %d bytes, want %d", label, len(got.Ent.Stream), len(want.Ent.Stream))
		}
		for i, b := range want.Ent.Stream {
			if got.Ent.Stream[i] != b {
				t.Fatalf("%s: entropy stream byte %d = %#x, want %#x", label, i, got.Ent.Stream[i], b)
			}
		}
	}
	if want.ChunkElems != got.ChunkElems {
		t.Fatalf("%s: chunk size %d, want %d", label, got.ChunkElems, want.ChunkElems)
	}
	if want.Checksum != got.Checksum {
		t.Fatalf("%s: checksum %#x, want %#x", label, got.Checksum, want.Checksum)
	}
	if len(want.ChunkCRCs) != len(got.ChunkCRCs) {
		t.Fatalf("%s: %d chunk CRCs, want %d", label, len(got.ChunkCRCs), len(want.ChunkCRCs))
	}
	for i, c := range want.ChunkCRCs {
		if got.ChunkCRCs[i] != c {
			t.Fatalf("%s: chunk CRC %d = %#x, want %#x", label, i, got.ChunkCRCs[i], c)
		}
	}
}

// TestParallelEncodeMatchesSerialByteForByte is the central determinism
// property: for random shapes and sparsities, every worker count and chunk
// size produces a sealed stash identical to the serial one, the rolled-up
// checksum equals the serial whole-payload oracle, and decode round-trips
// exactly (bit-exact for Binarize/SSDC, equal to Format.Quantize for DPR).
func TestParallelEncodeMatchesSerialByteForByte(t *testing.T) {
	rng := tensor.NewRNG(42)
	workers := propWorkers()
	for _, n := range propSizes {
		in := randStash(rng, n, 0.75)
		tt := tensor.New(n)
		copy(tt.Data, in)
		for _, as := range propAssignments() {
			for _, ce := range propChunkElems {
				label := fmt.Sprintf("%v/%s n=%d ce=%d", as.Tech, as.Format, n, ce)
				serial := Codec{Pool: parallel.NewPool(1), ChunkElems: ce}
				se, sFell, err := serial.EncodeStashAdaptive(as, tt)
				if err != nil {
					t.Fatalf("%s: serial encode: %v", label, err)
				}
				serial.Seal(se)
				sd, err := serial.Decode(se)
				if err != nil {
					t.Fatalf("%s: serial decode: %v", label, err)
				}
				checkRoundTrip(t, as, se, in, sd.Data, label)
				for _, w := range workers {
					c := Codec{Pool: parallel.NewPool(w), ChunkElems: ce}
					pe, pFell, err := c.EncodeStashAdaptive(as, tt)
					if err != nil {
						t.Fatalf("%s w=%d: encode: %v", label, w, err)
					}
					if pFell != sFell {
						t.Fatalf("%s w=%d: fallback %v, serial %v", label, w, pFell, sFell)
					}
					c.Seal(pe)
					assertStashesIdentical(t, se, pe, fmt.Sprintf("%s w=%d", label, w))
					if oracle := pe.checksum(); pe.Checksum != oracle {
						t.Fatalf("%s w=%d: rolled-up checksum %#x, serial oracle %#x", label, w, pe.Checksum, oracle)
					}
					pd, err := c.Decode(pe)
					if err != nil {
						t.Fatalf("%s w=%d: decode: %v", label, w, err)
					}
					for i := range sd.Data {
						if math.Float32bits(pd.Data[i]) != math.Float32bits(sd.Data[i]) {
							t.Fatalf("%s w=%d: decoded[%d] = %v, serial %v", label, w, i, pd.Data[i], sd.Data[i])
						}
					}
				}
			}
		}
	}
}

// checkRoundTrip pins decode semantics against the original input: Binarize
// reconstructs the positivity indicator; SSDC, ZVC and Entropy are exact
// (bit-exact at FP32, value-quantized when DPR is layered on); and DPR
// equals Format.Quantize elementwise — Quantize is Decode∘Encode, so this
// is an equality, with the format's MaxRelativeError bound double-checked
// on top.
func checkRoundTrip(t *testing.T, as *Assignment, enc *EncodedStash, in, got []float32, label string) {
	t.Helper()
	if len(got) != len(in) {
		t.Fatalf("%s: decoded %d elements, want %d", label, len(got), len(in))
	}
	for i, v := range in {
		var want float32
		switch {
		case as.Tech == Binarize:
			if v > 0 {
				want = 1
			}
		default:
			// SSDC stashes quantize their value array at the assignment
			// format (identity at FP32); dense DPR (and the SSDC fallback,
			// which re-encodes densely) quantizes every element.
			want = as.Format.Quantize(v)
		}
		if math.Float32bits(got[i]) != math.Float32bits(want) {
			t.Fatalf("%s: round-trip[%d] = %v, want %v (in %v)", label, i, got[i], want, v)
		}
		// MaxRelativeError bounds rounding only inside the format's normal
		// range; values the format flushes to zero (narrow FP8/FP10
		// exponents) are excluded, their exactness already pinned above.
		if as.Tech != Binarize && v != 0 && want != 0 {
			rel := math.Abs(float64(got[i]-v)) / math.Abs(float64(v))
			if rel > as.Format.MaxRelativeError() {
				t.Fatalf("%s: round-trip[%d] relative error %g exceeds %g", label, i, rel, as.Format.MaxRelativeError())
			}
		}
	}
}

// TestChunkErrorLocalizesEveryPayloadBit sweeps probe bits across every
// payload segment of a multi-chunk stash: flipping bit i must make Verify
// report exactly the chunk ChunkOfBit(i), and restoring it must verify
// clean again.
func TestChunkErrorLocalizesEveryPayloadBit(t *testing.T) {
	rng := tensor.NewRNG(7)
	c := Codec{Pool: parallel.NewPool(2), ChunkElems: 768}
	for _, as := range propAssignments() {
		n := 4096 // 6 chunks of 768
		tt := tensor.New(n)
		copy(tt.Data, randStash(rng, n, 0.8))
		enc, _, err := c.EncodeStashAdaptive(as, tt)
		if err != nil {
			t.Fatalf("%v/%s: encode: %v", as.Tech, as.Format, err)
		}
		c.Seal(enc)
		if nc := enc.NumChunks(); nc < 2 {
			t.Fatalf("%v/%s: %d chunks, want multi-chunk", as.Tech, as.Format, nc)
		}
		bits := enc.PayloadBits()
		// Probe first/last bits plus a spread through the middle, which for
		// SSDC crosses the RowPtr/ColIdx/Values segment boundaries.
		probes := []int{0, 1, bits / 3, bits / 2, 2 * bits / 3, bits - 2, bits - 1}
		for _, bit := range probes {
			enc.FlipBit(bit)
			err := c.Verify(enc)
			if err == nil {
				t.Fatalf("%v/%s: flip of bit %d undetected", as.Tech, as.Format, bit)
			}
			if !errors.Is(err, ErrCorruptStash) {
				t.Fatalf("%v/%s: flip error %v does not wrap ErrCorruptStash", as.Tech, as.Format, err)
			}
			chunk, ok := CorruptedChunk(err)
			if !ok {
				t.Fatalf("%v/%s: flip of bit %d produced no chunk localization: %v", as.Tech, as.Format, bit, err)
			}
			if want := enc.ChunkOfBit(bit); chunk != want {
				t.Fatalf("%v/%s: flip of bit %d attributed to chunk %d, want %d",
					as.Tech, as.Format, bit, chunk, want)
			}
			// White-box: exactly one chunk CRC moved.
			_, chunks, ok := c.chunkChecksums(enc)
			if !ok || len(chunks) != len(enc.ChunkCRCs) {
				t.Fatalf("%v/%s: chunk re-hash failed after flip of bit %d", as.Tech, as.Format, bit)
			}
			mismatches := 0
			for i := range chunks {
				if chunks[i] != enc.ChunkCRCs[i] {
					mismatches++
				}
			}
			if mismatches != 1 {
				t.Fatalf("%v/%s: flip of bit %d tripped %d chunks, want exactly 1",
					as.Tech, as.Format, bit, mismatches)
			}
			enc.FlipBit(bit)
			if err := c.Verify(enc); err != nil {
				t.Fatalf("%v/%s: restore of bit %d still fails: %v", as.Tech, as.Format, bit, err)
			}
		}
	}
}

// TestChunkOfBitRegression pins the payload-bit → chunk mapping on known
// layouts, so FlipBit and the chunked CRC layout can never silently drift
// apart (the bug class this PR's fix targets).
func TestChunkOfBitRegression(t *testing.T) {
	c := Codec{Pool: parallel.NewPool(1), ChunkElems: 768}

	// Binarize, 2000 bits: chunks own elements [0,768), [768,1536),
	// [1536,2000); the last word's padding bits clamp into the final chunk.
	mask := tensor.New(2000)
	for i := range mask.Data {
		mask.Data[i] = 1
	}
	be, err := c.EncodeStash(&Assignment{Tech: Binarize}, mask)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ bit, chunk int }{
		{0, 0}, {767, 0}, {768, 1}, {1535, 1}, {1536, 2}, {1999, 2},
		{2000, 2},                 // padding bit of the last word
		{be.PayloadBits() - 1, 2}, // final padding bit
	} {
		if got := be.ChunkOfBit(tc.bit); got != tc.chunk {
			t.Errorf("Binarize bit %d → chunk %d, want %d", tc.bit, got, tc.chunk)
		}
	}

	// DPR FP10 packs 3 values per 32-bit word, so word w holds elements
	// [3w, 3w+3). Bit 32*256 starts word 256 = element 768 → chunk 1.
	dt := tensor.New(2000)
	de, err := c.EncodeStash(&Assignment{Tech: DPR, Format: floatenc.FP10}, dt)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ bit, chunk int }{
		{0, 0}, {32*256 - 1, 0}, {32 * 256, 1}, {32*512 - 1, 1}, {32 * 512, 2},
		{de.PayloadBits() - 1, 2},
	} {
		if got := de.ChunkOfBit(tc.bit); got != tc.chunk {
			t.Errorf("DPR/FP10 bit %d → chunk %d, want %d", tc.bit, got, tc.chunk)
		}
	}

	// SSDC over 1600 elements: 7 rows of 256 cols, 3 chunks of 3 rows.
	// RowPtr entry p is written with row p-1 (entry 0 belongs to chunk 0);
	// ColIdx/Values split into proportional thirds.
	st := tensor.New(1600)
	for i := range st.Data {
		if i%4 == 0 { // 25% dense, well past break-even
			st.Data[i] = 1
		}
	}
	se, err := c.EncodeStash(&Assignment{Tech: SSDC, Format: floatenc.FP32}, st)
	if err != nil {
		t.Fatal(err)
	}
	if se.NumChunks() != 3 || se.CSR.Rows != 7 {
		t.Fatalf("SSDC layout: %d chunks, %d rows; want 3, 7", se.NumChunks(), se.CSR.Rows)
	}
	rpBits := len(se.CSR.RowPtr) * 32
	ciBits := len(se.CSR.ColIdx) * 8
	nnz := se.CSR.NNZ()
	for _, tc := range []struct {
		name string
		bit  int
		want int
	}{
		{"RowPtr[0]", 0, 0},                  // leading constant zero → chunk 0
		{"RowPtr[3]", 3 * 32, 0},             // row 2, element 512 → chunk 0
		{"RowPtr[4]", 4 * 32, 1},             // row 3, element 768 → chunk 1
		{"RowPtr[7]", 7 * 32, 2},             // row 6 → chunk 2
		{"ColIdx[0]", rpBits, 0},             // first index span
		{"ColIdx[last]", rpBits + ciBits - 1, 2},
		{"Values[0]", rpBits + ciBits, 0},
		{"Values[mid]", rpBits + ciBits + (nnz/2)*32, spanOf(nnz/2, nnz, 3)},
		{"Values[last]", rpBits + ciBits + nnz*32 - 1, 2},
	} {
		if got := se.ChunkOfBit(tc.bit); got != tc.want {
			t.Errorf("SSDC %s (bit %d) → chunk %d, want %d", tc.name, tc.bit, got, tc.want)
		}
	}
}

// TestFlipBitAgreesWithPayloadBits re-pins the FlipBit/PayloadBits contract
// on chunked layouts: every payload bit is flippable, detected, and maps to
// a chunk within range.
func TestFlipBitAgreesWithPayloadBits(t *testing.T) {
	rng := tensor.NewRNG(13)
	c := Codec{Pool: parallel.NewPool(2), ChunkElems: 768}
	for _, as := range propAssignments() {
		tt := tensor.New(1600)
		copy(tt.Data, randStash(rng, 1600, 0.8))
		enc, _, err := c.EncodeStashAdaptive(as, tt)
		if err != nil {
			t.Fatal(err)
		}
		c.Seal(enc)
		bits := enc.PayloadBits()
		nc := enc.NumChunks()
		stride := max(bits/97, 1) // sample ~100 bits across all segments
		for bit := 0; bit < bits; bit += stride {
			chunk := enc.ChunkOfBit(bit)
			if chunk < 0 || chunk >= nc {
				t.Fatalf("%v/%s: bit %d maps to chunk %d outside [0,%d)", as.Tech, as.Format, bit, chunk, nc)
			}
			enc.FlipBit(bit)
			if err := c.Verify(enc); err == nil {
				t.Fatalf("%v/%s: flip of bit %d undetected", as.Tech, as.Format, bit)
			}
			enc.FlipBit(bit)
		}
		if err := c.Verify(enc); err != nil {
			t.Fatalf("%v/%s: stash damaged by flip/restore sweep: %v", as.Tech, as.Format, err)
		}
		for _, bad := range []int{-1, bits} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%v/%s: ChunkOfBit(%d) did not panic", as.Tech, as.Format, bad)
					}
				}()
				enc.ChunkOfBit(bad)
			}()
		}
	}
}

// TestDefaultCodecRouting checks the package-level entry points honour
// SetDefaultCodec, and that stashes encoded under one codec verify under
// another (the layout travels with the stash).
func TestDefaultCodecRouting(t *testing.T) {
	defer SetDefaultCodec(Codec{})
	SetDefaultCodec(Codec{Pool: parallel.NewPool(2), ChunkElems: 768})
	tt := tensor.New(4096)
	for i := range tt.Data {
		tt.Data[i] = float32(i%3) - 1
	}
	enc, err := EncodeStash(&Assignment{Tech: Binarize}, tt)
	if err != nil {
		t.Fatal(err)
	}
	if enc.ChunkElems != 768 {
		t.Fatalf("stash chunk size %d, want the default codec's 768", enc.ChunkElems)
	}
	enc.Seal()
	if len(enc.ChunkCRCs) != 6 {
		t.Fatalf("%d chunk CRCs, want 6", len(enc.ChunkCRCs))
	}
	// A differently configured codec must still verify and decode it.
	other := Codec{Pool: parallel.NewPool(3), ChunkElems: 5000}
	if err := other.Verify(enc); err != nil {
		t.Fatalf("cross-codec verify: %v", err)
	}
	dec, err := other.Decode(enc)
	if err != nil {
		t.Fatalf("cross-codec decode: %v", err)
	}
	for i := range tt.Data {
		want := float32(0)
		if tt.Data[i] > 0 {
			want = 1
		}
		if dec.Data[i] != want {
			t.Fatalf("decoded[%d] = %v, want %v", i, dec.Data[i], want)
		}
	}
}

// TestConcurrentCodecsOnSharedPool hammers the shared worker pool from many
// concurrent encode/seal/verify/decode pipelines — the -race workload for
// the codec layer.
func TestConcurrentCodecsOnSharedPool(t *testing.T) {
	parallel.SetSharedWorkers(4)
	defer parallel.SetSharedWorkers(0)
	c := Codec{ChunkElems: 768} // nil Pool → shared
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := tensor.NewRNG(seed + 1)
			for iter := 0; iter < 6; iter++ {
				as := propAssignments()[iter%len(propAssignments())]
				tt := tensor.New(3000 + int(seed))
				copy(tt.Data, randStash(rng, len(tt.Data), 0.8))
				enc, _, err := c.EncodeStashAdaptive(as, tt)
				if err != nil {
					errs <- err
					return
				}
				c.Seal(enc)
				if enc.Checksum != enc.checksum() {
					errs <- fmt.Errorf("goroutine %d: checksum mismatch vs serial oracle", seed)
					return
				}
				if _, err := c.Decode(enc); err != nil {
					errs <- err
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestChunkErrorMessage keeps the error surface readable: the chunk error
// names the chunk, technique and shape.
func TestChunkErrorMessage(t *testing.T) {
	err := (&ChunkError{Chunk: 3, Chunks: 7, Tech: SSDC, Shape: tensor.Shape{4, 8}, Got: 1, Want: 2}).Error()
	for _, want := range []string{"chunk 3/7", "SSDC", "corrupt stash"} {
		if !strings.Contains(err, want) {
			t.Errorf("chunk error %q missing %q", err, want)
		}
	}
}
