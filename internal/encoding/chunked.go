package encoding

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"gist/internal/bitpack"
	"gist/internal/bufpool"
	"gist/internal/floatenc"
	"gist/internal/parallel"
	"gist/internal/sparse"
	"gist/internal/telemetry"
	"gist/internal/tensor"
)

// The parallel chunked codec layer. Every stash payload is split into
// row-aligned chunks of ChunkElems elements; chunks encode, decode and hash
// independently on a bounded worker pool, and the per-chunk CRCs roll up —
// via crc32Combine — into exactly the checksum the serial whole-payload
// pass computes. The layout depends only on the element count and chunk
// size, never on the worker count, so parallel and serial runs produce
// byte-identical sealed stashes.

const (
	// chunkAlign is the element granularity every chunk boundary sits on:
	// the least common multiple of a 64-bit mask word (Binarize), a
	// 256-column narrow-CSR row (SSDC) and the 2/3/4 values-per-word DPR
	// packings. Alignment guarantees concurrent chunks never share a
	// backing word or matrix row.
	chunkAlign = 768

	// DefaultChunkElems is the default chunk size: 128 aligned groups
	// (98304 elements, 384 KiB of FP32), small enough that VGG-scale
	// feature maps split across every core and large enough that the
	// per-chunk dispatch cost disappears into the kernel work.
	DefaultChunkElems = 128 * chunkAlign
)

// Codec binds the chunked kernels to a worker pool and chunk size. The
// zero Codec is valid: it uses the process-wide parallel.Shared() pool and
// DefaultChunkElems. A Codec is a value type safe for concurrent use.
type Codec struct {
	// Pool runs the chunk work; nil selects parallel.Shared(). A
	// one-worker pool is the serial path.
	Pool *parallel.Pool
	// ChunkElems is the chunk size in elements; it is rounded up to a
	// multiple of the 768-element alignment. 0 selects DefaultChunkElems.
	ChunkElems int
	// Tel, when non-nil, receives per-technique encode/decode latency
	// histograms, byte counters, chunk counts and CRC-failure events —
	// and, when the sink has tracing enabled, complete trace events per
	// codec call plus per-chunk worker spans. The nil default adds only a
	// nil check per call.
	Tel *telemetry.Sink
	// Buf, when non-nil, supplies the codec's transient scratch buffers
	// (the SSDC quantize copy) from the buffer pool instead of the heap;
	// the scratch is recycled as soon as the encoded form is built. The
	// nil default keeps the allocate-always behavior.
	Buf *bufpool.Pool
}

// defaultCodec holds the process-wide codec override set by SetDefaultCodec.
var defaultCodec atomic.Pointer[Codec]

// DefaultCodec returns the codec used by the package-level EncodeStash /
// Decode / Seal entry points: the zero Codec (shared pool, default chunk
// size) unless SetDefaultCodec installed an override.
func DefaultCodec() Codec {
	if p := defaultCodec.Load(); p != nil {
		return *p
	}
	return Codec{}
}

// SetDefaultCodec installs the codec behind the package-level entry points.
// Safe to call concurrently; in-flight operations keep the codec they
// started with.
func SetDefaultCodec(c Codec) {
	defaultCodec.Store(&c)
}

// Workers reports the codec's worker-pool size.
func (cdc Codec) Workers() int { return cdc.pool().Workers() }

// WorkerPool returns the parallel pool the codec runs chunk work on (the
// shared pool when none is configured). The executor schedules its async
// decode futures on this pool, so decode work and chunk kernels share one
// worker budget instead of reaching through a package singleton.
func (cdc Codec) WorkerPool() *parallel.Pool { return cdc.pool() }

func (cdc Codec) pool() *parallel.Pool {
	if cdc.Pool != nil {
		return cdc.Pool
	}
	return parallel.Shared()
}

// normalizeChunkElems applies the default and rounds up to alignment.
func normalizeChunkElems(ce int) int {
	if ce <= 0 {
		return DefaultChunkElems
	}
	if r := ce % chunkAlign; r != 0 {
		ce += chunkAlign - r
	}
	return ce
}

func (cdc Codec) chunkElems() int { return normalizeChunkElems(cdc.ChunkElems) }

// serialChunks reports whether an n-element kernel should iterate its
// chunks inline on the caller's goroutine — a serial codec, or a payload
// that fits one chunk — and, when so, accounts them to the codec.chunks
// counter on behalf of the caller's loop. The inline loop exists for the
// pooled zero-alloc step: dispatching through forChunks costs one closure
// allocation per kernel, which the hot path cannot afford; per-chunk trace
// spans force the forChunks path so the trace still shows every chunk.
func (cdc Codec) serialChunks(n int) (ce int, serial bool) {
	ce = cdc.chunkElems()
	if n > ce && (cdc.pool().Workers() > 1 || cdc.Tel.TracingEnabled()) {
		return ce, false
	}
	if n > 0 {
		cdc.Tel.Counter("codec.chunks").Add(int64((n + ce - 1) / ce))
	}
	return ce, true
}

// forChunks partitions [0, n) into aligned chunks and runs fn over them on
// the pool (inline when a single chunk suffices).
func (cdc Codec) forChunks(n int, fn func(lo, hi int)) {
	ce := cdc.chunkElems()
	if n <= ce {
		if n > 0 {
			cdc.Tel.Counter("codec.chunks").Inc()
			fn(0, n)
		}
		return
	}
	nc := (n + ce - 1) / ce
	cdc.Tel.Counter("codec.chunks").Add(int64(nc))
	if cdc.Tel.TracingEnabled() {
		// Per-chunk worker spans: each lands on its own track exactly
		// while chunks overlap, so the trace shows pool utilization.
		inner := fn
		fn = func(lo, hi int) {
			sp := cdc.Tel.Begin("codec", "chunk",
				telemetry.Int("lo", int64(lo)), telemetry.Int("hi", int64(hi)))
			inner(lo, hi)
			sp.End()
		}
	}
	cdc.pool().ForEach(nc, func(c int) {
		fn(c*ce, min((c+1)*ce, n))
	})
}

// EncodeStash encodes a feature map per the assignment, chunk-parallel on
// the codec's pool. Output is byte-identical to the serial path for every
// worker count. See the package-level EncodeStash for semantics.
func (cdc Codec) EncodeStash(as *Assignment, t *tensor.Tensor) (*EncodedStash, error) {
	if cdc.Tel == nil {
		return cdc.encodeStash(as, t)
	}
	start := time.Now()
	e, err := cdc.encodeStash(as, t)
	var held int64
	if e != nil {
		held = e.Bytes()
	}
	cdc.observe("encode", as.Tech, start, held, err)
	return e, err
}

func (cdc Codec) encodeStash(as *Assignment, t *tensor.Tensor) (*EncodedStash, error) {
	e := &EncodedStash{}
	if err := cdc.encodeStashInto(e, as, t); err != nil {
		return nil, err
	}
	return e, nil
}

// EncodeStashInto is EncodeStash building into a caller-owned container:
// the stash's mask / CSR / packed payloads are rebuilt in place, reusing
// their backing arrays when capacity allows, and any seal state is cleared.
// The pooled executor keeps one container per stashing node and re-encodes
// into it every step, so the encode path stops allocating entirely once the
// containers reach steady-state size. Output is byte-identical to
// EncodeStash. On error the container's contents are unspecified; reusing
// it for the next encode remains valid.
func (cdc Codec) EncodeStashInto(e *EncodedStash, as *Assignment, t *tensor.Tensor) error {
	if cdc.Tel == nil {
		return cdc.encodeStashInto(e, as, t)
	}
	start := time.Now()
	err := cdc.encodeStashInto(e, as, t)
	var held int64
	if err == nil {
		held = e.Bytes()
	}
	cdc.observe("encode", as.Tech, start, held, err)
	return err
}

func (cdc Codec) encodeStashInto(e *EncodedStash, as *Assignment, t *tensor.Tensor) error {
	return cdc.encodeTechInto(e, as.Tech, as, t)
}

// encodeTechInto encodes with an explicit technique, which may differ from
// as.Tech: the adaptive fallback chain re-encodes the same assignment at
// each of its fallback techniques without mutating the shared Assignment.
func (cdc Codec) encodeTechInto(e *EncodedStash, tech Technique, as *Assignment, t *tensor.Tensor) error {
	impl, ok := techImpl(tech)
	if !ok {
		return fmt.Errorf("%w (technique %v)", ErrNoTechnique, tech)
	}
	e.Tech = tech
	e.Shape = append(e.Shape[:0], t.Shape...)
	e.ChunkElems = cdc.chunkElems()
	e.Checksum, e.ChunkCRCs, e.sealed = 0, nil, false
	return impl.encodeInto(cdc, e, as, t)
}

// EncodeDense builds the dense fallback stash chunk-parallel; see the
// package-level EncodeDense.
func (cdc Codec) EncodeDense(f floatenc.Format, t *tensor.Tensor) *EncodedStash {
	e := &EncodedStash{}
	cdc.EncodeDenseInto(e, f, t)
	return e
}

// EncodeDenseInto is EncodeDense building into a caller-owned container,
// reusing its packed backing array when capacity allows (the in-place
// counterpart the pooled executor and the adaptive fallback use).
func (cdc Codec) EncodeDenseInto(e *EncodedStash, f floatenc.Format, t *tensor.Tensor) {
	var start time.Time
	if cdc.Tel != nil {
		start = time.Now()
	}
	e.Tech = DPR
	e.Shape = append(e.Shape[:0], t.Shape...)
	e.ChunkElems = cdc.chunkElems()
	e.Checksum, e.ChunkCRCs, e.sealed = 0, nil, false
	e.Packed = cdc.encodePackedInto(e.Packed, f, t.Data)
	if cdc.Tel != nil {
		cdc.observe("encode", DPR, start, e.Bytes(), nil)
	}
}

// observe records one codec operation: latency histogram, call and byte
// counters (all keyed by technique), an error counter, and — when the
// sink has tracing armed — a complete trace event covering the call.
func (cdc Codec) observe(op string, tech Technique, start time.Time, bytes int64, err error) {
	name := op + "." + tech.String()
	cdc.Tel.Histogram("codec." + name + ".ns").Observe(time.Since(start).Nanoseconds())
	cdc.Tel.Counter("codec." + name + ".calls").Inc()
	if bytes > 0 {
		cdc.Tel.Counter("codec." + name + ".bytes").Add(bytes)
	}
	if err != nil {
		cdc.Tel.Counter("codec." + op + ".errors").Inc()
	}
	cdc.Tel.Complete("codec", name, start)
}

// encodeTechObserved is encodeTechInto wrapped with the same telemetry
// EncodeStashInto records, keyed by the technique actually attempted — the
// adaptive chain uses it so each fallback step shows up under its own name.
func (cdc Codec) encodeTechObserved(e *EncodedStash, tech Technique, as *Assignment, t *tensor.Tensor) error {
	if cdc.Tel == nil {
		return cdc.encodeTechInto(e, tech, as, t)
	}
	start := time.Now()
	err := cdc.encodeTechInto(e, tech, as, t)
	var held int64
	if err == nil {
		held = e.Bytes()
	}
	cdc.observe("encode", tech, start, held, err)
	return err
}

// EncodeStashAdaptive encodes per the assignment, walking the assignment's
// fallback chain when the runtime data defeats the planned encoding; see
// the package-level variant.
func (cdc Codec) EncodeStashAdaptive(as *Assignment, t *tensor.Tensor) (e *EncodedStash, fellBack bool, err error) {
	e = &EncodedStash{}
	fellBack, err = cdc.EncodeStashAdaptiveInto(e, as, t)
	if err != nil {
		return nil, fellBack, err
	}
	return e, fellBack, nil
}

// EncodeStashAdaptiveInto is EncodeStashAdaptive building into a
// caller-owned container. The planned technique is tried first; each
// ErrStashTooLarge steps to the next entry of as.Fallbacks (cheaper
// predicted encodings the planner ranked behind the primary), and when the
// chain is exhausted the stash is rebuilt in the same container as the
// dense DPR encoding, which cannot fail. Every step is counted on
// codec.encode.fallbacks.
func (cdc Codec) EncodeStashAdaptiveInto(e *EncodedStash, as *Assignment, t *tensor.Tensor) (fellBack bool, err error) {
	err = cdc.EncodeStashInto(e, as, t)
	for _, tech := range as.Fallbacks {
		if !errors.Is(err, ErrStashTooLarge) {
			break
		}
		cdc.Tel.Counter("codec.encode.fallbacks").Inc()
		fellBack = true
		err = cdc.encodeTechObserved(e, tech, as, t)
	}
	if errors.Is(err, ErrStashTooLarge) {
		cdc.Tel.Counter("codec.encode.fallbacks").Inc()
		cdc.EncodeDenseInto(e, as.Format, t)
		return true, nil
	}
	return fellBack, err
}

// fromPositiveInto builds the Binarize mask chunk-parallel into m (a nil m
// allocates a fresh one): each chunk owns whole 64-bit words (chunk
// boundaries are 768-aligned).
func (cdc Codec) fromPositiveInto(m *bitpack.BitMask, xs []float32) *bitpack.BitMask {
	if m == nil {
		m = bitpack.NewBitMask(len(xs))
	} else {
		m.Reset(len(xs))
	}
	if ce, serial := cdc.serialChunks(len(xs)); serial {
		for lo := 0; lo < len(xs); lo += ce {
			m.FillPositiveRange(xs, lo, min(lo+ce, len(xs)))
		}
	} else {
		cdc.forChunks(len(xs), func(lo, hi int) {
			m.FillPositiveRange(xs, lo, hi)
		})
	}
	return m
}

// quantizedCopy copies and DPR-quantizes xs chunk-parallel, for the SSDC
// value-array reduction. The scratch comes from Buf when one is configured
// (the caller recycles it after the CSR is built) and the heap otherwise.
func (cdc Codec) quantizedCopy(f floatenc.Format, xs []float32) []float32 {
	var dst []float32
	if cdc.Buf != nil {
		dst = cdc.Buf.GetSlice(len(xs))
	} else {
		dst = make([]float32, len(xs))
	}
	if ce, serial := cdc.serialChunks(len(xs)); serial {
		for lo := 0; lo < len(xs); lo += ce {
			hi := min(lo+ce, len(xs))
			copy(dst[lo:hi], xs[lo:hi])
			floatenc.QuantizeSlice(f, dst[lo:hi])
		}
	} else {
		cdc.forChunks(len(xs), func(lo, hi int) {
			copy(dst[lo:hi], xs[lo:hi])
			floatenc.QuantizeSlice(f, dst[lo:hi])
		})
	}
	return dst
}

// encodePackedInto packs xs at the DPR format chunk-parallel into p (a nil
// p allocates a fresh one): each chunk owns whole storage words (chunk
// boundaries are 768-aligned, a multiple of every values-per-word packing).
func (cdc Codec) encodePackedInto(p *floatenc.Packed, f floatenc.Format, xs []float32) *floatenc.Packed {
	if p == nil {
		p = floatenc.NewPacked(f, len(xs))
	} else {
		p.Reset(f, len(xs))
	}
	if ce, serial := cdc.serialChunks(len(xs)); serial {
		for lo := 0; lo < len(xs); lo += ce {
			p.EncodeRange(xs, lo, min(lo+ce, len(xs)))
		}
	} else {
		cdc.forChunks(len(xs), func(lo, hi int) {
			p.EncodeRange(xs, lo, hi)
		})
	}
	return p
}

// Decode materializes the FP32 staging tensor chunk-parallel; see the
// package-level EncodedStash.Decode for semantics. A sealed stash is
// verified (per chunk) first, and structurally damaged payloads surface as
// typed errors rather than index panics, so Decode never panics on
// corrupted or deserialized input.
func (cdc Codec) Decode(e *EncodedStash) (*tensor.Tensor, error) {
	if cdc.Tel == nil {
		return cdc.decode(e)
	}
	start := time.Now()
	out, err := cdc.decode(e)
	var raw int64
	if out != nil {
		raw = out.Bytes()
	}
	cdc.observe("decode", e.Tech, start, raw, err)
	return out, err
}

// DecodeInto is Decode writing into a caller-provided destination tensor of
// the stash's shape — the pooled executor pre-allocates the decode target
// from its buffer pool and owns it through the async-decode handoff. Every
// element of dst is overwritten (decode kernels fully cover the payload),
// so a recycled buffer needs no pre-clearing. On error dst's contents are
// unspecified. Output is identical to Decode.
func (cdc Codec) DecodeInto(dst *tensor.Tensor, e *EncodedStash) error {
	if cdc.Tel == nil {
		return cdc.decodeInto(dst, e)
	}
	start := time.Now()
	err := cdc.decodeInto(dst, e)
	var raw int64
	if err == nil {
		raw = dst.Bytes()
	}
	cdc.observe("decode", e.Tech, start, raw, err)
	return err
}

func (cdc Codec) decode(e *EncodedStash) (*tensor.Tensor, error) {
	out := tensor.New(e.Shape...)
	if err := cdc.decodeInto(out, e); err != nil {
		return nil, err
	}
	return out, nil
}

func (cdc Codec) decodeInto(out *tensor.Tensor, e *EncodedStash) error {
	if err := cdc.Verify(e); err != nil {
		return err
	}
	if !out.Shape.Equal(e.Shape) {
		return fmt.Errorf("%w: destination shape %v, stash shape %v", ErrShapeMismatch, out.Shape, e.Shape)
	}
	impl, ok := techImpl(e.Tech)
	if !ok {
		return fmt.Errorf("%w (technique %v)", ErrNoTechnique, e.Tech)
	}
	return impl.decodeInto(cdc, out, e)
}

// nil-tolerant accessors for error messages on malformed stashes.
func maskBits(m *bitpack.BitMask) int {
	if m == nil {
		return 0
	}
	return m.Len()
}

func csrN(c *sparse.CSR) int {
	if c == nil {
		return 0
	}
	return c.N
}

func packedN(p *floatenc.Packed) int {
	if p == nil {
		return 0
	}
	return p.N
}

// packedValuesPerWord is ValuesPerWord without the panic on garbage
// formats (possible after deserialization of hostile bytes).
func packedValuesPerWord(f floatenc.Format) (int, bool) {
	switch f {
	case floatenc.FP32, floatenc.FP16, floatenc.FP10, floatenc.FP8:
		return f.ValuesPerWord(), true
	}
	return 0, false
}

// Seal computes per-chunk CRCs on the pool and rolls them up into the
// stash checksum — the exact value the serial whole-payload checksum()
// produces, by crc32Combine's construction. The chunk layout (ChunkElems)
// is fixed on the stash at encode time so Verify localizes corruption to
// the same chunks regardless of the verifying codec's configuration.
// Payloads whose structure does not fit the chunk layout (hand-built or
// deserialized oddities) seal with the serial checksum and no chunk CRCs.
func (cdc Codec) Seal(e *EncodedStash) {
	if e.ChunkElems <= 0 {
		e.ChunkElems = cdc.chunkElems()
	}
	full, chunks, ok := cdc.chunkChecksums(e)
	if !ok {
		e.Checksum = e.checksum()
		e.ChunkCRCs = nil
		e.sealed = true
		return
	}
	e.Checksum = full
	e.ChunkCRCs = chunks
	e.sealed = true
}

// Verify re-hashes a sealed stash chunk-parallel. A mismatch in a chunked
// stash returns a *ChunkError naming exactly the corrupted chunk (wrapping
// ErrCorruptStash); stashes sealed without chunk CRCs fall back to the
// whole-payload comparison.
func (cdc Codec) Verify(e *EncodedStash) error {
	err := cdc.verify(e)
	if err != nil && cdc.Tel != nil {
		cdc.Tel.Counter("codec.crc.failures").Inc()
		args := []telemetry.Arg{telemetry.Str("tech", e.Tech.String())}
		var ce *ChunkError
		if errors.As(err, &ce) {
			args = append(args,
				telemetry.Int("chunk", int64(ce.Chunk)),
				telemetry.Int("elem_lo", int64(ce.ElemLo)),
				telemetry.Int("elem_hi", int64(ce.ElemHi)))
		}
		cdc.Tel.Instant("codec", "crc-failure", args...)
	}
	return err
}

func (cdc Codec) verify(e *EncodedStash) error {
	if !e.sealed {
		return nil
	}
	full, chunks, ok := cdc.chunkChecksums(e)
	if !ok || len(chunks) != len(e.ChunkCRCs) {
		if got := e.checksum(); got != e.Checksum {
			return fmt.Errorf("%w: %v stash of shape %v: crc %#x, sealed %#x",
				ErrCorruptStash, e.Tech, e.Shape, got, e.Checksum)
		}
		return nil
	}
	for c := range chunks {
		if chunks[c] != e.ChunkCRCs[c] {
			elemLo, elemHi, byteLo, byteHi := e.ChunkSpan(c)
			return &ChunkError{
				Chunk: c, Chunks: len(chunks),
				Tech: e.Tech, Shape: e.Shape.Clone(),
				Got: chunks[c], Want: e.ChunkCRCs[c],
				ElemLo: elemLo, ElemHi: elemHi,
				ByteLo: byteLo, ByteHi: byteHi,
			}
		}
	}
	if full != e.Checksum {
		// Every chunk matches but the roll-up does not: the header
		// (technique or shape) or the sealed checksum itself was altered.
		return fmt.Errorf("%w: %v stash of shape %v: rolled-up crc %#x, sealed %#x",
			ErrCorruptStash, e.Tech, e.Shape, full, e.Checksum)
	}
	return nil
}

// ChunkError reports a chunk-level CRC mismatch from Verify: exactly chunk
// Chunk (of Chunks) of the held payload was altered. It wraps
// ErrCorruptStash so existing errors.Is recovery paths are unaffected.
type ChunkError struct {
	Chunk, Chunks int
	Tech          Technique
	Shape         tensor.Shape
	Got, Want     uint32
	// ElemLo/ElemHi is the payload element range the chunk covers, and
	// ByteLo/ByteHi its byte offsets within the payload word array — the
	// self-describing location trace and metric labels carry. Byte
	// offsets are -1 for SSDC, whose chunks span three backing arrays
	// (see ChunkSpan).
	ElemLo, ElemHi int
	ByteLo, ByteHi int64
}

func (c *ChunkError) Error() string {
	loc := ""
	if c.ElemHi > c.ElemLo {
		loc = fmt.Sprintf(" (elements %d-%d", c.ElemLo, c.ElemHi)
		if c.ByteHi > c.ByteLo && c.ByteLo >= 0 {
			loc += fmt.Sprintf(", payload bytes %d-%d", c.ByteLo, c.ByteHi)
		}
		loc += ")"
	}
	return fmt.Sprintf("encoding: corrupt stash (checksum mismatch): %v stash of shape %v: chunk %d/%d%s crc %#x, sealed %#x",
		c.Tech, c.Shape, c.Chunk, c.Chunks, loc, c.Got, c.Want)
}

// Unwrap makes errors.Is(err, ErrCorruptStash) hold for chunk errors.
func (c *ChunkError) Unwrap() error { return ErrCorruptStash }

// CorruptedChunk extracts the failing chunk index from a Verify or Decode
// error, reporting ok = false when the error carries no chunk localization.
func CorruptedChunk(err error) (chunk int, ok bool) {
	var ce *ChunkError
	if errors.As(err, &ce) {
		return ce.Chunk, true
	}
	return 0, false
}

// payloadElems returns the element count the chunk layout spans for each
// technique (mask bits, CSR logical elements, packed values).
func (e *EncodedStash) payloadElems() int {
	if impl, ok := techImpl(e.Tech); ok {
		return impl.payloadElems(e)
	}
	return 0
}

// NumChunks returns how many chunks the stash's payload layout has.
func (e *EncodedStash) NumChunks() int {
	ce := normalizeChunkElems(e.ChunkElems)
	n := e.payloadElems()
	return (n + ce - 1) / ce
}

// ChunkSpan returns the payload element range [elemLo, elemHi) chunk c
// covers and, when the technique keeps its payload in a single byte-
// addressable array (Binarize mask words, DPR packed words, entropy
// streams), the byte offsets [byteLo, byteHi) of that range within the
// array — the region whose CRC the chunk seals. Techniques whose chunks
// span several backing arrays (SSDC, ZVC) report byte offsets of -1.
func (e *EncodedStash) ChunkSpan(c int) (elemLo, elemHi int, byteLo, byteHi int64) {
	ce := normalizeChunkElems(e.ChunkElems)
	n := e.payloadElems()
	elemLo = min(c*ce, n)
	elemHi = min(elemLo+ce, n)
	byteLo, byteHi = -1, -1
	if elemHi <= elemLo {
		return elemLo, elemHi, byteLo, byteHi
	}
	if impl, ok := techImpl(e.Tech); ok {
		byteLo, byteHi = impl.chunkSpanBytes(e, elemLo, elemHi)
	}
	return elemLo, elemHi, byteLo, byteHi
}

// ChunkOfBit maps a payload bit index (as addressed by FlipBit, in
// [0, PayloadBits())) to the chunk whose CRC detects a flip of that bit.
// The mapping is pinned by regression tests: fault injection flips a bit,
// and Verify must report exactly this chunk.
func (e *EncodedStash) ChunkOfBit(i int) int {
	if i < 0 || i >= e.PayloadBits() {
		panic(fmt.Sprintf("encoding: ChunkOfBit index %d out of range [0,%d)", i, e.PayloadBits()))
	}
	ce := normalizeChunkElems(e.ChunkElems)
	nc := e.NumChunks()
	impl, _ := techImpl(e.Tech) // PayloadBits > 0 implies a registered technique
	return impl.chunkOfBit(e, i, ce, nc)
}

// spanOf inverts the proportional span partition spanBounds: the chunk c
// with spanBounds(c).lo <= k < spanBounds(c).hi.
func spanOf(k, length, nc int) int {
	return sort.Search(nc, func(c int) bool { return k < length*(c+1)/nc })
}

// spanBounds splits an array of the given length into nc contiguous,
// near-equal spans; span c is [lo, hi). The SSDC ColIdx/Values arrays are
// chunked this way — by index, not by row — so the chunk layout never
// depends on (possibly corrupted) RowPtr values.
func spanBounds(c, length, nc int) (lo, hi int) {
	return length * c / nc, length * (c + 1) / nc
}

// chunkChecksums hashes every chunk's payload pieces on the pool and
// returns the per-chunk CRCs plus their roll-up (which equals the serial
// checksum()). ok = false means the payload's structure does not fit the
// chunk layout — wrong backing-array lengths for the element count — and
// the caller must fall back to the serial whole-payload checksum.
func (cdc Codec) chunkChecksums(e *EncodedStash) (full uint32, chunks []uint32, ok bool) {
	impl, okT := techImpl(e.Tech)
	if !okT {
		return 0, nil, false
	}
	return impl.chunkChecksums(cdc, e, normalizeChunkElems(e.ChunkElems), e.headerCRC())
}
