package encoding

import (
	"encoding/binary"
	"fmt"
	"math"

	"gist/internal/floatenc"
	"gist/internal/sparse"
	"gist/internal/tensor"
)

// ssdcTech is the sparse storage / dense compute encoding (paper Section
// IV-B): the stash lives in narrow CSR between its uses, with the value
// array optionally DPR-quantized. Chunks cover whole 256-column rows; the
// ColIdx/Values arrays are chunked by proportional index spans so the
// layout never depends on (possibly corrupted) RowPtr contents.

type ssdcTech struct{}

func init() { registerTechnique(SSDC, ssdcTech{}) }

func (ssdcTech) name() string     { return "SSDC" }
func (ssdcTech) wireVersion() int { return 1 }

func (ssdcTech) encodeInto(cdc Codec, e *EncodedStash, as *Assignment, t *tensor.Tensor) error {
	// Sparse storage; DPR layered on the value array when configured.
	// Quantizing before CSR encoding preserves the zero pattern exactly
	// (quantization maps 0 to 0).
	data := t.Data
	pooledScratch := false
	if as.Format != floatenc.FP32 {
		data = cdc.quantizedCopy(as.Format, t.Data)
		pooledScratch = cdc.Buf != nil
	}
	if e.CSR == nil {
		e.CSR = &sparse.CSR{}
	}
	sparse.EncodeCSRChunkedInto(e.CSR, data, cdc.pool(), cdc.chunkElems()/sparse.NarrowCols)
	if pooledScratch {
		// The quantize scratch dies the moment the CSR exists.
		cdc.Buf.RecycleSlice(data)
	}
	// Compare against the dense DPR alternative using the same cost
	// model as the static analysis (ssdcBytes): when DPR is layered on
	// SSDC the CSR value array would also shrink to the packed width, so
	// credit that saving before declaring CSR uncompetitive.
	effective := e.CSR.Bytes()
	if as.Format != floatenc.FP32 {
		nnz := int64(e.CSR.NNZ())
		effective -= nnz*4 - as.Format.PackedBytes(int(nnz))
	}
	if dense := as.Format.PackedBytes(len(t.Data)); effective >= dense {
		// A static error, not fmt.Errorf with the sizes: the adaptive
		// encoder hits this on every step a stash stays dense, and the
		// pooled hot path cannot afford an allocation per fallback.
		return errCSRLargerThanDense
	}
	return nil
}

func (ssdcTech) decodeInto(cdc Codec, out *tensor.Tensor, e *EncodedStash) error {
	if e.CSR == nil || e.CSR.N != len(out.Data) {
		return fmt.Errorf("%w: CSR over %d elements, shape %v", ErrShapeMismatch, csrN(e.CSR), e.Shape)
	}
	if err := e.CSR.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptStash, err)
	}
	e.CSR.DecodeChunked(out.Data, cdc.pool(), cdc.chunkElems()/e.CSR.Cols)
	return nil
}

func (ssdcTech) payloadElems(e *EncodedStash) int {
	if e.CSR != nil {
		return e.CSR.N
	}
	return 0
}

func (ssdcTech) bytes(e *EncodedStash) int64 { return e.CSR.Bytes() }

func (ssdcTech) payloadBits(e *EncodedStash) int {
	return len(e.CSR.RowPtr)*32 + len(e.CSR.ColIdx)*8 + len(e.CSR.Values)*32
}

func (ssdcTech) flipBit(e *EncodedStash, i int) {
	if n := len(e.CSR.RowPtr) * 32; i < n {
		e.CSR.RowPtr[i/32] ^= 1 << (uint(i) % 32)
		return
	} else {
		i -= n
	}
	if n := len(e.CSR.ColIdx) * 8; i < n {
		e.CSR.ColIdx[i/8] ^= 1 << (uint(i) % 8)
		return
	} else {
		i -= n
	}
	bits := math.Float32bits(e.CSR.Values[i/32]) ^ 1<<(uint(i)%32)
	e.CSR.Values[i/32] = math.Float32frombits(bits)
}

func (ssdcTech) chunkOfBit(e *EncodedStash, i, ce, nc int) int {
	if n := len(e.CSR.RowPtr) * 32; i < n {
		// RowPtr[p] is written when row p-1 is encoded; entry 0 is the
		// constant leading zero owned by chunk 0.
		r := i/32 - 1
		if r < 0 {
			r = 0
		}
		return clampChunk(r*e.CSR.Cols/ce, nc)
	} else {
		i -= n
	}
	if n := len(e.CSR.ColIdx) * 8; i < n {
		return spanOf(i/8, len(e.CSR.ColIdx), nc)
	} else {
		i -= n
	}
	return spanOf(i/32, len(e.CSR.Values), nc)
}

func (ssdcTech) chunkSpanBytes(e *EncodedStash, elemLo, elemHi int) (int64, int64) {
	// SSDC chunks span three backing arrays (RowPtr, ColIdx, Values); no
	// single byte range describes them.
	return -1, -1
}

func (ssdcTech) checksumPayload(e *EncodedStash, w *crcWriter) {
	for _, p := range e.CSR.RowPtr {
		w.u32(uint32(p))
	}
	w.raw(e.CSR.ColIdx)
	for _, v := range e.CSR.Values {
		w.u32(math.Float32bits(v))
	}
}

func (ssdcTech) chunkChecksums(cdc Codec, e *EncodedStash, ce int, hcrc uint32) (full uint32, chunks []uint32, ok bool) {
	csr := e.CSR
	if csr == nil {
		return 0, nil, false
	}
	cols, n := csr.Cols, csr.N
	if cols <= 0 || ce%cols != 0 || n <= 0 {
		return 0, nil, false
	}
	rows := (n + cols - 1) / cols
	if csr.Rows != rows || len(csr.RowPtr) != rows+1 || len(csr.ColIdx) != len(csr.Values) {
		return 0, nil, false
	}
	nc := (n + ce - 1) / ce
	rowsPer := ce / cols
	// Three piece arrays per chunk: its RowPtr slice (by row range, chunk 0
	// owning the constant leading zero), and proportional index spans of
	// ColIdx and Values.
	rp := make([]uint32, nc)
	rpLen := make([]int64, nc)
	ci := make([]uint32, nc)
	ciLen := make([]int64, nc)
	va := make([]uint32, nc)
	vaLen := make([]int64, nc)
	cdc.pool().ForEach(3*nc, func(t int) {
		c := t % nc
		switch t / nc {
		case 0:
			r0 := c * rowsPer
			r1 := min(r0+rowsPer, rows)
			lo := r0 + 1
			if c == 0 {
				lo = 0
			}
			rp[c] = crcInt32s(csr.RowPtr[lo : r1+1])
			rpLen[c] = int64(r1+1-lo) * 4
		case 1:
			lo, hi := spanBounds(c, len(csr.ColIdx), nc)
			ci[c] = crcBytes(csr.ColIdx[lo:hi])
			ciLen[c] = int64(hi - lo)
		case 2:
			lo, hi := spanBounds(c, len(csr.Values), nc)
			va[c] = crcFloat32s(csr.Values[lo:hi])
			vaLen[c] = int64(hi-lo) * 4
		}
	})
	full = hcrc
	for c := 0; c < nc; c++ {
		full = crc32Combine(full, rp[c], rpLen[c])
	}
	for c := 0; c < nc; c++ {
		full = crc32Combine(full, ci[c], ciLen[c])
	}
	for c := 0; c < nc; c++ {
		full = crc32Combine(full, va[c], vaLen[c])
	}
	chunks = make([]uint32, nc)
	for c := 0; c < nc; c++ {
		crc := crc32Combine(rp[c], ci[c], ciLen[c])
		chunks[c] = crc32Combine(crc, va[c], vaLen[c])
	}
	return full, chunks, true
}

func (ssdcTech) marshalPayload(e *EncodedStash, out []byte) ([]byte, error) {
	if e.CSR == nil {
		return nil, fmt.Errorf("encoding: marshal: SSDC stash without CSR")
	}
	u32 := func(v uint32) { out = binary.LittleEndian.AppendUint32(out, v) }
	u32(uint32(e.CSR.N))
	u32(uint32(e.CSR.Cols))
	u32(uint32(len(e.CSR.Values)))
	for _, p := range e.CSR.RowPtr {
		u32(uint32(p))
	}
	out = append(out, e.CSR.ColIdx...)
	for _, v := range e.CSR.Values {
		u32(math.Float32bits(v))
	}
	return out, nil
}

func (ssdcTech) unmarshalPayload(e *EncodedStash, r *stashReader) {
	n := r.count("element", maxStashElems, 0)
	cols := int(r.u32())
	if r.err == nil && (cols <= 0 || cols > 256) {
		r.fail("CSR cols %d outside (0,256]", cols)
	}
	nnz := r.count("non-zero", maxStashElems, 5)
	rows := 0
	if r.err == nil {
		rows = (n + cols - 1) / cols
		if (rows+1)*4 > len(r.data)-r.off {
			r.fail("row pointers for %d rows exceed remaining bytes", rows)
		}
	}
	csr := &sparse.CSR{Rows: rows, Cols: cols, N: n}
	for i := 0; i < rows+1 && r.err == nil; i++ {
		csr.RowPtr = append(csr.RowPtr, int32(r.u32()))
	}
	csr.ColIdx = append([]uint8(nil), r.bytes(nnz)...)
	for i := 0; i < nnz && r.err == nil; i++ {
		csr.Values = append(csr.Values, math.Float32frombits(r.u32()))
	}
	if r.err == nil {
		e.CSR = csr
	}
}

func (ssdcTech) planBytes(elems int, sparsity float64, f floatenc.Format) int64 {
	return ssdcBytes(elems, sparsity, f)
}

func (ssdcTech) overheadTime(t float64, stream func(int64) float64, dense, enc int64) float64 {
	// A dense→CSR pass at encode (read dense, write sparse) and a
	// CSR→dense pass at decode, via cuSPARSE-style kernels; modeled as
	// three streaming passes over the dense size.
	t += 3 * stream(dense)
	// Decode writes the dense staging buffer.
	t += stream(dense)
	return t
}
