package encoding

import (
	"encoding/binary"
	"fmt"

	"gist/internal/bitpack"
	"gist/internal/floatenc"
	"gist/internal/tensor"
)

// binarizeTech is the 1-bit positive-mask encoding (paper Section IV-A):
// the stashed ReLU output collapses to one sign bit per element, expanded
// back to a 0/1 indicator tensor on decode. Payload is the mask's 64-bit
// word array; chunks own whole words (chunk boundaries are 768-aligned).

type binarizeTech struct{}

func init() { registerTechnique(Binarize, binarizeTech{}) }

func (binarizeTech) name() string     { return "Binarize" }
func (binarizeTech) wireVersion() int { return 1 }

func (binarizeTech) encodeInto(cdc Codec, e *EncodedStash, as *Assignment, t *tensor.Tensor) error {
	e.Mask = cdc.fromPositiveInto(e.Mask, t.Data)
	return nil
}

func (binarizeTech) decodeInto(cdc Codec, out *tensor.Tensor, e *EncodedStash) error {
	if e.Mask == nil || e.Mask.Len() != len(out.Data) {
		return fmt.Errorf("%w: mask %d bits, shape %v", ErrShapeMismatch, maskBits(e.Mask), e.Shape)
	}
	if ce, serial := cdc.serialChunks(len(out.Data)); serial {
		for lo := 0; lo < len(out.Data); lo += ce {
			e.Mask.ExpandRange(out.Data, lo, min(lo+ce, len(out.Data)))
		}
	} else {
		cdc.forChunks(len(out.Data), func(lo, hi int) {
			e.Mask.ExpandRange(out.Data, lo, hi)
		})
	}
	return nil
}

func (binarizeTech) payloadElems(e *EncodedStash) int {
	if e.Mask != nil {
		return e.Mask.Len()
	}
	return 0
}

func (binarizeTech) bytes(e *EncodedStash) int64 { return e.Mask.Bytes() }

func (binarizeTech) payloadBits(e *EncodedStash) int { return len(e.Mask.Words()) * 64 }

func (binarizeTech) flipBit(e *EncodedStash, i int) {
	e.Mask.Words()[i/64] ^= 1 << (uint(i) % 64)
}

func (binarizeTech) chunkOfBit(e *EncodedStash, i, ce, nc int) int {
	// Bit i is element i; padding bits of the last word clamp into the
	// final chunk.
	n := e.Mask.Len()
	return clampChunk(min(i, n-1)/ce, nc)
}

func (binarizeTech) chunkSpanBytes(e *EncodedStash, elemLo, elemHi int) (int64, int64) {
	w0 := elemLo / 64
	w1 := (elemHi + 63) / 64
	return int64(w0) * 8, int64(w1) * 8
}

func (binarizeTech) checksumPayload(e *EncodedStash, w *crcWriter) {
	for _, word := range e.Mask.Words() {
		w.u64(word)
	}
}

func (binarizeTech) chunkChecksums(cdc Codec, e *EncodedStash, ce int, hcrc uint32) (full uint32, chunks []uint32, ok bool) {
	if e.Mask == nil {
		return 0, nil, false
	}
	n := e.Mask.Len()
	words := e.Mask.Words()
	if len(words) != (n+63)/64 {
		return 0, nil, false
	}
	if n == 0 {
		return hcrc, nil, true
	}
	nc := (n + ce - 1) / ce
	crcs := make([]uint32, nc)
	lens := make([]int64, nc)
	cdc.pool().ForEach(nc, func(c int) {
		w0 := c * ce / 64
		w1 := (min((c+1)*ce, n) + 63) / 64
		crcs[c] = crcUint64s(words[w0:w1])
		lens[c] = int64(w1-w0) * 8
	})
	full = hcrc
	for c := range crcs {
		full = crc32Combine(full, crcs[c], lens[c])
	}
	return full, crcs, true
}

func (binarizeTech) marshalPayload(e *EncodedStash, out []byte) ([]byte, error) {
	if e.Mask == nil {
		return nil, fmt.Errorf("encoding: marshal: Binarize stash without mask")
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(e.Mask.Len()))
	for _, w := range e.Mask.Words() {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out, nil
}

func (binarizeTech) unmarshalPayload(e *EncodedStash, r *stashReader) {
	n := r.count("mask bit", maxStashElems, 0)
	words := make([]uint64, 0, (n+63)/64)
	for i := 0; i < (n+63)/64; i++ {
		words = append(words, r.u64())
	}
	if r.err == nil {
		e.Mask = bitpack.MaskFromWords(n, words)
	}
}

func (binarizeTech) planBytes(elems int, sparsity float64, f floatenc.Format) int64 {
	return binarizeMaskBytes(elems)
}

func (binarizeTech) overheadTime(t float64, stream func(int64) float64, dense, enc int64) float64 {
	// Extra mask write at encode...
	t += stream(enc)
	// ...minus the backward reads of the two FP32 maps that the 1-bit
	// mask replaces (the ReLU backward becomes lighter).
	t -= stream(dense-enc) / 2
	return t
}
