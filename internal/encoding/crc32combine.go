package encoding

// crc32Combine computes the CRC32-C of the concatenation A||B given only
// crc(A), crc(B) and len(B) — the classic zlib crc32_combine construction
// over the reflected Castagnoli polynomial. CRC is linear over GF(2), so
// appending len2 zero bytes to A transforms crc(A) by a fixed 32x32 bit
// matrix per zero byte; squaring that matrix log2(len2) times applies all
// of them, and xoring crc(B) accounts for B's actual bytes.
//
// This is what lets the chunked codec hash chunks independently (and in
// parallel) yet roll the pieces up into the exact checksum the serial
// whole-payload pass produces: Seal's combined value is bit-identical to
// checksum(), which the property tests pin.

// castagnoliReflected is the reflected form of the Castagnoli polynomial,
// matching crc32.MakeTable(crc32.Castagnoli)'s bit order.
const castagnoliReflected = 0x82f63b78

// gf2MatrixTimes multiplies the 32x32 GF(2) matrix by the bit vector vec.
func gf2MatrixTimes(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; i++ {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		vec >>= 1
	}
	return sum
}

// gf2MatrixSquare sets square = mat * mat.
func gf2MatrixSquare(square, mat *[32]uint32) {
	for n := 0; n < 32; n++ {
		square[n] = gf2MatrixTimes(mat, mat[n])
	}
}

// crc32Combine returns the CRC of A||B from crc1 = CRC(A), crc2 = CRC(B)
// and len2 = len(B). Combining with an empty B (or an empty A via crc1 = 0)
// is the identity on the other operand.
func crc32Combine(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1
	}
	var even, odd [32]uint32

	// odd = the matrix for one zero bit.
	odd[0] = castagnoliReflected
	row := uint32(1)
	for n := 1; n < 32; n++ {
		odd[n] = row
		row <<= 1
	}
	gf2MatrixSquare(&even, &odd) // two zero bits
	gf2MatrixSquare(&odd, &even) // four zero bits (one nibble short of a byte^2)

	// Apply len2 zero bytes by binary decomposition, squaring as we go.
	for {
		gf2MatrixSquare(&even, &odd)
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&even, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		gf2MatrixSquare(&odd, &even)
		if len2&1 != 0 {
			crc1 = gf2MatrixTimes(&odd, crc1)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
	}
	return crc1 ^ crc2
}
