package encoding

import (
	"errors"
	"math"
	"testing"

	"gist/internal/bufpool"
	"gist/internal/floatenc"
	"gist/internal/parallel"
	"gist/internal/tensor"
)

// TestZVCPooledEncodeZeroAllocs pins the steady-state allocation contract:
// once a pooled codec has encoded a stash, re-encoding into the same
// container allocates nothing — the mask, value array and (for layered DPR)
// the quantize scratch are all reused. Decode into a preallocated tensor is
// likewise alloc-free. This is the property the training loop's per-step
// stash pipeline depends on.
func TestZVCPooledEncodeZeroAllocs(t *testing.T) {
	rng := tensor.NewRNG(11)
	const n = 4096
	tt := tensor.New(n)
	copy(tt.Data, randStash(rng, n, 0.8))
	out := tensor.New(n)
	for _, f := range []floatenc.Format{floatenc.FP32, floatenc.FP16} {
		c := Codec{Pool: parallel.NewPool(1), ChunkElems: 768, Buf: bufpool.New()}
		as := &Assignment{Tech: ZVC, Format: f}
		e := &EncodedStash{}
		// Warm: first encode sizes the payload and primes the buffer pool.
		if err := c.EncodeStashInto(e, as, tt); err != nil {
			t.Fatalf("%s: warm encode: %v", f, err)
		}
		if a := testing.AllocsPerRun(10, func() {
			if err := c.EncodeStashInto(e, as, tt); err != nil {
				t.Fatalf("%s: re-encode: %v", f, err)
			}
		}); a != 0 {
			t.Errorf("%s: pooled re-encode allocs %v per run, want 0", f, a)
		}
		if err := c.DecodeInto(out, e); err != nil {
			t.Fatalf("%s: warm decode: %v", f, err)
		}
		if a := testing.AllocsPerRun(10, func() {
			if err := c.DecodeInto(out, e); err != nil {
				t.Fatalf("%s: decode: %v", f, err)
			}
		}); a != 0 {
			t.Errorf("%s: pooled decode allocs %v per run, want 0", f, a)
		}
	}
}

// TestZVCDecodeDetectsMaskValueMismatch pins the decode-side structural
// check: a mask whose popcount disagrees with the value array (the state
// every mask corruption produces) is a typed ErrCorruptStash, never a
// misaligned scatter.
func TestZVCDecodeDetectsMaskValueMismatch(t *testing.T) {
	rng := tensor.NewRNG(17)
	c := Codec{Pool: parallel.NewPool(1), ChunkElems: 768}
	tt := tensor.New(2000)
	copy(tt.Data, randStash(rng, 2000, 0.8))
	enc, err := c.EncodeStash(&Assignment{Tech: ZVC, Format: floatenc.FP32}, tt)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a mask bit that is currently zero: popcount grows past the
	// payload.
	words := enc.ZVC.Mask.Words()
	for i := 0; i < enc.ZVC.Mask.Len(); i++ {
		if words[i/64]&(1<<(uint(i)%64)) == 0 {
			words[i/64] ^= 1 << (uint(i) % 64)
			break
		}
	}
	if _, err := c.Decode(enc); !errors.Is(err, ErrCorruptStash) {
		t.Fatalf("mask/value mismatch decode error = %v, want ErrCorruptStash", err)
	}
	// Truncated value array: popcount exceeds payload the other way.
	enc2, err := c.EncodeStash(&Assignment{Tech: ZVC, Format: floatenc.FP32}, tt)
	if err != nil {
		t.Fatal(err)
	}
	enc2.ZVC.Values = enc2.ZVC.Values[:len(enc2.ZVC.Values)-1]
	if _, err := c.Decode(enc2); !errors.Is(err, ErrCorruptStash) {
		t.Fatalf("truncated values decode error = %v, want ErrCorruptStash", err)
	}
}

// TestZVCQuantizeFlushWidensMask checks the layered-DPR semantics: values
// the narrow format flushes to zero drop out of both the mask and the
// payload, so the decoded result still equals Format.Quantize elementwise
// while the stash shrinks.
func TestZVCQuantizeFlushWidensMask(t *testing.T) {
	c := Codec{Pool: parallel.NewPool(1), ChunkElems: 768}
	tt := tensor.New(1024)
	for i := range tt.Data {
		switch i % 4 {
		case 0:
			tt.Data[i] = 1e-30 // flushes to zero at FP8
		case 1:
			tt.Data[i] = 0.5
		}
	}
	enc, err := c.EncodeStash(&Assignment{Tech: ZVC, Format: floatenc.FP8}, tt)
	if err != nil {
		t.Fatal(err)
	}
	if nnz := enc.ZVC.Mask.PopCount(); nnz != 256 {
		t.Fatalf("mask popcount %d after FP8 flush, want only the 256 representable nonzeros", nnz)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range tt.Data {
		if want := floatenc.FP8.Quantize(v); math.Float32bits(dec.Data[i]) != math.Float32bits(want) {
			t.Fatalf("decoded[%d] = %v, want Quantize = %v (in %v)", i, dec.Data[i], want, v)
		}
	}
}

// FuzzZVCRoundTrip drives the ZVC encode → seal → verify → decode pipeline
// from fuzzer-chosen data and geometry: every input either round-trips
// exactly (FP32) / to Format.Quantize (FP16), or fails the cost guard with
// the typed ErrStashTooLarge — never a panic, never silent corruption.
func FuzzZVCRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint8(0), []byte{0, 0, 0, 0})
	f.Add(uint16(769), uint8(1), []byte{1, 2, 3, 4, 0, 0, 0, 0})
	f.Add(uint16(2000), uint8(0), []byte{0xff, 0, 0xff, 0, 0xff, 0, 0xff, 0})
	f.Fuzz(func(t *testing.T, n16 uint16, fsel uint8, raw []byte) {
		n := int(n16)%4096 + 1
		format := floatenc.FP32
		if fsel%2 == 1 {
			format = floatenc.FP16
		}
		tt := tensor.New(n)
		for i := range tt.Data {
			if len(raw) == 0 {
				break
			}
			b := raw[(i*4)%len(raw)]
			if b%3 != 0 { // keep the data sparse enough to exercise both guard outcomes
				tt.Data[i] = float32(int8(b)) / 16
			}
		}
		c := Codec{Pool: parallel.NewPool(2), ChunkElems: 768}
		as := &Assignment{Tech: ZVC, Format: format}
		enc, err := c.EncodeStash(as, tt)
		if err != nil {
			if !errors.Is(err, ErrStashTooLarge) {
				t.Fatalf("encode error %v is not ErrStashTooLarge", err)
			}
			return
		}
		c.Seal(enc)
		if err := c.Verify(enc); err != nil {
			t.Fatalf("fresh stash fails verify: %v", err)
		}
		dec, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		for i, v := range tt.Data {
			want := format.Quantize(v)
			if math.Float32bits(dec.Data[i]) != math.Float32bits(want) {
				t.Fatalf("round-trip[%d] = %v, want %v (in %v)", i, dec.Data[i], want, v)
			}
		}
	})
}
