package encoding

import (
	"bytes"
	"encoding/hex"
	"math"
	"testing"

	"gist/internal/floatenc"
	"gist/internal/tensor"
)

// Golden wire-format fixtures for sealed EncodedStash blobs. The frozen
// hex pins the "GSTS" marshaled layout end to end — header fields, CSR
// index/pointer arrays, DPR word stream, chunk-CRC trailer and the rolled-
// up checksum — so a change anywhere in encode, seal or marshal that moves
// a byte fails here by name instead of surfacing as a checkpoint
// incompatibility. Regenerate with `go run ./internal/goldengen` only for
// an intentional wire-format break.

// goldenStashInput rebuilds the fixture feature map: seeded noise with
// negatives clamped to zero (48 of 96 elements zero), the ReLU-shaped
// distribution SSDC exists for.
func goldenStashInput() *tensor.Tensor {
	t := tensor.New(2, 3, 4, 4)
	rng := tensor.NewRNG(12345)
	for i := range t.Data {
		v := rng.Float32()*2 - 1
		if v < 0 {
			v = 0
		}
		t.Data[i] = v
	}
	return t
}

const (
	goldenSSDCChecksum = 0x2bd41d16
	goldenSSDCBlobHex  = "47535453020000000100000000800100040000000200000003000000040000000400000060000000000100003000000000000000300000000001030607080a11121415161718191a1d2324262728292c2d2e3132333536383a3c464a4c4d4f5051535456575a5c5d00c0423e00a0013f00c0f13e00e07f3f0000823d00c0003f0040083f00e0403f0040373e00e0263f00c0013f0080bd3e0080ce3e00c02d3f0000d73e00c04b3f0000903e00e07d3f0040c73e0000623f0040723f0040493f0040f73e0080613f00c0973e00c00a3f0080483f0080c23d00004b3d00801f3f00a06f3e00c09c3e00404e3e0040623f0060073f00c02e3f0020023e0060483f00200e3f00200e3f0000143e00c0083f00a0e63c0060db3e00c05a3f00a07f3f0040783f0000173f161dd42b010000000f8b1f1f"

	goldenDPRChecksum = 0x62294918
	goldenDPRBlobHex  = "4753545303000000010000000080010004000000020000000300000004000000040000000200000060000000c8800300de000000f0c0020e00840300000000000000800ec700500ee060a30de66c930e0000200d000000000000000fd900c00eeea4f30d0000c00ed384030000a4830ba900400ece00400d00280300ec0000000000000000000000008403000000600e0000930e0088230ec200100e9d00b00deb000000f000f00ee300000018492962010000001b0471fc"

	// The "GST2" fixtures pin the v2 container introduced with the ZVC and
	// entropy techniques: same header layout, new magic, technique-owned
	// payload sections.
	goldenZVCChecksum = 0x13d4c501
	goldenZVCBlobHex  = "4753543204000000010000000080010004000000020000000300000004000000040000006000000030000000cb05f627d8736e1540b4db3400000000d8bf423e749d013fccbdf13e16de7f3fe00c823dacbb003f9e36083f1eeb403fc846373e46dd263f88c5013f3082bd3ea48fce3e60cd2d3f4c08d73e82c44b3f4407903ec6ef7d3f2435c73e04f9613faa41723f0840493f7c3cf73ee08e613f84cc973e24cf0a3f9478483fd085c23da0f94a3da6741f3f08a26f3ed4cc9c3e78414e3eac38623ff46d073f1ac32e3f6026023e5456483f56130e3f1c2c0e3ff8fc133ec2b4083fc09fe63c905cdb3e88b85a3f8ea07f3fda34783f0cf4163f01c5d41301000000ec2826ae"

	goldenEntropyChecksum = 0xf212d87b
	goldenEntropyBlobHex  = "475354320500000001000000008001000400000002000000030000001000000010000000010000000006000001000000de070000de070000a0aabaaaabaaaa99a9998bb9aa8b8ab99989899888887778667756554544b9aaabaaaa99aa99aa9b9abaa99aaa9999ba9aa0a9a90a9baaa9bb990aabaa8aa9aaabaa999aaa9b999b9aa9bb8bab98a99aabaaa999baa90a9a9bab99ab999b9b9baa999a8aa9a999aa9aaaa9a8a99b089a9baba099998998b999aa09a9b9aa9b9802cf4801679f671023c09de0568098393949802f21c015b3b92800df1a809da2764fbcf3a027692805924012e5b42f00baf9bcd7da49a655a0015d2341402f5d808c5300daf4fc160016313ae77a53009fb60017b5000bba400b614002b0bf7eb9a7ca02649764e00a9e7005e5c309101bbe4a0ed2c9a67695402feb4387100ace0015de875ef023ffd5809b1880950d776f7170b32dfb8f1012e1ffa58028a811744db35c4dd8c402f05404f29c0323f228016b169a5f21802ffd3009e32805f658005251efe0016fa88099b502299de02805e152013f855f971f61d965cdd0c8271e170fae5a4db0a2017997e9ce00b1358026b1dcd3c06d03b0536d535d1b29802d6bc04c9d201340ed537db58057828027ad60077fb8009b07805cfa809c59bf52805de4a0269d30aec34b86701580600b98a0016726013939404cb25f5406d5b802f5d404fdf27633011f237432dc51c0c404eb5de93005f157dd2f38978096adb57ed96ce6e753cd7809e8c99da4037baa016dd6e5b34fe1ce023892fb30d6b810fbabc8880d3d404bacee91e015fdbd56eede027651b98811fcd804b27ef23a460132cba58696c004d4d5805fe22026517aa90029f1db22478f4366ba0401af0bdd5f402a2dcdcf00bcf5cd280dd3a553011a55e968008e9ac9002e23f3f2e7dc05575ec02de412f60470efa02736d88a1b4870aa8055b98805bd77b89769802953926d348015e67005dbc801775431d376ea036fe1cbc7c4601332a0463daeadb28e5a3806b34f3dfd22e620035b4402e7abf6b2772e00b1f4804c72e3a201675806f55402bd20056b3f1d3ac5e01691002d1b649352e48009d1bfe15d0d2d5d7592009b690048b76cf02b43001b6737bebe6a805ea4402d74770d6d440eec2f9d64d6cfd5c2d530f0d95100bde601b948809a970056c968ed4c40ecc36d25ef5bbd8809f2bc02f163dec3db4cebffa4fece2016c61327fa7005ea4404c226317a84c93fc97fc7101ad1802a99bb58fceb77601b949e01772e00a9ebaf6804738c01543bbe4e75bbb9b194bc47fd1280595938aa015f2bbbcafd652bb2011946f4eb40ac6365daeea0165eb002e5680056ac027df600b18ba07009c8400b3b0013ea8809918805f9e6a85c92dab025cfbfe08fc4d879bc36fc4cae00b23262697b6d93bf80d887e9aa7c3a4016e5b92ac00bac756a0058d600a992c9806d9bc04f95f748d15c9a0056cc016a2780dfca600a99006ccca037aaa0178ac0454a80599980af097c8a5a1857bbb74d743a36faaa3ae8805a35bacec5d0d7ce012be96fa2037f65f420027b94ac5404dea7a2a076e5284402d0a005af400af5100b04c017717da1001b82805734bc68805c9c00ac9b68d002d54786d9e8811670c84408dc5f70ec0170216f2f31200d8b4b24ccb00a8026ee65400aae4cad8005f335b49f71802a8a5ac9e0166de017ad4bf63ff3300da78d0a3e93808f65dba93fbb55aff970059c80055330057a9408cd365d7b84a7500ba087cc9865013e2500bb39402c0d002ba18760e00b17370d3de501bb9a5d5467c362c0234dbf9df4c80265e5e79b6d100b80d8a880de325e93985be5669d38b3009856013d3a2036fa94278095c9ab500ab1b5ee029d100ac5006ef977880178f0e34406c3c33b10137159e14002c1c006e5ab77ad693b749f3cefa57334e047990019ee00b60c016e5802aba8e0c002c1adf1002c12ebe4c0280523b6a8027fda3f7afe027929c47eb68d8a809f5d6e0a8d24ded100b30a02636876c94f0011cf01ad9d7a700989400e76716b56a9bafa1985033ce600ac5c027c6bbb7e45de8275adcb3c04d5d0b7501b977e25c027e4a2044af8b005ed3802d749887737100b10d6c9a64b49405500b2b3f84c045da8809a49002f39802c22805cab802b46dc3f73271133c80154bf153b1b43a94d3a009a28e89002f328809756c84fe99804ea5802b99402f81af525a50f1e38a8805b776f5374fccb011c69402caa8096a801672c3c7780dea4404fc70743959ba28805cf48047d9000bf4200da7aed53005c68009b2ad013695e027163ccc71af00b388014e6e0b005d3a805728027baa0175b3a9353b63a17d6b76013a8a202732f00b511fe35c01542009e5c7e1780db3a2016ddc016cec002fadb550c1d700dd12d9c8085f2400b693802d22651408b8a3ebc9c65ed1fbce831f46ce8fe5600bcf9804c1578059e4e8d36ae00af0d23584bd8d2013e79b272009bcb0c5bf00a0359b806a68611802ed638fbdd7c76e8016a25ff8a0166ab2de00467d3e86e12805dc4a05748d90600b979ae20017c337026dc4d9b757b4b0012de20171636f7cc83009e7741553acdfe3273ee00bab85aae51ae1402e71ae67005bf7805e84c017bec016216f0a017027d8c3ab854b005e52d3d101ade7d547a28805ddc002ca2f4e9779802fdcfe44004b670097676ba00267ff0805d342c5408e95350f011eff6140acc55005631c337b52f64dbb700dad86ca0026eaa70b5c0156281181500bbf6bcdfb468015b47e6951404e0b6893775ea9b16d1c6e8ebc3f448014f92ff1c4c402c435bc004cf3fed75330057baeaa40131b4aba2017c9100ac9808e0c76d56026e26e4e88058cabc0c3c3a60130d107bd812f201000000324b1a5c"
)

// goldenEntropyInput rebuilds the larger fixture map the entropy technique
// needs to beat its per-chunk table overhead: same ReLU-shaped
// distribution, 1536 elements (two chunks).
func goldenEntropyInput() *tensor.Tensor {
	t := tensor.New(2, 3, 16, 16)
	rng := tensor.NewRNG(54321)
	for i := range t.Data {
		v := rng.Float32()*2 - 1
		if v < 0 {
			v = 0
		}
		t.Data[i] = v
	}
	return t
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGoldenStashMarshal re-encodes the fixture map and requires the
// sealed, marshaled result to be byte-identical to the frozen blob — the
// encode direction of wire compatibility.
func TestGoldenStashMarshal(t *testing.T) {
	cases := []struct {
		name     string
		blobHex  string
		checksum uint32
		encode   func(*tensor.Tensor) (*EncodedStash, error)
	}{
		{"ssdc-fp16", goldenSSDCBlobHex, goldenSSDCChecksum,
			func(x *tensor.Tensor) (*EncodedStash, error) {
				as := &Assignment{Tech: SSDC, Format: floatenc.FP16, NeedsDecode: true}
				return EncodeStash(as, x)
			}},
		{"dpr-fp10", goldenDPRBlobHex, goldenDPRChecksum,
			func(x *tensor.Tensor) (*EncodedStash, error) {
				return EncodeDense(floatenc.FP10, x), nil
			}},
		{"zvc-fp32", goldenZVCBlobHex, goldenZVCChecksum,
			func(x *tensor.Tensor) (*EncodedStash, error) {
				return EncodeStash(&Assignment{Tech: ZVC, Format: floatenc.FP32}, x)
			}},
		{"entropy-fp16", goldenEntropyBlobHex, goldenEntropyChecksum,
			func(*tensor.Tensor) (*EncodedStash, error) {
				return EncodeStash(&Assignment{Tech: Entropy, Format: floatenc.FP16}, goldenEntropyInput())
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e, err := c.encode(goldenStashInput())
			if err != nil {
				t.Fatal(err)
			}
			e.Seal()
			if e.Checksum != c.checksum {
				t.Errorf("checksum %#08x, want %#08x", e.Checksum, c.checksum)
			}
			blob, err := e.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			want := mustHex(t, c.blobHex)
			if !bytes.Equal(blob, want) {
				i := 0
				for i < len(blob) && i < len(want) && blob[i] == want[i] {
					i++
				}
				t.Fatalf("marshaled blob diverges from fixture at byte %d (len %d vs %d)",
					i, len(blob), len(want))
			}
		})
	}
}

// TestGoldenStashUnmarshal is the decode direction: the frozen blob must
// unmarshal, pass integrity verification, and decode to the fixture map's
// FP16-quantized values.
func TestGoldenStashUnmarshal(t *testing.T) {
	e, err := UnmarshalStash(mustHex(t, goldenSSDCBlobHex))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Sealed() {
		t.Fatal("unmarshaled stash lost its seal")
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("frozen blob fails integrity verification: %v", err)
	}
	dec, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	in := goldenStashInput()
	if len(dec.Data) != len(in.Data) {
		t.Fatalf("decoded %d elements, want %d", len(dec.Data), len(in.Data))
	}
	for i, v := range in.Data {
		want := floatenc.FP16.Quantize(v)
		if math.Float32bits(dec.Data[i]) != math.Float32bits(want) {
			t.Fatalf("element %d decodes to %g, want %g", i, dec.Data[i], want)
		}
	}

	// Known decoded spot values, frozen independently of Quantize.
	for _, spot := range []struct {
		idx  int
		bits uint32
	}{{0, 0x3e42c000}, {7, 0x3d820000}, {19, 0x00000000}, {95, 0x00000000}} {
		if got := math.Float32bits(dec.Data[spot.idx]); got != spot.bits {
			t.Errorf("element %d = %#08x, want %#08x", spot.idx, got, spot.bits)
		}
	}

	// A flipped payload bit must be caught by the seal.
	e2, err := UnmarshalStash(mustHex(t, goldenSSDCBlobHex))
	if err != nil {
		t.Fatal(err)
	}
	e2.FlipBit(e2.PayloadBits() / 2)
	if err := e2.Verify(); err == nil {
		t.Fatal("corrupted frozen blob passed verification")
	}
}

// TestGoldenV2StashUnmarshal is the decode direction for the "GST2"
// container: the frozen ZVC and entropy blobs must unmarshal, verify and
// decode to the fixture maps exactly (bit-exact for ZVC at FP32, the FP16
// quantization for the entropy fixture), and a flipped payload bit must
// break the seal.
func TestGoldenV2StashUnmarshal(t *testing.T) {
	cases := []struct {
		name    string
		blobHex string
		input   *tensor.Tensor
		want    func(float32) float32
	}{
		{"zvc-fp32", goldenZVCBlobHex, goldenStashInput(), func(v float32) float32 { return v }},
		{"entropy-fp16", goldenEntropyBlobHex, goldenEntropyInput(), floatenc.FP16.Quantize},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			blob := mustHex(t, c.blobHex)
			if string(blob[:4]) != "GST2" {
				t.Fatalf("fixture magic %q, want GST2", blob[:4])
			}
			e, err := UnmarshalStash(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !e.Sealed() {
				t.Fatal("unmarshaled stash lost its seal")
			}
			if err := e.Verify(); err != nil {
				t.Fatalf("frozen blob fails integrity verification: %v", err)
			}
			dec, err := e.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if len(dec.Data) != len(c.input.Data) {
				t.Fatalf("decoded %d elements, want %d", len(dec.Data), len(c.input.Data))
			}
			for i, v := range c.input.Data {
				want := c.want(v)
				if math.Float32bits(dec.Data[i]) != math.Float32bits(want) {
					t.Fatalf("element %d decodes to %g, want %g", i, dec.Data[i], want)
				}
			}
			e2, err := UnmarshalStash(blob)
			if err != nil {
				t.Fatal(err)
			}
			e2.FlipBit(e2.PayloadBits() / 2)
			if err := e2.Verify(); err == nil {
				t.Fatal("corrupted frozen blob passed verification")
			}
		})
	}
}
