package encoding

import (
	"bytes"
	"encoding/hex"
	"math"
	"testing"

	"gist/internal/floatenc"
	"gist/internal/tensor"
)

// Golden wire-format fixtures for sealed EncodedStash blobs. The frozen
// hex pins the "GSTS" marshaled layout end to end — header fields, CSR
// index/pointer arrays, DPR word stream, chunk-CRC trailer and the rolled-
// up checksum — so a change anywhere in encode, seal or marshal that moves
// a byte fails here by name instead of surfacing as a checkpoint
// incompatibility. Regenerate with `go run ./internal/goldengen` only for
// an intentional wire-format break.

// goldenStashInput rebuilds the fixture feature map: seeded noise with
// negatives clamped to zero (48 of 96 elements zero), the ReLU-shaped
// distribution SSDC exists for.
func goldenStashInput() *tensor.Tensor {
	t := tensor.New(2, 3, 4, 4)
	rng := tensor.NewRNG(12345)
	for i := range t.Data {
		v := rng.Float32()*2 - 1
		if v < 0 {
			v = 0
		}
		t.Data[i] = v
	}
	return t
}

const (
	goldenSSDCChecksum = 0x2bd41d16
	goldenSSDCBlobHex  = "47535453020000000100000000800100040000000200000003000000040000000400000060000000000100003000000000000000300000000001030607080a11121415161718191a1d2324262728292c2d2e3132333536383a3c464a4c4d4f5051535456575a5c5d00c0423e00a0013f00c0f13e00e07f3f0000823d00c0003f0040083f00e0403f0040373e00e0263f00c0013f0080bd3e0080ce3e00c02d3f0000d73e00c04b3f0000903e00e07d3f0040c73e0000623f0040723f0040493f0040f73e0080613f00c0973e00c00a3f0080483f0080c23d00004b3d00801f3f00a06f3e00c09c3e00404e3e0040623f0060073f00c02e3f0020023e0060483f00200e3f00200e3f0000143e00c0083f00a0e63c0060db3e00c05a3f00a07f3f0040783f0000173f161dd42b010000000f8b1f1f"

	goldenDPRChecksum = 0x62294918
	goldenDPRBlobHex  = "4753545303000000010000000080010004000000020000000300000004000000040000000200000060000000c8800300de000000f0c0020e00840300000000000000800ec700500ee060a30de66c930e0000200d000000000000000fd900c00eeea4f30d0000c00ed384030000a4830ba900400ece00400d00280300ec0000000000000000000000008403000000600e0000930e0088230ec200100e9d00b00deb000000f000f00ee300000018492962010000001b0471fc"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGoldenStashMarshal re-encodes the fixture map and requires the
// sealed, marshaled result to be byte-identical to the frozen blob — the
// encode direction of wire compatibility.
func TestGoldenStashMarshal(t *testing.T) {
	cases := []struct {
		name     string
		blobHex  string
		checksum uint32
		encode   func(*tensor.Tensor) (*EncodedStash, error)
	}{
		{"ssdc-fp16", goldenSSDCBlobHex, goldenSSDCChecksum,
			func(x *tensor.Tensor) (*EncodedStash, error) {
				as := &Assignment{Tech: SSDC, Format: floatenc.FP16, NeedsDecode: true}
				return EncodeStash(as, x)
			}},
		{"dpr-fp10", goldenDPRBlobHex, goldenDPRChecksum,
			func(x *tensor.Tensor) (*EncodedStash, error) {
				return EncodeDense(floatenc.FP10, x), nil
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e, err := c.encode(goldenStashInput())
			if err != nil {
				t.Fatal(err)
			}
			e.Seal()
			if e.Checksum != c.checksum {
				t.Errorf("checksum %#08x, want %#08x", e.Checksum, c.checksum)
			}
			blob, err := e.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			want := mustHex(t, c.blobHex)
			if !bytes.Equal(blob, want) {
				i := 0
				for i < len(blob) && i < len(want) && blob[i] == want[i] {
					i++
				}
				t.Fatalf("marshaled blob diverges from fixture at byte %d (len %d vs %d)",
					i, len(blob), len(want))
			}
		})
	}
}

// TestGoldenStashUnmarshal is the decode direction: the frozen blob must
// unmarshal, pass integrity verification, and decode to the fixture map's
// FP16-quantized values.
func TestGoldenStashUnmarshal(t *testing.T) {
	e, err := UnmarshalStash(mustHex(t, goldenSSDCBlobHex))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Sealed() {
		t.Fatal("unmarshaled stash lost its seal")
	}
	if err := e.Verify(); err != nil {
		t.Fatalf("frozen blob fails integrity verification: %v", err)
	}
	dec, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	in := goldenStashInput()
	if len(dec.Data) != len(in.Data) {
		t.Fatalf("decoded %d elements, want %d", len(dec.Data), len(in.Data))
	}
	for i, v := range in.Data {
		want := floatenc.FP16.Quantize(v)
		if math.Float32bits(dec.Data[i]) != math.Float32bits(want) {
			t.Fatalf("element %d decodes to %g, want %g", i, dec.Data[i], want)
		}
	}

	// Known decoded spot values, frozen independently of Quantize.
	for _, spot := range []struct {
		idx  int
		bits uint32
	}{{0, 0x3e42c000}, {7, 0x3d820000}, {19, 0x00000000}, {95, 0x00000000}} {
		if got := math.Float32bits(dec.Data[spot.idx]); got != spot.bits {
			t.Errorf("element %d = %#08x, want %#08x", spot.idx, got, spot.bits)
		}
	}

	// A flipped payload bit must be caught by the seal.
	e2, err := UnmarshalStash(mustHex(t, goldenSSDCBlobHex))
	if err != nil {
		t.Fatal(err)
	}
	e2.FlipBit(e2.PayloadBits() / 2)
	if err := e2.Verify(); err == nil {
		t.Fatal("corrupted frozen blob passed verification")
	}
}
