package encoding

import (
	"fmt"
	"sort"
	"strings"

	"gist/internal/floatenc"
	"gist/internal/tensor"
)

// The technique registry. Every Technique value is backed by one
// techniqueImpl that plugs the chunked codec's generic machinery — encode,
// decode, seal, chunk attribution, wire format, cost models — so a new
// codec registers here instead of patching switch statements across
// chunked.go / runtime.go / marshal.go. The Binarize/SSDC/DPR
// implementations in tech_*.go are byte-for-byte migrations of the
// original switch arms (the golden fixtures pin this); ZVC and Entropy
// register the same way.

// techniqueImpl is the per-technique plug point of the chunked codec.
// Implementations must be stateless values: one instance serves every
// codec and stash concurrently.
type techniqueImpl interface {
	// name is the paper's name for the technique (Technique.String).
	name() string
	// wireVersion is the lowest serialized-stash container version that
	// can carry this technique's payload: 1 for the original "GSTS"
	// format (whose byte layout is frozen), 2 for "GST2" additions.
	wireVersion() int

	// encodeInto builds the technique payload into e from t, reusing e's
	// backing arrays when capacity allows. The caller has already reset
	// e's header (Tech/Shape/ChunkElems/seal state). as supplies the
	// format and sparsity context; implementations must not read as.Tech,
	// which may differ during adaptive fallback re-encodes.
	encodeInto(cdc Codec, e *EncodedStash, as *Assignment, t *tensor.Tensor) error
	// decodeInto expands the payload into out (shape already matched
	// against e.Shape). It must validate payload structure and return
	// typed errors — never panic — on damaged input.
	decodeInto(cdc Codec, out *tensor.Tensor, e *EncodedStash) error

	// payloadElems is the element count the chunk layout spans.
	payloadElems(e *EncodedStash) int
	// bytes is the held representation's storage footprint.
	bytes(e *EncodedStash) int64
	// payloadBits is the fault injector's corruption surface.
	payloadBits(e *EncodedStash) int
	// flipBit inverts payload bit i (bounds pre-checked by FlipBit).
	flipBit(e *EncodedStash, i int)
	// chunkOfBit maps payload bit i to the chunk whose CRC detects its
	// flip, under chunk size ce and chunk count nc.
	chunkOfBit(e *EncodedStash, i, ce, nc int) int
	// chunkSpanBytes returns the byte offsets of elements [elemLo,
	// elemHi) within the payload's backing array, or -1, -1 when the
	// payload spans multiple arrays.
	chunkSpanBytes(e *EncodedStash, elemLo, elemHi int) (byteLo, byteHi int64)

	// checksumPayload streams the payload into the serial whole-payload
	// checksum exactly as the chunked roll-up reproduces it.
	checksumPayload(e *EncodedStash, w *crcWriter)
	// chunkChecksums hashes every chunk's payload pieces on the codec's
	// pool and returns the per-chunk CRCs plus the roll-up (== the serial
	// checksum). ok = false means the payload's structure does not fit
	// the chunk layout and the caller must fall back to the serial
	// whole-payload checksum.
	chunkChecksums(cdc Codec, e *EncodedStash, ce int, hcrc uint32) (full uint32, chunks []uint32, ok bool)

	// marshalPayload appends the wire payload to out; unmarshalPayload
	// parses it back through the bounds-checked reader.
	marshalPayload(e *EncodedStash, out []byte) ([]byte, error)
	unmarshalPayload(e *EncodedStash, r *stashReader)

	// planBytes is the planning-time footprint model: the predicted
	// encoded bytes of an n-element stash at the given sparsity and DPR
	// format. Analyze's adaptive selector arbitrates techniques on it.
	planBytes(elems int, sparsity float64, f floatenc.Format) int64
	// overheadTime is the roofline cost-model hook: it adds the modeled
	// encode+decode time of one stash (dense and encoded byte sizes, the
	// device's stream-time function) to the accumulator t and returns the
	// new accumulator. The accumulate-and-return shape preserves the cost
	// model's exact floating-point evaluation order (t += a; t -= b is
	// not bit-identical to t += a - b). A net subtraction models a
	// bandwidth saving.
	overheadTime(t float64, stream func(int64) float64, dense, enc int64) float64
}

// techniques is the registry, populated by registerTechnique from each
// tech_*.go init. Reads vastly outnumber the init-time writes; no lock is
// needed because the map is never mutated after package init.
var techniques = map[Technique]techniqueImpl{}

// registerTechnique installs the implementation behind a Technique value.
// It is called from init functions only; duplicate registration is a bug.
func registerTechnique(t Technique, impl techniqueImpl) {
	if _, dup := techniques[t]; dup {
		panic(fmt.Sprintf("encoding: technique %d registered twice", int(t)))
	}
	techniques[t] = impl
}

// techImpl looks up a technique's implementation.
func techImpl(t Technique) (techniqueImpl, bool) {
	impl, ok := techniques[t]
	return impl, ok
}

// RegisteredTechniques lists every registered technique in ascending
// Technique order (None is not registered — it has no payload).
func RegisteredTechniques() []Technique {
	ts := make([]Technique, 0, len(techniques))
	for t := range techniques {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// ParseTechnique resolves a case-insensitive technique name ("none",
// "binarize", "ssdc", "dpr", "zvc", "entropy") to its Technique value.
func ParseTechnique(s string) (Technique, error) {
	if strings.EqualFold(s, "none") {
		return None, nil
	}
	for t, impl := range techniques {
		if strings.EqualFold(s, impl.name()) {
			return t, nil
		}
	}
	return None, fmt.Errorf("encoding: unknown technique %q", s)
}

// PlanBytes returns the planning-time footprint model of encoding an
// n-element stash with the technique at the given sparsity and DPR format
// (the dense FP32 size for None / unregistered techniques).
func PlanBytes(t Technique, elems int, sparsity float64, f floatenc.Format) int64 {
	if impl, ok := techImpl(t); ok {
		return impl.planBytes(elems, sparsity, f)
	}
	return int64(elems) * 4
}

// AddOverheadTime adds the roofline cost-model estimate of the technique's
// encode+decode time — given the device's stream-time function and the
// stash's dense and encoded byte sizes — to the accumulator acc and
// returns the new accumulator. None and unregistered techniques cost
// nothing. Pass acc = 0 for a standalone per-stash estimate.
func AddOverheadTime(t Technique, acc float64, stream func(int64) float64, dense, enc int64) float64 {
	if impl, ok := techImpl(t); ok {
		return impl.overheadTime(acc, stream, dense, enc)
	}
	return acc
}

// clampChunk clamps a computed chunk index into [0, nc).
func clampChunk(c, nc int) int {
	if c >= nc {
		return nc - 1
	}
	if c < 0 {
		return 0
	}
	return c
}
