package encoding

import (
	"math"
	"testing"

	"gist/internal/floatenc"
	"gist/internal/tensor"
)

// Chunk-tail golden fixtures: sealed checksums and per-chunk CRCs for
// payload lengths congruent to 1, 63, 64 and 65 mod 768 — one element past
// a chunk boundary, one word minus a bit, exactly one word, and one word
// plus a bit. These are the ragged tails where a word-parallel kernel
// off-by-one (a bit leaked into the padding word, a short final word, a
// missed tail element) lands first. Sealing with a 768-element chunk size
// makes every length span a chunk boundary, and the rolled-up CRC pins
// every payload byte — mask words, packed words and all three CSR arrays —
// without freezing full blobs. Frozen from the scalar kernels; the
// word-parallel rewrites must reproduce them bit for bit. Regenerate with
// `go run ./internal/goldengen` only for an intentional format break.

// tailInput rebuilds the deterministic ReLU-shaped fixture payload for
// length n (seeded by n, negatives clamped to zero).
func tailInput(n int) *tensor.Tensor {
	t := tensor.New(n)
	rng := tensor.NewRNG(uint64(n))
	for i := range t.Data {
		v := rng.Float32()*2 - 1
		if v < 0 {
			v = 0
		}
		t.Data[i] = v
	}
	return t
}

var goldenTails = []struct {
	n         int
	name      string
	checksum  uint32
	chunkCRCs []uint32
}{
	{769, "binarize", 0xf09a1778, []uint32{0x4affafcf, 0x8c28b28a}},
	{769, "ssdc-fp32", 0x22c77377, []uint32{0x09e6298c, 0x40274b0b}},
	{769, "dpr-fp16", 0x2d5519a5, []uint32{0x4800600e, 0x48674bc7}},
	{769, "dpr-fp10", 0x733c733c, []uint32{0x037629ee, 0x48674bc7}},
	{769, "dpr-fp8", 0x26d3ca44, []uint32{0xc33575c2, 0x48674bc7}},
	{769, "zvc-fp32", 0x276468fc, []uint32{0xa45b51cd, 0xeb31c8d5}},
	{769, "entropy-fp16", 0x9ec03224, []uint32{0xaa28ee01, 0x369edbab}},
	{831, "binarize", 0x1c7e5c9f, []uint32{0xacfd48c9, 0x72371c90}},
	{831, "ssdc-fp32", 0xf35fc7a2, []uint32{0xd9d2debd, 0x4bdbb0c5}},
	{831, "dpr-fp16", 0x323f6780, []uint32{0xc5eb7019, 0xf702e74b}},
	{831, "dpr-fp10", 0x6573e116, []uint32{0x3c13aca6, 0xd11b3a96}},
	{831, "dpr-fp8", 0xfd34455c, []uint32{0x6dd9b3f8, 0x0665d964}},
	{831, "zvc-fp32", 0xa9a9176d, []uint32{0x390231b5, 0x88b003bf}},
	{831, "entropy-fp16", 0x5295f922, []uint32{0x4ec193cd, 0x8dfea281}},
	{832, "binarize", 0x74917efd, []uint32{0xaabd2c1e, 0x87a51973}},
	{832, "ssdc-fp32", 0x25ee98c8, []uint32{0xe308157b, 0x83b4e343}},
	{832, "dpr-fp16", 0x934a2a2e, []uint32{0x427741ad, 0x7975f345}},
	{832, "dpr-fp10", 0xfae0d7a4, []uint32{0xc2c5d550, 0x1879a7b7}},
	{832, "dpr-fp8", 0x3fd33c75, []uint32{0x96fd8039, 0x8d0100c4}},
	{832, "zvc-fp32", 0xd678197a, []uint32{0x58d3396c, 0x84430e30}},
	{832, "entropy-fp16", 0x926d5139, []uint32{0x0351340f, 0xaf97669f}},
	{833, "binarize", 0x5515d7a5, []uint32{0xde89784a, 0x2729868f}},
	{833, "ssdc-fp32", 0x621dfe38, []uint32{0xed6913b7, 0xe13e2191}},
	{833, "dpr-fp16", 0xac63abf8, []uint32{0x7029473b, 0x50301730}},
	{833, "dpr-fp10", 0xb3dabdbb, []uint32{0x58ff8940, 0x603b87dc}},
	{833, "dpr-fp8", 0x9a705fa7, []uint32{0x5775ff7f, 0x427f7641}},
	{833, "zvc-fp32", 0x181944c8, []uint32{0x377a2343, 0x78cbc1a3}},
	{833, "entropy-fp16", 0x7f6759a2, []uint32{0x20f5710e, 0x94870ae0}},
}

// tailAssignment maps a fixture name to its encode assignment.
func tailAssignment(name string) *Assignment {
	switch name {
	case "binarize":
		return &Assignment{Tech: Binarize}
	case "ssdc-fp32":
		return &Assignment{Tech: SSDC, Format: floatenc.FP32}
	case "dpr-fp16":
		return &Assignment{Tech: DPR, Format: floatenc.FP16}
	case "dpr-fp10":
		return &Assignment{Tech: DPR, Format: floatenc.FP10}
	case "dpr-fp8":
		return &Assignment{Tech: DPR, Format: floatenc.FP8}
	case "zvc-fp32":
		return &Assignment{Tech: ZVC, Format: floatenc.FP32}
	case "entropy-fp16":
		return &Assignment{Tech: Entropy, Format: floatenc.FP16}
	}
	return nil
}

// TestGoldenChunkTails re-encodes and seals every tail fixture and requires
// the checksum and per-chunk CRCs to match the frozen values exactly.
func TestGoldenChunkTails(t *testing.T) {
	cdc := Codec{ChunkElems: 768}
	for _, g := range goldenTails {
		e, err := cdc.EncodeStash(tailAssignment(g.name), tailInput(g.n))
		if err != nil {
			t.Fatalf("n=%d %s: %v", g.n, g.name, err)
		}
		cdc.Seal(e)
		if e.Checksum != g.checksum {
			t.Errorf("n=%d %s: checksum %#08x, want %#08x (payload bytes changed)",
				g.n, g.name, e.Checksum, g.checksum)
		}
		if len(e.ChunkCRCs) != len(g.chunkCRCs) {
			t.Fatalf("n=%d %s: %d chunk CRCs, want %d", g.n, g.name, len(e.ChunkCRCs), len(g.chunkCRCs))
		}
		for c, crc := range e.ChunkCRCs {
			if crc != g.chunkCRCs[c] {
				t.Errorf("n=%d %s: chunk %d CRC %#08x, want %#08x",
					g.n, g.name, c, crc, g.chunkCRCs[c])
			}
		}
	}
}

// TestGoldenChunkTailsRoundTrip decodes every tail fixture back to dense
// and checks it equals the quantized input — tail elements included, bit
// for bit.
func TestGoldenChunkTailsRoundTrip(t *testing.T) {
	cdc := Codec{ChunkElems: 768}
	for _, g := range goldenTails {
		in := tailInput(g.n)
		as := tailAssignment(g.name)
		e, err := cdc.EncodeStash(as, in)
		if err != nil {
			t.Fatalf("n=%d %s: %v", g.n, g.name, err)
		}
		cdc.Seal(e)
		out, err := cdc.Decode(e)
		if err != nil {
			t.Fatalf("n=%d %s: decode: %v", g.n, g.name, err)
		}
		for i, v := range out.Data {
			var want float32
			switch as.Tech {
			case Binarize:
				if in.Data[i] > 0 {
					want = 1
				}
			default:
				// SSDC/ZVC at FP32 are exact (Quantize is the identity);
				// layered DPR and the entropy stage quantize elementwise.
				want = as.Format.Quantize(in.Data[i])
			}
			if math.Float32bits(v) != math.Float32bits(want) {
				t.Fatalf("n=%d %s: decoded[%d] = %#08x, want %#08x",
					g.n, g.name, i, math.Float32bits(v), math.Float32bits(want))
			}
		}
	}
}
