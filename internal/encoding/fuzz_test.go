package encoding

import (
	"errors"
	"testing"

	"gist/internal/floatenc"
	"gist/internal/parallel"
	"gist/internal/tensor"
)

// fuzzSeeds marshals one sealed and one unsealed stash of every technique —
// the corpus the mutator grows from, guaranteeing the fuzzer starts from
// deep, structurally valid inputs rather than rejected magic bytes.
func fuzzSeeds(t testing.TB) [][]byte {
	c := Codec{Pool: parallel.NewPool(1), ChunkElems: 768}
	rng := tensor.NewRNG(3)
	var seeds [][]byte
	for _, as := range propAssignments() {
		tt := tensor.New(5, 400) // 2000 elements, 3 chunks of 768
		copy(tt.Data, randStash(rng, len(tt.Data), 0.8))
		for _, seal := range []bool{false, true} {
			enc, _, err := c.EncodeStashAdaptive(as, tt)
			if err != nil {
				t.Fatalf("%v/%s: seed encode: %v", as.Tech, as.Format, err)
			}
			if seal {
				c.Seal(enc)
			}
			b, err := enc.MarshalBinary()
			if err != nil {
				t.Fatalf("%v/%s: seed marshal: %v", as.Tech, as.Format, err)
			}
			seeds = append(seeds, b)
		}
	}
	return seeds
}

// TestMarshalRoundTrip pins the wire format: unmarshal(marshal(e)) restores
// the payload, seal state and chunk CRCs exactly, and the restored stash
// verifies and decodes identically.
func TestMarshalRoundTrip(t *testing.T) {
	c := Codec{Pool: parallel.NewPool(2), ChunkElems: 768}
	rng := tensor.NewRNG(5)
	for _, as := range propAssignments() {
		tt := tensor.New(2000)
		copy(tt.Data, randStash(rng, 2000, 0.8))
		enc, _, err := c.EncodeStashAdaptive(as, tt)
		if err != nil {
			t.Fatal(err)
		}
		c.Seal(enc)
		b, err := enc.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalStash(b)
		if err != nil {
			t.Fatalf("%v/%s: unmarshal: %v", as.Tech, as.Format, err)
		}
		if !back.Sealed() {
			t.Fatalf("%v/%s: seal state lost in round trip", as.Tech, as.Format)
		}
		assertStashesIdentical(t, enc, back, as.Tech.String())
		if err := c.Verify(back); err != nil {
			t.Fatalf("%v/%s: restored stash fails verify: %v", as.Tech, as.Format, err)
		}
		want, err := c.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Decode(back)
		if err != nil {
			t.Fatalf("%v/%s: restored stash fails decode: %v", as.Tech, as.Format, err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%v/%s: restored decode[%d] = %v, want %v", as.Tech, as.Format, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// FuzzDecodeEncodedStash feeds arbitrary bytes through the full untrusted
// path — unmarshal, verify, decode — and requires typed errors, never a
// panic or unbounded allocation. Seeds are valid serialized stashes (sealed
// and unsealed, every technique) so mutations explore deep payload and
// checksum handling, not just header rejection.
func FuzzDecodeEncodedStash(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	codec := Codec{Pool: parallel.NewPool(2), ChunkElems: 768}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := UnmarshalStash(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptStash) && !errors.Is(err, ErrNoTechnique) {
				t.Fatalf("unmarshal error %v is not a typed stash error", err)
			}
			return
		}
		if err := codec.Verify(e); err != nil {
			if !errors.Is(err, ErrCorruptStash) {
				t.Fatalf("verify error %v does not wrap ErrCorruptStash", err)
			}
			return
		}
		dec, err := codec.Decode(e)
		if err != nil {
			if !errors.Is(err, ErrCorruptStash) && !errors.Is(err, ErrShapeMismatch) && !errors.Is(err, ErrNoTechnique) {
				t.Fatalf("decode error %v is not a typed stash error", err)
			}
			return
		}
		if want := e.Shape.NumElements(); len(dec.Data) != want {
			t.Fatalf("decode returned %d elements for shape %v", len(dec.Data), e.Shape)
		}
		// A successfully decoded stash must survive re-marshal → decode.
		b, err := e.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of decodable stash failed: %v", err)
		}
		if _, err := UnmarshalStash(b); err != nil {
			t.Fatalf("re-unmarshal of decodable stash failed: %v", err)
		}
	})
}

// TestDecodeNeverPanicsOnTruncations runs every truncation prefix of every
// seed through the untrusted path — the deterministic slice of what the
// fuzzer explores, so `go test` alone covers the boundary conditions.
func TestDecodeNeverPanicsOnTruncations(t *testing.T) {
	codec := Codec{Pool: parallel.NewPool(2), ChunkElems: 768}
	for _, seed := range fuzzSeeds(t) {
		for cut := 0; cut <= len(seed); cut++ {
			e, err := UnmarshalStash(seed[:cut])
			if err != nil {
				continue
			}
			if err := codec.Verify(e); err != nil {
				continue
			}
			_, _ = codec.Decode(e)
		}
	}
}

// TestUnmarshalRejectsOversizedClaims checks the allocation caps: headers
// claiming huge shapes or counts are rejected before any large allocation.
func TestUnmarshalRejectsOversizedClaims(t *testing.T) {
	c := Codec{Pool: parallel.NewPool(1)}
	tt := tensor.New(64)
	enc, err := c.EncodeStash(&Assignment{Tech: DPR, Format: floatenc.FP16}, tt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the packed value count (offset: magic 4 + tech/seal/chunk 12 +
	// rank 4 + one dim 4 + format 4 = 28) to claim 2^31 values.
	b[28], b[29], b[30], b[31] = 0, 0, 0, 0x80
	if _, err := UnmarshalStash(b); !errors.Is(err, ErrCorruptStash) {
		t.Fatalf("oversized claim error = %v, want ErrCorruptStash", err)
	}
}
