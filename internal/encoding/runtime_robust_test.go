package encoding

import (
	"errors"
	"testing"

	"gist/internal/floatenc"
	"gist/internal/sparse"
	"gist/internal/tensor"
)

// denseWithNNZ builds an n-element tensor whose first nnz elements are 1
// (exact in every DPR format) and the rest zero. CSR's footprint depends
// only on the non-zero count, so the layout is irrelevant.
func denseWithNNZ(n, nnz int) *tensor.Tensor {
	x := tensor.New(n)
	for i := 0; i < nnz; i++ {
		x.Data[i] = 1
	}
	return x
}

// TestSSDCFallbackAroundBreakEven pins the runtime SSDC→dense degradation
// threshold exactly at the narrow-CSR break-even point, for both plain
// SSDC (FP32 values) and SSDC with DPR layered on the value array. With
// n = 4096 and 16 narrow rows the RowPtr overhead is 68 bytes, so:
//
//	FP32: effective = 5·nnz + 68, dense = 4n = 16384  → break-even nnz 3263/3264
//	FP16: effective = 3·nnz + 68, dense = 2n = 8192   → break-even nnz 2706/2708
//
// (~20% and ~33% sparsity, matching sparse.BreakEvenSparsity.)
func TestSSDCFallbackAroundBreakEven(t *testing.T) {
	const n = 4096
	cases := []struct {
		name         string
		format       floatenc.Format
		nnz          int
		wantFallback bool
	}{
		{"fp32/dense-input", floatenc.FP32, n, true},
		{"fp32/just-over-break-even", floatenc.FP32, 3264, true},
		{"fp32/just-under-break-even", floatenc.FP32, 3263, false},
		{"fp32/very-sparse", floatenc.FP32, n / 10, false},
		{"fp16/just-over-break-even", floatenc.FP16, 2708, true},
		{"fp16/just-under-break-even", floatenc.FP16, 2706, false},
		{"fp16/half-sparse", floatenc.FP16, n / 2, false},
		{"fp8/dense-input", floatenc.FP8, n, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			as := &Assignment{Tech: SSDC, Format: tc.format}
			x := denseWithNNZ(n, tc.nnz)
			e, fellBack, err := EncodeStashAdaptive(as, x)
			if err != nil {
				t.Fatalf("EncodeStashAdaptive: %v", err)
			}
			if fellBack != tc.wantFallback {
				t.Fatalf("nnz %d: fellBack = %v, want %v", tc.nnz, fellBack, tc.wantFallback)
			}
			// The strict encoder must agree with the adaptive one.
			_, strictErr := EncodeStash(as, x)
			if gotErr := errors.Is(strictErr, ErrStashTooLarge); gotErr != tc.wantFallback {
				t.Fatalf("EncodeStash err = %v, want ErrStashTooLarge: %v", strictErr, tc.wantFallback)
			}
			if tc.wantFallback {
				if e.Tech != DPR {
					t.Fatalf("fallback stash tech = %v, want DPR", e.Tech)
				}
				if want := tc.format.PackedBytes(n); e.Bytes() != want {
					t.Fatalf("fallback bytes = %d, want dense %d", e.Bytes(), want)
				}
			} else if e.Tech != SSDC {
				t.Fatalf("kept stash tech = %v, want SSDC", e.Tech)
			}
			// Either way the stash must decode to the format-quantized input.
			dec, err := e.Decode()
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			for i, v := range x.Data {
				if dec.Data[i] != tc.format.Quantize(v) {
					t.Fatalf("decode[%d] = %v, want %v", i, dec.Data[i], tc.format.Quantize(v))
				}
			}
		})
	}
}

// TestFallbackThresholdMatchesModel cross-checks the runtime decision
// against the planner's byte model on randomized zero patterns.
func TestFallbackThresholdMatchesModel(t *testing.T) {
	const n = 2048
	as := &Assignment{Tech: SSDC, Format: floatenc.FP32}
	for _, sparsity := range []float64{0, 0.1, 0.19, 0.21, 0.3, 0.6, 0.95} {
		x := tensor.New(n)
		r := tensor.NewRNG(uint64(1000 * sparsity))
		nnz := 0
		for i := range x.Data {
			if r.Float64() >= sparsity {
				x.Data[i] = 1
				nnz++
			}
		}
		_, fellBack, err := EncodeStashAdaptive(as, x)
		if err != nil {
			t.Fatal(err)
		}
		csr := sparse.EncodeCSR(x.Data)
		wantFallback := csr.Bytes() >= 4*n
		if fellBack != wantFallback {
			t.Errorf("sparsity %.2f (nnz %d): fellBack = %v, model says %v",
				sparsity, nnz, fellBack, wantFallback)
		}
	}
}

// TestSealVerifyDetectsFlipsInEverySegment flips a bit in each payload
// segment of each technique and checks the CRC catches all of them.
func TestSealVerifyDetectsFlipsInEverySegment(t *testing.T) {
	mk := func(tech Technique, f floatenc.Format) *EncodedStash {
		x := tensor.New(1000)
		r := tensor.NewRNG(9)
		for i := range x.Data {
			if r.Float64() > 0.7 {
				x.Data[i] = r.Float32() + 0.5
			}
		}
		e, err := EncodeStash(&Assignment{Tech: tech, Format: f}, x)
		if err != nil {
			t.Fatalf("EncodeStash(%v): %v", tech, err)
		}
		e.Seal()
		return e
	}

	t.Run("unsealed-verifies-trivially", func(t *testing.T) {
		e, _ := EncodeStash(&Assignment{Tech: DPR, Format: floatenc.FP16}, tensor.New(8))
		if e.Sealed() {
			t.Fatal("fresh stash must not be sealed")
		}
		if err := e.Verify(); err != nil {
			t.Fatalf("unsealed Verify: %v", err)
		}
	})

	t.Run("sealed-clean-verifies", func(t *testing.T) {
		for _, tech := range []Technique{Binarize, SSDC, DPR} {
			e := mk(tech, floatenc.FP16)
			if err := e.Verify(); err != nil {
				t.Fatalf("%v: clean Verify: %v", tech, err)
			}
			if _, err := e.Decode(); err != nil {
				t.Fatalf("%v: clean Decode: %v", tech, err)
			}
		}
	})

	t.Run("flip-anywhere-detected", func(t *testing.T) {
		for _, tech := range []Technique{Binarize, SSDC, DPR} {
			e := mk(tech, floatenc.FP16)
			bits := e.PayloadBits()
			if bits == 0 {
				t.Fatalf("%v: empty payload", tech)
			}
			// Probe a spread of bit positions including both ends: for SSDC
			// this crosses the RowPtr, ColIdx and Values segments.
			for _, bit := range []int{0, 1, bits / 4, bits / 2, 3 * bits / 4, bits - 1} {
				e.FlipBit(bit)
				if err := e.Verify(); !errors.Is(err, ErrCorruptStash) {
					t.Fatalf("%v: flip of bit %d/%d not detected: %v", tech, bit, bits, err)
				}
				if _, err := e.Decode(); !errors.Is(err, ErrCorruptStash) {
					t.Fatalf("%v: Decode after flip: %v", tech, err)
				}
				e.FlipBit(bit) // restore
				if err := e.Verify(); err != nil {
					t.Fatalf("%v: flip-back of bit %d must verify: %v", tech, bit, err)
				}
			}
		}
	})
}

// TestDecodeShapeMismatch exercises the payload/shape guards that replace
// the old index panics on unsealed stashes.
func TestDecodeShapeMismatch(t *testing.T) {
	e, err := EncodeStash(&Assignment{Tech: DPR, Format: floatenc.FP16}, tensor.New(16))
	if err != nil {
		t.Fatal(err)
	}
	e.Shape = tensor.Shape{32}
	if _, err := e.Decode(); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("DPR shape mismatch: %v", err)
	}

	e2, err := EncodeStash(&Assignment{Tech: SSDC, Format: floatenc.FP32}, denseWithNNZ(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	e2.Shape = tensor.Shape{8, 4}
	if _, err := e2.Decode(); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("SSDC shape mismatch: %v", err)
	}

	e3, err := EncodeStash(&Assignment{Tech: Binarize}, tensor.New(64))
	if err != nil {
		t.Fatal(err)
	}
	e3.Shape = tensor.Shape{65}
	if _, err := e3.Decode(); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("Binarize shape mismatch: %v", err)
	}
}
