package encoding

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"math"

	"gist/internal/bitpack"
	"gist/internal/floatenc"
	"gist/internal/sparse"
	"gist/internal/tensor"
)

// Typed errors for the encode→hold→decode path. The stash lives in fragile
// encoded form across the long forward→backward temporal gap, so every
// anomaly surfaces as a structured error the executor can recover from
// instead of a panic.
var (
	// ErrNoTechnique reports an EncodeStash call whose assignment carries
	// no encoding technique.
	ErrNoTechnique = errors.New("encoding: stash has no technique")
	// ErrCorruptStash reports a checksum mismatch between seal and decode:
	// the encoded payload was altered while it was held.
	ErrCorruptStash = errors.New("encoding: corrupt stash (checksum mismatch)")
	// ErrStashTooLarge reports an SSDC encode whose runtime sparsity fell
	// below the break-even point, making the CSR form larger than the dense
	// DPR alternative it was supposed to beat.
	ErrStashTooLarge = errors.New("encoding: encoded stash larger than dense alternative")
	// ErrShapeMismatch reports an encoded payload whose element count does
	// not match the stash's recorded shape.
	ErrShapeMismatch = errors.New("encoding: stash payload does not match shape")

	// errCSRLargerThanDense is the pre-wrapped cost-check failure returned
	// by the SSDC encoder; static because the adaptive path takes it on
	// every step a low-sparsity stash stays dense.
	errCSRLargerThanDense = fmt.Errorf("%w: runtime CSR form not below the dense DPR cost", ErrStashTooLarge)
	// errZVCLargerThanDense is its ZVC counterpart: the runtime zero
	// pattern left too many nonzeros for the bitmask+values form to beat
	// the dense packing.
	errZVCLargerThanDense = fmt.Errorf("%w: runtime ZVC form not below the dense DPR cost", ErrStashTooLarge)
	// errEntropyLargerThanDense likewise: the entropy stream (tables
	// included) came out at least as large as the packed bytes it coded.
	errEntropyLargerThanDense = fmt.Errorf("%w: entropy stream not below the dense DPR cost", ErrStashTooLarge)
)

// EncodedStash is a materialized encoded representation of a stashed
// feature map, produced after the map's last forward use and decoded (or
// consumed directly, for Binarize) in the backward pass. The training
// executor round-trips every stash through this type so the numerical
// effect of each encoding is exercised end to end.
type EncodedStash struct {
	Tech   Technique
	Shape  tensor.Shape
	Mask   *bitpack.BitMask // Binarize
	CSR    *sparse.CSR      // SSDC (values possibly DPR-quantized)
	Packed *floatenc.Packed // DPR (also the dense-fallback container)
	ZVC    *ZVCPayload      // ZVC (values possibly DPR-quantized)
	Ent    *EntropyPayload  // Entropy (ZRL+Huffman over packed bytes)

	// Checksum is the CRC32-C of the payload, valid only after Seal. For
	// stashes sealed with chunk CRCs it is their crc32Combine roll-up —
	// bit-identical to the serial whole-payload hash.
	Checksum uint32
	// ChunkElems is the chunk size (in elements) of the parallel codec
	// layout this stash was encoded under; 0 means the default. It is fixed
	// at encode (or first Seal) so chunk-level corruption attribution does
	// not depend on the verifying codec's configuration.
	ChunkElems int
	// ChunkCRCs holds the per-chunk payload CRCs recorded by Seal, letting
	// Verify localize corruption to a single chunk. Nil when the stash was
	// sealed without a chunkable layout (whole-payload checksum only).
	ChunkCRCs []uint32
	sealed    bool
}

// EncodeStash encodes a feature map per the assignment. The input tensor is
// not modified; callers relinquish it after encoding, which is exactly the
// memory-sharing opportunity Gist creates.
//
// For SSDC the runtime zero pattern decides the footprint: when the actual
// sparsity is below the narrow-CSR break-even point the CSR form can exceed
// the dense DPR stash it competes with, and EncodeStash returns
// ErrStashTooLarge. Callers that prefer graceful degradation over a hard
// error use EncodeStashAdaptive.
//
// Encoding runs through DefaultCodec(): chunk-parallel on the shared
// worker pool, with output byte-identical to a serial encode.
func EncodeStash(as *Assignment, t *tensor.Tensor) (*EncodedStash, error) {
	return DefaultCodec().EncodeStash(as, t)
}

// EncodeDense builds the dense fallback stash: the feature map packed at
// the assignment's DPR format (raw FP32 words when the format is FP32).
// This is the representation the executor degrades to when SSDC's runtime
// sparsity makes CSR uncompetitive.
func EncodeDense(f floatenc.Format, t *tensor.Tensor) *EncodedStash {
	return DefaultCodec().EncodeDense(f, t)
}

// EncodeStashAdaptive encodes per the assignment but degrades an SSDC
// stash whose runtime CSR form is larger than its dense DPR alternative to
// the dense encoding instead of failing. It reports whether the fallback
// fired so the executor can count degradations.
func EncodeStashAdaptive(as *Assignment, t *tensor.Tensor) (e *EncodedStash, fellBack bool, err error) {
	return DefaultCodec().EncodeStashAdaptive(as, t)
}

// Seal computes and records the payload checksum, arming Verify and Decode
// to detect any later corruption of the held representation. Integrity is
// opt-in: unsealed stashes skip all checksum work (the zero-overhead path).
//
// Sealing runs through DefaultCodec(): per-chunk CRCs are computed in
// parallel and rolled up (via crc32Combine) into Checksum — the identical
// value the serial whole-payload hash produces — while ChunkCRCs records
// the pieces so Verify can localize corruption to a single chunk.
func (e *EncodedStash) Seal() {
	DefaultCodec().Seal(e)
}

// Sealed reports whether the stash carries a checksum.
func (e *EncodedStash) Sealed() bool { return e.sealed }

// Verify re-hashes the payload of a sealed stash and returns an error
// wrapping ErrCorruptStash on mismatch — a *ChunkError naming the corrupted
// chunk when the stash carries chunk CRCs. Unsealed stashes verify
// trivially.
func (e *EncodedStash) Verify() error {
	return DefaultCodec().Verify(e)
}

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// modern CPUs, the conventional choice for storage integrity).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcWriter streams payload words into a CRC exactly as the wire layout
// orders them (little-endian), the adapter techniques hash through in
// checksumPayload.
type crcWriter struct {
	h   hash.Hash32
	buf [8]byte
}

func (w *crcWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.h.Write(w.buf[:4])
}

func (w *crcWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.h.Write(w.buf[:8])
}

func (w *crcWriter) raw(b []byte) { w.h.Write(b) }

// checksum hashes the technique, shape and payload arrays.
func (e *EncodedStash) checksum() uint32 {
	w := &crcWriter{h: crc32.New(crcTable)}
	w.u32(uint32(e.Tech))
	w.u32(uint32(len(e.Shape)))
	for _, d := range e.Shape {
		w.u32(uint32(d))
	}
	if impl, ok := techImpl(e.Tech); ok {
		impl.checksumPayload(e, w)
	}
	return w.h.Sum32()
}

// headerCRC hashes the header prefix of checksum() — technique, shape rank,
// dims — as the leading piece of the chunked roll-up.
func (e *EncodedStash) headerCRC() uint32 {
	var buf [4]byte
	crc := uint32(0)
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:], v)
		crc = crc32.Update(crc, crcTable, buf[:])
	}
	put(uint32(e.Tech))
	put(uint32(len(e.Shape)))
	for _, d := range e.Shape {
		put(uint32(d))
	}
	return crc
}

// Piece hashers for the chunked checksum: each serializes its array segment
// exactly as checksum() does (little-endian words), so combining piece CRCs
// reproduces the serial whole-payload value.

func crcUint64s(ws []uint64) uint32 {
	var buf [8]byte
	crc := uint32(0)
	for _, w := range ws {
		binary.LittleEndian.PutUint64(buf[:], w)
		crc = crc32.Update(crc, crcTable, buf[:])
	}
	return crc
}

func crcUint32s(ws []uint32) uint32 {
	var buf [4]byte
	crc := uint32(0)
	for _, w := range ws {
		binary.LittleEndian.PutUint32(buf[:], w)
		crc = crc32.Update(crc, crcTable, buf[:])
	}
	return crc
}

func crcInt32s(ps []int32) uint32 {
	var buf [4]byte
	crc := uint32(0)
	for _, p := range ps {
		binary.LittleEndian.PutUint32(buf[:], uint32(p))
		crc = crc32.Update(crc, crcTable, buf[:])
	}
	return crc
}

func crcFloat32s(vs []float32) uint32 {
	var buf [4]byte
	crc := uint32(0)
	for _, v := range vs {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		crc = crc32.Update(crc, crcTable, buf[:])
	}
	return crc
}

func crcBytes(bs []byte) uint32 {
	return crc32.Update(0, crcTable, bs)
}

// PayloadBits returns the number of addressable payload bits — the fault
// injector's corruption surface (mask words, CSR meta and value arrays,
// packed DPR words, ZVC mask+value arrays, entropy streams).
func (e *EncodedStash) PayloadBits() int {
	if impl, ok := techImpl(e.Tech); ok {
		return impl.payloadBits(e)
	}
	return 0
}

// FlipBit inverts payload bit i (0 <= i < PayloadBits), the primitive the
// fault injector uses to simulate in-memory corruption of a held stash.
func (e *EncodedStash) FlipBit(i int) {
	if i < 0 || i >= e.PayloadBits() {
		panic(fmt.Sprintf("encoding: FlipBit index %d out of range [0,%d)", i, e.PayloadBits()))
	}
	impl, _ := techImpl(e.Tech) // PayloadBits > 0 implies a registered technique
	impl.flipBit(e, i)
}

// Decode materializes the FP32 staging tensor for the backward use. For
// Binarize the mask itself is the backward representation, but Decode still
// reconstructs a 0/1 tensor so that generic backward code can run unchanged
// (ReLU backward only tests Y > 0, and the pool argmax map carries the rest).
//
// A sealed stash is verified first; corruption surfaces as ErrCorruptStash
// before any decoding touches the damaged payload. Payload/shape
// disagreements (possible on unsealed stashes) surface as ErrShapeMismatch,
// and structurally damaged payloads (possible after deserialization) as
// ErrCorruptStash, rather than an index panic.
//
// Decoding runs through DefaultCodec(): chunk-parallel on the shared
// worker pool, with output identical to a serial decode.
func (e *EncodedStash) Decode() (*tensor.Tensor, error) {
	return DefaultCodec().Decode(e)
}

// Bytes returns the encoded representation's storage footprint.
func (e *EncodedStash) Bytes() int64 {
	if impl, ok := techImpl(e.Tech); ok {
		return impl.bytes(e)
	}
	return 0
}
