package encoding

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"gist/internal/bitpack"
	"gist/internal/floatenc"
	"gist/internal/sparse"
	"gist/internal/tensor"
)

// Typed errors for the encode→hold→decode path. The stash lives in fragile
// encoded form across the long forward→backward temporal gap, so every
// anomaly surfaces as a structured error the executor can recover from
// instead of a panic.
var (
	// ErrNoTechnique reports an EncodeStash call whose assignment carries
	// no encoding technique.
	ErrNoTechnique = errors.New("encoding: stash has no technique")
	// ErrCorruptStash reports a checksum mismatch between seal and decode:
	// the encoded payload was altered while it was held.
	ErrCorruptStash = errors.New("encoding: corrupt stash (checksum mismatch)")
	// ErrStashTooLarge reports an SSDC encode whose runtime sparsity fell
	// below the break-even point, making the CSR form larger than the dense
	// DPR alternative it was supposed to beat.
	ErrStashTooLarge = errors.New("encoding: encoded stash larger than dense alternative")
	// ErrShapeMismatch reports an encoded payload whose element count does
	// not match the stash's recorded shape.
	ErrShapeMismatch = errors.New("encoding: stash payload does not match shape")
)

// EncodedStash is a materialized encoded representation of a stashed
// feature map, produced after the map's last forward use and decoded (or
// consumed directly, for Binarize) in the backward pass. The training
// executor round-trips every stash through this type so the numerical
// effect of each encoding is exercised end to end.
type EncodedStash struct {
	Tech   Technique
	Shape  tensor.Shape
	Mask   *bitpack.BitMask // Binarize
	CSR    *sparse.CSR      // SSDC (values possibly DPR-quantized)
	Packed *floatenc.Packed // DPR (also the dense-fallback container)

	// Checksum is the CRC32-C of the payload, valid only after Seal.
	Checksum uint32
	sealed   bool
}

// EncodeStash encodes a feature map per the assignment. The input tensor is
// not modified; callers relinquish it after encoding, which is exactly the
// memory-sharing opportunity Gist creates.
//
// For SSDC the runtime zero pattern decides the footprint: when the actual
// sparsity is below the narrow-CSR break-even point the CSR form can exceed
// the dense DPR stash it competes with, and EncodeStash returns
// ErrStashTooLarge. Callers that prefer graceful degradation over a hard
// error use EncodeStashAdaptive.
func EncodeStash(as *Assignment, t *tensor.Tensor) (*EncodedStash, error) {
	e := &EncodedStash{Tech: as.Tech, Shape: t.Shape.Clone()}
	switch as.Tech {
	case Binarize:
		e.Mask = bitpack.FromPositive(t.Data)
	case SSDC:
		// Sparse storage; DPR layered on the value array when configured.
		// Quantizing before CSR encoding preserves the zero pattern
		// exactly (quantization maps 0 to 0).
		data := t.Data
		if as.Format != floatenc.FP32 {
			data = append([]float32(nil), t.Data...)
			floatenc.QuantizeSlice(as.Format, data)
		}
		e.CSR = sparse.EncodeCSR(data)
		// Compare against the dense DPR alternative using the same cost
		// model as the static analysis (ssdcBytes): when DPR is layered on
		// SSDC the CSR value array would also shrink to the packed width, so
		// credit that saving before declaring CSR uncompetitive.
		effective := e.CSR.Bytes()
		if as.Format != floatenc.FP32 {
			nnz := int64(e.CSR.NNZ())
			effective -= nnz*4 - as.Format.PackedBytes(int(nnz))
		}
		if dense := as.Format.PackedBytes(len(t.Data)); effective >= dense {
			return nil, fmt.Errorf("%w: CSR %d bytes >= dense %s %d bytes (nnz %d/%d)",
				ErrStashTooLarge, effective, as.Format, dense, e.CSR.NNZ(), len(t.Data))
		}
	case DPR:
		e.Packed = floatenc.EncodeSlice(as.Format, t.Data)
	default:
		return nil, fmt.Errorf("%w (technique %v)", ErrNoTechnique, as.Tech)
	}
	return e, nil
}

// EncodeDense builds the dense fallback stash: the feature map packed at
// the assignment's DPR format (raw FP32 words when the format is FP32).
// This is the representation the executor degrades to when SSDC's runtime
// sparsity makes CSR uncompetitive.
func EncodeDense(f floatenc.Format, t *tensor.Tensor) *EncodedStash {
	return &EncodedStash{
		Tech:   DPR,
		Shape:  t.Shape.Clone(),
		Packed: floatenc.EncodeSlice(f, t.Data),
	}
}

// EncodeStashAdaptive encodes per the assignment but degrades an SSDC
// stash whose runtime CSR form is larger than its dense DPR alternative to
// the dense encoding instead of failing. It reports whether the fallback
// fired so the executor can count degradations.
func EncodeStashAdaptive(as *Assignment, t *tensor.Tensor) (e *EncodedStash, fellBack bool, err error) {
	e, err = EncodeStash(as, t)
	if errors.Is(err, ErrStashTooLarge) {
		return EncodeDense(as.Format, t), true, nil
	}
	return e, false, err
}

// Seal computes and records the payload checksum, arming Verify and Decode
// to detect any later corruption of the held representation. Integrity is
// opt-in: unsealed stashes skip all checksum work (the zero-overhead path).
func (e *EncodedStash) Seal() {
	e.Checksum = e.checksum()
	e.sealed = true
}

// Sealed reports whether the stash carries a checksum.
func (e *EncodedStash) Sealed() bool { return e.sealed }

// Verify re-hashes the payload of a sealed stash and returns ErrCorruptStash
// on mismatch. Unsealed stashes verify trivially.
func (e *EncodedStash) Verify() error {
	if !e.sealed {
		return nil
	}
	if got := e.checksum(); got != e.Checksum {
		return fmt.Errorf("%w: %v stash of shape %v: crc %#x, sealed %#x",
			ErrCorruptStash, e.Tech, e.Shape, got, e.Checksum)
	}
	return nil
}

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// modern CPUs, the conventional choice for storage integrity).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum hashes the technique, shape and payload arrays.
func (e *EncodedStash) checksum() uint32 {
	h := crc32.New(crcTable)
	var buf [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:4], v)
		h.Write(buf[:4])
	}
	put32(uint32(e.Tech))
	put32(uint32(len(e.Shape)))
	for _, d := range e.Shape {
		put32(uint32(d))
	}
	switch e.Tech {
	case Binarize:
		for _, w := range e.Mask.Words() {
			binary.LittleEndian.PutUint64(buf[:8], w)
			h.Write(buf[:8])
		}
	case SSDC:
		for _, p := range e.CSR.RowPtr {
			put32(uint32(p))
		}
		h.Write(e.CSR.ColIdx)
		for _, v := range e.CSR.Values {
			put32(math.Float32bits(v))
		}
	case DPR:
		for _, w := range e.Packed.Words {
			put32(w)
		}
	}
	return h.Sum32()
}

// PayloadBits returns the number of addressable payload bits — the fault
// injector's corruption surface (mask words, CSR meta and value arrays,
// packed DPR words).
func (e *EncodedStash) PayloadBits() int {
	switch e.Tech {
	case Binarize:
		return len(e.Mask.Words()) * 64
	case SSDC:
		return len(e.CSR.RowPtr)*32 + len(e.CSR.ColIdx)*8 + len(e.CSR.Values)*32
	case DPR:
		return len(e.Packed.Words) * 32
	}
	return 0
}

// FlipBit inverts payload bit i (0 <= i < PayloadBits), the primitive the
// fault injector uses to simulate in-memory corruption of a held stash.
func (e *EncodedStash) FlipBit(i int) {
	if i < 0 || i >= e.PayloadBits() {
		panic(fmt.Sprintf("encoding: FlipBit index %d out of range [0,%d)", i, e.PayloadBits()))
	}
	switch e.Tech {
	case Binarize:
		e.Mask.Words()[i/64] ^= 1 << (uint(i) % 64)
	case SSDC:
		if n := len(e.CSR.RowPtr) * 32; i < n {
			e.CSR.RowPtr[i/32] ^= 1 << (uint(i) % 32)
			return
		} else {
			i -= n
		}
		if n := len(e.CSR.ColIdx) * 8; i < n {
			e.CSR.ColIdx[i/8] ^= 1 << (uint(i) % 8)
			return
		} else {
			i -= n
		}
		bits := math.Float32bits(e.CSR.Values[i/32]) ^ 1<<(uint(i)%32)
		e.CSR.Values[i/32] = math.Float32frombits(bits)
	case DPR:
		e.Packed.Words[i/32] ^= 1 << (uint(i) % 32)
	}
}

// Decode materializes the FP32 staging tensor for the backward use. For
// Binarize the mask itself is the backward representation, but Decode still
// reconstructs a 0/1 tensor so that generic backward code can run unchanged
// (ReLU backward only tests Y > 0, and the pool argmax map carries the rest).
//
// A sealed stash is verified first; corruption surfaces as ErrCorruptStash
// before any decoding touches the damaged payload. Payload/shape
// disagreements (possible on unsealed stashes) surface as ErrShapeMismatch
// rather than an index panic.
func (e *EncodedStash) Decode() (*tensor.Tensor, error) {
	if err := e.Verify(); err != nil {
		return nil, err
	}
	out := tensor.New(e.Shape...)
	switch e.Tech {
	case Binarize:
		if e.Mask.Len() != len(out.Data) {
			return nil, fmt.Errorf("%w: mask %d bits, shape %v", ErrShapeMismatch, e.Mask.Len(), e.Shape)
		}
		for i := range out.Data {
			if e.Mask.Get(i) {
				out.Data[i] = 1
			}
		}
	case SSDC:
		if e.CSR.N != len(out.Data) {
			return nil, fmt.Errorf("%w: CSR over %d elements, shape %v", ErrShapeMismatch, e.CSR.N, e.Shape)
		}
		e.CSR.Decode(out.Data)
	case DPR:
		if e.Packed.N != len(out.Data) {
			return nil, fmt.Errorf("%w: packed %d elements, shape %v", ErrShapeMismatch, e.Packed.N, e.Shape)
		}
		e.Packed.DecodeSlice(out.Data)
	default:
		return nil, fmt.Errorf("%w (technique %v)", ErrNoTechnique, e.Tech)
	}
	return out, nil
}

// Bytes returns the encoded representation's storage footprint.
func (e *EncodedStash) Bytes() int64 {
	switch e.Tech {
	case Binarize:
		return e.Mask.Bytes()
	case SSDC:
		return e.CSR.Bytes()
	case DPR:
		return e.Packed.Bytes()
	}
	return 0
}
