package encoding

import (
	"gist/internal/bitpack"
	"gist/internal/floatenc"
	"gist/internal/sparse"
	"gist/internal/tensor"
)

// EncodedStash is a materialized encoded representation of a stashed
// feature map, produced after the map's last forward use and decoded (or
// consumed directly, for Binarize) in the backward pass. The training
// executor round-trips every stash through this type so the numerical
// effect of each encoding is exercised end to end.
type EncodedStash struct {
	Tech   Technique
	Shape  tensor.Shape
	Mask   *bitpack.BitMask // Binarize
	CSR    *sparse.CSR      // SSDC (values possibly DPR-quantized)
	Packed *floatenc.Packed // DPR
}

// EncodeStash encodes a feature map per the assignment. The input tensor is
// not modified; callers relinquish it after encoding, which is exactly the
// memory-sharing opportunity Gist creates.
func EncodeStash(as *Assignment, t *tensor.Tensor) *EncodedStash {
	e := &EncodedStash{Tech: as.Tech, Shape: t.Shape.Clone()}
	switch as.Tech {
	case Binarize:
		e.Mask = bitpack.FromPositive(t.Data)
	case SSDC:
		// Sparse storage; DPR layered on the value array when configured.
		// Quantizing before CSR encoding preserves the zero pattern
		// exactly (quantization maps 0 to 0).
		data := t.Data
		if as.Format != floatenc.FP32 {
			data = append([]float32(nil), t.Data...)
			floatenc.QuantizeSlice(as.Format, data)
		}
		e.CSR = sparse.EncodeCSR(data)
	case DPR:
		e.Packed = floatenc.EncodeSlice(as.Format, t.Data)
	default:
		panic("encoding: EncodeStash with no technique")
	}
	return e
}

// Decode materializes the FP32 staging tensor for the backward use. For
// Binarize the mask itself is the backward representation, but Decode still
// reconstructs a 0/1 tensor so that generic backward code can run unchanged
// (ReLU backward only tests Y > 0, and the pool argmax map carries the rest).
func (e *EncodedStash) Decode() *tensor.Tensor {
	out := tensor.New(e.Shape...)
	switch e.Tech {
	case Binarize:
		for i := range out.Data {
			if e.Mask.Get(i) {
				out.Data[i] = 1
			}
		}
	case SSDC:
		e.CSR.Decode(out.Data)
	case DPR:
		e.Packed.DecodeSlice(out.Data)
	}
	return out
}

// Bytes returns the encoded representation's storage footprint.
func (e *EncodedStash) Bytes() int64 {
	switch e.Tech {
	case Binarize:
		return e.Mask.Bytes()
	case SSDC:
		return e.CSR.Bytes()
	case DPR:
		return e.Packed.Bytes()
	}
	return 0
}
