package encoding

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"gist/internal/floatenc"
	"gist/internal/parallel"
	"gist/internal/telemetry"
	"gist/internal/tensor"
)

// TestCodecTelemetry pins the codec's instrument surface: per-technique
// call/byte counters and latency histograms, the chunk counter, and — with
// tracing armed — per-call complete events plus per-chunk worker spans.
func TestCodecTelemetry(t *testing.T) {
	s := telemetry.New()
	s.EnableTracing(0)
	c := Codec{Pool: parallel.NewPool(2), ChunkElems: 768, Tel: s}

	rng := tensor.NewRNG(3)
	tt := tensor.New(4096)
	copy(tt.Data, randStash(rng, 4096, 0.5))
	as := &Assignment{Tech: DPR, Format: floatenc.FP16}
	enc, err := c.EncodeStash(as, tt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(enc); err != nil {
		t.Fatal(err)
	}

	v := s.Values()
	if v["codec.encode.DPR.calls"] != 1 || v["codec.decode.DPR.calls"] != 1 {
		t.Fatalf("call counters: %v", v)
	}
	if v["codec.encode.DPR.bytes"] != enc.Bytes() {
		t.Fatalf("encode bytes %d, want %d", v["codec.encode.DPR.bytes"], enc.Bytes())
	}
	if v["codec.decode.DPR.bytes"] != tt.Bytes() {
		t.Fatalf("decode bytes %d, want raw %d", v["codec.decode.DPR.bytes"], tt.Bytes())
	}
	// 4096 elements at 768/chunk = 6 chunks per pass; encode + decode +
	// decode's verify pass each walk the payload.
	if v["codec.chunks"] < 12 {
		t.Fatalf("chunk count %d, want >= 12", v["codec.chunks"])
	}
	if s.Histogram("codec.encode.DPR.ns").Count() != 1 {
		t.Fatal("missing encode latency observation")
	}

	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"encode.DPR"`, `"decode.DPR"`, `"chunk"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("trace missing %s", want)
		}
	}
}

func TestCodecCRCFailureTelemetry(t *testing.T) {
	s := telemetry.New()
	s.EnableTracing(0)
	c := Codec{Pool: parallel.NewPool(1), ChunkElems: 768, Tel: s}

	rng := tensor.NewRNG(5)
	tt := tensor.New(4096)
	copy(tt.Data, randStash(rng, 4096, 0.5))
	enc, err := c.EncodeStash(&Assignment{Tech: Binarize, Format: floatenc.FP32}, tt)
	if err != nil {
		t.Fatal(err)
	}
	c.Seal(enc)
	enc.FlipBit(1000)
	if err := c.Verify(enc); err == nil {
		t.Fatal("flip undetected")
	}
	if got := s.Values()["codec.crc.failures"]; got != 1 {
		t.Fatalf("crc failure counter %d", got)
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"crc-failure"`, `"elem_lo"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("trace missing %s instant", want)
		}
	}
}

// TestChunkErrorOffsets pins the self-describing location on chunk errors:
// the element range always, byte offsets for the single-array techniques
// (Binarize words, DPR words), and -1 byte offsets for SSDC whose chunks
// span three backing arrays.
func TestChunkErrorOffsets(t *testing.T) {
	rng := tensor.NewRNG(9)
	c := Codec{Pool: parallel.NewPool(1), ChunkElems: 768}
	n := 4096

	chunkErrFor := func(as *Assignment, bit int) *ChunkError {
		t.Helper()
		tt := tensor.New(n)
		copy(tt.Data, randStash(rng, n, 0.8))
		enc, _, err := c.EncodeStashAdaptive(as, tt)
		if err != nil {
			t.Fatalf("%v: encode: %v", as.Tech, err)
		}
		c.Seal(enc)
		enc.FlipBit(bit)
		verr := c.Verify(enc)
		var ce *ChunkError
		if !errors.As(verr, &ce) {
			t.Fatalf("%v: no chunk error: %v", as.Tech, verr)
		}
		elemLo, elemHi, byteLo, byteHi := enc.ChunkSpan(ce.Chunk)
		if ce.ElemLo != elemLo || ce.ElemHi != elemHi || ce.ByteLo != byteLo || ce.ByteHi != byteHi {
			t.Fatalf("%v: error span (%d,%d,%d,%d) != ChunkSpan (%d,%d,%d,%d)",
				as.Tech, ce.ElemLo, ce.ElemHi, ce.ByteLo, ce.ByteHi, elemLo, elemHi, byteLo, byteHi)
		}
		return ce
	}

	// Binarize: chunk 1 owns elements [768,1536) = mask words [12,24) =
	// bytes [96,192).
	ce := chunkErrFor(&Assignment{Tech: Binarize, Format: floatenc.FP32}, 1000)
	if ce.Chunk != 1 || ce.ElemLo != 768 || ce.ElemHi != 1536 || ce.ByteLo != 96 || ce.ByteHi != 192 {
		t.Fatalf("Binarize span: %+v", ce)
	}
	for _, want := range []string{"elements 768-1536", "payload bytes 96-192", "Binarize"} {
		if !strings.Contains(ce.Error(), want) {
			t.Fatalf("Binarize message %q missing %q", ce.Error(), want)
		}
	}

	// DPR FP16 packs 2 values/word: chunk 1 = elements [768,1536) = words
	// [384,768) = bytes [1536,3072).
	ce = chunkErrFor(&Assignment{Tech: DPR, Format: floatenc.FP16}, 1536*16+5)
	if ce.ElemLo != ce.Chunk*768 || ce.ByteLo != int64(ce.Chunk)*768*2 {
		t.Fatalf("DPR span: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "payload bytes") {
		t.Fatalf("DPR message %q missing byte range", ce.Error())
	}

	// SSDC: element range present, byte offsets are -1 and stay out of the
	// message.
	ce = chunkErrFor(&Assignment{Tech: SSDC, Format: floatenc.FP32}, 50)
	if ce.ByteLo != -1 || ce.ByteHi != -1 {
		t.Fatalf("SSDC byte offsets: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "elements ") {
		t.Fatalf("SSDC message %q missing element range", ce.Error())
	}
	if strings.Contains(ce.Error(), "payload bytes") {
		t.Fatalf("SSDC message %q must not claim byte offsets", ce.Error())
	}

	// The zero-value error (hand-built, no location) keeps the compact
	// legacy message.
	legacy := (&ChunkError{Chunk: 3, Chunks: 7, Tech: SSDC, Shape: tensor.Shape{4, 8}}).Error()
	if strings.Contains(legacy, "elements") {
		t.Fatalf("zero-value message %q must omit location", legacy)
	}
}
