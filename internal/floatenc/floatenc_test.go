package floatenc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatMetadata(t *testing.T) {
	cases := []struct {
		f          Format
		name       string
		bits, vpw  int
		maxVal     float64
		minNormal  float64
		relErrBits int
	}{
		{FP32, "FP32", 32, 1, math.MaxFloat32, math.SmallestNonzeroFloat32, 0},
		{FP16, "FP16", 16, 2, 65504, math.Ldexp(1, -14), 11},
		{FP10, "FP10", 10, 3, math.Ldexp(2-math.Ldexp(1, -4), 15), math.Ldexp(1, -14), 5},
		{FP8, "FP8", 8, 4, math.Ldexp(2-math.Ldexp(1, -3), 7), math.Ldexp(1, -6), 4},
	}
	for _, c := range cases {
		if c.f.String() != c.name {
			t.Errorf("String() = %q, want %q", c.f.String(), c.name)
		}
		if c.f.Bits() != c.bits {
			t.Errorf("%v Bits() = %d, want %d", c.f, c.f.Bits(), c.bits)
		}
		if c.f.ValuesPerWord() != c.vpw {
			t.Errorf("%v ValuesPerWord() = %d, want %d", c.f, c.f.ValuesPerWord(), c.vpw)
		}
		if got := c.f.MaxValue(); math.Abs(got-c.maxVal)/c.maxVal > 1e-12 {
			t.Errorf("%v MaxValue() = %v, want %v", c.f, got, c.maxVal)
		}
		if got := c.f.MinNormal(); got != c.minNormal {
			t.Errorf("%v MinNormal() = %v, want %v", c.f, got, c.minNormal)
		}
	}
}

func TestFP16MatchesIEEEHalfExamples(t *testing.T) {
	// Known IEEE 754 half-precision bit patterns.
	cases := []struct {
		v    float32
		bits uint32
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},
		{-65504, 0xfbff},
		{1.5, 0x3e00},
		{0.099975586, 0x2e66}, // nearest half to 0.1
	}
	for _, c := range cases {
		if got := FP16.Encode(c.v); got != c.bits {
			t.Errorf("FP16.Encode(%v) = %#04x, want %#04x", c.v, got, c.bits)
		}
	}
}

func TestEncodeClampsAtMax(t *testing.T) {
	for _, f := range []Format{FP16, FP10, FP8} {
		over := float32(f.MaxValue() * 4)
		got := f.Decode(f.Encode(over))
		if float64(got) != f.MaxValue() {
			t.Errorf("%v: Encode(overflow) should clamp to %v, got %v", f, f.MaxValue(), got)
		}
		gotNeg := f.Decode(f.Encode(-over))
		if float64(gotNeg) != -f.MaxValue() {
			t.Errorf("%v: negative overflow should clamp to %v, got %v", f, -f.MaxValue(), gotNeg)
		}
	}
}

func TestEncodeFlushesDenormals(t *testing.T) {
	for _, f := range []Format{FP16, FP10, FP8} {
		tiny := float32(f.MinNormal() / 4)
		if got := f.Decode(f.Encode(tiny)); got != 0 {
			t.Errorf("%v: tiny value %v should flush to zero, got %v", f, tiny, got)
		}
	}
}

func TestEncodeZeroAndSign(t *testing.T) {
	for _, f := range []Format{FP16, FP10, FP8} {
		if got := f.Decode(f.Encode(0)); got != 0 {
			t.Errorf("%v: zero round trip got %v", f, got)
		}
		neg := f.Decode(f.Encode(float32(math.Copysign(0, -1))))
		if neg != 0 || !math.Signbit(float64(neg)) {
			t.Errorf("%v: negative zero should survive as -0, got %v", f, neg)
		}
	}
}

func TestEncodeNaN(t *testing.T) {
	for _, f := range []Format{FP16, FP10, FP8} {
		got := f.Decode(f.Encode(float32(math.NaN())))
		if !math.IsNaN(float64(got)) {
			t.Errorf("%v: NaN should round trip as NaN, got %v", f, got)
		}
	}
}

func TestQuantizeRelativeErrorBound(t *testing.T) {
	// Property from the format definition: for values within the normal
	// range, round-to-nearest keeps relative error below 2^-(manBits+1).
	for _, f := range []Format{FP16, FP10, FP8} {
		bound := f.MaxRelativeError()
		for _, v := range []float64{1.0 / 3, 0.7, 1.234, 5.5, 17.77, 100.1} {
			if v > f.MaxValue() {
				continue
			}
			q := float64(f.Quantize(float32(v)))
			rel := math.Abs(q-v) / v
			if rel > bound {
				t.Errorf("%v: Quantize(%v) = %v, rel err %v > bound %v", f, v, q, rel, bound)
			}
		}
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	// Quantizing an already-quantized value must be exact.
	f := func(v float32) bool {
		for _, fm := range []Format{FP16, FP10, FP8} {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				continue
			}
			q := fm.Quantize(v)
			if fm.Quantize(q) != q && !(math.IsNaN(float64(q))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeMonotone(t *testing.T) {
	// Rounding must preserve ordering: a <= b implies Q(a) <= Q(b).
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) ||
			math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		for _, fm := range []Format{FP16, FP10, FP8} {
			if fm.Quantize(a) > fm.Quantize(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuantizeSignSymmetry(t *testing.T) {
	f := func(v float32) bool {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		for _, fm := range []Format{FP16, FP10, FP8} {
			if fm.Quantize(-v) != -fm.Quantize(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between FP16(1.0) and the next value
	// 1 + 2^-10; ties-to-even rounds it down to 1.0.
	v := float32(1 + math.Ldexp(1, -11))
	if got := FP16.Quantize(v); got != 1 {
		t.Errorf("halfway tie should round to even: got %v", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even is 1+2^-9.
	v = float32(1 + 3*math.Ldexp(1, -11))
	want := float32(1 + math.Ldexp(1, -9))
	if got := FP16.Quantize(v); got != want {
		t.Errorf("tie to even: got %v, want %v", got, want)
	}
}

func TestPackedBytes(t *testing.T) {
	cases := []struct {
		f    Format
		n    int
		want int64
	}{
		{FP16, 2, 4}, {FP16, 3, 8}, {FP16, 1000, 2000},
		{FP10, 3, 4}, {FP10, 4, 8}, {FP10, 999, 1332},
		{FP8, 4, 4}, {FP8, 5, 8}, {FP8, 1000, 1000},
		{FP32, 10, 40},
	}
	for _, c := range cases {
		if got := c.f.PackedBytes(c.n); got != c.want {
			t.Errorf("%v.PackedBytes(%d) = %d, want %d", c.f, c.n, got, c.want)
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	if FP16.CompressionRatio() != 2 || FP10.CompressionRatio() != 3 || FP8.CompressionRatio() != 4 {
		t.Error("compression ratios must be 2x/3x/4x for FP16/FP10/FP8")
	}
}

func TestEncodeDecodeSliceRoundTrip(t *testing.T) {
	src := []float32{0, 1, -1, 0.5, 3.25, -7, 100, 0.0625, 2.5, -0.125, 42}
	for _, f := range []Format{FP16, FP10, FP8} {
		p := EncodeSlice(f, src)
		if p.N != len(src) {
			t.Fatalf("%v: N = %d", f, p.N)
		}
		got := p.DecodeSlice(nil)
		for i, v := range src {
			want := f.Quantize(v)
			if got[i] != want {
				t.Errorf("%v: slice[%d] = %v, want %v (src %v)", f, i, got[i], want, v)
			}
		}
	}
}

func TestDecodeSliceLengthMismatchPanics(t *testing.T) {
	p := EncodeSlice(FP8, []float32{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.DecodeSlice(make([]float32, 5))
}

func TestPackedStorageSizes(t *testing.T) {
	// 7 FP8 values need ceil(7/4)=2 words = 8 bytes.
	p := EncodeSlice(FP8, make([]float32, 7))
	if p.Bytes() != 8 {
		t.Errorf("Bytes = %d, want 8", p.Bytes())
	}
	// 7 FP10 values need ceil(7/3)=3 words = 12 bytes.
	p = EncodeSlice(FP10, make([]float32, 7))
	if p.Bytes() != 12 {
		t.Errorf("Bytes = %d, want 12", p.Bytes())
	}
}

func TestQuantizeSliceMatchesScalar(t *testing.T) {
	src := []float32{0.1, 0.2, 0.3, -0.4, 1.7}
	for _, f := range []Format{FP32, FP16, FP10, FP8} {
		xs := append([]float32(nil), src...)
		QuantizeSlice(f, xs)
		for i, v := range src {
			if xs[i] != f.Quantize(v) {
				t.Errorf("%v: QuantizeSlice[%d] = %v, want %v", f, i, xs[i], f.Quantize(v))
			}
		}
	}
}

func TestPropertyPackRoundTripEqualsQuantize(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) > 100 {
			vals = vals[:100]
		}
		clean := make([]float32, 0, len(vals))
		for _, v := range vals {
			if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) {
				clean = append(clean, v)
			}
		}
		for _, fm := range []Format{FP16, FP10, FP8} {
			p := EncodeSlice(fm, clean)
			got := p.DecodeSlice(nil)
			for i, v := range clean {
				if got[i] != fm.Quantize(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExactlyRepresentableValuesRoundTrip(t *testing.T) {
	// Powers of two and small integers are exactly representable in all
	// three formats (within range) and must survive unchanged.
	for _, f := range []Format{FP16, FP10, FP8} {
		for _, v := range []float32{1, 2, 4, 8, 0.5, 0.25, 3, 6, -1, -2, -0.5} {
			if float64(v) > f.MaxValue() {
				continue
			}
			if got := f.Quantize(v); got != v {
				t.Errorf("%v: %v must be exact, got %v", f, v, got)
			}
		}
	}
}
