package floatenc

import "math"

// Retained scalar reference codecs. encodeScalar/decodeScalar are the
// original per-value implementations, kept verbatim for three jobs: the
// ground truth of the differential tests (the word-parallel kernels must
// match them bit for bit), the `scalar` legs of the Kernel benchmarks that
// `make bench-gate` compares against, and the production slow path for the
// rare inputs (underflow boundary, Inf/NaN, deep overflow) the branch-free
// fast path in floatenc.go punts on — so fast and reference agree on those
// inputs by construction. Do not optimize these: their value is being
// obviously correct and frozen.

// encodeScalar converts an FP32 value to the format's bit pattern — the
// original Encode, one layout computation and range classification per
// call.
func (f Format) encodeScalar(v float32) uint32 {
	if f == FP32 {
		return math.Float32bits(v)
	}
	l := f.layout()
	bits := math.Float32bits(v)
	sign := (bits >> 31) << (l.expBits + l.manBits)

	abs := math.Abs(float64(v))
	if math.IsNaN(float64(v)) {
		// Encode NaN as all-ones exponent with a non-zero mantissa.
		return sign | (((1 << l.expBits) - 1) << l.manBits) | 1
	}
	if abs > f.MaxValue() {
		// Clamp at the largest finite value (paper: "clamped at
		// maximum/minimum value").
		return sign | f.maxFiniteBits()
	}
	if abs < f.MinNormal()/2 {
		// Underflow far below the normal range: flush to zero.
		return sign
	}

	exp32 := int((bits >> 23) & 0xff)
	man32 := bits & 0x7fffff
	bias := (1 << (l.expBits - 1)) - 1
	expT := exp32 - 127 + bias

	// Round the 23-bit mantissa to manBits using round-to-nearest-even.
	shift := 23 - l.manBits
	man := man32 >> shift
	rem := man32 & ((1 << shift) - 1)
	half := uint32(1) << (shift - 1)
	if rem > half || (rem == half && man&1 == 1) {
		man++
		if man == 1<<l.manBits { // mantissa overflowed into the exponent
			man = 0
			expT++
		}
	}
	if expT <= 0 {
		// Result is below the normal range after rounding: flush to zero
		// unless rounding reaches the smallest normal.
		if expT == 0 && man == 0 && abs >= f.MinNormal()*(1-math.Ldexp(1, -int(l.manBits+1))) {
			return sign | (1 << l.manBits)
		}
		return sign
	}
	if expT >= (1<<l.expBits)-1 {
		return sign | f.maxFiniteBits()
	}
	return sign | uint32(expT)<<l.manBits | man
}

// decodeScalar converts a bit pattern produced by Encode back to FP32 —
// the original Decode.
func (f Format) decodeScalar(bits uint32) float32 {
	if f == FP32 {
		return math.Float32frombits(bits)
	}
	l := f.layout()
	total := l.expBits + l.manBits + 1
	bits &= (1 << total) - 1
	sign := bits >> (l.expBits + l.manBits)
	exp := (bits >> l.manBits) & ((1 << l.expBits) - 1)
	man := bits & ((1 << l.manBits) - 1)

	if exp == (1<<l.expBits)-1 {
		if man != 0 {
			return float32(math.NaN())
		}
		// Infinity is never produced by Encode (values clamp), but decode
		// it for completeness.
		if sign == 1 {
			return float32(math.Inf(-1))
		}
		return float32(math.Inf(1))
	}
	if exp == 0 {
		// Denormals are flushed on encode; decode them as signed zero.
		if sign == 1 {
			return float32(math.Copysign(0, -1))
		}
		return 0
	}
	bias := (1 << (l.expBits - 1)) - 1
	val := math.Ldexp(1+float64(man)/math.Ldexp(1, int(l.manBits)), int(exp)-bias)
	if sign == 1 {
		val = -val
	}
	return float32(val)
}

// encodeRangeScalar is the original slot-at-a-time EncodeRange: a divide,
// a modulo and a full Encode per element.
func (p *Packed) encodeRangeScalar(src []float32, start, end int) {
	p.checkRange(start, end)
	vpw := p.Format.ValuesPerWord()
	bits := uint(p.Format.Bits())
	for i := start; i < end; i++ {
		w, slot := i/vpw, uint(i%vpw)
		p.Words[w] |= p.Format.encodeScalar(src[i]) << (slot * bits)
	}
}

// decodeRangeScalar is the original slot-at-a-time DecodeRange.
func (p *Packed) decodeRangeScalar(dst []float32, start, end int) {
	p.checkRange(start, end)
	vpw := p.Format.ValuesPerWord()
	bits := uint(p.Format.Bits())
	mask := uint32(1)<<bits - 1
	for i := start; i < end; i++ {
		w, slot := i/vpw, uint(i%vpw)
		dst[i] = p.Format.decodeScalar((p.Words[w] >> (slot * bits)) & mask)
	}
}

// quantizeSliceScalar is the original QuantizeSlice: a full scalar
// encode/decode round trip per element.
func quantizeSliceScalar(f Format, xs []float32) []float32 {
	if f == FP32 {
		return xs
	}
	for i, v := range xs {
		xs[i] = f.decodeScalar(f.encodeScalar(v))
	}
	return xs
}
