package floatenc

import (
	"math"
	"testing"
)

func FuzzQuantizeWellBehaved(f *testing.F) {
	f.Add(float32(0))
	f.Add(float32(1.5))
	f.Add(float32(-65504))
	f.Add(float32(1e-8))
	f.Add(float32(3e38))
	f.Fuzz(func(t *testing.T, v float32) {
		for _, fm := range []Format{FP16, FP10, FP8} {
			q := fm.Quantize(v)
			switch {
			case math.IsNaN(float64(v)):
				if !math.IsNaN(float64(q)) {
					t.Fatalf("%v: NaN must stay NaN, got %v", fm, q)
				}
			case math.IsInf(float64(v), 0):
				// Infinities clamp to the largest finite magnitude.
				if math.Abs(float64(q)) != fm.MaxValue() {
					t.Fatalf("%v: Inf should clamp, got %v", fm, q)
				}
			default:
				// Finite inputs stay finite, within the format's range,
				// and idempotent.
				if math.IsNaN(float64(q)) || math.IsInf(float64(q), 0) {
					t.Fatalf("%v: finite %v became %v", fm, v, q)
				}
				if math.Abs(float64(q)) > fm.MaxValue() {
					t.Fatalf("%v: %v exceeds max %v", fm, q, fm.MaxValue())
				}
				if fm.Quantize(q) != q {
					t.Fatalf("%v: not idempotent at %v", fm, v)
				}
				// Sign preservation (or flush to zero).
				if q != 0 && math.Signbit(float64(q)) != math.Signbit(float64(v)) {
					t.Fatalf("%v: sign flipped for %v -> %v", fm, v, q)
				}
			}
		}
	})
}

func FuzzPackedRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 4
		if n > 1024 {
			n = 1024
		}
		xs := make([]float32, n)
		for i := range xs {
			bits := uint32(data[i*4]) | uint32(data[i*4+1])<<8 |
				uint32(data[i*4+2])<<16 | uint32(data[i*4+3])<<24
			xs[i] = math.Float32frombits(bits)
		}
		for _, fm := range []Format{FP16, FP10, FP8} {
			p := EncodeSlice(fm, xs)
			got := p.DecodeSlice(nil)
			for i, v := range xs {
				want := fm.Quantize(v)
				same := got[i] == want || (got[i] != got[i] && want != want)
				if !same {
					t.Fatalf("%v[%d]: %v != quantize(%v)=%v", fm, i, got[i], v, want)
				}
			}
		}
	})
}
