package floatenc

import (
	"math"
	"testing"
)

func FuzzQuantizeWellBehaved(f *testing.F) {
	f.Add(float32(0))
	f.Add(float32(1.5))
	f.Add(float32(-65504))
	f.Add(float32(1e-8))
	f.Add(float32(3e38))
	f.Fuzz(func(t *testing.T, v float32) {
		for _, fm := range []Format{FP16, FP10, FP8} {
			q := fm.Quantize(v)
			switch {
			case math.IsNaN(float64(v)):
				if !math.IsNaN(float64(q)) {
					t.Fatalf("%v: NaN must stay NaN, got %v", fm, q)
				}
			case math.IsInf(float64(v), 0):
				// Infinities clamp to the largest finite magnitude.
				if math.Abs(float64(q)) != fm.MaxValue() {
					t.Fatalf("%v: Inf should clamp, got %v", fm, q)
				}
			default:
				// Finite inputs stay finite, within the format's range,
				// and idempotent.
				if math.IsNaN(float64(q)) || math.IsInf(float64(q), 0) {
					t.Fatalf("%v: finite %v became %v", fm, v, q)
				}
				if math.Abs(float64(q)) > fm.MaxValue() {
					t.Fatalf("%v: %v exceeds max %v", fm, q, fm.MaxValue())
				}
				if fm.Quantize(q) != q {
					t.Fatalf("%v: not idempotent at %v", fm, v)
				}
				// Sign preservation (or flush to zero).
				if q != 0 && math.Signbit(float64(q)) != math.Signbit(float64(v)) {
					t.Fatalf("%v: sign flipped for %v -> %v", fm, v, q)
				}
			}
		}
	})
}

// FuzzFormatRoundTrip drives every format with arbitrary float bit patterns
// — NaNs, infinities, subnormals and negative zero included — and checks
// the codec's algebraic contracts: the fast kernels match the scalar
// references bit for bit, and Encode∘Decode is a fixed point (a decoded
// value re-encodes to the same pattern, so quantization is idempotent).
func FuzzFormatRoundTrip(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0x80000000))       // -0
	f.Add(uint32(0x7fc00001))       // NaN with payload
	f.Add(uint32(0x7f800000))       // +Inf
	f.Add(uint32(0x00000001))       // smallest subnormal
	f.Add(uint32(0x3f800000))       // 1.0
	f.Add(math.Float32bits(6.1e-5)) // FP16 underflow boundary zone
	f.Add(math.Float32bits(65504))  // FP16 max finite
	f.Add(math.Float32bits(-240))   // FP8 max finite, negative
	f.Fuzz(func(t *testing.T, raw uint32) {
		v := math.Float32frombits(raw)
		for _, fm := range []Format{FP16, FP10, FP8} {
			enc := fm.Encode(v)
			if ref := fm.encodeScalar(v); enc != ref {
				t.Fatalf("%v.Encode(%#08x) = %#x, scalar %#x", fm, raw, enc, ref)
			}
			if enc&^(uint32(1)<<uint(fm.Bits())-1) != 0 {
				t.Fatalf("%v.Encode(%#08x) = %#x overflows %d bits", fm, raw, enc, fm.Bits())
			}
			dec := fm.Decode(enc)
			if refBits := math.Float32bits(fm.decodeScalar(enc)); math.Float32bits(dec) != refBits {
				t.Fatalf("%v.Decode(%#x) = %#08x, scalar %#08x",
					fm, enc, math.Float32bits(dec), refBits)
			}
			// Fixed point: re-encoding a decoded value reproduces the
			// pattern, except NaN (Encode canonicalizes every NaN to the
			// quiet pattern, and decoded NaNs lose the stored payload).
			re := fm.Encode(dec)
			if re != enc && !math.IsNaN(float64(dec)) {
				t.Fatalf("%v: enc %#x -> dec %#08x -> re-enc %#x, not a fixed point",
					fm, enc, math.Float32bits(dec), re)
			}
			// Quantize must equal the decode of the encode, bitwise.
			if q := fm.Quantize(v); math.Float32bits(q) != math.Float32bits(dec) {
				t.Fatalf("%v.Quantize(%#08x) = %#08x, want %#08x",
					fm, raw, math.Float32bits(q), math.Float32bits(dec))
			}
		}
	})
}

func FuzzPackedRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 4
		if n > 1024 {
			n = 1024
		}
		xs := make([]float32, n)
		for i := range xs {
			bits := uint32(data[i*4]) | uint32(data[i*4+1])<<8 |
				uint32(data[i*4+2])<<16 | uint32(data[i*4+3])<<24
			xs[i] = math.Float32frombits(bits)
		}
		for _, fm := range []Format{FP16, FP10, FP8} {
			p := EncodeSlice(fm, xs)
			got := p.DecodeSlice(nil)
			for i, v := range xs {
				want := fm.Quantize(v)
				same := got[i] == want || (got[i] != got[i] && want != want)
				if !same {
					t.Fatalf("%v[%d]: %v != quantize(%v)=%v", fm, i, got[i], v, want)
				}
			}
		}
	})
}
