package floatenc

import (
	"math/rand"
	"testing"
)

// Kernel benchmarks: the word-parallel pack/unpack/quantize kernels next to
// their retained scalar references, reporting B/s over the dense FP32 side.
// `make bench-gate` parses the word/scalar pairs and fails the build when
// the speedup ratio or absolute throughput drops below the thresholds in
// bench_gate.json.

const benchElems = 1 << 20

func benchInput(seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]float32, benchElems)
	for i := range xs {
		if r.Intn(2) == 0 { // ReLU-style sparsity: half the elements are zero
			xs[i] = float32(r.NormFloat64())
		}
	}
	return xs
}

func benchFormats() []Format { return []Format{FP16, FP10, FP8} }

func BenchmarkKernelPackEncode(b *testing.B) {
	xs := benchInput(1)
	for _, f := range benchFormats() {
		p := NewPacked(f, benchElems)
		run := func(b *testing.B, enc func(src []float32, lo, hi int)) {
			b.SetBytes(benchElems * 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Reset(f, benchElems)
				enc(xs, 0, benchElems)
			}
		}
		b.Run(f.String()+"/word", func(b *testing.B) { run(b, p.EncodeRange) })
		b.Run(f.String()+"/scalar", func(b *testing.B) { run(b, p.encodeRangeScalar) })
	}
}

func BenchmarkKernelPackDecode(b *testing.B) {
	xs := benchInput(2)
	dst := make([]float32, benchElems)
	for _, f := range benchFormats() {
		p := EncodeSlice(f, xs)
		run := func(b *testing.B, dec func(dst []float32, lo, hi int)) {
			b.SetBytes(benchElems * 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec(dst, 0, benchElems)
			}
		}
		b.Run(f.String()+"/word", func(b *testing.B) { run(b, p.DecodeRange) })
		b.Run(f.String()+"/scalar", func(b *testing.B) { run(b, p.decodeRangeScalar) })
	}
}

func BenchmarkKernelQuantize(b *testing.B) {
	for _, f := range benchFormats() {
		run := func(b *testing.B, quant func(f Format, xs []float32) []float32) {
			xs := benchInput(3)
			b.SetBytes(benchElems * 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				quant(f, xs) // idempotent after the first pass
			}
		}
		b.Run(f.String()+"/word", func(b *testing.B) { run(b, QuantizeSlice) })
		b.Run(f.String()+"/scalar", func(b *testing.B) { run(b, quantizeSliceScalar) })
	}
}
