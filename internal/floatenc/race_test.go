package floatenc

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestRaceSharedPackedDisjointRanges is the kernel-level race check of the
// parallel-chunk contract: goroutines encoding (then decoding) disjoint
// word-aligned ranges of one shared Packed must never touch a common
// storage word. Run under -race via `make race-hot`; the result must also
// equal the serial scalar encode word for word.
func TestRaceSharedPackedDisjointRanges(t *testing.T) {
	for _, f := range []Format{FP16, FP10, FP8} {
		vpw := f.ValuesPerWord()
		n := 768*4 + vpw*16 + 1 // ragged tail rides with the last range
		r := rand.New(rand.NewSource(int64(11 + f)))
		xs := make([]float32, n)
		for i := range xs {
			xs[i] = float32(r.NormFloat64())
		}
		bounds := []int{0, 768, 1536, 2304, n} // 768 is a multiple of every vpw

		for iter := 0; iter < 25; iter++ {
			p := NewPacked(f, n)
			var wg sync.WaitGroup
			for c := 0; c+1 < len(bounds); c++ {
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					p.EncodeRange(xs, lo, hi)
				}(bounds[c], bounds[c+1])
			}
			wg.Wait()

			dst := make([]float32, n)
			wg = sync.WaitGroup{}
			for c := 0; c+1 < len(bounds); c++ {
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					p.DecodeRange(dst, lo, hi)
				}(bounds[c], bounds[c+1])
			}
			wg.Wait()

			want := NewPacked(f, n)
			want.encodeRangeScalar(xs, 0, n)
			for w := range want.Words {
				if p.Words[w] != want.Words[w] {
					t.Fatalf("%v iter %d: word %d = %#08x, want %#08x",
						f, iter, w, p.Words[w], want.Words[w])
				}
			}
			for i := range dst {
				if got, ref := math.Float32bits(dst[i]), math.Float32bits(f.decodeScalar(want.Words[i/vpw]>>(uint(i%vpw)*uint(f.Bits()))&(uint32(1)<<uint(f.Bits())-1))); got != ref {
					t.Fatalf("%v iter %d: dst[%d] = %#08x, want %#08x", f, iter, i, got, ref)
				}
			}
		}
	}
}
