package floatenc

// Packed is a reduced-precision encoding of a float32 slice, stored as
// 32-bit words with the format's value packing (2, 3 or 4 values per word).
// This mirrors the DPR encoded data structure that Gist stashes between a
// feature map's forward and backward uses.
type Packed struct {
	Format Format
	N      int
	Words  []uint32
}

// EncodeSlice packs src into a reduced-precision buffer.
func EncodeSlice(f Format, src []float32) *Packed {
	vpw := f.ValuesPerWord()
	words := make([]uint32, (len(src)+vpw-1)/vpw)
	bits := uint(f.Bits())
	if f == FP10 {
		bits = 10
	}
	for i, v := range src {
		w, slot := i/vpw, uint(i%vpw)
		words[w] |= f.Encode(v) << (slot * bits)
	}
	return &Packed{Format: f, N: len(src), Words: words}
}

// DecodeSlice unpacks the buffer back to float32 values. dst must have
// length p.N; if nil, a new slice is allocated.
func (p *Packed) DecodeSlice(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, p.N)
	}
	if len(dst) != p.N {
		panic("floatenc: DecodeSlice length mismatch")
	}
	vpw := p.Format.ValuesPerWord()
	bits := uint(p.Format.Bits())
	if p.Format == FP10 {
		bits = 10
	}
	mask := uint32(1)<<bits - 1
	for i := range dst {
		w, slot := i/vpw, uint(i%vpw)
		dst[i] = p.Format.Decode((p.Words[w] >> (slot * bits)) & mask)
	}
	return dst
}

// Bytes returns the packed storage size in bytes.
func (p *Packed) Bytes() int64 {
	return int64(len(p.Words)) * 4
}

// QuantizeSlice rounds every element of xs through the format in place and
// returns xs. This is the numerical effect of a DPR encode/decode round trip
// without materializing the packed representation, used by the training
// executor.
func QuantizeSlice(f Format, xs []float32) []float32 {
	if f == FP32 {
		return xs
	}
	for i, v := range xs {
		xs[i] = f.Quantize(v)
	}
	return xs
}
