package floatenc

import (
	"fmt"

	"gist/internal/parallel"
)

// Packed is a reduced-precision encoding of a float32 slice, stored as
// 32-bit words with the format's value packing (2, 3 or 4 values per word).
// This mirrors the DPR encoded data structure that Gist stashes between a
// feature map's forward and backward uses.
type Packed struct {
	Format Format
	N      int
	Words  []uint32
}

// NewPacked allocates a zeroed packed container for n values, ready for
// EncodeRange chunks to fill.
func NewPacked(f Format, n int) *Packed {
	vpw := f.ValuesPerWord()
	return &Packed{Format: f, N: n, Words: make([]uint32, (n+vpw-1)/vpw)}
}

// Reset reconfigures the container for n values of format f, zeroing the
// words EncodeRange will |= into and reusing the backing array when its
// capacity allows. It restores exactly the state NewPacked returns.
func (p *Packed) Reset(f Format, n int) {
	vpw := f.ValuesPerWord()
	nw := (n + vpw - 1) / vpw
	if cap(p.Words) < nw {
		p.Words = make([]uint32, nw)
	} else {
		p.Words = p.Words[:nw]
		clear(p.Words)
	}
	p.Format = f
	p.N = n
}

// EncodeSlice packs src into a reduced-precision buffer.
func EncodeSlice(f Format, src []float32) *Packed {
	p := NewPacked(f, len(src))
	p.EncodeRange(src, 0, len(src))
	return p
}

// EncodeRange is the chunk-range DPR pack kernel: it encodes src[start:end)
// into the matching words of p. The words touched must be zero beforehand
// (as NewPacked leaves them), and for parallel chunks start must be a
// multiple of ValuesPerWord() — and end too, unless end == N — so each
// chunk owns whole words and racing writers never share one.
func (p *Packed) EncodeRange(src []float32, start, end int) {
	p.checkRange(start, end)
	vpw := p.Format.ValuesPerWord()
	bits := uint(p.Format.Bits())
	for i := start; i < end; i++ {
		w, slot := i/vpw, uint(i%vpw)
		p.Words[w] |= p.Format.Encode(src[i]) << (slot * bits)
	}
}

// DecodeSlice unpacks the buffer back to float32 values. dst must have
// length p.N; if nil, a new slice is allocated.
func (p *Packed) DecodeSlice(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, p.N)
	}
	if len(dst) != p.N {
		panic("floatenc: DecodeSlice length mismatch")
	}
	p.DecodeRange(dst, 0, p.N)
	return dst
}

// DecodeRange is the chunk-range DPR unpack kernel: dst[start:end) receives
// the decoded values. Each element is written independently, so chunks may
// cover any partition of [0, N).
func (p *Packed) DecodeRange(dst []float32, start, end int) {
	p.checkRange(start, end)
	vpw := p.Format.ValuesPerWord()
	bits := uint(p.Format.Bits())
	mask := uint32(1)<<bits - 1
	for i := start; i < end; i++ {
		w, slot := i/vpw, uint(i%vpw)
		dst[i] = p.Format.Decode((p.Words[w] >> (slot * bits)) & mask)
	}
}

func (p *Packed) checkRange(start, end int) {
	if start < 0 || end < start || end > p.N {
		panic(fmt.Sprintf("floatenc: range [%d,%d) outside [0,%d)", start, end, p.N))
	}
}

// Bytes returns the packed storage size in bytes.
func (p *Packed) Bytes() int64 {
	return int64(len(p.Words)) * 4
}

// QuantizeSlice rounds every element of xs through the format in place and
// returns xs. This is the numerical effect of a DPR encode/decode round trip
// without materializing the packed representation, used by the training
// executor.
func QuantizeSlice(f Format, xs []float32) []float32 {
	if f == FP32 {
		return xs
	}
	for i, v := range xs {
		xs[i] = f.Quantize(v)
	}
	return xs
}

// QuantizeSliceChunked rounds xs through the format in place, splitting the
// slice into chunkElems-sized chunks run on the pool. Quantization is
// elementwise, so any chunking yields output identical to QuantizeSlice.
func QuantizeSliceChunked(f Format, xs []float32, p *parallel.Pool, chunkElems int) []float32 {
	if f == FP32 {
		return xs
	}
	if chunkElems <= 0 || p.Workers() <= 1 || len(xs) <= chunkElems {
		return QuantizeSlice(f, xs)
	}
	nc := (len(xs) + chunkElems - 1) / chunkElems
	p.ForEach(nc, func(c int) {
		lo := c * chunkElems
		hi := min(lo+chunkElems, len(xs))
		QuantizeSlice(f, xs[lo:hi])
	})
	return xs
}
