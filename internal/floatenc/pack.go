package floatenc

import (
	"fmt"
	"math"

	"gist/internal/parallel"
)

// Packed is a reduced-precision encoding of a float32 slice, stored as
// 32-bit words with the format's value packing (2, 3 or 4 values per word).
// This mirrors the DPR encoded data structure that Gist stashes between a
// feature map's forward and backward uses.
type Packed struct {
	Format Format
	N      int
	Words  []uint32
}

// NewPacked allocates a zeroed packed container for n values, ready for
// EncodeRange chunks to fill.
func NewPacked(f Format, n int) *Packed {
	vpw := f.ValuesPerWord()
	return &Packed{Format: f, N: n, Words: make([]uint32, (n+vpw-1)/vpw)}
}

// Reset reconfigures the container for n values of format f, zeroing the
// words EncodeRange will |= into and reusing the backing array when its
// capacity allows. It restores exactly the state NewPacked returns.
func (p *Packed) Reset(f Format, n int) {
	vpw := f.ValuesPerWord()
	nw := (n + vpw - 1) / vpw
	if cap(p.Words) < nw {
		p.Words = make([]uint32, nw)
	} else {
		p.Words = p.Words[:nw]
		clear(p.Words)
	}
	p.Format = f
	p.N = n
}

// EncodeSlice packs src into a reduced-precision buffer.
func EncodeSlice(f Format, src []float32) *Packed {
	p := NewPacked(f, len(src))
	p.EncodeRange(src, 0, len(src))
	return p
}

// EncodeRange is the chunk-range DPR pack kernel: it encodes src[start:end)
// into the matching words of p. The words touched must be zero beforehand
// (as NewPacked leaves them), and for parallel chunks start must be a
// multiple of ValuesPerWord() — and end too, unless end == N — so each
// chunk owns whole words and racing writers never share one.
//
// Word-parallel: after a ragged head aligns to a word boundary, the
// interior encodes a full storage word per iteration — 2, 3 or 4 values
// through the branch-free encodeFast kernel ORed together with constant
// shifts, one memory write and no per-element divide/modulo. Output is
// bit-identical to encodeRangeScalar; it allocates nothing.
func (p *Packed) EncodeRange(src []float32, start, end int) {
	p.checkRange(start, end)
	if p.Format == FP32 {
		for i := start; i < end; i++ {
			p.Words[i] |= math.Float32bits(src[i])
		}
		return
	}
	t := &fmtTab[p.Format]
	vpw := p.Format.ValuesPerWord()
	nbits := uint(p.Format.Bits())
	i := start
	for ; i < end && i%vpw != 0; i++ {
		p.Words[i/vpw] |= encodeFast(t, p.Format, src[i]) << (uint(i%vpw) * nbits)
	}
	// Interior: one storage word per iteration, every slot through the
	// inlined branch-free encStep; the single branch per word is the rare
	// "some slot needs the scalar slow path" escape.
	switch p.Format {
	case FP16:
		for ; i+2 <= end; i += 2 {
			s := src[i : i+2 : i+2]
			e0, k0 := encStep(t, math.Float32bits(s[0]))
			e1, k1 := encStep(t, math.Float32bits(s[1]))
			if k0&k1 == 0 {
				p.Words[i>>1] |= encodeFast(t, FP16, s[0]) |
					encodeFast(t, FP16, s[1])<<16
				continue
			}
			p.Words[i>>1] |= e0 | e1<<16
		}
	case FP10:
		for ; i+3 <= end; i += 3 {
			s := src[i : i+3 : i+3]
			e0, k0 := encStep(t, math.Float32bits(s[0]))
			e1, k1 := encStep(t, math.Float32bits(s[1]))
			e2, k2 := encStep(t, math.Float32bits(s[2]))
			if k0&k1&k2 == 0 {
				p.Words[i/3] |= encodeFast(t, FP10, s[0]) |
					encodeFast(t, FP10, s[1])<<10 |
					encodeFast(t, FP10, s[2])<<20
				continue
			}
			p.Words[i/3] |= e0 | e1<<10 | e2<<20
		}
	case FP8:
		for ; i+4 <= end; i += 4 {
			s := src[i : i+4 : i+4]
			e0, k0 := encStep(t, math.Float32bits(s[0]))
			e1, k1 := encStep(t, math.Float32bits(s[1]))
			e2, k2 := encStep(t, math.Float32bits(s[2]))
			e3, k3 := encStep(t, math.Float32bits(s[3]))
			if k0&k1&k2&k3 == 0 {
				p.Words[i>>2] |= encodeFast(t, FP8, s[0]) |
					encodeFast(t, FP8, s[1])<<8 |
					encodeFast(t, FP8, s[2])<<16 |
					encodeFast(t, FP8, s[3])<<24
				continue
			}
			p.Words[i>>2] |= e0 | e1<<8 | e2<<16 | e3<<24
		}
	}
	for ; i < end; i++ {
		p.Words[i/vpw] |= encodeFast(t, p.Format, src[i]) << (uint(i%vpw) * nbits)
	}
}

// DecodeSlice unpacks the buffer back to float32 values. dst must have
// length p.N; if nil, a new slice is allocated.
func (p *Packed) DecodeSlice(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, p.N)
	}
	if len(dst) != p.N {
		panic("floatenc: DecodeSlice length mismatch")
	}
	p.DecodeRange(dst, 0, p.N)
	return dst
}

// DecodeRange is the chunk-range DPR unpack kernel: dst[start:end) receives
// the decoded values. Each element is written independently, so chunks may
// cover any partition of [0, N).
//
// Word-parallel: the aligned interior loads each storage word once and
// splits it into slots with constant shifts — table lookups for FP8/FP10,
// the arithmetic re-bias kernel for FP16. Output is bit-identical to
// decodeRangeScalar; it allocates nothing.
func (p *Packed) DecodeRange(dst []float32, start, end int) {
	p.checkRange(start, end)
	if p.Format == FP32 {
		for i := start; i < end; i++ {
			dst[i] = math.Float32frombits(p.Words[i])
		}
		return
	}
	vpw := p.Format.ValuesPerWord()
	nbits := uint(p.Format.Bits())
	mask := uint32(1)<<nbits - 1
	i := start
	for ; i < end && i%vpw != 0; i++ {
		dst[i] = p.Format.Decode(p.Words[i/vpw] >> (uint(i%vpw) * nbits) & mask)
	}
	switch p.Format {
	case FP16:
		t := &fmtTab[FP16]
		for ; i+2 <= end; i += 2 {
			w := p.Words[i>>1]
			f0, k0 := dec16Step(t, w&0xffff)
			f1, k1 := dec16Step(t, w>>16)
			if k0&k1 == 0 {
				dst[i] = decode16(w & 0xffff)
				dst[i+1] = decode16(w >> 16)
				continue
			}
			dst[i] = math.Float32frombits(f0)
			dst[i+1] = math.Float32frombits(f1)
		}
	case FP10:
		for ; i+3 <= end; i += 3 {
			w := p.Words[i/3]
			dst[i] = fp10LUT[w&0x3ff]
			dst[i+1] = fp10LUT[w>>10&0x3ff]
			dst[i+2] = fp10LUT[w>>20&0x3ff]
		}
	case FP8:
		for ; i+4 <= end; i += 4 {
			w := p.Words[i>>2]
			dst[i] = fp8LUT[w&0xff]
			dst[i+1] = fp8LUT[w>>8&0xff]
			dst[i+2] = fp8LUT[w>>16&0xff]
			dst[i+3] = fp8LUT[w>>24]
		}
	}
	for ; i < end; i++ {
		dst[i] = p.Format.Decode(p.Words[i/vpw] >> (uint(i%vpw) * nbits) & mask)
	}
}

func (p *Packed) checkRange(start, end int) {
	if start < 0 || end < start || end > p.N {
		panic(fmt.Sprintf("floatenc: range [%d,%d) outside [0,%d)", start, end, p.N))
	}
}

// Bytes returns the packed storage size in bytes.
func (p *Packed) Bytes() int64 {
	return int64(len(p.Words)) * 4
}

// QuantizeSlice rounds every element of xs through the format in place and
// returns xs. This is the numerical effect of a DPR encode/decode round trip
// without materializing the packed representation, used by the training
// executor. The per-format loops feed the fast encode kernel straight into
// the fast decode (LUT or re-bias) with no interface dispatch per element;
// output is bit-identical to quantizeSliceScalar.
func QuantizeSlice(f Format, xs []float32) []float32 {
	switch f {
	case FP32:
		return xs
	case FP16:
		t := &fmtTab[FP16]
		for i, v := range xs {
			enc, ok := encStep(t, math.Float32bits(v))
			if ok == 0 {
				enc = FP16.encodeScalar(v)
			}
			fp, ok := dec16Step(t, enc)
			if ok == 0 {
				xs[i] = FP16.decodeScalar(enc)
				continue
			}
			xs[i] = math.Float32frombits(fp)
		}
	case FP10:
		t := &fmtTab[FP10]
		for i, v := range xs {
			enc, ok := encStep(t, math.Float32bits(v))
			if ok == 0 {
				enc = FP10.encodeScalar(v)
			}
			xs[i] = fp10LUT[enc]
		}
	case FP8:
		t := &fmtTab[FP8]
		for i, v := range xs {
			enc, ok := encStep(t, math.Float32bits(v))
			if ok == 0 {
				enc = FP8.encodeScalar(v)
			}
			xs[i] = fp8LUT[enc]
		}
	default:
		for i, v := range xs {
			xs[i] = f.Quantize(v)
		}
	}
	return xs
}

// QuantizeSliceChunked rounds xs through the format in place, splitting the
// slice into chunkElems-sized chunks run on the pool. Quantization is
// elementwise, so any chunking yields output identical to QuantizeSlice.
func QuantizeSliceChunked(f Format, xs []float32, p *parallel.Pool, chunkElems int) []float32 {
	if f == FP32 {
		return xs
	}
	if chunkElems <= 0 || p.Workers() <= 1 || len(xs) <= chunkElems {
		return QuantizeSlice(f, xs)
	}
	nc := (len(xs) + chunkElems - 1) / chunkElems
	p.ForEach(nc, func(c int) {
		lo := c * chunkElems
		hi := min(lo+chunkElems, len(xs))
		QuantizeSlice(f, xs[lo:hi])
	})
	return xs
}
