package floatenc

import (
	"math"
	"testing"
)

// Golden byte-level regression fixtures for the packed encoders. The
// frozen words pin the exact bit layout of the FP16/FP10/FP8 containers —
// value order within a word, rounding, clamp-to-max-finite, and
// flush-to-zero — so any change to the packing or the float codecs that
// alters bits on disk (and therefore every stash checksum and marshaled
// blob) fails here first, explicitly. Regenerate with
// `go run ./internal/goldengen` only for an intentional format break.
//
// The input vector covers: +0/-0, +-1, exact powers of two, a repeating
// fraction (rounds differently per mantissa width), FP16's max finite
// value, overflow clamp (1e8), a value denormal in FP16 but normal in
// FP10's wider exponent, and magnitudes that flush to zero everywhere.
var goldenInputBits = []uint32{
	0x00000000, 0x80000000, 0x3f800000, 0xbf800000,
	0x3f000000, 0xbe800000, 0x3f2aaaab, 0xc0490fd0,
	0x477fe000, 0xc77fe000, 0x4cbebc20, 0xccbebc20,
	0x387fda40, 0xb87fda40, 0x322bcc77, 0x33800000,
}

var goldenPacked = map[Format]struct {
	words   []uint32
	decoded []uint32
}{
	FP16: {
		words: []uint32{
			0x80000000, 0xbc003c00, 0xb4003800, 0xc2483955,
			0xfbff7bff, 0xfbff7bff, 0x80000000, 0x00000000,
		},
		decoded: []uint32{
			0x00000000, 0x80000000, 0x3f800000, 0xbf800000,
			0x3f000000, 0xbe800000, 0x3f2aa000, 0xc0490000,
			0x477fe000, 0xc77fe000, 0x477fe000, 0xc77fe000,
			0x00000000, 0x80000000, 0x00000000, 0x00000000,
		},
	},
	FP10: {
		words: []uint32{
			0x0f080000, 0x2d0382f0, 0x1efc24e5,
			0x3ef7bfef, 0x00084010, 0x00000000,
		},
		decoded: []uint32{
			0x00000000, 0x80000000, 0x3f800000, 0xbf800000,
			0x3f000000, 0xbe800000, 0x3f280000, 0xc0480000,
			0x47780000, 0xc7780000, 0x47780000, 0xc7780000,
			0x38800000, 0xb8800000, 0x00000000, 0x00000000,
		},
	},
	FP8: {
		words: []uint32{
			0xb8388000, 0xc533a830, 0xf777f777, 0x00008000,
		},
		decoded: []uint32{
			0x00000000, 0x80000000, 0x3f800000, 0xbf800000,
			0x3f000000, 0xbe800000, 0x3f300000, 0xc0500000,
			0x43700000, 0xc3700000, 0x43700000, 0xc3700000,
			0x00000000, 0x80000000, 0x00000000, 0x00000000,
		},
	},
}

func TestGoldenPackedWords(t *testing.T) {
	in := make([]float32, len(goldenInputBits))
	for i, b := range goldenInputBits {
		in[i] = math.Float32frombits(b)
	}
	for f, want := range goldenPacked {
		p := EncodeSlice(f, in)
		if len(p.Words) != len(want.words) {
			t.Fatalf("%v: %d packed words, want %d", f, len(p.Words), len(want.words))
		}
		for i, w := range p.Words {
			if w != want.words[i] {
				t.Errorf("%v: word %d = %#08x, want %#08x (encoder bit layout changed)",
					f, i, w, want.words[i])
			}
		}
		dec := p.DecodeSlice(make([]float32, len(in)))
		for i, v := range dec {
			if math.Float32bits(v) != want.decoded[i] {
				t.Errorf("%v: decoded[%d] = %#08x (%g), want %#08x",
					f, i, math.Float32bits(v), v, want.decoded[i])
			}
		}
	}
}

// TestGoldenDecodeFromFrozenWords decodes the frozen containers directly —
// the on-disk-compatibility direction: words packed by any past build must
// keep decoding to the same floats.
func TestGoldenDecodeFromFrozenWords(t *testing.T) {
	for f, want := range goldenPacked {
		p := &Packed{Format: f, N: len(goldenInputBits), Words: want.words}
		dec := p.DecodeSlice(make([]float32, p.N))
		for i, v := range dec {
			if math.Float32bits(v) != want.decoded[i] {
				t.Errorf("%v: frozen words decoded[%d] = %#08x, want %#08x",
					f, i, math.Float32bits(v), want.decoded[i])
			}
		}
	}
}

// TestGoldenScalarRoundTrips pins a few scalar encodings whose bit
// patterns are easy to verify by hand against the layout documentation.
func TestGoldenScalarRoundTrips(t *testing.T) {
	cases := []struct {
		f    Format
		v    float32
		bits uint32
	}{
		{FP16, 1, 0x3c00},
		{FP16, -2, 0xc000},
		{FP16, 65504, 0x7bff},
		{FP10, 1, 0x0f0},
		{FP8, 1, 0x38},
		{FP8, -1, 0xb8},
	}
	for _, c := range cases {
		if got := c.f.Encode(c.v); got != c.bits {
			t.Errorf("%v.Encode(%g) = %#x, want %#x", c.f, c.v, got, c.bits)
		}
		if got := c.f.Decode(c.bits); got != c.f.Quantize(c.v) {
			t.Errorf("%v.Decode(%#x) = %g, want Quantize(%g) = %g",
				c.f, c.bits, got, c.v, c.f.Quantize(c.v))
		}
	}
}
