package floatenc

import (
	"math"
	"math/rand"
	"testing"
)

// Differential tests: the word-parallel codec kernels against the retained
// scalar references, bit for bit. Decode is exhausted over every possible
// bit pattern of every format; encode sweeps every FP32 exponent with
// boundary mantissas plus corner values and large randomized tensors; the
// range kernels run every size in 0..130 and the word/chunk boundary sizes
// with ragged starts.

var diffFormats = []Format{FP16, FP10, FP8}

// diffSizes covers the ragged-head/tail state space: every length 0..130
// (all alignments of the 2/3/4-values-per-word loops and the 64-bit mask
// words), plus the 768-element chunk boundaries and one large odd size.
func diffSizes() []int {
	sizes := make([]int, 0, 160)
	for n := 0; n <= 130; n++ {
		sizes = append(sizes, n)
	}
	sizes = append(sizes, 191, 192, 193, 255, 256, 257,
		767, 768, 769, 831, 832, 833, 1535, 1536, 1537, 100003)
	return sizes
}

// cornerFloats are the encode inputs where the scalar reference branches:
// signed zeros, denormals, values straddling each format's underflow and
// overflow boundaries, infinities and NaNs (including a payload NaN).
func cornerFloats() []float32 {
	vals := []float32{
		0, float32(math.Copysign(0, -1)),
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
		1e-38, -1e-38, // FP32 near-denormal
		math.MaxFloat32, -math.MaxFloat32,
		float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.NaN()),
		math.Float32frombits(0x7fc00001), // NaN with payload
		math.Float32frombits(0xffa00000), // signaling-style NaN, negative
		1, -1, 0.5, -0.5, 2, -2, 1.5, -1.5,
	}
	for _, f := range diffFormats {
		maxV := float32(f.MaxValue())
		minN := float32(f.MinNormal())
		vals = append(vals,
			maxV, -maxV,
			math.Float32frombits(math.Float32bits(maxV)+1),
			math.Float32frombits(math.Float32bits(maxV)-1),
			maxV*2, -maxV*2,
			minN, -minN, minN/2, -minN/2,
			math.Float32frombits(math.Float32bits(minN/2)+1),
			math.Float32frombits(math.Float32bits(minN/2)-1),
			minN*0.96875, // between MinNormal/2 and MinNormal: rounds up or flushes
			-minN*0.96875,
		)
	}
	return vals
}

// TestDiffDecodeExhaustive decodes every possible bit pattern of every
// format — including the out-of-range high bits Decode must mask off — with
// both kernels.
func TestDiffDecodeExhaustive(t *testing.T) {
	for _, f := range diffFormats {
		n := uint32(1) << uint(f.Bits())
		for bits := uint32(0); bits < n; bits++ {
			// Probe the raw pattern and one with garbage above Bits().
			for _, probe := range []uint32{bits, bits | n<<1} {
				got := math.Float32bits(f.Decode(probe))
				want := math.Float32bits(f.decodeScalar(probe))
				if got != want {
					t.Fatalf("%v.Decode(%#x) = %#08x, scalar %#08x", f, probe, got, want)
				}
			}
		}
	}
}

// TestDiffEncodeExponentSweep encodes, for every format, every FP32
// exponent (both signs) crossed with the mantissas that sit on rounding
// boundaries — all-zeros, all-ones, and the four patterns around the RNE
// midpoint of the dropped bits.
func TestDiffEncodeExponentSweep(t *testing.T) {
	for _, f := range diffFormats {
		shift := uint(23 - f.layout().manBits)
		half := uint32(1) << (shift - 1)
		mans := []uint32{
			0, 0x7fffff,
			half - 1, half, half + 1,
			1 << shift, 1<<shift - 1, // slot LSB boundary
			half | 1<<shift, // midpoint with odd kept mantissa
			0x7fffff & ^(uint32(1)<<shift - 1), // kept all-ones, dropped zero
		}
		for sign := uint32(0); sign <= 1; sign++ {
			for e := uint32(0); e <= 0xff; e++ {
				for _, man := range mans {
					v := math.Float32frombits(sign<<31 | e<<23 | man&0x7fffff)
					got, want := f.Encode(v), f.encodeScalar(v)
					if got != want {
						t.Fatalf("%v.Encode(%#08x) = %#x, scalar %#x",
							f, math.Float32bits(v), got, want)
					}
				}
			}
		}
	}
}

// TestDiffEncodeCorners runs the corner inputs and checks Quantize agrees
// with the scalar round trip on them too.
func TestDiffEncodeCorners(t *testing.T) {
	for _, f := range diffFormats {
		for _, v := range cornerFloats() {
			got, want := f.Encode(v), f.encodeScalar(v)
			if got != want {
				t.Fatalf("%v.Encode(%#08x) = %#x, scalar %#x",
					f, math.Float32bits(v), got, want)
			}
			qGot := math.Float32bits(f.Quantize(v))
			qWant := math.Float32bits(f.decodeScalar(want))
			if qGot != qWant {
				t.Fatalf("%v.Quantize(%#08x) = %#08x, scalar %#08x",
					f, math.Float32bits(v), qGot, qWant)
			}
		}
	}
}

// TestDiffEncodeRandom drives the encode kernel with a million random bit
// patterns per format — every float class appears, including NaNs and
// denormals.
func TestDiffEncodeRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, f := range diffFormats {
		for trial := 0; trial < 1_000_000; trial++ {
			v := math.Float32frombits(r.Uint32())
			got, want := f.Encode(v), f.encodeScalar(v)
			if got != want {
				t.Fatalf("%v.Encode(%#08x) = %#x, scalar %#x",
					f, math.Float32bits(v), got, want)
			}
		}
	}
}

// diffInput mixes normal values, zeros and corner floats deterministically.
func diffInput(n int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	corners := cornerFloats()
	xs := make([]float32, n)
	for i := range xs {
		switch r.Intn(4) {
		case 0:
			xs[i] = 0
		case 1:
			xs[i] = corners[r.Intn(len(corners))]
		default:
			xs[i] = float32(r.NormFloat64())
		}
	}
	return xs
}

// TestDiffEncodeRange checks the word-parallel range kernels against the
// scalar loops for every size and for ragged sub-ranges: word-identical
// packs and bit-identical decodes.
func TestDiffEncodeRange(t *testing.T) {
	for _, f := range append([]Format{FP32}, diffFormats...) {
		vpw := f.ValuesPerWord()
		for _, n := range diffSizes() {
			if n > 4096 && testing.Short() {
				continue
			}
			xs := diffInput(n, int64(n)+17)
			// Split at a word-aligned interior point like the chunked codec
			// does, and at a ragged point like a tail range does.
			splits := []int{0, (n / 2 / vpw) * vpw}
			if n > 3 {
				splits = append(splits, n/3) // possibly ragged
			}
			for _, split := range splits {
				// Word-aligned splits model parallel chunks; ragged splits
				// still compose serially because both ranges |= into the
				// shared boundary word.
				got := NewPacked(f, n)
				got.EncodeRange(xs, 0, split)
				got.EncodeRange(xs, split, n)
				want := NewPacked(f, n)
				want.encodeRangeScalar(xs, 0, n)
				for w := range want.Words {
					if got.Words[w] != want.Words[w] {
						t.Fatalf("%v n=%d split=%d: word %d = %#08x, scalar %#08x",
							f, n, split, w, got.Words[w], want.Words[w])
					}
				}

				dst := make([]float32, n)
				got.DecodeRange(dst, 0, split)
				got.DecodeRange(dst, split, n)
				ref := make([]float32, n)
				want.decodeRangeScalar(ref, 0, n)
				for i := range dst {
					if math.Float32bits(dst[i]) != math.Float32bits(ref[i]) {
						t.Fatalf("%v n=%d split=%d: decode[%d] = %#08x, scalar %#08x",
							f, n, split, i, math.Float32bits(dst[i]), math.Float32bits(ref[i]))
					}
				}
			}
		}
	}
}

// TestDiffQuantizeSlice checks the fused quantize loops against the scalar
// round trip.
func TestDiffQuantizeSlice(t *testing.T) {
	for _, f := range diffFormats {
		for _, n := range []int{0, 1, 7, 64, 130, 768, 100003} {
			xs := diffInput(n, int64(n)+99)
			ref := make([]float32, n)
			copy(ref, xs)
			QuantizeSlice(f, xs)
			quantizeSliceScalar(f, ref)
			for i := range xs {
				if math.Float32bits(xs[i]) != math.Float32bits(ref[i]) {
					t.Fatalf("%v n=%d: quantize[%d] = %#08x, scalar %#08x",
						f, n, i, math.Float32bits(xs[i]), math.Float32bits(ref[i]))
				}
			}
		}
	}
}

// TestEncodeRangeZeroAllocs pins the alloc-freedom of the hot range
// kernels: with the layout constants hoisted into fmtTab, EncodeRange,
// DecodeRange and QuantizeSlice must not allocate at all.
func TestEncodeRangeZeroAllocs(t *testing.T) {
	const n = 4099 // ragged tail included
	xs := diffInput(n, 5)
	dst := make([]float32, n)
	for _, f := range diffFormats {
		p := NewPacked(f, n)
		if a := testing.AllocsPerRun(10, func() {
			p.Reset(f, n)
			p.EncodeRange(xs, 0, n)
		}); a != 0 {
			t.Errorf("%v EncodeRange allocs %v per run, want 0", f, a)
		}
		if a := testing.AllocsPerRun(10, func() {
			p.DecodeRange(dst, 0, n)
		}); a != 0 {
			t.Errorf("%v DecodeRange allocs %v per run, want 0", f, a)
		}
		if a := testing.AllocsPerRun(10, func() {
			QuantizeSlice(f, dst)
		}); a != 0 {
			t.Errorf("%v QuantizeSlice allocs %v per run, want 0", f, a)
		}
	}
}
