// Package floatenc implements the reduced-precision floating-point formats
// used by Gist's Delayed Precision Reduction (DPR) encoding: FP16 (IEEE half
// precision, 1 sign / 5 exponent / 10 mantissa bits), FP10 (1/5/4) and FP8
// (1/4/3). Conversion from FP32 uses round-to-nearest and clamps values that
// exceed the target format's range at the format's largest finite magnitude.
// Denormalized numbers are flushed to zero: the paper observes they have
// negligible effect on CNN accuracy, and ignoring them keeps the decoder a
// pure shift-and-mask.
//
// The package also implements the storage packing the paper describes: FP16
// packs 2 values per 32-bit word, FP10 packs 3 values per word (2 bits of
// the word unused), FP8 packs 4 values per word.
package floatenc

import (
	"fmt"
	"math"
)

// Format identifies a reduced-precision floating-point layout.
type Format int

const (
	// FP32 is the identity format (no reduction); present so callers can
	// express "keep full precision" uniformly.
	FP32 Format = iota
	// FP16 is IEEE 754 half precision: 1 sign, 5 exponent, 10 mantissa bits.
	FP16
	// FP10 has 1 sign, 5 exponent and 4 mantissa bits; three values pack
	// into a 4-byte word with 2 bits unused.
	FP10
	// FP8 has 1 sign, 4 exponent and 3 mantissa bits.
	FP8
)

// String returns the conventional name of the format.
func (f Format) String() string {
	switch f {
	case FP32:
		return "FP32"
	case FP16:
		return "FP16"
	case FP10:
		return "FP10"
	case FP8:
		return "FP8"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// Bits returns the number of bits a single value occupies in the format.
func (f Format) Bits() int {
	switch f {
	case FP32:
		return 32
	case FP16:
		return 16
	case FP10:
		return 10
	case FP8:
		return 8
	}
	panic("floatenc: unknown format")
}

// ValuesPerWord returns how many encoded values are packed in one 32-bit
// storage word: 1 for FP32, 2 for FP16, 3 for FP10 and 4 for FP8.
func (f Format) ValuesPerWord() int {
	switch f {
	case FP32:
		return 1
	case FP16:
		return 2
	case FP10:
		return 3
	case FP8:
		return 4
	}
	panic("floatenc: unknown format")
}

// PackedBytes returns the number of bytes needed to store n values of the
// format using its word packing.
func (f Format) PackedBytes(n int) int64 {
	vpw := f.ValuesPerWord()
	words := (n + vpw - 1) / vpw
	return int64(words) * 4
}

// CompressionRatio returns the footprint ratio of FP32 storage to packed
// storage for a large tensor: 1x for FP32, 2x for FP16, 3x for FP10 and 4x
// for FP8 (packing granularity makes the ratio exactly the values-per-word).
func (f Format) CompressionRatio() float64 {
	return float64(f.ValuesPerWord())
}

// layout describes a sign/exponent/mantissa split.
type layout struct {
	expBits, manBits uint
}

func (f Format) layout() layout {
	switch f {
	case FP16:
		return layout{expBits: 5, manBits: 10}
	case FP10:
		return layout{expBits: 5, manBits: 4}
	case FP8:
		return layout{expBits: 4, manBits: 3}
	}
	panic("floatenc: layout of " + f.String())
}

// MaxValue returns the largest finite magnitude representable in the
// format. FP32 values beyond this magnitude clamp to it during encoding.
func (f Format) MaxValue() float64 {
	if f == FP32 {
		return math.MaxFloat32
	}
	l := f.layout()
	bias := (1 << (l.expBits - 1)) - 1
	maxExp := (1 << l.expBits) - 2 - bias // all-ones exponent is reserved
	mantissa := 2 - math.Ldexp(1, -int(l.manBits))
	return math.Ldexp(mantissa, maxExp)
}

// MinNormal returns the smallest positive normal magnitude of the format.
// Values smaller than this flush to zero (denormals are not encoded).
func (f Format) MinNormal() float64 {
	if f == FP32 {
		return math.SmallestNonzeroFloat32
	}
	l := f.layout()
	bias := (1 << (l.expBits - 1)) - 1
	return math.Ldexp(1, 1-bias)
}

// Encode converts an FP32 value to the format's bit pattern. The pattern
// occupies the low Bits() bits of the result. The hot path is the
// branch-free clamp-and-round kernel over the hoisted constant table
// (tables.go); bit-identical to encodeScalar, which it delegates to for the
// rare boundary inputs.
func (f Format) Encode(v float32) uint32 {
	switch f {
	case FP32:
		return math.Float32bits(v)
	case FP16, FP10, FP8:
		return encodeFast(&fmtTab[f], f, v)
	}
	return f.encodeScalar(v) // unknown formats panic in layout()
}

func (f Format) maxFiniteBits() uint32 {
	l := f.layout()
	return (((1 << l.expBits) - 2) << l.manBits) | ((1 << l.manBits) - 1)
}

// Decode converts a bit pattern produced by Encode back to FP32. FP8 and
// FP10 are one table load (tables built from the scalar reference at init);
// FP16 uses the arithmetic re-bias kernel. Bit-identical to decodeScalar
// for every pattern.
func (f Format) Decode(bits uint32) float32 {
	switch f {
	case FP32:
		return math.Float32frombits(bits)
	case FP16:
		return decode16(bits)
	case FP10:
		return fp10LUT[bits&0x3ff]
	case FP8:
		return fp8LUT[bits&0xff]
	}
	return f.decodeScalar(bits) // unknown formats panic in layout()
}

// Quantize rounds an FP32 value through the format: Decode(Encode(v)).
// For FP32 it is the identity.
func (f Format) Quantize(v float32) float32 {
	if f == FP32 {
		return v
	}
	return f.Decode(f.Encode(v))
}

// MaxRelativeError returns an upper bound on the relative rounding error for
// values within the format's normal range: 2^-(manBits+1).
func (f Format) MaxRelativeError() float64 {
	if f == FP32 {
		return 0
	}
	return math.Ldexp(1, -int(f.layout().manBits+1))
}
