package floatenc

import "math"

// Hoisted per-format constants. The original Encode recomputed layout(),
// MaxValue() and MinNormal() — two math.Ldexp calls and a handful of shifts
// — on every call; at 3-4 packed values per word that dominated the DPR
// encode kernel. fmtConsts precomputes everything the hot path needs once,
// at package init, so Encode/Decode and the word-parallel range kernels are
// pure integer ALU work on a cached table row.
type fmtConsts struct {
	manBits   uint32 // mantissa field width
	signShift uint32 // expBits + manBits: where the sign bit lands
	shift     uint32 // 23 - manBits: FP32→target mantissa shift
	half      uint32 // 1 << (shift-1): RNE midpoint of the dropped bits
	remMask   uint32 // 1<<shift - 1: the dropped mantissa bits
	manTop    uint32 // 1 << manBits: first value past the mantissa field
	maxFinite uint32 // largest finite encoding (sign 0)
	emMask    uint32 // exponent+mantissa field mask (all bits below sign)
	totalMask uint32 // whole-encoding mask, sign included
	minE      uint32 // FP32 biased exponent that maps to target exponent 1
	rangeE    uint32 // emax-1: width of the fast normal range minus one
	rebias    uint32 // (127 - bias) << manBits: decode exponent re-bias
}

// fmtTab is indexed by Format; the FP32 row is unused (FP32 is the identity
// and never consults the table).
var fmtTab [4]fmtConsts

// Decode lookup tables for the sub-byte formats: every possible FP8 and
// FP10 bit pattern decoded once by the scalar reference at init. 256 and
// 1024 float32 entries (5 KB total) — identical to decodeScalar by
// construction, and a word-parallel DecodeRange becomes four (or three)
// table loads per storage word.
var (
	fp8LUT  [256]float32
	fp10LUT [1024]float32
)

func init() {
	for _, f := range []Format{FP16, FP10, FP8} {
		l := f.layout()
		bias := uint32(1)<<(l.expBits-1) - 1
		t := &fmtTab[f]
		t.manBits = uint32(l.manBits)
		t.signShift = uint32(l.expBits + l.manBits)
		t.shift = uint32(23 - l.manBits)
		t.half = 1 << (t.shift - 1)
		t.remMask = 1<<t.shift - 1
		t.manTop = 1 << l.manBits
		t.maxFinite = f.maxFiniteBits()
		t.emMask = 1<<t.signShift - 1
		t.totalMask = 1<<(t.signShift+1) - 1
		t.minE = 128 - bias
		t.rangeE = uint32(1)<<l.expBits - 3 // emax - 1
		t.rebias = (127 - bias) << l.manBits
	}
	for i := range fp8LUT {
		fp8LUT[i] = FP8.decodeScalar(uint32(i))
	}
	for i := range fp10LUT {
		fp10LUT[i] = FP10.decodeScalar(uint32(i))
	}
}

// encStep is the branch-free clamp-and-round encode kernel: call-free and
// small so the compiler inlines it into the word-packing loops. It returns
// the encoded pattern (sign included) and ok=1 when that result is valid;
// ok=0 means the caller must take the scalar slow path.
//
// The range test d = e-minE <= rangeE (computed in 64 bits so the borrow
// bit is the answer) admits exactly the FP32 exponents whose target
// exponent lands in [1, emax]; for those the result is the re-biased
// exponent and truncated mantissa plus a branch-free round-to-nearest-even
// increment — rem+half-1+lsb overflows the dropped-bit field exactly when
// RNE rounds up, and a carry out of the mantissa walks into the exponent
// for free because the fields are adjacent. A rounding carry past emax
// saturates to maxFinite, matching the scalar clamp. Values far below the
// normal range (zeros, denormals, deep underflow — the common case for
// ReLU activations) take the flush predicate instead: the fast mask zeroes
// r, leaving the signed-zero encoding. Only the underflow boundary
// exponent minE-1, Inf/NaN and deep overflow report ok=0; on those the
// slow path IS the scalar reference, so agreement there is by
// construction. Output is bit-identical to encodeScalar for every input;
// the differential tests prove it.
func encStep(t *fmtConsts, b uint32) (enc, ok uint32) {
	e := b >> 23 & 0xff
	d := e - t.minE
	fast := uint32((uint64(d) - uint64(t.rangeE) - 1) >> 63)
	flush := uint32((uint64(e) - uint64(t.minE) + 1) >> 63)
	r := (d+1)<<t.manBits | (b&0x7fffff)>>t.shift
	r += (b&t.remMask + t.half - 1 + (r & 1)) >> t.shift
	// In the fast range a rounding carry overshoots maxFinite by at most 1,
	// so saturation is a borrow-bit subtract, not a compare.
	r -= uint32((uint64(t.maxFinite) - uint64(r)) >> 63)
	return b>>31<<t.signShift | r&(uint32(0)-fast), fast | flush
}

// encodeFast is the per-value encode built on encStep, used by
// Format.Encode and the ragged head/tail of EncodeRange.
func encodeFast(t *fmtConsts, f Format, v float32) uint32 {
	enc, ok := encStep(t, math.Float32bits(v))
	if ok == 0 {
		return f.encodeScalar(v)
	}
	return enc
}

// dec16Step is the arithmetic FP16 decode kernel, call-free and inlinable
// like encStep: fp is the FP32 bit pattern and ok=1 when it is valid. A
// normal encoding (target exponent in [1, emax]) re-biases the
// exponent+mantissa field and shifts it into FP32 position — no
// floating-point math at all; zero and denormal patterns zero the field
// through the normal-range mask, leaving signed zero exactly as the scalar
// reference decodes them. Only the all-ones exponent (Inf/NaN) reports
// ok=0. FP16 is the one format whose pattern space (2^16) is too large for
// a decode table.
func dec16Step(t *fmtConsts, bits uint32) (fp, ok uint32) {
	em := bits & t.emMask
	ok = uint32((uint64(em) - uint64(t.maxFinite) - 1) >> 63)
	normal := uint32(0) - uint32((uint64(t.manTop)-1-uint64(em))>>63)
	return bits>>t.signShift<<31 | (em+t.rebias)<<t.shift&normal, ok
}

// decode16 is the per-value FP16 decode built on dec16Step, used by
// Format.Decode and the ragged head/tail of DecodeRange.
func decode16(bits uint32) float32 {
	t := &fmtTab[FP16]
	bits &= t.totalMask
	fp, ok := dec16Step(t, bits)
	if ok == 0 {
		return FP16.decodeScalar(bits)
	}
	return math.Float32frombits(fp)
}
