package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsNoop(t *testing.T) {
	var s *Sink
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	g.SetMax(9)
	h.Observe(100)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if s.Counter("x") != nil || s.Gauge("x") != nil || s.Histogram("x") != nil {
		t.Fatal("nil sink must hand out nil instruments")
	}
	if s.Values() != nil {
		t.Fatal("nil sink Values must be nil")
	}
	s.RecordMemSample(MemSample{Step: 1})
	s.EnableTracing(0)
	if s.TracingEnabled() {
		t.Fatal("nil sink cannot enable tracing")
	}
	if err := s.WriteSnapshot(nil); err != nil {
		t.Fatalf("nil sink WriteSnapshot: %v", err)
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	s := New()
	c := s.Counter("c")
	g := s.Gauge("g")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.SetMax(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per-1 {
		t.Fatalf("gauge max %d, want %d", got, workers*per-1)
	}
	if s.Counter("c") != c {
		t.Fatal("lookup must return the same counter instance")
	}
}

func TestHistogram(t *testing.T) {
	s := New()
	h := s.Histogram("h")
	for _, v := range []int64{1, 2, 3, 100, 1000, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 1<<20 {
		t.Fatalf("max %d", h.Max())
	}
	if h.Sum() != 1+2+3+100+1000+1<<20 {
		t.Fatalf("sum %d", h.Sum())
	}
	// Power-of-two buckets promise the quantile within 2x; p50 of
	// {1,2,3,100,1000,2^20} lands in the bucket holding 3.
	if q := h.Quantile(0.5); q < 3 || q > 8 {
		t.Fatalf("p50 %d outside [3,8]", q)
	}
	if q := h.Quantile(1); q != 1<<20 {
		t.Fatalf("p100 %d, want max", q)
	}
	if h.Quantile(0) == 0 && h.Count() > 0 {
		// q=0 clamps to the first observation's bucket; just ensure no panic.
		t.Log("q0 in lowest bucket")
	}
}

func TestValuesAndSnapshot(t *testing.T) {
	s := New()
	s.Counter("a.calls").Add(7)
	s.Gauge("b.depth").Set(3)
	s.Histogram("c.ns").Observe(500)
	v := s.Values()
	if v["a.calls"] != 7 || v["b.depth"] != 3 {
		t.Fatalf("values: %v", v)
	}
	var sb strings.Builder
	if err := s.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"counter a.calls 7", "gauge b.depth 3", "hist c.ns count 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestMemTimelineAndRatios(t *testing.T) {
	s := New()
	for step := 1; step <= 3; step++ {
		s.RecordMemSample(MemSample{
			Step: step, RawBytes: 6400, HeldBytes: 1800,
			ByTech: []TechBytes{
				{Tech: "Binarize", RawBytes: 3200, HeldBytes: 100},
				{Tech: "DPR", RawBytes: 3200, HeldBytes: 1700},
			},
		})
	}
	samples, total := s.MemSamples()
	if total != 3 || len(samples) != 3 || samples[2].Step != 3 {
		t.Fatalf("timeline: %d samples of %d", len(samples), total)
	}
	if got := s.Gauge("mem.peak_held_bytes").Value(); got != 1800 {
		t.Fatalf("peak held %d", got)
	}
	var sb strings.Builder
	if err := s.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative over 3 samples: Binarize 9600/300 = 32x, DPR 2x roughly.
	for _, want := range []string{"ratio Binarize 32.00", "ratio DPR 1.88", "mem step 3 raw 6400 held 1800"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestMemTimelineRing(t *testing.T) {
	s := New()
	for step := 1; step <= memTimelineCap+10; step++ {
		s.RecordMemSample(MemSample{Step: step, RawBytes: 1, HeldBytes: 1})
	}
	samples, total := s.MemSamples()
	if total != memTimelineCap+10 {
		t.Fatalf("total %d", total)
	}
	if len(samples) != memTimelineCap {
		t.Fatalf("ring %d, want cap %d", len(samples), memTimelineCap)
	}
	if samples[len(samples)-1].Step != memTimelineCap+10 {
		t.Fatalf("newest %d", samples[len(samples)-1].Step)
	}
}

// BenchmarkTelemetryNoop is the zero-cost-default guard: the uninstrumented
// hot path pays only nil checks, so one iteration (a counter hit, a
// histogram observation and a span begin/end against nil instruments)
// should cost single-digit nanoseconds and zero allocations.
func BenchmarkTelemetryNoop(b *testing.B) {
	var s *Sink
	var c *Counter
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i))
		sp := s.Begin("cat", "name")
		sp.End()
	}
}

// BenchmarkTelemetryLive is the instrumented counterpart, for comparing the
// armed-instrument cost against the no-op path.
func BenchmarkTelemetryLive(b *testing.B) {
	s := New()
	c := s.Counter("bench.calls")
	h := s.Histogram("bench.ns")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i))
	}
}
