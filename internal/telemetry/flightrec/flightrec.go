// Package flightrec is a crash flight recorder: a fixed-size lock-free
// ring that taps a telemetry sink's span/instant/memory stream and keeps
// only the most recent events. It costs two atomic ops per event on the
// recording side and is safe to dump at any moment — including from a
// signal handler while training threads are still writing — which is the
// point: when a job fails, stalls into quarantine, or misses its deadline,
// the last seconds of its telemetry are serialized to JSON next to the
// admission-ledger state and the final recovery report, so the postmortem
// does not depend on having had tracing enabled.
//
// The ring is a power-of-two slice of atomic pointers plus one atomic
// sequence counter. Writers claim a slot with seq.Add and Store a fully
// built immutable Event; readers Load whatever is present. A reader racing
// a lapping writer can observe a slot's newer event alongside older
// neighbours — Events sorts by sequence number and tolerates gaps, so the
// dump is always a consistent "most recent N-ish events" view rather than
// a torn one.
package flightrec

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"

	"gist/internal/telemetry"
)

// DefaultEvents is the ring capacity used when none is given: enough for
// several training steps' worth of spans without holding more than a few
// hundred KB per job.
const DefaultEvents = 512

// Event is one recorded occurrence. Kind is "span", "instant" or "mem";
// Dur is set only for spans, Mem only for memory samples.
type Event struct {
	Seq  uint64               `json:"seq"`
	Kind string               `json:"kind"`
	TS   int64                `json:"ts_ns"`
	Dur  int64                `json:"dur_ns,omitempty"`
	Cat  string               `json:"cat,omitempty"`
	Name string               `json:"name,omitempty"`
	Mem  *telemetry.MemSample `json:"mem,omitempty"`
}

// Recorder is the ring. It implements telemetry.Observer; attach it with
// Sink.SetObserver. The zero value is not usable — call New.
type Recorder struct {
	ring []atomic.Pointer[Event]
	mask uint64
	seq  atomic.Uint64
}

// New returns a recorder holding the most recent capEvents events
// (rounded up to a power of two; <=0 selects DefaultEvents).
func New(capEvents int) *Recorder {
	if capEvents <= 0 {
		capEvents = DefaultEvents
	}
	n := 1
	for n < capEvents {
		n <<= 1
	}
	return &Recorder{ring: make([]atomic.Pointer[Event], n), mask: uint64(n - 1)}
}

// record claims the next slot and publishes ev.
func (r *Recorder) record(ev *Event) {
	seq := r.seq.Add(1) - 1
	ev.Seq = seq
	r.ring[seq&r.mask].Store(ev)
}

// ObserveSpan implements telemetry.Observer.
func (r *Recorder) ObserveSpan(cat, name string, startNS, durNS int64) {
	r.record(&Event{Kind: "span", TS: startNS, Dur: durNS, Cat: cat, Name: name})
}

// ObserveInstant implements telemetry.Observer.
func (r *Recorder) ObserveInstant(cat, name string, tsNS int64) {
	r.record(&Event{Kind: "instant", TS: tsNS, Cat: cat, Name: name})
}

// ObserveMem implements telemetry.Observer.
func (r *Recorder) ObserveMem(sm telemetry.MemSample, tsNS int64) {
	r.record(&Event{Kind: "mem", TS: tsNS, Mem: &sm})
}

// Total returns how many events have ever been recorded (recorded, not
// retained: the ring keeps at most cap of them).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Events snapshots the retained events in sequence order. Concurrent
// writers may lap the read; the result is still internally consistent
// (sorted, no duplicates), just possibly missing a few of the oldest.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.ring))
	for i := range r.ring {
		if ev := r.ring[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump is the serialized flight record.
type Dump struct {
	Reason      string  `json:"reason"`
	EventsTotal uint64  `json:"events_total"`
	Meta        any     `json:"meta,omitempty"`
	Events      []Event `json:"events"`
}

// WriteJSON serializes the current ring contents with a reason string and
// arbitrary metadata (job status, ledger state, recovery report).
func (r *Recorder) WriteJSON(w io.Writer, reason string, meta any) error {
	d := Dump{
		Reason:      reason,
		EventsTotal: r.Total(),
		Meta:        meta,
		Events:      r.Events(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}
