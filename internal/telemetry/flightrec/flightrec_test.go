package flightrec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"gist/internal/telemetry"
)

func TestRingKeepsNewest(t *testing.T) {
	r := New(8)
	for i := 0; i < 20; i++ {
		r.ObserveInstant("t", fmt.Sprintf("e%d", i), int64(i))
	}
	if r.Total() != 20 {
		t.Fatalf("total = %d, want 20", r.Total())
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d, want ring cap 8", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(12 + i)
		if ev.Seq != wantSeq || ev.Name != fmt.Sprintf("e%d", wantSeq) {
			t.Fatalf("event %d = seq %d name %q, want seq %d", i, ev.Seq, ev.Name, wantSeq)
		}
	}
}

func TestCapacityRounding(t *testing.T) {
	if n := len(New(0).ring); n != DefaultEvents {
		t.Errorf("cap 0 → %d, want %d", n, DefaultEvents)
	}
	if n := len(New(5).ring); n != 8 {
		t.Errorf("cap 5 → %d, want 8", n)
	}
	if n := len(New(8).ring); n != 8 {
		t.Errorf("cap 8 → %d, want 8", n)
	}
}

func TestObserverWiring(t *testing.T) {
	s := telemetry.New()
	r := New(64)
	s.SetObserver(r)

	sp := s.Begin("train", "step")
	sp.End()
	s.Instant("faults", "bit-flip")
	s.RecordMemSample(telemetry.MemSample{Step: 3, RawBytes: 100, HeldBytes: 25})

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("recorded %d events, want 3: %+v", len(evs), evs)
	}
	if evs[0].Kind != "span" || evs[0].Cat != "train" || evs[0].Name != "step" {
		t.Errorf("span event wrong: %+v", evs[0])
	}
	if evs[1].Kind != "instant" || evs[1].Name != "bit-flip" {
		t.Errorf("instant event wrong: %+v", evs[1])
	}
	if evs[2].Kind != "mem" || evs[2].Mem == nil || evs[2].Mem.Step != 3 {
		t.Errorf("mem event wrong: %+v", evs[2])
	}
}

func TestWriteJSONShape(t *testing.T) {
	r := New(16)
	r.ObserveSpan("train", "step", 100, 50)
	r.ObserveInstant("faults", "encode-fail", 200)

	var buf bytes.Buffer
	meta := map[string]any{"job": "j1", "state": "failed"}
	if err := r.WriteJSON(&buf, "job failed", meta); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if d.Reason != "job failed" || d.EventsTotal != 2 || len(d.Events) != 2 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Events[1].Kind != "instant" || d.Events[1].Name != "encode-fail" {
		t.Fatalf("last event = %+v", d.Events[1])
	}
	if d.Meta == nil {
		t.Fatal("meta dropped")
	}
}

// TestConcurrentRecordAndDump hammers the ring from many writers while a
// reader dumps repeatedly; under -race this pins the lock-free claim that
// dumping mid-flight is safe, and every dump must be sorted and
// duplicate-free.
func TestConcurrentRecordAndDump(t *testing.T) {
	r := New(64)
	const writers, events = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				r.ObserveSpan("w", fmt.Sprintf("s%d", w), int64(i), 1)
			}
		}(w)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := r.Events()
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Errorf("dump not strictly ordered at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	if r.Total() != writers*events {
		t.Fatalf("total = %d, want %d", r.Total(), writers*events)
	}
	if evs := r.Events(); len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Total() != 0 || r.Events() != nil {
		t.Fatal("nil recorder must answer zero")
	}
}
