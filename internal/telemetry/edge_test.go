package telemetry

// Edge-case coverage for the histogram quantile/mean math (empty, clamped
// quantiles, single-bucket, top-bucket overflow) and for the memory
// timeline's bounded ring (wraparound keeps totals and newest samples),
// plus the observer tap the flight recorder hangs off.

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	var nilH *Histogram
	if nilH.Mean() != 0 || nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram must answer 0")
	}
}

func TestHistogramQuantileClamping(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{1, 100, 10000} {
		h.Observe(v)
	}
	// q <= 0 clamps to the first observation's bucket; its top is capped at
	// the true max when the bucket's edge exceeds it.
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %d, want 1", got)
	}
	if got := h.Quantile(-3); got != 1 {
		t.Errorf("Quantile(-3) = %d, want 1", got)
	}
	// q >= 1 answers the maximum observation.
	if got := h.Quantile(1); got != 10000 {
		t.Errorf("Quantile(1) = %d, want 10000", got)
	}
	if got := h.Quantile(7.5); got != 10000 {
		t.Errorf("Quantile(7.5) = %d, want 10000", got)
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	h := &Histogram{}
	// All observations in bucket 7 ([64, 127]).
	for v := int64(64); v < 128; v += 8 {
		h.Observe(v)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < 64 || got > 127 {
			t.Errorf("Quantile(%v) = %d outside the only populated bucket [64,127]", q, got)
		}
	}
	if got := h.Quantile(0.99); got != h.Max() {
		t.Errorf("single-bucket p99 = %d, want capped at max %d", got, h.Max())
	}
}

func TestHistogramMaxBucketNoOverflow(t *testing.T) {
	h := &Histogram{}
	h.Observe(math.MaxInt64)
	// Bucket 63's nominal top is 2^63-1; the old 1<<i edge computation
	// overflowed int64 and answered a negative quantile.
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != math.MaxInt64 {
			t.Errorf("Quantile(%v) = %d, want MaxInt64", q, got)
		}
	}
	if got := h.Snapshot().Quantile(0.5); got != math.MaxInt64 {
		t.Errorf("Snapshot Quantile(0.5) = %d, want MaxInt64", got)
	}
}

func TestHistogramNonPositiveBucket(t *testing.T) {
	h := &Histogram{}
	h.Observe(-5)
	h.Observe(0)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("non-positive median = %d, want 0", got)
	}
	sn := h.Snapshot()
	if sn.Buckets[0] != 2 || sn.Count != 2 {
		t.Errorf("bucket0 = %d count = %d, want 2/2", sn.Buckets[0], sn.Count)
	}
	if sn.Mean() != -2.5 {
		t.Errorf("Mean = %v, want -2.5", sn.Mean())
	}
}

func TestBucketUpperEdges(t *testing.T) {
	if BucketUpperEdge(0) != 0 || BucketUpperEdge(-1) != 0 {
		t.Error("bucket 0 edge must be 0")
	}
	if got := BucketUpperEdge(1); got != 1 {
		t.Errorf("bucket 1 edge = %d, want 1", got)
	}
	if got := BucketUpperEdge(10); got != 1023 {
		t.Errorf("bucket 10 edge = %d, want 1023", got)
	}
	if got := BucketUpperEdge(63); got != math.MaxInt64 {
		t.Errorf("bucket 63 edge = %d, want MaxInt64", got)
	}
	if got := BucketUpperEdge(64); got != math.MaxInt64 {
		t.Errorf("bucket 64 edge = %d, want MaxInt64", got)
	}
	// Edges must be strictly increasing over the usable range so the
	// Prometheus buckets render monotone.
	for i := 1; i < 64; i++ {
		if BucketUpperEdge(i) <= BucketUpperEdge(i-1) {
			t.Fatalf("edges not increasing at %d", i)
		}
	}
}

func TestMemSamplesRingWraparound(t *testing.T) {
	s := New()
	const extra = 37
	total := memTimelineCap + extra
	var wantRaw, wantHeld int64
	for i := 1; i <= total; i++ {
		s.RecordMemSample(MemSample{
			Step:      i,
			RawBytes:  int64(i),
			HeldBytes: int64(i) / 2,
			ByTech:    []TechBytes{{Tech: "DPR", RawBytes: int64(i), HeldBytes: int64(i) / 2}},
		})
		wantRaw += int64(i)
		wantHeld += int64(i) / 2
	}
	samples, gotTotal := s.MemSamples()
	if gotTotal != total {
		t.Fatalf("total = %d, want %d", gotTotal, total)
	}
	if len(samples) != memTimelineCap {
		t.Fatalf("retained = %d, want ring cap %d", len(samples), memTimelineCap)
	}
	// The ring keeps the newest cap samples in order.
	if samples[0].Step != extra+1 || samples[len(samples)-1].Step != total {
		t.Fatalf("ring spans steps [%d,%d], want [%d,%d]",
			samples[0].Step, samples[len(samples)-1].Step, extra+1, total)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Step != samples[i-1].Step+1 {
			t.Fatalf("ring out of order at %d: %d after %d", i, samples[i].Step, samples[i-1].Step)
		}
	}
	// Aggregates cover the whole run regardless of eviction.
	if got := s.Counter("stash.DPR.raw_bytes").Value(); got != wantRaw {
		t.Errorf("cumulative raw = %d, want %d", got, wantRaw)
	}
	if got := s.Counter("stash.DPR.held_bytes").Value(); got != wantHeld {
		t.Errorf("cumulative held = %d, want %d", got, wantHeld)
	}
	if got := s.Counter("stash.samples").Value(); got != int64(total) {
		t.Errorf("sample counter = %d, want %d", got, total)
	}
	if got := s.Gauge("mem.peak_raw_bytes").Value(); got != int64(total) {
		t.Errorf("peak raw = %d, want %d", got, total)
	}
	last, ok := s.LastMemSample()
	if !ok || last.Step != total {
		t.Errorf("LastMemSample = (%+v, %v), want step %d", last, ok, total)
	}
}

// recObserver is a minimal Observer for the tap tests.
type recObserver struct {
	mu       sync.Mutex
	spans    []string
	instants []string
	mems     int
}

func (r *recObserver) ObserveSpan(cat, name string, start, dur int64) {
	r.mu.Lock()
	r.spans = append(r.spans, cat+"/"+name)
	r.mu.Unlock()
}
func (r *recObserver) ObserveInstant(cat, name string, ts int64) {
	r.mu.Lock()
	r.instants = append(r.instants, cat+"/"+name)
	r.mu.Unlock()
}
func (r *recObserver) ObserveMem(sm MemSample, ts int64) {
	r.mu.Lock()
	r.mems++
	r.mu.Unlock()
}

// TestObserverTapWithoutTracing: an attached observer receives spans,
// instants and memory samples even with Chrome tracing off, and detaching
// returns Begin to the nil fast path.
func TestObserverTapWithoutTracing(t *testing.T) {
	s := New()
	ob := &recObserver{}
	s.SetObserver(ob)

	sp := s.Begin("train", "step")
	if sp == nil {
		t.Fatal("Begin returned nil with an observer attached")
	}
	child := sp.Begin("train", "forward")
	child.End()
	sp.End()
	s.Instant("faults", "bit-flip")
	s.Complete("codec", "encode.DPR", time.Now())
	s.RecordMemSample(MemSample{Step: 1, RawBytes: 100, HeldBytes: 50})

	ob.mu.Lock()
	wantSpans := []string{"train/forward", "train/step", "codec/encode.DPR"}
	if fmt.Sprint(ob.spans) != fmt.Sprint(wantSpans) {
		t.Errorf("spans = %v, want %v", ob.spans, wantSpans)
	}
	if len(ob.instants) != 1 || ob.instants[0] != "faults/bit-flip" {
		t.Errorf("instants = %v", ob.instants)
	}
	if ob.mems != 1 {
		t.Errorf("mems = %d, want 1", ob.mems)
	}
	ob.mu.Unlock()

	s.SetObserver(nil)
	if sp := s.Begin("train", "step"); sp != nil {
		t.Fatal("Begin must return nil after the observer detaches")
	}
	s.Instant("faults", "bit-flip") // must not reach the detached observer
	ob.mu.Lock()
	if len(ob.instants) != 1 {
		t.Errorf("detached observer still received instants: %v", ob.instants)
	}
	ob.mu.Unlock()
}
