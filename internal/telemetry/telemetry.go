// Package telemetry is the runtime measurement layer for the Gist pipeline:
// atomic counters and gauges, fixed-bucket histograms for nanosecond
// latencies and byte sizes, span tracing with a Chrome trace_event JSON
// exporter, and a per-step memory timeline that turns the planner's static
// footprint predictions into measured data.
//
// The design premium is the zero-cost default: every instrument is safe on
// a nil receiver, so uninstrumented runs pay exactly one nil check per
// call site (guarded by a benchmark). A non-nil Sink is safe for concurrent
// use from any number of goroutines — the chunked codec workers, the
// executor's async decode futures and the recovery loop all feed one sink.
//
// Metric names are dotted paths ("codec.encode.DPR.ns"); the snapshot
// exporter sorts them, and a handful of well-known prefixes (see
// snapshot.go) drive derived output like per-technique compression ratios.
package telemetry

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil Counter is
// valid and discards all updates, so call sites cache the pointer once and
// never branch.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d to the counter. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil Gauge discards updates.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v is larger — the lock-free running
// maximum used for peak-footprint tracking.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of every histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), with
// bucket 0 holding v <= 0. Power-of-two buckets cover the full int64 range
// (1 ns .. ~292 years; 1 B .. 8 EiB) with no configuration.
const histBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram with atomic buckets,
// suitable for nanosecond latencies and byte sizes. The nil Histogram
// discards observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the top
// of the bucket where the cumulative count crosses q. Within a factor of 2
// of the true value, which is all a power-of-two histogram promises.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	target := int64(q*float64(n) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			hi := int64(1) << uint(i) // exclusive top of bucket i
			if m := h.Max(); m < hi {
				return m
			}
			return hi
		}
	}
	return h.Max()
}

// Sink is a registry of named instruments plus the trace buffer and the
// memory timeline. The nil Sink is valid: every method no-ops or returns a
// nil instrument, so a fully uninstrumented run costs only nil checks.
type Sink struct {
	epoch time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	trace atomic.Pointer[traceBuf]

	memMu sync.Mutex
	mem   memTimeline
}

// New returns an empty sink. Tracing is off until EnableTracing.
func New() *Sink {
	return &Sink{
		epoch:    time.Now(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op counter) on a nil sink. Hot paths should look the counter
// up once and cache the pointer; the lookup itself takes the sink mutex.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// sink).
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use (nil on
// a nil sink).
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hists[name]
	if h == nil {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// Values returns a point-in-time copy of every counter and gauge value,
// keyed by name — the programmatic face of the snapshot, used by tests to
// cross-check telemetry against independently kept reports.
func (s *Sink) Values() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]int64, len(s.counters)+len(s.gauges))
	for name, c := range s.counters {
		m[name] = c.Value()
	}
	for name, g := range s.gauges {
		m[name] = g.Value()
	}
	return m
}

// now returns nanoseconds since the sink's epoch (trace timestamps).
func (s *Sink) now() int64 { return time.Since(s.epoch).Nanoseconds() }

// since returns the epoch-relative nanosecond timestamp of t.
func (s *Sink) since(t time.Time) int64 { return t.Sub(s.epoch).Nanoseconds() }

// --- memory timeline ---

// TechBytes is one technique's share of a memory sample: the FP32 bytes
// the stashed maps would occupy raw, and the bytes actually held encoded.
type TechBytes struct {
	Tech      string
	RawBytes  int64
	HeldBytes int64
}

// MemSample is one training step's stash-memory measurement: what the
// backward pass's working set would cost raw versus what the encoded
// representations actually hold, split per technique. This is the measured
// counterpart of the paper's Figure 2 lifetime argument.
type MemSample struct {
	Step      int
	RawBytes  int64 // FP32 bytes of all stashed feature maps
	HeldBytes int64 // bytes actually held across the forward→backward gap
	ByTech    []TechBytes
}

// memTimelineCap bounds the retained sample ring; aggregates (peaks,
// cumulative per-technique bytes) cover the whole run regardless.
const memTimelineCap = 4096

type memTimeline struct {
	samples []MemSample // ring, newest at end
	total   int         // samples ever recorded
}

// RecordMemSample appends one step's memory measurement: the sample ring,
// the peak gauges (mem.peak_raw_bytes, mem.peak_held_bytes), cumulative
// per-technique counters (stash.<tech>.raw_bytes / .held_bytes — the
// source of the snapshot's compression ratios), and, when tracing, Chrome
// counter events that render the timeline as a stacked area in Perfetto.
func (s *Sink) RecordMemSample(sm MemSample) {
	if s == nil {
		return
	}
	s.Gauge("mem.peak_raw_bytes").SetMax(sm.RawBytes)
	s.Gauge("mem.peak_held_bytes").SetMax(sm.HeldBytes)
	s.Counter("stash.samples").Inc()
	for _, tb := range sm.ByTech {
		s.Counter("stash." + tb.Tech + ".raw_bytes").Add(tb.RawBytes)
		s.Counter("stash." + tb.Tech + ".held_bytes").Add(tb.HeldBytes)
	}

	s.memMu.Lock()
	s.mem.total++
	if len(s.mem.samples) >= memTimelineCap {
		copy(s.mem.samples, s.mem.samples[1:])
		s.mem.samples[len(s.mem.samples)-1] = sm
	} else {
		s.mem.samples = append(s.mem.samples, sm)
	}
	s.memMu.Unlock()

	if s.TracingEnabled() {
		s.CounterEvent("stash bytes",
			Int("raw", sm.RawBytes), Int("held", sm.HeldBytes))
		if len(sm.ByTech) > 0 {
			args := make([]Arg, 0, len(sm.ByTech))
			for _, tb := range sm.ByTech {
				args = append(args, Int(tb.Tech, tb.HeldBytes))
			}
			s.CounterEvent("stash bytes by technique", args...)
		}
	}
}

// MemSamples returns a copy of the retained sample ring (newest last) and
// the total number of samples ever recorded.
func (s *Sink) MemSamples() ([]MemSample, int) {
	if s == nil {
		return nil, 0
	}
	s.memMu.Lock()
	defer s.memMu.Unlock()
	return append([]MemSample(nil), s.mem.samples...), s.mem.total
}
