// Package telemetry is the runtime measurement layer for the Gist pipeline:
// atomic counters and gauges, fixed-bucket histograms for nanosecond
// latencies and byte sizes, span tracing with a Chrome trace_event JSON
// exporter, and a per-step memory timeline that turns the planner's static
// footprint predictions into measured data.
//
// The design premium is the zero-cost default: every instrument is safe on
// a nil receiver, so uninstrumented runs pay exactly one nil check per
// call site (guarded by a benchmark). A non-nil Sink is safe for concurrent
// use from any number of goroutines — the chunked codec workers, the
// executor's async decode futures and the recovery loop all feed one sink.
//
// Metric names are dotted paths ("codec.encode.DPR.ns"); the snapshot
// exporter sorts them, and a handful of well-known prefixes (see
// snapshot.go) drive derived output like per-technique compression ratios.
package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The nil Counter is
// valid and discards all updates, so call sites cache the pointer once and
// never branch.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d to the counter. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The nil Gauge discards updates.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// SetMax raises the gauge to v if v is larger — the lock-free running
// maximum used for peak-footprint tracking.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of every histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), with
// bucket 0 holding v <= 0. Power-of-two buckets cover the full int64 range
// (1 ns .. ~292 years; 1 B .. 8 EiB) with no configuration.
const histBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram with atomic buckets,
// suitable for nanosecond latencies and byte sizes. The nil Histogram
// discards observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the top
// of the bucket where the cumulative count crosses q. Within a factor of 2
// of the true value, which is all a power-of-two histogram promises.
// q <= 0 answers the smallest populated bucket's top; q >= 1 the maximum.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	target := int64(q*float64(n) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			hi := BucketUpperEdge(i) // inclusive top of bucket i
			if m := h.Max(); m < hi {
				return m
			}
			return hi
		}
	}
	return h.Max()
}

// HistBuckets is the exported bucket count of every histogram (bucket i
// counts observations v with bits.Len64(v) == i; see BucketUpperEdge).
const HistBuckets = histBuckets

// BucketUpperEdge returns the largest value bucket i holds: 0 for bucket 0
// (non-positive observations), 2^i - 1 for 1 <= i < 63, and MaxInt64 for
// the top buckets (where 1<<i would overflow int64).
func BucketUpperEdge(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= 63:
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// HistogramSnapshot is a point-in-time copy of one histogram, the unit the
// Prometheus exporter and the text snapshot render from. Buckets[i] counts
// observations in (BucketUpperEdge(i-1), BucketUpperEdge(i)].
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [HistBuckets]int64
}

// Snapshot copies the histogram's current state. A snapshot taken while
// writers are mid-Observe may momentarily hold fewer bucket counts than
// Count (count is incremented before the bucket); never more.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Mean returns the snapshot's average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile mirrors Histogram.Quantile over the frozen bucket counts.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q*float64(s.Count) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += s.Buckets[i]
		if cum >= target {
			if i == 0 {
				return 0
			}
			hi := BucketUpperEdge(i)
			if s.Max < hi {
				return s.Max
			}
			return hi
		}
	}
	return s.Max
}

// Sink is a registry of named instruments plus the trace buffer and the
// memory timeline. The nil Sink is valid: every method no-ops or returns a
// nil instrument, so a fully uninstrumented run costs only nil checks.
type Sink struct {
	epoch time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	trace atomic.Pointer[traceBuf]
	obs   atomic.Pointer[observerRef]

	memMu sync.Mutex
	mem   memTimeline
}

// Observer receives a live copy of every span, instant and memory sample
// the sink records — the flight recorder's tap. Implementations must be
// safe for concurrent use and must not call back into the sink.
// Timestamps are nanoseconds since the sink's epoch.
type Observer interface {
	ObserveSpan(cat, name string, startNS, durNS int64)
	ObserveInstant(cat, name string, tsNS int64)
	ObserveMem(sm MemSample, tsNS int64)
}

// observerRef boxes the interface so it fits an atomic.Pointer.
type observerRef struct{ o Observer }

// SetObserver attaches (or, with nil, detaches) the sink's observer. With
// an observer attached, spans are delivered even when Chrome tracing is
// off — Begin returns a live span either way. Uninstrumented call sites
// still pay only an atomic load.
func (s *Sink) SetObserver(o Observer) {
	if s == nil {
		return
	}
	if o == nil {
		s.obs.Store(nil)
		return
	}
	s.obs.Store(&observerRef{o: o})
}

// observer returns the attached observer, or nil.
func (s *Sink) observer() Observer {
	if s == nil {
		return nil
	}
	if r := s.obs.Load(); r != nil {
		return r.o
	}
	return nil
}

// New returns an empty sink. Tracing is off until EnableTracing.
func New() *Sink {
	return &Sink{
		epoch:    time.Now(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op counter) on a nil sink. Hot paths should look the counter
// up once and cache the pointer; the lookup itself takes the sink mutex.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.counters[name]
	if c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// sink).
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	g := s.gauges[name]
	if g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use (nil on
// a nil sink).
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hists[name]
	if h == nil {
		h = &Histogram{}
		s.hists[name] = h
	}
	return h
}

// Values returns a point-in-time copy of every counter and gauge value,
// keyed by name — the programmatic face of the snapshot, used by tests to
// cross-check telemetry against independently kept reports.
func (s *Sink) Values() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := make(map[string]int64, len(s.counters)+len(s.gauges))
	for name, c := range s.counters {
		m[name] = c.Value()
	}
	for name, g := range s.gauges {
		m[name] = g.Value()
	}
	return m
}

// Metrics is a point-in-time copy of every instrument in the sink, keyed
// by name — the unit the Prometheus exporter gathers. When tracing is
// armed, the bounded trace buffer's drop count rides along as the
// "telemetry.trace.dropped" counter so silent truncation is visible.
type Metrics struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Gather snapshots every counter, gauge and histogram. Returns the zero
// Metrics on a nil sink.
func (s *Sink) Gather() Metrics {
	if s == nil {
		return Metrics{}
	}
	s.mu.Lock()
	m := Metrics{
		Counters:   make(map[string]int64, len(s.counters)+1),
		Gauges:     make(map[string]int64, len(s.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.hists)),
	}
	for name, c := range s.counters {
		m.Counters[name] = c.Value()
	}
	for name, g := range s.gauges {
		m.Gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(s.hists))
	for name, h := range s.hists {
		hists[name] = h
	}
	s.mu.Unlock()
	for name, h := range hists {
		m.Histograms[name] = h.Snapshot()
	}
	if s.TracingEnabled() {
		m.Counters["telemetry.trace.dropped"] = s.TraceDropped()
	}
	return m
}

// now returns nanoseconds since the sink's epoch (trace timestamps).
func (s *Sink) now() int64 { return time.Since(s.epoch).Nanoseconds() }

// since returns the epoch-relative nanosecond timestamp of t.
func (s *Sink) since(t time.Time) int64 { return t.Sub(s.epoch).Nanoseconds() }

// --- memory timeline ---

// TechBytes is one technique's share of a memory sample: the FP32 bytes
// the stashed maps would occupy raw, and the bytes actually held encoded.
type TechBytes struct {
	Tech      string
	RawBytes  int64
	HeldBytes int64
}

// MemSample is one training step's stash-memory measurement: what the
// backward pass's working set would cost raw versus what the encoded
// representations actually hold, split per technique. This is the measured
// counterpart of the paper's Figure 2 lifetime argument.
type MemSample struct {
	Step      int
	RawBytes  int64 // FP32 bytes of all stashed feature maps
	HeldBytes int64 // bytes actually held across the forward→backward gap
	ByTech    []TechBytes
}

// memTimelineCap bounds the retained sample ring; aggregates (peaks,
// cumulative per-technique bytes) cover the whole run regardless.
const memTimelineCap = 4096

type memTimeline struct {
	samples []MemSample // ring, newest at end
	total   int         // samples ever recorded
}

// RecordMemSample appends one step's memory measurement: the sample ring,
// the peak gauges (mem.peak_raw_bytes, mem.peak_held_bytes), cumulative
// per-technique counters (stash.<tech>.raw_bytes / .held_bytes — the
// source of the snapshot's compression ratios), and, when tracing, Chrome
// counter events that render the timeline as a stacked area in Perfetto.
func (s *Sink) RecordMemSample(sm MemSample) {
	if s == nil {
		return
	}
	s.Gauge("mem.peak_raw_bytes").SetMax(sm.RawBytes)
	s.Gauge("mem.peak_held_bytes").SetMax(sm.HeldBytes)
	s.Counter("stash.samples").Inc()
	for _, tb := range sm.ByTech {
		s.Counter("stash." + tb.Tech + ".raw_bytes").Add(tb.RawBytes)
		s.Counter("stash." + tb.Tech + ".held_bytes").Add(tb.HeldBytes)
	}

	s.memMu.Lock()
	s.mem.total++
	if len(s.mem.samples) >= memTimelineCap {
		copy(s.mem.samples, s.mem.samples[1:])
		s.mem.samples[len(s.mem.samples)-1] = sm
	} else {
		s.mem.samples = append(s.mem.samples, sm)
	}
	s.memMu.Unlock()

	if ob := s.observer(); ob != nil {
		ob.ObserveMem(sm, s.now())
	}

	if s.TracingEnabled() {
		s.CounterEvent("stash bytes",
			Int("raw", sm.RawBytes), Int("held", sm.HeldBytes))
		if len(sm.ByTech) > 0 {
			args := make([]Arg, 0, len(sm.ByTech))
			for _, tb := range sm.ByTech {
				args = append(args, Int(tb.Tech, tb.HeldBytes))
			}
			s.CounterEvent("stash bytes by technique", args...)
		}
	}
}

// MemSamples returns a copy of the retained sample ring (newest last) and
// the total number of samples ever recorded.
func (s *Sink) MemSamples() ([]MemSample, int) {
	if s == nil {
		return nil, 0
	}
	s.memMu.Lock()
	defer s.memMu.Unlock()
	return append([]MemSample(nil), s.mem.samples...), s.mem.total
}

// LastMemSample returns the most recent memory sample without copying the
// whole ring — the SSE stream reads it once per step.
func (s *Sink) LastMemSample() (MemSample, bool) {
	if s == nil {
		return MemSample{}, false
	}
	s.memMu.Lock()
	defer s.memMu.Unlock()
	if n := len(s.mem.samples); n > 0 {
		return s.mem.samples[n-1], true
	}
	return MemSample{}, false
}
