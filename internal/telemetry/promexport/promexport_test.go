package promexport

import (
	"math"
	"strings"
	"testing"

	"gist/internal/telemetry"
)

// render writes the registry and strict-parses the result; any exposition
// defect fails the test here.
func render(t *testing.T, r *Registry) ([]Family, string) {
	t.Helper()
	var b strings.Builder
	if err := r.Write(&b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("render does not round-trip: %v\n%s", err, b.String())
	}
	return fams, b.String()
}

func TestEmptyRegistryStillExposesBuildInfo(t *testing.T) {
	fams, _ := render(t, NewRegistry())
	bi := Find(fams, "gist_build_info")
	if bi == nil || bi.Type != "gauge" {
		t.Fatalf("missing gist_build_info gauge, got %+v", fams)
	}
	if len(bi.Samples) != 1 || bi.Samples[0].Value != 1 {
		t.Fatalf("build_info samples %+v", bi.Samples)
	}
	if bi.Samples[0].Labels["goversion"] == "" {
		t.Fatal("build_info missing goversion label")
	}
}

func TestCounterGaugeRendering(t *testing.T) {
	s := telemetry.New()
	s.Counter("server.jobs.admitted").Add(7)
	s.Gauge("server.queue.depth").Set(3)
	r := NewRegistry()
	r.Register(s)

	fams, text := render(t, r)
	adm := Find(fams, "gist_server_jobs_admitted_total")
	if adm == nil || adm.Type != "counter" {
		t.Fatalf("admitted counter missing:\n%s", text)
	}
	if adm.Samples[0].Value != 7 {
		t.Fatalf("admitted = %v, want 7", adm.Samples[0].Value)
	}
	q := Find(fams, "gist_server_queue_depth")
	if q == nil || q.Type != "gauge" || q.Samples[0].Value != 3 {
		t.Fatalf("queue gauge wrong:\n%s", text)
	}
	if strings.Contains(text, "gist_server_queue_depth_total") {
		t.Fatal("gauges must not get the _total suffix")
	}
}

func TestLabelExtractionPatterns(t *testing.T) {
	s := telemetry.New()
	s.Counter("stash.DPR.raw_bytes").Add(1000)
	s.Counter("stash.DPR.held_bytes").Add(250)
	s.Counter("stash.samples").Add(4) // no technique segment: stays plain
	s.Counter("stash.store.evictions").Add(7)
	s.Counter("stash.store.spill.write_bytes").Add(4096)
	s.Counter("codec.encode.DPR.bytes").Add(512)
	s.Counter("codec.encode.fallbacks").Add(2) // one segment: stays plain
	s.Counter("faults.injected.bit-flip").Inc()
	r := NewRegistry()
	r.Register(s, Label{Key: "job_id", Value: "j1"})

	fams, text := render(t, r)

	raw := Find(fams, "gist_stash_raw_bytes_total")
	if raw == nil {
		t.Fatalf("no stash raw family:\n%s", text)
	}
	if got, ok := raw.Get("technique", "DPR", "job_id", "j1"); !ok || got.Value != 1000 {
		t.Fatalf("stash raw{DPR,j1} = %+v ok=%v", got, ok)
	}
	if f := Find(fams, "gist_stash_samples_total"); f == nil {
		t.Fatalf("stash.samples must stay unlabeled:\n%s", text)
	}
	// The stash store's own instruments are not a technique: they must
	// render verbatim, never as gist_stash_*{technique="store"}.
	ev := Find(fams, "gist_stash_store_evictions_total")
	if ev == nil {
		t.Fatalf("no stash store evictions family:\n%s", text)
	}
	if got, ok := ev.Get("job_id", "j1"); !ok || got.Value != 7 {
		t.Fatalf("stash store evictions{j1} = %+v ok=%v", got, ok)
	}
	if f := Find(fams, "gist_stash_store_spill_write_bytes_total"); f == nil {
		t.Fatalf("no stash store spill write family:\n%s", text)
	}
	if strings.Contains(text, `technique="store"`) {
		t.Fatalf("stash.store.* leaked into the technique namespace:\n%s", text)
	}
	enc := Find(fams, "gist_codec_encode_bytes_total")
	if enc == nil {
		t.Fatalf("no codec encode bytes family:\n%s", text)
	}
	if got, ok := enc.Get("technique", "DPR"); !ok || got.Value != 512 {
		t.Fatalf("codec encode{DPR} = %+v ok=%v", got, ok)
	}
	if f := Find(fams, "gist_codec_encode_fallbacks_total"); f == nil {
		t.Fatalf("codec.encode.fallbacks must stay unlabeled:\n%s", text)
	}
	fi := Find(fams, "gist_faults_injected_total")
	if fi == nil {
		t.Fatalf("no faults family:\n%s", text)
	}
	if got, ok := fi.Get("kind", "bit-flip"); !ok || got.Value != 1 {
		t.Fatalf("faults{bit-flip} = %+v ok=%v", got, ok)
	}
}

func TestMultiSinkAggregation(t *testing.T) {
	server := telemetry.New()
	server.Counter("server.jobs.admitted").Add(2)
	j1 := telemetry.New()
	j1.Counter("train.steps").Add(10)
	j2 := telemetry.New()
	j2.Counter("train.steps").Add(20)

	r := NewRegistry()
	r.Register(server)
	r.Register(j1, Label{Key: "job_id", Value: "job-1"})
	r.Register(j2, Label{Key: "job_id", Value: "job-2"})

	fams, text := render(t, r)
	steps := Find(fams, "gist_train_steps_total")
	if steps == nil || len(steps.Samples) != 2 {
		t.Fatalf("want one family with 2 samples:\n%s", text)
	}
	a, _ := steps.Get("job_id", "job-1")
	b, _ := steps.Get("job_id", "job-2")
	if a.Value != 10 || b.Value != 20 {
		t.Fatalf("per-job steps %v/%v, want 10/20", a.Value, b.Value)
	}
	if n := strings.Count(text, "# TYPE gist_train_steps_total"); n != 1 {
		t.Fatalf("TYPE line emitted %d times, want 1", n)
	}

	// Unregister drops the series on the next scrape.
	r.Unregister(j1)
	fams, _ = render(t, r)
	steps = Find(fams, "gist_train_steps_total")
	if len(steps.Samples) != 1 {
		t.Fatalf("after unregister: %d samples, want 1", len(steps.Samples))
	}
}

func TestHistogramRendering(t *testing.T) {
	s := telemetry.New()
	h := s.Histogram("train.step.ns")
	for _, v := range []int64{-1, 0, 1, 3, 100, 100, 5000, math.MaxInt64} {
		h.Observe(v)
	}
	r := NewRegistry()
	r.Register(s, Label{Key: "job_id", Value: "j"})

	fams, text := render(t, r) // Parse already enforces monotone + +Inf==count
	f := Find(fams, "gist_train_step_ns")
	if f == nil || f.Type != "histogram" {
		t.Fatalf("histogram family missing:\n%s", text)
	}
	inf, ok := f.Get("le", "+Inf")
	if !ok || inf.Value != 8 {
		t.Fatalf("+Inf bucket = %+v ok=%v, want 8", inf, ok)
	}
	// Bucket 0 holds the two non-positive observations.
	b0, ok := f.Get("le", "0")
	if !ok || b0.Value != 2 {
		t.Fatalf("le=0 bucket = %+v ok=%v, want cumulative 2", b0, ok)
	}
	// MaxInt64 lands in the top bucket; its le must be MaxInt64, not a
	// negative overflow.
	if strings.Contains(text, `le="-`) {
		t.Fatalf("negative bucket edge leaked:\n%s", text)
	}
	cnt, ok := f.Get("__series__", "_count", "job_id", "j")
	if !ok || cnt.Value != 8 {
		t.Fatalf("_count = %+v ok=%v, want 8", cnt, ok)
	}
}

func TestLabelEscaping(t *testing.T) {
	s := telemetry.New()
	s.Counter("train.steps").Inc()
	r := NewRegistry()
	r.Register(s, Label{Key: "job_id", Value: "a\"b\\c\nd"})

	fams, _ := render(t, r)
	f := Find(fams, "gist_train_steps_total")
	if f == nil {
		t.Fatal("family missing")
	}
	if got := f.Samples[0].Labels["job_id"]; got != "a\"b\\c\nd" {
		t.Fatalf("escaped label round-trip = %q", got)
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	bad := []struct{ name, doc string }{
		{"no type", "gist_x_total 1\n"},
		{"garbage", "# TYPE gist_x counter\nnot a metric line!\n"},
		{"bad value", "# TYPE gist_x counter\ngist_x_total zebra\n"},
		{"negative counter", "# TYPE gist_x counter\ngist_x -1\n"},
		{"unterminated labels", "# TYPE gist_x counter\ngist_x{a=\"b\" 1\n"},
		{"dup type", "# TYPE gist_x counter\n# TYPE gist_x counter\n"},
		{"hist no inf", "# TYPE gist_h histogram\ngist_h_bucket{le=\"1\"} 1\ngist_h_sum 1\ngist_h_count 1\n"},
		{"hist non-monotone", "# TYPE gist_h histogram\n" +
			"gist_h_bucket{le=\"1\"} 5\ngist_h_bucket{le=\"2\"} 3\ngist_h_bucket{le=\"+Inf\"} 5\n" +
			"gist_h_sum 9\ngist_h_count 5\n"},
		{"hist count mismatch", "# TYPE gist_h histogram\n" +
			"gist_h_bucket{le=\"+Inf\"} 5\ngist_h_sum 9\ngist_h_count 6\n"},
		{"hist descending le", "# TYPE gist_h histogram\n" +
			"gist_h_bucket{le=\"2\"} 1\ngist_h_bucket{le=\"1\"} 2\ngist_h_bucket{le=\"+Inf\"} 2\n" +
			"gist_h_sum 3\ngist_h_count 2\n"},
	}
	for _, tc := range bad {
		if _, err := Parse(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: parser accepted malformed document:\n%s", tc.name, tc.doc)
		}
	}
}

func TestParserAcceptsValid(t *testing.T) {
	doc := "# HELP gist_x something\n# TYPE gist_x counter\ngist_x{a=\"b\"} 1 1700000000\n\n" +
		"# TYPE gist_h histogram\n" +
		"gist_h_bucket{le=\"1\"} 1\ngist_h_bucket{le=\"+Inf\"} 2\ngist_h_sum 12\ngist_h_count 2\n"
	fams, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("parsed %d families, want 2", len(fams))
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Register(telemetry.New()) // must not panic
	r.Unregister(nil)
	live := NewRegistry()
	live.Register(nil) // nil sink ignored
	if _, text := render(t, live); !strings.Contains(text, "gist_build_info") {
		t.Fatal("nil-sink registration corrupted the registry")
	}
}
