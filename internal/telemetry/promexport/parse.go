package promexport

// A strict parser for the subset of the Prometheus text exposition format
// the renderer emits. It is deliberately unforgiving: every line must
// parse, a TYPE declaration must precede its samples, histogram buckets
// must be cumulative and monotone with ascending le edges, and +Inf must
// be present and equal _count. The tests, the soak harness's mid-run
// scrape and gisttop all consume /metrics through it, so a malformed
// exposition fails loudly instead of being silently half-scraped.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series within a family.
type Sample struct {
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Type    string // "counter", "gauge", "histogram", "summary", "untyped"
	Samples []Sample
}

// Get returns the first sample whose labels contain every given key=value
// pair (extra labels on the sample are allowed).
func (f *Family) Get(kv ...string) (Sample, bool) {
	if len(kv)%2 != 0 {
		return Sample{}, false
	}
outer:
	for _, s := range f.Samples {
		for i := 0; i < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				continue outer
			}
		}
		return s, true
	}
	return Sample{}, false
}

// Parse reads a full exposition document and validates it. Families are
// returned in document order.
func Parse(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	var fams []*Family
	byName := map[string]*Family{}
	types := map[string]string{}
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			name, typ, ok, err := parseTypeLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			if !ok {
				continue // HELP or free comment
			}
			if _, dup := types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			types[name] = typ
			f := &Family{Name: name, Type: typ}
			fams = append(fams, f)
			byName[name] = f
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(name, types)
		if fam == "" {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", lineNo, name)
		}
		f := byName[fam]
		switch types[fam] {
		case "histogram":
			ok := name == fam+"_bucket" || name == fam+"_sum" || name == fam+"_count"
			if !ok {
				return nil, fmt.Errorf("line %d: %q is not a valid series of histogram %q", lineNo, name, fam)
			}
			if name == fam+"_bucket" {
				if _, hasLe := labels["le"]; !hasLe {
					return nil, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
			}
		case "counter":
			if value < 0 {
				return nil, fmt.Errorf("line %d: counter %q is negative (%v)", lineNo, name, value)
			}
		}
		// Keep the series name distinguishable for histogram children by
		// stashing it in a reserved label.
		if types[fam] == "histogram" {
			labels["__series__"] = strings.TrimPrefix(name, fam)
		}
		f.Samples = append(f.Samples, Sample{Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
		out = append(out, *f)
	}
	return out, nil
}

// Find returns the family with the given name, or nil.
func Find(fams []Family, name string) *Family {
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	return nil
}

// familyFor maps a sample name to its declared family: exact match, or the
// _bucket/_sum/_count child of a declared histogram.
func familyFor(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			base := strings.TrimSuffix(name, suf)
			if types[base] == "histogram" || types[base] == "summary" {
				return base
			}
		}
	}
	return ""
}

// parseTypeLine handles comment lines; returns ok=false for non-TYPE
// comments and an error for malformed TYPE declarations.
func parseTypeLine(line string) (name, typ string, ok bool, err error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[1] != "TYPE" {
		return "", "", false, nil
	}
	if len(fields) != 4 {
		return "", "", false, fmt.Errorf("malformed TYPE line %q", line)
	}
	switch fields[3] {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		return "", "", false, fmt.Errorf("unknown metric type %q", fields[3])
	}
	return fields[2], fields[3], true, nil
}

// parseSample parses `name{k="v",...} value` (labels optional). The value
// may be any Go float, including +Inf/NaN spellings Prometheus allows.
func parseSample(line string) (string, map[string]string, float64, error) {
	labels := map[string]string{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		labels, err = parseLabels(rest[brace+1 : end])
		if err != nil {
			return "", nil, 0, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("no value in %q", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	return name, labels, v, nil
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(s string) (map[string]string, error) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label pair")
		}
		key := strings.TrimSpace(s[:eq])
		if !validLabelName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in label %q", key)
				}
				i++
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[i], key)
				}
				continue
			}
			if c == '"' {
				closed = true
				s = s[i+1:]
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", key)
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val.String()
		s = strings.TrimSpace(s)
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' after label %q", key)
			}
			s = strings.TrimSpace(s[1:])
		}
	}
	return labels, nil
}

// parseValue accepts decimal floats plus the exposition spellings of
// infinity and NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") && s != "__name__" {
		// Reserved double-underscore space; our own __series__ stash is
		// added after parsing, never read from the wire.
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validateHistogram checks, per label set (excluding le): ascending le
// edges, monotone non-decreasing cumulative bucket counts, +Inf present,
// _count present and equal to the +Inf bucket, _sum present.
func validateHistogram(f *Family) error {
	type series struct {
		les    []float64
		counts []float64
		sum    *float64
		count  *float64
		inf    *float64
	}
	groups := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k == "le" || k == "__series__" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(labels[k])
			b.WriteByte(';')
		}
		return b.String()
	}

	for i := range f.Samples {
		s := &f.Samples[i]
		key := keyOf(s.Labels)
		g := groups[key]
		if g == nil {
			g = &series{}
			groups[key] = g
		}
		v := s.Value
		switch s.Labels["__series__"] {
		case "_bucket":
			le, err := parseValue(s.Labels["le"])
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, s.Labels["le"])
			}
			if math.IsInf(le, 1) {
				g.inf = &v
			}
			g.les = append(g.les, le)
			g.counts = append(g.counts, v)
		case "_sum":
			g.sum = &v
		case "_count":
			g.count = &v
		}
	}

	for key, g := range groups {
		if len(g.les) == 0 {
			return fmt.Errorf("histogram %s{%s}: no buckets", f.Name, key)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("histogram %s{%s}: le edges not ascending (%v after %v)",
					f.Name, key, g.les[i], g.les[i-1])
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("histogram %s{%s}: cumulative counts decrease (%v after %v at le=%v)",
					f.Name, key, g.counts[i], g.counts[i-1], g.les[i])
			}
		}
		if g.inf == nil {
			return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" bucket", f.Name, key)
		}
		if g.count == nil {
			return fmt.Errorf("histogram %s{%s}: missing _count", f.Name, key)
		}
		if g.sum == nil {
			return fmt.Errorf("histogram %s{%s}: missing _sum", f.Name, key)
		}
		if *g.count != *g.inf {
			return fmt.Errorf("histogram %s{%s}: _count (%v) != +Inf bucket (%v)",
				f.Name, key, *g.count, *g.inf)
		}
	}
	return nil
}
