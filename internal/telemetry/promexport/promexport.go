// Package promexport renders telemetry sinks in the Prometheus text
// exposition format (version 0.0.4) and parses it back strictly.
//
// The Registry is the labeled aggregation layer the job server needs: each
// registered sink carries a base label set (job_id, tenant; none for the
// server-level sink), and well-known dotted-name patterns from the
// telemetry layer are rewritten into labeled families — stash.DPR.raw_bytes
// becomes gist_stash_raw_bytes_total{technique="DPR"} — so one /metrics
// scrape carries every job's per-technique compression time-series without
// the sinks themselves ever learning about labels. The hot path is
// untouched: instruments stay the nil-safe atomics they were; the registry
// only reads them at scrape time.
//
// Histograms render as cumulative _bucket/_sum/_count series. The
// underlying histograms are power-of-two, so bucket i's inclusive upper
// edge is telemetry.BucketUpperEdge(i); only populated buckets are emitted
// (cumulative counts stay monotone regardless) plus the mandatory +Inf.
package promexport

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"gist/internal/telemetry"
)

// Label is one key/value pair. Label sets are kept sorted by key.
type Label struct{ Key, Value string }

// Registry aggregates any number of sinks, each under a base label set,
// into one exposition document.
type Registry struct {
	mu      sync.Mutex
	entries []entry
}

type entry struct {
	sink   *telemetry.Sink
	labels []Label
}

// NewRegistry returns an empty registry. Write on it still emits the
// build_info family.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a sink under the given base labels. Registering the same
// sink again replaces its labels. Nil sinks are ignored.
func (r *Registry) Register(s *telemetry.Sink, labels ...Label) {
	if r == nil || s == nil {
		return
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.entries {
		if r.entries[i].sink == s {
			r.entries[i].labels = ls
			return
		}
	}
	r.entries = append(r.entries, entry{sink: s, labels: ls})
}

// Unregister removes a sink; its series disappear from the next scrape.
func (r *Registry) Unregister(s *telemetry.Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.entries {
		if r.entries[i].sink == s {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			return
		}
	}
}

// sample is one rendered series: a label set and either a scalar value or
// a histogram snapshot.
type sample struct {
	labels []Label
	value  int64
	hist   *telemetry.HistogramSnapshot
}

// family is one metric family: every sample across every sink that mapped
// to the same exposition name.
type family struct {
	name    string
	typ     string // "counter", "gauge", "histogram"
	samples []sample
}

// Write renders the registry's current state as Prometheus text
// exposition v0.0.4, one TYPE line per family, samples sorted by label.
func (r *Registry) Write(w io.Writer) error {
	fams := map[string]*family{}
	add := func(name, typ string, s sample) {
		f := fams[name]
		if f == nil {
			f = &family{name: name, typ: typ}
			fams[name] = f
		}
		if f.typ != typ {
			// A name that maps to two instrument kinds across sinks would
			// produce an invalid exposition; first registration wins.
			return
		}
		f.samples = append(f.samples, s)
	}

	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	r.mu.Unlock()

	for _, e := range entries {
		m := e.sink.Gather()
		for name, v := range m.Counters {
			pn, extra := promName(name, "counter")
			add(pn, "counter", sample{labels: mergeLabels(e.labels, extra), value: v})
		}
		for name, v := range m.Gauges {
			pn, extra := promName(name, "gauge")
			add(pn, "gauge", sample{labels: mergeLabels(e.labels, extra), value: v})
		}
		for name, h := range m.Histograms {
			h := h
			pn, extra := promName(name, "histogram")
			add(pn, "histogram", sample{labels: mergeLabels(e.labels, extra), hist: &h})
		}
	}

	// build_info is registry-level: one series, value 1, identity in labels.
	goVersion, revision := Build()
	add("gist_build_info", "gauge", sample{labels: []Label{
		{Key: "goversion", Value: goVersion},
		{Key: "revision", Value: revision},
	}, value: 1})

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.samples, func(i, j int) bool {
			return labelString(f.samples[i].labels) < labelString(f.samples[j].labels)
		})
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			if f.typ == "histogram" {
				writeHistogram(&b, f.name, s)
				continue
			}
			fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(s.labels), s.value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram emits the cumulative _bucket series (populated buckets
// plus +Inf), then _sum and _count. A concurrent Observe can leave the
// bucket sum momentarily below Count; +Inf and _count use Count, which
// keeps the cumulative sequence monotone.
func writeHistogram(b *strings.Builder, name string, s sample) {
	var cum int64
	for i := 0; i < telemetry.HistBuckets; i++ {
		n := s.hist.Buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		le := fmt.Sprintf("%d", telemetry.BucketUpperEdge(i))
		fmt.Fprintf(b, "%s_bucket%s %d\n",
			name, labelString(append(s.labels, Label{Key: "le", Value: le})), cum)
	}
	count := s.hist.Count
	if cum > count {
		count = cum
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n",
		name, labelString(append(s.labels, Label{Key: "le", Value: "+Inf"})), count)
	fmt.Fprintf(b, "%s_sum%s %d\n", name, labelString(s.labels), s.hist.Sum)
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelString(s.labels), count)
}

// mergeLabels combines a sink's base labels with pattern-extracted ones,
// sorted by key. Base labels win on key collision.
func mergeLabels(base, extra []Label) []Label {
	if len(extra) == 0 {
		return base
	}
	out := append([]Label(nil), base...)
	for _, l := range extra {
		dup := false
		for _, have := range base {
			if have.Key == l.Key {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labelString renders a label set as {k="v",...}, or "" when empty.
func labelString(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition format's label-value escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promName maps a dotted telemetry name to its exposition family name plus
// any labels extracted from well-known patterns:
//
//	stash.<tech>.raw_bytes      → gist_stash_raw_bytes_total{technique}
//	codec.encode.<tech>.<what>  → gist_codec_encode_<what>{technique}
//	codec.decode.<tech>.<what>  → gist_codec_decode_<what>{technique}
//	faults.injected.<kind>      → gist_faults_injected_total{kind}
//
// Everything else is sanitized verbatim. Counters get a _total suffix.
func promName(name, typ string) (string, []Label) {
	var labels []Label
	switch {
	case strings.HasPrefix(name, "stash.store."):
		// The tiered stash store's own instruments (stash.store.evictions,
		// stash.store.spill.write_bytes, ...): "store" is not a technique,
		// so keep these out of the {technique} families and sanitize
		// verbatim → gist_stash_store_*.
	case strings.HasPrefix(name, "stash."):
		rest := strings.TrimPrefix(name, "stash.")
		if i := strings.IndexByte(rest, '.'); i > 0 {
			labels = []Label{{Key: "technique", Value: rest[:i]}}
			name = "stash." + rest[i+1:]
		}
	case strings.HasPrefix(name, "codec.encode."), strings.HasPrefix(name, "codec.decode."):
		op := name[:len("codec.encode.")]
		rest := name[len(op):]
		if i := strings.IndexByte(rest, '.'); i > 0 {
			labels = []Label{{Key: "technique", Value: rest[:i]}}
			name = op + rest[i+1:]
		}
	case strings.HasPrefix(name, "faults.injected."):
		labels = []Label{{Key: "kind", Value: strings.TrimPrefix(name, "faults.injected.")}}
		name = "faults.injected"
	}
	out := "gist_" + sanitize(name)
	if typ == "counter" && !strings.HasSuffix(out, "_total") {
		out += "_total"
	}
	return out, labels
}

// sanitize maps a dotted name onto the exposition charset
// [a-zA-Z0-9_:]; dots and anything else invalid become underscores.
func sanitize(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Build reports the running binary's Go version and VCS revision
// ("unknown" when the build carries no VCS stamp) — the /healthz
// build_info line and the gist_build_info series share it.
func Build() (goVersion, revision string) {
	goVersion = runtime.Version()
	revision = "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
				if len(revision) > 12 {
					revision = revision[:12]
				}
			}
		}
	}
	return goVersion, revision
}
