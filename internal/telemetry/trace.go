package telemetry

// Span tracing and the Chrome trace_event exporter. Spans are recorded as
// complete ("X") events — one event carrying begin timestamp and duration,
// which cannot un-pair — plus instant ("i") events for point occurrences
// (injected faults, CRC detections, gradient zeroing) and counter ("C")
// events for the memory timeline. The output loads directly into
// chrome://tracing or https://ui.perfetto.dev.
//
// Tracks: Chrome lays events out by (pid, tid). Sinks run one logical
// process (pid 1) and allocate track ids from a free list — a root span
// takes the lowest free track and its children share it (so nesting
// renders as a flame), and the track is recycled when the root ends.
// Concurrent roots (worker-pool chunks, async decode futures) therefore
// land on separate tracks exactly while they overlap.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultTraceEvents is the default trace-buffer capacity. At ~80 bytes an
// event this bounds the buffer around 40 MB; past it events are dropped
// and counted rather than growing without bound.
const DefaultTraceEvents = 1 << 19

// Arg is one key/value attachment on a trace event.
type Arg struct {
	Key   string
	str   string
	num   int64
	isStr bool
}

// Int makes an integer-valued trace argument.
func Int(key string, v int64) Arg { return Arg{Key: key, num: v} }

// Str makes a string-valued trace argument.
func Str(key, v string) Arg { return Arg{Key: key, str: v, isStr: true} }

// event is one recorded trace event (timestamps in ns since the sink
// epoch; exported as microseconds, the trace_event unit).
type event struct {
	name string
	cat  string
	ph   byte // 'X', 'i', 'C'
	ts   int64
	dur  int64
	tid  int
	args []Arg
}

// traceBuf is the bounded, mutex-protected event log plus the track-id
// free list. One mutex covers both: appends are tens of nanoseconds, and
// only instrumented (measurement-mode) runs ever take it.
type traceBuf struct {
	mu      sync.Mutex
	cap     int
	events  []event
	dropped int64
	tids    []bool // tids[i] != false => track i+1 in use
}

// EnableTracing arms the sink's trace buffer. capEvents <= 0 selects
// DefaultTraceEvents. Calling it again resets the buffer. No-op on a nil
// sink; without it, Begin returns nil spans and costs one atomic load.
func (s *Sink) EnableTracing(capEvents int) {
	if s == nil {
		return
	}
	if capEvents <= 0 {
		capEvents = DefaultTraceEvents
	}
	s.trace.Store(&traceBuf{cap: capEvents})
}

// TracingEnabled reports whether the sink records trace events.
func (s *Sink) TracingEnabled() bool {
	return s != nil && s.trace.Load() != nil
}

// acquireTid hands out the lowest free track id (1-based); callers hold mu.
func (tb *traceBuf) acquireTid() int {
	for i, used := range tb.tids {
		if !used {
			tb.tids[i] = true
			return i + 1
		}
	}
	tb.tids = append(tb.tids, true)
	return len(tb.tids)
}

// releaseTid returns a track id to the free list; callers hold mu.
func (tb *traceBuf) releaseTid(tid int) {
	if tid >= 1 && tid <= len(tb.tids) {
		tb.tids[tid-1] = false
	}
}

// append records ev, counting instead of growing past the cap; callers
// hold mu.
func (tb *traceBuf) append(ev event) {
	if len(tb.events) >= tb.cap {
		tb.dropped++
		return
	}
	tb.events = append(tb.events, ev)
}

// Span is one in-flight traced operation. The nil Span is valid and
// no-ops, so call sites never branch on whether tracing is live.
type Span struct {
	s     *Sink
	tb    *traceBuf // nil when only an observer is listening
	ob    Observer  // nil when only tracing is live
	name  string
	cat   string
	start int64
	tid   int
	root  bool
	args  []Arg
}

// Begin opens a root span on its own track. Returns nil (valid, no-op)
// when the sink is nil and neither tracing nor an observer is armed.
func (s *Sink) Begin(cat, name string, args ...Arg) *Span {
	if s == nil {
		return nil
	}
	tb := s.trace.Load()
	ob := s.observer()
	if tb == nil && ob == nil {
		return nil
	}
	tid := 0
	if tb != nil {
		tb.mu.Lock()
		tid = tb.acquireTid()
		tb.mu.Unlock()
	}
	return &Span{s: s, tb: tb, ob: ob, name: name, cat: cat, start: s.now(), tid: tid, root: true, args: args}
}

// Begin opens a child span on the parent's track, so the pair renders as
// a flame. Children must end before their parent (stack discipline).
func (sp *Span) Begin(cat, name string, args ...Arg) *Span {
	if sp == nil {
		return nil
	}
	return &Span{s: sp.s, tb: sp.tb, ob: sp.ob, name: name, cat: cat, start: sp.s.now(), tid: sp.tid, args: args}
}

// End closes the span, recording one complete event. Root spans release
// their track. Safe on nil.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	end := sp.s.now()
	if sp.tb != nil {
		sp.tb.mu.Lock()
		sp.tb.append(event{name: sp.name, cat: sp.cat, ph: 'X', ts: sp.start, dur: end - sp.start, tid: sp.tid, args: sp.args})
		if sp.root {
			sp.tb.releaseTid(sp.tid)
		}
		sp.tb.mu.Unlock()
	}
	if sp.ob != nil {
		sp.ob.ObserveSpan(sp.cat, sp.name, sp.start, end-sp.start)
	}
}

// Complete records an already-finished operation as one complete event on
// a transient track: begin time t, duration time.Since(t). The codec uses
// this for encode/decode timing, where the duration is measured anyway
// for the latency histogram.
func (s *Sink) Complete(cat, name string, start time.Time, args ...Arg) {
	if s == nil {
		return
	}
	tb := s.trace.Load()
	ob := s.observer()
	if tb == nil && ob == nil {
		return
	}
	ts := s.since(start)
	dur := s.now() - ts
	if tb != nil {
		tb.mu.Lock()
		tid := tb.acquireTid()
		tb.append(event{name: name, cat: cat, ph: 'X', ts: ts, dur: dur, tid: tid, args: args})
		tb.releaseTid(tid)
		tb.mu.Unlock()
	}
	if ob != nil {
		ob.ObserveSpan(cat, name, ts, dur)
	}
}

// Instant records a point event (rendered as a flagpole in the viewer).
func (s *Sink) Instant(cat, name string, args ...Arg) {
	if s == nil {
		return
	}
	tb := s.trace.Load()
	ob := s.observer()
	if tb == nil && ob == nil {
		return
	}
	now := s.now()
	if tb != nil {
		tb.mu.Lock()
		tb.append(event{name: name, cat: cat, ph: 'i', ts: now, args: args})
		tb.mu.Unlock()
	}
	if ob != nil {
		ob.ObserveInstant(cat, name, now)
	}
}

// CounterEvent records a counter sample; Chrome renders successive samples
// of one name as a stacked area chart, one series per argument.
func (s *Sink) CounterEvent(name string, args ...Arg) {
	if s == nil {
		return
	}
	tb := s.trace.Load()
	if tb == nil {
		return
	}
	tb.mu.Lock()
	tb.append(event{name: name, ph: 'C', ts: s.now(), args: args})
	tb.mu.Unlock()
}

// TraceDropped returns how many events the bounded buffer discarded.
func (s *Sink) TraceDropped() int64 {
	if s == nil {
		return 0
	}
	tb := s.trace.Load()
	if tb == nil {
		return 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.dropped
}

// jsonEvent is the trace_event wire form. Timestamps and durations are
// microseconds (fractional, so ns precision survives).
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace exports the recorded events as Chrome trace_event JSON
// (object form, with displayTimeUnit), loadable in chrome://tracing and
// Perfetto. Events sort by timestamp; metadata events name the process
// and every used track. Export drains nothing — it snapshots, so a live
// run can be dumped repeatedly.
func (s *Sink) WriteTrace(w io.Writer) error {
	if s == nil {
		return nil
	}
	tb := s.trace.Load()
	if tb == nil {
		return fmt.Errorf("telemetry: tracing was not enabled")
	}
	tb.mu.Lock()
	events := append([]event(nil), tb.events...)
	dropped := tb.dropped
	tb.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool { return events[i].ts < events[j].ts })

	out := make([]jsonEvent, 0, len(events)+8)
	out = append(out, jsonEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "gist"},
	})
	maxTid := 0
	for _, ev := range events {
		if ev.tid > maxTid {
			maxTid = ev.tid
		}
	}
	for tid := 1; tid <= maxTid; tid++ {
		out = append(out, jsonEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": fmt.Sprintf("track-%d", tid)},
		})
	}
	for _, ev := range events {
		je := jsonEvent{
			Name: ev.name, Cat: ev.cat, Ph: string(ev.ph),
			TS: float64(ev.ts) / 1e3, PID: 1, TID: ev.tid,
		}
		if ev.ph == 'X' {
			dur := float64(ev.dur) / 1e3
			je.Dur = &dur
		}
		if ev.ph == 'i' {
			je.S = "g"
		}
		if len(ev.args) > 0 {
			je.Args = map[string]any{}
			for _, a := range ev.args {
				if a.isStr {
					je.Args[a.Key] = a.str
				} else {
					je.Args[a.Key] = a.num
				}
			}
		}
		out = append(out, je)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"otherData":       map[string]any{"droppedEvents": dropped},
		"traceEvents":     out,
	})
}
