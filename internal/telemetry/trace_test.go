package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// traceDoc mirrors the exported object form for test decoding.
type traceDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		DroppedEvents int64 `json:"droppedEvents"`
	} `json:"otherData"`
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func exportTrace(t *testing.T, s *Sink) *traceDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	return &doc
}

func TestWriteTraceShape(t *testing.T) {
	s := New()
	s.EnableTracing(0)

	root := s.Begin("train", "step", Int("step", 1))
	child := root.Begin("train", "forward")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	s.Instant("train", "fault", Str("node", "relu1"))
	s.CounterEvent("stash bytes", Int("raw", 100), Int("held", 25))
	s.Complete("codec", "encode.DPR", time.Now().Add(-time.Millisecond))

	doc := exportTrace(t, s)
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData.DroppedEvents != 0 {
		t.Fatalf("dropped %d", doc.OtherData.DroppedEvents)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
		if ev.PID != 1 {
			t.Fatalf("event %q pid %d, want 1", ev.Name, ev.PID)
		}
		// Every complete event must carry a duration — the paired-span
		// property: an X event cannot un-pair.
		if ev.Ph == "X" && ev.Dur == nil {
			t.Fatalf("complete event %q has no dur", ev.Name)
		}
		if ev.Ph == "X" && *ev.Dur < 0 {
			t.Fatalf("complete event %q negative dur %f", ev.Name, *ev.Dur)
		}
	}
	if counts["X"] != 3 || counts["i"] != 1 || counts["C"] != 1 {
		t.Fatalf("event mix %v, want 3 X / 1 i / 1 C", counts)
	}
	if counts["M"] == 0 {
		t.Fatal("missing metadata events")
	}

	// Nesting: the child span shares its root's track and lies inside it.
	var rootEv, childEv *struct {
		ts, end float64
		tid     int
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		e := &struct {
			ts, end float64
			tid     int
		}{ev.TS, ev.TS + *ev.Dur, ev.TID}
		switch ev.Name {
		case "step":
			rootEv = e
		case "forward":
			childEv = e
		}
	}
	if rootEv == nil || childEv == nil {
		t.Fatal("missing step/forward spans")
	}
	if childEv.tid != rootEv.tid {
		t.Fatalf("child on track %d, root on %d", childEv.tid, rootEv.tid)
	}
	if childEv.ts < rootEv.ts || childEv.end > rootEv.end {
		t.Fatalf("child [%f,%f] escapes root [%f,%f]",
			childEv.ts, childEv.end, rootEv.ts, rootEv.end)
	}
}

func TestTraceTrackReuse(t *testing.T) {
	s := New()
	s.EnableTracing(0)
	// Sequential roots must reuse track 1; concurrent roots must not share.
	a := s.Begin("t", "a")
	a.End()
	b := s.Begin("t", "b")
	c := s.Begin("t", "c") // overlaps b
	b.End()
	c.End()
	tids := map[string]int{}
	for _, ev := range exportTrace(t, s).TraceEvents {
		if ev.Ph == "X" {
			tids[ev.Name] = ev.TID
		}
	}
	if tids["a"] != 1 || tids["b"] != 1 {
		t.Fatalf("sequential roots a=%d b=%d, want both on track 1", tids["a"], tids["b"])
	}
	if tids["c"] == tids["b"] {
		t.Fatalf("concurrent roots share track %d", tids["c"])
	}
}

func TestTraceDropCap(t *testing.T) {
	s := New()
	s.EnableTracing(8)
	for i := 0; i < 20; i++ {
		s.Instant("t", fmt.Sprintf("e%d", i))
	}
	if got := s.TraceDropped(); got != 12 {
		t.Fatalf("dropped %d, want 12", got)
	}
	doc := exportTrace(t, s)
	if doc.OtherData.DroppedEvents != 12 {
		t.Fatalf("exported dropped %d", doc.OtherData.DroppedEvents)
	}
	var sb bytes.Buffer
	if err := s.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(sb.Bytes(), []byte("telemetry.trace.dropped 12")) {
		t.Fatalf("snapshot missing drop counter:\n%s", sb.String())
	}
}

func TestTraceDisabledBeginIsNil(t *testing.T) {
	s := New()
	if sp := s.Begin("t", "x"); sp != nil {
		t.Fatal("Begin must return nil with tracing off")
	}
	s.Instant("t", "x") // must not panic or record
	s.Complete("t", "x", time.Now())
	if err := s.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTrace must error when tracing was never enabled")
	}
}

// TestTraceConcurrent hammers every emitter from many goroutines; run under
// -race this pins the exporter's concurrency safety, and the decoded output
// must still be well-formed with every span paired (ph=X with dur) and
// every concurrent root on its own track at any instant.
func TestTraceConcurrent(t *testing.T) {
	s := New()
	s.EnableTracing(0)
	const workers, spansPer = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				root := s.Begin("worker", fmt.Sprintf("task-%d", w), Int("i", int64(i)))
				child := root.Begin("worker", "inner")
				s.Instant("worker", "tick")
				child.End()
				s.CounterEvent("load", Int("w", int64(w)))
				root.End()
			}
		}(w)
	}
	wg.Wait()

	doc := exportTrace(t, s)
	wantX := workers * spansPer * 2
	var gotX int
	type span struct{ start, end float64 }
	byTid := map[int][]span{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		gotX++
		if ev.Dur == nil {
			t.Fatalf("unpaired span %q", ev.Name)
		}
		if ev.Name != "inner" { // roots only: children share the root's track
			byTid[ev.TID] = append(byTid[ev.TID], span{ev.TS, ev.TS + *ev.Dur})
		}
	}
	if gotX != wantX {
		t.Fatalf("%d complete events, want %d", gotX, wantX)
	}
	// Root spans on one track never overlap (the free-list guarantees a
	// track is reused only after its root ended).
	for tid, spans := range byTid {
		for i := 0; i < len(spans); i++ {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.start < b.end && b.start < a.end {
					t.Fatalf("track %d: roots overlap [%f,%f] vs [%f,%f]",
						tid, a.start, a.end, b.start, b.end)
				}
			}
		}
	}
}
