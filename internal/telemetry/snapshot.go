package telemetry

// The text snapshot exporter: an expvar-style sorted dump of every
// instrument, plus derived sections — per-technique compression ratios
// (from the stash.<tech>.raw_bytes / .held_bytes counters the memory
// timeline maintains) and the tail of the memory timeline itself. One
// value per line, `kind name value...`, so shell tools and tests can grep
// a single metric without a parser.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteSnapshot writes the sink's current state as sorted text. No-op on
// a nil sink.
func (s *Sink) WriteSnapshot(w io.Writer) error {
	if s == nil {
		return nil
	}

	s.mu.Lock()
	counters := make(map[string]int64, len(s.counters))
	for name, c := range s.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(s.gauges))
	for name, g := range s.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(s.hists))
	for name, h := range s.hists {
		hists[name] = h
	}
	s.mu.Unlock()

	if _, err := fmt.Fprintf(w, "# gist telemetry snapshot (uptime %v)\n",
		time.Since(s.epoch).Round(time.Millisecond)); err != nil {
		return err
	}
	for _, name := range sortedKeys(counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %d\n", name, gauges[name]); err != nil {
			return err
		}
	}
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := hists[name]
		if _, err := fmt.Fprintf(w, "hist %s count %d sum %d mean %.1f p50 %d p99 %d max %d\n",
			name, h.Count(), h.Sum(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max()); err != nil {
			return err
		}
	}
	// With tracing armed, the bounded buffer's drop count is always shown
	// (zero included) so silent truncation at the cap cannot hide.
	if s.TracingEnabled() {
		if _, err := fmt.Fprintf(w, "counter telemetry.trace.dropped %d\n", s.TraceDropped()); err != nil {
			return err
		}
	}

	if err := s.writeRatios(w, counters); err != nil {
		return err
	}
	return s.writeMemTimeline(w)
}

// writeRatios derives per-technique compression ratios from the
// cumulative stash byte counters — the measured counterpart of the
// planner's EncodedBytes predictions (2x for DPR-FP16, up to 32x for
// binarized ReLU outputs).
func (s *Sink) writeRatios(w io.Writer, counters map[string]int64) error {
	type pair struct{ raw, held int64 }
	byTech := map[string]pair{}
	for name, v := range counters {
		if !strings.HasPrefix(name, "stash.") {
			continue
		}
		rest := strings.TrimPrefix(name, "stash.")
		switch {
		case strings.HasSuffix(rest, ".raw_bytes"):
			tech := strings.TrimSuffix(rest, ".raw_bytes")
			p := byTech[tech]
			p.raw = v
			byTech[tech] = p
		case strings.HasSuffix(rest, ".held_bytes"):
			tech := strings.TrimSuffix(rest, ".held_bytes")
			p := byTech[tech]
			p.held = v
			byTech[tech] = p
		}
	}
	if len(byTech) == 0 {
		return nil
	}
	techs := make([]string, 0, len(byTech))
	var totRaw, totHeld int64
	for tech := range byTech {
		techs = append(techs, tech)
	}
	sort.Strings(techs)
	if _, err := fmt.Fprintln(w, "# per-technique compression (cumulative over all samples)"); err != nil {
		return err
	}
	for _, tech := range techs {
		p := byTech[tech]
		totRaw += p.raw
		totHeld += p.held
		if p.held == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "ratio %s %.2f (raw %d B -> held %d B)\n",
			tech, float64(p.raw)/float64(p.held), p.raw, p.held); err != nil {
			return err
		}
	}
	if totHeld > 0 {
		if _, err := fmt.Fprintf(w, "ratio total %.2f (raw %d B -> held %d B)\n",
			float64(totRaw)/float64(totHeld), totRaw, totHeld); err != nil {
			return err
		}
	}
	return nil
}

// memTimelineTail is how many trailing samples the snapshot prints.
const memTimelineTail = 8

// writeMemTimeline prints the tail of the per-step memory timeline.
func (s *Sink) writeMemTimeline(w io.Writer) error {
	samples, total := s.MemSamples()
	if total == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# memory timeline (last %d of %d samples; peak raw %d B, peak held %d B)\n",
		min(memTimelineTail, len(samples)), total,
		s.Gauge("mem.peak_raw_bytes").Value(), s.Gauge("mem.peak_held_bytes").Value()); err != nil {
		return err
	}
	if len(samples) > memTimelineTail {
		samples = samples[len(samples)-memTimelineTail:]
	}
	for _, sm := range samples {
		line := fmt.Sprintf("mem step %d raw %d held %d", sm.Step, sm.RawBytes, sm.HeldBytes)
		for _, tb := range sm.ByTech {
			line += fmt.Sprintf(" %s %d", tb.Tech, tb.HeldBytes)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
