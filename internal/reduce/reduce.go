// Package reduce implements the deterministic gradient merge of the
// data-parallel replica engine. Floating-point addition is not associative,
// so "sum the shard gradients" is only reproducible if the summation order
// is pinned; this package pins it with a pairwise tree whose shape depends
// only on the number of shards — never on how many replicas produced them,
// how many pool workers execute the adds, or in what order those workers
// are scheduled. Shard s always meets shard s+stride at level log2(stride),
// so the merged value of every element is the same bit pattern at every
// replica count and worker count. Parallelism comes from chunking each
// pairwise add over disjoint element ranges on the shared worker pool,
// which cannot change any element's accumulation order.
package reduce

import (
	"errors"
	"fmt"

	"gist/internal/parallel"
)

// DefaultChunkElems is the per-task chunk size of the pairwise adds. It
// mirrors the codec's chunking: big enough to amortize scheduling, small
// enough that a few shards of a small model still fan out.
const DefaultChunkElems = 32 << 10

// ErrNoShards reports a merge of an empty shard set.
var ErrNoShards = errors.New("reduce: no shards to merge")

// Merger merges shard gradient vectors in a fixed pairwise tree order.
// Construct one per replica group and reuse it every step: the chunk
// worker closures are bound once, so the steady-state merge allocates
// nothing. A Merger is not safe for concurrent Merge calls; each group
// owns one.
type Merger struct {
	p     *parallel.Pool
	chunk int

	// Per-Merge state read by the bound chunk workers.
	shards  [][]float32
	stride  int
	nChunks int
	scale   float32

	pairFn  func(i int)
	scaleFn func(i int)
}

// NewMerger returns a merger that runs its chunked adds on the given pool
// (nil = serial) with the given chunk size (<=0 selects the default).
func NewMerger(p *parallel.Pool, chunkElems int) *Merger {
	if chunkElems <= 0 {
		chunkElems = DefaultChunkElems
	}
	m := &Merger{p: p, chunk: chunkElems}
	m.pairFn = m.addPairChunk
	m.scaleFn = m.scaleChunk
	return m
}

// Merge folds shards[1:] into shards[0] with the canonical tree order and
// then scales the result by scale (1/shardCount for a mean gradient; 1 is
// skipped). Every shard must have the same length. On return shards[0]
// holds the merged vector; the other shards hold partial sums and are dead
// — the caller recycles them. NaN and Inf values propagate through the
// adds exactly as a serial sum in tree order would propagate them.
func (m *Merger) Merge(shards [][]float32, scale float32) error {
	if len(shards) == 0 {
		return ErrNoShards
	}
	n := len(shards[0])
	for i, s := range shards {
		if len(s) != n {
			return fmt.Errorf("reduce: shard %d has %d elements, want %d", i, len(s), n)
		}
	}
	m.shards = shards
	m.nChunks = (n + m.chunk - 1) / m.chunk
	if m.nChunks == 0 {
		m.nChunks = 1
	}
	// Levels are sequential barriers; pairs within a level touch disjoint
	// destinations, so their chunks can run in any order on any worker.
	for stride := 1; stride < len(shards); stride *= 2 {
		m.stride = stride
		pairs := 0
		for i := 0; i+stride < len(shards); i += 2 * stride {
			pairs++
		}
		m.p.ForEach(pairs*m.nChunks, m.pairFn)
	}
	if scale != 1 {
		m.scale = scale
		m.p.ForEach(m.nChunks, m.scaleFn)
	}
	m.shards = nil
	return nil
}

// span returns chunk c's element range.
func (m *Merger) span(c int) (lo, hi int) {
	lo = c * m.chunk
	hi = lo + m.chunk
	if n := len(m.shards[0]); hi > n {
		hi = n
	}
	return lo, hi
}

// addPairChunk is one chunk of one pairwise add at the current stride.
func (m *Merger) addPairChunk(i int) {
	pair, c := i/m.nChunks, i%m.nChunks
	dst := m.shards[2*m.stride*pair]
	src := m.shards[2*m.stride*pair+m.stride]
	lo, hi := m.span(c)
	dst = dst[lo:hi]
	src = src[lo:hi]
	for k := range dst {
		dst[k] += src[k]
	}
}

// scaleChunk is one chunk of the final mean scaling on shards[0].
func (m *Merger) scaleChunk(c int) {
	lo, hi := m.span(c)
	dst := m.shards[0][lo:hi]
	for k := range dst {
		dst[k] *= m.scale
	}
}

// Tree is the convenience form of Merger for one-shot merges (tests, fuzz
// targets): it merges shards into shards[0] in the canonical tree order and
// scales the result.
func Tree(p *parallel.Pool, shards [][]float32, scale float32, chunkElems int) error {
	return NewMerger(p, chunkElems).Merge(shards, scale)
}
