package reduce

import (
	"math"
	"testing"

	"gist/internal/parallel"
	"gist/internal/tensor"
)

// refTree is the serial reference: the same stride-doubling pairwise tree,
// folded one element at a time. Merge must match it bit for bit at every
// pool size and chunk size.
func refTree(shards [][]float32, scale float32) []float32 {
	acc := make([][]float32, len(shards))
	for i, s := range shards {
		acc[i] = append([]float32(nil), s...)
	}
	for stride := 1; stride < len(acc); stride *= 2 {
		for i := 0; i+stride < len(acc); i += 2 * stride {
			for k := range acc[i] {
				acc[i][k] += acc[i+stride][k]
			}
		}
	}
	if scale != 1 {
		for k := range acc[0] {
			acc[0][k] *= scale
		}
	}
	return acc[0]
}

func randShards(t *testing.T, n, elems int, seed uint64) [][]float32 {
	t.Helper()
	rng := tensor.NewRNG(seed)
	shards := make([][]float32, n)
	for i := range shards {
		shards[i] = make([]float32, elems)
		for k := range shards[i] {
			shards[i][k] = rng.Float32()*6 - 3
		}
	}
	return shards
}

func cloneShards(shards [][]float32) [][]float32 {
	out := make([][]float32, len(shards))
	for i, s := range shards {
		out[i] = append([]float32(nil), s...)
	}
	return out
}

func bitsEqual(t *testing.T, got, want []float32, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for k := range got {
		if math.Float32bits(got[k]) != math.Float32bits(want[k]) {
			t.Fatalf("%s: element %d = %x (%g), want %x (%g)",
				label, k, math.Float32bits(got[k]), got[k], math.Float32bits(want[k]), want[k])
		}
	}
}

// TestMergeMatchesReference checks the merged bits against the serial
// reference across shard counts (including non-powers of two), pool sizes
// and chunk sizes — the determinism contract the replica engine builds on.
func TestMergeMatchesReference(t *testing.T) {
	pools := map[string]*parallel.Pool{
		"serial": nil,
		"p4":     parallel.NewPool(4),
	}
	for _, nShards := range []int{1, 2, 3, 4, 5, 7, 8} {
		shards := randShards(t, nShards, 1000, uint64(40+nShards))
		want := refTree(shards, 1/float32(nShards))
		for name, p := range pools {
			for _, chunk := range []int{0, 1, 7, 64, 100000} {
				work := cloneShards(shards)
				if err := Tree(p, work, 1/float32(nShards), chunk); err != nil {
					t.Fatalf("shards=%d pool=%s chunk=%d: %v", nShards, name, chunk, err)
				}
				bitsEqual(t, work[0], want, "merge")
			}
		}
	}
}

// TestMergerReuse checks a single Merger across repeated Merge calls with
// differing shard counts and lengths, as the replica group reuses it every
// step.
func TestMergerReuse(t *testing.T) {
	m := NewMerger(parallel.NewPool(3), 13)
	for i, nShards := range []int{4, 2, 6, 1} {
		elems := 50 + 37*i
		shards := randShards(t, nShards, elems, uint64(100+i))
		want := refTree(shards, 1)
		work := cloneShards(shards)
		if err := m.Merge(work, 1); err != nil {
			t.Fatalf("merge %d: %v", i, err)
		}
		bitsEqual(t, work[0], want, "reuse")
	}
}

// TestMergeSpecialValues checks NaN and Inf propagate exactly as the
// reference tree propagates them.
func TestMergeSpecialValues(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	shards := [][]float32{
		{1, nan, inf, -inf, 0},
		{2, 1, inf, inf, float32(math.Copysign(0, -1))},
		{3, 2, -inf, 1, 0},
	}
	want := refTree(shards, 0.5)
	work := cloneShards(shards)
	if err := Tree(parallel.NewPool(2), work, 0.5, 2); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, work[0], want, "special values")
}

func TestMergeErrors(t *testing.T) {
	m := NewMerger(nil, 0)
	if err := m.Merge(nil, 1); err != ErrNoShards {
		t.Fatalf("empty merge: got %v, want ErrNoShards", err)
	}
	if err := m.Merge([][]float32{{1, 2}, {3}}, 1); err == nil {
		t.Fatal("mismatched shard lengths: want error, got nil")
	}
	// Zero-length shards are legal and a no-op.
	if err := m.Merge([][]float32{{}, {}}, 0.5); err != nil {
		t.Fatalf("zero-length shards: %v", err)
	}
}

func TestMergeScaleOne(t *testing.T) {
	shards := [][]float32{{1.5, -2}, {0.25, 4}}
	want := refTree(shards, 1)
	if err := Tree(nil, shards, 1, 0); err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, shards[0], want, "scale-1")
}
