package reduce

import (
	"math"
	"testing"

	"gist/internal/parallel"
)

// FuzzReduceGrads feeds arbitrary bytes — reinterpreted as float32 words,
// so NaN, Inf and denormal payloads all occur — through the parallel merge
// and cross-checks it against the serial reference tree bit for bit. It
// also drives the error paths: a zero-shard merge must return ErrNoShards
// and mismatched shard lengths must error rather than panic or write out
// of bounds.
func FuzzReduceGrads(f *testing.F) {
	f.Add(uint8(1), uint8(4), []byte{})
	f.Add(uint8(3), uint8(7), []byte{0, 0, 0x80, 0x7f, 1, 2, 3, 4, 0, 0, 0xc0, 0xff})
	f.Add(uint8(8), uint8(1), []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0x80})
	f.Add(uint8(0), uint8(2), []byte{9, 9, 9, 9})

	pool := parallel.NewPool(4)
	f.Fuzz(func(t *testing.T, nShardsRaw, chunkRaw uint8, data []byte) {
		nShards := int(nShardsRaw % 9) // 0..8
		chunk := int(chunkRaw%16) + 1

		words := len(data) / 4
		if nShards == 0 {
			if err := Tree(pool, nil, 1, chunk); err != ErrNoShards {
				t.Fatalf("zero-replica merge: got %v, want ErrNoShards", err)
			}
			return
		}
		elems := words / nShards
		shards := make([][]float32, nShards)
		off := 0
		for i := range shards {
			shards[i] = make([]float32, elems)
			for k := range shards[i] {
				shards[i][k] = math.Float32frombits(
					uint32(data[off]) | uint32(data[off+1])<<8 |
						uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
				off += 4
			}
		}
		scale := 1 / float32(nShards)
		want := refTree(shards, scale)

		work := cloneShards(shards)
		if err := Tree(pool, work, scale, chunk); err != nil {
			t.Fatalf("merge: %v", err)
		}
		for k := range want {
			if math.Float32bits(work[0][k]) != math.Float32bits(want[k]) {
				t.Fatalf("element %d: got %x, want %x",
					k, math.Float32bits(work[0][k]), math.Float32bits(want[k]))
			}
		}

		// Mismatched shard lengths must be rejected before any write.
		if elems > 0 && nShards > 1 {
			bad := cloneShards(shards)
			bad[nShards-1] = bad[nShards-1][:elems-1]
			if err := Tree(pool, bad, scale, chunk); err == nil {
				t.Fatal("mismatched shard lengths: want error, got nil")
			}
		}
	})
}
