package swap

// Distributed-training contention model. The paper's third argument
// against swap-based schemes: PCIe "is a shared critical resource in
// distributed DNN training", because data-parallel workers exchange weight
// gradients over the same links the swapping scheme saturates with feature
// maps. This model quantifies that interaction for ring-allreduce data
// parallelism.

import (
	"gist/internal/costmodel"
	"gist/internal/graph"
)

// AllReduceTime returns the PCIe time of a ring all-reduce of the graph's
// weight gradients across n workers: each worker sends and receives
// 2*(n-1)/n of the gradient bytes.
func AllReduceTime(d costmodel.Device, g *graph.Graph, workers int) float64 {
	if workers <= 1 {
		return 0
	}
	bytes := float64(g.WeightBytes())
	volume := 2 * float64(workers-1) / float64(workers) * bytes
	return volume / float64(d.PCIeBandwidth)
}

// DistributedStepTime models one data-parallel step for a worker whose
// local training uses the given memory scheme. The gradient all-reduce
// overlaps with the backward pass in the baseline and under Gist (the
// link is otherwise idle), but a swapping scheme's feature-map traffic
// owns the link during the step, so the all-reduce serializes behind it.
type DistributedScheme int

const (
	// SchemeBaseline keeps everything in device memory (may not fit).
	SchemeBaseline DistributedScheme = iota
	// SchemeVDNN swaps stashes with prefetching.
	SchemeVDNN
	// SchemeGist uses the in-device encodings (modeled at the paper's ~4%
	// overhead via the cost model's encoding analysis; callers pass the
	// already-computed local step time).
	SchemeGist
)

// DistributedStepTime combines a worker's local step time with the
// all-reduce. localStep is the scheme's single-GPU step time; swapBusy is
// the PCIe time the scheme itself consumes per step (zero for baseline
// and Gist).
func DistributedStepTime(d costmodel.Device, g *graph.Graph, workers int,
	localStep, swapBusy float64) float64 {
	ar := AllReduceTime(d, g, workers)
	if swapBusy == 0 {
		// The all-reduce hides behind the backward pass when the link is
		// free; only the excess over half the step (the backward span)
		// shows up.
		hidden := localStep / 2
		if ar <= hidden {
			return localStep
		}
		return localStep + (ar - hidden)
	}
	// The link is busy with feature maps for swapBusy seconds; gradient
	// exchange queues behind it. Whatever the link cannot hide extends
	// the step.
	linkDemand := swapBusy + ar
	hidden := localStep / 2
	if linkDemand <= hidden {
		return localStep
	}
	return localStep + (linkDemand - hidden)
}

// SwapLinkBusyTime returns the PCIe seconds per step a swapping scheme
// consumes moving stashes (both directions).
func SwapLinkBusyTime(d costmodel.Device, g *graph.Graph, tl *graph.Timeline) float64 {
	var t float64
	for _, s := range stashes(g, tl) {
		t += 2 * d.TransferTime(s.bytes)
	}
	return t
}
