package swap

import (
	"testing"

	"gist/internal/costmodel"
	"gist/internal/graph"
	"gist/internal/networks"
)

func TestNaiveWorseThanVDNNWorseThanBaseline(t *testing.T) {
	d := costmodel.TitanX()
	for _, spec := range []struct {
		name  string
		build func(int) *graph.Graph
	}{
		{"AlexNet", networks.AlexNet},
		{"VGG16", networks.VGG16},
		{"Inception", networks.Inception},
	} {
		g := spec.build(64)
		naive, vdnn := Overheads(d, g)
		if naive <= 0 || vdnn < 0 {
			t.Fatalf("%s: overheads must be nonnegative: naive %v vdnn %v", spec.name, naive, vdnn)
		}
		if vdnn >= naive {
			t.Errorf("%s: vDNN (%v) must beat naive (%v)", spec.name, vdnn, naive)
		}
	}
}

func TestOverheadMagnitudesMatchPaperShape(t *testing.T) {
	// The paper reports naive ~30% average, vDNN ~15% average with a max
	// of 27% (Inception). We require the same ordering and rough bands:
	// naive in [10%, 100%], vDNN in [2%, 60%], on the suite average.
	d := costmodel.TitanX()
	var sumN, sumV float64
	n := 0
	for _, spec := range networks.Suite() {
		g := spec.Build(64)
		naive, vdnn := Overheads(d, g)
		sumN += naive
		sumV += vdnn
		n++
	}
	avgN, avgV := sumN/float64(n), sumV/float64(n)
	if avgN < 0.10 || avgN > 1.0 {
		t.Errorf("avg naive overhead = %.1f%%, want 10-100%%", avgN*100)
	}
	if avgV < 0.02 || avgV > 0.6 {
		t.Errorf("avg vDNN overhead = %.1f%%, want 2-60%%", avgV*100)
	}
	if avgV >= avgN {
		t.Errorf("vDNN avg (%v) must beat naive avg (%v)", avgV, avgN)
	}
}

func TestVDNNStallsOnTransferHeavyGraph(t *testing.T) {
	// With a bandwidth-starved link, even vDNN must show real overhead:
	// the transfers cannot hide behind compute.
	d := costmodel.TitanX()
	d.PCIeBandwidth = 1e9 // strangle the link
	g := networks.VGG16(64)
	_, vdnn := Overheads(d, g)
	if vdnn < 0.5 {
		t.Errorf("vDNN on a 1 GB/s link should be heavily stalled, got %v", vdnn)
	}
}

func TestVDNNNearZeroWithInfiniteLink(t *testing.T) {
	d := costmodel.TitanX()
	d.PCIeBandwidth = 1e15 // effectively free transfers
	g := networks.AlexNet(64)
	naive, vdnn := Overheads(d, g)
	if vdnn > 0.01 {
		t.Errorf("vDNN with free transfers should have ~0 overhead, got %v", vdnn)
	}
	if naive > 0.01 {
		t.Errorf("even naive should be ~0 with free transfers, got %v", naive)
	}
}

func TestStashCollection(t *testing.T) {
	g := networks.VGG16(4)
	tl := graph.BuildTimeline(g)
	st := stashes(g, tl)
	if len(st) == 0 {
		t.Fatal("VGG16 must have stashes")
	}
	for _, s := range st {
		if s.bytes <= 0 {
			t.Fatalf("stash %s has %d bytes", s.node.Name, s.bytes)
		}
		if s.firstBwdUse >= 0 && s.firstBwdUse <= s.lastFwdUse {
			t.Fatalf("stash %s backward use %d before forward use %d",
				s.node.Name, s.firstBwdUse, s.lastFwdUse)
		}
	}
}

func TestCDMABeatsVDNN(t *testing.T) {
	// Compressing PCIe traffic can only shrink transfers: CDMA must be at
	// least as fast as vDNN on every network, and strictly faster where
	// sparse ReLU stashes dominate the traffic.
	d := costmodel.TitanX()
	strict := false
	for _, spec := range networks.Suite() {
		g := spec.Build(64)
		tl := graph.BuildTimeline(g)
		vdnn := VDNNStepTime(d, g, tl)
		cdma := CDMAStepTime(d, g, tl, nil)
		if cdma > vdnn+1e-9 {
			t.Errorf("%s: CDMA (%v) slower than vDNN (%v)", spec.Name, cdma, vdnn)
		}
		if cdma < vdnn-1e-9 {
			strict = true
		}
	}
	if !strict {
		t.Error("CDMA never improved on vDNN")
	}
}

func TestCDMADenseDataNoBenefit(t *testing.T) {
	// With a dense sparsity model, CDMA degenerates to vDNN exactly.
	d := costmodel.TitanX()
	g := networks.AlexNet(16)
	tl := graph.BuildTimeline(g)
	dense := func(*graph.Node) float64 { return 0 }
	if CDMAStepTime(d, g, tl, dense) != VDNNStepTime(d, g, tl) {
		t.Error("dense CDMA must equal vDNN")
	}
}

func TestAllReduceTime(t *testing.T) {
	d := costmodel.TitanX()
	g := networks.VGG16(4)
	if AllReduceTime(d, g, 1) != 0 {
		t.Error("single worker needs no all-reduce")
	}
	t2 := AllReduceTime(d, g, 2)
	t8 := AllReduceTime(d, g, 8)
	if t2 <= 0 || t8 <= t2 {
		t.Errorf("ring all-reduce volume grows with workers: %v vs %v", t2, t8)
	}
	// Ring volume approaches 2x the gradient bytes.
	limit := 2 * float64(g.WeightBytes()) / float64(d.PCIeBandwidth)
	if t8 >= limit {
		t.Errorf("t8 %v should be below the 2x limit %v", t8, limit)
	}
}

func TestDistributedStepHiding(t *testing.T) {
	d := costmodel.TitanX()
	g := networks.AlexNet(16)
	// A tiny all-reduce hides entirely behind the backward pass.
	if got := DistributedStepTime(d, g, 2, 1.0, 0); got != 1.0 {
		t.Errorf("hidden all-reduce should not extend the step: %v", got)
	}
	// A busy link pushes the exchange into the open.
	busy := DistributedStepTime(d, g, 2, 1.0, 10.0)
	if busy <= 1.0 {
		t.Errorf("saturated link must extend the step: %v", busy)
	}
}
