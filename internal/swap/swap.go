// Package swap implements the prior-work baselines the paper compares Gist
// against in Figure 15: naive CPU-GPU swapping of stashed feature maps, and
// vDNN-style smart prefetching that overlaps PCIe transfers with kernel
// execution. Both are modeled as discrete-event simulations over the
// graph's forward/backward timeline using the cost model's per-layer times
// and the device's PCIe link.
//
// Naive swapping serializes every offload after the producing layer and
// every fetch before the consuming layer. vDNN instead enqueues offloads as
// soon as a stash's last forward use completes and prefetches each stash in
// reverse order ahead of its backward use; compute only stalls when the DMA
// engine falls behind — exactly the mechanism that leaves vDNN with
// overhead on transfer-heavy networks even with perfect prefetching.
package swap

import (
	"gist/internal/costmodel"
	"gist/internal/encoding"
	"gist/internal/graph"
	"gist/internal/sparse"
)

// stash describes one feature map that must round-trip over PCIe.
type stash struct {
	node  *graph.Node
	bytes int64
	// lastFwdUse is the forward step after which the offload may start.
	lastFwdUse int
	// firstBwdUse is the backward step that needs the data back.
	firstBwdUse int
}

// stashes lists the feature maps the swap policy offloads — every
// baseline-stashed feature map, the working set both swap schemes must
// evict to realize their memory savings — in forward order.
func stashes(g *graph.Graph, tl *graph.Timeline) []stash {
	var out []stash
	for _, n := range g.Nodes {
		if !graph.OutputStashed(n) {
			continue
		}
		out = append(out, stash{
			node:        n,
			bytes:       n.OutShape.Bytes(),
			lastFwdUse:  graph.LastForwardUse(tl, n),
			firstBwdUse: graph.FirstBackwardUse(tl, n),
		})
	}
	return out
}

// stepTimes returns the modeled execution time of every timeline step.
func stepTimes(d costmodel.Device, tl *graph.Timeline) []float64 {
	ts := make([]float64, tl.Len())
	for _, s := range tl.Steps {
		if s.Phase == graph.Forward {
			ts[s.T] = d.ForwardTime(s.Node)
		} else {
			ts[s.T] = d.BackwardTime(s.Node)
		}
	}
	return ts
}

// NaiveStepTime models synchronous swapping: compute blocks for every
// offload after the producing step and for every fetch before the consuming
// step. Total time is the baseline step time plus the full two-way transfer
// time of all stashes.
func NaiveStepTime(d costmodel.Device, g *graph.Graph, tl *graph.Timeline) float64 {
	t := d.StepTime(g)
	for _, s := range stashes(g, tl) {
		t += 2 * d.TransferTime(s.bytes)
	}
	return t
}

// VDNNStepTime models vDNN: a single DMA engine runs transfers in parallel
// with compute. Offloads are enqueued the moment a stash's last forward use
// retires; prefetches are enqueued during the backward pass, earliest-
// needed first, and a backward step stalls until its stash has landed.
// Within each pass, the finish time is the maximum of the compute and DMA
// timelines, with per-step stalls where a needed prefetch is late.
func VDNNStepTime(d costmodel.Device, g *graph.Graph, tl *graph.Timeline) float64 {
	st := stashes(g, tl)
	times := stepTimes(d, tl)
	l := len(g.Nodes)

	// Forward pass: compute advances step by step; each stash's offload is
	// queued on the DMA engine when its last forward use completes. The
	// forward pass is done when both compute and DMA finish (vDNN frees
	// the FP32 buffer only after offload, so the pass cannot retire early).
	offloadAt := map[int][]int64{} // step -> bytes list
	for _, s := range st {
		offloadAt[s.lastFwdUse] = append(offloadAt[s.lastFwdUse], s.bytes)
	}
	var compute, dma float64
	for step := 0; step < l; step++ {
		compute += times[step]
		for _, b := range offloadAt[step] {
			start := max(compute, dma)
			dma = start + d.TransferTime(b)
		}
	}
	fwdEnd := max(compute, dma)

	// Backward pass: prefetches issue in order of first backward use. The
	// DMA engine begins as the backward pass begins; each backward step
	// that consumes a stash waits for that stash's arrival.
	type fetch struct {
		step int
		done float64
	}
	order := make([]stash, len(st))
	copy(order, st)
	// Earliest backward use first = reverse forward order; stashes were
	// collected in forward order, so iterate backwards.
	var fetches []fetch
	dma = fwdEnd
	for i := len(order) - 1; i >= 0; i-- {
		s := order[i]
		if s.firstBwdUse < 0 {
			continue
		}
		dma += d.TransferTime(s.bytes)
		fetches = append(fetches, fetch{step: s.firstBwdUse, done: dma})
	}
	arrival := map[int]float64{}
	for _, f := range fetches {
		if f.done > arrival[f.step] {
			arrival[f.step] = f.done
		}
	}

	now := fwdEnd
	for step := l; step < tl.Len(); step++ {
		if a, ok := arrival[step]; ok && a > now {
			now = a // stall for the prefetch
		}
		now += times[step]
	}
	return now
}

// Overheads returns the modeled slowdown of naive swapping and vDNN
// relative to the in-memory baseline for one network.
func Overheads(d costmodel.Device, g *graph.Graph) (naive, vdnn float64) {
	tl := graph.BuildTimeline(g)
	base := d.StepTime(g)
	naive = costmodel.Overhead(base, NaiveStepTime(d, g, tl))
	vdnn = costmodel.Overhead(base, VDNNStepTime(d, g, tl))
	return naive, vdnn
}

// CDMAStepTime models the CDMA follow-up to vDNN (cited in the paper's
// related work): the same offload/prefetch schedule, but feature maps are
// compressed before crossing PCIe, shrinking the transfers by the stash's
// sparsity (narrow-CSR size for sparse ReLU outputs, raw bytes otherwise).
// sparsity predicts each node's zero fraction; nil uses the encoding
// package's default model.
func CDMAStepTime(d costmodel.Device, g *graph.Graph, tl *graph.Timeline,
	sparsity func(n *graph.Node) float64) float64 {
	if sparsity == nil {
		sparsity = encoding.DefaultSparsity
	}
	st := stashes(g, tl)
	times := stepTimes(d, tl)
	l := len(g.Nodes)

	compressed := func(s stash) int64 {
		sp := sparsity(s.node)
		if sp <= 0 {
			return s.bytes
		}
		c := sparse.CSRBytesModel(int(s.bytes/4), sp)
		if c < s.bytes {
			return c
		}
		return s.bytes
	}

	offloadAt := map[int][]int64{}
	for _, s := range st {
		offloadAt[s.lastFwdUse] = append(offloadAt[s.lastFwdUse], compressed(s))
	}
	var compute, dma float64
	for step := 0; step < l; step++ {
		compute += times[step]
		for _, b := range offloadAt[step] {
			start := max(compute, dma)
			dma = start + d.TransferTime(b)
		}
	}
	fwdEnd := max(compute, dma)

	dma = fwdEnd
	arrival := map[int]float64{}
	for i := len(st) - 1; i >= 0; i-- {
		s := st[i]
		if s.firstBwdUse < 0 {
			continue
		}
		dma += d.TransferTime(compressed(s))
		if dma > arrival[s.firstBwdUse] {
			arrival[s.firstBwdUse] = dma
		}
	}
	now := fwdEnd
	for step := l; step < tl.Len(); step++ {
		if a, ok := arrival[step]; ok && a > now {
			now = a
		}
		now += times[step]
	}
	return now
}
