package memplan

import (
	"testing"

	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/liveness"
)

// Table-driven edge cases for PoolWarmSet over degenerate and minimal
// graphs: the prewarm path runs at every trainer construction, so the
// planner must hand the pool something sensible (often: nothing) for
// graphs with no steps, no per-step tensors, or fmaps that die the moment
// they are consumed.
func TestPoolWarmSetEdgeCases(t *testing.T) {
	singleNode := func() *graph.Graph {
		g := graph.New()
		g.MustAdd("input", layers.NewInput(2, 3, 8, 8))
		return g
	}
	// input -> relu -> avgpool -> loss-free tail: every fmap's backward
	// needs are satisfied without stashing anything beyond the ReLU output.
	immediate := func() *graph.Graph {
		g := graph.New()
		in := g.MustAdd("input", layers.NewInput(2, 3, 8, 8))
		r := g.MustAdd("relu", layers.NewReLU(), in)
		g.MustAdd("pool", layers.NewAvgPool(2, 2, 0), r)
		return g
	}

	cases := []struct {
		name  string
		build func() *graph.Graph
		// wantCounts is the exact multiset of warm element counts, in
		// liveness emission order.
		wantCounts []int
	}{
		{
			name:       "empty graph",
			build:      graph.New,
			wantCounts: nil,
		},
		{
			// A lone input has no gradient map and its output is never
			// consumed: one immediate fmap is all a step would touch.
			name:       "single input node",
			build:      singleNode,
			wantCounts: []int{2 * 3 * 8 * 8},
		},
		{
			// relu.out is an immediate fmap here: AvgPool's backward needs
			// neither its input nor its output, so nothing is stashed and
			// every buffer dies at its consumer's forward step.
			name:  "immediately consumed stashes",
			build: immediate,
			wantCounts: []int{
				2 * 3 * 8 * 8, // input.out
				2 * 3 * 8 * 8, // relu.out
				2 * 3 * 8 * 8, // relu.grad
				2 * 3 * 4 * 4, // pool.out
				2 * 3 * 4 * 4, // pool.grad
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := c.build()
			bufs := liveness.Analyze(g, graph.BuildTimeline(g), liveness.Options{})
			got := PoolWarmSet(bufs)
			if len(got) != len(c.wantCounts) {
				t.Fatalf("warm set %v, want %v", got, c.wantCounts)
			}
			for i := range got {
				if got[i] != c.wantCounts[i] {
					t.Fatalf("warm set %v, want %v", got, c.wantCounts)
				}
			}
		})
	}

	// Nil and empty buffer lists short-circuit to an empty warm set.
	if got := PoolWarmSet(nil); len(got) != 0 {
		t.Fatalf("PoolWarmSet(nil) = %v", got)
	}
	if got := PoolWarmSet([]*liveness.Buffer{}); len(got) != 0 {
		t.Fatalf("PoolWarmSet(empty) = %v", got)
	}

	// Non-fmap classes and zero-byte buffers are filtered out.
	mixed := []*liveness.Buffer{
		{Name: "w", Class: graph.ClassWeights, Bytes: 400},
		{Name: "z", Class: graph.ClassImmediateFmap, Bytes: 0},
		{Name: "enc", Class: graph.ClassEncoded, Bytes: 64},
		{Name: "g", Class: graph.ClassGradientMap, Bytes: 40},
	}
	got := PoolWarmSet(mixed)
	if len(got) != 1 || got[0] != 10 {
		t.Fatalf("filtered warm set = %v, want [10]", got)
	}
}
