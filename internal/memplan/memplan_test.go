package memplan

import (
	"testing"
	"testing/quick"

	"gist/internal/encoding"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/liveness"
	"gist/internal/tensor"
)

func buf(name string, bytes int64, start, end int) *liveness.Buffer {
	return &liveness.Buffer{Name: name, Bytes: bytes, Start: start, End: end}
}

func TestPaperFigure7Example(t *testing.T) {
	// The paper's worked example (Figure 7a): stashed X (10 MB, long
	// lifetime) plus immediately consumed A, B, C, D. The allocator forms
	// 2 groups totalling 18 MB: 10 for X, 8 for the immediates.
	const mb = 1 << 20
	x := buf("X", 10*mb, 0, 11) // stashed across the whole timeline
	a := buf("A", 8*mb, 2, 3)   // immediately consumed, pairwise disjoint
	b := buf("B", 6*mb, 4, 5)
	c := buf("C", 7*mb, 6, 7)
	d := buf("D", 5*mb, 8, 9)
	p := PlanStatic([]*liveness.Buffer{x, a, b, c, d})
	if p.TotalBytes != 18*mb {
		t.Fatalf("baseline total = %d MB, want 18", p.TotalBytes/mb)
	}
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(p.Groups))
	}
	if _, _, ok := p.Validate(); !ok {
		t.Fatal("plan has overlapping buffers in a group")
	}

	// Figure 7b: SSDC splits X into an immediate FP32 (short), a 2 MB
	// encoded stash (long) and a decoded FP32 (short, at the backward
	// use). The immediates now all share one 10 MB region and the encoded
	// stash needs its own 2 MB: total 12 MB, MFR 1.5x.
	xFwd := buf("X.out", 10*mb, 0, 1)
	xEnc := buf("X.enc", 2*mb, 1, 10)
	xDec := buf("X.dec", 10*mb, 10, 11)
	p2 := PlanStatic([]*liveness.Buffer{xFwd, xEnc, xDec, a, b, c, d})
	if p2.TotalBytes != 12*mb {
		t.Fatalf("encoded total = %d MB, want 12", p2.TotalBytes/mb)
	}
	if MFR(p.TotalBytes, p2.TotalBytes) != 1.5 {
		t.Fatalf("MFR = %v, want 1.5", MFR(p.TotalBytes, p2.TotalBytes))
	}
}

func TestNoSharePlacement(t *testing.T) {
	// A NoShare stash gets its own region; disjoint buffers must not join.
	x := buf("stash", 100, 0, 3)
	x.NoShare = true
	y := buf("other", 50, 5, 6)
	p := PlanStatic([]*liveness.Buffer{x, y})
	if len(p.Groups) != 2 || p.TotalBytes != 150 {
		t.Fatalf("NoShare violated: %d groups, %d bytes", len(p.Groups), p.TotalBytes)
	}
}

func TestZeroByteBuffersSkipped(t *testing.T) {
	p := PlanStatic([]*liveness.Buffer{buf("z", 0, 0, 1), buf("a", 10, 0, 1)})
	if p.TotalBytes != 10 || len(p.Groups) != 1 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestPlanDynamicPeak(t *testing.T) {
	// Three buffers: two overlap, the third is disjoint and larger alone
	// but smaller than the overlapping pair.
	bufs := []*liveness.Buffer{
		buf("a", 10, 0, 2),
		buf("b", 8, 1, 3),
		buf("c", 15, 5, 6),
	}
	if got := PlanDynamic(bufs); got != 18 {
		t.Fatalf("dynamic peak = %d, want 18", got)
	}
}

func TestPlanDynamicAdjacentNoOverlap(t *testing.T) {
	// A buffer ending at step 4 and one starting at step 5 never coexist.
	bufs := []*liveness.Buffer{buf("a", 10, 0, 4), buf("b", 10, 5, 9)}
	if got := PlanDynamic(bufs); got != 10 {
		t.Fatalf("dynamic peak = %d, want 10", got)
	}
}

func TestDynamicNeverExceedsStatic(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 3 + r.Intn(40)
		bufs := make([]*liveness.Buffer, n)
		for i := range bufs {
			s := r.Intn(50)
			e := s + r.Intn(30)
			bufs[i] = buf("b", int64(1+r.Intn(1000)), s, e)
		}
		static := PlanStatic(bufs)
		if _, _, ok := static.Validate(); !ok {
			return false
		}
		return PlanDynamic(bufs) <= static.TotalBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStaticNeverExceedsSumOfBuffers(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 1 + r.Intn(30)
		bufs := make([]*liveness.Buffer, n)
		var sum int64
		for i := range bufs {
			s := r.Intn(20)
			e := s + r.Intn(20)
			bufs[i] = buf("b", int64(1+r.Intn(100)), s, e)
			sum += bufs[i].Bytes
		}
		p := PlanStatic(bufs)
		return p.TotalBytes <= sum && p.TotalBytes > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestByClassSumsToTotal(t *testing.T) {
	a := buf("a", 10, 0, 2)
	a.Class = graph.ClassStashedFmap
	b := buf("b", 8, 3, 4)
	b.Class = graph.ClassGradientMap
	p := PlanStatic([]*liveness.Buffer{a, b})
	var sum int64
	for _, v := range p.ByClass {
		sum += v
	}
	if sum != p.TotalBytes {
		t.Fatalf("class sum %d != total %d", sum, p.TotalBytes)
	}
	// a and b share one group (disjoint): attributed to the larger (a).
	if p.ByClass[graph.ClassStashedFmap] != 10 || p.ByClass[graph.ClassGradientMap] != 0 {
		t.Fatalf("attribution = %v", p.ByClass)
	}
}

func TestMFRZeroDenominator(t *testing.T) {
	if MFR(100, 0) != 0 {
		t.Fatal("MFR with zero encoded footprint should be 0")
	}
}

func TestEndToEndGistReducesFootprint(t *testing.T) {
	// The headline property on a realistic block: Gist lossless+lossy
	// must strictly reduce the statically planned footprint.
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(8, 3, 32, 32))
	prev := in
	for i, ch := range []int{16, 16, 32, 32} {
		conv := g.MustAdd("", layers.NewConv2D(ch, 3, 1, 1), prev)
		relu := g.MustAdd("", layers.NewReLU(), conv)
		if i%2 == 1 {
			prev = g.MustAdd("", layers.NewMaxPool(2, 2, 0), relu)
		} else {
			prev = relu
		}
	}
	fc := g.MustAdd("fc", layers.NewFC(10), prev)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	tl := graph.BuildTimeline(g)

	base := PlanStatic(liveness.Analyze(g, tl, liveness.Options{}))
	if _, _, ok := base.Validate(); !ok {
		t.Fatal("baseline plan invalid")
	}

	a := encoding.Analyze(g, encoding.LossyLossless(floatenc.FP8))
	gist := PlanStatic(liveness.Analyze(g, tl, liveness.Options{Analysis: a}))
	if _, _, ok := gist.Validate(); !ok {
		t.Fatal("gist plan invalid")
	}
	mfr := MFR(base.TotalBytes, gist.TotalBytes)
	if mfr <= 1.1 {
		t.Fatalf("Gist MFR = %v, want > 1.1", mfr)
	}
	// Dynamic allocation under Gist must also beat the static baseline.
	dyn := PlanDynamic(liveness.Analyze(g, tl, liveness.Options{Analysis: a}))
	if dyn > gist.TotalBytes {
		t.Fatalf("dynamic %d should not exceed static %d", dyn, gist.TotalBytes)
	}
}

func TestSortingHeuristicWinsOnAverage(t *testing.T) {
	// Greedy first-fit is not formally dominant under any ordering, so
	// size-sorting can occasionally lose to insertion order on adversarial
	// sets — but it must win decisively in aggregate, which is exactly the
	// claim behind CNTK's heuristic.
	var sortedTotal, unsortedTotal int64
	wins, losses := 0, 0
	for seed := uint64(1); seed <= 300; seed++ {
		r := tensor.NewRNG(seed)
		n := 3 + r.Intn(40)
		bufs := make([]*liveness.Buffer, n)
		for i := range bufs {
			s := r.Intn(40)
			e := s + r.Intn(25)
			bufs[i] = buf("b", int64(1+r.Intn(1000)), s, e)
		}
		sorted := PlanStatic(bufs)
		unsorted := PlanStaticUnsorted(bufs)
		if _, _, ok := unsorted.Validate(); !ok {
			t.Fatal("unsorted plan invalid")
		}
		sortedTotal += sorted.TotalBytes
		unsortedTotal += unsorted.TotalBytes
		switch {
		case sorted.TotalBytes < unsorted.TotalBytes:
			wins++
		case sorted.TotalBytes > unsorted.TotalBytes:
			losses++
		}
	}
	if sortedTotal >= unsortedTotal {
		t.Fatalf("size sort should reduce aggregate footprint: %d vs %d",
			sortedTotal, unsortedTotal)
	}
	if wins < 5*losses {
		t.Fatalf("size sort should win decisively: %d wins, %d losses", wins, losses)
	}
}

func TestSizeSortingMattersOnRealNetwork(t *testing.T) {
	// The ablation's point: on a real network's buffer set, the size sort
	// never loses to insertion order.
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(8, 3, 32, 32))
	prev := in
	for i, ch := range []int{16, 32, 64} {
		conv := g.MustAdd("", layers.NewConv2D(ch, 3, 1, 1), prev)
		relu := g.MustAdd("", layers.NewReLU(), conv)
		prev = g.MustAdd("", layers.NewMaxPool(2, 2, 0), relu)
		_ = i
	}
	fc := g.MustAdd("fc", layers.NewFC(10), prev)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	tl := graph.BuildTimeline(g)
	bufs := liveness.Analyze(g, tl, liveness.Options{})
	sorted := PlanStatic(bufs)
	unsorted := PlanStaticUnsorted(bufs)
	if sorted.TotalBytes > unsorted.TotalBytes {
		t.Fatalf("sorted %d should not exceed unsorted %d", sorted.TotalBytes, unsorted.TotalBytes)
	}
}
