// Package memplan implements the memory allocation strategies the paper
// evaluates: the CNTK-style static allocator that shares one region among
// buffers whose lifetimes do not overlap (Section IV-C), and a dynamic
// allocator model that allocates each buffer exactly for its lifetime and
// reports the peak (Section V-H). Gist's encodings shorten the lifetimes of
// FP32 stashed feature maps, which is precisely what creates the additional
// sharing opportunities both allocators exploit.
package memplan

import (
	"sort"
	"strings"

	"gist/internal/encoding"
	"gist/internal/graph"
	"gist/internal/liveness"
	"gist/internal/telemetry"
)

// Group is one shared memory region of the static plan: a set of buffers
// with pairwise disjoint lifetimes. Its size is the largest member's size.
type Group struct {
	Buffers []*liveness.Buffer
	Bytes   int64
}

// dominantClass returns the class of the group's largest buffer, which is
// how a shared region is attributed in breakdown reports.
func (g *Group) dominantClass() graph.BufferClass {
	best := g.Buffers[0]
	for _, b := range g.Buffers[1:] {
		if b.Bytes > best.Bytes {
			best = b
		}
	}
	return best.Class
}

// Plan is the result of static allocation.
type Plan struct {
	Groups []*Group
	// TotalBytes is the footprint: the sum of group sizes.
	TotalBytes int64
	// ByClass attributes each group's bytes to its dominant class.
	ByClass map[graph.BufferClass]int64
}

// PlanStatic runs the CNTK memory-sharing strategy: sort buffers by size
// descending, then place each buffer into the first existing group none of
// whose members' lifetimes overlap it (large buffers thereby share regions
// with other large buffers). Buffers marked NoShare each get a dedicated
// region and accept no tenants — the paper's investigation baseline uses
// this for stashed feature maps.
func PlanStatic(bufs []*liveness.Buffer) *Plan {
	sorted := make([]*liveness.Buffer, len(bufs))
	copy(sorted, bufs)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Bytes > sorted[j].Bytes
	})

	var groups []*Group
	for _, b := range sorted {
		if b.Bytes == 0 {
			continue
		}
		placed := false
		if !b.NoShare {
			for _, g := range groups {
				if g.Buffers[0].NoShare {
					continue
				}
				ok := true
				for _, m := range g.Buffers {
					if m.Overlaps(b) {
						ok = false
						break
					}
				}
				if ok {
					g.Buffers = append(g.Buffers, b)
					if b.Bytes > g.Bytes {
						g.Bytes = b.Bytes
					}
					placed = true
					break
				}
			}
		}
		if !placed {
			groups = append(groups, &Group{Buffers: []*liveness.Buffer{b}, Bytes: b.Bytes})
		}
	}

	p := &Plan{Groups: groups, ByClass: map[graph.BufferClass]int64{}}
	for _, g := range groups {
		p.TotalBytes += g.Bytes
		p.ByClass[g.dominantClass()] += g.Bytes
	}
	return p
}

// PlanStaticUnsorted is the ablation of the CNTK allocator's size-sorting
// heuristic (Section IV-C: it "first sorts the data structures on the
// basis of size... so that large data structures can share the same memory
// space"): the same greedy grouping, but in buffer insertion order.
// Without the sort, a large buffer arriving late opens a new full-size
// region instead of reusing one, so this plan is never smaller and usually
// larger.
func PlanStaticUnsorted(bufs []*liveness.Buffer) *Plan {
	var groups []*Group
	for _, b := range bufs {
		if b.Bytes == 0 {
			continue
		}
		placed := false
		if !b.NoShare {
			for _, g := range groups {
				if g.Buffers[0].NoShare {
					continue
				}
				ok := true
				for _, m := range g.Buffers {
					if m.Overlaps(b) {
						ok = false
						break
					}
				}
				if ok {
					g.Buffers = append(g.Buffers, b)
					if b.Bytes > g.Bytes {
						g.Bytes = b.Bytes
					}
					placed = true
					break
				}
			}
		}
		if !placed {
			groups = append(groups, &Group{Buffers: []*liveness.Buffer{b}, Bytes: b.Bytes})
		}
	}
	p := &Plan{Groups: groups, ByClass: map[graph.BufferClass]int64{}}
	for _, g := range groups {
		p.TotalBytes += g.Bytes
		p.ByClass[g.dominantClass()] += g.Bytes
	}
	return p
}

// PlanDynamic models perfectly timed dynamic allocation: each buffer is
// resident exactly during its lifetime, and the footprint is the peak sum
// of live bytes over the timeline.
func PlanDynamic(bufs []*liveness.Buffer) int64 {
	type event struct {
		t     int
		delta int64
	}
	events := make([]event, 0, 2*len(bufs))
	for _, b := range bufs {
		events = append(events, event{b.Start, b.Bytes})
		events = append(events, event{b.End + 1, -b.Bytes})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		// Frees before allocations at the same step: a buffer ending at
		// step t-1 and one starting at t never coexist.
		return events[i].delta < events[j].delta
	})
	var cur, peak int64
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// Validate checks the static plan's core invariant: within every group, no
// two buffers' lifetimes overlap. It returns the first violating pair.
func (p *Plan) Validate() (a, b *liveness.Buffer, ok bool) {
	for _, g := range p.Groups {
		for i := 0; i < len(g.Buffers); i++ {
			for j := i + 1; j < len(g.Buffers); j++ {
				if g.Buffers[i].Overlaps(g.Buffers[j]) {
					return g.Buffers[i], g.Buffers[j], false
				}
			}
		}
	}
	return nil, nil, true
}

// RecordTelemetry publishes the plan's predicted footprint into the sink as
// plan.<prefix>.* gauges (total bytes, group count, per-class bytes), so a
// run's snapshot can set the planner's static prediction against the
// executor's observed peak (mem.peak_held_bytes). Nil plan or sink no-ops.
func (p *Plan) RecordTelemetry(s *telemetry.Sink, prefix string) {
	if p == nil || s == nil {
		return
	}
	s.Gauge("plan."+prefix+".total_bytes").Set(p.TotalBytes)
	s.Gauge("plan."+prefix+".groups").Set(int64(len(p.Groups)))
	for cls, b := range p.ByClass {
		name := strings.ReplaceAll(cls.String(), " ", "_")
		s.Gauge("plan." + prefix + "." + name + "_bytes").Set(b)
	}
}

// RecordEncodingTelemetry publishes the analysis's predicted per-technique
// encoded footprint as plan.<prefix>.encoded.<tech>_bytes gauges (plus a
// stash count per technique), the planning-side half of the predicted-vs-
// observed reconciliation: the executor's stash.<tech>.held_bytes counters
// record what each technique actually produced, so a snapshot sets the
// planner's sparsity-model prediction directly against runtime reality.
// Nil analysis or sink no-ops.
func RecordEncodingTelemetry(s *telemetry.Sink, prefix string, a *encoding.Analysis) {
	if a == nil || s == nil {
		return
	}
	bytes := map[encoding.Technique]int64{}
	count := map[encoding.Technique]int64{}
	for _, as := range a.ByNode {
		bytes[as.Tech] += as.EncodedBytes
		count[as.Tech]++
	}
	for tech, b := range bytes {
		name := tech.String()
		s.Gauge("plan." + prefix + ".encoded." + name + "_bytes").Set(b)
		s.Gauge("plan." + prefix + ".encoded." + name + "_stashes").Set(count[tech])
	}
}

// MFR is the paper's comparison metric: baseline footprint over encoded
// footprint.
func MFR(baseline, encoded int64) float64 {
	if encoded == 0 {
		return 0
	}
	return float64(baseline) / float64(encoded)
}

// PoolWarmSet maps the liveness analysis onto the runtime buffer pool: it
// returns the element count of every float32 tensor the pooled executor
// will draw during one training step — immediate and stashed feature maps,
// decoded staging buffers and gradient maps. Feeding the result to
// bufpool's Prewarm puts one buffer of each size class on its free list
// ahead of the first step, so steady-state recycling starts at step one
// instead of after a warm-up of allocation misses. Encoded payloads are
// excluded: they live in bit-packed word arrays, not pooled tensors.
func PoolWarmSet(bufs []*liveness.Buffer) []int {
	var elems []int
	for _, b := range bufs {
		switch b.Class {
		case graph.ClassImmediateFmap, graph.ClassStashedFmap,
			graph.ClassDecoded, graph.ClassGradientMap:
			if b.Bytes > 0 {
				elems = append(elems, int(b.Bytes/4))
			}
		}
	}
	return elems
}
