// Package parallel provides the bounded, reusable worker pool behind the
// chunked codec layer. Gist's premium is that encoding a stashed feature map
// is cheap relative to the memory it frees, which only holds while the
// encoder keeps up with the producer; the pool lets every hot kernel
// (bitpack masks, narrow-CSR build/scatter, DPR pack/unpack) split its work
// into chunks and run them across cores without spawning unbounded
// goroutines.
//
// The design is deliberately deadlock-proof under nesting: ForEach always
// runs work on the calling goroutine and only recruits helpers when pool
// slots are free, so a task already running on the pool can fan out again
// without waiting on slots it transitively occupies. A nil *Pool is valid
// and runs everything serially.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gist/internal/telemetry"
)

// poolMetrics caches the pool instruments so the hot path pays one atomic
// pointer load and nil check per ForEach/Go call, never a name lookup.
type poolMetrics struct {
	forEach   *telemetry.Counter   // ForEach invocations
	tasks     *telemetry.Counter   // individual fn(i) executions
	helpers   *telemetry.Counter   // helper goroutines actually spawned
	saturated *telemetry.Counter   // ForEach calls that found the pool full
	busyNS    *telemetry.Histogram // per-participant busy time inside ForEach
	goQueued  *telemetry.Gauge     // Go tasks waiting on a pool slot
	goActive  *telemetry.Gauge     // Go tasks currently running
}

// metrics is the process-wide pool telemetry; nil (the default) is the
// zero-overhead path.
var metrics atomic.Pointer[poolMetrics]

// SetTelemetry wires every pool in the process (shared or private) to the
// sink: queue depth, worker spawns/saturation and per-participant busy
// time. Passing nil disconnects. Telemetry is process-wide because the
// pools themselves are a process-wide budget.
func SetTelemetry(s *telemetry.Sink) {
	if s == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&poolMetrics{
		forEach:   s.Counter("pool.foreach.calls"),
		tasks:     s.Counter("pool.tasks"),
		helpers:   s.Counter("pool.helpers_spawned"),
		saturated: s.Counter("pool.saturated"),
		busyNS:    s.Histogram("pool.busy.ns"),
		goQueued:  s.Gauge("pool.go.queued"),
		goActive:  s.Gauge("pool.go.active"),
	})
}

// Pool bounds how many goroutines the chunked kernels may occupy at once.
// The zero worker count is remapped to GOMAXPROCS. Pools are safe for
// concurrent use by any number of goroutines; a single process-wide pool
// (see Shared) is the intended deployment so concurrent executors contend
// for one CPU budget instead of oversubscribing.
type Pool struct {
	workers int
	sem     chan struct{}
}

// NewPool returns a pool that admits at most workers concurrent helpers.
// workers <= 0 selects runtime.GOMAXPROCS(0). A one-worker pool runs
// everything on the calling goroutine (the serial path).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound. A nil pool reports 1.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ForEach runs fn(i) for every i in [0, n) and returns when all calls have
// completed. The calling goroutine always participates, and up to
// Workers()-1 helper goroutines join while pool slots are free — slot
// acquisition never blocks, so nested ForEach calls from tasks already on
// the pool degrade to serial instead of deadlocking. Iteration order across
// goroutines is unspecified; callers must make fn(i) touch disjoint state
// (the chunked kernels write disjoint word/row ranges). A panic in fn is
// re-raised on the caller after the remaining work drains.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	pm := metrics.Load()
	if pm != nil {
		pm.forEach.Inc()
		pm.tasks.Add(int64(n))
	}
	if p == nil || p.workers <= 1 || n == 1 {
		if pm != nil {
			start := time.Now()
			for i := 0; i < n; i++ {
				fn(i)
			}
			pm.busyNS.Observe(time.Since(start).Nanoseconds())
			return
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	if pm != nil {
		inner := work
		work = func() {
			start := time.Now()
			inner()
			pm.busyNS.Observe(time.Since(start).Nanoseconds())
		}
	}
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
spawn:
	for h := 0; h < helpers; h++ {
		select {
		case p.sem <- struct{}{}:
			if pm != nil {
				pm.helpers.Inc()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.sem }()
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicked == nil {
							panicked = r
						}
						panicMu.Unlock()
					}
				}()
				work()
			}()
		default:
			if pm != nil {
				pm.saturated.Inc()
			}
			break spawn // pool saturated: the caller works alone
		}
	}
	work()
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Go runs fn asynchronously on its own goroutine, gated by the pool's
// worker budget: at most Workers() submitted tasks execute at once, the
// rest queue on the semaphore. Unlike ForEach, Go returns immediately; the
// training executor uses it to overlap backward-pass stash decodes with
// layer compute. fn must not panic (decode futures convert failures to
// errors). A nil pool runs fn synchronously.
func (p *Pool) Go(fn func()) {
	if p == nil {
		fn()
		return
	}
	pm := metrics.Load()
	if pm != nil {
		pm.goQueued.Add(1)
	}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		if pm != nil {
			pm.goQueued.Add(-1)
			pm.goActive.Add(1)
			defer pm.goActive.Add(-1)
		}
		fn()
	}()
}

// shared is the process-wide pool every codec call sites default to.
var shared atomic.Pointer[Pool]

// Shared returns the process-wide pool, creating a GOMAXPROCS-sized one on
// first use. All default codec paths (and concurrent executors) route
// through this single pool so total codec concurrency stays bounded by one
// budget.
func Shared() *Pool {
	if p := shared.Load(); p != nil {
		return p
	}
	p := NewPool(0)
	if shared.CompareAndSwap(nil, p) {
		return p
	}
	return shared.Load()
}

// SetSharedWorkers replaces the shared pool with one of the given size
// (0 = GOMAXPROCS, 1 = serial). The -parallel CLI flag and benchmarks use
// this; in-flight ForEach/Go calls on the previous pool finish unaffected.
func SetSharedWorkers(n int) {
	shared.Store(NewPool(n))
}
