package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachCoversEveryIndexOnce checks the core contract across worker
// counts and sizes, including n smaller than the pool and n == 0.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	maxProcs := runtime.GOMAXPROCS(0)
	for _, workers := range []int{1, 2, 3, maxProcs, 2 * maxProcs} {
		for _, n := range []int{0, 1, 2, workers - 1, workers, workers + 1, 100, 1001} {
			if n < 0 {
				continue
			}
			p := NewPool(workers)
			counts := make([]atomic.Int32, n)
			p.ForEach(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	if w := p.Workers(); w != 1 {
		t.Fatalf("nil pool workers = %d, want 1", w)
	}
	sum := 0
	p.ForEach(10, func(i int) { sum += i }) // would race if not serial
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
	ran := false
	p.Go(func() { ran = true }) // nil pool runs synchronously
	if !ran {
		t.Fatal("nil pool Go did not run synchronously")
	}
}

func TestZeroWorkersMeansGOMAXPROCS(t *testing.T) {
	if w := NewPool(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(0).Workers() = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
}

// TestNestedForEachDoesNotDeadlock pins the deadlock-proofing: tasks already
// occupying every pool slot via Go fan out again with ForEach, which must
// degrade to caller-only execution rather than wait for slots the callers
// transitively hold.
func TestNestedForEachDoesNotDeadlock(t *testing.T) {
	p := NewPool(2)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		p.Go(func() {
			defer wg.Done()
			p.ForEach(64, func(i int) { total.Add(1) })
		})
	}
	wg.Wait() // deadlock here = failure (test times out)
	if got := total.Load(); got != 8*64 {
		t.Fatalf("nested total = %d, want %d", got, 8*64)
	}
}

// TestGoBoundsConcurrency checks Go admits at most Workers() tasks at once.
func TestGoBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for g := 0; g < 4*workers; g++ {
		wg.Add(1)
		p.Go(func() {
			defer wg.Done()
			cur := running.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			<-gate
			running.Add(-1)
		})
	}
	close(gate)
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrent Go tasks = %d, want <= %d", got, workers)
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	p := NewPool(4)
	defer func() {
		if recover() == nil {
			t.Fatal("panic in fn was swallowed")
		}
	}()
	p.ForEach(100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

// TestSharedPoolHammer drives one shared pool from many goroutines at once,
// the -race workload for the semaphore and work-stealing counter.
func TestSharedPoolHammer(t *testing.T) {
	p := Shared()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			out := make([]int, 512)
			p.ForEach(len(out), func(i int) { out[i] = seed + i })
			for i := range out {
				if out[i] != seed+i {
					t.Errorf("goroutine %d: out[%d] = %d", seed, i, out[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSetSharedWorkers(t *testing.T) {
	defer SetSharedWorkers(0)
	SetSharedWorkers(1)
	if w := Shared().Workers(); w != 1 {
		t.Fatalf("Shared().Workers() = %d after SetSharedWorkers(1)", w)
	}
	SetSharedWorkers(0)
	if w := Shared().Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Shared().Workers() = %d after SetSharedWorkers(0), want GOMAXPROCS", w)
	}
}
