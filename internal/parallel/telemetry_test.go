package parallel

import (
	"sync"
	"testing"

	"gist/internal/telemetry"
)

func TestPoolTelemetry(t *testing.T) {
	s := telemetry.New()
	SetTelemetry(s)
	defer SetTelemetry(nil)

	p := NewPool(4)
	var hits [64]int
	p.ForEach(len(hits), func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	p.Go(func() { wg.Done() })
	wg.Wait()

	v := s.Values()
	if v["pool.foreach.calls"] != 1 {
		t.Fatalf("foreach calls %d", v["pool.foreach.calls"])
	}
	if v["pool.tasks"] != 64 {
		t.Fatalf("tasks %d", v["pool.tasks"])
	}
	// Helpers are best-effort (slot acquisition never blocks), but a
	// 4-worker pool over 64 tasks from an idle state should recruit some.
	if v["pool.helpers_spawned"] < 0 || v["pool.helpers_spawned"] > 3 {
		t.Fatalf("helpers %d outside [0,3]", v["pool.helpers_spawned"])
	}
	if s.Histogram("pool.busy.ns").Count() == 0 {
		t.Fatal("no busy-time observations")
	}
	// Go's gauges must return to zero once the task drained.
	if v["pool.go.queued"] != 0 {
		t.Fatalf("go.queued %d, want 0", v["pool.go.queued"])
	}
}

func TestPoolTelemetryDisabled(t *testing.T) {
	SetTelemetry(nil)
	p := NewPool(1)
	n := 0
	// Serial path with telemetry off must still run everything.
	p.ForEach(8, func(i int) { n++ })
	if n != 8 {
		t.Fatalf("ran %d of 8", n)
	}
}
