//go:build race

// Package race reports whether the Go race detector is compiled into this
// binary, so heavyweight benchmarks can skip cleanly under `go test -race`
// (the detector's ~10x slowdown turns them into CI timeouts, and they
// exercise no concurrency of their own).
package race

// Enabled is true in builds made with -race.
const Enabled = true
