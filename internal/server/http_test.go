package server

// HTTP surface tests, driven through httptest against Server.Handler:
// status codes (201 created / 202 queued with Retry-After / 409 rejected
// or bad transition / 404 unknown), JSON round-trips, and the health,
// metrics and per-job telemetry endpoints.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gist/internal/telemetry"
	"gist/internal/telemetry/promexport"
)

func httpJSON[T any](t *testing.T, client *http.Client, method, url string, body any, wantCode int) T {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d (body %s)", method, url, resp.StatusCode, wantCode, raw)
	}
	var out T
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
	}
	return out
}

func TestHTTPSubmitLifecycle(t *testing.T) {
	s := newTestServer(t, Config{Telemetry: telemetry.New()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	// Immediate admission answers 201 with the job's status.
	st := httpJSON[JobStatus](t, c, "POST", ts.URL+"/jobs",
		JobSpec{Name: "web", Batch: 4, Classes: 2, Steps: 6, Encoding: "fp16"}, http.StatusCreated)
	if st.ID == "" || st.Encoding != "fp16" {
		t.Fatalf("submit returned %+v", st)
	}

	waitFor(t, "job completed over HTTP", 10*time.Second, func() bool {
		got := httpJSON[JobStatus](t, c, "GET", ts.URL+"/jobs/"+st.ID, nil, http.StatusOK)
		return got.State == StateCompleted
	})

	list := httpJSON[[]JobStatus](t, c, "GET", ts.URL+"/jobs", nil, http.StatusOK)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	h := httpJSON[Health](t, c, "GET", ts.URL+"/healthz", nil, http.StatusOK)
	if h.Jobs != 1 || h.BudgetBytes <= 0 {
		t.Fatalf("healthz = %+v", h)
	}
	if h.GoVersion == "" || h.Revision == "" {
		t.Fatalf("healthz missing build info: %+v", h)
	}

	// Per-job telemetry snapshot: the fp16 run must have exercised the
	// encode pipeline, so the text snapshot is non-empty.
	resp, err := c.Get(ts.URL + "/jobs/" + st.ID + "/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(snap) == 0 {
		t.Fatalf("telemetry: code %d, %d bytes", resp.StatusCode, len(snap))
	}

	// /metrics is Prometheus text exposition now: correct media type,
	// strictly parseable, with the admission counter and the job's own
	// series labeled by job_id.
	resp, err = c.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != contentTypeProm {
		t.Fatalf("/metrics Content-Type = %q, want %q", got, contentTypeProm)
	}
	fams, err := promexport.Parse(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics does not parse strictly: %v", err)
	}
	adm := promexport.Find(fams, "gist_server_jobs_admitted_total")
	if adm == nil || len(adm.Samples) == 0 || adm.Samples[0].Value < 1 {
		t.Fatalf("missing admission counter in exposition: %+v", adm)
	}
	steps := promexport.Find(fams, "gist_train_steps_total")
	if steps == nil {
		t.Fatal("missing per-job train.steps family")
	}
	if got, ok := steps.Get("job_id", st.ID); !ok || got.Value != 6 {
		t.Fatalf("per-job steps{job_id=%s} = %+v ok=%v, want 6", st.ID, got, ok)
	}

	// The legacy text snapshot moved to /metrics/text.
	resp, err = c.Get(ts.URL + "/metrics/text")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain") {
		t.Fatalf("/metrics/text Content-Type = %q", got)
	}
	if !strings.Contains(string(metrics), "server.jobs.admitted") {
		t.Fatalf("legacy snapshot missing admission counter:\n%s", metrics)
	}

	// Pausing a completed job is a 409; an unknown id is a 404.
	httpJSON[errorBody](t, c, "POST", ts.URL+"/jobs/"+st.ID+"/pause", nil, http.StatusConflict)
	httpJSON[errorBody](t, c, "GET", ts.URL+"/jobs/j9999", nil, http.StatusNotFound)
}

func TestHTTPQueueAndRejectCodes(t *testing.T) {
	s := newTestServer(t, Config{MaxRunning: 1, QueueLimit: 1, Telemetry: telemetry.New()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	blocker := httpJSON[JobStatus](t, c, "POST", ts.URL+"/jobs",
		JobSpec{Name: "block", Batch: 4, Classes: 2, Steps: 1 << 20}, http.StatusCreated)
	waitFor(t, "blocker running", 10*time.Second, func() bool {
		return httpJSON[JobStatus](t, c, "GET", ts.URL+"/jobs/"+blocker.ID, nil, http.StatusOK).State == StateRunning
	})

	// Queued admission answers 202 and carries a Retry-After hint.
	var buf bytes.Buffer
	_ = json.NewEncoder(&buf).Encode(JobSpec{Name: "q", Batch: 4, Classes: 2, Steps: 5})
	resp, err := c.Post(ts.URL+"/jobs", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var queued JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&queued)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || queued.State != StateQueued {
		t.Fatalf("queued submit: code %d state %s", resp.StatusCode, queued.State)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("202 without Retry-After header")
	}

	// Past the queue limit the submission is rejected with 409.
	rej := httpJSON[JobStatus](t, c, "POST", ts.URL+"/jobs",
		JobSpec{Name: "bounced", Batch: 4, Classes: 2, Steps: 5}, http.StatusConflict)
	if rej.State != StateRejected {
		t.Fatalf("rejected submit state %s", rej.State)
	}

	// A malformed body is a 400.
	resp, err = c.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: code %d, want 400", resp.StatusCode)
	}

	// Cancel over HTTP answers the post-verb status.
	got := httpJSON[JobStatus](t, c, "POST", ts.URL+"/jobs/"+blocker.ID+"/cancel", nil, http.StatusOK)
	if got.State != StateCancelled && got.State != StateRunning {
		// The verb is async for running jobs; either the transition landed
		// already or the status still reads running. Wait for the terminal.
		t.Fatalf("post-cancel state %s", got.State)
	}
	waitFor(t, "blocker cancelled", 10*time.Second, func() bool {
		return httpJSON[JobStatus](t, c, "GET", ts.URL+"/jobs/"+blocker.ID, nil, http.StatusOK).State == StateCancelled
	})
}
