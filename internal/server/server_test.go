package server

// Functional tests for the job server: lifecycle transitions, cancel
// latency, deadlines, queueing, degradation, tenant fairness, watchdog
// quarantine, and server-level pause→resume determinism.
//
// Tests steer jobs by name through the Config.OnStep hook: a job whose
// name starts with "block" parks in the hook until its context is
// cancelled (occupying a slot indefinitely), and one whose name starts
// with "slow" sleeps 2ms per step so a test can reliably hit it mid-run.

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestServer builds a server whose OnStep hook implements the
// block/slow naming convention, and shuts it down at test end.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = time.Minute // keep the watchdog out of non-watchdog tests
	}
	if cfg.CheckpointDir == "" {
		cfg.CheckpointDir = t.TempDir()
	}
	var srv atomic.Pointer[Server]
	if cfg.OnStep == nil {
		cfg.OnStep = func(ctx context.Context, id string, step int) {
			st, err := srv.Load().Get(id)
			if err != nil {
				return
			}
			switch {
			case strings.HasPrefix(st.Spec.Name, "block"):
				<-ctx.Done()
			case strings.HasPrefix(st.Spec.Name, "slow"):
				select {
				case <-ctx.Done():
				case <-time.After(2 * time.Millisecond):
				}
			}
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Store(s)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s
}

// waitFor polls pred until it holds or the timeout lapses.
func waitFor(t *testing.T, what string, timeout time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func mustStatus(t *testing.T, s *Server, id string) *JobStatus {
	t.Helper()
	st, err := s.Get(id)
	if err != nil {
		t.Fatalf("Get(%s): %v", id, err)
	}
	return st
}

// TestJobLifecycleCompletes runs one small job to completion and checks
// the admission ledger drains back to zero.
func TestJobLifecycleCompletes(t *testing.T) {
	s := newTestServer(t, Config{})
	st, err := s.Submit(JobSpec{Name: "ok", Batch: 4, Classes: 2, Steps: 8})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.FootprintBytes <= 0 {
		t.Fatalf("admitted footprint %d", st.FootprintBytes)
	}
	if err := s.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	got := mustStatus(t, s, st.ID)
	if got.State != StateCompleted || got.Step != 8 {
		t.Fatalf("state %s at step %d, want completed at 8", got.State, got.Step)
	}
	if got.Loss == "" {
		t.Fatal("completed job reports no loss")
	}
	h := s.Health()
	if h.UsedBytes != 0 {
		t.Fatalf("ledger still holds %d bytes after completion", h.UsedBytes)
	}
	if h.PeakBytes < st.FootprintBytes || h.PeakBytes > h.BudgetBytes {
		t.Fatalf("peak %d outside [footprint %d, budget %d]", h.PeakBytes, st.FootprintBytes, h.BudgetBytes)
	}
}

// TestShardedJobCompletes exercises the replica-group engine path.
func TestShardedJobCompletes(t *testing.T) {
	s := newTestServer(t, Config{})
	st, err := s.Submit(JobSpec{Name: "sharded", Batch: 4, Classes: 2, Steps: 6, Shards: 2})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := s.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	got := mustStatus(t, s, st.ID)
	if got.State != StateCompleted || got.Step != 6 {
		t.Fatalf("state %s at step %d, want completed at 6", got.State, got.Step)
	}
}

// TestCancelRunningWithinOneStep cancels a job mid-run and requires the
// terminal transition well within the acceptance latency bound.
func TestCancelRunningWithinOneStep(t *testing.T) {
	s := newTestServer(t, Config{})
	st, err := s.Submit(JobSpec{Name: "slow-cancel", Batch: 4, Classes: 2, Steps: 1 << 20})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitFor(t, "job running past step 1", 10*time.Second, func() bool {
		g := mustStatus(t, s, st.ID)
		return g.State == StateRunning && g.Step >= 1
	})
	start := time.Now()
	if err := s.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if err := s.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v, want within one step's latency", elapsed)
	}
	got := mustStatus(t, s, st.ID)
	if got.State != StateCancelled || got.Reason != "cancelled by user" {
		t.Fatalf("state %s (%q), want cancelled by user", got.State, got.Reason)
	}
}

// TestDeadlineCancelsRunningJob: a running job past its deadline is
// cancelled by the propagated context, not left to finish.
func TestDeadlineCancelsRunningJob(t *testing.T) {
	s := newTestServer(t, Config{})
	st, err := s.Submit(JobSpec{Name: "slow-deadline", Batch: 4, Classes: 2, Steps: 1 << 20, DeadlineMS: 150})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	start := time.Now()
	if err := s.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}
	got := mustStatus(t, s, st.ID)
	if got.State != StateCancelled || got.Reason != "deadline exceeded" {
		t.Fatalf("state %s (%q), want cancelled: deadline exceeded", got.State, got.Reason)
	}
	if got.Step == 0 {
		t.Fatal("job never ran before its deadline")
	}
}

// TestQueuedDeadlineExpires: a job whose deadline lapses while queued is
// cancelled without ever starting.
func TestQueuedDeadlineExpires(t *testing.T) {
	s := newTestServer(t, Config{MaxRunning: 1, WatchdogEvery: 20 * time.Millisecond})
	blocker, err := s.Submit(JobSpec{Name: "block", Batch: 4, Classes: 2, Steps: 1 << 20})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waitFor(t, "blocker running", 10*time.Second, func() bool {
		return mustStatus(t, s, blocker.ID).State == StateRunning
	})
	st, err := s.Submit(JobSpec{Name: "doomed", Batch: 4, Classes: 2, Steps: 10, DeadlineMS: 50})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.State != StateQueued {
		t.Fatalf("state %s, want queued behind the blocker", st.State)
	}
	if st.RetryAfterMS <= 0 {
		t.Fatal("queued job carries no backoff hint")
	}
	if err := s.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	got := mustStatus(t, s, st.ID)
	if got.State != StateCancelled || got.Reason != "deadline exceeded before start" {
		t.Fatalf("state %s (%q), want cancelled before start", got.State, got.Reason)
	}
	if got.Step != 0 {
		t.Fatalf("expired queued job ran %d steps", got.Step)
	}
}

// TestQueueFullRejects: past the queue limit, submission is a terminal
// rejection, not an error.
func TestQueueFullRejects(t *testing.T) {
	s := newTestServer(t, Config{MaxRunning: 1, QueueLimit: 1})
	blocker, err := s.Submit(JobSpec{Name: "block", Batch: 4, Classes: 2, Steps: 1 << 20})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waitFor(t, "blocker running", 10*time.Second, func() bool {
		return mustStatus(t, s, blocker.ID).State == StateRunning
	})
	if st, err := s.Submit(JobSpec{Name: "waits", Batch: 4, Classes: 2, Steps: 5}); err != nil || st.State != StateQueued {
		t.Fatalf("second submit: state %v err %v, want queued", st, err)
	}
	st, err := s.Submit(JobSpec{Name: "bounced", Batch: 4, Classes: 2, Steps: 5})
	if err != nil {
		t.Fatalf("third submit: %v", err)
	}
	if st.State != StateRejected || !strings.Contains(st.Reason, "queue full") {
		t.Fatalf("state %s (%q), want rejected: queue full", st.State, st.Reason)
	}
	if err := s.Wait(st.ID); err != nil { // rejection is terminal: Wait returns at once
		t.Fatal(err)
	}
}

// TestRejectOverBudget: a job that cannot fit the budget even fully
// degraded is rejected up front.
func TestRejectOverBudget(t *testing.T) {
	s := newTestServer(t, Config{MemBudgetBytes: 1 << 10})
	st, err := s.Submit(JobSpec{Name: "huge", Network: "tinyvgg", Batch: 8, AllowDegrade: true, Steps: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.State != StateRejected || !strings.Contains(st.Reason, "exceeds budget") {
		t.Fatalf("state %s (%q), want rejected over budget", st.State, st.Reason)
	}
}

// TestDegradedAdmission: a budget below the job's requested footprint
// but above a compressed rung admits the job degraded, and it completes.
func TestDegradedAdmission(t *testing.T) {
	spec := JobSpec{Name: "bend", Network: "tinyvgg", Batch: 8, AllowDegrade: true, Steps: 4}.withDefaults()
	full, err := footprint(spec, "none")
	if err != nil {
		t.Fatal(err)
	}
	fp8, err := footprint(spec, "fp8")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{MemBudgetBytes: (full + fp8) / 2})
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if !st.Degraded || st.Encoding == "none" {
		t.Fatalf("encoding %s degraded=%v, want a degraded rung", st.Encoding, st.Degraded)
	}
	if err := s.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if got := mustStatus(t, s, st.ID); got.State != StateCompleted {
		t.Fatalf("degraded job ended %s (%q), want completed", got.State, got.Reason)
	}
}

// TestTenantFairness: when a slot frees, a queued job from a tenant with
// no running jobs starts before an earlier-submitted job from a tenant
// that already holds a slot.
func TestTenantFairness(t *testing.T) {
	s := newTestServer(t, Config{MaxRunning: 2})
	a1, err := s.Submit(JobSpec{Name: "block-a1", Tenant: "a", Batch: 4, Classes: 2, Steps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Submit(JobSpec{Name: "block-a2", Tenant: "a", Batch: 4, Classes: 2, Steps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both tenant-a jobs running", 10*time.Second, func() bool {
		return mustStatus(t, s, a1.ID).State == StateRunning && mustStatus(t, s, a2.ID).State == StateRunning
	})
	a3, err := s.Submit(JobSpec{Name: "block-a3", Tenant: "a", Batch: 4, Classes: 2, Steps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := s.Submit(JobSpec{Name: "block-b1", Tenant: "b", Batch: 4, Classes: 2, Steps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if a3.State != StateQueued || b1.State != StateQueued {
		t.Fatalf("a3=%s b1=%s, want both queued", a3.State, b1.State)
	}

	if err := s.Cancel(a1.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "tenant b's job to take the freed slot", 10*time.Second, func() bool {
		return mustStatus(t, s, b1.ID).State == StateRunning
	})
	if got := mustStatus(t, s, a3.ID); got.State != StateQueued {
		t.Fatalf("earlier tenant-a job is %s, want still queued behind tenant b", got.State)
	}
}

// TestPauseResumeMatchesUninterrupted pauses a job mid-run, resumes it,
// and requires the final loss to match an identically-seeded job that
// was never paused — the server-level face of the byte-identical resume
// guarantee (the weight-level proof lives in internal/train).
func TestPauseResumeMatchesUninterrupted(t *testing.T) {
	const steps = 60
	s := newTestServer(t, Config{CheckpointEvery: 5})
	spec := JobSpec{Batch: 4, Classes: 2, Steps: steps, Seed: 11}

	ref := spec
	ref.Name = "slow-ref"
	rst, err := s.Submit(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(rst.ID); err != nil {
		t.Fatal(err)
	}
	refStatus := mustStatus(t, s, rst.ID)
	if refStatus.State != StateCompleted || refStatus.Loss == "" {
		t.Fatalf("reference ended %s loss=%q", refStatus.State, refStatus.Loss)
	}

	paused := spec
	paused.Name = "slow-paused"
	pst, err := s.Submit(paused)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job past step 5", 10*time.Second, func() bool {
		g := mustStatus(t, s, pst.ID)
		return g.State == StateRunning && g.Step >= 5
	})
	if err := s.Pause(pst.ID); err != nil {
		t.Fatalf("Pause: %v", err)
	}
	waitFor(t, "job parked in paused", 10*time.Second, func() bool {
		return mustStatus(t, s, pst.ID).State == StatePaused
	})
	mid := mustStatus(t, s, pst.ID)
	if mid.Checkpoint == "" {
		t.Fatal("paused job has no checkpoint")
	}
	if mid.Step >= steps {
		t.Fatalf("paused after %d steps, nothing left to resume", mid.Step)
	}
	if used := s.Health().UsedBytes; used != 0 {
		t.Fatalf("paused job still holds %d budget bytes", used)
	}

	if err := s.Resume(pst.ID); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := s.Wait(pst.ID); err != nil {
		t.Fatal(err)
	}
	got := mustStatus(t, s, pst.ID)
	if got.State != StateCompleted || got.Step != steps {
		t.Fatalf("resumed job ended %s at step %d, want completed at %d", got.State, got.Step, steps)
	}
	if got.Loss != refStatus.Loss {
		t.Fatalf("resumed loss %s != uninterrupted loss %s", got.Loss, refStatus.Loss)
	}
}

// TestWatchdogQuarantinesStalledJob: a job that stops making step
// progress is cancelled by the watchdog and parked in quarantine while
// the server keeps serving other jobs.
func TestWatchdogQuarantinesStalledJob(t *testing.T) {
	s := newTestServer(t, Config{StallTimeout: 150 * time.Millisecond, WatchdogEvery: 25 * time.Millisecond})
	st, err := s.Submit(JobSpec{Name: "block-stall", Batch: 4, Classes: 2, Steps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	got := mustStatus(t, s, st.ID)
	if got.State != StateQuarantined || !strings.Contains(got.Reason, "no step progress") {
		t.Fatalf("state %s (%q), want quarantined for stalling", got.State, got.Reason)
	}
	// The server still admits and completes new work afterwards.
	ok, err := s.Submit(JobSpec{Name: "after", Batch: 4, Classes: 2, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(ok.ID); err != nil {
		t.Fatal(err)
	}
	if got := mustStatus(t, s, ok.ID); got.State != StateCompleted {
		t.Fatalf("post-quarantine job ended %s", got.State)
	}
}

// TestLifecycleVerbErrors pins the error taxonomy for misapplied verbs.
func TestLifecycleVerbErrors(t *testing.T) {
	s := newTestServer(t, Config{MaxRunning: 1})
	blocker, err := s.Submit(JobSpec{Name: "block", Batch: 4, Classes: 2, Steps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker running", 10*time.Second, func() bool {
		return mustStatus(t, s, blocker.ID).State == StateRunning
	})
	queued, err := s.Submit(JobSpec{Name: "q", Batch: 4, Classes: 2, Steps: 5})
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Pause(queued.ID); err == nil || !strings.Contains(err.Error(), "invalid state transition") {
		t.Fatalf("pause queued: %v, want ErrBadTransition", err)
	}
	if err := s.Resume(blocker.ID); err == nil || !strings.Contains(err.Error(), "invalid state transition") {
		t.Fatalf("resume running: %v, want ErrBadTransition", err)
	}
	if err := s.Cancel("j9999"); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("cancel unknown: %v, want ErrUnknownJob", err)
	}
	// Cancelling a queued job is immediate and terminal.
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if got := mustStatus(t, s, queued.ID); got.State != StateCancelled {
		t.Fatalf("cancelled queued job is %s", got.State)
	}
	// Cancelling a terminal job is a no-op, not an error.
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatalf("re-cancel terminal: %v", err)
	}
}
