package server

// The HTTP/JSON surface. Routes (Go 1.22 pattern matching):
//
//	GET  /healthz             — admission ledger + build info
//	GET  /metrics             — Prometheus text exposition (v0.0.4): the
//	                            server sink plus every job sink, labeled
//	                            by job_id/tenant/technique
//	GET  /metrics/text        — the legacy expvar-style text snapshot
//	POST /jobs                — submit a JobSpec, returns its JobStatus
//	GET  /jobs                — list all jobs
//	GET  /jobs/{id}           — one job's status
//	POST /jobs/{id}/cancel    — cancel in any non-terminal state
//	POST /jobs/{id}/pause     — checkpoint and release a running job
//	POST /jobs/{id}/resume    — re-admit a paused job from its checkpoint
//	GET  /jobs/{id}/telemetry — live per-job telemetry snapshot (text)
//	GET  /jobs/{id}/stream    — Server-Sent Events: one "step" event per
//	                            completed step, one final "state" event
//
// Queued submissions answer 202 with a Retry-After header derived from
// the queue-position backoff hint; rejected ones answer 409.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// contentTypeProm is the Prometheus text exposition media type; the
// version parameter is part of the scrape contract.
const contentTypeProm = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns the server's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics/text", s.handleMetricsText)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleVerb(s.Cancel))
	mux.HandleFunc("POST /jobs/{id}/pause", s.handleVerb(s.Pause))
	mux.HandleFunc("POST /jobs/{id}/resume", s.handleVerb(s.Resume))
	mux.HandleFunc("GET /jobs/{id}/telemetry", s.handleJobTelemetry)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownJob):
		code = http.StatusNotFound
	case errors.Is(err, ErrBadTransition):
		code = http.StatusConflict
	case errors.Is(err, errShutdown):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", contentTypeProm)
	_ = s.reg.Write(w)
}

func (s *Server) handleMetricsText(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cfg.Telemetry != nil {
		_ = s.cfg.Telemetry.WriteSnapshot(w)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		if errors.Is(err, errShutdown) {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	switch st.State {
	case StateRejected:
		writeJSON(w, http.StatusConflict, st)
	case StateQueued:
		w.Header().Set("Retry-After", strconv.FormatInt(max(st.RetryAfterMS/1000, 1), 10))
		writeJSON(w, http.StatusAccepted, st)
	default:
		writeJSON(w, http.StatusCreated, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleVerb adapts a lifecycle method (Cancel/Pause/Resume) to a
// handler answering the job's post-verb status.
func (s *Server) handleVerb(verb func(id string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := verb(id); err != nil {
			writeErr(w, err)
			return
		}
		st, err := s.Get(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	}
}

func (s *Server) handleJobTelemetry(w http.ResponseWriter, r *http.Request) {
	tel, err := s.JobTelemetry(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = tel.WriteSnapshot(w)
}

// handleStream renders a job's step stream as Server-Sent Events: one
// "step" event per completed step, then one final "state" event with the
// terminal status. Slow consumers lose step events (counted under
// server.sse.dropped), never the final state.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sub, err := s.Subscribe(id, 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer sub.Close()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	send := func(event string, v any) bool {
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := w.Write([]byte("event: " + event + "\ndata: " + string(b) + "\n\n")); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	for {
		select {
		case ev := <-sub.C:
			if !send("step", ev) {
				return
			}
		case <-sub.Done:
			// Drain whatever was buffered before the terminal transition,
			// then close with the final status.
			for {
				select {
				case ev := <-sub.C:
					if !send("step", ev) {
						return
					}
					continue
				default:
				}
				break
			}
			if st, err := s.Get(id); err == nil {
				send("state", st)
			}
			return
		case <-r.Context().Done():
			return
		}
	}
}
