package server

// The HTTP/JSON surface. Routes (Go 1.22 pattern matching):
//
//	GET  /healthz             — admission ledger (budget, used, peak, counts)
//	GET  /metrics             — server-level telemetry snapshot (text)
//	POST /jobs                — submit a JobSpec, returns its JobStatus
//	GET  /jobs                — list all jobs
//	GET  /jobs/{id}           — one job's status
//	POST /jobs/{id}/cancel    — cancel in any non-terminal state
//	POST /jobs/{id}/pause     — checkpoint and release a running job
//	POST /jobs/{id}/resume    — re-admit a paused job from its checkpoint
//	GET  /jobs/{id}/telemetry — live per-job telemetry snapshot (text)
//
// Queued submissions answer 202 with a Retry-After header derived from
// the queue-position backoff hint; rejected ones answer 409.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the server's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleVerb(s.Cancel))
	mux.HandleFunc("POST /jobs/{id}/pause", s.handleVerb(s.Pause))
	mux.HandleFunc("POST /jobs/{id}/resume", s.handleVerb(s.Resume))
	mux.HandleFunc("GET /jobs/{id}/telemetry", s.handleJobTelemetry)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownJob):
		code = http.StatusNotFound
	case errors.Is(err, ErrBadTransition):
		code = http.StatusConflict
	case errors.Is(err, errShutdown):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cfg.Telemetry != nil {
		_ = s.cfg.Telemetry.WriteSnapshot(w)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		if errors.Is(err, errShutdown) {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	switch st.State {
	case StateRejected:
		writeJSON(w, http.StatusConflict, st)
	case StateQueued:
		w.Header().Set("Retry-After", strconv.FormatInt(max(st.RetryAfterMS/1000, 1), 10))
		writeJSON(w, http.StatusAccepted, st)
	default:
		writeJSON(w, http.StatusCreated, st)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleVerb adapts a lifecycle method (Cancel/Pause/Resume) to a
// handler answering the job's post-verb status.
func (s *Server) handleVerb(verb func(id string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := verb(id); err != nil {
			writeErr(w, err)
			return
		}
		st, err := s.Get(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	}
}

func (s *Server) handleJobTelemetry(w http.ResponseWriter, r *http.Request) {
	tel, err := s.JobTelemetry(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = tel.WriteSnapshot(w)
}
