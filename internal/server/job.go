// Package server implements the multi-tenant training job server: an
// HTTP/JSON front end over the gist training runtime that admits
// concurrent jobs against a global memory budget using the planner's
// footprint predictions, schedules them fairly across tenants over a
// shared codec worker pool and buffer pool, and drives every job through
// a full lifecycle — submit, pause, checkpoint, resume, cancel — on the
// crash-safe v3 checkpoints. Jobs that cannot fit are queued with a
// backoff hint or re-planned at a higher-compression Gist encoding
// (graceful degradation) before being rejected; a per-job watchdog
// quarantines jobs that stop making progress without taking the server
// down with them.
package server

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gist/internal/faults"
	"gist/internal/telemetry"
	"gist/internal/telemetry/flightrec"
	"gist/internal/train"
)

// State is a job's lifecycle state. Queued, Running and Paused are
// transient; the rest are terminal — a job enters exactly one terminal
// state exactly once, which the soak harness asserts.
type State string

const (
	// StateQueued marks a job admitted but waiting for budget or a slot.
	StateQueued State = "queued"
	// StateRunning marks a job with a live training goroutine.
	StateRunning State = "running"
	// StatePaused marks a job checkpointed and released; Resume re-admits.
	StatePaused State = "paused"
	// StateCompleted marks a job that finished all its steps.
	StateCompleted State = "completed"
	// StateCancelled marks a job stopped by the caller, its deadline, or
	// server shutdown.
	StateCancelled State = "cancelled"
	// StateRejected marks a job that admission refused (over budget even
	// fully degraded, or queue full).
	StateRejected State = "rejected"
	// StateQuarantined marks a job the watchdog stopped for stalling; its
	// last checkpoint is preserved for post-mortem.
	StateQuarantined State = "quarantined"
	// StateFailed marks a job whose training loop errored out (e.g. a
	// step exhausted its fault-retry budget).
	StateFailed State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateCompleted, StateCancelled, StateRejected, StateQuarantined, StateFailed:
		return true
	}
	return false
}

// JobSpec is the caller's description of one training job.
type JobSpec struct {
	// Name is a human label; Tenant groups jobs for fair scheduling (the
	// scheduler favors tenants with the fewest running jobs). Both default
	// to "default".
	Name   string `json:"name"`
	Tenant string `json:"tenant"`
	// Network selects the model: "tinycnn" (16x16 inputs) or "tinyvgg"
	// (32x32 inputs). Default "tinycnn".
	Network string `json:"network"`
	// Classes and Batch size the task (defaults 4 and 8). Steps is the
	// total optimizer steps to run (default 50); LR the learning rate
	// (default 0.05); Seed drives weights, dropout and the data stream.
	Classes int     `json:"classes"`
	Batch   int     `json:"batch"`
	Steps   int     `json:"steps"`
	LR      float64 `json:"lr"`
	Seed    uint64  `json:"seed"`
	// Encoding selects the Gist stash configuration: "none", "lossless",
	// "fp16", "fp10" or "fp8" (default "none"). Under memory pressure,
	// AllowDegrade lets admission re-plan the job at the next
	// higher-compression rung of that ladder instead of queueing or
	// rejecting it.
	Encoding     string `json:"encoding"`
	AllowDegrade bool   `json:"allow_degrade"`
	// Technique narrows the stash configuration to one codec technique
	// ("binarize", "ssdc", "dpr", "zvc", "entropy"), or "adaptive" for
	// per-layer minimum-bytes selection across the lossless tier. Layered
	// over Encoding: the rung still supplies the DPR format and the
	// degradation ladder. As a compatibility shim, a technique name sent
	// in the legacy Encoding field is accepted and treated as Technique.
	Technique string `json:"technique,omitempty"`
	// Shards > 1 runs the job as a data-parallel replica group of that
	// many micro-shards (and replicas), multiplying both the per-step
	// batch and the admitted footprint.
	Shards int `json:"shards"`
	// DeadlineMS, when positive, cancels the job that long after
	// submission — a queued job whose deadline lapses is cancelled
	// without ever starting.
	DeadlineMS int64 `json:"deadline_ms"`
	// CheckpointEvery is the periodic checkpoint interval in steps
	// (default: the server's; 0 inherits). MaxRetries is the per-step
	// fault-retry budget.
	CheckpointEvery int `json:"checkpoint_every"`
	MaxRetries      int `json:"max_retries"`
	// StashBudget, when positive, caps the bytes of stashed feature maps
	// the job holds in RAM; the rest spill to sealed encoded pages in the
	// server's spill directory. Admission counts only the capped hot tier
	// against the memory budget, so a spilling job admits smaller. The
	// budget is per job (split across replicas when Shards > 1).
	StashBudget int64 `json:"stash_budget,omitempty"`
	// Faults, when non-nil, attaches a deterministic fault injector to
	// the job's stash pipeline (soak/chaos testing).
	Faults *faults.Config `json:"faults,omitempty"`
}

// withDefaults fills the zero fields.
func (s JobSpec) withDefaults() JobSpec {
	if s.Name == "" {
		s.Name = "job"
	}
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Network == "" {
		s.Network = "tinycnn"
	}
	if s.Classes <= 0 {
		s.Classes = 4
	}
	if s.Batch <= 0 {
		s.Batch = 8
	}
	if s.Steps <= 0 {
		s.Steps = 50
	}
	if s.LR <= 0 {
		s.LR = 0.05
	}
	if s.Technique == "" && s.Encoding != "" && ladderIndex(s.Encoding) < 0 && isTechniqueName(s.Encoding) {
		// Legacy shim: a technique name in the Encoding field moves to
		// Technique, with the rung itself defaulting.
		s.Technique, s.Encoding = s.Encoding, "none"
	}
	if s.Encoding == "" {
		s.Encoding = "none"
	}
	if s.Shards < 1 {
		s.Shards = 1
	}
	return s
}

// JobStatus is the JSON view of one job.
type JobStatus struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	State State   `json:"state"`
	// Reason explains terminal states and pauses ("deadline exceeded",
	// "watchdog: no progress for 2s", ...).
	Reason string `json:"reason,omitempty"`
	// Encoding is the effective encoding after any degradation; Degraded
	// reports that it differs from the requested one.
	Encoding string `json:"encoding"`
	Degraded bool   `json:"degraded,omitempty"`
	// FootprintBytes is the admitted memory reservation.
	FootprintBytes int64 `json:"footprint_bytes"`
	// Step and Loss track training progress.
	Step int    `json:"step"`
	Loss string `json:"loss,omitempty"`
	// RetryAfterMS is the backoff hint while queued: roughly how long the
	// caller should wait before expecting the job to have started.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Checkpoint is the path of the job's latest checkpoint, if any.
	Checkpoint string `json:"checkpoint,omitempty"`
	Submitted  string `json:"submitted"`
}

// job is the server's internal job record. The mutex guards state, reason
// and encoding; step/progress are atomics so the watchdog and HTTP
// handlers never contend with the training goroutine.
type job struct {
	id   string
	seq  int // submission order, for FIFO within a tenant
	spec JobSpec

	mu        sync.Mutex
	state     State
	reason    string
	enc       string // effective encoding (after degradation)
	footprint int64
	cancel    func(error) // cancels the running context with a cause
	// terminals counts transitions into terminal states; the soak harness
	// asserts it is exactly 1 for every job.
	terminals int

	step      atomic.Int64 // completed steps
	lossBits  atomic.Uint64
	progress  atomic.Int64 // UnixNano of the last completed step
	submitted time.Time
	deadline  time.Time // zero when the spec has no deadline

	tel  *telemetry.Sink
	ckpt string        // checkpoint path ("" until first save)
	done chan struct{} // closed when the job reaches a terminal state

	// rec taps tel's span/instant/mem stream when flight recording is on.
	rec *flightrec.Recorder
	// report is the last recovery report the training loop produced
	// (single-executor runs only); guarded by mu.
	report *train.RecoveryReport

	// Live streaming: subscribers receive one StreamEvent per completed
	// step; lastStepNS times the delta between steps.
	subMu      sync.Mutex
	subs       map[*subscriber]struct{}
	lastStepNS atomic.Int64
}

// setReport stores the run's recovery report for flight dumps.
func (j *job) setReport(r *train.RecoveryReport) {
	j.mu.Lock()
	j.report = r
	j.mu.Unlock()
}

// recoveryReport returns the last stored recovery report (nil if none).
func (j *job) recoveryReport() *train.RecoveryReport {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// setState transitions the job. Terminal states latch: once a job is
// terminal, further transitions are ignored, preserving the
// exactly-one-terminal-state invariant even when a cancel races the
// job's own completion.
func (j *job) setState(s State, reason string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = s
	if reason != "" {
		j.reason = reason
	}
	if s.Terminal() {
		j.terminals++
		close(j.done)
	}
	return true
}

// setCkpt records the job's latest checkpoint path (called from the
// training goroutine; readers go through status()).
func (j *job) setCkpt(path string) {
	j.mu.Lock()
	j.ckpt = path
	j.mu.Unlock()
}

// status renders the JSON view.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	state, reason, enc, fp, ckpt := j.state, j.reason, j.enc, j.footprint, j.ckpt
	j.mu.Unlock()
	st := &JobStatus{
		ID:             j.id,
		Spec:           j.spec,
		State:          state,
		Reason:         reason,
		Encoding:       enc,
		Degraded:       enc != j.spec.Encoding,
		FootprintBytes: fp,
		Step:           int(j.step.Load()),
		Checkpoint:     ckpt,
		Submitted:      j.submitted.Format(time.RFC3339Nano),
	}
	if bits := j.lossBits.Load(); bits != 0 {
		st.Loss = fmt.Sprintf("%.4f", math.Float64frombits(bits))
	}
	return st
}
