package server

import (
	"strings"
	"testing"
)

// TestFootprintLadderMonotonic pins the degradation premise: each rung
// of the encoding ladder must plan a strictly smaller footprint than the
// one before it (that is what makes walking the ladder a degradation).
func TestFootprintLadderMonotonic(t *testing.T) {
	spec := JobSpec{Network: "tinyvgg", Batch: 8, Classes: 4}.withDefaults()
	var prev int64
	for i, enc := range ladder {
		fp, err := footprint(spec, enc)
		if err != nil {
			t.Fatalf("%s: %v", enc, err)
		}
		if fp <= 0 {
			t.Fatalf("%s: non-positive footprint %d", enc, fp)
		}
		if i > 0 && fp >= prev {
			t.Fatalf("%s footprint %d not below %s footprint %d", enc, fp, ladder[i-1], prev)
		}
		prev = fp
	}
}

// TestFootprintScalesWithShards pins the replica term: a sharded job
// must reserve more than a single-executor one.
func TestFootprintScalesWithShards(t *testing.T) {
	spec := JobSpec{Network: "tinycnn", Batch: 8}.withDefaults()
	one, err := footprint(spec, "none")
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = 4
	four, err := footprint(spec, "none")
	if err != nil {
		t.Fatal(err)
	}
	if four < 4*one {
		t.Fatalf("4-shard footprint %d < 4x single %d", four, one)
	}
}

// TestPlanAdmissionDegrades verifies the ladder walk: a budget between
// the fp16 and none footprints admits an AllowDegrade job at a
// compressed rung, and refuses the same job without the opt-in.
func TestPlanAdmissionDegrades(t *testing.T) {
	spec := JobSpec{Network: "tinyvgg", Batch: 8, AllowDegrade: true}.withDefaults()
	full, _ := footprint(spec, "none")
	fp8, _ := footprint(spec, "fp8")
	limit := (full + fp8) / 2

	enc, fp, ok, err := planAdmission(spec, "none", limit)
	if err != nil || !ok {
		t.Fatalf("planAdmission: ok=%v err=%v", ok, err)
	}
	if enc == "none" || fp > limit {
		t.Fatalf("chose %s at %d bytes (limit %d)", enc, fp, limit)
	}

	spec.AllowDegrade = false
	_, _, ok, err = planAdmission(spec, "none", limit)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("non-degradable job fit a budget below its footprint")
	}
}

// TestPlanAdmissionRejectsImpossible: nothing fits a 1-byte budget.
func TestPlanAdmissionRejectsImpossible(t *testing.T) {
	spec := JobSpec{AllowDegrade: true}.withDefaults()
	_, _, ok, err := planAdmission(spec, "none", 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("job fit a 1-byte budget")
	}
}

// TestBadSpecErrors pins the validation errors.
func TestBadSpecErrors(t *testing.T) {
	if _, err := footprint(JobSpec{Network: "resnet50"}.withDefaults(), "none"); err == nil || !strings.Contains(err.Error(), "unknown network") {
		t.Fatalf("unknown network: err = %v", err)
	}
	if _, err := footprint(JobSpec{}.withDefaults(), "zip"); err == nil || !strings.Contains(err.Error(), "unknown encoding") {
		t.Fatalf("unknown encoding: err = %v", err)
	}
}
