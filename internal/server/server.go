package server

// The job server core: admission, fair scheduling, the per-job training
// goroutine, the watchdog, and graceful shutdown.
//
// Concurrency model: one mutex guards the server's tables (jobs, queue,
// running set, memory ledger). Each running job gets its own goroutine
// and a context.WithCancelCause; pause, user cancel, watchdog quarantine
// and shutdown are all just cancellations with distinct sentinel causes,
// classified once when the training loop returns. The training engines
// poll that context at step phase boundaries, so every teardown path —
// however it was triggered — exits within one step's latency with pooled
// buffers released.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"gist/internal/bufpool"
	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/parallel"
	"gist/internal/telemetry"
	"gist/internal/telemetry/flightrec"
	"gist/internal/telemetry/promexport"
	"gist/internal/train"
)

// Sentinel cancellation causes. The training goroutine classifies the
// context's cause into the job's terminal (or paused) state.
var (
	errPaused     = errors.New("server: job paused")
	errStalled    = errors.New("server: job stalled")
	errShutdown   = errors.New("server: shutting down")
	errUserCancel = errors.New("server: cancelled by user")
)

// ErrUnknownJob reports an id no job was ever submitted under.
var ErrUnknownJob = errors.New("server: unknown job")

// ErrBadTransition reports a lifecycle verb applied in the wrong state
// (e.g. resuming a running job).
var ErrBadTransition = errors.New("server: invalid state transition")

// Config tunes the server. The zero value gets sane defaults from New.
type Config struct {
	// MemBudgetBytes is the global admission budget every concurrently
	// held job footprint must fit under (default 1 GiB).
	MemBudgetBytes int64
	// MaxRunning caps concurrently training jobs (default 4).
	MaxRunning int
	// QueueLimit caps the admission queue; past it new jobs are rejected
	// (default 64).
	QueueLimit int
	// StallTimeout quarantines a running job that completes no step for
	// this long (default 30s). WatchdogEvery is the scan interval
	// (default StallTimeout/4, at most 1s).
	StallTimeout  time.Duration
	WatchdogEvery time.Duration
	// CheckpointDir holds per-job checkpoints (default: a fresh temp
	// dir). CheckpointEvery is the default periodic checkpoint interval
	// in steps (default 25).
	CheckpointDir   string
	CheckpointEvery int
	// SpillDir holds the stash stores' spill files for jobs that set a
	// StashBudget (default: the checkpoint dir). StashBudget, when
	// positive, is the default per-job hot-tier cap applied to specs that
	// set none.
	SpillDir    string
	StashBudget int64
	// MetricsEvery, when positive, writes each job's telemetry snapshot
	// to MetricsOut every N steps (the daemon points this at stdout).
	MetricsEvery int
	MetricsOut   io.Writer
	// Workers sizes the codec worker pool all jobs share (0 = inline
	// encode/decode, no pool).
	Workers int
	// Telemetry, when non-nil, receives server-level counters (jobs
	// admitted/rejected/degraded/quarantined, queue depth, used bytes).
	Telemetry *telemetry.Sink
	// OnStep, when non-nil, runs after every completed step of every job
	// on that job's training goroutine — the soak harness's chaos hook.
	// Blocking here stalls the job (which is exactly what the watchdog
	// tests want); honor ctx to unblock.
	OnStep func(ctx context.Context, jobID string, step int)
	// FlightRecDir, when set, arms a per-job flight recorder: the last
	// FlightRecEvents telemetry events are dumped there as JSON when a
	// job fails, stalls into quarantine, or misses its deadline (and on
	// demand via DumpFlightRecords). FlightRecEvents defaults to
	// flightrec.DefaultEvents.
	FlightRecDir    string
	FlightRecEvents int
}

func (c Config) withDefaults() Config {
	if c.MemBudgetBytes <= 0 {
		c.MemBudgetBytes = 1 << 30
	}
	if c.MaxRunning <= 0 {
		c.MaxRunning = 4
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.WatchdogEvery <= 0 {
		c.WatchdogEvery = min(c.StallTimeout/4, time.Second)
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 25
	}
	return c
}

// Server is a multi-tenant training job server. Construct with New,
// submit jobs with Submit, and stop with Shutdown.
type Server struct {
	cfg     Config
	pool    *bufpool.Pool  // buffer pool shared by every job
	workers *parallel.Pool // codec worker pool shared by every job (nil = inline)

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // submission order, for List
	queue   []*job
	running map[string]*job
	seq     int
	used    int64 // sum of running job footprints
	peak    int64 // high-water mark of used
	closed  bool

	wg           sync.WaitGroup // training goroutines
	watchdogDone chan struct{}

	started time.Time

	admitted    *telemetry.Counter
	rejected    *telemetry.Counter
	degraded    *telemetry.Counter
	quarantined *telemetry.Counter
	usedGauge   *telemetry.Gauge
	queueGauge  *telemetry.Gauge
	sseDropped  *telemetry.Counter
	flightDumps *telemetry.Counter

	// reg aggregates the server sink plus every job sink (labeled by
	// job_id/tenant) into the Prometheus /metrics exposition.
	reg *promexport.Registry
}

// New builds and starts a server (its watchdog runs until Shutdown).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.CheckpointDir == "" {
		dir, err := os.MkdirTemp("", "gistserve-ckpt-")
		if err != nil {
			return nil, err
		}
		cfg.CheckpointDir = dir
	} else if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return nil, err
	}
	if cfg.SpillDir == "" {
		cfg.SpillDir = cfg.CheckpointDir
	} else if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
		return nil, err
	}
	if cfg.FlightRecDir != "" {
		if err := os.MkdirAll(cfg.FlightRecDir, 0o755); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:          cfg,
		pool:         bufpool.New(),
		jobs:         map[string]*job{},
		running:      map[string]*job{},
		watchdogDone: make(chan struct{}),
		started:      time.Now(),
	}
	if cfg.Workers > 0 {
		s.workers = parallel.NewPool(cfg.Workers)
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.admitted = cfg.Telemetry.Counter("server.jobs.admitted")
	s.rejected = cfg.Telemetry.Counter("server.jobs.rejected")
	s.degraded = cfg.Telemetry.Counter("server.jobs.degraded")
	s.quarantined = cfg.Telemetry.Counter("server.jobs.quarantined")
	s.usedGauge = cfg.Telemetry.Gauge("server.mem.used_bytes")
	s.queueGauge = cfg.Telemetry.Gauge("server.queue.depth")
	s.sseDropped = cfg.Telemetry.Counter("server.sse.dropped")
	s.flightDumps = cfg.Telemetry.Counter("server.flightrec.dumps")
	s.reg = promexport.NewRegistry()
	s.reg.Register(cfg.Telemetry)
	go s.watchdog()
	return s, nil
}

// Submit admits a job: it is started immediately when its predicted
// footprint fits the free budget and a slot is open, queued with a
// backoff hint when it fits the total budget but not right now, and
// rejected (terminal) when it cannot fit even fully degraded or the
// queue is full. The returned status reports the outcome; err is non-nil
// only for malformed specs.
func (s *Server) Submit(spec JobSpec) (*JobStatus, error) {
	spec = spec.withDefaults()
	if spec.StashBudget <= 0 {
		spec.StashBudget = s.cfg.StashBudget
	}
	// Validate and plan against the whole budget before taking the lock:
	// a job that cannot fit an empty server is rejected outright.
	enc, fp, fits, err := planAdmission(spec, spec.Encoding, s.cfg.MemBudgetBytes)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errShutdown
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%04d", s.seq),
		seq:       s.seq,
		spec:      spec,
		state:     StateQueued,
		enc:       enc,
		footprint: fp,
		submitted: time.Now(),
		tel:       telemetry.New(),
		done:      make(chan struct{}),
	}
	if spec.DeadlineMS > 0 {
		j.deadline = j.submitted.Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	}
	if s.cfg.FlightRecDir != "" {
		j.rec = flightrec.New(s.cfg.FlightRecEvents)
		j.tel.SetObserver(j.rec)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.reg.Register(j.tel,
		promexport.Label{Key: "job_id", Value: j.id},
		promexport.Label{Key: "tenant", Value: spec.Tenant})

	switch {
	case !fits:
		s.rejected.Inc()
		s.mu.Unlock()
		j.setState(StateRejected, fmt.Sprintf(
			"footprint %d bytes exceeds budget %d even at maximum degradation", fp, s.cfg.MemBudgetBytes))
		return s.statusOf(j), nil
	case len(s.queue) >= s.cfg.QueueLimit:
		s.rejected.Inc()
		s.mu.Unlock()
		j.setState(StateRejected, fmt.Sprintf("admission queue full (%d jobs)", s.cfg.QueueLimit))
		return s.statusOf(j), nil
	}
	if enc != spec.Encoding {
		s.degraded.Inc()
	}
	s.admitted.Inc()
	s.queue = append(s.queue, j)
	s.queueGauge.Set(int64(len(s.queue)))
	s.pumpLocked()
	s.mu.Unlock()
	return s.statusOf(j), nil
}

// pumpLocked starts every queued job that now fits, fairly: candidates
// are ordered by their tenant's running-job count (fewest first) and
// then FIFO, and the whole queue is scanned so a large job at the head
// cannot block a small one behind it (no head-of-line blocking). Queued
// jobs past their deadline are cancelled; under pressure, a queued job
// that opted into degradation is re-planned at a higher-compression
// encoding against the currently free budget — starting degraded beats
// waiting. Callers hold s.mu.
func (s *Server) pumpLocked() {
	if s.closed {
		return
	}
	// Expire queued deadlines first: a full server must not pin an
	// already-dead job in the queue until a slot happens to free.
	now := time.Now()
	for _, j := range append([]*job(nil), s.queue...) {
		if !j.deadline.IsZero() && now.After(j.deadline) {
			s.dropFromQueue(j)
			j.setState(StateCancelled, "deadline exceeded before start")
		}
	}
	for {
		if len(s.running) >= s.cfg.MaxRunning || len(s.queue) == 0 {
			return
		}
		perTenant := map[string]int{}
		for _, j := range s.running {
			perTenant[j.spec.Tenant]++
		}
		order := append([]*job(nil), s.queue...)
		sort.SliceStable(order, func(a, b int) bool {
			ra, rb := perTenant[order[a].spec.Tenant], perTenant[order[b].spec.Tenant]
			if ra != rb {
				return ra < rb
			}
			return order[a].seq < order[b].seq
		})
		started := false
		for _, j := range order {
			if len(s.running) >= s.cfg.MaxRunning {
				break
			}
			free := s.cfg.MemBudgetBytes - s.used
			j.mu.Lock()
			enc, fp := j.enc, j.footprint
			j.mu.Unlock()
			if fp > free {
				// Re-plan at a harder compression against what is free
				// right now (AllowDegrade only).
				denc, dfp, ok, err := planAdmission(j.spec, enc, free)
				if err != nil || !ok {
					continue
				}
				j.mu.Lock()
				j.enc, j.footprint = denc, dfp
				j.mu.Unlock()
				enc, fp = denc, dfp
				s.degraded.Inc()
			}
			s.dropFromQueue(j)
			s.startLocked(j)
			started = true
			break
		}
		if !started {
			return
		}
	}
}

// dropFromQueue removes j from the queue slice. Callers hold s.mu.
func (s *Server) dropFromQueue(j *job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	s.queueGauge.Set(int64(len(s.queue)))
}

// startLocked reserves j's footprint, binds its cancellation, and
// launches its training goroutine. The cancel func is installed before
// the goroutine exists, so Cancel/Pause can never observe a running job
// without a cancel hook. Callers hold s.mu.
func (s *Server) startLocked(j *job) {
	s.used += j.footprint
	if s.used > s.peak {
		s.peak = s.used
	}
	s.usedGauge.Set(s.used)
	s.running[j.id] = j
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	j.setState(StateRunning, "")
	j.progress.Store(time.Now().UnixNano())
	s.wg.Add(1)
	go s.runJob(j, ctx, cancel)
}

// runJob drives one job's training lifecycle on its own goroutine:
// trains under the cancellable (and possibly deadlined) context,
// classifies the exit, releases the reservation and wakes the scheduler.
func (s *Server) runJob(j *job, ctx context.Context, cancel context.CancelCauseFunc) {
	defer s.wg.Done()
	defer cancel(nil)
	if !j.deadline.IsZero() {
		dctx, dcancel := context.WithDeadline(ctx, j.deadline)
		defer dcancel()
		ctx = dctx
	}

	state, reason := s.train(ctx, j)

	s.mu.Lock()
	delete(s.running, j.id)
	s.used -= j.footprint
	s.usedGauge.Set(s.used)
	closed := s.closed
	s.mu.Unlock()

	if state == StatePaused {
		if closed {
			// A pause that raced shutdown still ends terminal.
			j.setState(StateCancelled, "server shutdown")
		} else {
			j.mu.Lock()
			if !j.state.Terminal() {
				j.state, j.reason = StatePaused, reason
			}
			j.mu.Unlock()
		}
	} else {
		if state == StateQuarantined {
			s.quarantined.Inc()
		}
		// Dump before the terminal transition so anyone unblocked by Wait
		// already finds the flight record on disk.
		if shouldDump(state, reason) {
			s.dumpFlightRecord(j, state, reason)
		}
		j.setState(state, reason)
	}
	s.mu.Lock()
	s.pumpLocked()
	s.mu.Unlock()
}

// train builds the job's engine and runs it to an exit, returning the
// state the exit classifies to. Pause/stall exits persist a checkpoint
// first so the job can resume (or be post-mortemed) byte-identically.
func (s *Server) train(ctx context.Context, j *job) (State, string) {
	spec := j.spec
	j.mu.Lock()
	encName := j.enc
	resumeFrom := j.ckpt
	j.mu.Unlock()

	cfg, err := jobConfig(spec, encName)
	if err != nil {
		return StateFailed, err.Error()
	}
	g, err := buildNet(spec)
	if err != nil {
		return StateFailed, err.Error()
	}
	var analysis *encoding.Analysis
	if cfg.Enabled() {
		analysis = encoding.Analyze(g, cfg)
	}
	opts := train.Options{
		Seed:      spec.Seed,
		Encodings: analysis,
		Telemetry: j.tel,
		Codec:     &encoding.Codec{Pool: s.workers, Tel: j.tel},
		Pool:      s.pool,
	}
	if spec.StashBudget > 0 {
		opts.StashBudget = spec.StashBudget
		opts.SpillDir = s.cfg.SpillDir
	}
	if spec.Faults != nil {
		opts.Faults = faults.New(*spec.Faults)
		opts.Integrity = true
	}

	ch, size := inputGeom(spec)
	d := train.NewDataset(spec.Classes, ch, size, 0.3, spec.Seed)

	ckptEvery := spec.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = s.cfg.CheckpointEvery
	}
	ckptPath := filepath.Join(s.cfg.CheckpointDir, j.id+".ckpt")

	runCfg := train.RunConfig{
		Minibatch:    spec.Batch,
		Steps:        spec.Steps,
		LR:           float32(spec.LR),
		MetricsEvery: s.cfg.MetricsEvery,
		MetricsOut:   s.cfg.MetricsOut,
		OnStep: func(step int, loss float64) {
			j.step.Store(int64(step))
			j.lossBits.Store(math.Float64bits(loss))
			j.progress.Store(time.Now().UnixNano())
			s.publishStep(j, step, loss)
			if s.cfg.OnStep != nil {
				s.cfg.OnStep(ctx, j.id, step)
			}
		},
	}

	var runErr error
	var saveCkpt func() error

	if spec.Shards > 1 {
		group := train.NewReplicaGroup(g, opts, train.ReplicaConfig{
			Replicas:   spec.Shards,
			Shards:     spec.Shards,
			MaxRetries: spec.MaxRetries,
		})
		defer group.Close()
		if resumeFrom != "" {
			for _, e := range group.Executors() {
				if err := e.LoadCheckpointFile(resumeFrom); err != nil {
					return StateFailed, fmt.Sprintf("resume: %v", err)
				}
			}
			group.SetResumeStep(group.Executor().ResumeStep())
			d.Skip(group.GroupBatch(), group.ResumeStep())
			j.step.Store(int64(group.ResumeStep()))
		}
		runCfg.Minibatch = group.GroupBatch()
		saveCkpt = func() error { return group.Executor().SaveCheckpointFile(ckptPath) }
		// Periodic group checkpoints ride the step callback.
		base := runCfg.OnStep
		runCfg.OnStep = func(step int, loss float64) {
			base(step, loss)
			if ckptEvery > 0 && step%ckptEvery == 0 {
				if saveCkpt() == nil {
					j.setCkpt(ckptPath)
				}
			}
		}
		_, runErr = train.RunContext(ctx, group, d, runCfg)
	} else {
		e := train.NewExecutor(g, opts)
		defer e.ReleaseBuffers()
		if resumeFrom != "" {
			if err := e.LoadCheckpointFile(resumeFrom); err != nil {
				return StateFailed, fmt.Sprintf("resume: %v", err)
			}
			d.Skip(spec.Batch, e.ResumeStep())
			j.step.Store(int64(e.ResumeStep()))
		}
		saveCkpt = func() error { return e.SaveCheckpointFile(ckptPath) }
		rcfg := train.RecoveryConfig{
			MaxRetries:      spec.MaxRetries,
			CheckpointPath:  ckptPath,
			CheckpointEvery: ckptEvery,
		}
		var report *train.RecoveryReport
		_, report, runErr = train.RunRecoverable(ctx, e, d, runCfg, rcfg)
		j.setReport(report)
		if report != nil && report.CheckpointSaves > 0 {
			j.setCkpt(ckptPath)
		}
	}

	cause := context.Cause(ctx)
	switch {
	case runErr == nil:
		return StateCompleted, ""
	case errors.Is(cause, errPaused):
		if err := saveCkpt(); err != nil {
			return StateFailed, fmt.Sprintf("pause checkpoint: %v", err)
		}
		j.setCkpt(ckptPath)
		return StatePaused, "paused by user"
	case errors.Is(cause, errStalled):
		// Best-effort post-mortem checkpoint; the engine state was rolled
		// back to the last completed step.
		if saveCkpt() == nil {
			j.setCkpt(ckptPath)
		}
		return StateQuarantined, cause.Error()
	case errors.Is(runErr, context.DeadlineExceeded) || errors.Is(cause, context.DeadlineExceeded):
		return StateCancelled, "deadline exceeded"
	case errors.Is(cause, errShutdown):
		return StateCancelled, "server shutdown"
	case errors.Is(cause, errUserCancel):
		return StateCancelled, "cancelled by user"
	case errors.Is(runErr, context.Canceled):
		return StateCancelled, "cancelled"
	default:
		return StateFailed, runErr.Error()
	}
}

// Cancel stops a job in any non-terminal state: a queued or paused job
// goes terminal immediately; a running one is cancelled and classified
// by its goroutine. Cancelling a terminal job is a no-op.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	s.dropFromQueue(j)
	s.mu.Unlock()

	j.mu.Lock()
	state, cancel := j.state, j.cancel
	j.mu.Unlock()
	switch state {
	case StateRunning:
		if cancel != nil {
			cancel(errUserCancel)
		}
	case StateQueued, StatePaused:
		j.setState(StateCancelled, "cancelled by user")
		s.mu.Lock()
		s.pumpLocked()
		s.mu.Unlock()
	}
	return nil
}

// Pause checkpoints a running job and releases its budget and slot; the
// job parks in StatePaused until Resume or Cancel.
func (s *Server) Pause(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	j.mu.Lock()
	state, cancel := j.state, j.cancel
	j.mu.Unlock()
	if state != StateRunning || cancel == nil {
		return fmt.Errorf("%w: pause in state %s", ErrBadTransition, state)
	}
	cancel(errPaused)
	return nil
}

// Resume re-admits a paused job: it rejoins the queue (at its already
// chosen encoding and footprint) and restarts from its checkpoint,
// byte-identical to a run that was never paused.
func (s *Server) Resume(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if s.closed {
		return errShutdown
	}
	j.mu.Lock()
	state := j.state
	if state == StatePaused {
		j.state, j.reason = StateQueued, ""
	}
	j.mu.Unlock()
	if state != StatePaused {
		return fmt.Errorf("%w: resume in state %s", ErrBadTransition, state)
	}
	s.queue = append(s.queue, j)
	s.queueGauge.Set(int64(len(s.queue)))
	s.pumpLocked()
	return nil
}

// statusOf renders a job's status, attaching the queue backoff hint.
func (s *Server) statusOf(j *job) *JobStatus {
	st := j.status()
	if st.State == StateQueued {
		s.mu.Lock()
		pos := len(s.queue)
		for i, q := range s.queue {
			if q == j {
				pos = i
				break
			}
		}
		s.mu.Unlock()
		st.RetryAfterMS = int64(pos+1) * 100
	}
	return st
}

// Get returns a job's status.
func (s *Server) Get(id string) (*JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return s.statusOf(j), nil
}

// List returns every job's status in submission order.
func (s *Server) List() []*JobStatus {
	s.mu.Lock()
	js := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]*JobStatus, len(js))
	for i, j := range js {
		out[i] = s.statusOf(j)
	}
	return out
}

// JobTelemetry returns a job's telemetry sink for live snapshots.
func (s *Server) JobTelemetry(id string) (*telemetry.Sink, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.tel, nil
}

// Wait blocks until the job leaves every transient state for a terminal
// one (paused jobs do not count as done).
func (s *Server) Wait(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	<-j.done
	return nil
}

// Health is the /healthz payload: the admission ledger plus a build_info
// line (Go version and VCS revision when the binary carries a stamp).
type Health struct {
	BudgetBytes int64  `json:"budget_bytes"`
	UsedBytes   int64  `json:"used_bytes"`
	PeakBytes   int64  `json:"peak_bytes"`
	Running     int    `json:"running"`
	Queued      int    `json:"queued"`
	Jobs        int    `json:"jobs"`
	Uptime      string `json:"uptime"`
	GoVersion   string `json:"go_version"`
	Revision    string `json:"revision"`
}

// Health reports the server's admission ledger.
func (s *Server) Health() Health {
	goVersion, revision := promexport.Build()
	s.mu.Lock()
	defer s.mu.Unlock()
	return Health{
		BudgetBytes: s.cfg.MemBudgetBytes,
		UsedBytes:   s.used,
		PeakBytes:   s.peak,
		Running:     len(s.running),
		Queued:      len(s.queue),
		Jobs:        len(s.jobs),
		Uptime:      time.Since(s.started).Round(time.Millisecond).String(),
		GoVersion:   goVersion,
		Revision:    revision,
	}
}

// PeakBytes returns the admission ledger's high-water mark (the soak
// harness asserts it stays within budget).
func (s *Server) PeakBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// PoolStats exposes the shared buffer pool's counters (the soak harness
// asserts InUseBytes is zero after shutdown).
func (s *Server) PoolStats() bufpool.Stats { return s.pool.Stats() }

// watchdog periodically quarantines running jobs that have made no step
// progress within StallTimeout, and sweeps queued jobs whose deadlines
// lapsed. A stalled job is cancelled with errStalled; its goroutine
// checkpoints what it has and parks the job in StateQuarantined — the
// server itself keeps serving.
func (s *Server) watchdog() {
	t := time.NewTicker(s.cfg.WatchdogEvery)
	defer t.Stop()
	for {
		select {
		case <-s.watchdogDone:
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-s.cfg.StallTimeout).UnixNano()
		s.mu.Lock()
		var stalled []*job
		for _, j := range s.running {
			if j.progress.Load() < cutoff {
				stalled = append(stalled, j)
			}
		}
		s.pumpLocked() // sweep queued deadline expirations
		s.mu.Unlock()
		for _, j := range stalled {
			j.mu.Lock()
			cancel := j.cancel
			j.mu.Unlock()
			if cancel != nil {
				cancel(fmt.Errorf("%w: no step progress within %v", errStalled, s.cfg.StallTimeout))
			}
		}
	}
}

// Shutdown stops the server: queued and paused jobs are cancelled,
// running jobs are cancelled with the shutdown cause, and the call waits
// (bounded by ctx) for every training goroutine to exit. After Shutdown
// every job is in exactly one terminal state and the shared pool holds
// no checked-out buffers.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.watchdogDone)
	queued := s.queue
	s.queue = nil
	s.queueGauge.Set(0)
	var paused, runningJobs []*job
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case StatePaused:
			paused = append(paused, j)
		case StateRunning:
			runningJobs = append(runningJobs, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()

	for _, j := range queued {
		j.setState(StateCancelled, "server shutdown")
	}
	for _, j := range paused {
		j.setState(StateCancelled, "server shutdown")
	}
	for _, j := range runningJobs {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(errShutdown)
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		return ctx.Err()
	}
	s.baseCancel()
	return nil
}
