package server

// Per-job live streaming: every completed training step publishes one
// StreamEvent to each subscriber over a bounded buffered channel. The
// training goroutine never blocks on a slow consumer — a full buffer
// drops the event and counts it (per subscriber, and globally under
// server.sse.dropped) — so observation can never stall a job into the
// watchdog's arms. The HTTP layer renders subscriptions as Server-Sent
// Events; Subscribe is also usable directly in-process (the soak harness
// does).

import (
	"fmt"
	"sync/atomic"
	"time"
)

// StreamEvent is one per-step update on a job's stream.
type StreamEvent struct {
	Job  string  `json:"job"`
	Step int     `json:"step"`
	Loss float64 `json:"loss"`
	// StepNS is the wall-clock delta since the previous completed step
	// (0 on the first event of a run).
	StepNS int64 `json:"step_ns"`
	// RawBytes/HeldBytes/Ratio mirror the newest memory-timeline sample:
	// what the stash would hold uncompressed vs what it actually holds.
	RawBytes  int64   `json:"raw_bytes,omitempty"`
	HeldBytes int64   `json:"held_bytes,omitempty"`
	Ratio     float64 `json:"ratio,omitempty"`
	// State/Reason are filled on the final event of a stream.
	State  State  `json:"state"`
	Reason string `json:"reason,omitempty"`
}

// subscriber is one attached consumer.
type subscriber struct {
	ch      chan StreamEvent
	dropped atomic.Uint64
}

// Subscription is a live handle on one job's step stream. Receive from C;
// Done is closed when the job reaches a terminal state (drain C, then
// read the final status via Server.Get). Always Close.
type Subscription struct {
	C    <-chan StreamEvent
	Done <-chan struct{}
	j    *job
	sub  *subscriber
}

// DefaultStreamBuffer is the per-subscriber channel depth used when
// Subscribe is given a non-positive buffer.
const DefaultStreamBuffer = 64

// Subscribe attaches a consumer to a job's step stream. Terminal jobs can
// be subscribed to — Done is already closed and C stays empty, so SSE
// clients still get the final-state event.
func (s *Server) Subscribe(id string, buf int) (*Subscription, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	if buf <= 0 {
		buf = DefaultStreamBuffer
	}
	sub := &subscriber{ch: make(chan StreamEvent, buf)}
	j.subMu.Lock()
	if j.subs == nil {
		j.subs = map[*subscriber]struct{}{}
	}
	j.subs[sub] = struct{}{}
	j.subMu.Unlock()
	return &Subscription{C: sub.ch, Done: j.done, j: j, sub: sub}, nil
}

// Close detaches the subscription; the publisher stops copying events to
// it. Safe to call more than once.
func (sub *Subscription) Close() {
	if sub == nil {
		return
	}
	sub.j.subMu.Lock()
	delete(sub.j.subs, sub.sub)
	sub.j.subMu.Unlock()
}

// Dropped reports how many events this subscriber lost to a full buffer.
func (sub *Subscription) Dropped() uint64 {
	if sub == nil {
		return 0
	}
	return sub.sub.dropped.Load()
}

// publishStep fans one completed step out to the job's subscribers.
// Called on the training goroutine; must never block.
func (s *Server) publishStep(j *job, step int, loss float64) {
	now := time.Now().UnixNano()
	prev := j.lastStepNS.Swap(now)
	j.subMu.Lock()
	n := len(j.subs)
	j.subMu.Unlock()
	if n == 0 {
		return
	}
	ev := StreamEvent{Job: j.id, Step: step, Loss: loss, State: StateRunning}
	if prev != 0 {
		ev.StepNS = now - prev
	}
	if sm, ok := j.tel.LastMemSample(); ok {
		ev.RawBytes, ev.HeldBytes = sm.RawBytes, sm.HeldBytes
		if sm.HeldBytes > 0 {
			ev.Ratio = float64(sm.RawBytes) / float64(sm.HeldBytes)
		}
	}
	j.subMu.Lock()
	for sub := range j.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			s.sseDropped.Inc()
		}
	}
	j.subMu.Unlock()
}
