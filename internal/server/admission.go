package server

// Admission control: predict a job's peak memory footprint with the
// planner before it runs a single step, and decide admit / queue / reject
// against the server's global budget. The footprint of one executor is
// the planner's shared-buffer total plus two weight-sized arrays
// (parameters + momenta); a replica group multiplies that by the replica
// count and adds the flat shard-gradient buffers the reduce holds.
//
// Degradation walks the encoding ladder none → lossless → fp16 → fp10 →
// fp8: each rung re-plans the job at a higher-compression Gist
// configuration, trading activation precision for footprint, exactly the
// paper's lossless/lossy spectrum. A job that opted in (AllowDegrade) is
// re-planned down the ladder before being queued or rejected.

import (
	"fmt"
	"strings"

	"gist/internal/core"
	"gist/internal/encoding"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/networks"
)

// ladder is the degradation order: each rung compresses stashes harder
// than the previous one.
var ladder = []string{"none", "lossless", "fp16", "fp10", "fp8"}

// ladderIndex returns the rung of an encoding name, or -1.
func ladderIndex(name string) int {
	for i, n := range ladder {
		if n == name {
			return i
		}
	}
	return -1
}

// encodingConfig maps an encoding name to the planner/runtime Config.
// "none" returns the zero Config (baseline, no stash encodings).
func encodingConfig(name string) (encoding.Config, error) {
	switch name {
	case "none":
		return encoding.Config{}, nil
	case "lossless":
		return encoding.Lossless(), nil
	case "fp16":
		return encoding.LossyLossless(floatenc.FP16), nil
	case "fp10":
		return encoding.LossyLossless(floatenc.FP10), nil
	case "fp8":
		return encoding.LossyLossless(floatenc.FP8), nil
	}
	return encoding.Config{}, fmt.Errorf("server: unknown encoding %q (want none|lossless|fp16|fp10|fp8)", name)
}

// isTechniqueName reports whether the name resolves as a codec technique
// (or the "adaptive" pseudo-technique), for the legacy Encoding-field shim.
func isTechniqueName(name string) bool {
	if strings.EqualFold(name, "adaptive") {
		return true
	}
	_, err := encoding.ParseTechnique(name)
	return err == nil
}

// jobConfig builds the job's effective encoding configuration: the ladder
// rung supplies the base (DPR format included), then the spec's Technique
// narrows it to one codec technique or the adaptive per-layer selection.
func jobConfig(spec JobSpec, encName string) (encoding.Config, error) {
	cfg, err := encodingConfig(encName)
	if err != nil {
		return cfg, err
	}
	if spec.Technique == "" {
		return cfg, nil
	}
	if strings.EqualFold(spec.Technique, "adaptive") {
		cfg.AdaptiveSet = encoding.AdaptiveAll()
		return cfg, nil
	}
	t, err := encoding.ParseTechnique(spec.Technique)
	if err != nil {
		return cfg, fmt.Errorf("server: %v", err)
	}
	return cfg.WithTechnique(t), nil
}

// buildNet constructs the spec's graph at its per-executor batch size.
func buildNet(spec JobSpec) (*graph.Graph, error) {
	switch spec.Network {
	case "tinycnn":
		return networks.TinyCNN(spec.Batch, spec.Classes), nil
	case "tinyvgg":
		return networks.TinyVGG(spec.Batch, spec.Classes), nil
	}
	return nil, fmt.Errorf("server: unknown network %q (want tinycnn|tinyvgg)", spec.Network)
}

// inputGeom returns the dataset geometry (channels, image size) for the
// spec's network.
func inputGeom(spec JobSpec) (channels, size int) {
	if spec.Network == "tinyvgg" {
		return 3, 32
	}
	return 3, 16
}

// footprint predicts the job's peak bytes at the given encoding: the
// planner's shared-activation/stash total plus parameters and momenta,
// scaled by the replica count, plus the shard-gradient flats the
// all-reduce holds simultaneously.
//
// A StashBudget moves the stash population (encoded pages and dense-packed
// plain stashes alike) into the tiered store, whose hot tier is capped at
// the budget: everything past the cap lives on disk, not in RAM. Admission
// therefore subtracts the over-budget stash excess from the prediction,
// floored at the non-spillable residue (weights, momenta and the hot tier
// itself) — a spilling job admits smaller, which is the whole point.
func footprint(spec JobSpec, encName string) (int64, error) {
	cfg, err := jobConfig(spec, encName)
	if err != nil {
		return 0, err
	}
	g, err := buildNet(spec)
	if err != nil {
		return 0, err
	}
	plan, err := core.Build(core.Request{Graph: g, Encodings: cfg})
	if err != nil {
		return 0, err
	}
	per := plan.TotalBytes + 2*g.WeightBytes()
	if spec.StashBudget > 0 {
		perBudget := spec.StashBudget
		if spec.Shards > 1 {
			// The replica group splits the job budget evenly per store.
			perBudget /= int64(spec.Shards)
			if perBudget < 1 {
				perBudget = 1
			}
		}
		spillable := plan.RawByClass[graph.ClassEncoded] + plan.RawByClass[graph.ClassStashedFmap]
		if excess := spillable - perBudget; excess > 0 {
			per -= excess
			if floor := 2*g.WeightBytes() + perBudget; per < floor {
				per = floor
			}
		}
	}
	fp := per * int64(spec.Shards)
	if spec.Shards > 1 {
		// The merge holds every shard's flat gradient at once.
		fp += int64(spec.Shards) * g.WeightBytes()
	}
	return fp, nil
}

// planAdmission finds the least-degraded encoding (starting at startEnc's
// rung) whose footprint fits limit. Without AllowDegrade only startEnc is
// considered. Returns the chosen encoding and its footprint, or ok=false
// with startEnc's footprint when nothing fits.
func planAdmission(spec JobSpec, startEnc string, limit int64) (encName string, fp int64, ok bool, err error) {
	start := ladderIndex(startEnc)
	if start < 0 {
		return "", 0, false, fmt.Errorf("server: unknown encoding %q", startEnc)
	}
	requested, err := footprint(spec, startEnc)
	if err != nil {
		return "", 0, false, err
	}
	if requested <= limit {
		return startEnc, requested, true, nil
	}
	if spec.AllowDegrade {
		for i := start + 1; i < len(ladder); i++ {
			fp, err := footprint(spec, ladder[i])
			if err != nil {
				return "", 0, false, err
			}
			if fp <= limit {
				return ladder[i], fp, true, nil
			}
		}
	}
	return startEnc, requested, false, nil
}
