package server

// Flight-recorder dumps. When Config.FlightRecDir is set, every job gets
// a fixed-size flightrec ring tapping its telemetry sink; the moment a
// job fails, stalls into quarantine, or is cancelled for missing its
// deadline, the ring is serialized to <dir>/<jobid>.flightrec.json
// together with the job's final status, the server's admission-ledger
// state, and the training loop's last RecoveryReport. DumpFlightRecords
// does the same for every job at once — the daemon wires it to SIGQUIT.
//
// A queued job whose deadline lapses before it ever starts is
// deliberately not dumped: it never trained, so its ring is empty and
// the JobStatus already says everything there is to say.

import (
	"fmt"
	"os"
	"path/filepath"

	"gist/internal/train"
)

// flightMeta is the meta block of a dump: the job's (final) status, the
// server ledger at dump time, and the last recovery report if the run
// produced one.
type flightMeta struct {
	Job      *JobStatus            `json:"job"`
	Ledger   Health                `json:"ledger"`
	Recovery *train.RecoveryReport `json:"recovery,omitempty"`
}

// shouldDump reports whether a terminal classification warrants a dump.
func shouldDump(state State, reason string) bool {
	switch state {
	case StateFailed, StateQuarantined:
		return true
	case StateCancelled:
		return reason == "deadline exceeded"
	}
	return false
}

// dumpFlightRecord writes one job's flight record. state/reason are
// passed explicitly because the dump happens just before setState — so a
// caller that observed the job terminal (via Wait) is guaranteed the
// file already exists.
func (s *Server) dumpFlightRecord(j *job, state State, reason string) {
	if j.rec == nil || s.cfg.FlightRecDir == "" {
		return
	}
	st := j.status()
	st.State, st.Reason = state, reason
	meta := flightMeta{Job: st, Ledger: s.Health(), Recovery: j.recoveryReport()}
	path := filepath.Join(s.cfg.FlightRecDir, j.id+".flightrec.json")
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close()
	if j.rec.WriteJSON(f, fmt.Sprintf("%s: %s", state, reason), meta) == nil {
		s.flightDumps.Inc()
	}
}

// DumpFlightRecords dumps every job that has a recorder, whatever its
// state — the SIGQUIT "what is the server doing right now" snapshot.
// Returns how many dumps were written.
func (s *Server) DumpFlightRecords(reason string) int {
	if s.cfg.FlightRecDir == "" {
		return 0
	}
	s.mu.Lock()
	js := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	n := 0
	for _, j := range js {
		if j.rec == nil {
			continue
		}
		st := j.status()
		meta := flightMeta{Job: st, Ledger: s.Health(), Recovery: j.recoveryReport()}
		path := filepath.Join(s.cfg.FlightRecDir, j.id+".flightrec.json")
		f, err := os.Create(path)
		if err != nil {
			continue
		}
		if j.rec.WriteJSON(f, reason, meta) == nil {
			n++
			s.flightDumps.Inc()
		}
		f.Close()
	}
	return n
}
