package server

// Observability tests: the SSE step stream over real HTTP (every step
// completed while subscribed arrives, the final state event closes the
// stream, and no goroutines leak), slow-consumer drop accounting, and the
// flight recorder (a quarantined job under fault injection leaves a JSON
// dump whose fault events match the injector's telemetry counters, and
// DumpFlightRecords snapshots every job on demand).

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"gist/internal/faults"
	"gist/internal/telemetry"
	"gist/internal/telemetry/flightrec"
)

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	event string
	data  string
}

// readSSE consumes a text/event-stream body until EOF.
func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var out []sseEvent
	cur := sseEvent{}
	for body.Scan() {
		line := body.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				out = append(out, cur)
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
	return out
}

func TestSSEStreamOverHTTP(t *testing.T) {
	// Gate the job at its first step until the SSE client is attached, so
	// every later step is published to a live subscriber.
	release := make(chan struct{})
	s := newTestServer(t, Config{
		Telemetry: telemetry.New(),
		OnStep: func(ctx context.Context, id string, step int) {
			if step == 1 {
				select {
				case <-release:
				case <-ctx.Done():
				}
			}
		},
	})
	baseline := runtime.NumGoroutine()

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := ts.Client()

	st := httpJSON[JobStatus](t, c, "POST", ts.URL+"/jobs",
		JobSpec{Name: "sse", Batch: 4, Classes: 2, Steps: 8, Encoding: "fp16"}, http.StatusCreated)

	resp, err := c.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", got)
	}
	close(release)

	events := readSSE(t, bufio.NewScanner(resp.Body))
	if len(events) == 0 {
		t.Fatal("no SSE events received")
	}
	last := events[len(events)-1]
	if last.event != "state" {
		t.Fatalf("stream must end with a state event, got %q", last.event)
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatalf("final state event is not a JobStatus: %v", err)
	}
	if final.State != StateCompleted || final.Step != 8 {
		t.Fatalf("final state = %s step %d, want completed/8", final.State, final.Step)
	}

	// Every step completed while subscribed produced at least one event.
	// Step 1 may have finished before the subscription attached; 2..8 were
	// gated behind it.
	steps := map[int]bool{}
	maxStep := 0
	for _, ev := range events[:len(events)-1] {
		if ev.event != "step" {
			t.Fatalf("unexpected event type %q", ev.event)
		}
		var se StreamEvent
		if err := json.Unmarshal([]byte(ev.data), &se); err != nil {
			t.Fatalf("step event is not a StreamEvent: %v (%s)", err, ev.data)
		}
		if se.Job != st.ID || se.State != StateRunning {
			t.Fatalf("step event %+v", se)
		}
		steps[se.Step] = true
		if se.Step > maxStep {
			maxStep = se.Step
		}
	}
	for want := 2; want <= 8; want++ {
		if !steps[want] {
			t.Errorf("no step event for step %d (got %v)", want, steps)
		}
	}
	// The fp16 run carries memory samples, so ratio data rides the stream.
	var sawRatio bool
	for _, ev := range events[:len(events)-1] {
		var se StreamEvent
		_ = json.Unmarshal([]byte(ev.data), &se)
		if se.HeldBytes > 0 && se.Ratio > 0 {
			sawRatio = true
		}
	}
	if !sawRatio {
		t.Error("no step event carried compression data")
	}

	// No goroutines may survive the stream teardown.
	resp.Body.Close()
	ts.Close()
	waitFor(t, "goroutines to settle after SSE", 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

func TestSSESlowConsumerDrops(t *testing.T) {
	sink := telemetry.New()
	s := newTestServer(t, Config{Telemetry: sink})

	st, err := s.Submit(JobSpec{Name: "slow", Batch: 4, Classes: 2, Steps: 20})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.Subscribe(st.ID, 1) // 1-deep buffer, never read: everything past the first drops
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	<-sub.Done

	if got := sub.Dropped(); got == 0 {
		t.Error("slow consumer reported zero drops after 20 steps into a 1-deep buffer")
	}
	if got := sink.Counter("server.sse.dropped").Value(); got == 0 {
		t.Error("server.sse.dropped counter stayed zero")
	}
	// The buffered event is still deliverable after Done.
	select {
	case ev := <-sub.C:
		if ev.Job != st.ID {
			t.Errorf("buffered event %+v", ev)
		}
	default:
		t.Error("no buffered event survived")
	}

	// Unknown jobs cannot be subscribed to.
	if _, err := s.Subscribe("j9999", 0); err == nil {
		t.Error("Subscribe(unknown) must fail")
	}
}

func TestFlightRecorderQuarantineDump(t *testing.T) {
	dir := t.TempDir()
	sink := telemetry.New()
	s := newTestServer(t, Config{
		Telemetry:       sink,
		FlightRecDir:    dir,
		FlightRecEvents: 4096, // larger than any event volume here: nothing evicted
		StallTimeout:    150 * time.Millisecond,
		WatchdogEvery:   10 * time.Millisecond,
		OnStep: func(ctx context.Context, id string, step int) {
			if step >= 3 {
				<-ctx.Done() // stall after three real steps
			}
		},
	})

	st, err := s.Submit(JobSpec{
		Name: "doomed", Batch: 4, Classes: 2, Steps: 1 << 20,
		Encoding: "lossless", MaxRetries: 20,
		Faults: &faults.Config{Seed: 7, EncodeFailRate: 0.3, DecodeFailRate: 0.2, BitFlipRate: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if got := mustStatus(t, s, st.ID); got.State != StateQuarantined {
		t.Fatalf("state = %s, want quarantined", got.State)
	}

	// Wait guarantees the dump exists: it is written before the terminal
	// transition.
	path := filepath.Join(dir, st.ID+".flightrec.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight record missing: %v", err)
	}
	var dump flightrec.Dump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("flight record is not valid JSON: %v", err)
	}
	if !strings.Contains(dump.Reason, string(StateQuarantined)) {
		t.Errorf("dump reason %q does not name the quarantine", dump.Reason)
	}
	if len(dump.Events) == 0 || dump.EventsTotal == 0 {
		t.Fatal("dump carries no events")
	}

	// Meta: final job status, admission ledger, recovery report.
	var meta struct {
		Job      *JobStatus `json:"job"`
		Ledger   Health     `json:"ledger"`
		Recovery *struct {
			Retries int `json:"Retries"`
		} `json:"recovery"`
	}
	var outer struct {
		Meta json.RawMessage `json:"meta"`
	}
	if err := json.Unmarshal(raw, &outer); err != nil || outer.Meta == nil {
		t.Fatalf("dump has no meta block: %v", err)
	}
	if err := json.Unmarshal(outer.Meta, &meta); err != nil {
		t.Fatalf("meta does not decode: %v", err)
	}
	if meta.Job == nil || meta.Job.State != StateQuarantined || meta.Job.ID != st.ID {
		t.Fatalf("meta.job = %+v", meta.Job)
	}
	if meta.Ledger.BudgetBytes <= 0 {
		t.Errorf("meta.ledger = %+v", meta.Ledger)
	}
	if meta.Recovery == nil || meta.Recovery.Retries == 0 {
		t.Errorf("meta.recovery = %+v, want a report with retries (faults were injected)", meta.Recovery)
	}

	// The ring's fault instants must match the injector's own telemetry
	// counters exactly — the dump did not lose or invent events.
	tel, err := s.JobTelemetry(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	perKind := map[string]int64{}
	for _, ev := range dump.Events {
		if ev.Kind == "instant" && ev.Cat == "faults" {
			perKind[ev.Name]++
		}
	}
	total := int64(0)
	for kind, n := range perKind {
		total += n
		if got := tel.Counter("faults.injected." + kind).Value(); got != n {
			t.Errorf("dump has %d %q fault events, injector counter says %d", n, kind, got)
		}
	}
	if total == 0 {
		t.Error("no injected-fault instants in the dump (rates were set high; seed is fixed)")
	}

	// DumpFlightRecords (the SIGQUIT path) snapshots every recorded job.
	if n := s.DumpFlightRecords("sigquit"); n < 1 {
		t.Fatalf("DumpFlightRecords wrote %d dumps, want >= 1", n)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("sigquit dump invalid: %v", err)
	}
	if dump.Reason != "sigquit" {
		t.Errorf("sigquit dump reason %q", dump.Reason)
	}
	if got := sink.Counter("server.flightrec.dumps").Value(); got < 2 {
		t.Errorf("flightrec dump counter = %d, want >= 2", got)
	}
}

func TestNoFlightRecorderWithoutDir(t *testing.T) {
	s := newTestServer(t, Config{})
	st, err := s.Submit(JobSpec{Name: "ok", Batch: 4, Classes: 2, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(st.ID); err != nil {
		t.Fatal(err)
	}
	if n := s.DumpFlightRecords("sigquit"); n != 0 {
		t.Fatalf("dumps written with no FlightRecDir: %d", n)
	}
}
