package server

// The soak/chaos harness: dozens of concurrent jobs with mixed tenants,
// networks, encodings, shard counts, deadlines and per-job fault
// injection, stirred by a seeded chaos goroutine issuing random
// cancel/pause/resume verbs, then drained through Shutdown. Asserts the
// tentpole invariants: every job ends in exactly one terminal state,
// the admission ledger's peak stays within the configured budget, and
// neither goroutines nor pooled buffers leak after shutdown.
//
// Run the full soak with `make soak`; `go test -short` (and `make
// soak-short`) runs a 12-job edition sized for the race detector in CI.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"gist/internal/faults"
	"gist/internal/telemetry"
)

// soakSpec derives a deterministic mixed-workload spec from its index.
func soakSpec(i int) JobSpec {
	spec := JobSpec{
		Name:   fmt.Sprintf("soak-%02d", i),
		Tenant: fmt.Sprintf("tenant-%d", i%4),
		Batch:  4,
		Steps:  8 + i%12,
		Seed:   uint64(i + 1),
	}
	spec.Encoding = ladder[i%len(ladder)]
	spec.AllowDegrade = i%2 == 0
	if i%8 == 4 {
		spec.Network = "tinyvgg"
	}
	if i%6 == 5 {
		spec.Shards = 2
	}
	if i%7 == 3 {
		spec.DeadlineMS = 300
	}
	if i%3 == 0 {
		// Detected-fault injection on the stash pipeline; needs a non-"none"
		// encoding to have a pipeline to hit, and a retry budget to survive.
		if spec.Encoding == "none" {
			spec.Encoding = "lossless"
		}
		spec.Faults = &faults.Config{
			Seed:           uint64(i + 1),
			BitFlipRate:    0.02,
			EncodeFailRate: 0.02,
			DecodeFailRate: 0.02,
		}
		spec.MaxRetries = 12
	}
	return spec
}

func TestSoakChaos(t *testing.T) {
	jobs := 32
	chaosIters := 400
	if testing.Short() {
		jobs = 12
		chaosIters = 150
	}

	runtime.GC()
	baseline := runtime.NumGoroutine()

	// Size the budget so the largest single job fits but the fleet cannot
	// all run at once: queueing, degradation and backoff hints all engage.
	cnn, err := footprint(JobSpec{Batch: 4}.withDefaults(), "none")
	if err != nil {
		t.Fatal(err)
	}
	vgg, err := footprint(JobSpec{Batch: 4, Network: "tinyvgg"}.withDefaults(), "none")
	if err != nil {
		t.Fatal(err)
	}
	budget := vgg + 4*cnn

	s, err := New(Config{
		MemBudgetBytes:  budget,
		MaxRunning:      6,
		QueueLimit:      2 * jobs,
		StallTimeout:    time.Minute,
		WatchdogEvery:   20 * time.Millisecond,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 5,
		Workers:         2,
		Telemetry:       telemetry.New(),
		// Slow every step a little so the chaos goroutine reliably catches
		// jobs mid-run; honor ctx so cancellation stays within one step.
		OnStep: func(ctx context.Context, _ string, _ int) {
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		st, err := s.Submit(soakSpec(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}

	// Seeded chaos: random lifecycle verbs against a random half of the
	// fleet (the other half runs undisturbed, so completion stays a
	// well-populated terminal state). Errors (bad transitions,
	// already-terminal targets) are expected and ignored — the invariants
	// below are what must hold regardless.
	rng := rand.New(rand.NewSource(1))
	chaosIDs := ids[:len(ids)/2]
	for i := 0; i < chaosIters; i++ {
		id := chaosIDs[rng.Intn(len(chaosIDs))]
		switch rng.Intn(6) {
		case 0:
			_ = s.Cancel(id)
		case 1, 2:
			_ = s.Pause(id)
		default:
			_ = s.Resume(id)
		}
		time.Sleep(time.Duration(rng.Intn(2)+1) * time.Millisecond)
	}

	// Let survivors run out: resume whatever chaos left paused, then wait
	// for the fleet to settle into terminal-or-paused.
	for _, id := range ids {
		if st, err := s.Get(id); err == nil && st.State == StatePaused {
			_ = s.Resume(id)
		}
	}
	settled := func() bool {
		for _, id := range ids {
			st, err := s.Get(id)
			if err != nil {
				return false
			}
			if !st.State.Terminal() && st.State != StatePaused {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !settled() {
		if time.Now().After(deadline) {
			for _, st := range s.List() {
				t.Logf("  %s %-12s step=%d %s", st.ID, st.State, st.Step, st.Reason)
			}
			t.Fatal("fleet did not settle within 2m")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Invariant 1: every job is in exactly one terminal state, entered
	// exactly once.
	byState := map[State]int{}
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		j.mu.Lock()
		state, terminals := j.state, j.terminals
		j.mu.Unlock()
		if !state.Terminal() {
			t.Errorf("%s ended non-terminal: %s", id, state)
		}
		if terminals != 1 {
			t.Errorf("%s entered a terminal state %d times, want exactly 1", id, terminals)
		}
		byState[state]++
	}
	t.Logf("terminal states over %d jobs: %v", jobs, byState)
	if byState[StateCompleted] == 0 {
		t.Error("soak is vacuous: no job completed")
	}
	if byState[StateFailed] > 0 {
		t.Errorf("%d jobs failed; detected-fault retries should absorb injected faults", byState[StateFailed])
	}

	// Invariant 2: the admission ledger never overshot the budget.
	if peak := s.PeakBytes(); peak > budget {
		t.Errorf("peak admitted bytes %d exceed budget %d", peak, budget)
	}
	if used := s.Health().UsedBytes; used != 0 {
		t.Errorf("ledger still holds %d bytes after shutdown", used)
	}

	// Invariant 3: no pooled buffers leaked.
	if inUse := s.PoolStats().InUseBytes; inUse != 0 {
		t.Errorf("shared pool still holds %d bytes after shutdown", inUse)
	}

	// Invariant 4: no goroutines leaked (allow slack for the runtime's
	// own background goroutines to settle).
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
