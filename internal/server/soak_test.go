package server

// The soak/chaos harness: dozens of concurrent jobs with mixed tenants,
// networks, encodings, shard counts, deadlines and per-job fault
// injection, stirred by a seeded chaos goroutine issuing random
// cancel/pause/resume verbs, then drained through Shutdown. Asserts the
// tentpole invariants: every job ends in exactly one terminal state,
// the admission ledger's peak stays within the configured budget, and
// neither goroutines nor pooled buffers leak after shutdown.
//
// Run the full soak with `make soak`; `go test -short` (and `make
// soak-short`) runs a 12-job edition sized for the race detector in CI.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"gist/internal/faults"
	"gist/internal/telemetry"
	"gist/internal/telemetry/promexport"
)

// soakSpec derives a deterministic mixed-workload spec from its index.
func soakSpec(i int) JobSpec {
	spec := JobSpec{
		Name:   fmt.Sprintf("soak-%02d", i),
		Tenant: fmt.Sprintf("tenant-%d", i%4),
		Batch:  4,
		Steps:  8 + i%12,
		Seed:   uint64(i + 1),
	}
	spec.Encoding = ladder[i%len(ladder)]
	spec.AllowDegrade = i%2 == 0
	if i%8 == 4 {
		spec.Network = "tinyvgg"
	}
	if i%6 == 5 {
		spec.Shards = 2
	}
	if i%7 == 3 {
		spec.DeadlineMS = 300
	}
	if i%5 == 2 {
		// Tiered stash store with a budget far below the stash working set:
		// nearly every stash round-trips through a spill page. Training
		// stays bit-identical; the invariants below check the cap held and
		// no spill file outlives shutdown.
		spec.StashBudget = 4096
	}
	if i%3 == 0 {
		// Detected-fault injection on the stash pipeline; needs a non-"none"
		// encoding to have a pipeline to hit, and a retry budget to survive.
		if spec.Encoding == "none" {
			spec.Encoding = "lossless"
		}
		spec.Faults = &faults.Config{
			Seed:           uint64(i + 1),
			BitFlipRate:    0.02,
			EncodeFailRate: 0.02,
			DecodeFailRate: 0.02,
		}
		spec.MaxRetries = 12
	}
	return spec
}

func TestSoakChaos(t *testing.T) {
	jobs := 32
	chaosIters := 400
	if testing.Short() {
		jobs = 12
		chaosIters = 150
	}

	runtime.GC()
	baseline := runtime.NumGoroutine()

	// Size the budget so the largest single job fits but the fleet cannot
	// all run at once: queueing, degradation and backoff hints all engage.
	cnn, err := footprint(JobSpec{Batch: 4}.withDefaults(), "none")
	if err != nil {
		t.Fatal(err)
	}
	vgg, err := footprint(JobSpec{Batch: 4, Network: "tinyvgg"}.withDefaults(), "none")
	if err != nil {
		t.Fatal(err)
	}
	budget := vgg + 4*cnn

	s, err := New(Config{
		MemBudgetBytes:  budget,
		MaxRunning:      6,
		QueueLimit:      2 * jobs,
		StallTimeout:    time.Minute,
		WatchdogEvery:   20 * time.Millisecond,
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 5,
		Workers:         2,
		Telemetry:       telemetry.New(),
		// Slow every step a little so the chaos goroutine reliably catches
		// jobs mid-run; honor ctx so cancellation stays within one step.
		OnStep: func(ctx context.Context, _ string, _ int) {
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The HTTP front end runs for the whole soak: /metrics is scraped and
	// strict-parsed mid-chaos, and a few undisturbed jobs get live SSE
	// subscribers. Closed before the goroutine-leak check.
	ts := httptest.NewServer(s.Handler())
	scrape := func() error {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != contentTypeProm {
			return fmt.Errorf("scrape Content-Type %q", ct)
		}
		_, err = promexport.Parse(resp.Body)
		return err
	}

	ids := make([]string, 0, jobs)
	type sseResult struct {
		id    string
		steps map[int]bool
		final JobStatus
		err   error
	}
	var (
		sseMu      sync.Mutex
		sseResults []sseResult
		sseWG      sync.WaitGroup
	)
	watchSSE := func(id string) {
		defer sseWG.Done()
		res := sseResult{id: id, steps: map[int]bool{}}
		defer func() {
			sseMu.Lock()
			sseResults = append(sseResults, res)
			sseMu.Unlock()
		}()
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
		if err != nil {
			res.err = err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		event, data := "", ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				switch event {
				case "step":
					var ev StreamEvent
					if json.Unmarshal([]byte(data), &ev) == nil {
						res.steps[ev.Step] = true
					}
				case "state":
					_ = json.Unmarshal([]byte(data), &res.final)
				}
				event, data = "", ""
			case len(line) > 7 && line[:7] == "event: ":
				event = line[7:]
			case len(line) > 6 && line[:6] == "data: ":
				data = line[6:]
			}
		}
	}

	subscribed := 0
	for i := 0; i < jobs; i++ {
		st, err := s.Submit(soakSpec(i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
		// Subscribe to undisturbed, deadline-free jobs (the back half of
		// the fleet; chaos targets the front half): every step they
		// complete while subscribed must stream out.
		if i >= jobs/2 && i%7 != 3 && subscribed < 4 {
			subscribed++
			sseWG.Add(1)
			go watchSSE(st.ID)
		}
	}
	if subscribed == 0 {
		t.Fatal("soak subscribed to no jobs")
	}

	// Seeded chaos: random lifecycle verbs against a random half of the
	// fleet (the other half runs undisturbed, so completion stays a
	// well-populated terminal state). Errors (bad transitions,
	// already-terminal targets) are expected and ignored — the invariants
	// below are what must hold regardless.
	rng := rand.New(rand.NewSource(1))
	chaosIDs := ids[:len(ids)/2]
	for i := 0; i < chaosIters; i++ {
		id := chaosIDs[rng.Intn(len(chaosIDs))]
		switch rng.Intn(6) {
		case 0:
			_ = s.Cancel(id)
		case 1, 2:
			_ = s.Pause(id)
		default:
			_ = s.Resume(id)
		}
		// Scrape mid-chaos: the exposition must parse strictly at any
		// instant, not just at rest.
		if i%(chaosIters/4) == chaosIters/8 {
			if err := scrape(); err != nil {
				t.Fatalf("mid-chaos /metrics scrape (iter %d): %v", i, err)
			}
		}
		time.Sleep(time.Duration(rng.Intn(2)+1) * time.Millisecond)
	}

	// Let survivors run out: resume whatever chaos left paused, then wait
	// for the fleet to settle into terminal-or-paused.
	for _, id := range ids {
		if st, err := s.Get(id); err == nil && st.State == StatePaused {
			_ = s.Resume(id)
		}
	}
	settled := func() bool {
		for _, id := range ids {
			st, err := s.Get(id)
			if err != nil {
				return false
			}
			if !st.State.Terminal() && st.State != StatePaused {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(2 * time.Minute)
	for !settled() {
		if time.Now().After(deadline) {
			for _, st := range s.List() {
				t.Logf("  %s %-12s step=%d %s", st.ID, st.State, st.Step, st.Reason)
			}
			t.Fatal("fleet did not settle within 2m")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The settled fleet's terminal events have flushed every subscribed
	// stream; join the SSE readers and verify coverage: every step a job
	// completed while its subscriber was attached produced an event, with
	// no gaps, and the stream closed with the job's terminal state.
	sseWG.Wait()
	sawSteps := false
	for _, res := range sseResults {
		if res.err != nil {
			t.Errorf("SSE %s: %v", res.id, res.err)
			continue
		}
		if !res.final.State.Terminal() {
			t.Errorf("SSE %s: stream ended without a terminal state event (%+v)", res.id, res.final)
			continue
		}
		if len(res.steps) == 0 {
			continue // job finished before the subscription attached
		}
		sawSteps = true
		first := -1
		for st := range res.steps {
			if first == -1 || st < first {
				first = st
			}
		}
		for st := first; st <= res.final.Step; st++ {
			if !res.steps[st] {
				t.Errorf("SSE %s: missing step %d (observed from %d, final %d)",
					res.id, st, first, res.final.Step)
			}
		}
	}
	if !sawSteps {
		t.Error("no SSE subscriber observed any step event")
	}

	// One last strict scrape at rest, then drop the HTTP front end before
	// the goroutine accounting.
	if err := scrape(); err != nil {
		t.Fatalf("final /metrics scrape: %v", err)
	}
	ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Invariant 1: every job is in exactly one terminal state, entered
	// exactly once.
	byState := map[State]int{}
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		j.mu.Lock()
		state, terminals := j.state, j.terminals
		j.mu.Unlock()
		if !state.Terminal() {
			t.Errorf("%s ended non-terminal: %s", id, state)
		}
		if terminals != 1 {
			t.Errorf("%s entered a terminal state %d times, want exactly 1", id, terminals)
		}
		byState[state]++
	}
	t.Logf("terminal states over %d jobs: %v", jobs, byState)
	if byState[StateCompleted] == 0 {
		t.Error("soak is vacuous: no job completed")
	}
	if byState[StateFailed] > 0 {
		t.Errorf("%d jobs failed; detected-fault retries should absorb injected faults", byState[StateFailed])
	}

	// Invariant 2: the admission ledger never overshot the budget.
	if peak := s.PeakBytes(); peak > budget {
		t.Errorf("peak admitted bytes %d exceed budget %d", peak, budget)
	}
	if used := s.Health().UsedBytes; used != 0 {
		t.Errorf("ledger still holds %d bytes after shutdown", used)
	}

	// Invariant 3: no pooled buffers leaked.
	if inUse := s.PoolStats().InUseBytes; inUse != 0 {
		t.Errorf("shared pool still holds %d bytes after shutdown", inUse)
	}

	// Invariant 5: spilling jobs kept their hot tier under the per-store
	// cap (the gauge is a SetMax high-water mark), at least one actually
	// exercised the cold tier, and no spill file survived shutdown.
	spilled := 0
	for i, id := range ids {
		spec := soakSpec(i)
		if spec.StashBudget <= 0 {
			continue
		}
		tel, err := s.JobTelemetry(id)
		if err != nil {
			t.Errorf("telemetry for %s: %v", id, err)
			continue
		}
		vals := tel.Values()
		per := spec.StashBudget
		if spec.Shards > 1 {
			per /= int64(spec.Shards)
		}
		if peak := vals["stash.store.hot_peak_bytes"]; peak > per {
			t.Errorf("%s: hot-tier peak %d exceeds per-store budget %d", id, peak, per)
		}
		if vals["stash.store.evictions"] > 0 {
			spilled++
		}
	}
	if spilled == 0 {
		t.Error("soak is vacuous on spilling: no budgeted job ever evicted a stash")
	}
	if leaked, _ := filepath.Glob(filepath.Join(s.cfg.SpillDir, "gist-spill-*")); len(leaked) != 0 {
		t.Errorf("spill files survived shutdown: %v", leaked)
	}

	// Invariant 4: no goroutines leaked (allow slack for the runtime's
	// own background goroutines to settle).
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
