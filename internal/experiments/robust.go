package experiments

// Robustness experiment: trains the Figure 12 substrate network with the
// full encoded-stash pipeline (Binarize/SSDC/DPR) while the fault injector
// flips bits in held stashes, fails encode/decode calls and applies memory
// pressure. The run must complete through the recovery loop, every injected
// stash corruption must be caught by the CRC seal, and the recovery
// report's counters must reconcile exactly with the injector's log — the
// same invariants the train package's tests enforce, exercised here at CLI
// scale with a printable report.

import (
	"context"
	"io"
	"time"

	"gist/internal/bufpool"
	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/liveness"
	"gist/internal/memplan"
	"gist/internal/networks"
	"gist/internal/telemetry"
	"gist/internal/train"
)

// RobustScale sizes the robustness run: the training dimensions plus the
// injected fault mix and the recovery budget.
type RobustScale struct {
	Classes   int
	Minibatch int
	Steps     int
	LR        float32
	NoiseStd  float64
	Seed      uint64

	Faults     faults.Config
	MaxRetries int
	// CheckpointPath, when set, makes the run persist periodic atomic
	// checkpoints (through the injector's writer wrapper, so checkpoint
	// faults are exercised too).
	CheckpointPath string
	// Tel, when non-nil, instruments the run end to end: executor step
	// spans, injector event mirroring, per-step memory samples and the
	// planner's predicted footprint (plan.static.* gauges vs the observed
	// mem.peak_held_bytes).
	Tel *telemetry.Sink
	// MetricsEvery/MetricsOut, when set alongside Tel, write a telemetry
	// snapshot to MetricsOut every N steps during the run.
	MetricsEvery int
	MetricsOut   io.Writer
	// Pool, when non-nil, pools the run's per-step tensors — the recovery
	// loop's retries then recycle the failed step's buffers instead of
	// leaking them to the collector.
	Pool *bufpool.Pool
}

// DefaultRobustScale injects a fault roughly every other step and finishes
// in a few seconds on one core.
func DefaultRobustScale() RobustScale {
	return RobustScale{
		Classes: 4, Minibatch: 8, Steps: 120, LR: 0.05, NoiseStd: 0.4, Seed: 42,
		Faults: faults.Config{
			Seed:           1,
			BitFlipRate:    0.02,
			EncodeFailRate: 0.01,
			DecodeFailRate: 0.01,
		},
		MaxRetries: 25,
		Pool:       trainingPool,
	}
}

// Robust runs the fault-injected training study and reports whether the
// recovery machinery held: completion, CRC detection of every bit flip,
// and counter reconciliation between executor, recovery loop and injector.
func Robust(s RobustScale) *Result {
	r := &Result{ID: "robust", Title: "Fault-injected encoded training with crash-safe recovery"}

	g := networks.TinyCNN(s.Minibatch, s.Classes)
	a := encoding.Analyze(g, trainingConfig(encoding.LossyLossless(floatenc.FP16)))
	inj := faults.New(s.Faults)
	e := train.NewExecutor(g, train.Options{Seed: s.Seed, Encodings: a, Faults: inj, Telemetry: s.Tel, Pool: s.Pool})
	d := train.NewDataset(s.Classes, 3, 16, s.NoiseStd, s.Seed+1)

	if s.Tel != nil {
		// Publish the planner's static prediction so the snapshot sets it
		// against the peak the executor actually observes.
		tl := graph.BuildTimeline(g)
		plan := memplan.PlanStatic(liveness.Analyze(g, tl, liveness.Options{Analysis: a}))
		plan.RecordTelemetry(s.Tel, "static")
		memplan.RecordEncodingTelemetry(s.Tel, "static", a)
		if s.Pool != nil {
			s.Pool.SetTelemetry(s.Tel)
		}
	}

	start := time.Now()
	recs, report, err := train.RunRecoverable(context.Background(), e, d,
		train.RunConfig{Minibatch: s.Minibatch, Steps: s.Steps, LR: s.LR, ProbeEvery: 20,
			MetricsEvery: s.MetricsEvery, MetricsOut: s.MetricsOut},
		train.RecoveryConfig{MaxRetries: s.MaxRetries, CheckpointPath: s.CheckpointPath})
	elapsed := time.Since(start)

	r.add("network TinyCNN, %d steps of minibatch %d, encoded stashes (Binarize/SSDC/DPR-FP16)", s.Steps, s.Minibatch)
	r.add("fault mix: bitflip %.3g, encode-fail %.3g, decode-fail %.3g, alloc budget %d B (seed %d)",
		s.Faults.BitFlipRate, s.Faults.EncodeFailRate, s.Faults.DecodeFailRate,
		s.Faults.AllocBudgetBytes, s.Faults.Seed)
	r.add("")
	if err != nil {
		r.add("RUN FAILED: %v", err)
	} else {
		r.add("run completed in %v despite injected faults", elapsed.Round(time.Millisecond))
	}
	r.add("%s", report)
	r.add("")

	counts := report.FaultCounts
	injected := 0
	for k, c := range counts {
		if k != faults.CheckpointTruncate && k != faults.CheckpointCorrupt {
			injected += c
		}
	}
	detected := report.Robust.CRCFailures == int64(counts[faults.BitFlip])
	reconciled := detected &&
		report.Robust.EncodeFailures == int64(counts[faults.EncodeFail]) &&
		report.Robust.DecodeFailures == int64(counts[faults.DecodeFail]) &&
		report.Robust.AllocFailures == int64(counts[faults.AllocFail]) &&
		(err != nil || report.Retries == injected)

	r.add("cross-check vs injector log:")
	r.add("  bit flips injected %d, CRC-detected %d  -> %s",
		counts[faults.BitFlip], report.Robust.CRCFailures, okNot(detected))
	r.add("  faults injected %d, step retries %d     -> %s", injected, report.Retries, okNot(reconciled))
	if len(recs) > 0 {
		last := recs[len(recs)-1]
		r.add("  final accuracy loss %.3f (diverged: %v)", last.AccuracyLoss, train.Diverged(recs, s.Classes))
		r.set("robust/accuracy_loss", last.AccuracyLoss)
	}
	r.set("robust/injected", float64(injected))
	r.set("robust/retries", float64(report.Retries))
	r.set("robust/crc_detected", float64(report.Robust.CRCFailures))
	r.set("robust/ssdc_fallbacks", float64(report.Robust.SSDCFallbacks))
	if reconciled && err == nil {
		r.set("robust/ok", 1)
	} else {
		r.set("robust/ok", 0)
	}
	return r
}

func okNot(ok bool) string {
	if ok {
		return "OK"
	}
	return "MISMATCH"
}
