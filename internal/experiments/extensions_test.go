package experiments

import (
	"strings"
	"testing"
)

func TestExtRecomputeStory(t *testing.T) {
	r := ExtRecompute(DefaultMinibatch)
	// Recompute's overhead must dwarf Gist's on every network, while both
	// deliver real footprint reductions.
	for _, net := range []string{"AlexNet", "VGG16", "Inception"} {
		rcOvh := r.Values[net+"/recompute-overhead"]
		gOvh := r.Values[net+"/gist-overhead"]
		if rcOvh < 2*gOvh {
			t.Errorf("%s: recompute overhead %v should dwarf Gist's %v", net, rcOvh, gOvh)
		}
		if r.Values[net+"/recompute-mfr"] <= 1 {
			t.Errorf("%s: recompute must still save memory", net)
		}
		if r.Values[net+"/gist-mfr"] <= 1 {
			t.Errorf("%s: gist must save memory", net)
		}
	}
}

func TestExtWorkspaceTradeoff(t *testing.T) {
	r := ExtWorkspace(DefaultMinibatch)
	for _, net := range []string{"AlexNet", "VGG16", "Inception"} {
		memOpt := r.Values[net+"/ws-memopt-gb"]
		perfOpt := r.Values[net+"/ws-perfopt-gb"]
		if memOpt > perfOpt+1e-9 {
			t.Errorf("%s: memory-optimal workspace %v exceeds performance-optimal %v",
				net, memOpt, perfOpt)
		}
		if sp := r.Values[net+"/speedup"]; sp < 1 || sp > 2 {
			t.Errorf("%s: perf-optimal speedup %v out of band", net, sp)
		}
	}
	// VGG16's 3x3 convs make the tradeoff visible: real extra workspace.
	if r.Values["VGG16/ws-perfopt-gb"] <= r.Values["VGG16/ws-memopt-gb"] {
		t.Error("VGG16 should pay real workspace for the fast algorithm")
	}
}

func TestExtCDMAStory(t *testing.T) {
	r := ExtCDMA(DefaultMinibatch)
	for _, net := range []string{"Inception", "ResNet"} {
		vdnn, cdma := r.Values[net+"/vdnn"], r.Values[net+"/cdma"]
		if cdma >= vdnn {
			t.Errorf("%s: CDMA (%v) should beat vDNN (%v) on transfer-bound nets", net, cdma, vdnn)
		}
		if cdma <= 0 {
			t.Errorf("%s: CDMA should still have overhead, got %v", net, cdma)
		}
	}
}

func TestExtEnergyGistWins(t *testing.T) {
	r := ExtEnergy(DefaultMinibatch)
	for _, net := range []string{"AlexNet", "VGG16", "ResNet"} {
		ratio := r.Values[net+"/ratio"]
		if ratio < 2 {
			t.Errorf("%s: swap/gist energy ratio = %v, want >= 2", net, ratio)
		}
		if r.Values[net+"/gist-mj"] <= 0 {
			t.Errorf("%s: gist energy must be positive", net)
		}
	}
	if stashedBytesFor(suite(2)[0].G) <= 0 {
		t.Error("stashed bytes helper broken")
	}
}

func TestSummaryAllWithinBand(t *testing.T) {
	skipIfRace(t)
	r := Summary()
	for _, line := range r.Lines[1:] {
		if strings.Contains(line, "off ") {
			t.Errorf("headline metric out of band: %s", line)
		}
	}
	if len(r.Values) < 8 {
		t.Errorf("summary has %d metrics", len(r.Values))
	}
}

func TestExtMinibatchSweepLinearScaling(t *testing.T) {
	r := ExtMinibatchSweep()
	// Footprints double with the minibatch; the MFR is flat.
	b8, b16 := r.Values["mb8/baseline-gb"], r.Values["mb16/baseline-gb"]
	if b16 < 1.9*b8 || b16 > 2.1*b8 {
		t.Errorf("baseline should double: %v -> %v", b8, b16)
	}
	m8, m128 := r.Values["mb8/mfr"], r.Values["mb128/mfr"]
	if m8 < 0.95*m128 || m8 > 1.05*m128 {
		t.Errorf("MFR should be minibatch independent: %v vs %v", m8, m128)
	}
}

func TestExtSparsitySweepMonotone(t *testing.T) {
	r := ExtSparsitySweep()
	// SSDC MFR must be monotone nondecreasing from 50% sparsity upward.
	prev := 0.0
	for _, key := range []string{"s50", "s70", "s80", "s90"} {
		mfr := r.Values[key+"/mfr"]
		if mfr < prev {
			t.Errorf("%s: MFR %v below previous %v", key, mfr, prev)
		}
		prev = mfr
	}
	// At 90% sparsity the plan must clearly win.
	if r.Values["s90/mfr"] < 1.15 {
		t.Errorf("90%% sparsity MFR = %v", r.Values["s90/mfr"])
	}
	// Below break-even the analyzer skips SSDC: MFR exactly 1.
	if r.Values["s10/mfr"] != 1 {
		t.Errorf("10%% sparsity MFR = %v, want 1 (skipped)", r.Values["s10/mfr"])
	}
}

func TestExtAlgoSelectConvertsMemoryToSpeed(t *testing.T) {
	r := ExtAlgoSelect(DefaultMinibatch)
	for _, net := range []string{"AlexNet", "VGG16", "ResNet"} {
		if r.Values[net+"/freed-gb"] <= 0 {
			t.Errorf("%s: no memory freed", net)
		}
		if r.Values[net+"/conv-speedup"] < 1 {
			t.Errorf("%s: conv speedup below 1", net)
		}
		if r.Values[net+"/net-change"] >= 0 {
			t.Errorf("%s: net change %v should be negative (faster)",
				net, r.Values[net+"/net-change"])
		}
	}
}

func TestExtDistributedDeterminism(t *testing.T) {
	r := ExtDistributed(8, 2)
	for _, net := range []string{"TinyCNN", "TinyCNN-enc", "TinyVGG"} {
		if r.Values[net+"/deterministic"] != 1 {
			t.Errorf("%s: replica counts disagreed on the trained weights", net)
		}
		loss := r.Values[net+"/final-loss"]
		if loss != loss || loss <= 0 {
			t.Errorf("%s: final loss %v not a positive finite value", net, loss)
		}
	}
}
