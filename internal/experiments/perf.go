package experiments

// Performance experiments: Figures 9, 11, 15 and 16, all driven by the
// Titan X roofline cost model and the PCIe swap simulations.

import (
	"fmt"

	"gist/internal/core"
	"gist/internal/costmodel"
	"gist/internal/encoding"
	"gist/internal/graph"
	"gist/internal/networks"
	"gist/internal/swap"
)

// Fig9 reproduces Gist's end-to-end performance overhead: lossless alone
// and lossless+lossy, as a percentage of the baseline minibatch time.
func Fig9(mb int) *Result {
	d := costmodel.TitanX()
	r := &Result{ID: "fig9", Title: "Gist performance overhead vs CNTK baseline (modeled)"}
	r.add("%-10s %10s %16s", "network", "lossless", "lossless+lossy")
	var sumLL, sumLY float64
	n := 0
	for _, net := range suite(mb) {
		base := d.StepTime(net.G)
		ll := costmodel.Overhead(base, d.GistStepTime(net.G, encoding.Analyze(net.G, losslessCfg())))
		ly := costmodel.Overhead(base, d.GistStepTime(net.G, encoding.Analyze(net.G, lossyCfg(net.Name))))
		r.set(net.Name+"/lossless", ll)
		r.set(net.Name+"/lossy", ly)
		r.add("%-10s %9.1f%% %15.1f%%", net.Name, 100*ll, 100*ly)
		sumLL += ll
		sumLY += ly
		n++
	}
	r.set("average/lossless", sumLL/float64(n))
	r.set("average/lossy", sumLY/float64(n))
	r.add("%-10s %9.1f%% %15.1f%%", "average", 100*sumLL/float64(n), 100*sumLY/float64(n))
	r.add("(paper: ~3%% lossless, ~4%% combined, max 7%% for VGG16)")
	return r
}

// Fig11 breaks the lossless overhead down per encoding: Binarize alone
// (which can be a small win — it reduces backward-pass bandwidth) and SSDC
// alone (which pays CSR conversion passes).
func Fig11(mb int) *Result {
	d := costmodel.TitanX()
	r := &Result{ID: "fig11", Title: "Per-encoding performance overhead (modeled)"}
	r.add("%-10s %10s %8s %8s", "network", "Binarize", "SSDC", "both")
	for _, net := range suite(mb) {
		base := d.StepTime(net.G)
		bz := costmodel.Overhead(base, d.GistStepTime(net.G,
			encoding.Analyze(net.G, encoding.Config{Binarize: true})))
		sc := costmodel.Overhead(base, d.GistStepTime(net.G,
			encoding.Analyze(net.G, encoding.Config{SSDC: true, FCIsConvLike: true})))
		both := costmodel.Overhead(base, d.GistStepTime(net.G,
			encoding.Analyze(net.G, encoding.Config{Binarize: true, SSDC: true, FCIsConvLike: true})))
		r.set(net.Name+"/binarize", bz)
		r.set(net.Name+"/ssdc", sc)
		r.set(net.Name+"/both", both)
		r.add("%-10s %9.1f%% %7.1f%% %7.1f%%", net.Name, 100*bz, 100*sc, 100*both)
	}
	r.add("(Binarize is a small win: the 1-bit mask cuts ReLU backward bandwidth)")
	return r
}

// Fig15 reproduces the comparison with swap-based prior work: naive
// synchronous swapping, vDNN with prefetching, and Gist.
func Fig15(mb int) *Result {
	d := costmodel.TitanX()
	r := &Result{ID: "fig15", Title: "Overhead vs prior work: naive swap, vDNN, Gist (modeled)"}
	r.add("%-10s %8s %8s %8s", "network", "naive", "vDNN", "Gist")
	var sums [3]float64
	n := 0
	for _, net := range suite(mb) {
		naive, vdnn := swap.Overheads(d, net.G)
		base := d.StepTime(net.G)
		gist := costmodel.Overhead(base, d.GistStepTime(net.G,
			encoding.Analyze(net.G, lossyCfg(net.Name))))
		r.set(net.Name+"/naive", naive)
		r.set(net.Name+"/vdnn", vdnn)
		r.set(net.Name+"/gist", gist)
		r.add("%-10s %7.0f%% %7.0f%% %7.1f%%", net.Name, 100*naive, 100*vdnn, 100*gist)
		sums[0] += naive
		sums[1] += vdnn
		sums[2] += gist
		n++
	}
	r.set("average/naive", sums[0]/float64(n))
	r.set("average/vdnn", sums[1]/float64(n))
	r.set("average/gist", sums[2]/float64(n))
	r.add("%-10s %7.0f%% %7.0f%% %7.1f%%", "average",
		100*sums[0]/float64(n), 100*sums[1]/float64(n), 100*sums[2]/float64(n))
	r.add("(paper: naive ~30%% avg; vDNN ~15%% avg, up to 27%%; Gist ~4%%)")
	return r
}

// Fig16 reproduces the deep-ResNet minibatch study: for each depth, find
// the largest minibatch that fits the 12 GB device with and without Gist,
// and report the training speedup larger minibatches buy through better
// GPU utilization.
func Fig16() *Result {
	d := costmodel.TitanX()
	r := &Result{ID: "fig16", Title: "Speedup from Gist-enabled larger minibatches on deep ResNets"}
	r.add("%-12s %8s %8s %9s", "network", "mb-base", "mb-gist", "speedup")
	cfg := encoding.LossyLossless(PaperDPRFormat("ResNet"))
	for _, depth := range []int{509, 851, 1202} {
		depth := depth
		build := func(mb int) *graph.Graph { return networks.ResNetCIFAR(mb, depth) }
		baseMB := core.LargestFittingMinibatch(d, build, encoding.Config{}, 2048)
		gistMB := core.LargestFittingMinibatch(d, build, cfg, 2048)
		speedup := costmodel.ThroughputSpeedup(baseMB, gistMB)
		name := fmt.Sprintf("ResNet-%d", depth)
		r.set(name+"/mb-base", float64(baseMB))
		r.set(name+"/mb-gist", float64(gistMB))
		r.set(name+"/speedup", speedup)
		r.add("%-12s %8d %8d %8.0f%%", name, baseMB, gistMB, 100*(speedup-1))
	}
	r.add("(paper: 22%% speedup for ResNet-1202; deeper networks benefit more)")
	return r
}
