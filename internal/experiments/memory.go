package experiments

// Memory-footprint experiments: Figures 1, 3, 8, 10, 13 and 17 plus
// Table I. All run the Schedule Builder at full ImageNet shapes; no tensor
// data is materialized, so even VGG16 at minibatch 64 plans in
// milliseconds.

import (
	"gist/internal/core"
	"gist/internal/encoding"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
)

// Fig1 reproduces the memory breakdown across data-structure classes. The
// decomposition follows what is physically resident under static
// allocation: weights, weight gradients and stashed feature maps each hold
// dedicated memory for (most of) the minibatch, while immediately consumed
// feature maps, gradient maps and workspace live in a shared transient
// pool whose size is whatever the allocator's sharing leaves on top.
func Fig1(mb int) *Result {
	r := &Result{ID: "fig1", Title: "Memory footprint breakdown by data structure (GB)"}
	r.add("%-10s %8s %8s %8s %10s %8s", "network",
		"weights", "wgrads", "stashed", "transient", "total")
	for _, net := range suite(mb) {
		p := core.MustBuild(core.Request{
			Graph: net.G, IncludeWeights: true, IncludeWorkspace: true,
		})
		weights := p.RawByClass[graph.ClassWeights]
		wgrads := p.RawByClass[graph.ClassWeightGrads]
		stashed := p.RawByClass[graph.ClassStashedFmap]
		transient := p.Static.TotalBytes - weights - wgrads - stashed
		if transient < 0 {
			transient = 0
		}
		r.set(net.Name+"/weights", gb(weights))
		r.set(net.Name+"/wgrads", gb(wgrads))
		r.set(net.Name+"/stashed feature map", gb(stashed))
		r.set(net.Name+"/transient", gb(transient))
		r.set(net.Name+"/total", gb(p.Static.TotalBytes))
		r.add("%-10s %8.2f %8.2f %8.2f %10.2f %8.2f", net.Name,
			gb(weights), gb(wgrads), gb(stashed), gb(transient), gb(p.Static.TotalBytes))
	}
	r.add("(stashed feature maps + the transient immediates/gradients pool dominate;")
	r.add(" weights are a small fraction — the opposite of inference)")
	return r
}

// Fig3 reproduces the stashed-feature-map breakdown into the paper's
// pattern categories: ReLU outputs feeding a pool (Binarize territory),
// ReLU/Pool outputs feeding a conv (SSDC territory) and the rest (DPR).
func Fig3(mb int) *Result {
	r := &Result{ID: "fig3", Title: "Stashed feature maps by layer category (fraction of stashed bytes)"}
	r.add("%-10s %10s %10s %10s", "network", "ReLU-Pool", "ReLU-Conv", "Others")
	for _, net := range suite(mb) {
		// Classify each baseline-stashed output by the lossless pattern
		// analysis: Binarize assignments are ReLU-Pool, SSDC are
		// ReLU/Pool-Conv, the rest are Others.
		a := encoding.Analyze(net.G, encoding.Config{Binarize: true, SSDC: true, FCIsConvLike: true,
			Sparsity: func(*graph.Node) float64 { return 1 }}) // classify regardless of sparsity
		var reluPool, reluConv, others int64
		for _, n := range net.G.Nodes {
			if !graph.OutputStashed(n) {
				continue
			}
			bytes := n.OutShape.Bytes()
			switch {
			case a.ByNode[n.ID] != nil && a.ByNode[n.ID].Tech == encoding.Binarize:
				reluPool += bytes
			case a.ByNode[n.ID] != nil && a.ByNode[n.ID].Tech == encoding.SSDC:
				reluConv += bytes
			default:
				others += bytes
			}
		}
		total := reluPool + reluConv + others
		if total == 0 {
			continue
		}
		fp := func(x int64) float64 { return float64(x) / float64(total) }
		r.set(net.Name+"/relu-pool", fp(reluPool))
		r.set(net.Name+"/relu-conv", fp(reluConv))
		r.set(net.Name+"/others", fp(others))
		r.add("%-10s %9.0f%% %9.0f%% %9.0f%%", net.Name,
			100*fp(reluPool), 100*fp(reluConv), 100*fp(others))
	}
	return r
}

// Table1 reproduces the paper's technique summary.
func Table1() *Result {
	r := &Result{ID: "table1", Title: "Summary of Gist techniques"}
	r.add("%-26s %-34s %s", "Target data structure", "Technique", "Type")
	for _, row := range core.TableI() {
		r.add("%-26s %-34s %s", row.Target, row.Technique, row.Kind)
	}
	return r
}

// Fig8 reproduces the end-to-end Memory Footprint Ratio against the CNTK
// baseline for the lossless configuration and for lossless+DPR at the
// paper's per-network formats.
func Fig8(mb int) *Result {
	r := &Result{ID: "fig8", Title: "End-to-end MFR vs CNTK baseline (static allocation)"}
	r.add("%-10s %10s %16s %8s", "network", "lossless", "lossless+lossy", "format")
	var sumLL, sumLY float64
	n := 0
	for _, net := range suite(mb) {
		base := core.MustBuild(core.Request{Graph: net.G})
		ll := core.MustBuild(core.Request{Graph: net.G, Encodings: losslessCfg()}).MFR(base)
		f := PaperDPRFormat(net.Name)
		ly := core.MustBuild(core.Request{Graph: net.G, Encodings: lossyCfg(net.Name)}).MFR(base)
		r.set(net.Name+"/lossless", ll)
		r.set(net.Name+"/lossy", ly)
		r.add("%-10s %9.2fx %15.2fx %8v", net.Name, ll, ly, f)
		sumLL += ll
		sumLY += ly
		n++
	}
	r.set("average/lossless", sumLL/float64(n))
	r.set("average/lossy", sumLY/float64(n))
	r.add("%-10s %9.2fx %15.2fx", "average", sumLL/float64(n), sumLY/float64(n))
	r.add("(paper: lossless avg 1.4x; lossless+lossy avg 1.8x, up to 2x)")
	return r
}

// Fig10 isolates each lossless encoding against the investigation baseline
// (stashed feature maps excluded from sharing): SSDC alone, Binarize alone,
// both, and both plus inplace.
func Fig10(mb int) *Result {
	r := &Result{ID: "fig10", Title: "Lossless encodings in isolation — MFR vs investigation baseline"}
	r.add("%-10s %8s %9s %8s %9s", "network", "SSDC", "Binarize", "both", "+inplace")
	configs := []struct {
		key string
		cfg encoding.Config
	}{
		{"ssdc", encoding.Config{SSDC: true, FCIsConvLike: true}},
		{"binarize", encoding.Config{Binarize: true}},
		{"both", encoding.Config{SSDC: true, Binarize: true, FCIsConvLike: true}},
		{"inplace", encoding.Config{SSDC: true, Binarize: true, Inplace: true, FCIsConvLike: true}},
	}
	for _, net := range suite(mb) {
		base := core.MustBuild(core.Request{Graph: net.G, InvestigationBaseline: true})
		vals := make([]float64, len(configs))
		for i, c := range configs {
			p := core.MustBuild(core.Request{
				Graph: net.G, Encodings: c.cfg, InvestigationBaseline: true,
			})
			vals[i] = p.MFR(base)
			r.set(net.Name+"/"+c.key, vals[i])
		}
		r.add("%-10s %7.2fx %8.2fx %7.2fx %8.2fx", net.Name, vals[0], vals[1], vals[2], vals[3])
	}
	return r
}

// Fig13 reproduces the DPR-only footprint study against the investigation
// baseline: FP16 and the network's smallest accuracy-safe format.
func Fig13(mb int) *Result {
	r := &Result{ID: "fig13", Title: "DPR MFR vs investigation baseline"}
	r.add("%-10s %8s %16s", "network", "FP16", "smallest (fmt)")
	for _, net := range suite(mb) {
		base := core.MustBuild(core.Request{Graph: net.G, InvestigationBaseline: true})
		fp16 := core.MustBuild(core.Request{
			Graph: net.G, Encodings: encoding.Config{DPR: floatenc.FP16},
			InvestigationBaseline: true,
		}).MFR(base)
		small := PaperDPRFormat(net.Name)
		smallest := core.MustBuild(core.Request{
			Graph: net.G, Encodings: encoding.Config{DPR: small},
			InvestigationBaseline: true,
		}).MFR(base)
		r.set(net.Name+"/fp16", fp16)
		r.set(net.Name+"/smallest", smallest)
		r.add("%-10s %7.2fx %10.2fx (%v)", net.Name, fp16, smallest, small)
	}
	r.add("(paper example: AlexNet 1.18x at FP16, 1.48x at FP8)")
	return r
}

// Fig17 reproduces the dynamic-allocation study: dynamic alone, Gist
// lossless and lossless+lossy under dynamic allocation, and the optimized-
// software scenario (no decoded staging buffers), all against the static
// CNTK baseline.
func Fig17(mb int) *Result {
	r := &Result{ID: "fig17", Title: "Dynamic allocation MFR vs static CNTK baseline"}
	r.add("%-10s %9s %10s %8s %10s", "network", "dynamic", "lossless", "lossy", "optimized")
	var sums [4]float64
	n := 0
	for _, net := range suite(mb) {
		base := core.MustBuild(core.Request{Graph: net.G})
		reqs := []core.Request{
			{Graph: net.G, Allocation: core.DynamicAllocation},
			{Graph: net.G, Allocation: core.DynamicAllocation, Encodings: losslessCfg()},
			{Graph: net.G, Allocation: core.DynamicAllocation, Encodings: lossyCfg(net.Name)},
			{Graph: net.G, Allocation: core.DynamicAllocation, Encodings: lossyCfg(net.Name), ElideDecoded: true},
		}
		keys := []string{"dynamic", "lossless", "lossy", "optimized"}
		vals := make([]float64, len(reqs))
		for i, req := range reqs {
			vals[i] = core.MustBuild(req).MFR(base)
			r.set(net.Name+"/"+keys[i], vals[i])
			sums[i] += vals[i]
		}
		n++
		r.add("%-10s %8.2fx %9.2fx %7.2fx %9.2fx", net.Name, vals[0], vals[1], vals[2], vals[3])
	}
	r.add("%-10s %8.2fx %9.2fx %7.2fx %9.2fx", "average",
		sums[0]/float64(n), sums[1]/float64(n), sums[2]/float64(n), sums[3]/float64(n))
	r.add("(paper: dynamic avg 1.2x; Gist lossless 1.7x; lossy 2.6x; optimized avg 2.9x, up to 4.1x)")
	return r
}

// stashedBytesOf sums baseline-stashed feature map bytes, used by tests.
func stashedBytesOf(g *graph.Graph) int64 {
	var b int64
	for _, n := range g.Nodes {
		if graph.OutputStashed(n) {
			b += n.OutShape.Bytes()
		}
	}
	return b
}

// reluKind is re-exported for the fig3 test's sanity checks.
var reluKind = layers.ReLU
