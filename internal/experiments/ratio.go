package experiments

// The compression-ratio shootout: real activations from briefly trained
// networks, encoded per layer with every lossless-tier technique, reporting
// the measured (not modeled) compression ratio of each. This is the table
// the adaptive planner's per-layer selection is judged against — where ZVC
// beats SSDC, where only Entropy compresses, and where everything loses to
// the dense DPR stash.

import (
	"errors"
	"fmt"
	"sort"

	"gist/internal/bufpool"
	"gist/internal/encoding"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/networks"
	"gist/internal/train"
)

// RatioScale sizes the ratio shootout runs.
type RatioScale struct {
	Classes   int
	Minibatch int
	// Steps trains each network briefly first so the activations carry
	// realistic (post-warmup) sparsity rather than random-weight noise.
	Steps    int
	LR       float32
	NoiseStd float64
	Seed     uint64
	// Format is the DPR format layered under the quantized columns.
	Format floatenc.Format
	// Pool, when non-nil, pools the training runs' per-step tensors.
	Pool *bufpool.Pool
}

// DefaultRatioScale trains each network for a few seconds.
func DefaultRatioScale() RatioScale {
	return RatioScale{
		Classes: 4, Minibatch: 8, Steps: 60, LR: 0.05, NoiseStd: 0.4,
		Seed: 42, Format: floatenc.FP16, Pool: trainingPool,
	}
}

// ExtRatio runs the per-layer × per-technique compression-ratio shootout on
// TinyCNN and TinyVGG: after a short training run, one forward pass's
// stashed feature maps are encoded through the real codecs at every
// lossless-tier technique and the measured ratios are tabulated. "-" marks
// a technique whose runtime cost guard refused the layer (the encoded form
// would not have beaten the dense alternative).
func ExtRatio(s RatioScale) *Result {
	r := &Result{ID: "ratio", Title: "Measured per-layer compression ratio by technique"}
	type netSpec struct {
		name    string
		build   func(mb, classes int) *graph.Graph
		imgSize int
	}
	nets := []netSpec{
		{"TinyCNN", networks.TinyCNN, 16},
		{"TinyVGG", networks.TinyVGG, 32},
	}
	type techSpec struct {
		label string
		tech  encoding.Technique
		f     floatenc.Format
	}
	techs := []techSpec{
		{"SSDC", encoding.SSDC, floatenc.FP32},
		{"ZVC", encoding.ZVC, floatenc.FP32},
		{"ZVC+" + s.Format.String(), encoding.ZVC, s.Format},
		{"Entropy", encoding.Entropy, floatenc.FP32},
		{"DPR-" + s.Format.String(), encoding.DPR, s.Format},
	}

	cdc := encoding.DefaultCodec()
	for _, net := range nets {
		g := net.build(s.Minibatch, s.Classes)
		e := train.NewExecutor(g, train.Options{Seed: s.Seed, Pool: s.Pool})
		d := train.NewDataset(s.Classes, 3, net.imgSize, s.NoiseStd, s.Seed+1)
		train.Run(e, d, train.RunConfig{Minibatch: s.Minibatch, Steps: s.Steps, LR: s.LR})
		x, labels := d.Batch(s.Minibatch)
		e.Forward(x, labels, true)

		// The stash set: every node whose output a backward pass reads.
		a := encoding.Analyze(g, encoding.Config{})
		r.add("")
		header := fmt.Sprintf("%-22s %8s", net.name+" layer", "sparsity")
		for _, ts := range techs {
			header += fmt.Sprintf(" %9s", ts.label)
		}
		r.add("%s", header)
		for _, n := range g.Nodes {
			if !a.OutputStashed(n) {
				continue
			}
			t := e.Output(n)
			if t == nil {
				continue
			}
			zeros := 0
			for _, v := range t.Data {
				if v == 0 {
					zeros++
				}
			}
			sparsity := float64(zeros) / float64(len(t.Data))
			dense := float64(len(t.Data) * 4)
			line := fmt.Sprintf("%-22s %7.1f%%", n.Name, 100*sparsity)
			for _, ts := range techs {
				as := &encoding.Assignment{Node: n, Tech: ts.tech, Format: ts.f}
				enc, err := cdc.EncodeStash(as, t)
				if err != nil {
					if errors.Is(err, encoding.ErrStashTooLarge) {
						line += fmt.Sprintf(" %9s", "-")
						continue
					}
					line += fmt.Sprintf(" %9s", "err")
					continue
				}
				ratio := dense / float64(enc.Bytes())
				line += fmt.Sprintf(" %8.2fx", ratio)
				r.set(fmt.Sprintf("%s/%s/%s", net.name, n.Name, ts.label), ratio)
			}
			r.add("%s", line)
		}
		e.ReleaseBuffers()
	}

	// Per-network summary: how often each technique wins outright.
	r.add("")
	wins := map[string]int{}
	type cell struct {
		net, layer, tech string
		ratio            float64
	}
	best := map[string]cell{}
	for k, v := range r.Values {
		parts := splitRatioKey(k)
		if parts == nil {
			continue
		}
		netName, layer, tech := parts[0], parts[1], parts[2]
		key := netName + "/" + layer
		if b, ok := best[key]; !ok || v > b.ratio {
			best[key] = cell{netName, layer, tech, v}
		}
	}
	for _, b := range best {
		wins[b.tech]++
	}
	var labels []string
	for _, ts := range techs {
		labels = append(labels, ts.label)
	}
	sort.Strings(labels)
	for _, l := range labels {
		r.add("best-technique wins: %-10s %d layers", l, wins[l])
		r.set("wins/"+l, float64(wins[l]))
	}
	r.add("(ratios are measured on real activations; the adaptive planner's")
	r.add(" per-layer predictions are judged against this table)")
	return r
}

// splitRatioKey splits "net/layer/tech" (layer names contain no slashes).
func splitRatioKey(k string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(k); i++ {
		if k[i] == '/' {
			parts = append(parts, k[start:i])
			start = i + 1
		}
	}
	parts = append(parts, k[start:])
	if len(parts) != 3 {
		return nil
	}
	return parts
}
