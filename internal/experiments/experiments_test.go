package experiments

import (
	"strings"
	"testing"

	"gist/internal/floatenc"
	"gist/internal/race"
)

// skipIfRace skips the full-training harness tests under `go test -race`:
// single-goroutine minute-scale runs that only time out CI at the race
// detector's ~10x slowdown (the fast tests keep race coverage).
func skipIfRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("full-training harness skipped under -race")
	}
}

func TestFig1StashedDominates(t *testing.T) {
	r := Fig1(DefaultMinibatch)
	for _, net := range []string{"VGG16", "Inception"} {
		stashed := r.Values[net+"/stashed feature map"]
		weights := r.Values[net+"/weights"]
		if stashed <= weights {
			t.Errorf("%s: stashed (%v GB) must dominate weights (%v GB)", net, stashed, weights)
		}
	}
	// Deeper networks need more memory: VGG16 total must dwarf AlexNet's.
	if r.Values["VGG16/total"] < 3*r.Values["AlexNet/total"] {
		t.Errorf("VGG16 total %v should be >> AlexNet %v",
			r.Values["VGG16/total"], r.Values["AlexNet/total"])
	}
	// VGG16 at minibatch 64 should be in the headroom band of a 12 GB
	// card once weights and workspace are included (the paper: it barely
	// fits).
	if r.Values["VGG16/total"] < 4 || r.Values["VGG16/total"] > 14 {
		t.Errorf("VGG16 total = %v GB, want 4-14", r.Values["VGG16/total"])
	}
}

func TestFig3ReLUOutputsDominateStashes(t *testing.T) {
	r := Fig3(DefaultMinibatch)
	// Paper: VGG16 has ~40% ReLU-Pool and ~49% ReLU-Conv (89% total for
	// ReLU outputs).
	rp, rc := r.Values["VGG16/relu-pool"], r.Values["VGG16/relu-conv"]
	if rp+rc < 0.7 {
		t.Errorf("VGG16 ReLU share = %v, want > 0.7", rp+rc)
	}
	if rp < 0.25 || rp > 0.55 {
		t.Errorf("VGG16 ReLU-Pool share = %v, want ~0.4", rp)
	}
	// Fractions sum to 1 for every network.
	for _, net := range []string{"AlexNet", "NiN", "Overfeat", "VGG16", "Inception", "ResNet"} {
		sum := r.Values[net+"/relu-pool"] + r.Values[net+"/relu-conv"] + r.Values[net+"/others"]
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %v", net, sum)
		}
	}
}

func TestTable1(t *testing.T) {
	r := Table1()
	joined := strings.Join(r.Lines, "\n")
	for _, want := range []string{"Binarize", "Sparse Storage", "Delayed Precision", "Inplace"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFig8HeadlineNumbers(t *testing.T) {
	r := Fig8(DefaultMinibatch)
	avgLL, avgLY := r.Values["average/lossless"], r.Values["average/lossy"]
	// Paper: lossless avg 1.4x; lossless+lossy avg 1.8x, up to 2x. Allow
	// a band around each (substrate differences shift absolute numbers).
	if avgLL < 1.2 || avgLL > 1.9 {
		t.Errorf("lossless avg MFR = %v, want ~1.4", avgLL)
	}
	if avgLY < 1.5 || avgLY > 2.6 {
		t.Errorf("lossy avg MFR = %v, want ~1.8", avgLY)
	}
	if avgLY <= avgLL {
		t.Error("lossy must improve on lossless")
	}
	// Per-network MFRs all exceed 1.
	for _, net := range []string{"AlexNet", "NiN", "Overfeat", "VGG16", "Inception", "ResNet"} {
		if r.Values[net+"/lossless"] <= 1 {
			t.Errorf("%s lossless MFR = %v", net, r.Values[net+"/lossless"])
		}
	}
}

func TestFig9OverheadSmall(t *testing.T) {
	r := Fig9(DefaultMinibatch)
	if avg := r.Values["average/lossy"]; avg < 0 || avg > 0.10 {
		t.Errorf("average Gist overhead = %v, want ~4%%", avg)
	}
	if ll, ly := r.Values["average/lossless"], r.Values["average/lossy"]; ly < ll {
		t.Errorf("lossy overhead %v must be >= lossless %v", ly, ll)
	}
}

func TestFig10EncodingIsolation(t *testing.T) {
	r := Fig10(DefaultMinibatch)
	for _, net := range []string{"AlexNet", "VGG16"} {
		ssdc, bin := r.Values[net+"/ssdc"], r.Values[net+"/binarize"]
		both := r.Values[net+"/both"]
		if ssdc < 1 || bin < 1 {
			t.Errorf("%s: isolated encodings must not hurt: ssdc %v, binarize %v", net, ssdc, bin)
		}
		if both < ssdc || both < bin {
			t.Errorf("%s: combined (%v) must beat each alone (%v, %v)", net, both, ssdc, bin)
		}
	}
	// Binarize is the bigger lever on AlexNet (large ReLU-Pool share).
	if r.Values["AlexNet/binarize"] <= r.Values["AlexNet/ssdc"] {
		t.Error("AlexNet: Binarize should beat SSDC in isolation")
	}
}

func TestFig11BinarizeIsAWin(t *testing.T) {
	r := Fig11(DefaultMinibatch)
	for _, net := range []string{"AlexNet", "VGG16", "Inception"} {
		if r.Values[net+"/binarize"] > 0.001 {
			t.Errorf("%s: Binarize overhead %v should be <= ~0", net, r.Values[net+"/binarize"])
		}
		if r.Values[net+"/ssdc"] < 0 || r.Values[net+"/ssdc"] > 0.12 {
			t.Errorf("%s: SSDC overhead %v out of band", net, r.Values[net+"/ssdc"])
		}
	}
}

func TestFig13DPRBands(t *testing.T) {
	r := Fig13(DefaultMinibatch)
	// Paper's worked numbers: AlexNet 1.18x at FP16 and 1.48x at FP8.
	if v := r.Values["AlexNet/fp16"]; v < 1.1 || v > 1.3 {
		t.Errorf("AlexNet FP16 MFR = %v, want ~1.18", v)
	}
	if v := r.Values["AlexNet/smallest"]; v < 1.3 || v > 1.6 {
		t.Errorf("AlexNet FP8 MFR = %v, want ~1.48", v)
	}
	// Smaller formats can never compress less.
	for _, net := range []string{"AlexNet", "NiN", "Overfeat", "Inception", "ResNet"} {
		if r.Values[net+"/smallest"] < r.Values[net+"/fp16"] {
			t.Errorf("%s: smallest format must be >= FP16 MFR", net)
		}
	}
}

func TestFig15Ordering(t *testing.T) {
	r := Fig15(DefaultMinibatch)
	naive, vdnn, gist := r.Values["average/naive"], r.Values["average/vdnn"], r.Values["average/gist"]
	if !(naive > vdnn && vdnn > gist) {
		t.Fatalf("ordering violated: naive %v, vDNN %v, Gist %v", naive, vdnn, gist)
	}
	// Paper bands: naive ~30%, vDNN ~15%, Gist ~4%.
	if vdnn < 0.05 || vdnn > 0.3 {
		t.Errorf("vDNN avg = %v, want ~15%%", vdnn)
	}
	if gist > 0.10 {
		t.Errorf("Gist avg = %v, want ~4%%", gist)
	}
}

func TestFig16DeeperBenefitsMore(t *testing.T) {
	skipIfRace(t)
	r := Fig16()
	s509 := r.Values["ResNet-509/speedup"]
	s1202 := r.Values["ResNet-1202/speedup"]
	if s1202 <= s509 {
		t.Fatalf("deeper should benefit more: 509 %v vs 1202 %v", s509, s1202)
	}
	// Paper: 22% for ResNet-1202; accept 10-40%.
	if s1202 < 1.10 || s1202 > 1.40 {
		t.Errorf("ResNet-1202 speedup = %v, want ~1.22", s1202)
	}
	// Gist must at least double the minibatch at every depth.
	for _, net := range []string{"ResNet-509", "ResNet-851", "ResNet-1202"} {
		if r.Values[net+"/mb-gist"] < 2*r.Values[net+"/mb-base"] {
			t.Errorf("%s: gist mb %v should be >= 2x base %v", net,
				r.Values[net+"/mb-gist"], r.Values[net+"/mb-base"])
		}
	}
}

func TestFig17DynamicBands(t *testing.T) {
	r := Fig17(DefaultMinibatch)
	for _, net := range []string{"AlexNet", "NiN", "Overfeat", "VGG16", "Inception", "ResNet"} {
		dyn := r.Values[net+"/dynamic"]
		ll := r.Values[net+"/lossless"]
		ly := r.Values[net+"/lossy"]
		opt := r.Values[net+"/optimized"]
		if !(dyn >= 1 && ll > dyn && ly > ll && opt >= ly) {
			t.Errorf("%s: ordering violated: dyn %v, ll %v, ly %v, opt %v", net, dyn, ll, ly, opt)
		}
	}
	// Paper: dynamic avg ~1.2x; optimized up to 4.1x.
	var dynSum, optMax float64
	nets := []string{"AlexNet", "NiN", "Overfeat", "VGG16", "Inception", "ResNet"}
	for _, net := range nets {
		dynSum += r.Values[net+"/dynamic"]
		if r.Values[net+"/optimized"] > optMax {
			optMax = r.Values[net+"/optimized"]
		}
	}
	if avg := dynSum / float64(len(nets)); avg < 1.05 || avg > 1.5 {
		t.Errorf("dynamic avg = %v, want ~1.2", avg)
	}
	if optMax < 3 || optMax > 6 {
		t.Errorf("optimized max = %v, want ~4.1", optMax)
	}
}

func TestFig12AccuracyStory(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("training run")
	}
	r := Fig12(DefaultTrainScale())
	base := r.Values["Baseline-FP32/accuracy-loss"]
	for _, cfg := range []string{"Gist-FP16", "Gist-FP10", "Gist-FP8"} {
		if dpr := r.Values[cfg+"/accuracy-loss"]; dpr > base+0.15 {
			t.Errorf("%s accuracy loss %v deviates from FP32 %v", cfg, dpr, base)
		}
	}
	// Part B: immediate-reduction forward error must be present at depth 1
	// and larger by depth 10, and coarser formats must err more.
	d1 := r.Values["fwderr/fp8/depth1"]
	d10 := r.Values["fwderr/fp8/depth10"]
	if d1 <= 0 {
		t.Fatal("All-FP8 must deviate at depth 1")
	}
	if d10 <= 2*d1 {
		t.Errorf("FP8 error should compound: depth1 %v, depth10 %v", d1, d10)
	}
	if r.Values["fwderr/fp16/depth10"] >= r.Values["fwderr/fp10/depth10"] ||
		r.Values["fwderr/fp10/depth10"] >= r.Values["fwderr/fp8/depth10"] {
		t.Error("coarser formats must inject more forward error")
	}
}

func TestForwardErrorByDepthDeterministic(t *testing.T) {
	a := ForwardErrorByDepth(4, 9)
	b := ForwardErrorByDepth(4, 9)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("rows = %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forward-error study must be deterministic")
		}
	}
}

func TestFig14CompressionOverTime(t *testing.T) {
	skipIfRace(t)
	if testing.Short() {
		t.Skip("training run")
	}
	r := Fig14(DefaultSparsityScale())
	if len(r.Values) == 0 {
		t.Fatal("no sparsity series")
	}
	// Every recorded ratio must be positive, and at least one layer must
	// show a ratio above 1 (compression effective).
	above1 := false
	for k, v := range r.Values {
		if v <= 0 {
			t.Fatalf("%s: ratio %v", k, v)
		}
		if v > 1 {
			above1 = true
		}
	}
	if !above1 {
		t.Error("no layer ever compressed")
	}
}

func TestLookupAndIDs(t *testing.T) {
	for _, id := range IDs() {
		if Lookup(id) == nil {
			t.Errorf("Lookup(%q) = nil", id)
		}
	}
	if Lookup("nope") != nil {
		t.Error("unknown ID should return nil")
	}
	if Lookup("FIG8") == nil {
		t.Error("lookup should be case-insensitive")
	}
}

func TestPaperDPRFormats(t *testing.T) {
	if PaperDPRFormat("AlexNet") != floatenc.FP8 ||
		PaperDPRFormat("VGG16") != floatenc.FP16 ||
		PaperDPRFormat("Inception") != floatenc.FP10 {
		t.Error("per-network formats must match Figure 12's findings")
	}
}

func TestResultString(t *testing.T) {
	r := &Result{ID: "x", Title: "t"}
	r.add("line %d", 1)
	r.set("b", 2)
	r.set("a", 1)
	if !strings.Contains(r.String(), "=== x: t ===") || !strings.Contains(r.String(), "line 1") {
		t.Error("String format")
	}
	keys := r.SortedValueKeys()
	if len(keys) != 2 || keys[0] != "a" {
		t.Errorf("keys = %v", keys)
	}
}

func TestStashedBytesHelper(t *testing.T) {
	nets := suite(2)
	if stashedBytesOf(nets[0].G) <= 0 {
		t.Fatal("stashed bytes must be positive")
	}
	_ = reluKind
}

func TestWriteCSV(t *testing.T) {
	r := &Result{ID: "figX"}
	r.set("VGG16/lossless", 1.5)
	r.set("average/lossy", 2.0)
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		"experiment,series,metric,value",
		"figX,VGG16,lossless,1.5",
		"figX,average,lossy,2",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("CSV missing %q in:\n%s", want, got)
		}
	}
}
