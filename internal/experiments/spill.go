package experiments

// Spill experiment: reconcile the vDNN/CDMA swap *simulations* with the
// repository's *real* tiered stash store. Both schedule transfers the same
// way — offload at a stash's last forward use, prefetch in earliest-
// backward-use-first order (= reverse forward order) ahead of the backward
// consumer — so the sim's predicted stall structure should describe the
// measured runs. The experiment runs real training at shrinking hot-tier
// budgets, verifies the losses stay bit-identical to the in-RAM run
// (the store's headline invariant), and reports measured spill overhead
// next to the cost model's predicted vDNN/CDMA overheads.

import (
	"time"

	"gist/internal/costmodel"
	"gist/internal/encoding"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/networks"
	"gist/internal/stashstore"
	"gist/internal/swap"
	"gist/internal/train"
)

// SpillScale sizes the spill reconciliation runs.
type SpillScale struct {
	Classes   int
	Minibatch int
	Steps     int
	LR        float32
	Seed      uint64
}

// DefaultSpillScale runs in a few seconds on one core.
func DefaultSpillScale() SpillScale {
	return SpillScale{Classes: 4, Minibatch: 8, Steps: 40, LR: 0.05, Seed: 42}
}

// spillRun trains TinyCNN once at the given stash budget (0 = all in RAM)
// and returns the probe records, wall-clock time, and store stats.
func spillRun(s SpillScale, budget int64) ([]train.Record, time.Duration, stashstore.Stats) {
	g := networks.TinyCNN(s.Minibatch, s.Classes)
	a := encoding.Analyze(g, trainingConfig(encoding.LossyLossless(floatenc.FP16)))
	e := train.NewExecutor(g, train.Options{
		Seed: s.Seed, Encodings: a,
		StashBudget: budget, SpillDir: trainingSpillDir,
	})
	defer e.ReleaseBuffers()
	d := train.NewDataset(s.Classes, 3, 16, 0.4, s.Seed+1)
	start := time.Now()
	recs := train.Run(e, d, train.RunConfig{
		Minibatch: s.Minibatch, Steps: s.Steps, LR: s.LR, ProbeEvery: 5,
	})
	elapsed := time.Since(start)
	var st stashstore.Stats
	if store := e.StashStore(); store != nil {
		st = store.Stats()
	}
	return recs, elapsed, st
}

// sameRecords reports bitwise equality of two probe trajectories.
func sameRecords(a, b []train.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Loss != b[i].Loss || a[i].AccuracyLoss != b[i].AccuracyLoss {
			return false
		}
	}
	return true
}

// ExtSpill reconciles the swap simulations with the real store.
func ExtSpill(s SpillScale) *Result {
	r := &Result{ID: "spill", Title: "Predicted (vDNN/CDMA sim) vs measured (tiered stash store) spill behavior"}

	// Predicted side: the discrete-event sims on the same graph. Their
	// prefetch order — earliest backward use first, i.e. reverse forward
	// order — is byte-for-byte the order the store's fetch-then-decode
	// futures fire in, so the schedules agree by construction.
	d := costmodel.TitanX()
	g := networks.TinyCNN(s.Minibatch, s.Classes)
	tl := graph.BuildTimeline(g)
	base := d.StepTime(g)
	vdnn := costmodel.Overhead(base, swap.VDNNStepTime(d, g, tl))
	cdma := costmodel.Overhead(base, swap.CDMAStepTime(d, g, tl, nil))
	r.set("predicted/vdnn", vdnn)
	r.set("predicted/cdma", cdma)
	r.add("A. Predicted PCIe-swap overhead (TitanX cost model, TinyCNN mb=%d)", s.Minibatch)
	r.add("%-28s %8.1f%%", "vDNN (raw transfers)", 100*vdnn)
	r.add("%-28s %8.1f%%", "CDMA (compressed transfers)", 100*cdma)

	// Measured side: the in-RAM reference, then shrinking budgets. A probe
	// run at an effectively unlimited budget measures the peak hot bytes
	// the budgets are fractions of.
	_, _, probe := spillRun(s, 1<<40)
	peak := probe.HotPeakBytes
	refRecs, refTime, _ := spillRun(s, 0)
	r.set("measured/peak-stash-bytes", float64(peak))

	r.add("")
	r.add("B. Measured store behavior (real training, %d steps; reference %.0fms)",
		s.Steps, float64(refTime.Milliseconds()))
	r.add("%-12s %10s %8s %8s %10s %10s %9s %9s", "budget",
		"hot-peak", "evicts", "misses", "spilled", "read-back", "overhead", "identical")
	for _, frac := range []struct {
		name string
		pct  int64
	}{{"50%", 50}, {"10%", 10}} {
		budget := peak * frac.pct / 100
		if budget < 1 {
			budget = 1
		}
		recs, elapsed, st := spillRun(s, budget)
		overhead := costmodel.Overhead(float64(refTime), float64(elapsed))
		ident := sameRecords(recs, refRecs)
		identStr := "yes"
		if !ident {
			identStr = "NO"
		}
		r.set("measured/"+frac.name+"/overhead", overhead)
		r.set("measured/"+frac.name+"/evictions", float64(st.Evictions))
		r.set("measured/"+frac.name+"/hot-peak", float64(st.HotPeakBytes))
		if ident {
			r.set("measured/"+frac.name+"/identical", 1)
		} else {
			r.set("measured/"+frac.name+"/identical", 0)
		}
		r.add("%-12s %10d %8d %8d %10d %10d %8.1f%% %9s",
			frac.name+" of peak", st.HotPeakBytes, st.Evictions, st.Misses,
			st.SpillWritten, st.SpillRead, 100*overhead, identStr)
	}
	r.add("")
	r.add("(the sim and the store agree on the prefetch schedule: both issue")
	r.add(" fetches earliest-backward-use-first, i.e. in reverse forward order;")
	r.add(" losses at every budget are bit-identical to the in-RAM run, so the")
	r.add(" only cost of spilling is the stall time above)")
	return r
}
