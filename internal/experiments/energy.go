package experiments

// ExtEnergy quantifies the paper's energy argument against swapping: the
// data-movement energy a swap scheme spends per minibatch (every stash
// over PCIe, twice) versus what Gist's in-device encode/decode passes
// cost.

import (
	"gist/internal/costmodel"
	"gist/internal/encoding"
	"gist/internal/graph"
)

// ExtEnergy reports per-minibatch data-movement energy (millijoules) for
// swapping vs Gist on each network.
func ExtEnergy(mb int) *Result {
	r := &Result{ID: "energy", Title: "Data-movement energy per minibatch: swapping vs Gist (mJ)"}
	r.add("%-10s %12s %12s %8s", "network", "swap (mJ)", "gist (mJ)", "ratio")
	for _, net := range suite(mb) {
		swapE := costmodel.SwapEnergy(net.G)

		a := encoding.Analyze(net.G, lossyCfg(net.Name))
		var encBytes, denseBytes int64
		for _, as := range a.ByNode {
			encBytes += as.EncodedBytes
			denseBytes += as.Node.OutShape.Bytes()
		}
		for _, mapBytes := range a.PoolMaps {
			encBytes += mapBytes
		}
		gistE := costmodel.GistEnergy(encBytes, denseBytes)

		ratio := swapE / gistE
		r.set(net.Name+"/swap-mj", swapE*1e3)
		r.set(net.Name+"/gist-mj", gistE*1e3)
		r.set(net.Name+"/ratio", ratio)
		r.add("%-10s %12.1f %12.1f %7.1fx", net.Name, swapE*1e3, gistE*1e3, ratio)
	}
	r.add("(swapping pays PCIe + far-side DRAM for every stash, every minibatch;")
	r.add(" Gist's conversions are in-device DRAM passes — the paper's energy point)")
	return r
}

// stashedBytesFor is a small helper kept close to the energy accounting.
func stashedBytesFor(g *graph.Graph) int64 {
	var b int64
	for _, n := range g.Nodes {
		if graph.OutputStashed(n) {
			b += n.OutShape.Bytes()
		}
	}
	return b
}
