package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV emits the result's named values as machine-readable CSV with
// columns experiment, series, metric, value. Series and metric come from
// splitting each value key at its first slash ("VGG16/lossless" -> series
// VGG16, metric lossless).
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "series", "metric", "value"}); err != nil {
		return err
	}
	for _, key := range r.SortedValueKeys() {
		series, metric := key, ""
		if i := strings.Index(key, "/"); i >= 0 {
			series, metric = key[:i], key[i+1:]
		}
		if err := cw.Write([]string{
			r.ID, series, metric, fmt.Sprintf("%g", r.Values[key]),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
