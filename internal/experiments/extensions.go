package experiments

// Extension experiments beyond the paper's figures: quantitative versions
// of the alternatives the paper discusses qualitatively — the
// checkpoint-and-recompute baseline (Section II-B), cuDNN's
// performance/workspace tradeoff (Section II-A), and the CDMA
// compressed-transfer follow-up to vDNN (related work).

import (
	"gist/internal/core"
	"gist/internal/costmodel"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/liveness"
	"gist/internal/recompute"
	"gist/internal/swap"
)

// ExtRecompute compares checkpoint-and-recompute against Gist on footprint
// and overhead — the paper's Section II-B argument ("the largest layers
// are usually the ones that also take the longest to recompute") made
// quantitative.
func ExtRecompute(mb int) *Result {
	d := costmodel.TitanX()
	r := &Result{ID: "recompute", Title: "Checkpoint-and-recompute vs Gist (footprint and overhead)"}
	r.add("%-10s %14s %14s %12s %12s", "network",
		"recompute MFR", "gist MFR", "recomp ovh", "gist ovh")
	for _, net := range suite(mb) {
		base := core.MustBuild(core.Request{Graph: net.G})
		plan := recompute.Optimize(net.G)
		// Compare on the same accounting: the recompute plan's footprint
		// against the baseline static plan.
		rcMFR := float64(base.TotalBytes) / float64(plan.FootprintBytes())
		rcOvh := plan.TimeOverhead(d)

		gist := core.MustBuild(core.Request{Graph: net.G, Encodings: lossyCfg(net.Name)})
		gMFR := gist.MFR(base)
		gOvh := costmodel.Overhead(base.StepTime(d), gist.StepTime(d))

		r.set(net.Name+"/recompute-mfr", rcMFR)
		r.set(net.Name+"/gist-mfr", gMFR)
		r.set(net.Name+"/recompute-overhead", rcOvh)
		r.set(net.Name+"/gist-overhead", gOvh)
		r.add("%-10s %13.2fx %13.2fx %11.1f%% %11.1f%%",
			net.Name, rcMFR, gMFR, 100*rcOvh, 100*gOvh)
	}
	r.add("(recompute buys memory with a large fraction of an extra forward pass;")
	r.add(" Gist pays a few streaming passes — the paper's Section II-B argument)")
	return r
}

// ExtWorkspace quantifies cuDNN's performance/workspace tradeoff: the
// memory-optimal configuration (the paper's baseline) against the
// performance-optimal im2col/GEMM algorithms.
func ExtWorkspace(mb int) *Result {
	d := costmodel.TitanX()
	r := &Result{ID: "workspace", Title: "cuDNN algorithm choice: memory-optimal vs performance-optimal"}
	r.add("%-10s %12s %12s %12s %10s", "network",
		"ws mem-opt", "ws perf-opt", "extra mem", "speedup")
	for _, net := range suite(mb) {
		var memOpt, perfOpt int64
		for _, n := range net.G.Nodes {
			memOpt += liveWorkspace(n, false)
			perfOpt += liveWorkspace(n, true)
		}
		// Step time under each algorithm choice: flip every conv.
		baseTime := d.StepTime(net.G)
		setAlgos(net.G, true)
		perfTime := d.StepTime(net.G)
		setAlgos(net.G, false)
		speedup := baseTime / perfTime

		r.set(net.Name+"/ws-memopt-gb", gb(memOpt))
		r.set(net.Name+"/ws-perfopt-gb", gb(perfOpt))
		r.set(net.Name+"/speedup", speedup)
		r.add("%-10s %9.2f GB %9.2f GB %9.2f GB %9.2fx", net.Name,
			gb(memOpt), gb(perfOpt), gb(perfOpt-memOpt), speedup)
	}
	r.add("(the paper deliberately evaluates against the memory-optimal baseline;")
	r.add(" the performance-optimal algorithms add workspace that competes with")
	r.add(" exactly the memory Gist frees)")
	return r
}

// ExtCDMA extends Figure 15 with the CDMA baseline: vDNN's schedule with
// sparsity-compressed PCIe transfers.
func ExtCDMA(mb int) *Result {
	d := costmodel.TitanX()
	r := &Result{ID: "cdma", Title: "CDMA (compressed vDNN transfers) vs vDNN vs Gist"}
	r.add("%-10s %8s %8s %8s", "network", "vDNN", "CDMA", "Gist")
	for _, net := range suite(mb) {
		tl := graph.BuildTimeline(net.G)
		base := d.StepTime(net.G)
		vdnn := costmodel.Overhead(base, swap.VDNNStepTime(d, net.G, tl))
		cdma := costmodel.Overhead(base, swap.CDMAStepTime(d, net.G, tl, nil))
		gist := costmodel.Overhead(base, core.MustBuild(core.Request{
			Graph: net.G, Encodings: lossyCfg(net.Name),
		}).StepTime(d))
		r.set(net.Name+"/vdnn", vdnn)
		r.set(net.Name+"/cdma", cdma)
		r.set(net.Name+"/gist", gist)
		r.add("%-10s %7.1f%% %7.1f%% %7.1f%%", net.Name, 100*vdnn, 100*cdma, 100*gist)
	}
	r.add("(compression shrinks the PCIe bottleneck but cannot remove it;")
	r.add(" Gist keeps the data on the device)")
	return r
}

// liveWorkspace sizes one node's workspace under either algorithm choice.
func liveWorkspace(n *graph.Node, perfOptimal bool) int64 {
	if perfOptimal {
		return liveness.PerformanceOptimalWorkspace(n)
	}
	return liveness.MemoryOptimalWorkspace(n)
}

// setAlgos flips every convolution in the graph between direct and im2col.
func setAlgos(g *graph.Graph, im2col bool) {
	for _, n := range g.Nodes {
		if conv, ok := n.Op.(*layers.Conv2D); ok {
			if im2col {
				conv.Algo = layers.AlgoIm2col
			} else {
				conv.Algo = layers.AlgoDirect
			}
		}
	}
}
