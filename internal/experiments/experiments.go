// Package experiments regenerates every table and figure in the paper's
// evaluation section (Section V) on this repository's substrates: the
// memory figures from the Schedule Builder's static analysis at the paper's
// full ImageNet shapes and minibatch 64, the performance figures from the
// Titan X cost model and PCIe swap simulations, and the training figures
// from real scaled-down runs on the CPU executor.
//
// Each experiment returns a Result holding formatted rows (what the
// cmd/gistbench CLI prints) plus a flat map of named values that the test
// suite and EXPERIMENTS.md assertions consume.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"gist/internal/encoding"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/networks"
)

// DefaultMinibatch is the minibatch size the paper's memory figures use.
const DefaultMinibatch = 64

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	Lines []string
	// Values holds the figure's key series, named "<network>/<metric>".
	Values map[string]float64
}

// add appends a formatted line.
func (r *Result) add(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// set records a named value.
func (r *Result) set(key string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[key] = v
}

// String renders the result as a titled text block.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedValueKeys returns the value names in stable order.
func (r *Result) SortedValueKeys() []string {
	keys := make([]string, 0, len(r.Values))
	for k := range r.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PaperDPRFormat returns the smallest DPR format the paper found accuracy-
// safe for each network (Figure 12): FP8 for AlexNet and Overfeat, FP10
// for Inception (FP8 stops training), FP16 for VGG16 (nothing smaller
// trains). NiN and ResNet are not in the paper's Figure 12; FP10 is the
// conservative middle the harness uses for them.
func PaperDPRFormat(network string) floatenc.Format {
	switch network {
	case "AlexNet", "Overfeat":
		return floatenc.FP8
	case "Inception":
		return floatenc.FP10
	case "VGG16":
		return floatenc.FP16
	default:
		return floatenc.FP10
	}
}

// suite builds every network in the paper's suite at the given minibatch.
func suite(mb int) []struct {
	Name string
	G    *graph.Graph
} {
	var out []struct {
		Name string
		G    *graph.Graph
	}
	for _, spec := range networks.Suite() {
		out = append(out, struct {
			Name string
			G    *graph.Graph
		}{spec.Name, spec.Build(mb)})
	}
	return out
}

// gb formats bytes as decimal gigabytes.
func gb(b int64) float64 { return float64(b) / 1e9 }

// losslessCfg is the paper's lossless configuration.
func losslessCfg() encoding.Config { return encoding.Lossless() }

// lossyCfg is lossless plus the paper's per-network DPR format.
func lossyCfg(network string) encoding.Config {
	return encoding.LossyLossless(PaperDPRFormat(network))
}

// All runs every non-training experiment (the training figures have their
// own entry points with scale knobs) at the default minibatch.
func All() []*Result {
	return []*Result{
		Fig1(DefaultMinibatch),
		Fig3(DefaultMinibatch),
		Table1(),
		Fig8(DefaultMinibatch),
		Fig9(DefaultMinibatch),
		Fig10(DefaultMinibatch),
		Fig11(DefaultMinibatch),
		Fig13(DefaultMinibatch),
		Fig15(DefaultMinibatch),
		Fig16(),
		Fig17(DefaultMinibatch),
	}
}

// Lookup returns the experiment runner for an ID, or nil. Training
// experiments (fig12, fig14) accept a scale argument via their own
// functions and run at default scale here.
func Lookup(id string) func() *Result {
	switch strings.ToLower(id) {
	case "fig1":
		return func() *Result { return Fig1(DefaultMinibatch) }
	case "fig3":
		return func() *Result { return Fig3(DefaultMinibatch) }
	case "table1":
		return Table1
	case "fig8":
		return func() *Result { return Fig8(DefaultMinibatch) }
	case "fig9":
		return func() *Result { return Fig9(DefaultMinibatch) }
	case "fig10":
		return func() *Result { return Fig10(DefaultMinibatch) }
	case "fig11":
		return func() *Result { return Fig11(DefaultMinibatch) }
	case "fig12":
		return func() *Result { return Fig12(DefaultTrainScale()) }
	case "fig13":
		return func() *Result { return Fig13(DefaultMinibatch) }
	case "fig14":
		return func() *Result { return Fig14(DefaultSparsityScale()) }
	case "fig15":
		return func() *Result { return Fig15(DefaultMinibatch) }
	case "fig16":
		return Fig16
	case "fig17":
		return func() *Result { return Fig17(DefaultMinibatch) }
	case "recompute":
		return func() *Result { return ExtRecompute(DefaultMinibatch) }
	case "workspace":
		return func() *Result { return ExtWorkspace(DefaultMinibatch) }
	case "cdma":
		return func() *Result { return ExtCDMA(DefaultMinibatch) }
	case "energy":
		return func() *Result { return ExtEnergy(DefaultMinibatch) }
	case "mbsweep":
		return ExtMinibatchSweep
	case "sparsitysweep":
		return ExtSparsitySweep
	case "algoselect":
		return func() *Result { return ExtAlgoSelect(DefaultMinibatch) }
	case "ratio":
		return func() *Result { return ExtRatio(DefaultRatioScale()) }
	case "spill":
		// Real training at shrinking stash budgets, so it runs at training
		// scale like fig12/fig14.
		return func() *Result { return ExtSpill(DefaultSpillScale()) }
	case "distributed":
		// Real replica training, so it runs at training scale (shard batch
		// mb/4), not the planning suite's 64-row minibatch.
		return func() *Result { return ExtDistributed(8, 4) }
	case "summary":
		return Summary
	}
	return nil
}

// IDs lists every experiment in presentation order: the paper's figures
// first, then the extension studies.
func IDs() []string {
	return []string{"fig1", "fig3", "table1", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"recompute", "workspace", "cdma", "energy", "mbsweep",
		"sparsitysweep", "algoselect", "ratio", "spill", "distributed", "summary"}
}
