package experiments

// ExtAlgoSelect closes the loop the paper opens in Section II: the
// convolution workspace that cuDNN's performance-optimal algorithms want
// competes with feature maps for GPU memory, and the bytes Gist frees can
// fund exactly those algorithms. For each network, spend the freed bytes
// as workspace budget and report the net effect.

import (
	"gist/internal/core"
	"gist/internal/costmodel"
)

// ExtAlgoSelect reports, per network, the memory Gist frees, the
// convolution speedup that budget buys via algorithm selection, and the
// net step-time change including Gist's own overhead.
func ExtAlgoSelect(mb int) *Result {
	d := costmodel.TitanX()
	r := &Result{ID: "algoselect", Title: "Spending Gist's freed memory on faster convolution algorithms"}
	r.add("%-10s %10s %12s %12s", "network", "freed", "conv speedup", "net change")
	for _, net := range suite(mb) {
		base := core.MustBuild(core.Request{Graph: net.G})
		gist := core.MustBuild(core.Request{Graph: net.G, Encodings: lossyCfg(net.Name)})
		freed := base.TotalBytes - gist.TotalBytes
		if freed < 0 {
			freed = 0
		}
		baseTime := base.StepTime(d)
		gistOverhead := gist.StepTime(d) - baseTime

		speedup := core.SpeedupUnderBudget(d, net.G, freed)
		// Net step time: the faster convolutions plus Gist's conversion
		// overhead, against the memory-optimal baseline.
		core.SelectConvAlgos(d, net.G, freed)
		fastTime := d.StepTime(net.G) + gistOverhead
		core.ResetConvAlgos(net.G)
		net2 := (fastTime - baseTime) / baseTime

		r.set(net.Name+"/freed-gb", gb(freed))
		r.set(net.Name+"/conv-speedup", speedup)
		r.set(net.Name+"/net-change", net2)
		r.add("%-10s %7.2f GB %11.2fx %+11.1f%%", net.Name, gb(freed), speedup, 100*net2)
	}
	r.add("(negative net change = faster than the memory-optimal baseline even")
	r.add(" after paying Gist's encode/decode costs — memory converts to speed)")
	return r
}
