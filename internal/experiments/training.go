package experiments

// Training experiments: Figure 12 (accuracy under precision reduction) and
// Figure 14 (SSDC compression over training time). Both run real training
// on the CPU executor at reduced scale — the mechanisms under test
// (forward-error compounding vs delayed reduction; sparsity ramping after
// the first few hundred minibatches) are scale-independent.

import (
	"fmt"
	"sort"
	"strings"

	"gist/internal/bufpool"
	"gist/internal/encoding"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/networks"
	"gist/internal/sparse"
	"gist/internal/train"
)

// trainingPool, when set, is threaded into the default scales so the
// zero-argument runners behind Lookup train through a buffer pool. The CLIs'
// -pool flag sets it; results are byte-identical either way.
var trainingPool *bufpool.Pool

// SetTrainingPool routes the training-based experiments' per-step tensors
// through the given pool (nil restores allocate-per-step).
func SetTrainingPool(p *bufpool.Pool) { trainingPool = p }

// trainingReplicas/trainingShards, when set, run the training-based
// experiments on the data-parallel replica engine. The CLIs' -replicas and
// -shards flags set them; at a fixed shard count results are byte-identical
// at every replica count.
var trainingReplicas, trainingShards int

// SetTrainingReplicas sizes the replica groups the zero-argument training
// runners build (0/0 restores the single-executor path).
func SetTrainingReplicas(replicas, shards int) {
	trainingReplicas, trainingShards = replicas, shards
}

// trainingTechnique, when set, narrows the encoded training experiments'
// stash configurations to one codec technique (or "adaptive" for the
// per-layer minimum-bytes selection). The CLIs' consolidated -technique
// flag sets it; "" restores each experiment's default configuration.
var trainingTechnique string

// SetTrainingTechnique names the technique the encoded training runners
// use; an unknown name is rejected before any experiment runs.
func SetTrainingTechnique(name string) error {
	if name != "" && !strings.EqualFold(name, "adaptive") {
		if _, err := encoding.ParseTechnique(name); err != nil {
			return err
		}
	}
	trainingTechnique = name
	return nil
}

// trainingStashBudget/trainingSpillDir, when set, run the training-based
// experiments through the tiered stash store: hot stash bytes are capped
// at the budget and the excess spills to encoded pages on disk. The CLIs'
// -stash-budget and -spill-dir flags set them; results are bit-identical
// at every budget.
var (
	trainingStashBudget int64
	trainingSpillDir    string
)

// SetTrainingStash caps the training-based experiments' in-RAM stash
// bytes, spilling the excess under dir (0 restores all-in-RAM).
func SetTrainingStash(budget int64, dir string) {
	trainingStashBudget, trainingSpillDir = budget, dir
}

// trainingConfig applies the technique knob to a base configuration.
func trainingConfig(cfg encoding.Config) encoding.Config {
	if trainingTechnique == "" {
		return cfg
	}
	if strings.EqualFold(trainingTechnique, "adaptive") {
		cfg.AdaptiveSet = encoding.AdaptiveAll()
		return cfg
	}
	t, _ := encoding.ParseTechnique(trainingTechnique)
	return cfg.WithTechnique(t)
}

// newTrainEngine builds the training engine for a run: a plain executor
// when replicas and shards are unset, otherwise a replica group whose
// micro-shards divide the requested minibatch (so the per-step sample
// count is unchanged). It returns the engine, the per-step minibatch to
// drive it with, and a release function for the group's workers.
func newTrainEngine(build func(mb, classes int) *graph.Graph, mb, classes int,
	opts train.Options, replicas, shards int) (train.Stepper, int, func()) {
	if trainingStashBudget > 0 && opts.StashBudget == 0 {
		opts.StashBudget = trainingStashBudget
		opts.SpillDir = trainingSpillDir
	}
	if replicas <= 1 && shards <= 0 {
		e := train.NewExecutor(build(mb, classes), opts)
		// ReleaseBuffers also closes the stash store (removing its spill
		// file) when a budget is set.
		return e, mb, e.ReleaseBuffers
	}
	if shards <= 0 {
		shards = replicas
	}
	shardBatch := mb / shards
	if shardBatch < 1 {
		shardBatch = 1
	}
	rg := train.NewReplicaGroup(build(shardBatch, classes), opts,
		train.ReplicaConfig{Replicas: replicas, Shards: shards})
	return rg, rg.GroupBatch(), rg.Close
}

// TrainScale sizes the Figure 12 runs.
type TrainScale struct {
	Classes   int
	Minibatch int
	Steps     int
	LR        float32
	NoiseStd  float64
	Seeds     []uint64
	// ErrorDepth is the conv depth of the forward-error study network.
	ErrorDepth int
	Seed       uint64 // base seed (kept for the CLI's -seed flag)
	// Pool, when non-nil, serves every per-step tensor of the training runs
	// from its free lists instead of fresh allocations.
	Pool *bufpool.Pool
	// Replicas/Shards, when set, run the accuracy study on the replica
	// engine: Minibatch is divided into Shards micro-shards spread over
	// Replicas concurrent executors.
	Replicas, Shards int
}

// DefaultTrainScale trains in well under a minute on one core.
func DefaultTrainScale() TrainScale {
	return TrainScale{
		Classes: 4, Minibatch: 8, Steps: 200, LR: 0.05, NoiseStd: 0.4,
		Seeds: []uint64{42, 43}, ErrorDepth: 12, Seed: 42,
		Pool: trainingPool, Replicas: trainingReplicas, Shards: trainingShards,
	}
}

// fig12Configs lists the precision configurations Figure 12 compares.
func fig12Configs() []struct {
	name   string
	mode   train.PrecisionMode
	format floatenc.Format
} {
	return []struct {
		name   string
		mode   train.PrecisionMode
		format floatenc.Format
	}{
		{"Baseline-FP32", train.FullPrecision, floatenc.FP32},
		{"All-FP16", train.AllReduced, floatenc.FP16},
		{"All-FP8", train.AllReduced, floatenc.FP8},
		{"Gist-FP16", train.DelayedReduced, floatenc.FP16},
		{"Gist-FP10", train.DelayedReduced, floatenc.FP10},
		{"Gist-FP8", train.DelayedReduced, floatenc.FP8},
	}
}

// Fig12 reproduces the accuracy study in two parts. Part A trains each
// precision configuration (seed-averaged) and reports the final training
// accuracy loss: Gist-DPR must track the FP32 baseline, which is the
// paper's central accuracy claim. Part B isolates the mechanism behind the
// All-* failures the paper observed at ImageNet scale: the relative
// forward-pass error that immediate reduction injects compounds layer by
// layer, while delayed reduction keeps the forward pass bit-exact. (At
// this reproduction's 6-conv scale the compounded error does not yet
// overwhelm training, so part B carries the divergence evidence.)
func Fig12(s TrainScale) *Result {
	r := &Result{ID: "fig12", Title: "Training accuracy under precision reduction (scaled run)"}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{s.Seed}
	}
	r.add("A. Final training accuracy loss (avg over %d seeds)", len(s.Seeds))
	r.add("%-22s %14s %10s", "configuration", "accuracy loss", "trains?")
	for _, c := range fig12Configs() {
		var sum float64
		diverged := false
		for _, seed := range s.Seeds {
			opts := train.Options{Seed: seed, Pool: s.Pool}
			if c.mode != train.FullPrecision {
				opts.Mode = c.mode
				opts.Format = c.format
			}
			e, stepMB, done := newTrainEngine(networks.TinyCNN,
				s.Minibatch, s.Classes, opts, s.Replicas, s.Shards)
			d := train.NewDataset(s.Classes, 3, 16, s.NoiseStd, seed+1)
			recs := train.Run(e, d, train.RunConfig{
				Minibatch: stepMB, Steps: s.Steps, LR: s.LR,
				ProbeEvery: s.Steps / 10,
			})
			done()
			sum += train.FinalAccuracyLoss(recs)
			diverged = diverged || train.Diverged(recs, s.Classes)
		}
		accLoss := sum / float64(len(s.Seeds))
		r.set(c.name+"/accuracy-loss", accLoss)
		trains := "yes"
		if diverged {
			trains = "NO"
		}
		r.add("%-22s %13.1f%% %10s", c.name, 100*accLoss, trains)
	}

	r.add("")
	r.add("B. Forward-pass relative error vs FP32 by depth (the compounding mechanism)")
	r.add("%-12s %10s %10s %10s %10s", "depth", "All-FP16", "All-FP10", "All-FP8", "Gist-DPR*")
	errs := ForwardErrorByDepth(s.ErrorDepth, s.Seed)
	for _, row := range errs {
		r.add("conv %-7d %9.4f%% %9.4f%% %9.4f%% %9.4f%%",
			row.Depth, 100*row.AllFP16, 100*row.AllFP10, 100*row.AllFP8, 0.0)
		r.set(fmt.Sprintf("fwderr/fp16/depth%d", row.Depth), row.AllFP16)
		r.set(fmt.Sprintf("fwderr/fp10/depth%d", row.Depth), row.AllFP10)
		r.set(fmt.Sprintf("fwderr/fp8/depth%d", row.Depth), row.AllFP8)
	}
	r.add("(* Gist-DPR's forward pass is bit-identical to FP32 at every depth.)")
	r.add("(paper: All-FP16 loses accuracy badly at 100+-layer scale; Gist-DPR tracks")
	r.add(" FP32 down to FP8 for AlexNet/Overfeat, FP10 for Inception, FP16 for VGG16)")
	return r
}

// DepthError is one row of the Figure 12 forward-error study.
type DepthError struct {
	Depth                    int
	AllFP16, AllFP10, AllFP8 float64
}

// deepStack is a thin conv-ReLU tower with its activation names recorded,
// the instrument for measuring error growth with depth.
type deepStack struct {
	g         *graph.Graph
	reluNames []string
}

func newDeepStack(mb, classes, depth int) *deepStack {
	s := &deepStack{g: graph.New()}
	n := s.g.MustAdd("input", layers.NewInput(mb, 3, 16, 16))
	for i := 0; i < depth; i++ {
		n = s.g.MustAdd(fmt.Sprintf("conv%d", i), layers.NewConv2D(4, 3, 1, 1), n)
		n = s.g.MustAdd(fmt.Sprintf("relu%d", i), layers.NewReLU(), n)
		s.reluNames = append(s.reluNames, fmt.Sprintf("relu%d", i))
	}
	fc := s.g.MustAdd("fc", layers.NewFC(classes), n)
	s.g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	return s
}

// ForwardErrorByDepth builds a deep thin conv stack, runs one forward pass
// per precision configuration on identical weights and data, and measures
// the mean relative error of each activation against FP32. Gist-DPR is not
// listed because its forward pass is the FP32 forward pass.
func ForwardErrorByDepth(depth int, seed uint64) []DepthError {
	d := train.NewDataset(4, 3, 16, 0.4, seed+1)
	x, labels := d.Batch(4)

	ref := newDeepStack(4, 4, depth)
	refExec := train.NewExecutor(ref.g, train.Options{Seed: seed})
	refExec.Forward(x, labels, false)

	formats := []floatenc.Format{floatenc.FP16, floatenc.FP10, floatenc.FP8}
	execs := make([]*train.Executor, len(formats))
	stacks := make([]*deepStack, len(formats))
	for i, f := range formats {
		stacks[i] = newDeepStack(4, 4, depth)
		execs[i] = train.NewExecutor(stacks[i].g, train.Options{
			Seed: seed, Mode: train.AllReduced, Format: f,
		})
		execs[i].Forward(x, labels, false)
	}

	var rows []DepthError
	for di, name := range ref.reluNames {
		row := DepthError{Depth: di + 1}
		a := refExec.Output(ref.g.Lookup(name))
		for i := range formats {
			b := execs[i].Output(stacks[i].g.Lookup(name))
			var num, den float64
			for k := range a.Data {
				num += absf(float64(b.Data[k] - a.Data[k]))
				den += absf(float64(a.Data[k]))
			}
			var rel float64
			if den > 0 {
				rel = num / den
			}
			switch formats[i] {
			case floatenc.FP16:
				row.AllFP16 = rel
			case floatenc.FP10:
				row.AllFP10 = rel
			case floatenc.FP8:
				row.AllFP8 = rel
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// SparsityScale sizes the Figure 14 run.
type SparsityScale struct {
	Classes    int
	Minibatch  int
	Steps      int
	ProbeEvery int
	LR         float32
	Seed       uint64
	// Pool, when non-nil, pools the run's per-step tensors.
	Pool *bufpool.Pool
	// Replicas/Shards, when set, run the study on the replica engine.
	Replicas, Shards int
}

// DefaultSparsityScale probes a TinyVGG run every few steps.
func DefaultSparsityScale() SparsityScale {
	return SparsityScale{
		Classes: 4, Minibatch: 8, Steps: 60, ProbeEvery: 10, LR: 0.01, Seed: 7,
		Pool: trainingPool, Replicas: trainingReplicas, Shards: trainingShards,
	}
}

// Fig14 reproduces the SSDC sensitivity study: per-ReLU-layer narrow-CSR
// compression ratios over training time on a VGG-shaped network. The paper
// observes ratios start modest (random weights give ~50% sparsity) and grow
// as training sharpens the features.
func Fig14(s SparsityScale) *Result {
	r := &Result{ID: "fig14", Title: "SSDC compression ratio per ReLU layer over training (TinyVGG)"}
	e, stepMB, done := newTrainEngine(networks.TinyVGG, s.Minibatch, s.Classes,
		train.Options{Seed: s.Seed, Pool: s.Pool}, s.Replicas, s.Shards)
	d := train.NewDataset(s.Classes, 3, 32, 0.3, s.Seed+1)
	recs := train.Run(e, d, train.RunConfig{
		Minibatch: stepMB, Steps: s.Steps, LR: s.LR,
		ProbeEvery: s.ProbeEvery, ProbeSparsity: true,
	})
	done()
	if len(recs) == 0 {
		r.add("(no probes)")
		return r
	}
	// Stable layer order.
	var layerNames []string
	for name := range recs[0].ReLUSparsity {
		layerNames = append(layerNames, name)
	}
	sort.Strings(layerNames)

	header := fmt.Sprintf("%-10s", "minibatch")
	for _, name := range layerNames {
		header += fmt.Sprintf(" %8s", name)
	}
	r.add("%s", header)
	for _, rec := range recs {
		line := fmt.Sprintf("%-10d", rec.Minibatch)
		for _, name := range layerNames {
			ratio := csrRatio(rec.ReLUSparsity[name])
			line += fmt.Sprintf(" %7.2fx", ratio)
			r.set(fmt.Sprintf("%s/mb%d", name, rec.Minibatch), ratio)
		}
		r.add("%s", line)
	}
	r.add("(paper: MFR > 1 for nearly all layers after the first ~200 minibatches,")
	r.add(" varying across layers and over time)")
	return r
}

// csrRatio converts a measured sparsity into the narrow-CSR compression
// ratio of a large buffer at that sparsity.
func csrRatio(sparsity float64) float64 {
	const n = 1 << 20
	return float64(int64(n)*4) / float64(sparse.CSRBytesModel(n, sparsity))
}
