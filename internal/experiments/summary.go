package experiments

// Summary compares the paper's headline claims with what this reproduction
// measures, metric by metric — the programmatic version of the README's
// results table and the final artifact a reviewer would check.

import "fmt"

// paperClaim is one headline number from the paper's evaluation.
type paperClaim struct {
	metric  string
	paper   float64
	measure func() float64
	// band is the acceptable relative deviation before the row is flagged.
	band float64
}

// Summary regenerates the headline metrics and reports paper vs measured,
// flagging rows that deviate beyond each claim's band.
func Summary() *Result {
	r := &Result{ID: "summary", Title: "Headline claims: paper vs this reproduction"}

	fig8 := Fig8(DefaultMinibatch)
	fig9 := Fig9(DefaultMinibatch)
	fig13 := Fig13(DefaultMinibatch)
	fig15 := Fig15(DefaultMinibatch)
	fig16 := Fig16()
	fig17 := Fig17(DefaultMinibatch)

	claims := []paperClaim{
		{"lossless MFR (avg)", 1.4,
			func() float64 { return fig8.Values["average/lossless"] }, 0.35},
		{"lossless+lossy MFR (avg)", 1.8,
			func() float64 { return fig8.Values["average/lossy"] }, 0.35},
		{"performance overhead (avg)", 0.04,
			func() float64 { return fig9.Values["average/lossy"] }, 1.0},
		{"AlexNet DPR FP16 MFR", 1.18,
			func() float64 { return fig13.Values["AlexNet/fp16"] }, 0.10},
		{"AlexNet DPR FP8 MFR", 1.48,
			func() float64 { return fig13.Values["AlexNet/smallest"] }, 0.15},
		{"vDNN overhead (avg)", 0.15,
			func() float64 { return fig15.Values["average/vdnn"] }, 0.6},
		{"ResNet-1202 speedup", 1.22,
			func() float64 { return fig16.Values["ResNet-1202/speedup"] }, 0.10},
		{"dynamic allocation MFR (avg)", 1.2,
			func() float64 {
				var s float64
				nets := []string{"AlexNet", "NiN", "Overfeat", "VGG16", "Inception", "ResNet"}
				for _, n := range nets {
					s += fig17.Values[n+"/dynamic"]
				}
				return s / float64(len(nets))
			}, 0.25},
		{"optimized software MFR (max)", 4.1,
			func() float64 {
				var m float64
				for _, n := range []string{"AlexNet", "NiN", "Overfeat", "VGG16", "Inception", "ResNet"} {
					if v := fig17.Values[n+"/optimized"]; v > m {
						m = v
					}
				}
				return m
			}, 0.35},
	}

	r.add("%-32s %10s %10s %10s", "metric", "paper", "measured", "status")
	for _, c := range claims {
		got := c.measure()
		dev := (got - c.paper) / c.paper
		status := "ok"
		if dev > c.band || dev < -c.band {
			status = fmt.Sprintf("off %+.0f%%", 100*dev)
		}
		r.set(c.metric, got)
		r.add("%-32s %10.2f %10.2f %10s", c.metric, c.paper, got, status)
	}
	return r
}
