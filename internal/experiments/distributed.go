package experiments

// ExtDistributed exercises the real data-parallel engine: the same
// minibatch stream trained at several replica counts over a fixed
// micro-shard decomposition must produce byte-identical weights, because
// the deterministic tree all-reduce makes the merged gradient a pure
// function of the data. This replaces the earlier cost-model simulation
// with measured runs: the paper's distributed argument — Gist's encodings
// stay on-device, so scaling out adds no stash traffic to the gradient
// exchange — only holds if scaling out is semantically free, which is
// exactly what the bit-identity check certifies.

import (
	"math"

	"gist/internal/encoding"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/networks"
	"gist/internal/train"
)

// distNet is one network of the distributed determinism suite.
type distNet struct {
	name    string
	build   func(mb, classes int) *graph.Graph
	size    int // input height/width for the dataset
	encoded bool
}

// ExtDistributed trains each suite network for a short run at replica
// counts {1, 2, workers} over a fixed 4-shard decomposition (shard batch =
// mb/4) and reports the final loss plus whether every replica count
// reached bit-identical weights. TinyCNN also runs with the FP16
// encode/decode pipeline in the loop, tying the reduce to the stash
// machinery.
func ExtDistributed(mb, workers int) *Result {
	const shards, classes, steps = 4, 4, 12
	shardBatch := mb / shards
	if shardBatch < 1 {
		shardBatch = 1
	}
	replicaCounts := []int{1, 2, workers}

	r := &Result{ID: "distributed",
		Title: "Data-parallel replicas: deterministic gradient all-reduce (measured runs)"}
	r.add("(%d steps, %d shards of batch %d, replica counts %v)",
		steps, shards, shardBatch, replicaCounts)
	r.add("%-14s %12s %12s", "network", "final loss", "bit-equal?")

	nets := []distNet{
		{"TinyCNN", networks.TinyCNN, 16, false},
		{"TinyCNN-enc", networks.TinyCNN, 16, true},
		{"TinyVGG", networks.TinyVGG, 32, false},
	}
	for _, net := range nets {
		var ref []float32
		var loss float64
		identical := true
		for i, replicas := range replicaCounts {
			params, l := trainDistributed(net, shardBatch, shards, replicas, classes, steps)
			if i == 0 {
				ref, loss = params, l
				continue
			}
			for k := range ref {
				if math.Float32bits(params[k]) != math.Float32bits(ref[k]) {
					identical = false
					break
				}
			}
		}
		det := 0.0
		yes := "NO"
		if identical {
			det, yes = 1, "yes"
		}
		r.set(net.name+"/deterministic", det)
		r.set(net.name+"/final-loss", loss)
		r.add("%-14s %12.4f %12s", net.name, loss, yes)
	}
	r.add("(the tree reduce fixes the gradient summation order per shard, so")
	r.add(" replica count and worker count cannot change a single weight bit)")
	return r
}

// trainDistributed runs one short replica-group training and returns
// replica 0's flattened parameters and the final step loss.
func trainDistributed(net distNet, shardBatch, shards, replicas, classes, steps int) ([]float32, float64) {
	g := net.build(shardBatch, classes)
	opts := train.Options{Seed: 42, Pool: trainingPool}
	if net.encoded {
		opts.Encodings = encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))
	}
	rg := train.NewReplicaGroup(g, opts, train.ReplicaConfig{Replicas: replicas, Shards: shards})
	defer rg.Close()

	d := train.NewDataset(classes, 3, net.size, 0.3, 7)
	var loss float64
	for step := 0; step < steps; step++ {
		x, labels := d.Batch(rg.GroupBatch())
		loss, _ = rg.Step(x, labels, 0.05)
	}
	var params []float32
	e := rg.Executor()
	for _, n := range e.G.Nodes {
		for _, p := range e.Params(n) {
			params = append(params, p.Data...)
		}
	}
	return params, loss
}
