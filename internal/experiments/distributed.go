package experiments

// ExtDistributed quantifies the paper's distributed-training argument:
// with data-parallel workers exchanging gradients over PCIe, a swapping
// scheme's feature-map traffic contends with the all-reduce, while Gist's
// in-device encodings leave the link free.

import (
	"gist/internal/core"
	"gist/internal/costmodel"
	"gist/internal/graph"
	"gist/internal/swap"
)

// ExtDistributed reports per-network step times at 4 data-parallel
// workers for the baseline, vDNN and Gist, as slowdowns over the single-
// GPU baseline step.
func ExtDistributed(mb, workers int) *Result {
	d := costmodel.TitanX()
	r := &Result{ID: "distributed",
		Title: "Data-parallel training: PCIe contention between swapping and gradient all-reduce"}
	r.add("(slowdown over the single-GPU baseline step, %d workers, ring all-reduce)", workers)
	r.add("%-10s %10s %8s %8s", "network", "baseline", "vDNN", "Gist")
	for _, net := range suite(mb) {
		tl := graph.BuildTimeline(net.G)
		base := d.StepTime(net.G)

		baseDist := swap.DistributedStepTime(d, net.G, workers, base, 0)

		vdnnLocal := swap.VDNNStepTime(d, net.G, tl)
		vdnnBusy := swap.SwapLinkBusyTime(d, net.G, tl)
		vdnnDist := swap.DistributedStepTime(d, net.G, workers, vdnnLocal, vdnnBusy)

		gistLocal := core.MustBuild(core.Request{
			Graph: net.G, Encodings: lossyCfg(net.Name),
		}).StepTime(d)
		gistDist := swap.DistributedStepTime(d, net.G, workers, gistLocal, 0)

		ovB := costmodel.Overhead(base, baseDist)
		ovV := costmodel.Overhead(base, vdnnDist)
		ovG := costmodel.Overhead(base, gistDist)
		r.set(net.Name+"/baseline", ovB)
		r.set(net.Name+"/vdnn", ovV)
		r.set(net.Name+"/gist", ovG)
		r.add("%-10s %9.1f%% %7.0f%% %7.1f%%", net.Name, 100*ovB, 100*ovV, 100*ovG)
	}
	r.add("(vDNN's stash traffic owns the link, so the gradient exchange")
	r.add(" serializes behind it; Gist leaves PCIe to the all-reduce)")
	return r
}
