package experiments

// Sweep experiments: how the headline numbers move along the two axes the
// paper's narrative leans on — minibatch size (larger minibatches are
// desirable but memory-bound) and ReLU sparsity (SSDC's effectiveness is
// data dependent, Figure 14's full range).

import (
	"fmt"

	"gist/internal/core"
	"gist/internal/encoding"
	"gist/internal/graph"
	"gist/internal/networks"
	"gist/internal/sparse"
)

// ExtMinibatchSweep plans VGG16 across minibatch sizes: footprints scale
// linearly with the minibatch while Gist's MFR stays flat, so the largest
// fitting minibatch grows by the MFR.
func ExtMinibatchSweep() *Result {
	r := &Result{ID: "mbsweep", Title: "VGG16 footprint vs minibatch size (baseline and Gist)"}
	r.add("%-10s %12s %12s %8s", "minibatch", "baseline", "gist", "MFR")
	cfg := lossyCfg("VGG16")
	for _, mb := range []int{8, 16, 32, 64, 128} {
		g := networks.VGG16(mb)
		base := core.MustBuild(core.Request{Graph: g})
		gist := core.MustBuild(core.Request{Graph: g, Encodings: cfg})
		mfr := gist.MFR(base)
		r.set(nameMB(mb)+"/baseline-gb", gb(base.TotalBytes))
		r.set(nameMB(mb)+"/gist-gb", gb(gist.TotalBytes))
		r.set(nameMB(mb)+"/mfr", mfr)
		r.add("%-10d %9.2f GB %9.2f GB %7.2fx", mb,
			gb(base.TotalBytes), gb(gist.TotalBytes), mfr)
	}
	r.add("(MFR is minibatch independent: Gist's savings scale with the workload)")
	return r
}

func nameMB(mb int) string {
	switch mb {
	case 8:
		return "mb8"
	case 16:
		return "mb16"
	case 32:
		return "mb32"
	case 64:
		return "mb64"
	default:
		return "mb128"
	}
}

// ExtSparsitySweep plans VGG16 under SSDC-only encoding across assumed
// ReLU sparsities, tracing the narrow-CSR effectiveness curve from the
// 20% break-even to the >80% the paper measures on trained VGG16.
func ExtSparsitySweep() *Result {
	r := &Result{ID: "sparsitysweep", Title: "SSDC MFR vs assumed ReLU sparsity (VGG16, investigation baseline)"}
	r.add("%-10s %10s %14s", "sparsity", "SSDC MFR", "stash ratio")
	g := networks.VGG16(DefaultMinibatch)
	base := core.MustBuild(core.Request{Graph: g, InvestigationBaseline: true})
	for _, sp := range []float64{0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9} {
		sp := sp
		cfg := encoding.Config{
			SSDC:         true,
			FCIsConvLike: true,
			Sparsity: func(n *graph.Node) float64 {
				if encoding.DefaultSparsity(n) > 0 {
					return sp
				}
				return 0
			},
		}
		p := core.MustBuild(core.Request{Graph: g, Encodings: cfg, InvestigationBaseline: true})
		mfr := p.MFR(base)
		// Per-stash compression at this sparsity for a large buffer.
		const n = 1 << 20
		stashRatio := float64(int64(n)*4) / float64(sparse.CSRBytesModel(n, sp))
		key := spKey(sp)
		r.set(key+"/mfr", mfr)
		r.set(key+"/stash-ratio", stashRatio)
		r.add("%-10s %9.2fx %13.2fx", fmt.Sprintf("%.0f%%", 100*sp), mfr, stashRatio)
	}
	r.add("(below the 20%% break-even SSDC is skipped entirely — MFR 1.0x; in the")
	r.add(" 30-40%% band the per-stash compression is real but the decoded FP32")
	r.add(" staging can still cost more than it saves; the paper's trained VGG16")
	r.add(" sits in the 80-90%% band where SSDC wins outright)")
	return r
}

func spKey(sp float64) string {
	switch {
	case sp < 0.15:
		return "s10"
	case sp < 0.25:
		return "s20"
	case sp < 0.35:
		return "s30"
	case sp < 0.6:
		return "s50"
	case sp < 0.75:
		return "s70"
	case sp < 0.85:
		return "s80"
	default:
		return "s90"
	}
}
