package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// Differential tests: the popcount-driven gather kernels against the
// retained scalar references, over every length 0..130, lane and chunk
// boundary sizes, column widths from 1 to 256, sparsity extremes, and
// inputs containing the values where "non-zero" is subtle (-0 is zero, NaN
// is not).

func diffSizes() []int {
	sizes := make([]int, 0, 160)
	for n := 0; n <= 130; n++ {
		sizes = append(sizes, n)
	}
	return append(sizes, 191, 192, 193, 255, 256, 257,
		767, 768, 769, 831, 832, 833, 1535, 1536, 1537, 100003)
}

// diffInput mixes zeros and values at the given density, seasoning with
// the predicate corner cases: negative zero (a zero), NaN and denormals
// (non-zeros).
func diffInput(n int, density float64, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	corners := []float32{
		float32(math.Copysign(0, -1)), // zero in disguise
		float32(math.NaN()),
		math.SmallestNonzeroFloat32,
		-math.SmallestNonzeroFloat32,
		float32(math.Inf(1)),
		math.MaxFloat32,
	}
	xs := make([]float32, n)
	for i := range xs {
		if r.Float64() >= density {
			continue
		}
		if r.Intn(8) == 0 {
			xs[i] = corners[r.Intn(len(corners))]
		} else {
			xs[i] = float32(r.NormFloat64())
		}
	}
	return xs
}

func sameCSR(t *testing.T, tag string, got, want *CSR) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols || got.N != want.N {
		t.Fatalf("%s: shape (%d,%d,%d) != (%d,%d,%d)",
			tag, got.Rows, got.Cols, got.N, want.Rows, want.Cols, want.N)
	}
	if len(got.RowPtr) != len(want.RowPtr) || len(got.ColIdx) != len(want.ColIdx) ||
		len(got.Values) != len(want.Values) {
		t.Fatalf("%s: lengths (%d,%d,%d) != (%d,%d,%d)", tag,
			len(got.RowPtr), len(got.ColIdx), len(got.Values),
			len(want.RowPtr), len(want.ColIdx), len(want.Values))
	}
	for r := range got.RowPtr {
		if got.RowPtr[r] != want.RowPtr[r] {
			t.Fatalf("%s: RowPtr[%d] = %d, scalar %d", tag, r, got.RowPtr[r], want.RowPtr[r])
		}
	}
	for k := range got.ColIdx {
		if got.ColIdx[k] != want.ColIdx[k] {
			t.Fatalf("%s: ColIdx[%d] = %d, scalar %d", tag, k, got.ColIdx[k], want.ColIdx[k])
		}
		if math.Float32bits(got.Values[k]) != math.Float32bits(want.Values[k]) {
			t.Fatalf("%s: Values[%d] = %#08x, scalar %#08x", tag, k,
				math.Float32bits(got.Values[k]), math.Float32bits(want.Values[k]))
		}
	}
}

// TestDiffEncodeCSR compares the gather-based encoder with the scalar
// append encoder across sizes, densities and column widths.
func TestDiffEncodeCSR(t *testing.T) {
	densities := []float64{0, 0.1, 0.5, 0.9, 1}
	colsList := []int{1, 3, 64, 65, 100, 256}
	for _, n := range diffSizes() {
		if n > 4096 && testing.Short() {
			continue
		}
		for di, density := range densities {
			xs := diffInput(n, density, int64(n*10+di))
			for _, cols := range colsList {
				if n > 4096 && cols != NarrowCols {
					continue // big sizes only need the production width
				}
				got := EncodeCSRCols(xs, cols)
				want := encodeCSRColsScalar(xs, cols)
				sameCSR(t, "EncodeCSRCols", got, want)
				if err := got.Validate(); err != nil {
					t.Fatalf("n=%d cols=%d: %v", n, cols, err)
				}
			}

			// The pooled in-place encoder, including reuse of dirty arrays
			// from a previous larger encode.
			var c CSR
			EncodeCSRInto(&c, diffInput(n+512, 0.8, 1))
			EncodeCSRInto(&c, xs)
			sameCSR(t, "EncodeCSRInto", &c, encodeCSRColsScalar(xs, NarrowCols))
		}
	}
}

// TestDiffCountFillDecodeRows exercises the chunk-range kernels on disjoint
// row ranges exactly as the parallel builder drives them.
func TestDiffCountFillDecodeRows(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 255, 256, 257, 768, 100003} {
		xs := diffInput(n, 0.5, int64(n)+3)
		want := encodeCSRColsScalar(xs, NarrowCols)
		rows := want.Rows

		for _, nchunks := range []int{1, 2, 3} {
			if rows == 0 && nchunks > 1 {
				continue
			}
			// Counts per chunk of rows.
			counts := make([]int32, rows)
			countsRef := make([]int32, rows)
			per := (rows + nchunks - 1) / max(nchunks, 1)
			for r0 := 0; r0 < rows; r0 += per {
				r1 := min(r0+per, rows)
				CountRowNNZ(xs, NarrowCols, r0, r1, counts[r0:r1])
				countRowNNZScalar(xs, NarrowCols, r0, r1, countsRef[r0:r1])
			}
			for r := range counts {
				if counts[r] != countsRef[r] {
					t.Fatalf("n=%d chunks=%d: counts[%d] = %d, scalar %d",
						n, nchunks, r, counts[r], countsRef[r])
				}
			}

			// Fill into a container shaped by the reference row pointers.
			got := &CSR{Rows: rows, Cols: NarrowCols, N: n,
				RowPtr: want.RowPtr,
				ColIdx: make([]uint8, want.NNZ()),
				Values: make([]float32, want.NNZ())}
			for r0 := 0; r0 < rows; r0 += per {
				got.FillRows(xs, r0, min(r0+per, rows))
			}
			sameCSR(t, "FillRows", got, want)

			// Decode back, word kernel vs scalar scatter, against the input.
			dst := make([]float32, n)
			ref := make([]float32, n)
			for r0 := 0; r0 < rows; r0 += per {
				got.DecodeRows(dst, r0, min(r0+per, rows))
				want.decodeRowsScalar(ref, r0, min(r0+per, rows))
			}
			for i := range dst {
				if math.Float32bits(dst[i]) != math.Float32bits(ref[i]) {
					t.Fatalf("n=%d: decode[%d] = %#08x, scalar %#08x",
						n, i, math.Float32bits(dst[i]), math.Float32bits(ref[i]))
				}
				// -0 encodes as a dropped zero, so decode gives +0; all
				// other values round-trip bitwise.
				wantBits := math.Float32bits(xs[i])
				if wantBits == 0x80000000 {
					wantBits = 0
				}
				if math.Float32bits(dst[i]) != wantBits {
					t.Fatalf("n=%d: round-trip[%d] = %#08x, want %#08x",
						n, i, math.Float32bits(dst[i]), wantBits)
				}
			}
		}
	}
}

// TestDiffNonzeroBitExhaustive checks the branch-free predicate against
// v != 0 for every exponent/sign with boundary mantissas, plus full-random
// patterns.
func TestDiffNonzeroBitExhaustive(t *testing.T) {
	check := func(b uint32) {
		v := math.Float32frombits(b)
		want := uint64(0)
		if v != 0 {
			want = 1
		}
		if got := nonzeroBit(v); got != want {
			t.Fatalf("nonzeroBit(%#08x) = %d, want %d", b, got, want)
		}
	}
	for sign := uint32(0); sign <= 1; sign++ {
		for e := uint32(0); e <= 0xff; e++ {
			for _, man := range []uint32{0, 1, 0x400000, 0x7fffff} {
				check(sign<<31 | e<<23 | man)
			}
		}
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 1_000_000; i++ {
		check(r.Uint32())
	}
}
