package sparse

// Retained scalar reference kernels: the original branchy element-at-a-time
// CSR encode/count/fill/decode loops, kept verbatim as the ground truth of
// the differential tests and the `scalar` legs of the Kernel benchmarks
// that `make bench-gate` compares against. Do not optimize these: their
// value is being obviously correct and frozen.

// encodeCSRColsScalar is the original append-based EncodeCSRCols.
func encodeCSRColsScalar(xs []float32, cols int) *CSR {
	rows := (len(xs) + cols - 1) / cols
	c := &CSR{Rows: rows, Cols: cols, N: len(xs), RowPtr: make([]int32, rows+1)}
	nnz := 0
	for _, v := range xs {
		if v != 0 {
			nnz++
		}
	}
	c.ColIdx = make([]uint8, 0, nnz)
	c.Values = make([]float32, 0, nnz)
	for r := 0; r < rows; r++ {
		base := r * cols
		end := min(base+cols, len(xs))
		for i := base; i < end; i++ {
			if xs[i] != 0 {
				c.ColIdx = append(c.ColIdx, uint8(i-base))
				c.Values = append(c.Values, xs[i])
			}
		}
		c.RowPtr[r+1] = int32(len(c.Values))
	}
	return c
}

// countRowNNZScalar is the original per-element CountRowNNZ.
func countRowNNZScalar(xs []float32, cols, r0, r1 int, counts []int32) {
	for r := r0; r < r1; r++ {
		base := r * cols
		end := min(base+cols, len(xs))
		n := int32(0)
		for i := base; i < end; i++ {
			if xs[i] != 0 {
				n++
			}
		}
		counts[r-r0] = n
	}
}

// fillRowsScalar is the original per-element FillRows.
func (c *CSR) fillRowsScalar(xs []float32, r0, r1 int) {
	for r := r0; r < r1; r++ {
		base := r * c.Cols
		end := min(base+c.Cols, len(xs))
		k := c.RowPtr[r]
		for i := base; i < end; i++ {
			if xs[i] != 0 {
				c.ColIdx[k] = uint8(i - base)
				c.Values[k] = xs[i]
				k++
			}
		}
	}
}

// decodeRowsScalar is the original DecodeRows scatter.
func (c *CSR) decodeRowsScalar(dst []float32, r0, r1 int) {
	lo := r0 * c.Cols
	hi := min(r1*c.Cols, c.N)
	clear(dst[lo:hi])
	for r := r0; r < r1; r++ {
		base := r * c.Cols
		for k := c.RowPtr[r]; k < c.RowPtr[r+1]; k++ {
			dst[base+int(c.ColIdx[k])] = c.Values[k]
		}
	}
}
