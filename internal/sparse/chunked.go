package sparse

import "gist/internal/parallel"

// EncodeCSRChunked builds exactly the CSR that EncodeCSR would — same
// RowPtr, ColIdx and Values, byte for byte — but row-chunk-parallel on the
// pool. Rows are independent under the narrow reshape, so the builder runs
// a count pass (per-row non-zero counts across chunks), a cheap serial
// prefix sum over the row pointers (rows = n/256, tiny next to n), and a
// fill pass in which each chunk writes its precomputed ColIdx/Values
// segment. chunkRows is the number of matrix rows per chunk.
func EncodeCSRChunked(xs []float32, p *parallel.Pool, chunkRows int) *CSR {
	cols := NarrowCols
	rows := (len(xs) + cols - 1) / cols
	if chunkRows <= 0 {
		chunkRows = rows
	}
	nChunks := 0
	if rows > 0 {
		nChunks = (rows + chunkRows - 1) / chunkRows
	}
	if p.Workers() <= 1 || nChunks <= 1 {
		return EncodeCSR(xs)
	}

	c := &CSR{Rows: rows, Cols: cols, N: len(xs), RowPtr: make([]int32, rows+1)}
	p.ForEach(nChunks, func(ci int) {
		r0 := ci * chunkRows
		r1 := min(r0+chunkRows, rows)
		CountRowNNZ(xs, cols, r0, r1, c.RowPtr[r0+1:r1+1])
	})
	for r := 0; r < rows; r++ {
		c.RowPtr[r+1] += c.RowPtr[r]
	}
	nnz := int(c.RowPtr[rows])
	c.ColIdx = make([]uint8, nnz)
	c.Values = make([]float32, nnz)
	p.ForEach(nChunks, func(ci int) {
		r0 := ci * chunkRows
		r1 := min(r0+chunkRows, rows)
		c.FillRows(xs, r0, r1)
	})
	return c
}

// EncodeCSRChunkedInto is the in-place form of EncodeCSRChunked: it builds
// the identical CSR into c, reusing c's backing arrays when capacity
// allows. Same three-pass structure (parallel count, serial prefix sum,
// parallel fill); same serial fallback.
func EncodeCSRChunkedInto(c *CSR, xs []float32, p *parallel.Pool, chunkRows int) {
	cols := NarrowCols
	rows := (len(xs) + cols - 1) / cols
	if chunkRows <= 0 {
		chunkRows = rows
	}
	nChunks := 0
	if rows > 0 {
		nChunks = (rows + chunkRows - 1) / chunkRows
	}
	if p.Workers() <= 1 || nChunks <= 1 {
		EncodeCSRInto(c, xs)
		return
	}

	c.Rows, c.Cols, c.N = rows, cols, len(xs)
	if cap(c.RowPtr) < rows+1 {
		c.RowPtr = make([]int32, rows+1)
	} else {
		c.RowPtr = c.RowPtr[:rows+1]
		c.RowPtr[0] = 0
	}
	p.ForEach(nChunks, func(ci int) {
		r0 := ci * chunkRows
		r1 := min(r0+chunkRows, rows)
		CountRowNNZ(xs, cols, r0, r1, c.RowPtr[r0+1:r1+1])
	})
	for r := 0; r < rows; r++ {
		c.RowPtr[r+1] += c.RowPtr[r]
	}
	nnz := int(c.RowPtr[rows])
	if cap(c.ColIdx) < nnz {
		c.ColIdx = make([]uint8, nnz)
	} else {
		c.ColIdx = c.ColIdx[:nnz]
	}
	if cap(c.Values) < nnz {
		c.Values = make([]float32, nnz)
	} else {
		c.Values = c.Values[:nnz]
	}
	p.ForEach(nChunks, func(ci int) {
		r0 := ci * chunkRows
		r1 := min(r0+chunkRows, rows)
		c.FillRows(xs, r0, r1)
	})
}

// DecodeChunked expands the CSR to dense form like Decode, row-chunk-
// parallel on the pool. dst must have length N; if nil, a new slice is
// allocated. Output is identical to Decode: each chunk zeroes and scatters
// a disjoint dense span.
func (c *CSR) DecodeChunked(dst []float32, p *parallel.Pool, chunkRows int) []float32 {
	if dst == nil {
		dst = make([]float32, c.N)
	}
	if len(dst) != c.N {
		panic("sparse: Decode length mismatch")
	}
	if chunkRows <= 0 {
		chunkRows = c.Rows
	}
	nChunks := 0
	if c.Rows > 0 {
		nChunks = (c.Rows + chunkRows - 1) / chunkRows
	}
	if p.Workers() <= 1 || nChunks <= 1 {
		return c.Decode(dst)
	}
	p.ForEach(nChunks, func(ci int) {
		r0 := ci * chunkRows
		r1 := min(r0+chunkRows, c.Rows)
		c.DecodeRows(dst, r0, r1)
	})
	return dst
}
