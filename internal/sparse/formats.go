package sparse

// ELL is an ELLPACK encoding: every row stores exactly maxRowNNZ entries
// (shorter rows are padded). The paper compared ELL, Hybrid and CSR and
// chose CSR for its lowest format-conversion latency and best
// compression/overhead tradeoff; ELL is kept here for that ablation. Column
// indices use 1 byte (the same narrow reshape as CSR).
type ELL struct {
	Rows, Cols int
	N          int
	RowWidth   int // entries per row, = max row NNZ
	ColIdx     []uint8
	Values     []float32
	used       []int32 // NNZ per row, to skip padding on decode
}

// EncodeELL compresses xs viewed as a NarrowCols-column matrix into ELL.
func EncodeELL(xs []float32) *ELL {
	cols := NarrowCols
	rows := (len(xs) + cols - 1) / cols
	used := make([]int32, rows)
	width := 0
	for r := 0; r < rows; r++ {
		base := r * cols
		end := min(base+cols, len(xs))
		n := 0
		for i := base; i < end; i++ {
			if xs[i] != 0 {
				n++
			}
		}
		used[r] = int32(n)
		if n > width {
			width = n
		}
	}
	e := &ELL{
		Rows: rows, Cols: cols, N: len(xs), RowWidth: width,
		ColIdx: make([]uint8, rows*width),
		Values: make([]float32, rows*width),
		used:   used,
	}
	for r := 0; r < rows; r++ {
		base := r * cols
		end := min(base+cols, len(xs))
		k := r * width
		for i := base; i < end; i++ {
			if xs[i] != 0 {
				e.ColIdx[k] = uint8(i - base)
				e.Values[k] = xs[i]
				k++
			}
		}
	}
	return e
}

// Decode expands the ELL encoding back to dense form.
func (e *ELL) Decode(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, e.N)
	}
	if len(dst) != e.N {
		panic("sparse: Decode length mismatch")
	}
	clear(dst)
	for r := 0; r < e.Rows; r++ {
		base := r * e.Cols
		for k := 0; k < int(e.used[r]); k++ {
			idx := r*e.RowWidth + k
			dst[base+int(e.ColIdx[idx])] = e.Values[idx]
		}
	}
	return dst
}

// Bytes returns the padded storage footprint (values + column indices +
// per-row counts).
func (e *ELL) Bytes() int64 {
	return int64(len(e.Values))*4 + int64(len(e.ColIdx)) + int64(len(e.used))*4
}

// CompressionRatio returns dense FP32 bytes divided by encoded bytes.
func (e *ELL) CompressionRatio() float64 {
	return float64(int64(e.N)*4) / float64(e.Bytes())
}

// COO stores explicit (index, value) pairs with 4-byte flat indices — the
// simplest format and the baseline hybrid schemes fall back to. Its index
// overhead is what the narrow value optimization eliminates.
type COO struct {
	N      int
	Idx    []int32
	Values []float32
}

// EncodeCOO compresses xs into coordinate format.
func EncodeCOO(xs []float32) *COO {
	c := &COO{N: len(xs)}
	for i, v := range xs {
		if v != 0 {
			c.Idx = append(c.Idx, int32(i))
			c.Values = append(c.Values, v)
		}
	}
	return c
}

// Decode expands the COO encoding back to dense form.
func (c *COO) Decode(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, c.N)
	}
	if len(dst) != c.N {
		panic("sparse: Decode length mismatch")
	}
	clear(dst)
	for k, i := range c.Idx {
		dst[i] = c.Values[k]
	}
	return dst
}

// Bytes returns the storage footprint (4-byte indices + 4-byte values).
func (c *COO) Bytes() int64 {
	return int64(len(c.Idx))*4 + int64(len(c.Values))*4
}

// CompressionRatio returns dense FP32 bytes divided by encoded bytes.
func (c *COO) CompressionRatio() float64 {
	return float64(int64(c.N)*4) / float64(c.Bytes())
}
