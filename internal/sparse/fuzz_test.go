package sparse

import (
	"encoding/binary"
	"math"
	"testing"
)

// bytesToFloats reinterprets fuzz bytes as a float32 slice, mapping NaN
// payloads through so round-trip comparison stays well defined.
func bytesToFloats(data []byte) []float32 {
	n := len(data) / 4
	if n > 4096 {
		n = 4096
	}
	xs := make([]float32, n)
	for i := 0; i < n; i++ {
		bits := binary.LittleEndian.Uint32(data[i*4:])
		xs[i] = math.Float32frombits(bits)
	}
	return xs
}

func sameF32(a, b float32) bool {
	return a == b || (a != a && b != b) // NaN-tolerant equality
}

func FuzzCSRRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3, 4})
	f.Add(make([]byte, 1024))
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := bytesToFloats(data)
		c := EncodeCSR(xs)
		got := c.Decode(nil)
		if len(got) != len(xs) {
			t.Fatal("length changed")
		}
		for i := range xs {
			if !sameF32(got[i], xs[i]) {
				t.Fatalf("element %d: %v != %v", i, got[i], xs[i])
			}
		}
		if c.Bytes() < 0 || c.NNZ() > len(xs) {
			t.Fatal("size accounting broken")
		}
	})
}

func FuzzELLAndCOORoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 0, 0, 0, 0, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		xs := bytesToFloats(data)
		gotE := EncodeELL(xs).Decode(nil)
		gotC := EncodeCOO(xs).Decode(nil)
		for i := range xs {
			if !sameF32(gotE[i], xs[i]) || !sameF32(gotC[i], xs[i]) {
				t.Fatalf("element %d mismatch", i)
			}
		}
	})
}
