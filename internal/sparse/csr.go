// Package sparse implements the storage formats behind Gist's SSDC (Sparse
// Storage and Dense Compute) encoding. SSDC stashes a highly sparse ReLU
// output in a compressed sparse format between its forward and backward
// uses and decodes it back to dense FP32 just before the backward-pass
// convolution needs it, so compute stays dense while storage is sparse.
//
// The primary format is CSR with the paper's narrow value optimization: the
// flattened 2-D matrix is reshaped so it has at most 256 columns, which lets
// every column index fit in a single byte instead of the 4 bytes a generic
// cuSPARSE CSR uses. That moves the break-even sparsity for compression from
// 50% down to ~20%. ELL and COO are provided for the format-comparison
// ablation the paper ran before choosing CSR.
package sparse

import "fmt"

// NarrowCols is the column count the narrow value optimization reshapes to:
// the largest width whose column indices fit in one byte.
const NarrowCols = 256

// CSR is a compressed-sparse-row encoding of a dense float32 buffer that was
// reshaped to rows x cols (cols <= 256 under the narrow value optimization).
// RowPtr is the standard "extra meta array which is very small in size";
// ColIdx holds one byte per non-zero.
type CSR struct {
	Rows, Cols int
	N          int // original element count (may be < Rows*Cols in the last row)
	RowPtr     []int32
	ColIdx     []uint8
	Values     []float32
}

// EncodeCSR compresses xs using the narrow value optimization: the buffer is
// viewed as a matrix of NarrowCols columns (the final row may be partial).
func EncodeCSR(xs []float32) *CSR {
	return EncodeCSRCols(xs, NarrowCols)
}

// EncodeCSRCols compresses xs viewed as a matrix with the given column
// count. cols must be in (0, 256] so that column indices fit in one byte.
//
// Word-parallel: a branch-free count pass sizes the arrays exactly, then
// each row gathers its non-zeros through the 64-bit mask kernel
// (gatherRow). Output is identical to encodeCSRColsScalar field for field.
func EncodeCSRCols(xs []float32, cols int) *CSR {
	if cols <= 0 || cols > 256 {
		panic(fmt.Sprintf("sparse: cols %d outside (0,256]", cols))
	}
	rows := (len(xs) + cols - 1) / cols
	c := &CSR{Rows: rows, Cols: cols, N: len(xs), RowPtr: make([]int32, rows+1)}
	nnz := countNonzeros(xs)
	c.ColIdx = make([]uint8, nnz)
	c.Values = make([]float32, nnz)
	k := 0
	for r := 0; r < rows; r++ {
		base := r * cols
		end := min(base+cols, len(xs))
		k = gatherRow(c.ColIdx, c.Values, k, xs, base, end)
		c.RowPtr[r+1] = int32(k)
	}
	return c
}

// EncodeCSRInto builds exactly the CSR EncodeCSR would, in place, reusing
// c's RowPtr/ColIdx/Values backing arrays when their capacity allows — the
// pooled encode path rebuilds each layer's stash into a persistent
// container instead of allocating three arrays per step.
func EncodeCSRInto(c *CSR, xs []float32) {
	cols := NarrowCols
	rows := (len(xs) + cols - 1) / cols
	c.Rows, c.Cols, c.N = rows, cols, len(xs)
	if cap(c.RowPtr) < rows+1 {
		c.RowPtr = make([]int32, rows+1)
	} else {
		c.RowPtr = c.RowPtr[:rows+1]
		c.RowPtr[0] = 0
	}
	nnz := countNonzeros(xs)
	if cap(c.ColIdx) < nnz {
		c.ColIdx = make([]uint8, nnz)
	} else {
		c.ColIdx = c.ColIdx[:nnz]
	}
	if cap(c.Values) < nnz {
		c.Values = make([]float32, nnz)
	} else {
		c.Values = c.Values[:nnz]
	}
	k := 0
	for r := 0; r < rows; r++ {
		base := r * cols
		end := min(base+cols, len(xs))
		k = gatherRow(c.ColIdx, c.Values, k, xs, base, end)
		c.RowPtr[r+1] = int32(k)
	}
}

// NNZ returns the number of stored non-zeros.
func (c *CSR) NNZ() int { return len(c.Values) }

// Validate checks the structural invariants every encoder-produced CSR
// holds: consistent dimensions, a monotone row-pointer array bracketing the
// index/value arrays exactly, and in-range column indices. Decoding a CSR
// that fails Validate would index out of bounds, so the runtime decoder
// (which may be handed a corrupted or deserialized stash) calls this first
// and surfaces a typed error instead of a panic.
func (c *CSR) Validate() error {
	if c.Cols <= 0 || c.Cols > 256 {
		return fmt.Errorf("sparse: cols %d outside (0,256]", c.Cols)
	}
	if c.N < 0 || c.Rows != (c.N+c.Cols-1)/c.Cols {
		return fmt.Errorf("sparse: %d rows of %d cols cannot cover %d elements", c.Rows, c.Cols, c.N)
	}
	if len(c.RowPtr) != c.Rows+1 {
		return fmt.Errorf("sparse: %d row pointers for %d rows", len(c.RowPtr), c.Rows)
	}
	if len(c.ColIdx) != len(c.Values) {
		return fmt.Errorf("sparse: %d column indices vs %d values", len(c.ColIdx), len(c.Values))
	}
	if c.RowPtr[0] != 0 || int(c.RowPtr[c.Rows]) != len(c.Values) {
		return fmt.Errorf("sparse: row pointers span [%d,%d], want [0,%d]",
			c.RowPtr[0], c.RowPtr[c.Rows], len(c.Values))
	}
	for r := 0; r < c.Rows; r++ {
		if c.RowPtr[r] > c.RowPtr[r+1] {
			return fmt.Errorf("sparse: row pointer %d decreases (%d > %d)", r, c.RowPtr[r], c.RowPtr[r+1])
		}
		base, limit := r*c.Cols, c.Cols
		if last := c.N - base; last < limit {
			limit = last // partial final row
		}
		for k := c.RowPtr[r]; k < c.RowPtr[r+1]; k++ {
			if int(c.ColIdx[k]) >= limit {
				return fmt.Errorf("sparse: column index %d in row %d exceeds row width %d",
					c.ColIdx[k], r, limit)
			}
		}
	}
	return nil
}

// CountRowNNZ is the chunk-range count kernel of the parallel CSR builder:
// counts[j] receives the non-zero count of row r0+j of xs viewed as a
// matrix with the given column count. Chunks own disjoint row ranges.
//
// Word-parallel: each row sums the branch-free non-zero predicate
// (countNonzeros); identical counts to countRowNNZScalar.
func CountRowNNZ(xs []float32, cols, r0, r1 int, counts []int32) {
	for r := r0; r < r1; r++ {
		base := r * cols
		end := min(base+cols, len(xs))
		counts[r-r0] = int32(countNonzeros(xs[base:end]))
	}
}

// FillRows is the chunk-range fill kernel of the parallel CSR builder: it
// writes the ColIdx/Values segments of rows [r0, r1), whose destination
// offsets c.RowPtr must already hold (after the builder's prefix sum).
// Chunks own disjoint row ranges and therefore disjoint array segments.
//
// Word-parallel: each row gathers through the 64-bit mask kernel
// (gatherRow); identical output to fillRowsScalar.
func (c *CSR) FillRows(xs []float32, r0, r1 int) {
	for r := r0; r < r1; r++ {
		base := r * c.Cols
		end := min(base+c.Cols, len(xs))
		gatherRow(c.ColIdx, c.Values, int(c.RowPtr[r]), xs, base, end)
	}
}

// DecodeRows is the chunk-range scatter kernel: it zeroes the dense span
// covered by rows [r0, r1) and scatters those rows' non-zeros into it.
// Chunks own disjoint row ranges and therefore disjoint dst spans.
func (c *CSR) DecodeRows(dst []float32, r0, r1 int) {
	lo := r0 * c.Cols
	hi := min(r1*c.Cols, c.N)
	clear(dst[lo:hi])
	for r := r0; r < r1; r++ {
		base := r * c.Cols
		for k := c.RowPtr[r]; k < c.RowPtr[r+1]; k++ {
			dst[base+int(c.ColIdx[k])] = c.Values[k]
		}
	}
}

// Decode expands the CSR back to its dense form. dst must have length N; if
// nil, a new slice is allocated. Decoding is exact: SSDC is lossless.
func (c *CSR) Decode(dst []float32) []float32 {
	if dst == nil {
		dst = make([]float32, c.N)
	}
	if len(dst) != c.N {
		panic("sparse: Decode length mismatch")
	}
	clear(dst)
	for r := 0; r < c.Rows; r++ {
		base := r * c.Cols
		for k := c.RowPtr[r]; k < c.RowPtr[r+1]; k++ {
			dst[base+int(c.ColIdx[k])] = c.Values[k]
		}
	}
	return dst
}

// Bytes returns the storage footprint: 4 bytes per value, 1 byte per column
// index, 4 bytes per row pointer.
func (c *CSR) Bytes() int64 {
	return int64(len(c.Values))*4 + int64(len(c.ColIdx)) + int64(len(c.RowPtr))*4
}

// ValueBytes returns the bytes used by the non-zero value array alone. DPR
// layered over SSDC compresses only this array (the meta arrays affect
// control flow and stay exact).
func (c *CSR) ValueBytes() int64 { return int64(len(c.Values)) * 4 }

// MetaBytes returns the bytes used by the index arrays (ColIdx + RowPtr).
func (c *CSR) MetaBytes() int64 { return c.Bytes() - c.ValueBytes() }

// CompressionRatio returns dense FP32 bytes divided by encoded bytes.
func (c *CSR) CompressionRatio() float64 {
	return float64(int64(c.N)*4) / float64(c.Bytes())
}

// CSRBytesModel predicts the CSR footprint of a buffer with n elements and
// the given zero fraction, under the narrow value optimization. The memory
// planner uses this to size SSDC-encoded stashes without materializing data.
func CSRBytesModel(n int, sparsity float64) int64 {
	if sparsity < 0 {
		sparsity = 0
	}
	if sparsity > 1 {
		sparsity = 1
	}
	nnz := int64(float64(n)*(1-sparsity) + 0.5)
	rows := int64((n + NarrowCols - 1) / NarrowCols)
	return nnz*4 + nnz + (rows+1)*4
}

// CSRWideBytesModel predicts the footprint of a conventional (cuSPARSE-
// style) CSR with 4-byte column indices over an n-element buffer flattened
// to the given column count. Used by the narrow-value ablation: with 4-byte
// indices compression only wins above 50% sparsity.
func CSRWideBytesModel(n, cols int, sparsity float64) int64 {
	if sparsity < 0 {
		sparsity = 0
	}
	if sparsity > 1 {
		sparsity = 1
	}
	nnz := int64(float64(n)*(1-sparsity) + 0.5)
	rows := int64((n + cols - 1) / cols)
	return nnz*4 + nnz*4 + (rows+1)*4
}

// BreakEvenSparsity returns the minimum zero fraction at which the given
// bytes-per-nonzero of index metadata still compresses an n-element FP32
// buffer. For narrow CSR (1 byte/index) this is ~20%; for wide CSR (4
// bytes/index) it is ~50% — the paper's motivation for the optimization.
func BreakEvenSparsity(indexBytesPerNNZ float64) float64 {
	// dense = 4n; encoded ≈ nnz*(4+b) with nnz = (1-s)n.
	// encoded < dense  ⇔  (1-s)(4+b) < 4  ⇔  s > 1 - 4/(4+b).
	return 1 - 4/(4+indexBytesPerNNZ)
}
