package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"gist/internal/tensor"
)

func randomSparseSlice(seed uint64, n int, sparsity float64) []float32 {
	r := tensor.NewRNG(seed)
	xs := make([]float32, n)
	for i := range xs {
		if r.Float64() >= sparsity {
			xs[i] = r.Float32()*2 - 1
			if xs[i] == 0 {
				xs[i] = 0.5
			}
		}
	}
	return xs
}

func TestCSRRoundTripExact(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 257, 1000, 4096} {
		for _, s := range []float64{0, 0.2, 0.5, 0.8, 1} {
			xs := randomSparseSlice(uint64(n*7+int(s*10)+1), n, s)
			c := EncodeCSR(xs)
			got := c.Decode(nil)
			for i := range xs {
				if got[i] != xs[i] {
					t.Fatalf("n=%d s=%v: element %d = %v, want %v", n, s, i, got[i], xs[i])
				}
			}
		}
	}
}

func TestCSRShapeAndNNZ(t *testing.T) {
	xs := make([]float32, 600) // 3 rows of 256 (last partial)
	xs[0], xs[256], xs[599] = 1, 2, 3
	c := EncodeCSR(xs)
	if c.Rows != 3 || c.Cols != 256 {
		t.Fatalf("rows=%d cols=%d", c.Rows, c.Cols)
	}
	if c.NNZ() != 3 {
		t.Fatalf("NNZ = %d", c.NNZ())
	}
	if c.RowPtr[0] != 0 || c.RowPtr[1] != 1 || c.RowPtr[2] != 2 || c.RowPtr[3] != 3 {
		t.Fatalf("RowPtr = %v", c.RowPtr)
	}
	// Element 599 is column 599-2*256 = 87 of row 2.
	if c.ColIdx[2] != 87 {
		t.Fatalf("ColIdx[2] = %d, want 87", c.ColIdx[2])
	}
}

func TestCSRColsBoundsPanic(t *testing.T) {
	for _, cols := range []int{0, -1, 257} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cols=%d should panic", cols)
				}
			}()
			EncodeCSRCols([]float32{1}, cols)
		}()
	}
}

func TestCSRDecodeClearsDst(t *testing.T) {
	xs := []float32{0, 5, 0}
	c := EncodeCSR(xs)
	dst := []float32{9, 9, 9}
	c.Decode(dst)
	if dst[0] != 0 || dst[1] != 5 || dst[2] != 0 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestCSRBytesAccounting(t *testing.T) {
	xs := make([]float32, 512)
	for i := 0; i < 100; i++ {
		xs[i*5] = 1
	}
	c := EncodeCSR(xs)
	wantValues := int64(100 * 4)
	wantMeta := int64(100) + int64(3*4) // 2 rows + 1 rowptr entries
	if c.ValueBytes() != wantValues {
		t.Errorf("ValueBytes = %d, want %d", c.ValueBytes(), wantValues)
	}
	if c.MetaBytes() != wantMeta {
		t.Errorf("MetaBytes = %d, want %d", c.MetaBytes(), wantMeta)
	}
	if c.Bytes() != wantValues+wantMeta {
		t.Errorf("Bytes = %d, want %d", c.Bytes(), wantValues+wantMeta)
	}
}

func TestCSRCompressionAt80PercentSparsity(t *testing.T) {
	// The paper reports >80% sparsity for VGG16 ReLU outputs; narrow CSR
	// then spends 5 bytes per nnz on 0.2n non-zeros ≈ n bytes, vs 4n dense:
	// ~4x compression.
	xs := randomSparseSlice(42, 1<<16, 0.8)
	c := EncodeCSR(xs)
	ratio := c.CompressionRatio()
	if ratio < 3.6 || ratio > 4.2 {
		t.Errorf("compression at 80%% sparsity = %v, want ~4", ratio)
	}
}

func TestCSRBytesModelMatchesEncoder(t *testing.T) {
	for _, s := range []float64{0, 0.25, 0.5, 0.9} {
		n := 1 << 14
		xs := randomSparseSlice(7, n, s)
		c := EncodeCSR(xs)
		model := CSRBytesModel(n, float64(n-c.NNZ())/float64(n))
		if model != c.Bytes() {
			t.Errorf("s=%v: model %d != actual %d", s, model, c.Bytes())
		}
	}
}

func TestCSRBytesModelClamps(t *testing.T) {
	if CSRBytesModel(1000, -0.5) != CSRBytesModel(1000, 0) {
		t.Error("negative sparsity should clamp to 0")
	}
	if CSRBytesModel(1000, 1.5) != CSRBytesModel(1000, 1) {
		t.Error("sparsity > 1 should clamp to 1")
	}
}

func TestBreakEvenSparsity(t *testing.T) {
	// Narrow (1-byte) indices: break-even at 1 - 4/5 = 20%.
	if got := BreakEvenSparsity(1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("narrow break-even = %v, want 0.2", got)
	}
	// Wide (4-byte) indices: break-even at 1 - 4/8 = 50%.
	if got := BreakEvenSparsity(4); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("wide break-even = %v, want 0.5", got)
	}
}

func TestNarrowBeatsWideAt40PercentSparsity(t *testing.T) {
	// At 40% sparsity the narrow format must compress while the wide
	// format must not — the paper's motivating case.
	n := 1 << 16
	dense := int64(n) * 4
	narrow := CSRBytesModel(n, 0.4)
	wide := CSRWideBytesModel(n, 4096, 0.4)
	if narrow >= dense {
		t.Errorf("narrow CSR at 40%% sparsity should compress: %d vs dense %d", narrow, dense)
	}
	if wide < dense {
		t.Errorf("wide CSR at 40%% sparsity should NOT compress: %d vs dense %d", wide, dense)
	}
}

func TestELLRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 0.3, 0.9, 1} {
		xs := randomSparseSlice(99, 1000, s)
		e := EncodeELL(xs)
		got := e.Decode(nil)
		for i := range xs {
			if got[i] != xs[i] {
				t.Fatalf("s=%v: element %d = %v, want %v", s, i, got[i], xs[i])
			}
		}
	}
}

func TestELLPaddingPenalty(t *testing.T) {
	// One dense row among sparse rows forces full-width padding everywhere:
	// ELL must be larger than CSR on this skewed input.
	xs := make([]float32, 256*10)
	for i := 0; i < 256; i++ {
		xs[i] = 1 // row 0 fully dense
	}
	xs[256*5] = 1 // other rows nearly empty
	e := EncodeELL(xs)
	c := EncodeCSR(xs)
	if e.Bytes() <= c.Bytes() {
		t.Errorf("ELL (%d) should be larger than CSR (%d) on skewed rows", e.Bytes(), c.Bytes())
	}
}

func TestCOORoundTrip(t *testing.T) {
	xs := randomSparseSlice(5, 777, 0.6)
	c := EncodeCOO(xs)
	got := c.Decode(nil)
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("element %d = %v, want %v", i, got[i], xs[i])
		}
	}
}

func TestCOOIndexOverhead(t *testing.T) {
	// COO spends 8 bytes per nnz; narrow CSR spends ~5. At 50% sparsity COO
	// breaks even while CSR compresses.
	n := 1 << 14
	xs := randomSparseSlice(11, n, 0.5)
	coo := EncodeCOO(xs)
	csr := EncodeCSR(xs)
	if csr.Bytes() >= coo.Bytes() {
		t.Errorf("narrow CSR (%d) should beat COO (%d)", csr.Bytes(), coo.Bytes())
	}
	if coo.CompressionRatio() > 1.05 {
		t.Errorf("COO at 50%% sparsity should not compress much: %v", coo.CompressionRatio())
	}
}

func TestDecodeLengthMismatchPanics(t *testing.T) {
	xs := []float32{1, 0, 2}
	for name, dec := range map[string]func([]float32) []float32{
		"csr": func(d []float32) []float32 { return EncodeCSR(xs).Decode(d) },
		"ell": func(d []float32) []float32 { return EncodeELL(xs).Decode(d) },
		"coo": func(d []float32) []float32 { return EncodeCOO(xs).Decode(d) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			dec(make([]float32, 5))
		}()
	}
}

func TestPropertyAllFormatsLossless(t *testing.T) {
	f := func(vals []float32, mask []bool) bool {
		n := min(len(vals), len(mask))
		xs := make([]float32, n)
		for i := 0; i < n; i++ {
			if mask[i] {
				xs[i] = vals[i]
			}
		}
		csr := EncodeCSR(xs).Decode(nil)
		ell := EncodeELL(xs).Decode(nil)
		coo := EncodeCOO(xs).Decode(nil)
		for i := range xs {
			same := func(a, b float32) bool {
				return a == b || (math.IsNaN(float64(a)) && math.IsNaN(float64(b)))
			}
			if !same(csr[i], xs[i]) || !same(ell[i], xs[i]) || !same(coo[i], xs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCSRSizeMonotoneInSparsity(t *testing.T) {
	// More zeros can never increase the encoded size.
	f := func(seed uint64) bool {
		n := 2048
		a := randomSparseSlice(seed, n, 0.3)
		b := append([]float32(nil), a...)
		// Zero out half of the non-zeros in b.
		r := tensor.NewRNG(seed + 1)
		for i := range b {
			if b[i] != 0 && r.Float64() < 0.5 {
				b[i] = 0
			}
		}
		return EncodeCSR(b).Bytes() <= EncodeCSR(a).Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
