package sparse

import (
	"math/rand"
	"testing"
)

// Kernel benchmarks: the popcount-driven gather kernels next to their
// retained scalar references, reporting B/s over the dense FP32 side.
// `make bench-gate` parses the word/scalar pairs and fails the build when
// the speedup ratio or absolute throughput drops below the thresholds in
// bench_gate.json.

const benchElems = 1 << 20

func benchInput(density float64, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	xs := make([]float32, benchElems)
	for i := range xs {
		if r.Float64() < density {
			xs[i] = float32(r.NormFloat64())
		}
	}
	return xs
}

func BenchmarkKernelCSREncode(b *testing.B) {
	xs := benchInput(0.5, 1) // ReLU-style ~50% sparsity
	var c CSR
	run := func(b *testing.B, enc func()) {
		b.SetBytes(benchElems * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc()
		}
	}
	b.Run("word", func(b *testing.B) {
		run(b, func() { EncodeCSRInto(&c, xs) })
	})
	b.Run("scalar", func(b *testing.B) {
		run(b, func() { _ = encodeCSRColsScalar(xs, NarrowCols) })
	})
}

func BenchmarkKernelCSRCount(b *testing.B) {
	xs := benchInput(0.5, 2)
	rows := (benchElems + NarrowCols - 1) / NarrowCols
	counts := make([]int32, rows)
	run := func(b *testing.B, count func(xs []float32, cols, r0, r1 int, counts []int32)) {
		b.SetBytes(benchElems * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			count(xs, NarrowCols, 0, rows, counts)
		}
	}
	b.Run("word", func(b *testing.B) { run(b, CountRowNNZ) })
	b.Run("scalar", func(b *testing.B) { run(b, countRowNNZScalar) })
}

func BenchmarkKernelCSRFill(b *testing.B) {
	xs := benchInput(0.5, 3)
	c := EncodeCSR(xs) // row pointers prefilled; fill overwrites in place
	run := func(b *testing.B, fill func(xs []float32, r0, r1 int)) {
		b.SetBytes(benchElems * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fill(xs, 0, c.Rows)
		}
	}
	b.Run("word", func(b *testing.B) { run(b, c.FillRows) })
	b.Run("scalar", func(b *testing.B) { run(b, c.fillRowsScalar) })
}

func BenchmarkKernelCSRDecode(b *testing.B) {
	c := EncodeCSR(benchInput(0.5, 4))
	dst := make([]float32, benchElems)
	run := func(b *testing.B, dec func(dst []float32, r0, r1 int)) {
		b.SetBytes(benchElems * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dec(dst, 0, c.Rows)
		}
	}
	b.Run("word", func(b *testing.B) { run(b, c.DecodeRows) })
	b.Run("scalar", func(b *testing.B) { run(b, c.decodeRowsScalar) })
}
