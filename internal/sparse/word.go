package sparse

import (
	"math"
	"math/bits"
)

// Word-parallel building blocks of the narrow-CSR codec. A 256-column row
// is four 64-element lanes; each lane's non-zero structure is captured as
// one uint64 mask built with a branch-free predicate, and the gather then
// visits only the set bits via trailing-zero iteration — cost proportional
// to nnz instead of one unpredictable branch per element. At ReLU-style
// ~50% sparsity the branchy loops mispredict constantly; the mask build is
// straight-line ALU work and the bit iteration branches only on the loop
// itself.

// nonzeroBit returns 1 when the float32 is non-zero under Go's v != 0 (both
// +0 and -0 are zero; every NaN is non-zero), branch-free: after masking
// the sign, any of the low 31 bits carries into bit 31 when 0x7fffffff is
// added.
func nonzeroBit(v float32) uint64 {
	b := math.Float32bits(v)
	return uint64((b&0x7fffffff + 0x7fffffff) >> 31)
}

// nzWord64 builds the non-zero mask of exactly 64 elements. Four
// independent accumulators keep the per-bit ORs in short dependency
// chains.
func nzWord64(lane []float32) uint64 {
	_ = lane[63]
	var w0, w1, w2, w3 uint64
	for k := 0; k < 64; k += 4 {
		w0 |= nonzeroBit(lane[k]) << uint(k)
		w1 |= nonzeroBit(lane[k+1]) << uint(k+1)
		w2 |= nonzeroBit(lane[k+2]) << uint(k+2)
		w3 |= nonzeroBit(lane[k+3]) << uint(k+3)
	}
	return w0 | w1 | w2 | w3
}

// countNonzeros sums the non-zero predicate over xs, branch-free.
func countNonzeros(xs []float32) int {
	var n uint64
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		s := xs[i : i+4 : i+4]
		n += nonzeroBit(s[0]) + nonzeroBit(s[1]) + nonzeroBit(s[2]) + nonzeroBit(s[3])
	}
	for ; i < len(xs); i++ {
		n += nonzeroBit(xs[i])
	}
	return int(n)
}

// gatherRow appends the (column, value) pairs of the row xs[base:end) at
// ci[k:]/vals[k:] and returns the new fill position. The 64-element interior
// lanes iterate set mask bits with TrailingZeros64; emission order is
// ascending i, identical to the scalar append loop.
func gatherRow(ci []uint8, vals []float32, k int, xs []float32, base, end int) int {
	i := base
	for ; i+64 <= end; i += 64 {
		w := nzWord64(xs[i : i+64 : i+64])
		for ; w != 0; w &= w - 1 {
			j := i + bits.TrailingZeros64(w)
			ci[k] = uint8(j - base)
			vals[k] = xs[j]
			k++
		}
	}
	for ; i < end; i++ {
		if xs[i] != 0 {
			ci[k] = uint8(i - base)
			vals[k] = xs[i]
			k++
		}
	}
	return k
}
