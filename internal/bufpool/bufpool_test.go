package bufpool

import (
	"sync"
	"testing"

	"gist/internal/telemetry"
	"gist/internal/tensor"
)

func TestClassIndexRounding(t *testing.T) {
	cases := []struct{ n, class, cap int }{
		{1, 0, 64}, {63, 0, 64}, {64, 0, 64},
		{65, 1, 128}, {128, 1, 128},
		{129, 2, 256}, {1000, 4, 1024}, {1024, 4, 1024}, {1025, 5, 2048},
	}
	for _, c := range cases {
		if got := classIndex(c.n); got != c.class {
			t.Errorf("classIndex(%d) = %d, want %d", c.n, got, c.class)
		}
		if got := classElems(classIndex(c.n)); got != c.cap {
			t.Errorf("cap for n=%d: %d, want %d", c.n, got, c.cap)
		}
	}
}

func TestGetRecycleReuse(t *testing.T) {
	p := New()
	a := p.Get(4, 8) // 32 elems → class 0
	if got := a.Shape.NumElements(); got != 32 {
		t.Fatalf("len = %d, want 32", got)
	}
	for i := range a.Data {
		a.Data[i] = float32(i + 1)
	}
	p.Recycle(a)

	// Same class, different shape: must reuse the backing array and come
	// back zeroed.
	b := p.Get(50)
	if &b.Data[0] != &a.Data[:1][0] {
		t.Fatal("same-class Get after Recycle did not reuse the buffer")
	}
	if len(b.Data) != 50 {
		t.Fatalf("len = %d, want 50", len(b.Data))
	}
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
		}
	}
	if !b.Shape.Equal(tensor.Shape{50}) {
		t.Fatalf("shape = %v, want [50]", b.Shape)
	}

	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Recycles != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 recycle", st)
	}
}

func TestDistinctClassesDoNotMix(t *testing.T) {
	p := New()
	small := p.Get(64)
	p.Recycle(small)
	big := p.Get(65) // class 1 — must not be served the class-0 buffer
	if len(big.Data) > 0 && len(small.Data) > 0 && &big.Data[0] == &small.Data[0] {
		t.Fatal("Get(65) served a class-0 buffer")
	}
}

func TestDoubleRecyclePanics(t *testing.T) {
	p := New()
	a := p.Get(10)
	p.Recycle(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double recycle did not panic")
		}
	}()
	p.Recycle(a)
}

func TestForeignRecyclePanics(t *testing.T) {
	p := New()
	defer func() {
		if recover() == nil {
			t.Fatal("foreign recycle did not panic")
		}
	}()
	p.Recycle(tensor.New(10))
}

func TestRecycleSliceFindsBuffer(t *testing.T) {
	p := New()
	s := p.GetSlice(100)
	s[0] = 42
	p.RecycleSlice(s[:7]) // resliced views still resolve to their buffer
	if got := p.Stats().Recycles; got != 1 {
		t.Fatalf("recycles = %d, want 1", got)
	}
	s2 := p.GetSlice(100)
	if s2[0] != 0 {
		t.Fatal("reused slice not zeroed")
	}
}

func TestAllocatorInterface(t *testing.T) {
	p := New()
	var a tensor.Allocator = p
	tt := tensor.NewIn(a, 3, 5)
	if tt.Shape.NumElements() != 15 || len(tt.Data) != 15 {
		t.Fatalf("NewIn shape/data mismatch: %v / %d", tt.Shape, len(tt.Data))
	}
	a.Free(tt.Data)
	if got := p.Stats().Recycles; got != 1 {
		t.Fatalf("recycles = %d, want 1", got)
	}
}

func TestPrewarmHitsFirstGet(t *testing.T) {
	p := New()
	p.Prewarm([]int{100, 200, 100})
	base := p.Stats()
	_ = p.Get(90)  // class of 100
	_ = p.Get(150) // class of 200
	st := p.Stats()
	if st.Hits-base.Hits != 2 {
		t.Fatalf("prewarmed gets: %d hits, want 2", st.Hits-base.Hits)
	}
}

func TestTelemetryInstruments(t *testing.T) {
	p := New()
	sink := telemetry.New()
	p.SetTelemetry(sink)
	a := p.Get(100) // class cap 128: miss
	p.Recycle(a)
	b := p.Get(100) // hit
	vals := sink.Values()
	if vals["bufpool.c128.misses"] != 1 {
		t.Errorf("c128 misses = %d, want 1", vals["bufpool.c128.misses"])
	}
	if vals["bufpool.c128.hits"] != 1 {
		t.Errorf("c128 hits = %d, want 1", vals["bufpool.c128.hits"])
	}
	if vals["bufpool.c128.held_bytes"] != 0 {
		t.Errorf("held after re-Get = %d, want 0", vals["bufpool.c128.held_bytes"])
	}
	p.Recycle(b)
	if got := sink.Values()["bufpool.c128.held_bytes"]; got != 128*4 {
		t.Errorf("held after recycle = %d, want %d", got, 128*4)
	}
	if got := p.Stats().InUseBytes; got != 0 {
		t.Errorf("in-use after all recycled = %d, want 0", got)
	}
}

// TestConcurrentHammer drives Get/Recycle from many goroutines; under
// -race this also exercises the poison fill/check paths.
func TestConcurrentHammer(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sizes := []int{30, 70, 130, 1000}
			held := make([]*tensor.Tensor, 0, 4)
			for i := 0; i < 200; i++ {
				n := sizes[(i+g)%len(sizes)]
				tt := p.Get(n)
				for j := range tt.Data {
					tt.Data[j] = float32(g)
				}
				held = append(held, tt)
				if len(held) == cap(held) {
					for _, h := range held {
						p.Recycle(h)
					}
					held = held[:0]
				}
			}
			for _, h := range held {
				p.Recycle(h)
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.InUseBytes != 0 {
		t.Fatalf("in-use bytes after hammer = %d, want 0", st.InUseBytes)
	}
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("gets = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}

func TestSharedPoolSingleton(t *testing.T) {
	if Shared() != Shared() {
		t.Fatal("Shared() is not a singleton")
	}
}
