// Package bufpool provides the size-class, lifetime-aware buffer pool the
// training runtime recycles its working set through. The memory planner
// (internal/liveness, internal/memplan) computes when every activation,
// gradient and decode target dies; this pool is the runtime half of that
// story: instead of allocating a fresh []float32 per tensor per step and
// leaving the garbage collector to discover the liveness the planner already
// knew, the executor returns each buffer at its last use and the next step
// re-serves it from a free list. Steady-state training then runs with a
// fixed working set and a near-zero allocation rate — the property cDMA
// (Rhu et al.) identifies as the difference between compression on paper
// and compression in the allocator.
//
// Buffers are grouped into power-of-two element-count size classes. A Get
// rounds the request up to its class, pops a free buffer (hit) or allocates
// one at full class capacity (miss), and always returns zeroed memory —
// exactly what tensor.New hands out, so pooled and unpooled execution are
// numerically indistinguishable. Recycle returns a buffer to its class.
// Double recycles and recycles of foreign buffers panic; under the race
// detector (internal/race) freed buffers are additionally poisoned and
// checked on reuse, so a use-after-recycle that scribbles on pooled memory
// is caught at the next Get instead of corrupting a training step.
package bufpool

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"gist/internal/race"
	"gist/internal/telemetry"
	"gist/internal/tensor"
)

// minClassElems is the smallest size class. Requests below it share one
// class so tiny tensors (biases, batch-norm vectors) do not fragment the
// free lists.
const minClassElems = 64

// poison is the bit pattern freed buffers are filled with under the race
// detector: a quiet NaN, so any arithmetic on a recycled buffer propagates
// loudly, and a distinctive payload so the Get-side check can tell a
// use-after-recycle write from the pool's own fill.
const poison = math.MaxUint32 & 0x7fc0dead

// classIndex returns the size class of a request of n elements; class c
// holds buffers of capacity minClassElems<<c.
func classIndex(n int) int {
	if n <= minClassElems {
		return 0
	}
	return bits.Len(uint(n-1)) - bits.Len(uint(minClassElems)) + 1
}

// classElems returns the buffer capacity of class c.
func classElems(c int) int { return minClassElems << c }

// class is one size class: a LIFO free list (most recently recycled buffer
// is re-served first, the cache-friendly order) plus its cached instruments.
type class struct {
	free []*tensor.Tensor

	// wired marks the instruments as resolved against the current sink —
	// nil instruments are valid no-ops (sinkless pool), so a nil check
	// cannot double as the cache check.
	wired     bool
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	heldBytes *telemetry.Gauge
}

// Stats is a snapshot of a pool's aggregate counters.
type Stats struct {
	// Hits and Misses count Get calls served from a free list vs. freshly
	// allocated. A steady-state training loop should be ~100% hits.
	Hits, Misses int64
	// Recycles counts buffers returned to the pool.
	Recycles int64
	// HeldBytes is the capacity currently sitting in free lists.
	// InUseBytes is the capacity handed out and not yet recycled.
	HeldBytes, InUseBytes int64
}

// HitRate returns Hits/(Hits+Misses), or 0 before the first Get.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Pool is a size-class free-list buffer pool. It is safe for concurrent use
// by any number of executors; the zero value is NOT usable — call New.
type Pool struct {
	mu      sync.Mutex
	classes []class
	// owned tracks every buffer the pool has ever handed out: true while it
	// sits in a free list, false while a caller holds it. It is both the
	// double-free guard (recycling a buffer already in the pool panics) and
	// the foreign-buffer guard (recycling a tensor the pool never served
	// panics), and it costs one map probe per Get/Recycle with zero
	// steady-state allocation.
	owned map[*tensor.Tensor]bool
	// byBase indexes every pool-served buffer by the address of its backing
	// array's first element, which is stable however the holder reslices
	// Data. RecycleSlice resolves slices through it instead of reading the
	// Tensor fields of checked-out buffers, which their holders mutate
	// without the pool's lock.
	byBase map[*float32]*tensor.Tensor

	hits, misses, recycles atomic.Int64
	heldBytes, inUseBytes  atomic.Int64

	tel atomic.Pointer[telemetry.Sink]
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{
		owned:  map[*tensor.Tensor]bool{},
		byBase: map[*float32]*tensor.Tensor{},
	}
}

// shared is the process-wide pool concurrent trainers recycle through by
// default, mirroring parallel.Shared() for the worker budget.
var sharedPool atomic.Pointer[Pool]

// Shared returns the process-wide pool, creating it on first use. Trainers
// that opt into pooling without providing their own pool share this one, so
// a buffer freed by one executor can serve another.
func Shared() *Pool {
	if p := sharedPool.Load(); p != nil {
		return p
	}
	p := New()
	if sharedPool.CompareAndSwap(nil, p) {
		return p
	}
	return sharedPool.Load()
}

// SetTelemetry wires the pool's per-class hit/miss counters and held-bytes
// gauges (bufpool.c<elems>.{hits,misses,held_bytes}) plus the aggregate
// bufpool.{hits,misses,held_bytes,in_use_bytes} instruments into the sink.
// Passing nil disconnects. Safe to call concurrently with Get/Recycle.
func (p *Pool) SetTelemetry(s *telemetry.Sink) {
	p.tel.Store(s)
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.classes {
		p.classes[c].wired = false // re-resolved lazily against the new sink
		p.classes[c].hits = nil
		p.classes[c].misses = nil
		p.classes[c].heldBytes = nil
	}
}

// instruments returns class c's cached counters, resolving them against the
// current sink on first use. Caller holds p.mu.
func (p *Pool) instruments(c int) *class {
	cl := &p.classes[c]
	if !cl.wired {
		s := p.tel.Load() // nil sink yields valid no-op instruments
		prefix := fmt.Sprintf("bufpool.c%d.", classElems(c))
		cl.hits = s.Counter(prefix + "hits")
		cl.misses = s.Counter(prefix + "misses")
		cl.heldBytes = s.Gauge(prefix + "held_bytes")
		cl.wired = true
	}
	return cl
}

// grow ensures class index c exists. Caller holds p.mu.
func (p *Pool) grow(c int) {
	for len(p.classes) <= c {
		p.classes = append(p.classes, class{})
	}
}

// Get returns a zero-filled pooled tensor of the given shape, reusing a
// recycled buffer of the same size class when one is free. The tensor's
// Data has the exact element count of the shape (capacity may be larger).
// Get never returns a buffer that is still held by another caller.
func (p *Pool) Get(shape ...int) *tensor.Tensor {
	n := tensor.Shape(shape).NumElements()
	c := classIndex(n)
	cap := classElems(c)

	p.mu.Lock()
	p.grow(c)
	cl := p.instruments(c)
	var t *tensor.Tensor
	if k := len(cl.free); k > 0 {
		t = cl.free[k-1]
		cl.free[k-1] = nil
		cl.free = cl.free[:k-1]
		p.owned[t] = false
		cl.hits.Inc()
		cl.heldBytes.Add(int64(-cap) * 4)
		p.hits.Add(1)
		p.heldBytes.Add(int64(-cap) * 4)
	} else {
		cl.misses.Inc()
		p.misses.Add(1)
	}
	p.inUseBytes.Add(int64(cap) * 4)
	p.mu.Unlock()

	if t == nil {
		data := make([]float32, n, cap)
		t = &tensor.Tensor{
			Shape: tensor.Shape(shape).Clone(),
			Data:  data,
		}
		p.mu.Lock()
		p.owned[t] = false
		p.byBase[&data[:cap][0]] = t
		p.mu.Unlock()
		return t
	}
	if race.Enabled {
		checkPoison(t.Data[:cap])
	}
	t.Shape = append(t.Shape[:0], shape...)
	data := t.Data[:cap]
	clear(data[:n])
	t.Data = data[:n]
	return t
}

// Recycle returns a buffer obtained from Get to its free list. It panics on
// a nil tensor, a tensor the pool did not serve, or a second recycle of the
// same buffer — the bugs that silently alias two consumers onto one buffer
// if they go unnoticed.
func (p *Pool) Recycle(t *tensor.Tensor) {
	if t == nil || t.Data == nil {
		panic("bufpool: recycle of nil tensor")
	}
	c := classIndex(len(t.Data))
	cap := classElems(c)

	p.mu.Lock()
	defer p.mu.Unlock()
	inPool, known := p.owned[t]
	if !known {
		panic("bufpool: recycle of a tensor this pool did not serve")
	}
	if inPool {
		panic("bufpool: double recycle")
	}
	t.Data = t.Data[:cap]
	if race.Enabled {
		// Poison while still exclusively held (under the lock), so the
		// buffer never appears in a free list half-filled.
		fillPoison(t.Data)
	}
	p.owned[t] = true
	cl := p.instruments(c)
	cl.free = append(cl.free, t)
	cl.heldBytes.Add(int64(cap) * 4)
	p.recycles.Add(1)
	p.heldBytes.Add(int64(cap) * 4)
	p.inUseBytes.Add(int64(-cap) * 4)
}

// GetSlice returns a zeroed []float32 of length n from the pool — the raw
// form of Get for scratch buffers that never become tensors (the codec's
// quantize scratch). Pair with RecycleSlice.
func (p *Pool) GetSlice(n int) []float32 {
	return p.Get(n).Data
}

// RecycleSlice returns a GetSlice buffer. The slice must be the one Get
// handed out (same backing array), at any length within its class.
func (p *Pool) RecycleSlice(s []float32) {
	var match *tensor.Tensor
	if len(s) > 0 {
		p.mu.Lock()
		match = p.byBase[&s[0]]
		p.mu.Unlock()
	}
	if match == nil {
		panic("bufpool: recycle of a slice this pool did not serve")
	}
	p.Recycle(match)
}

// Alloc implements tensor.Allocator: pooled backing storage for
// tensor.NewIn, so construction sites that take an allocator compose with
// the pool without knowing its concrete type.
func (p *Pool) Alloc(n int) []float32 { return p.GetSlice(n) }

// Free implements tensor.Allocator.
func (p *Pool) Free(s []float32) { p.RecycleSlice(s) }

// Prewarm populates the free lists with one buffer per element count, so a
// training loop whose working set the planner already knows starts at a
// ~100% hit rate instead of missing through its first step. The executor
// feeds it the liveness analysis's buffer sizes.
func (p *Pool) Prewarm(elemCounts []int) {
	for _, n := range elemCounts {
		if n <= 0 {
			continue
		}
		p.Recycle(p.Get(n))
	}
}

// Stats returns a snapshot of the aggregate counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		Recycles:   p.recycles.Load(),
		HeldBytes:  p.heldBytes.Load(),
		InUseBytes: p.inUseBytes.Load(),
	}
}

// fillPoison marks a freed buffer (race builds only).
func fillPoison(s []float32) {
	v := math.Float32frombits(poison)
	for i := range s {
		s[i] = v
	}
}

// checkPoison panics if a freed buffer was written between Recycle and the
// next Get — a use-after-recycle in some consumer (race builds only).
func checkPoison(s []float32) {
	for i := range s {
		if math.Float32bits(s[i]) != poison {
			panic(fmt.Sprintf("bufpool: use after recycle: pooled buffer mutated at element %d while free", i))
		}
	}
}
