package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeNumElements(t *testing.T) {
	cases := []struct {
		shape Shape
		want  int
	}{
		{Shape{}, 1},
		{Shape{7}, 7},
		{Shape{2, 3}, 6},
		{Shape{64, 3, 224, 224}, 64 * 3 * 224 * 224},
	}
	for _, c := range cases {
		if got := c.shape.NumElements(); got != c.want {
			t.Errorf("NumElements(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestShapeBytes(t *testing.T) {
	s := Shape{64, 3, 224, 224}
	want := int64(64*3*224*224) * 4
	if got := s.Bytes(); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
}

func TestShapeEqualAndClone(t *testing.T) {
	s := Shape{1, 2, 3}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone should equal original")
	}
	c[0] = 9
	if s.Equal(c) {
		t.Fatal("mutating clone must not affect original")
	}
	if s.Equal(Shape{1, 2}) {
		t.Fatal("shapes of different rank must not be equal")
	}
}

func TestShapeValid(t *testing.T) {
	if (Shape{}).Valid() {
		t.Error("empty shape should be invalid")
	}
	if (Shape{3, 0}).Valid() {
		t.Error("zero dimension should be invalid")
	}
	if !(Shape{3, 4}).Valid() {
		t.Error("positive shape should be valid")
	}
}

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.NumElements() != 6 {
		t.Fatalf("NumElements = %d", x.NumElements())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromSliceSharesBacking(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetIndexing(t *testing.T) {
	x := New(2, 3, 4, 5)
	x.Set(1, 2, 3, 4, 7.5)
	if got := x.At(1, 2, 3, 4); got != 7.5 {
		t.Fatalf("At = %v", got)
	}
	// NCHW layout: last index is the fastest-varying.
	x.Zero()
	x.Set(0, 0, 0, 1, 1)
	if x.Data[1] != 1 {
		t.Fatal("w must be fastest-varying dimension")
	}
	x.Zero()
	x.Set(0, 0, 1, 0, 1)
	if x.Data[5] != 1 {
		t.Fatal("h stride must be W")
	}
}

func TestReshape(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 5
	if x.Data[0] != 5 {
		t.Fatal("reshape must share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad reshape")
		}
	}()
	x.Reshape(5, 5)
}

func TestCloneIndependence(t *testing.T) {
	x := New(3)
	x.Fill(2)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 2 {
		t.Fatal("clone must be independent")
	}
}

func TestFillScaleAddApply(t *testing.T) {
	x := New(4)
	x.Fill(3)
	x.Scale(2)
	for _, v := range x.Data {
		if v != 6 {
			t.Fatalf("scale: got %v", v)
		}
	}
	y := New(4)
	y.Fill(1)
	x.AddScaled(y, 0.5)
	for _, v := range x.Data {
		if v != 6.5 {
			t.Fatalf("addscaled: got %v", v)
		}
	}
	x.Apply(func(v float32) float32 { return -v })
	for _, v := range x.Data {
		if v != -6.5 {
			t.Fatalf("apply: got %v", v)
		}
	}
	x.Zero()
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("zero failed")
		}
	}
}

func TestAddSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3).Add(New(4))
}

func TestSparsity(t *testing.T) {
	x := FromSlice([]float32{0, 1, 0, 2}, 4)
	if got := x.Sparsity(); got != 0.5 {
		t.Fatalf("Sparsity = %v, want 0.5", got)
	}
	empty := &Tensor{Shape: Shape{}, Data: nil}
	if empty.Sparsity() != 0 {
		t.Fatal("empty tensor sparsity should be 0")
	}
}

func TestMaxAbsAndL2(t *testing.T) {
	x := FromSlice([]float32{3, -4}, 2)
	if got := x.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v", got)
	}
	if got := x.L2(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("L2 = %v, want 5", got)
	}
}

func TestEqualAndAlmostEqual(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := FromSlice([]float32{1, 2.0005}, 2)
	if x.Equal(y) {
		t.Fatal("Equal should be exact")
	}
	if !x.AlmostEqual(y, 1e-3) {
		t.Fatal("AlmostEqual within tolerance")
	}
	if x.AlmostEqual(y, 1e-5) {
		t.Fatal("AlmostEqual outside tolerance")
	}
	if x.AlmostEqual(FromSlice([]float32{1}, 1), 1) {
		t.Fatal("shape mismatch must not be almost-equal")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not produce the degenerate all-zero stream")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 10000; i++ {
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(17); n < 0 || n >= 17 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestFillDistributions(t *testing.T) {
	r := NewRNG(3)
	x := New(10000)
	x.FillUniform(r, -2, 2)
	for _, v := range x.Data {
		if v < -2 || v >= 2 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
	x.FillHe(r, 100)
	var sumSq float64
	for _, v := range x.Data {
		sumSq += float64(v) * float64(v)
	}
	std := math.Sqrt(sumSq / float64(len(x.Data)))
	want := math.Sqrt(2.0 / 100)
	if math.Abs(std-want)/want > 0.1 {
		t.Errorf("He std = %v, want ~%v", std, want)
	}
	x.FillXavier(r, 50, 50)
	limit := math.Sqrt(6.0 / 100)
	for _, v := range x.Data {
		if math.Abs(float64(v)) > limit {
			t.Fatalf("Xavier out of range: %v", v)
		}
	}
}

func TestPropertyShapeCloneEqual(t *testing.T) {
	f := func(dims []uint8) bool {
		s := make(Shape, 0, len(dims)%5+1)
		for i := 0; i <= len(dims)%5 && i < len(dims); i++ {
			s = append(s, int(dims[i])%7+1)
		}
		if len(s) == 0 {
			s = Shape{1}
		}
		return s.Equal(s.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyScaleLinear(t *testing.T) {
	// Property: (x scaled by a) L2 == |a| * (x L2), within float tolerance.
	f := func(vals []float32, a float32) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		for _, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e10 {
				return true
			}
		}
		if math.IsNaN(float64(a)) || math.IsInf(float64(a), 0) || math.Abs(float64(a)) > 1e10 {
			return true
		}
		x := FromSlice(append([]float32(nil), vals...), len(vals))
		before := x.L2()
		x.Scale(a)
		after := x.L2()
		want := math.Abs(float64(a)) * before
		if want == 0 {
			return after == 0
		}
		return math.Abs(after-want)/want < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
