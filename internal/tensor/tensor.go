// Package tensor provides the dense NCHW float32 tensors that all layer
// kernels in this repository operate on. It is deliberately small: a tensor
// is a shape plus a flat []float32, and every operation that the training
// executor needs (fill, map, matmul helpers, deterministic random init) lives
// here so the layer code can stay focused on the math of each operator.
package tensor

import (
	"fmt"
	"math"
)

// Shape describes an n-dimensional tensor extent. DNN feature maps use the
// 4-d NCHW convention (minibatch, channels, height, width); fully connected
// activations use 2-d (minibatch, features).
type Shape []int

// NumElements returns the product of all dimensions. An empty shape has one
// element (a scalar).
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Bytes returns the size of an FP32 tensor of this shape in bytes.
func (s Shape) Bytes() int64 {
	return int64(s.NumElements()) * 4
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// String renders the shape as "[n c h w]".
func (s Shape) String() string {
	return fmt.Sprint([]int(s))
}

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool {
	if len(s) == 0 {
		return false
	}
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// Tensor is a dense FP32 tensor in row-major order (NCHW for 4-d shapes).
type Tensor struct {
	Shape Shape
	Data  []float32
}

// New allocates a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	return &Tensor{Shape: s, Data: make([]float32, s.NumElements())}
}

// Allocator is an optional source of tensor backing storage. The buffer
// pool (internal/bufpool) implements it, so construction sites that accept
// an Allocator compose with pooled memory without importing the pool.
// Alloc must return a zero-filled slice of length n; Free returns a slice
// previously obtained from Alloc.
type Allocator interface {
	Alloc(n int) []float32
	Free(s []float32)
}

// NewIn allocates a zero-filled tensor with backing storage from a. A nil
// allocator falls back to New's plain make — callers can thread an optional
// allocator through without branching.
func NewIn(a Allocator, shape ...int) *Tensor {
	if a == nil {
		return New(shape...)
	}
	s := Shape(shape).Clone()
	return &Tensor{Shape: s, Data: a.Alloc(s.NumElements())}
}

// FromSlice wraps the given backing slice in a tensor of the given shape.
// The slice is used directly, not copied. It panics if the element count
// does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if len(data) != s.NumElements() {
		panic(fmt.Sprintf("tensor: slice of %d elements cannot have shape %v (%d elements)",
			len(data), s, s.NumElements()))
	}
	return &Tensor{Shape: s, Data: data}
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return len(t.Data) }

// Bytes returns the FP32 storage size in bytes.
func (t *Tensor) Bytes() int64 { return int64(len(t.Data)) * 4 }

// Reshape returns a tensor sharing this tensor's data with a new shape of
// the same element count. It panics on a count mismatch.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if s.NumElements() != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, s))
	}
	return &Tensor{Shape: s, Data: t.Data}
}

// At returns the element at the given NCHW coordinates of a 4-d tensor.
func (t *Tensor) At(n, c, h, w int) float32 {
	return t.Data[t.index(n, c, h, w)]
}

// Set stores v at the given NCHW coordinates of a 4-d tensor.
func (t *Tensor) Set(n, c, h, w int, v float32) {
	t.Data[t.index(n, c, h, w)] = v
}

func (t *Tensor) index(n, c, h, w int) int {
	s := t.Shape
	if len(s) != 4 {
		panic(fmt.Sprintf("tensor: 4-d indexing on %v", s))
	}
	return ((n*s[1]+c)*s[2]+h)*s[3] + w
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero resets every element to 0.
func (t *Tensor) Zero() {
	clear(t.Data)
}

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float32) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// AddScaled accumulates a*o into t elementwise. Shapes must have the same
// element count.
func (t *Tensor) AddScaled(o *Tensor, a float32) {
	if len(o.Data) != len(t.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
}

// Add accumulates o into t elementwise.
func (t *Tensor) Add(o *Tensor) { t.AddScaled(o, 1) }

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Sparsity returns the fraction of elements that are exactly zero.
func (t *Tensor) Sparsity() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	zeros := 0
	for _, v := range t.Data {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(t.Data))
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// tensor.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// L2 returns the Euclidean norm of the tensor's elements.
func (t *Tensor) L2() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Equal reports exact elementwise equality of shape and data.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.Shape.Equal(o.Shape) {
		return false
	}
	for i := range t.Data {
		if t.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// AlmostEqual reports whether all elements are within tol of each other.
func (t *Tensor) AlmostEqual(o *Tensor, tol float64) bool {
	if !t.Shape.Equal(o.Shape) {
		return false
	}
	for i := range t.Data {
		if math.Abs(float64(t.Data[i])-float64(o.Data[i])) > tol {
			return false
		}
	}
	return true
}
