package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64*) used
// for weight initialization and synthetic data. Training experiments must be
// reproducible run-to-run, so all randomness in the repository flows through
// explicitly seeded RNG values rather than math/rand global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value. A zero seed is
// remapped to a fixed non-zero constant because xorshift has an all-zero
// fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// State returns the generator's internal state, for snapshotting.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state previously returned by State, rewinding the
// stream exactly — the training recovery loop uses this to replay a failed
// step bit-identically.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			v := r.Float64()
			return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
		}
	}
}

// FillUniform fills t with uniform values in [lo, hi).
func (t *Tensor) FillUniform(r *RNG, lo, hi float32) {
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*r.Float32()
	}
}

// FillNormal fills t with normal values of the given mean and stddev.
func (t *Tensor) FillNormal(r *RNG, mean, stddev float64) {
	for i := range t.Data {
		t.Data[i] = float32(mean + stddev*r.NormFloat64())
	}
}

// FillXavier applies Glorot/Xavier uniform initialization for a layer with
// the given fan-in and fan-out, the standard initialization for the CNNs in
// the paper's application suite.
func (t *Tensor) FillXavier(r *RNG, fanIn, fanOut int) {
	limit := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	t.FillUniform(r, -limit, limit)
}

// FillHe applies He-normal initialization (stddev = sqrt(2/fanIn)), suited
// to ReLU networks such as VGG and ResNet.
func (t *Tensor) FillHe(r *RNG, fanIn int) {
	t.FillNormal(r, 0, math.Sqrt(2/float64(fanIn)))
}
