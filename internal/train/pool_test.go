package train

import (
	"fmt"
	"sync"
	"testing"

	"gist/internal/bufpool"
	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/parallel"
)

// richNet exercises every recycle-sensitive path at once: batch norm and
// dropout (persistent aux reuse), max pooling (argmax nibbles), and a
// residual Add whose two-consumer ReLU forces gradient merging (the
// merged-branch recycle point) and a stash read count above one.
func richNet(mb int) *graph.Graph {
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(mb, 2, 8, 8))
	c1 := g.MustAdd("conv1", layers.NewConv2D(8, 3, 1, 1), in)
	b1 := g.MustAdd("bn1", layers.NewBatchNorm(), c1)
	r1 := g.MustAdd("relu1", layers.NewReLU(), b1)
	c2 := g.MustAdd("conv2", layers.NewConv2D(8, 3, 1, 1), r1)
	r2 := g.MustAdd("relu2", layers.NewReLU(), c2)
	add := g.MustAdd("add", layers.NewAdd(), r1, r2)
	p1 := g.MustAdd("pool1", layers.NewMaxPool(2, 2, 0), add)
	fc1 := g.MustAdd("fc1", layers.NewFC(16), p1)
	r3 := g.MustAdd("relu3", layers.NewReLU(), fc1)
	dr := g.MustAdd("drop", layers.NewDropout(0.4), r3)
	fc2 := g.MustAdd("fc2", layers.NewFC(4), dr)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc2)
	return g
}

// stepResult is one step's observable outcome, compared bit-for-bit
// between pooled and unpooled runs.
type stepResult struct {
	loss       float64
	errs       int
	stashBytes int64
}

// runParity trains a fresh executor and returns its per-step results plus
// the executor for parameter comparison.
func runParity(t *testing.T, net func(int) *graph.Graph, mkOpts func(*graph.Graph) Options, pool *bufpool.Pool, steps, mb int) ([]stepResult, *Executor) {
	t.Helper()
	g := net(mb)
	opts := mkOpts(g)
	opts.Pool = pool
	e := NewExecutor(g, opts)
	d := NewDataset(4, 2, 8, 0.3, 34)
	var res []stepResult
	for i := 0; i < steps; i++ {
		x, l := d.Batch(mb)
		loss, errs := e.Step(x, l, 0.05)
		res = append(res, stepResult{loss, errs, e.StashBytes})
	}
	return res, e
}

// TestPooledMatchesUnpooled is the tentpole's correctness property: for
// every network shape, precision scheme and codec worker count, training
// through the buffer pool is byte-identical to allocate-always execution —
// same loss at every step, same error counts, same stashed-byte
// accounting, and bit-identical final parameters.
func TestPooledMatchesUnpooled(t *testing.T) {
	const steps, mb = 6, 8
	nets := []struct {
		name string
		net  func(int) *graph.Graph
	}{
		{"smallNet", smallNet},
		{"bnNet", bnNet},
		{"richNet", richNet},
	}
	schemes := []struct {
		name    string
		workers []int
		mk      func(*graph.Graph) Options
	}{
		{"baseline-fp32", []int{1}, func(g *graph.Graph) Options {
			return Options{Seed: 33}
		}},
		{"dpr-fp16", []int{1}, func(g *graph.Graph) Options {
			return Options{Seed: 33, Mode: DelayedReduced, Format: floatenc.FP16}
		}},
		{"encoded-lossless", []int{1, 2, 4}, func(g *graph.Graph) Options {
			return Options{Seed: 33, Encodings: encoding.Analyze(g, encoding.Lossless()), Integrity: true}
		}},
		{"encoded-lossy", []int{1, 2, 4}, func(g *graph.Graph) Options {
			return Options{Seed: 33, Encodings: encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))}
		}},
	}
	t.Cleanup(func() { encoding.SetDefaultCodec(encoding.Codec{}) })
	for _, n := range nets {
		for _, s := range schemes {
			for _, w := range s.workers {
				t.Run(fmt.Sprintf("%s/%s/w%d", n.name, s.name, w), func(t *testing.T) {
					// Small chunks so feature maps really split across workers.
					encoding.SetDefaultCodec(encoding.Codec{Pool: parallel.NewPool(w), ChunkElems: 768})
					ref, refExec := runParity(t, n.net, s.mk, nil, steps, mb)
					pool := bufpool.New()
					got, gotExec := runParity(t, n.net, s.mk, pool, steps, mb)
					for i := range ref {
						if got[i] != ref[i] {
							t.Fatalf("step %d: pooled %+v, unpooled %+v", i, got[i], ref[i])
						}
					}
					for _, node := range refExec.G.Nodes {
						ps, qs := refExec.params[node.ID], gotExec.params[node.ID]
						for j := range ps {
							if !ps[j].Equal(qs[j]) {
								t.Fatalf("%s param %d diverged between pooled and unpooled", node.Name, j)
							}
						}
					}
					if st := pool.Stats(); st.Hits == 0 {
						t.Fatal("pooled run never reused a buffer")
					}
				})
			}
		}
	}
}

// TestPooledSteadyStateStopsAllocating pins the pool's whole reason to
// exist: once the working set is resident (a few steps in), further steps
// are served entirely from free lists — the miss counter stops moving.
func TestPooledSteadyStateStopsAllocating(t *testing.T) {
	const mb = 8
	encoding.SetDefaultCodec(encoding.Codec{ChunkElems: 768})
	t.Cleanup(func() { encoding.SetDefaultCodec(encoding.Codec{}) })
	g := richNet(mb)
	pool := bufpool.New()
	e := NewExecutor(g, Options{
		Seed:      33,
		Encodings: encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16)),
		Integrity: true,
		Pool:      pool,
	})
	d := NewDataset(4, 2, 8, 0.3, 34)
	var missesAfterWarmup int64
	for i := 0; i < 10; i++ {
		x, l := d.Batch(mb)
		e.Step(x, l, 0.05)
		if i == 3 {
			missesAfterWarmup = pool.Stats().Misses
		}
	}
	st := pool.Stats()
	if st.Misses != missesAfterWarmup {
		t.Fatalf("pool still missing after warmup: %d misses at step 4, %d at step 10", missesAfterWarmup, st.Misses)
	}
	if hr := st.HitRate(); hr < 0.5 {
		t.Fatalf("steady-state hit rate %.2f, want > 0.5", hr)
	}
}

// TestPooledFaultInjectionParity extends the byte-identity property to the
// failure paths: with deterministic fault injection active, the pooled
// executor sees the same injected failures, detects the same corruptions,
// and leaves the same parameters as the unpooled one.
func TestPooledFaultInjectionParity(t *testing.T) {
	const steps, mb = 12, 8
	encoding.SetDefaultCodec(encoding.Codec{ChunkElems: 768})
	t.Cleanup(func() { encoding.SetDefaultCodec(encoding.Codec{}) })

	run := func(pool *bufpool.Pool) (results []string, robust RobustnessStats, e *Executor) {
		g := richNet(mb)
		inj := faults.New(faults.Config{
			Seed:           7,
			BitFlipRate:    0.2,
			EncodeFailRate: 0.1,
			DecodeFailRate: 0.1,
		})
		e = NewExecutor(g, Options{
			Seed:      33,
			Encodings: encoding.Analyze(g, encoding.Lossless()),
			Faults:    inj,
			Pool:      pool,
		})
		d := NewDataset(4, 2, 8, 0.3, 34)
		for i := 0; i < steps; i++ {
			inj.BeginStep(i + 1)
			x, l := d.Batch(mb)
			loss, errs, err := e.TryStep(x, l, 0.05)
			results = append(results, fmt.Sprintf("loss=%x errs=%d err=%v", loss, errs, err))
		}
		return results, e.Robust, e
	}

	ref, refRobust, refExec := run(nil)
	got, gotRobust, gotExec := run(bufpool.New())
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("step %d under faults: pooled %s, unpooled %s", i, got[i], ref[i])
		}
	}
	if gotRobust != refRobust {
		t.Fatalf("robustness counters diverged: pooled %+v, unpooled %+v", gotRobust, refRobust)
	}
	for _, n := range refExec.G.Nodes {
		ps, qs := refExec.params[n.ID], gotExec.params[n.ID]
		for j := range ps {
			if !ps[j].Equal(qs[j]) {
				t.Fatalf("%s param %d diverged under fault injection", n.Name, j)
			}
		}
	}
}

// TestConcurrentPooledExecutorsShareOnePool trains several pooled
// executors at once against one buffer pool and the shared worker pool —
// the -race workload for the pool's ledger, the poisoning, and the pooled
// async-decode ownership transfer — and checks same-seed replicas stay
// bit-identical while recycling through the same free lists.
func TestConcurrentPooledExecutorsShareOnePool(t *testing.T) {
	parallel.SetSharedWorkers(4)
	t.Cleanup(func() { parallel.SetSharedWorkers(0) })
	withCodec(t, encoding.Codec{ChunkElems: 768}) // nil Pool → shared workers

	const replicas, steps, mb = 4, 4, 8
	shared := bufpool.New()
	execs := make([]*Executor, replicas)
	var wg sync.WaitGroup
	errs := make(chan error, replicas)
	for r := 0; r < replicas; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			g := richNet(mb)
			a := encoding.Analyze(g, encoding.Lossless())
			e := NewExecutor(g, Options{Seed: 55, Encodings: a, Integrity: true, Pool: shared})
			d := NewDataset(4, 2, 8, 0.3, 56)
			for i := 0; i < steps; i++ {
				x, l := d.Batch(mb)
				if _, _, err := e.TryStep(x, l, 0.05); err != nil {
					errs <- fmt.Errorf("replica %d step %d: %w", r, i, err)
					return
				}
			}
			execs[r] = e
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for r := 1; r < replicas; r++ {
		for _, n := range execs[0].G.Nodes {
			ps, qs := execs[0].params[n.ID], execs[r].params[n.ID]
			for j := range ps {
				if !ps[j].Equal(qs[j]) {
					t.Fatalf("replica %d: %s param %d diverged from replica 0", r, n.Name, j)
				}
			}
		}
	}
	if st := shared.Stats(); st.Hits == 0 {
		t.Fatal("shared pool never reused a buffer across executors")
	}
}
