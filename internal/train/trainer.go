package train

// Trainer drives repeated minibatch steps and records the accuracy-loss
// trajectory the paper plots in Figure 12 and the per-layer sparsity series
// of Figure 14.

import (
	"context"
	"fmt"
	"io"

	"gist/internal/graph"
	"gist/internal/telemetry"
	"gist/internal/tensor"
)

// Stepper is what Run needs from a training engine: one optimizer step per
// minibatch plus the probe hooks. Both a single Executor and a
// data-parallel ReplicaGroup satisfy it, so the same training loop drives
// either. TryStep is the fallible form Step wraps: it surfaces
// stash-pipeline failures and context cancellation as errors instead of
// panicking, and RunContext drives engines through it.
type Stepper interface {
	Step(x *tensor.Tensor, labels []int, lr float32) (loss float64, errors int)
	TryStep(x *tensor.Tensor, labels []int, lr float32) (loss float64, errors int, err error)
	SetSparsityProbe(on bool)
	ReLUSparsities() map[string]float64
	Telemetry() *telemetry.Sink
}

// contextual is the optional engine surface RunContext binds a context
// through; both Executor and ReplicaGroup implement it.
type contextual interface {
	SetContext(ctx context.Context)
}

// resumable is the optional engine surface RunContext resumes through:
// after a v3 checkpoint load, ResumeStep reports the completed-step count
// and the loop continues from the next step, keeping the engine's counter
// aligned so RNG streams replay exactly. Both Executor and ReplicaGroup
// implement it.
type resumable interface {
	ResumeStep() int
	SetResumeStep(n int)
}

// Record is one probe point of a training run.
type Record struct {
	Minibatch int
	Loss      float64
	// AccuracyLoss is the paper's y-axis: 1 - training accuracy, measured
	// over the probe window.
	AccuracyLoss float64
	// ReLUSparsity holds per-ReLU zero fractions at this probe (only when
	// sparsity probing is enabled).
	ReLUSparsity map[string]float64
}

// RunConfig configures a training run.
type RunConfig struct {
	Minibatch int
	Steps     int
	LR        float32
	// ProbeEvery controls how often a Record is emitted (in steps).
	ProbeEvery int
	// ProbeSparsity records ReLU sparsities at each probe.
	ProbeSparsity bool
	// Seed controls the data stream (weights are seeded by the executor).
	DataSeed uint64
	// MetricsEvery, when positive and the executor carries a telemetry
	// sink, writes a text snapshot to MetricsOut every N steps — a live
	// view of a long run without waiting for the final dump.
	MetricsEvery int
	MetricsOut   io.Writer
	// OnStep, when non-nil, is called after every completed step with the
	// 1-based step number and its minibatch loss. Job servers use it for
	// liveness/progress tracking (the watchdog's heartbeat); it runs on
	// the training goroutine, so it must be fast and must not call back
	// into the engine.
	OnStep func(step int, loss float64)
}

// maybeSnapshot writes the engine's telemetry snapshot when the config's
// periodic dump is due at this step.
func maybeSnapshot(e Stepper, cfg RunConfig, step int) {
	if cfg.MetricsEvery > 0 && cfg.MetricsOut != nil && step%cfg.MetricsEvery == 0 {
		if tel := e.Telemetry(); tel != nil {
			_ = tel.WriteSnapshot(cfg.MetricsOut)
		}
	}
}

// Run trains the engine's graph on the dataset and returns the probe
// records. The accuracy-loss at each probe is the error rate accumulated
// since the previous probe, matching how the paper tracks training
// accuracy over time. For a ReplicaGroup, cfg.Minibatch must equal its
// GroupBatch. Run is RunContext with the background context; it panics on
// stash-pipeline failures exactly as Step does.
func Run(e Stepper, d *Dataset, cfg RunConfig) []Record {
	records, err := RunContext(context.Background(), e, d, cfg)
	if err != nil {
		panic(fmt.Sprintf("train: Run under fault injection must use RunContext: %v", err))
	}
	return records
}

// RunContext trains like Run under a context: the loop checks ctx before
// every step and the bound engine (Executor or ReplicaGroup) additionally
// polls it at phase boundaries inside the step, so a cancelled or expired
// context stops the run within one step's latency. The records accumulated
// so far are always returned; err is nil on a completed run, wraps the
// context error on cancellation/deadline (errors.Is-matchable), and wraps
// the engine's error on a stash-pipeline failure.
func RunContext(ctx context.Context, e Stepper, d *Dataset, cfg RunConfig) ([]Record, error) {
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 10
	}
	if cfg.ProbeSparsity {
		// Under pooling, ReLU outputs recycle mid-step; arm the in-step
		// capture so ReLUSparsities has values to report.
		e.SetSparsityProbe(true)
	}
	if c, ok := e.(contextual); ok {
		c.SetContext(ctx)
		defer c.SetContext(nil)
	}
	start := 0
	rs, canResume := e.(resumable)
	if canResume {
		start = rs.ResumeStep()
		rs.SetResumeStep(start)
	}
	var records []Record
	windowErrs, windowN := 0, 0
	var lastLoss float64
	for step := start + 1; step <= cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return records, fmt.Errorf("train: run stopped before step %d: %w", step, err)
		}
		x, labels := d.Batch(cfg.Minibatch)
		loss, errs, err := e.TryStep(x, labels, cfg.LR)
		if err != nil {
			return records, fmt.Errorf("train: run stopped at step %d: %w", step, err)
		}
		if canResume {
			rs.SetResumeStep(step)
		}
		windowErrs += errs
		windowN += cfg.Minibatch
		lastLoss = loss
		if step%cfg.ProbeEvery == 0 {
			rec := Record{
				Minibatch:    step,
				Loss:         lastLoss,
				AccuracyLoss: float64(windowErrs) / float64(windowN),
			}
			if cfg.ProbeSparsity {
				rec.ReLUSparsity = e.ReLUSparsities()
			}
			records = append(records, rec)
			windowErrs, windowN = 0, 0
		}
		if cfg.OnStep != nil {
			cfg.OnStep(step, loss)
		}
		maybeSnapshot(e, cfg, step)
	}
	return records, nil
}

// FinalAccuracyLoss returns the accuracy loss of the last probe window, or
// 1 (untrained) when there are no records.
func FinalAccuracyLoss(records []Record) float64 {
	if len(records) == 0 {
		return 1
	}
	return records[len(records)-1].AccuracyLoss
}

// Diverged reports whether a run failed to train: its final accuracy loss
// is no better than chance for the given class count, or its loss became
// non-finite.
func Diverged(records []Record, classes int) bool {
	if len(records) == 0 {
		return true
	}
	last := records[len(records)-1]
	chance := 1 - 1/float64(classes)
	if last.AccuracyLoss >= chance*0.95 {
		return true
	}
	return last.Loss != last.Loss // NaN
}

// MeasuredSparsity converts a training run's final sparsity probe into a
// planning-time sparsity model for the encoding analysis, letting the
// full-scale memory planner use sparsities measured on the scaled run.
func MeasuredSparsity(rec Record) func(n *graph.Node) float64 {
	return func(n *graph.Node) float64 {
		if s, ok := rec.ReLUSparsity[n.Name]; ok {
			return s
		}
		return 0
	}
}

// AverageSparsity returns the mean ReLU sparsity of a record, or 0.
func AverageSparsity(rec Record) float64 {
	if len(rec.ReLUSparsity) == 0 {
		return 0
	}
	var sum float64
	for _, s := range rec.ReLUSparsity {
		sum += s
	}
	return sum / float64(len(rec.ReLUSparsity))
}

// Ones is a convenience constructor for an all-ones input of the given
// shape, used by examples and micro-benchmarks.
func Ones(shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	t.Fill(1)
	return t
}
