package train

// The spill determinism wall: training through the tiered stash store must
// be bit-identical to the all-in-RAM run at every hot-tier budget, worker
// count and replica count, for plain, lossy-encoded and adaptive stash
// configurations. Placement (evict/prefetch order) is a pure function of
// the liveness analysis and the GSTP round trip is exact, so the budget can
// only change WHERE a stash waits out the forward→backward gap — never the
// bytes that come back.

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gist/internal/bufpool"
	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/networks"
	"gist/internal/parallel"
	"gist/internal/race"
	"gist/internal/stashstore"
)

// spillTechniques names the stash configurations the matrix covers; nil
// cfg is the plain-FP32 run (the store dense-packs those stashes itself).
func spillTechniques() []struct {
	name string
	cfg  func(g *graph.Graph) *encoding.Analysis
} {
	return []struct {
		name string
		cfg  func(g *graph.Graph) *encoding.Analysis
	}{
		{"plain", func(g *graph.Graph) *encoding.Analysis { return nil }},
		{"fp16", func(g *graph.Graph) *encoding.Analysis {
			return encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))
		}},
		{"adaptive", func(g *graph.Graph) *encoding.Analysis {
			cfg := encoding.Lossless()
			cfg.AdaptiveSet = encoding.AdaptiveAll()
			return encoding.Analyze(g, cfg)
		}},
	}
}

// trainSpill trains a replica group through the tiered store and returns
// the final parameters, the per-step losses (both objects of the
// bit-identity claim), and the summed store stats.
func trainSpill(t *testing.T, build func(mb, classes int) *graph.Graph,
	shardBatch, shards, replicas, workers, steps int,
	cfg func(g *graph.Graph) *encoding.Analysis, budget int64,
	spillDir string) ([]float32, []float64, stashstore.Stats) {
	t.Helper()
	const classes = 4
	g := build(shardBatch, classes)
	opts := Options{Seed: 42, Pool: bufpool.New(), StashBudget: budget, SpillDir: spillDir}
	var codecPool *parallel.Pool
	if workers > 1 {
		codecPool = parallel.NewPool(workers)
	}
	opts.Codec = &encoding.Codec{Pool: codecPool}
	opts.Encodings = cfg(g)
	rg := NewReplicaGroup(g, opts, ReplicaConfig{Replicas: replicas, Shards: shards})
	defer rg.Close()

	in := g.InputNodes()[0].OutShape
	d := NewDataset(classes, in[1], in[2], 0.3, 7)
	losses := make([]float64, 0, steps)
	for step := 0; step < steps; step++ {
		x, labels := d.Batch(rg.GroupBatch())
		loss, _ := rg.Step(x, labels, 0.05)
		losses = append(losses, loss)
	}
	var st stashstore.Stats
	for _, e := range rg.Executors() {
		if store := e.StashStore(); store != nil {
			st.Accumulate(store.Stats())
		}
	}
	return flatParams(rg.Executor()), losses, st
}

func lossesBitsEqual(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d steps, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: step %d loss = %x (%g), want %x (%g)", label, i,
				math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

// TestSpillDeterminism is the headline property: {unlimited RAM, 50% and
// 10% hot-tier budgets} × {1, 4 codec workers} × {1, 2 replicas} all train
// TinyCNN to bit-identical final weights and per-step losses, for each
// stash technique family.
func TestSpillDeterminism(t *testing.T) {
	if race.Enabled {
		t.Skip("bit-exactness matrix; the concurrency it exercises is covered by TestConcurrentFetchHammer under race-hot")
	}
	const shards, shardBatch = 2, 2
	steps := 50
	if testing.Short() {
		steps = 20
	}
	dir := t.TempDir()
	for _, tech := range spillTechniques() {
		t.Run(tech.name, func(t *testing.T) {
			// Reference: no store at all — today's in-RAM path, untouched.
			ref, refLosses, _ := trainSpill(t, networks.TinyCNN,
				shardBatch, shards, 1, 1, steps, tech.cfg, 0, dir)
			if last := refLosses[len(refLosses)-1]; last != last || last > 10 {
				t.Fatalf("reference run diverged: loss %g", last)
			}
			// Probe: store armed but effectively unlimited — measures the
			// peak stash bytes the budgets below are fractions of, and is
			// itself the matrix's "unlimited" arm.
			got, losses, probe := trainSpill(t, networks.TinyCNN,
				shardBatch, shards, 1, 1, steps, tech.cfg, 1<<40, dir)
			paramsBitsEqual(t, got, ref, tech.name+"/unlimited")
			lossesBitsEqual(t, losses, refLosses, tech.name+"/unlimited")
			if probe.Evictions != 0 {
				t.Fatalf("unlimited-budget run spilled %d stashes", probe.Evictions)
			}
			peak := probe.HotPeakBytes
			if peak <= 0 {
				t.Fatalf("probe measured no stash bytes (stats %+v)", probe)
			}
			budgets := []int64{peak / 2, peak / 10}
			if testing.Short() {
				budgets = budgets[1:]
			}
			for _, budget := range budgets {
				if budget < 1 {
					budget = 1
				}
				for _, workers := range []int{1, 4} {
					for _, replicas := range []int{1, 2} {
						got, losses, st := trainSpill(t, networks.TinyCNN,
							shardBatch, shards, replicas, workers, steps, tech.cfg, budget, dir)
						label := tech.name + "/budgeted"
						paramsBitsEqual(t, got, ref, label)
						lossesBitsEqual(t, losses, refLosses, label)
						if st.Evictions == 0 {
							t.Fatalf("%s: budget %d never spilled — not exercising the cold tier", label, budget)
						}
						// Summed per-replica peaks bound simultaneous
						// residency, and each store got budget/replicas.
						if st.HotPeakBytes > budget {
							t.Fatalf("%s: hot peak %d exceeded budget %d", label, st.HotPeakBytes, budget)
						}
					}
				}
			}
		})
	}
	// No spill files survive the groups' Close.
	leaked, err := filepath.Glob(filepath.Join(dir, "gist-spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leaked) != 0 {
		t.Fatalf("leaked spill files: %v", leaked)
	}
}

// TestSpillDeterminismTinyVGG repeats the property's interesting corners on
// the deeper network: 10% budget, 4 workers, 1 and 2 replicas, fp16.
func TestSpillDeterminismTinyVGG(t *testing.T) {
	if testing.Short() || race.Enabled {
		t.Skip("TinyVGG spill matrix is slow")
	}
	const shards, shardBatch, steps = 2, 1, 50
	dir := t.TempDir()
	fp16 := spillTechniques()[1]
	ref, refLosses, _ := trainSpill(t, networks.TinyVGG,
		shardBatch, shards, 1, 1, steps, fp16.cfg, 0, dir)
	_, _, probe := trainSpill(t, networks.TinyVGG,
		shardBatch, shards, 1, 1, steps, fp16.cfg, 1<<40, dir)
	budget := probe.HotPeakBytes / 10
	for _, replicas := range []int{1, 2} {
		got, losses, st := trainSpill(t, networks.TinyVGG,
			shardBatch, shards, replicas, 4, steps, fp16.cfg, budget, dir)
		paramsBitsEqual(t, got, ref, "tinyvgg")
		lossesBitsEqual(t, losses, refLosses, "tinyvgg")
		if st.Evictions == 0 {
			t.Fatal("tinyvgg: 10% budget never spilled")
		}
	}
}

// TestSpillFaultRecovery drives a budgeted run through injected spill-write
// failures (the ENOSPC transient) and spill-page corruption/short reads,
// and cross-checks the recovery report against the injector's own log:
// every injected spill fault must be detected, attributed and retried, and
// the final weights must match the fault-free budgeted run bit for bit.
func TestSpillFaultRecovery(t *testing.T) {
	const mb, classes, steps = 8, 4, 30
	dir := t.TempDir()

	run := func(inj *faults.Injector) ([]float32, *RecoveryReport) {
		g := networks.TinyCNN(mb, classes)
		a := encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))
		opts := Options{Seed: 42, Encodings: a, StashBudget: 1, SpillDir: dir}
		if inj != nil {
			opts.Faults = inj
			opts.Integrity = true
		}
		e := NewExecutor(g, opts)
		defer e.ReleaseBuffers()
		d := NewDataset(classes, 3, 16, 0.3, 7)
		_, report, err := RunRecoverable(context.Background(), e, d,
			RunConfig{Minibatch: mb, Steps: steps, LR: 0.05},
			RecoveryConfig{MaxRetries: 100})
		if err != nil {
			t.Fatalf("recoverable run failed: %v", err)
		}
		return flatParams(e), report
	}

	ref, _ := run(nil)
	inj := faults.New(faults.Config{
		Seed:                 11,
		SpillWriteFailRate:   0.01,
		SpillReadCorruptRate: 0.01,
		SpillShortReadRate:   0.01,
	})
	got, report := run(inj)

	counts := inj.Counts()
	wantWrite := int64(counts[faults.SpillWriteFail])
	wantRead := int64(counts[faults.SpillReadCorrupt] + counts[faults.SpillShortRead])
	if wantWrite+wantRead == 0 {
		t.Fatal("injector fired no spill faults — rates too low for this run")
	}
	if report.Robust.SpillWriteFailures != wantWrite {
		t.Errorf("SpillWriteFailures = %d, injector log says %d",
			report.Robust.SpillWriteFailures, wantWrite)
	}
	if report.Robust.SpillReadFailures != wantRead {
		t.Errorf("SpillReadFailures = %d, injector log says %d",
			report.Robust.SpillReadFailures, wantRead)
	}
	if report.Retries == 0 {
		t.Error("no steps were retried despite injected spill faults")
	}
	paramsBitsEqual(t, got, ref, "fault-injected vs fault-free budgeted")

	// The report renders the spill line.
	if s := report.String(); !strings.Contains(s, "spill:") {
		t.Errorf("report missing spill section:\n%s", s)
	}
}

// TestSpillErrorsWithoutRetryFailTheStep pins the typed-error surface: an
// unretried injected spill-write failure aborts TryStep with
// faults.ErrInjected, and a corrupt page surfaces stashstore.ErrCorruptPage
// — both leave the weights untouched (no partial update).
func TestSpillErrorsWithoutRetryFailTheStep(t *testing.T) {
	const mb, classes = 8, 4
	dir := t.TempDir()
	cases := []struct {
		name string
		cfg  faults.Config
		want error
	}{
		{"write", faults.Config{Seed: 5, SpillWriteFailRate: 1}, faults.ErrInjectedSpillWrite},
		{"corrupt", faults.Config{Seed: 5, SpillReadCorruptRate: 1}, stashstore.ErrCorruptPage},
		{"short", faults.Config{Seed: 5, SpillShortReadRate: 1}, stashstore.ErrCorruptPage},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := networks.TinyCNN(mb, classes)
			a := encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))
			e := NewExecutor(g, Options{
				Seed: 42, Encodings: a, StashBudget: 1, SpillDir: dir,
				Faults: faults.New(c.cfg), Integrity: true,
			})
			defer e.ReleaseBuffers()
			before := flatParams(e)
			d := NewDataset(classes, 3, 16, 0.3, 7)
			x, labels := d.Batch(mb)
			_, _, err := e.TryStep(x, labels, 0.05)
			if !errors.Is(err, c.want) {
				t.Fatalf("TryStep err = %v, want %v", err, c.want)
			}
			paramsBitsEqual(t, flatParams(e), before, "weights after failed step")
		})
	}
}

// TestSpillFileLifecycle: ReleaseBuffers removes the spill file and the
// executor keeps working afterwards (the store recreates it lazily).
func TestSpillFileLifecycle(t *testing.T) {
	const mb, classes = 8, 4
	dir := t.TempDir()
	g := networks.TinyCNN(mb, classes)
	e := NewExecutor(g, Options{Seed: 42, StashBudget: 1, SpillDir: dir})
	d := NewDataset(classes, 3, 16, 0.3, 7)
	x, labels := d.Batch(mb)
	e.Step(x, labels, 0.05)
	if e.StashStore() == nil || e.StashStore().SpillPath() == "" {
		t.Fatal("budgeted step should have spilled")
	}
	path := e.StashStore().SpillPath()
	e.ReleaseBuffers()
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("spill file %s survived ReleaseBuffers (err=%v)", path, err)
	}
	// Still trainable after release.
	x, labels = d.Batch(mb)
	e.Step(x, labels, 0.05)
	e.ReleaseBuffers()
	leaked, _ := filepath.Glob(filepath.Join(dir, "gist-spill-*"))
	if len(leaked) != 0 {
		t.Fatalf("leaked spill files: %v", leaked)
	}
}
