package train

import (
	"errors"
	"math"
	"testing"

	"gist/internal/bufpool"
	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/networks"
	"gist/internal/parallel"
	"gist/internal/race"
	"gist/internal/telemetry"
)

// flatParams snapshots every parameter of the executor, flat, in
// graph-node order — the byte-level object the determinism property is
// stated over.
func flatParams(e *Executor) []float32 {
	var out []float32
	for _, n := range e.G.Nodes {
		for _, p := range e.params[n.ID] {
			out = append(out, p.Data...)
		}
	}
	return out
}

func paramsBitsEqual(t *testing.T, got, want []float32, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d params, want %d", label, len(got), len(want))
	}
	for k := range got {
		if math.Float32bits(got[k]) != math.Float32bits(want[k]) {
			t.Fatalf("%s: param %d = %x (%g), want %x (%g)",
				label, k, math.Float32bits(got[k]), got[k],
				math.Float32bits(want[k]), want[k])
		}
	}
}

type replicaRun struct {
	replicas int
	workers  int
}

// trainReplicaGroup builds a fresh group over build(shardBatch, classes)
// and trains it for steps steps on a deterministically seeded dataset,
// returning replica 0's final parameters and the final loss.
func trainReplicaGroup(t *testing.T, build func(mb, classes int) *graph.Graph,
	shardBatch, shards, replicas, workers, steps int, encode bool) ([]float32, float64) {
	t.Helper()
	const classes = 4
	g := build(shardBatch, classes)
	opts := Options{Seed: 42, Pool: bufpool.New()}
	var codecPool *parallel.Pool
	if workers > 1 {
		codecPool = parallel.NewPool(workers)
	}
	opts.Codec = &encoding.Codec{Pool: codecPool}
	if encode {
		opts.Encodings = encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))
	}
	rg := NewReplicaGroup(g, opts, ReplicaConfig{Replicas: replicas, Shards: shards})
	defer rg.Close()

	in := g.InputNodes()[0].OutShape
	d := NewDataset(classes, in[1], in[2], 0.3, 7)
	var loss float64
	for step := 0; step < steps; step++ {
		x, labels := d.Batch(rg.GroupBatch())
		loss, _ = rg.Step(x, labels, 0.05)
	}
	return flatParams(rg.Executor()), loss
}

// TestReplicaDeterminism is the engine's core property: at a fixed shard
// count, every (replica count, worker count) combination trains to
// byte-identical weights — the merged gradient is a pure function of the
// data, never of the execution topology. Covered with and without the
// encode/decode pipeline in the loop.
func TestReplicaDeterminism(t *testing.T) {
	if race.Enabled {
		t.Skip("bit-exactness matrix, no concurrency of its own; ~10x too slow under -race")
	}
	const shards, shardBatch, steps = 4, 2, 50
	runs := []replicaRun{{1, 1}, {1, 4}, {2, 1}, {2, 4}, {4, 1}, {4, 4}}
	for _, encode := range []bool{false, true} {
		name := "plain"
		if encode {
			name = "encoded"
		}
		t.Run(name, func(t *testing.T) {
			ref, refLoss := trainReplicaGroup(t, networks.TinyCNN,
				shardBatch, shards, runs[0].replicas, runs[0].workers, steps, encode)
			if refLoss != refLoss || refLoss > 10 {
				t.Fatalf("reference run diverged: loss %g", refLoss)
			}
			for _, r := range runs[1:] {
				got, _ := trainReplicaGroup(t, networks.TinyCNN,
					shardBatch, shards, r.replicas, r.workers, steps, encode)
				paramsBitsEqual(t, got, ref, name)
			}
		})
	}
}

// TestReplicaDeterminismTinyVGG repeats the property on the deeper Figure
// 14 network with a reduced combination matrix (the interesting corners:
// serial baseline, maximal replica fan-out, replicas-with-workers).
func TestReplicaDeterminismTinyVGG(t *testing.T) {
	if testing.Short() || race.Enabled {
		t.Skip("TinyVGG determinism matrix is slow")
	}
	const shards, shardBatch, steps = 4, 1, 50
	ref, refLoss := trainReplicaGroup(t, networks.TinyVGG, shardBatch, shards, 1, 1, steps, true)
	if refLoss != refLoss {
		t.Fatal("reference run diverged to NaN")
	}
	for _, r := range []replicaRun{{4, 1}, {2, 4}} {
		got, _ := trainReplicaGroup(t, networks.TinyVGG, shardBatch, shards, r.replicas, r.workers, steps, true)
		paramsBitsEqual(t, got, ref, "tinyvgg")
	}
}

// TestReplicaMatchesSingleExecutor pins the degenerate group (1 replica,
// 1 shard) to the plain executor: same weights after the same steps, so
// the replica engine is a strict generalization, not a parallel dialect.
func TestReplicaMatchesSingleExecutor(t *testing.T) {
	const mb, classes, steps = 8, 4, 30

	g1 := networks.TinyCNN(mb, classes)
	e := NewExecutor(g1, Options{Seed: 42})
	d1 := NewDataset(classes, 3, 16, 0.3, 7)
	for step := 0; step < steps; step++ {
		x, labels := d1.Batch(mb)
		e.Step(x, labels, 0.05)
	}

	g2 := networks.TinyCNN(mb, classes)
	rg := NewReplicaGroup(g2, Options{Seed: 42}, ReplicaConfig{Replicas: 1, Shards: 1})
	defer rg.Close()
	d2 := NewDataset(classes, 3, 16, 0.3, 7)
	for step := 0; step < steps; step++ {
		x, labels := d2.Batch(mb)
		rg.Step(x, labels, 0.05)
	}

	paramsBitsEqual(t, flatParams(rg.Executor()), flatParams(e), "1x1 group vs executor")
}

// TestReplicaEval checks group evaluation: shard-mean loss is finite and
// error counts land in [0, batch].
func TestReplicaEval(t *testing.T) {
	const classes = 4
	g := networks.TinyCNN(2, classes)
	rg := NewReplicaGroup(g, Options{Seed: 1}, ReplicaConfig{Replicas: 2, Shards: 4})
	defer rg.Close()
	d := NewDataset(classes, 3, 16, 0.3, 3)
	x, labels := d.Batch(rg.GroupBatch())
	for i := 0; i < 5; i++ {
		rg.Step(x, labels, 0.05)
	}
	loss, errs := rg.Eval(x, labels)
	if loss != loss || loss < 0 {
		t.Fatalf("eval loss %g", loss)
	}
	if errs < 0 || errs > rg.GroupBatch() {
		t.Fatalf("eval errors %d out of range [0,%d]", errs, rg.GroupBatch())
	}
}

// TestReplicaClamp checks config normalization: replicas never exceed
// shards, zero values pick the documented defaults.
func TestReplicaClamp(t *testing.T) {
	g := networks.TinyCNN(2, 4)
	rg := NewReplicaGroup(g, Options{Seed: 1}, ReplicaConfig{Replicas: 8, Shards: 3})
	defer rg.Close()
	if rg.Replicas() != 3 || rg.Shards() != 3 {
		t.Fatalf("got %d replicas / %d shards, want 3/3", rg.Replicas(), rg.Shards())
	}
	g2 := networks.TinyCNN(2, 4)
	rg2 := NewReplicaGroup(g2, Options{Seed: 1}, ReplicaConfig{})
	defer rg2.Close()
	if rg2.Replicas() != 1 || rg2.Shards() != 1 {
		t.Fatalf("zero config: got %d/%d, want 1/1", rg2.Replicas(), rg2.Shards())
	}
}

// faultOpts builds replica options with the encode pipeline and an armed
// injector, the configuration the retry machinery exists for.
func faultOpts(g *graph.Graph, fc faults.Config, tel *telemetry.Sink) Options {
	opts := Options{
		Seed:      42,
		Encodings: encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16)),
		Integrity: true,
		Faults:    faults.New(fc),
		Telemetry: tel,
	}
	return opts
}

// TestReplicaFaultRetry checks that a lossy decode path under injected
// decode failures still trains: shard attempts are retried within the
// budget, the retry counter moves, and no step is lost.
func TestReplicaFaultRetry(t *testing.T) {
	tel := telemetry.New()
	g := networks.TinyCNN(2, 4)
	opts := faultOpts(g, faults.Config{Seed: 9, DecodeFailRate: 0.05}, tel)
	rg := NewReplicaGroup(g, opts, ReplicaConfig{Replicas: 2, Shards: 4, MaxRetries: 8})
	defer rg.Close()

	d := NewDataset(4, 3, 16, 0.3, 7)
	for step := 0; step < 10; step++ {
		x, labels := d.Batch(rg.GroupBatch())
		if _, _, err := rg.TryStep(x, labels, 0.05); err != nil {
			t.Fatalf("step %d abandoned inside a generous retry budget: %v", step, err)
		}
	}
	if got := tel.Counter("replica.shard.retries").Value(); got == 0 {
		t.Fatal("5% per-stash decode failures over 40 shard-steps produced zero retries")
	}
	for k, v := range flatParams(rg.Executor()) {
		if v != v {
			t.Fatalf("param %d is NaN after faulty training", k)
		}
	}
}

// TestReplicaRetryDeterminism is the strong fault property: a run that
// retried through injected decode failures ends bit-identical to a
// fault-free run. A failed attempt must leave nothing behind — zeroed
// gradients, reseeded RNG — so the successful retry is indistinguishable
// from never having failed.
func TestReplicaRetryDeterminism(t *testing.T) {
	train := func(fc faults.Config, retries int) []float32 {
		g := networks.TinyCNN(2, 4)
		opts := faultOpts(g, fc, nil)
		rg := NewReplicaGroup(g, opts, ReplicaConfig{Replicas: 2, Shards: 4, MaxRetries: retries})
		defer rg.Close()
		d := NewDataset(4, 3, 16, 0.3, 7)
		for step := 0; step < 15; step++ {
			x, labels := d.Batch(rg.GroupBatch())
			if _, _, err := rg.TryStep(x, labels, 0.05); err != nil {
				t.Fatalf("step abandoned: %v", err)
			}
		}
		return flatParams(rg.Executor())
	}
	clean := train(faults.Config{}, 0)
	faulty := train(faults.Config{Seed: 11, DecodeFailRate: 0.03}, 16)
	paramsBitsEqual(t, faulty, clean, "retried vs fault-free")
}

// TestReplicaStepAbandoned checks the give-up path: with a zero retry
// budget and certain encode failure, the step reports ErrStepAbandoned and
// leaves every parameter untouched.
func TestReplicaStepAbandoned(t *testing.T) {
	tel := telemetry.New()
	g := networks.TinyCNN(2, 4)
	opts := faultOpts(g, faults.Config{Seed: 5, EncodeFailRate: 1}, tel)
	rg := NewReplicaGroup(g, opts, ReplicaConfig{Replicas: 2, Shards: 2, MaxRetries: 0})
	defer rg.Close()

	before := flatParams(rg.Executor())
	d := NewDataset(4, 3, 16, 0.3, 7)
	x, labels := d.Batch(rg.GroupBatch())
	_, _, err := rg.TryStep(x, labels, 0.05)
	if !errors.Is(err, ErrStepAbandoned) {
		t.Fatalf("got %v, want ErrStepAbandoned", err)
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("abandon error should wrap the injected failure, got %v", err)
	}
	paramsBitsEqual(t, flatParams(rg.Executor()), before, "params after abandoned step")
	if tel.Counter("replica.steps.abandoned").Value() != 1 {
		t.Fatal("abandon counter did not move")
	}

	// The group recovers: with injection effectively disabled the next step
	// applies normally.
	rg.inj = nil
	for _, e := range rg.execs {
		e.opts.Faults = nil
	}
	if _, _, err := rg.TryStep(x, labels, 0.05); err != nil {
		t.Fatalf("step after abandon: %v", err)
	}
}

// TestReplicaTelemetry checks the group publishes its reduce instruments.
func TestReplicaTelemetry(t *testing.T) {
	tel := telemetry.New()
	g := networks.TinyCNN(2, 4)
	rg := NewReplicaGroup(g, Options{Seed: 1, Telemetry: tel}, ReplicaConfig{Replicas: 2, Shards: 4})
	defer rg.Close()
	d := NewDataset(4, 3, 16, 0.3, 3)
	x, labels := d.Batch(rg.GroupBatch())
	rg.Step(x, labels, 0.05)
	if tel.Histogram("replica.reduce.ns").Count() == 0 {
		t.Fatal("reduce latency histogram is empty")
	}
	if tel.Counter("replica.reduce.bytes").Value() == 0 {
		t.Fatal("reduce bytes counter did not move")
	}
}

// TestRunWithReplicaGroup drives the shared training loop through the
// Stepper interface with a group engine.
func TestRunWithReplicaGroup(t *testing.T) {
	g := networks.TinyCNN(2, 4)
	rg := NewReplicaGroup(g, Options{Seed: 42}, ReplicaConfig{Replicas: 2, Shards: 4})
	defer rg.Close()
	d := NewDataset(4, 3, 16, 0.3, 7)
	recs := Run(rg, d, RunConfig{Minibatch: rg.GroupBatch(), Steps: 20, LR: 0.05, ProbeEvery: 5})
	if len(recs) != 4 {
		t.Fatalf("got %d probe records, want 4", len(recs))
	}
	for _, r := range recs {
		if r.Loss != r.Loss {
			t.Fatalf("probe at step %d has NaN loss", r.Minibatch)
		}
	}
}

// TestReplicaSparsityProbe pins the probe surface to the same
// replica-count independence as the weights: a probe capture means "the
// latest forward pass", a single executor's latest shard is S-1, and the
// group must report the replica that ran that same shard — so the
// Figure-14 sparsity study prints byte-identical numbers at every
// replica count.
func TestReplicaSparsityProbe(t *testing.T) {
	capture := func(replicas int) map[string]float64 {
		g := networks.TinyCNN(2, 4)
		rg := NewReplicaGroup(g, Options{
			Seed: 42, Pool: bufpool.New(),
			Encodings: encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16)),
		}, ReplicaConfig{Replicas: replicas, Shards: 4})
		defer rg.Close()
		rg.SetSparsityProbe(true)
		d := NewDataset(4, 3, 16, 0.3, 7)
		for step := 0; step < 5; step++ {
			x, labels := d.Batch(rg.GroupBatch())
			rg.Step(x, labels, 0.05)
		}
		return rg.ReLUSparsities()
	}
	want := capture(1)
	if len(want) == 0 {
		t.Fatal("probe captured nothing")
	}
	for _, replicas := range []int{2, 4} {
		got := capture(replicas)
		if len(got) != len(want) {
			t.Fatalf("replicas=%d captured %d layers, want %d", replicas, len(got), len(want))
		}
		for name, v := range want {
			if got[name] != v {
				t.Errorf("replicas=%d %s sparsity = %v, want %v", replicas, name, got[name], v)
			}
		}
	}
}
