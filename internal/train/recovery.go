package train

// Crash-safe training recovery: an in-memory snapshot of everything a step
// mutates (parameters, momenta, batch-norm running statistics, the RNG),
// and a trainer loop that re-executes a failed step from the last good
// snapshot with capped exponential backoff, periodically persisting an
// atomic on-disk checkpoint. The loop surfaces a RecoveryReport whose
// counters are cross-checked against the fault injector's log in tests.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gist/internal/faults"
	"gist/internal/layers"
	"gist/internal/tensor"
)

// Snapshot captures the executor state a training step mutates, so a
// failed step can be rolled back and replayed bit-identically.
type Snapshot struct {
	params map[int][][]float32
	moms   map[int][][]float32
	bnMean map[int][]float32
	bnVar  map[int][]float32
	rng    uint64
}

// Snapshot copies the executor's mutable training state.
func (e *Executor) Snapshot() *Snapshot {
	s := &Snapshot{
		params: map[int][][]float32{},
		moms:   map[int][][]float32{},
		bnMean: map[int][]float32{},
		bnVar:  map[int][]float32{},
		rng:    e.rng.State(),
	}
	for id, ps := range e.params {
		s.params[id] = copyTensors(ps)
		s.moms[id] = copyTensors(e.moms[id])
	}
	for _, n := range e.G.Nodes {
		if bn, ok := n.Op.(*layers.BatchNormOp); ok {
			s.bnMean[n.ID] = append([]float32(nil), bn.RunningMean...)
			s.bnVar[n.ID] = append([]float32(nil), bn.RunningVar...)
		}
	}
	return s
}

// copyTensors deep-copies the data arrays of a tensor list.
func copyTensors(ts []*tensor.Tensor) [][]float32 {
	out := make([][]float32, len(ts))
	for i, t := range ts {
		out[i] = append([]float32(nil), t.Data...)
	}
	return out
}

// restoreTensors writes saved data arrays back into the tensor list.
func restoreTensors(ts []*tensor.Tensor, saved [][]float32) {
	for i, t := range ts {
		copy(t.Data, saved[i])
	}
}

// Restore rewinds the executor to a snapshot taken on the same executor:
// parameters, momenta, batch-norm statistics and the RNG stream. Gradients
// are zeroed (a failed step may not have consumed them).
func (e *Executor) Restore(s *Snapshot) {
	for id, ps := range e.params {
		restoreTensors(ps, s.params[id])
		restoreTensors(e.moms[id], s.moms[id])
		for _, g := range e.grads[id] {
			g.Zero()
		}
	}
	for _, n := range e.G.Nodes {
		if bn, ok := n.Op.(*layers.BatchNormOp); ok {
			// An empty saved slice means the stats were still lazily
			// unallocated at snapshot time; return to that pristine state so
			// the replayed forward re-initializes them identically.
			if m := s.bnMean[n.ID]; len(m) == 0 {
				bn.RunningMean, bn.RunningVar = nil, nil
			} else {
				bn.RunningMean = append([]float32(nil), m...)
				bn.RunningVar = append([]float32(nil), s.bnVar[n.ID]...)
			}
		}
	}
	e.rng.SetState(s.rng)
}

// RecoveryConfig tunes the retry/backoff/checkpoint behaviour of
// RunRecoverable. The zero value uses the documented defaults.
type RecoveryConfig struct {
	// MaxRetries is the retry budget per step (default 5). The run aborts
	// once a single step exhausts it.
	MaxRetries int
	// BackoffBase is the first retry's delay (default 1ms); each further
	// retry doubles it, capped at BackoffMax (default 100ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// CheckpointPath, when set, atomically writes a verified checkpoint
	// there every CheckpointEvery steps (default: the probe interval).
	CheckpointPath  string
	CheckpointEvery int
	// Sleep replaces the backoff wait (tests inject a recorder); nil uses
	// a context-aware timer wait that aborts the moment the run's context
	// is cancelled or its deadline expires. An injected Sleep is followed
	// by a context check, so cancellation still aborts between waits.
	Sleep func(time.Duration)
}

// sleepCtx waits d or until ctx is done, whichever is first, returning the
// context's error when the wait was interrupted.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (rc *RecoveryConfig) withDefaults(probeEvery int) RecoveryConfig {
	c := *rc
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 100 * time.Millisecond
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = probeEvery
	}
	return c
}

// RecoveryReport summarizes the robustness behaviour of one recoverable
// run: how often steps failed and were replayed, what the executor counted
// (fallbacks, CRC detections, injected failures), and how checkpointing
// fared. FaultCounts carries the injector's own log for cross-checking.
type RecoveryReport struct {
	// Steps is the number of steps that completed.
	Steps int
	// Retries is the total number of step re-executions.
	Retries int
	// RecoveredSteps is the number of steps that failed at least once and
	// then completed.
	RecoveredSteps int
	// GaveUpStep is the step that exhausted its retry budget (0 when the
	// run completed).
	GaveUpStep int
	// BackoffTotal is the summed backoff delay the run waited out.
	BackoffTotal time.Duration
	// CheckpointSaves and CheckpointFailures count the periodic atomic
	// checkpoint writes.
	CheckpointSaves    int
	CheckpointFailures int
	// Robust is the executor's counter block at run end.
	Robust RobustnessStats
	// FaultCounts aggregates the injector's event log by kind (nil when no
	// injector was attached).
	FaultCounts map[faults.Kind]int
}

// String renders the report as a compact multi-line summary.
func (r *RecoveryReport) String() string {
	s := fmt.Sprintf("steps %d, retries %d, recovered steps %d, backoff %v\n",
		r.Steps, r.Retries, r.RecoveredSteps, r.BackoffTotal)
	s += fmt.Sprintf("stash: crc-detected %d, ssdc->dense fallbacks %d, injected encode/decode/alloc %d/%d/%d\n",
		r.Robust.CRCFailures, r.Robust.SSDCFallbacks,
		r.Robust.EncodeFailures, r.Robust.DecodeFailures, r.Robust.AllocFailures)
	if r.Robust.SpillWriteFailures > 0 || r.Robust.SpillReadFailures > 0 {
		s += fmt.Sprintf("spill: write failures %d, corrupt pages detected %d\n",
			r.Robust.SpillWriteFailures, r.Robust.SpillReadFailures)
	}
	s += fmt.Sprintf("checkpoints: %d saved, %d failed", r.CheckpointSaves, r.CheckpointFailures)
	if r.GaveUpStep > 0 {
		s += fmt.Sprintf("\nGAVE UP at step %d", r.GaveUpStep)
	}
	return s
}

// RunRecoverable trains like Run but survives stash-pipeline failures: each
// step runs against a snapshot of the last good state, and on failure the
// state is rolled back, the loop backs off (exponential, capped), and the
// step is re-executed. A step that exhausts MaxRetries aborts the run with
// an error; the records and report accumulated so far are still returned.
//
// The context is threaded through the whole loop: it is bound to the
// executor (polled at step phase boundaries), checked before every step,
// and it interrupts the backoff wait immediately — a cancelled or
// deadline-expired run returns within one step's latency with the state
// rolled back to the last good snapshot, records and report intact, and an
// error wrapping ctx.Err() (plus the last failure cause when the
// cancellation landed mid-retry).
//
// With no fault injector attached the loop's overhead is one state
// snapshot per step; with nothing to roll back it behaves exactly like Run.
func RunRecoverable(ctx context.Context, e *Executor, d *Dataset, cfg RunConfig, rcfg RecoveryConfig) ([]Record, *RecoveryReport, error) {
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 10
	}
	if cfg.ProbeSparsity {
		e.SetSparsityProbe(true)
	}
	e.SetContext(ctx)
	defer e.SetContext(nil)
	rc := rcfg.withDefaults(cfg.ProbeEvery)
	report := &RecoveryReport{}
	inj := e.opts.Faults

	// Recovery-loop instruments (nil, hence free, when the executor carries
	// no sink). They mirror the report's counters one-for-one, which the
	// telemetry cross-check test pins.
	retriesC := e.tel.Counter("train.retries")
	recoveredC := e.tel.Counter("train.recovered_steps")
	ckptSaves := e.tel.Counter("train.checkpoint.saves")
	ckptFails := e.tel.Counter("train.checkpoint.failures")

	var records []Record
	windowErrs, windowN := 0, 0
	var lastLoss float64

	abort := func(cause error) ([]Record, *RecoveryReport, error) {
		report.Robust = e.Robust
		report.FaultCounts = countsOrNil(inj)
		return records, report, cause
	}

	startStep := e.ResumeStep()
	good := e.Snapshot()
	for step := startStep + 1; step <= cfg.Steps; step++ {
		if cerr := ctx.Err(); cerr != nil {
			return abort(fmt.Errorf("train: run stopped before step %d: %w", step, cerr))
		}
		x, labels := d.Batch(cfg.Minibatch)
		inj.BeginStep(step)

		var loss float64
		var errs int
		backoff := rc.BackoffBase
		recovered := false
		for attempt := 0; ; attempt++ {
			var err error
			loss, errs, err = e.TryStep(x, labels, cfg.LR)
			if err == nil {
				break
			}
			e.Restore(good)
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// Cancellation, not a fault: the state is rolled back to
				// the last good snapshot; don't burn retries on it.
				return abort(fmt.Errorf("train: step %d canceled: %w", step, err))
			}
			if attempt >= rc.MaxRetries {
				report.GaveUpStep = step
				e.tel.Gauge("train.gave_up_step").Set(int64(step))
				return abort(fmt.Errorf("train: step %d failed after %d retries: %w",
					step, rc.MaxRetries, err))
			}
			if rc.Sleep != nil {
				rc.Sleep(backoff)
			} else if werr := sleepCtx(ctx, backoff); werr != nil {
				return abort(fmt.Errorf(
					"train: step %d canceled during retry backoff: %w (last cause: %w)",
					step, werr, err))
			}
			report.BackoffTotal += backoff
			if cerr := ctx.Err(); cerr != nil {
				return abort(fmt.Errorf(
					"train: step %d canceled during retry backoff: %w (last cause: %w)",
					step, cerr, err))
			}
			if backoff *= 2; backoff > rc.BackoffMax {
				backoff = rc.BackoffMax
			}
			report.Retries++
			retriesC.Inc()
			recovered = true
		}
		if recovered {
			report.RecoveredSteps++
			recoveredC.Inc()
		}
		report.Steps = step
		e.SetResumeStep(step)
		good = e.Snapshot()
		if cfg.OnStep != nil {
			cfg.OnStep(step, loss)
		}

		windowErrs += errs
		windowN += cfg.Minibatch
		lastLoss = loss
		if step%cfg.ProbeEvery == 0 {
			rec := Record{
				Minibatch:    step,
				Loss:         lastLoss,
				AccuracyLoss: float64(windowErrs) / float64(windowN),
			}
			if cfg.ProbeSparsity {
				rec.ReLUSparsity = e.ReLUSparsities()
			}
			records = append(records, rec)
			windowErrs, windowN = 0, 0
		}
		if rc.CheckpointPath != "" && step%rc.CheckpointEvery == 0 {
			// Writes go through the injector's wrapper (a no-op when no
			// checkpoint fault is configured) so torn/corrupt streams are
			// exercised; the atomic save catches them before promotion.
			if err := e.SaveCheckpointFileVia(rc.CheckpointPath, inj.WrapWriter); err != nil {
				report.CheckpointFailures++
				ckptFails.Inc()
			} else {
				report.CheckpointSaves++
				ckptSaves.Inc()
			}
		}
		maybeSnapshot(e, cfg, step)
	}
	report.Robust = e.Robust
	report.FaultCounts = countsOrNil(inj)
	return records, report, nil
}

func countsOrNil(inj *faults.Injector) map[faults.Kind]int {
	if inj == nil {
		return nil
	}
	return inj.Counts()
}
