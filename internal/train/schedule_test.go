package train

import (
	"math"
	"testing"
)

func TestConstantLR(t *testing.T) {
	s := ConstantLR(0.1)
	if s.At(0) != 0.1 || s.At(1000) != 0.1 {
		t.Fatal("constant schedule must not vary")
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Base: 1, Gamma: 0.1, DecayEvery: 30}
	if s.At(0) != 1 || s.At(29) != 1 {
		t.Error("rate before first decay")
	}
	if got := s.At(30); math.Abs(float64(got)-0.1) > 1e-7 {
		t.Errorf("after one decay: %v", got)
	}
	if got := s.At(65); math.Abs(float64(got)-0.01) > 1e-8 {
		t.Errorf("after two decays: %v", got)
	}
	// Degenerate period: no decay.
	if (StepDecay{Base: 2, Gamma: 0.5}).At(100) != 2 {
		t.Error("zero period must not decay")
	}
}

func TestCosineDecay(t *testing.T) {
	s := CosineDecay{Base: 1, Floor: 0.1, Horizon: 100}
	if s.At(0) != 1 {
		t.Errorf("start = %v", s.At(0))
	}
	mid := s.At(50)
	if math.Abs(float64(mid)-0.55) > 1e-6 {
		t.Errorf("midpoint = %v, want 0.55", mid)
	}
	if s.At(100) != 0.1 || s.At(500) != 0.1 {
		t.Error("past horizon must clamp at floor")
	}
	// Monotone decreasing.
	prev := s.At(0)
	for i := 1; i <= 100; i++ {
		cur := s.At(i)
		if cur > prev {
			t.Fatalf("cosine not monotone at %d", i)
		}
		prev = cur
	}
}

func TestWarmup(t *testing.T) {
	s := Warmup{WarmupSteps: 10, Inner: ConstantLR(1)}
	if got := s.At(0); math.Abs(float64(got)-0.1) > 1e-7 {
		t.Errorf("first step = %v, want 0.1", got)
	}
	if got := s.At(4); math.Abs(float64(got)-0.5) > 1e-7 {
		t.Errorf("step 4 = %v, want 0.5", got)
	}
	if s.At(10) != 1 || s.At(100) != 1 {
		t.Error("post-warmup must be the inner rate")
	}
	if (Warmup{Inner: ConstantLR(2)}).At(0) != 2 {
		t.Error("zero warmup must delegate immediately")
	}
}

func TestRunScheduledTrains(t *testing.T) {
	g := smallNet(8)
	e := NewExecutor(g, Options{Seed: 41})
	d := NewDataset(4, 2, 8, 0.3, 42)
	sched := Warmup{WarmupSteps: 10, Inner: StepDecay{Base: 0.05, Gamma: 0.5, DecayEvery: 50}}
	recs := RunScheduled(e, d, RunConfig{Minibatch: 8, Steps: 120, ProbeEvery: 30}, sched)
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	if Diverged(recs, 4) {
		t.Fatal("scheduled run diverged")
	}
	if recs[len(recs)-1].AccuracyLoss > 0.3 {
		t.Fatalf("final accuracy loss %v", recs[len(recs)-1].AccuracyLoss)
	}
}
