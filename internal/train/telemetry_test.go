package train

import (
	"context"
	"strings"
	"testing"
	"time"

	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/floatenc"
	"gist/internal/parallel"
	"gist/internal/telemetry"
)

// TestTelemetryCrossChecksReportAndInjector is the reconciliation wall: one
// fault-injected recoverable run, after which the telemetry snapshot, the
// RecoveryReport and the injector's own event log must agree counter for
// counter. The executor mirrors every RobustnessStats increment and the
// injector mirrors every recorded event, so any drift between the three
// views is a wiring bug this test catches.
func TestTelemetryCrossChecksReportAndInjector(t *testing.T) {
	g := smallNet(4)
	a := encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))
	inj := faults.New(faults.Config{
		Seed:           99,
		BitFlipRate:    0.06,
		EncodeFailRate: 0.03,
		DecodeFailRate: 0.03,
	})
	sink := telemetry.New()
	sink.EnableTracing(0)
	e := NewExecutor(g, Options{Seed: 9, Encodings: a, Faults: inj, Telemetry: sink})
	if e.Telemetry() != sink {
		t.Fatal("executor dropped the sink")
	}
	d := NewDataset(4, 2, 8, 0.3, 13)

	var periodic strings.Builder
	_, report, err := RunRecoverable(context.Background(), e, d,
		RunConfig{Minibatch: 4, Steps: 40, LR: 0.05, ProbeEvery: 10,
			MetricsEvery: 20, MetricsOut: &periodic},
		RecoveryConfig{MaxRetries: 25, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatalf("run did not survive: %v", err)
	}

	v := sink.Values()
	counts := inj.Counts()
	checks := []struct {
		metric string
		want   int64
	}{
		{"train.crc_detected", report.Robust.CRCFailures},
		{"train.ssdc_fallbacks", report.Robust.SSDCFallbacks},
		{"train.injected.encode_failures", report.Robust.EncodeFailures},
		{"train.injected.decode_failures", report.Robust.DecodeFailures},
		{"train.injected.alloc_failures", report.Robust.AllocFailures},
		{"train.retries", int64(report.Retries)},
		{"train.recovered_steps", int64(report.RecoveredSteps)},
		{"train.steps", int64(report.Steps + report.Retries)},
		{"faults.injected.bit-flip", int64(counts[faults.BitFlip])},
		{"faults.injected.encode-fail", int64(counts[faults.EncodeFail])},
		{"faults.injected.decode-fail", int64(counts[faults.DecodeFail])},
		// Sync-path failures all surface inside stash preparation, so only
		// fully successful steps record a memory sample.
		{"stash.samples", int64(report.Steps)},
	}
	for _, c := range checks {
		if got := v[c.metric]; got != c.want {
			t.Errorf("%s = %d, want %d", c.metric, got, c.want)
		}
	}
	if report.Robust.CRCFailures == 0 || report.Retries == 0 {
		t.Fatal("injector fired nothing; the cross-check proved nothing")
	}
	// Every CRC detection came from a single-bit flip of a chunked stash,
	// so every one must have been localized to a chunk.
	if got := v["train.crc.chunk_located"]; got != report.Robust.CRCFailures {
		t.Errorf("chunk-located %d of %d CRC detections", got, report.Robust.CRCFailures)
	}

	// The periodic dump fired at steps 20 and 40.
	if got := strings.Count(periodic.String(), "# gist telemetry snapshot"); got != 2 {
		t.Errorf("periodic snapshots %d, want 2", got)
	}

	// The final snapshot derives per-technique ratios from the samples:
	// Binarize holds 1 bit per FP32 element (32x), DPR-FP16 2x.
	var sb strings.Builder
	if err := sink.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	snap := sb.String()
	for _, want := range []string{"ratio Binarize 32.00", "ratio DPR 2.00", "mem step"} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q", want)
		}
	}
}

// TestTelemetryOverlapCounters pins the async-decode accounting: with the
// chunk-parallel codec and no injector, backward prefetches decode futures
// and every consumer classifies as overlap hit (future resolved in time) or
// miss (had to wait) — and the split must cover every future consumed.
func TestTelemetryOverlapCounters(t *testing.T) {
	encoding.SetDefaultCodec(encoding.Codec{Pool: parallel.NewPool(4), ChunkElems: 768})
	t.Cleanup(func() { encoding.SetDefaultCodec(encoding.Codec{}) })

	g := smallNet(4)
	a := encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))
	sink := telemetry.New()
	e := NewExecutor(g, Options{Seed: 3, Encodings: a, Telemetry: sink})
	d := NewDataset(4, 2, 8, 0.3, 7)
	x, labels := d.Batch(4)
	const steps = 5
	for i := 0; i < steps; i++ {
		e.Step(x, labels, 0.01)
	}

	v := sink.Values()
	if v["train.steps"] != steps {
		t.Fatalf("train.steps %d, want %d", v["train.steps"], steps)
	}
	if v["train.overlap.hits"]+v["train.overlap.misses"] == 0 {
		t.Fatal("async decode ran with no overlap accounting")
	}
	if v["stash.samples"] != steps {
		t.Fatalf("stash.samples %d, want %d", v["stash.samples"], steps)
	}
	if v["mem.peak_held_bytes"] <= 0 || v["mem.peak_raw_bytes"] < v["mem.peak_held_bytes"] {
		t.Fatalf("peaks raw %d held %d", v["mem.peak_raw_bytes"], v["mem.peak_held_bytes"])
	}
	if sink.Histogram("train.step.ns").Count() != steps {
		t.Fatalf("step latency observations %d", sink.Histogram("train.step.ns").Count())
	}
}

// TestTelemetryNilSinkUntouched guards the zero-overhead default: an
// uninstrumented executor must never create a sink or record anything.
func TestTelemetryNilSinkUntouched(t *testing.T) {
	g := smallNet(4)
	e := NewExecutor(g, Options{Seed: 1})
	d := NewDataset(4, 2, 8, 0.3, 2)
	x, labels := d.Batch(4)
	e.Step(x, labels, 0.01)
	if e.Telemetry() != nil {
		t.Fatal("uninstrumented executor grew a sink")
	}
}
