package train

import (
	"math"
	"testing"

	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/tensor"
)

// lossAt runs a forward pass and returns the scalar loss, for numerical
// differentiation at whole-graph level.
func lossAt(e *Executor, x *tensor.Tensor, labels []int) float64 {
	e.Forward(x, labels, false) // eval mode: deterministic (no dropout)
	loss, _ := e.lossOf(labels)
	return loss
}

// graphGradCheck verifies the executor's parameter gradients against
// central finite differences of the end-to-end loss.
func graphGradCheck(t *testing.T, g *graph.Graph, seed uint64) {
	t.Helper()
	e := NewExecutor(g, Options{Seed: seed})
	d := NewDataset(3, g.InputNodes()[0].OutShape[1], g.InputNodes()[0].OutShape[2], 0.3, seed+1)
	x, labels := d.Batch(g.InputNodes()[0].OutShape[0])

	// Analytic gradients (training mode off for determinism: BatchNorm in
	// eval mode uses running stats, so use graphs without BN here, or
	// accept train-mode BN with fixed data — we use eval-consistent ops).
	e.Forward(x, labels, false)
	if err := e.Backward(); err != nil {
		t.Fatalf("Backward: %v", err)
	}

	const h = 1e-3
	for _, n := range g.Nodes {
		params := e.Params(n)
		grads := e.grads[n.ID]
		for pi, p := range params {
			stride := max(1, p.NumElements()/8)
			for i := 0; i < p.NumElements(); i += stride {
				orig := p.Data[i]
				p.Data[i] = orig + h
				plus := lossAt(e, x, labels)
				p.Data[i] = orig - h
				minus := lossAt(e, x, labels)
				p.Data[i] = orig
				numeric := (plus - minus) / (2 * h)
				got := float64(grads[pi].Data[i])
				if math.Abs(numeric-got) > 5e-3*(1+math.Abs(numeric)) {
					t.Errorf("%s param %d[%d]: analytic %v vs numeric %v",
						n.Name, pi, i, got, numeric)
				}
			}
		}
	}
}

func TestExecutorGradCheckChain(t *testing.T) {
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(3, 2, 8, 8))
	c1 := g.MustAdd("conv1", layers.NewConv2D(3, 3, 1, 1), in)
	r1 := g.MustAdd("relu1", layers.NewReLU(), c1)
	p1 := g.MustAdd("pool1", layers.NewMaxPool(2, 2, 0), r1)
	fc := g.MustAdd("fc", layers.NewFC(3), p1)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	graphGradCheck(t, g, 7)
}

func TestExecutorGradCheckResidualDiamond(t *testing.T) {
	// Diamond topology: conv output consumed by two branches that re-join
	// in an Add. Exercises gradient accumulation across consumers.
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(2, 2, 6, 6))
	c1 := g.MustAdd("conv1", layers.NewConv2D(3, 3, 1, 1), in)
	r1 := g.MustAdd("relu1", layers.NewReLU(), c1)
	b1 := g.MustAdd("branch1", layers.NewConv2D(3, 3, 1, 1), r1)
	b2 := g.MustAdd("branch2", layers.NewConv2D(3, 1, 1, 0), r1)
	sum := g.MustAdd("add", layers.NewAdd(), b1, b2)
	fc := g.MustAdd("fc", layers.NewFC(3), sum)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	graphGradCheck(t, g, 11)
}

func TestExecutorGradCheckConcatBranches(t *testing.T) {
	// Inception-style: two conv branches concatenated.
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(2, 2, 6, 6))
	b1 := g.MustAdd("branch1", layers.NewConv2D(2, 3, 1, 1), in)
	r1 := g.MustAdd("relu1", layers.NewReLU(), b1)
	b2 := g.MustAdd("branch2", layers.NewConv2D(3, 1, 1, 0), in)
	r2 := g.MustAdd("relu2", layers.NewReLU(), b2)
	cat := g.MustAdd("concat", layers.NewConcat(), r1, r2)
	fc := g.MustAdd("fc", layers.NewFC(3), cat)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	graphGradCheck(t, g, 13)
}

func TestExecutorGradCheckIm2colGraph(t *testing.T) {
	// The GEMM convolution path, end to end.
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(2, 2, 6, 6))
	c1 := g.MustAdd("conv1", layers.NewConv2D(3, 3, 1, 1).SetAlgo(layers.AlgoIm2col), in)
	r1 := g.MustAdd("relu1", layers.NewReLU(), c1)
	fc := g.MustAdd("fc", layers.NewFC(3), r1)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	graphGradCheck(t, g, 17)
}

func TestExecutorDeadBranchSkipped(t *testing.T) {
	// A node whose output never reaches the loss gets no gradient and
	// must not crash the backward pass.
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(2, 2, 6, 6))
	c1 := g.MustAdd("conv1", layers.NewConv2D(2, 3, 1, 1), in)
	g.MustAdd("deadconv", layers.NewConv2D(4, 3, 1, 1), in) // dead branch
	fc := g.MustAdd("fc", layers.NewFC(3), c1)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)

	e := NewExecutor(g, Options{Seed: 19})
	d := NewDataset(3, 2, 6, 0.3, 20)
	x, labels := d.Batch(2)
	loss, _ := e.Step(x, labels, 0.01)
	if math.IsNaN(loss) {
		t.Fatal("dead branch broke the step")
	}
	// The dead conv's gradient stays zero.
	dead := g.Lookup("deadconv")
	for _, gr := range e.grads[dead.ID] {
		for _, v := range gr.Data {
			if v != 0 {
				t.Fatal("dead branch received gradient")
			}
		}
	}
}
