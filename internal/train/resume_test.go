package train

// Pause→resume round-trip tests: a run interrupted at an arbitrary step
// phase boundary (step entry, mid-forward/encode, mid-backward, or
// mid-shard/reduce for a replica group), checkpointed, and resumed on a
// fresh executor must produce weights byte-identical to an uninterrupted
// run at the same seed — even with fault injection active on both runs.
// The countdown context makes the cancellation phase deterministic: the
// engine only observes cancellation through ctx.Err(), so flipping Err
// after exactly N polls lands the abort on the N-th phase boundary.

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"gist/internal/encoding"
	"gist/internal/faults"
)

// countdownCtx is a context whose Err flips to Canceled after n polls.
// Done never fires (the engines poll Err at phase boundaries, which is
// the path under test).
type countdownCtx struct {
	context.Context
	mu sync.Mutex
	n  int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n--
	if c.n < 0 {
		return context.Canceled
	}
	return nil
}

func resumeFaults() *faults.Injector {
	// Detected faults only: every injected failure is caught and retried,
	// so committed state matches a fault-free run bit-for-bit.
	return faults.New(faults.Config{Seed: 9, BitFlipRate: 0.02, EncodeFailRate: 0.02, DecodeFailRate: 0.02})
}

// newResumeExec builds an executor with lossless stash encodings and a
// fresh injector, so the injected encode/decode/flip faults actually hit
// the stash pipeline.
func newResumeExec() *Executor {
	g := smallNet(8)
	return NewExecutor(g, Options{Seed: 7, Faults: resumeFaults(), Integrity: true,
		Encodings: encoding.Analyze(g, encoding.Lossless())})
}

// TestPauseResumeByteIdenticalAtEveryPhase interrupts a recoverable run
// at every step phase boundary across several steps (the countdown lands
// on step entry, post-forward — i.e. mid-encode for stashed layers — and
// post-backward in rotation), checkpoints, resumes on a fresh executor
// and dataset, and requires the final weights to be byte-identical to
// the uninterrupted reference.
func TestPauseResumeByteIdenticalAtEveryPhase(t *testing.T) {
	const steps = 10
	cfg := RunConfig{Minibatch: 8, Steps: steps, LR: 0.05, ProbeEvery: 5}
	rcfg := RecoveryConfig{MaxRetries: 8}

	ref := newResumeExec()
	dRef := NewDataset(4, 2, 8, 0.3, 2)
	if _, _, err := RunRecoverable(context.Background(), ref, dRef, cfg, rcfg); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := flatParams(ref)

	dir := t.TempDir()
	// Counts 5..16 sweep the poll boundaries of steps 2-4: each step of a
	// clean run consumes 4 Err polls (loop guard, step entry,
	// post-forward, post-backward), so consecutive counts land the cancel
	// on consecutive phases. Injected retries shift the landing phase but
	// never off a boundary.
	for cut := 5; cut <= 16; cut++ {
		e1 := newResumeExec()
		d1 := NewDataset(4, 2, 8, 0.3, 2)
		ctx := &countdownCtx{Context: context.Background(), n: cut}
		_, _, err := RunRecoverable(ctx, e1, d1, cfg, rcfg)
		if err == nil {
			t.Fatalf("cut=%d: interrupted run completed", cut)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cut=%d: err = %v, want context.Canceled", cut, err)
		}
		done := e1.ResumeStep()
		if done >= steps {
			t.Fatalf("cut=%d: nothing left to resume (completed %d)", cut, done)
		}
		path := filepath.Join(dir, "ckpt")
		if err := e1.SaveCheckpointFile(path); err != nil {
			t.Fatalf("cut=%d: save: %v", cut, err)
		}

		e2 := newResumeExec()
		if err := e2.LoadCheckpointFile(path); err != nil {
			t.Fatalf("cut=%d: load: %v", cut, err)
		}
		if e2.ResumeStep() != done {
			t.Fatalf("cut=%d: resume step %d, want %d", cut, e2.ResumeStep(), done)
		}
		d2 := NewDataset(4, 2, 8, 0.3, 2)
		d2.Skip(8, done)
		if _, _, err := RunRecoverable(context.Background(), e2, d2, cfg, rcfg); err != nil {
			t.Fatalf("cut=%d: resumed run: %v", cut, err)
		}
		got := flatParams(e2)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut=%d (paused after step %d): weight[%d] = %x, want %x",
					cut, done, i, got[i], want[i])
			}
		}
	}
}

// TestPauseResumeReplicaGroupMidReduce cancels a replica-group run with
// a countdown context so the abort lands inside the shard/reduce
// machinery, then resumes a fresh group from the checkpoint (loaded into
// every replica) and requires byte-identical weights on every replica.
func TestPauseResumeReplicaGroupMidReduce(t *testing.T) {
	const steps, shards = 8, 4
	mb := 8 * shards
	cfg := RunConfig{Minibatch: mb, Steps: steps, LR: 0.05, ProbeEvery: 4}

	newGroup := func() *ReplicaGroup {
		return NewReplicaGroup(smallNet(8), Options{Seed: 7}, ReplicaConfig{Replicas: shards, Shards: shards})
	}

	ref := newGroup()
	defer ref.Close()
	dRef := NewDataset(4, 2, 8, 0.3, 2)
	if _, err := RunContext(context.Background(), ref, dRef, cfg); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := flatParams(ref.Executor())

	// Each clean group step consumes polls at the loop guard, the group
	// step entry, and one per shard attempt — sweep cuts so cancellation
	// lands mid-shard (i.e. with some shards done and the reduce ahead).
	for cut := 3; cut <= 14; cut++ {
		g1 := newGroup()
		d1 := NewDataset(4, 2, 8, 0.3, 2)
		ctx := &countdownCtx{Context: context.Background(), n: cut}
		_, err := RunContext(ctx, g1, d1, cfg)
		if err == nil {
			g1.Close()
			t.Fatalf("cut=%d: interrupted run completed", cut)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cut=%d: err = %v, want context.Canceled", cut, err)
		}
		done := g1.ResumeStep()
		if done >= steps {
			g1.Close()
			t.Fatalf("cut=%d: nothing left to resume (completed %d)", cut, done)
		}
		path := filepath.Join(t.TempDir(), "ckpt")
		if err := g1.Executor().SaveCheckpointFile(path); err != nil {
			t.Fatalf("cut=%d: save: %v", cut, err)
		}
		g1.Close()

		g2 := newGroup()
		for _, e := range g2.Executors() {
			if err := e.LoadCheckpointFile(path); err != nil {
				t.Fatalf("cut=%d: load: %v", cut, err)
			}
		}
		g2.SetResumeStep(g2.Executor().ResumeStep())
		d2 := NewDataset(4, 2, 8, 0.3, 2)
		d2.Skip(mb, done)
		if _, err := RunContext(context.Background(), g2, d2, cfg); err != nil {
			t.Fatalf("cut=%d: resumed run: %v", cut, err)
		}
		for r, e := range g2.Executors() {
			got := flatParams(e)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cut=%d (paused after step %d): replica %d weight[%d] = %x, want %x",
						cut, done, r, i, got[i], want[i])
				}
			}
		}
		g2.Close()
	}
}

// TestCheckpointV3RoundTripMomentaAndRNG pins the v3 payload: momenta,
// RNG stream position and the completed-step count all survive a
// save/load, so the first resumed step matches the uninterrupted run
// even when momentum and dropout state matter.
func TestCheckpointV3RoundTripMomentaAndRNG(t *testing.T) {
	e1 := NewExecutor(smallNet(8), Options{Seed: 3})
	d := NewDataset(4, 2, 8, 0.3, 5)
	cfg := RunConfig{Minibatch: 8, Steps: 6, LR: 0.05, ProbeEvery: 3}
	Run(e1, d, cfg)
	e1.SetResumeStep(6)
	path := filepath.Join(t.TempDir(), "ckpt")
	if err := e1.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}

	e2 := NewExecutor(smallNet(8), Options{Seed: 99}) // divergent seed: load must overwrite everything
	if err := e2.LoadCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	if e2.ResumeStep() != 6 {
		t.Fatalf("resume step %d, want 6", e2.ResumeStep())
	}
	// One more identical step on both: requires equal params AND momenta
	// AND RNG state.
	d1 := NewDataset(4, 2, 8, 0.3, 5)
	d1.Skip(8, 6)
	d2 := NewDataset(4, 2, 8, 0.3, 5)
	d2.Skip(8, 6)
	x1, l1 := d1.Batch(8)
	x2, l2 := d2.Batch(8)
	e1.Step(x1, l1, 0.05)
	e2.Step(x2, l2, 0.05)
	p1, p2 := flatParams(e1), flatParams(e2)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("post-resume step diverged at weight[%d]: %x vs %x", i, p1[i], p2[i])
		}
	}
}
