package train

import (
	"gist/internal/tensor"
)

// Dataset is a synthetic image-classification task that stands in for
// ImageNet in the scaled training experiments: each class is a fixed random
// prototype image, and each sample is its class prototype plus Gaussian
// noise. A small CNN separates the classes within a few hundred
// minibatches, which is exactly the regime the paper's Figure 12 accuracy
// comparison and Figure 14 sparsity ramp need.
type Dataset struct {
	Classes    int
	Channels   int
	Size       int
	NoiseStd   float64
	prototypes []*tensor.Tensor
	rng        *tensor.RNG
}

// NewDataset creates a dataset of the given geometry. Prototypes are drawn
// once from a unit normal; classes are fully distinct (margin 1).
func NewDataset(classes, channels, size int, noiseStd float64, seed uint64) *Dataset {
	return NewMarginDataset(classes, channels, size, noiseStd, 1, seed)
}

// NewMarginDataset creates a dataset whose class prototypes share a common
// component and differ only by a margin-scaled distinctive component:
// prototype_c = shared + margin * unique_c. Small margins make the class
// signal a fine distinction riding on a large common carrier — exactly the
// regime where immediate precision reduction (whose relative error is a
// fixed fraction of the carrier) destroys trainability while Gist's
// delayed reduction, with its exact forward pass, does not.
func NewMarginDataset(classes, channels, size int, noiseStd, margin float64, seed uint64) *Dataset {
	d := &Dataset{
		Classes: classes, Channels: channels, Size: size,
		NoiseStd: noiseStd,
		rng:      tensor.NewRNG(seed),
	}
	shared := tensor.New(1, channels, size, size)
	shared.FillNormal(d.rng, 0, 1)
	for c := 0; c < classes; c++ {
		p := tensor.New(1, channels, size, size)
		p.FillNormal(d.rng, 0, 1)
		p.Scale(float32(margin))
		p.Add(shared)
		d.prototypes = append(d.prototypes, p)
	}
	return d
}

// Batch samples a minibatch: labels cycle deterministically through the
// classes with randomized noise, so every batch is balanced.
func (d *Dataset) Batch(mb int) (*tensor.Tensor, []int) {
	x := tensor.New(mb, d.Channels, d.Size, d.Size)
	labels := make([]int, mb)
	per := d.Channels * d.Size * d.Size
	for i := 0; i < mb; i++ {
		c := d.rng.Intn(d.Classes)
		labels[i] = c
		proto := d.prototypes[c]
		dst := x.Data[i*per : (i+1)*per]
		for j := range dst {
			dst[j] = proto.Data[j] + float32(d.NoiseStd*d.rng.NormFloat64())
		}
	}
	return x, labels
}

// Skip fast-forwards the dataset past n minibatches of size mb without
// materializing them, consuming the RNG exactly as n Batch calls would.
// Resuming a checkpointed run uses it to realign the data stream with the
// restored step count, so the resumed run sees byte-identical batches.
func (d *Dataset) Skip(mb, n int) {
	per := d.Channels * d.Size * d.Size
	for b := 0; b < n; b++ {
		for i := 0; i < mb; i++ {
			d.rng.Intn(d.Classes)
			for j := 0; j < per; j++ {
				d.rng.NormFloat64()
			}
		}
	}
}
