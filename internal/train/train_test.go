package train

import (
	"math"
	"testing"

	"gist/internal/encoding"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/networks"
	"gist/internal/tensor"
)

// smallNet builds a minimal conv net that trains in well under a second.
func smallNet(mb int) *graph.Graph {
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(mb, 2, 8, 8))
	c1 := g.MustAdd("conv1", layers.NewConv2D(4, 3, 1, 1), in)
	r1 := g.MustAdd("relu1", layers.NewReLU(), c1)
	p1 := g.MustAdd("pool1", layers.NewMaxPool(2, 2, 0), r1)
	fc := g.MustAdd("fc", layers.NewFC(4), p1)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	return g
}

func TestTrainingReducesLoss(t *testing.T) {
	g := smallNet(8)
	e := NewExecutor(g, Options{Seed: 1})
	d := NewDataset(4, 2, 8, 0.3, 2)
	recs := Run(e, d, RunConfig{Minibatch: 8, Steps: 120, LR: 0.05, ProbeEvery: 20})
	first, last := recs[0], recs[len(recs)-1]
	if last.Loss >= first.Loss {
		t.Fatalf("loss did not fall: %v -> %v", first.Loss, last.Loss)
	}
	if last.AccuracyLoss > 0.25 {
		t.Fatalf("final accuracy loss %v, want < 0.25", last.AccuracyLoss)
	}
	if Diverged(recs, 4) {
		t.Fatal("baseline run must not be flagged as diverged")
	}
}

func TestDPRMatchesFP32Closely(t *testing.T) {
	// The paper's central accuracy claim: DPR (even FP8 here) tracks the
	// FP32 baseline because the forward pass stays exact.
	d := func() *Dataset { return NewDataset(4, 2, 8, 0.3, 7) }
	cfg := RunConfig{Minibatch: 8, Steps: 150, LR: 0.05, ProbeEvery: 30}

	base := Run(NewExecutor(smallNet(8), Options{Seed: 3}), d(), cfg)
	dpr := Run(NewExecutor(smallNet(8), Options{
		Seed: 3, Mode: DelayedReduced, Format: floatenc.FP8,
	}), d(), cfg)

	bl, dl := FinalAccuracyLoss(base), FinalAccuracyLoss(dpr)
	if math.Abs(bl-dl) > 0.15 {
		t.Fatalf("DPR-FP8 accuracy loss %v deviates from FP32 %v", dl, bl)
	}
	if Diverged(dpr, 4) {
		t.Fatal("DPR-FP8 must train")
	}
}

func TestDelayedForwardIsExactAllReducedIsNot(t *testing.T) {
	// The mechanism behind Figure 12: DPR keeps the forward pass
	// bit-identical to FP32 (reduction happens only on the stashed copy),
	// while immediate reduction perturbs every layer's output and the
	// error compounds downstream.
	d := NewDataset(4, 2, 8, 0.3, 11)
	x, labels := d.Batch(8)

	logits := func(mode PrecisionMode) *tensor.Tensor {
		opt := Options{Seed: 5}
		if mode != FullPrecision {
			opt.Mode = mode
			opt.Format = floatenc.FP8
		}
		g := smallNet(8)
		e := NewExecutor(g, opt)
		e.Forward(x, labels, false)
		return e.Output(g.Lookup("fc")).Clone()
	}

	base := logits(FullPrecision)
	delayed := logits(DelayedReduced)
	all := logits(AllReduced)

	if !delayed.Equal(base) {
		t.Fatal("DelayedReduced forward must be bit-identical to FP32")
	}
	var maxErr float64
	for i := range base.Data {
		if e := math.Abs(float64(all.Data[i] - base.Data[i])); e > maxErr {
			maxErr = e
		}
	}
	if maxErr == 0 {
		t.Fatal("AllReduced forward should deviate from FP32")
	}
}

func TestAllReducedErrorCompoundsWithDepth(t *testing.T) {
	// The deeper the layer, the larger the immediate-reduction error
	// relative to FP32 — the reason conventional schemes lose accuracy.
	g1, g2 := networks.TinyVGG(4, 4), networks.TinyVGG(4, 4)
	e1 := NewExecutor(g1, Options{Seed: 7})
	e2 := NewExecutor(g2, Options{Seed: 7, Mode: AllReduced, Format: floatenc.FP8})
	d := NewDataset(4, 3, 32, 0.3, 8)
	x, labels := d.Batch(4)
	e1.Forward(x, labels, false)
	e2.Forward(x, labels, false)

	relErr := func(name string) float64 {
		a := e1.Output(g1.Lookup(name))
		b := e2.Output(g2.Lookup(name))
		var num, den float64
		for i := range a.Data {
			num += math.Abs(float64(b.Data[i] - a.Data[i]))
			den += math.Abs(float64(a.Data[i]))
		}
		if den == 0 {
			return 0
		}
		return num / den
	}
	shallow := relErr("relu2") // first activation
	deep := relErr("relu16")   // last conv activation
	if deep <= shallow {
		t.Fatalf("error should compound with depth: shallow %v, deep %v", shallow, deep)
	}
}

func TestEncodedTrainingMatchesQuantizedTraining(t *testing.T) {
	// Running the REAL encoder kernels (Binarize/SSDC/DPR round trips)
	// must produce step-for-step identical losses to in-place DPR
	// quantization for the stashes DPR covers, and must train correctly.
	g := smallNet(8)
	a := encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))
	e := NewExecutor(g, Options{Seed: 9, Encodings: a})
	d := NewDataset(4, 2, 8, 0.3, 13)
	recs := Run(e, d, RunConfig{Minibatch: 8, Steps: 120, LR: 0.05, ProbeEvery: 40})
	if Diverged(recs, 4) {
		t.Fatal("encoded training diverged")
	}
	if FinalAccuracyLoss(recs) > 0.3 {
		t.Fatalf("encoded training accuracy loss = %v", FinalAccuracyLoss(recs))
	}
	// The executor must report a smaller stashed footprint than FP32.
	var fp32Stash int64
	for _, n := range g.Nodes {
		if a.OutputStashed(n) || a.ByNode[n.ID] != nil {
			fp32Stash += n.OutShape.Bytes()
		}
	}
	if e.StashBytes >= fp32Stash {
		t.Fatalf("encoded stash bytes %d should be < FP32 %d", e.StashBytes, fp32Stash)
	}
}

func TestLosslessEncodingsAreExact(t *testing.T) {
	// With only Binarize+SSDC (no DPR), one training step must produce
	// bit-identical parameters to the baseline: the encodings are lossless.
	g1, g2 := smallNet(4), smallNet(4)
	a := encoding.Analyze(g2, encoding.Lossless())
	e1 := NewExecutor(g1, Options{Seed: 21})
	e2 := NewExecutor(g2, Options{Seed: 21, Encodings: a})
	d1 := NewDataset(4, 2, 8, 0.3, 22)
	d2 := NewDataset(4, 2, 8, 0.3, 22)
	for i := 0; i < 5; i++ {
		x1, l1 := d1.Batch(4)
		x2, l2 := d2.Batch(4)
		loss1, _ := e1.Step(x1, l1, 0.05)
		loss2, _ := e2.Step(x2, l2, 0.05)
		if loss1 != loss2 {
			t.Fatalf("step %d: lossless encodings changed the loss: %v vs %v", i, loss1, loss2)
		}
	}
	for _, n := range g1.Nodes {
		p1 := e1.Params(n)
		p2 := e2.Params(g2.Lookup(n.Name))
		for j := range p1 {
			if !p1[j].Equal(p2[j]) {
				t.Fatalf("%s param %d diverged under lossless encodings", n.Name, j)
			}
		}
	}
}

func TestReLUSparsityGrowsDuringTraining(t *testing.T) {
	// Figure 14's mechanism: sparsity starts near 50% (random weights,
	// symmetric activations) and grows as training shapes the features.
	g := networks.TinyVGG(8, 4)
	e := NewExecutor(g, Options{Seed: 17})
	d := NewDataset(4, 3, 32, 0.3, 18)
	recs := Run(e, d, RunConfig{
		Minibatch: 8, Steps: 40, LR: 0.01, ProbeEvery: 10, ProbeSparsity: true,
	})
	first := AverageSparsity(recs[0])
	last := AverageSparsity(recs[len(recs)-1])
	if first < 0.2 || first > 0.8 {
		t.Fatalf("initial sparsity %v implausible", first)
	}
	if last <= first-0.05 {
		t.Fatalf("sparsity should not collapse: %v -> %v", first, last)
	}
	// The measured-sparsity adapter exposes per-layer values.
	model := MeasuredSparsity(recs[len(recs)-1])
	found := false
	for _, n := range g.Nodes {
		if n.Kind() == layers.ReLU && model(n) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("measured sparsity model returned nothing")
	}
}

func TestDatasetBalanceAndDeterminism(t *testing.T) {
	d1 := NewDataset(4, 2, 8, 0.3, 5)
	d2 := NewDataset(4, 2, 8, 0.3, 5)
	x1, l1 := d1.Batch(64)
	x2, l2 := d2.Batch(64)
	if !x1.Equal(x2) {
		t.Fatal("same seed must give same data")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("labels must match")
		}
	}
	counts := map[int]int{}
	for _, l := range l1 {
		counts[l]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] == 0 {
			t.Fatalf("class %d never sampled", c)
		}
	}
}

func TestExecutorPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reduced mode without format must panic")
		}
	}()
	NewExecutor(smallNet(2), Options{Mode: DelayedReduced})
}

func TestExecutorPanicsOnWrongInputShape(t *testing.T) {
	e := NewExecutor(smallNet(2), Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input shape must panic")
		}
	}()
	e.Forward(tensor.New(2, 3, 8, 8), nil, true)
}

func TestPrecisionModeNames(t *testing.T) {
	if FullPrecision.String() != "Baseline-FP32" ||
		AllReduced.String() != "All-Reduced" ||
		DelayedReduced.String() != "Gist-DPR" {
		t.Error("mode names wrong")
	}
}

func TestBatchNormResidualNetworkTrains(t *testing.T) {
	// Exercise Add/BatchNorm backward paths end to end with a 2-block
	// CIFAR ResNet.
	g := networks.ResNetCIFAR(2, 8) // n=1: 6 convs + stem + projections
	e := NewExecutor(g, Options{Seed: 31})
	d := NewDataset(4, 3, 32, 0.3, 32)
	recs := Run(e, d, RunConfig{Minibatch: 2, Steps: 12, LR: 0.02, ProbeEvery: 4})
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	last := recs[len(recs)-1]
	if math.IsNaN(last.Loss) || math.IsInf(last.Loss, 0) {
		t.Fatal("ResNet training produced non-finite loss")
	}
	if last.Loss >= recs[0].Loss*1.2 {
		t.Fatalf("ResNet loss should not blow up: %v -> %v", recs[0].Loss, last.Loss)
	}
}
