package train

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/floatenc"
	"gist/internal/parallel"
)

// withCodec installs a default codec for the duration of a test.
func withCodec(t *testing.T, c encoding.Codec) {
	t.Helper()
	encoding.SetDefaultCodec(c)
	t.Cleanup(func() { encoding.SetDefaultCodec(encoding.Codec{}) })
}

// TestParallelBackwardMatchesSerial is the executor-level determinism
// property: encoded training with async decode and chunk-parallel codecs
// produces step-for-step identical losses and bit-identical parameters to
// the serial pipeline, for every worker count.
func TestParallelBackwardMatchesSerial(t *testing.T) {
	const steps, mb = 6, 8
	run := func(workers int) (losses []float64, exec *Executor) {
		// Small chunks so the tiny net's 2048-element feature maps really
		// split into multiple chunks.
		encoding.SetDefaultCodec(encoding.Codec{Pool: parallel.NewPool(workers), ChunkElems: 768})
		g := smallNet(mb)
		a := encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))
		e := NewExecutor(g, Options{Seed: 33, Encodings: a, Integrity: true})
		d := NewDataset(4, 2, 8, 0.3, 34)
		for i := 0; i < steps; i++ {
			x, l := d.Batch(mb)
			loss, _ := e.Step(x, l, 0.05)
			losses = append(losses, loss)
		}
		return losses, e
	}
	t.Cleanup(func() { encoding.SetDefaultCodec(encoding.Codec{}) })

	serialLosses, serialExec := run(1)
	for _, w := range []int{2, 4} {
		losses, exec := run(w)
		for i := range serialLosses {
			if losses[i] != serialLosses[i] {
				t.Fatalf("workers=%d: step %d loss %v, serial %v", w, i, losses[i], serialLosses[i])
			}
		}
		for _, n := range serialExec.G.Nodes {
			ps, qs := serialExec.params[n.ID], exec.params[n.ID]
			for j := range ps {
				if !ps[j].Equal(qs[j]) {
					t.Fatalf("workers=%d: %s param %d diverged from serial", w, n.Name, j)
				}
			}
		}
	}
}

// TestConcurrentExecutorsShareOnePool trains several executors at once on
// the shared worker pool — the -race workload for the decode futures, the
// pool semaphore and the codec kernels — and checks same-seed executors
// stay bit-identical despite contending for the same workers.
func TestConcurrentExecutorsShareOnePool(t *testing.T) {
	parallel.SetSharedWorkers(4)
	t.Cleanup(func() { parallel.SetSharedWorkers(0) })
	withCodec(t, encoding.Codec{ChunkElems: 768}) // nil Pool → shared

	const replicas, steps, mb = 4, 4, 8
	execs := make([]*Executor, replicas)
	var wg sync.WaitGroup
	errs := make(chan error, replicas)
	for r := 0; r < replicas; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			g := smallNet(mb)
			a := encoding.Analyze(g, encoding.Lossless())
			e := NewExecutor(g, Options{Seed: 55, Encodings: a, Integrity: true})
			d := NewDataset(4, 2, 8, 0.3, 56)
			for i := 0; i < steps; i++ {
				x, l := d.Batch(mb)
				if _, _, err := e.TryStep(x, l, 0.05); err != nil {
					errs <- fmt.Errorf("replica %d step %d: %w", r, i, err)
					return
				}
			}
			execs[r] = e
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for r := 1; r < replicas; r++ {
		for _, n := range execs[0].G.Nodes {
			ps, qs := execs[0].params[n.ID], execs[r].params[n.ID]
			for j := range ps {
				if !ps[j].Equal(qs[j]) {
					t.Fatalf("replica %d: %s param %d diverged from replica 0", r, n.Name, j)
				}
			}
		}
	}
}

// TestAsyncDecodeGating pins when the overlap path may engage: never with
// fault injection active (the injector's corrupt-then-decode attribution
// needs the synchronous order), never without encodings, never on a
// one-worker codec.
func TestAsyncDecodeGating(t *testing.T) {
	g := smallNet(2)
	a := encoding.Analyze(g, encoding.Lossless())

	withCodec(t, encoding.Codec{Pool: parallel.NewPool(4)})
	if e := NewExecutor(g, Options{Seed: 1, Encodings: a}); !e.asyncDecode() {
		t.Fatal("async decode off with encodings and a 4-worker codec")
	}
	if e := NewExecutor(g, Options{Seed: 1}); e.asyncDecode() {
		t.Fatal("async decode on without encodings")
	}
	inj := faults.New(faults.Config{Seed: 2, BitFlipRate: 0.5})
	if e := NewExecutor(g, Options{Seed: 1, Encodings: a, Faults: inj}); e.asyncDecode() {
		t.Fatal("async decode on under fault injection")
	}

	encoding.SetDefaultCodec(encoding.Codec{Pool: parallel.NewPool(1)})
	if e := NewExecutor(g, Options{Seed: 1, Encodings: a}); e.asyncDecode() {
		t.Fatal("async decode on with a serial codec")
	}
}

// TestFailBackwardZeroesGradients pins the TryStep contract for
// mid-backward stash failures: every accumulated gradient is zeroed and
// corruption is counted before the error surfaces.
func TestFailBackwardZeroesGradients(t *testing.T) {
	e := NewExecutor(smallNet(2), Options{Seed: 3})
	for _, gs := range e.grads {
		for _, g := range gs {
			g.Fill(1)
		}
	}
	wrapped := fmt.Errorf("train: stash %q: %w", "conv1", encoding.ErrCorruptStash)
	if err := e.failBackward(wrapped); !errors.Is(err, encoding.ErrCorruptStash) {
		t.Fatalf("failBackward did not propagate the error: %v", err)
	}
	if e.Robust.CRCFailures != 1 {
		t.Fatalf("CRCFailures = %d, want 1", e.Robust.CRCFailures)
	}
	for _, gs := range e.grads {
		for _, g := range gs {
			for _, v := range g.Data {
				if v != 0 {
					t.Fatal("gradient not zeroed after mid-backward failure")
				}
			}
		}
	}
}

// TestFaultInjectionStillDetectedWithParallelCodec re-runs a PR 1-style
// corruption scenario on top of the chunked codec: the injector flips a
// bit, the (synchronous, attribution-preserving) decode path catches it,
// and the step reports a CRC failure without applying an update.
func TestFaultInjectionStillDetectedWithParallelCodec(t *testing.T) {
	withCodec(t, encoding.Codec{Pool: parallel.NewPool(4), ChunkElems: 768})
	g := smallNet(4)
	a := encoding.Analyze(g, encoding.Lossless())
	inj := faults.New(faults.Config{Seed: 5, BitFlipRate: 1})
	e := NewExecutor(g, Options{Seed: 6, Encodings: a, Faults: inj})
	d := NewDataset(4, 2, 8, 0.3, 7)
	x, l := d.Batch(4)
	_, _, err := e.TryStep(x, l, 0.05)
	if err == nil {
		t.Fatal("injected corruption went undetected")
	}
	if !errors.Is(err, encoding.ErrCorruptStash) {
		t.Fatalf("error %v does not wrap ErrCorruptStash", err)
	}
	if e.Robust.CRCFailures == 0 {
		t.Fatal("CRC failure not counted")
	}
	// The chunked seal should also localize which chunk the flip hit.
	if _, ok := encoding.CorruptedChunk(err); !ok {
		t.Fatalf("no chunk localization in %v", err)
	}
}
