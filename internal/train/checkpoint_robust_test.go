package train

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gist/internal/faults"
)

// trainedExecutor returns a small executor with a few steps of training
// behind it, so checkpoints carry non-initial parameters.
func trainedExecutor(t *testing.T, seed uint64) *Executor {
	t.Helper()
	e := NewExecutor(smallNet(4), Options{Seed: seed})
	d := NewDataset(4, 2, 8, 0.3, seed+1)
	for i := 0; i < 3; i++ {
		x, l := d.Batch(4)
		e.Step(x, l, 0.05)
	}
	return e
}

func checkpointBytes(t *testing.T, e *Executor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := e.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointV2RoundTripAndVerify(t *testing.T) {
	e := trainedExecutor(t, 3)
	data := checkpointBytes(t, e)
	if err := VerifyCheckpoint(data); err != nil {
		t.Fatalf("fresh checkpoint fails verify: %v", err)
	}
	e2 := NewExecutor(smallNet(4), Options{Seed: 77})
	if err := e2.LoadCheckpoint(bytes.NewReader(data)); err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, n := range e.G.Nodes {
		p1, p2 := e.Params(n), e2.Params(e2.G.Lookup(n.Name))
		for j := range p1 {
			if !p1[j].Equal(p2[j]) {
				t.Fatalf("%s param %d not restored", n.Name, j)
			}
		}
	}
}

func TestCheckpointEveryByteFlipIsDetected(t *testing.T) {
	e := trainedExecutor(t, 3)
	data := checkpointBytes(t, e)
	// Flipping any single byte must fail the CRC (or the magic/version
	// checks for the header bytes) — never load and never panic.
	stride := len(data)/97 + 1
	for off := 0; off < len(data); off += stride {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0xff
		if err := VerifyCheckpoint(bad); err == nil {
			t.Fatalf("flip at offset %d passed verification", off)
		}
		e2 := NewExecutor(smallNet(4), Options{Seed: 1})
		if err := e2.LoadCheckpoint(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flip at offset %d loaded", off)
		}
	}
}

func TestCheckpointTruncationIsDetected(t *testing.T) {
	e := trainedExecutor(t, 3)
	data := checkpointBytes(t, e)
	e2 := NewExecutor(smallNet(4), Options{Seed: 1})
	for _, n := range []int{0, 1, 4, 8, 12, len(data) / 2, len(data) - 1} {
		if err := e2.LoadCheckpoint(bytes.NewReader(data[:n])); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorruptCheckpoint", n, err)
		}
	}
}

func TestCheckpointFutureVersionRejected(t *testing.T) {
	e := trainedExecutor(t, 3)
	data := checkpointBytes(t, e)
	data[4] = 99 // version field
	// Recompute the CRC so only the version is wrong.
	fixCRC(data)
	e2 := NewExecutor(smallNet(4), Options{Seed: 1})
	if err := e2.LoadCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrCheckpointVersion) {
		t.Fatalf("err = %v, want ErrCheckpointVersion", err)
	}
}

func TestCheckpointGraphMismatchLeavesExecutorUntouched(t *testing.T) {
	e := trainedExecutor(t, 3)
	data := checkpointBytes(t, e)
	// A different architecture must reject the checkpoint before mutating
	// anything.
	other := NewExecutor(bnNet(4), Options{Seed: 5})
	before := paramsOf(other)
	if err := other.LoadCheckpoint(bytes.NewReader(data)); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
	if got := paramsOf(other); !equalParams(before, got) {
		t.Fatal("failed load mutated executor state")
	}
}

func equalParams(a, b map[string][][]float32) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv := b[k]
		if len(av) != len(bv) {
			return false
		}
		for i := range av {
			if len(av[i]) != len(bv[i]) {
				return false
			}
			for j := range av[i] {
				if av[i][j] != bv[i][j] {
					return false
				}
			}
		}
	}
	return true
}

// fixCRC rewrites the v2 trailer to match the (possibly modified) body.
func fixCRC(data []byte) {
	crc := crc32.ChecksumIEEE(data[:len(data)-4])
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc)
}

func TestAtomicSaveTornWriteKeepsPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")

	e := trainedExecutor(t, 3)
	if err := e.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	goodParams := paramsOf(e)

	// Train further, then tear the next save mid-stream.
	d := NewDataset(4, 2, 8, 0.3, 50)
	x, l := d.Batch(4)
	e.Step(x, l, 0.05)
	inj := faults.New(faults.Config{Seed: 1, CheckpointTruncateAt: 64})
	err := e.SaveCheckpointFileVia(path, inj.WrapWriter)
	if err == nil {
		t.Fatal("torn write must not be promoted")
	}
	if !strings.Contains(err.Error(), "refusing to promote") {
		t.Fatalf("unexpected error: %v", err)
	}
	if inj.Counts()[faults.CheckpointTruncate] != 1 {
		t.Fatal("injector did not record the tear")
	}

	// The previous checkpoint must be fully intact and loadable.
	e2 := NewExecutor(smallNet(4), Options{Seed: 9})
	if err := e2.LoadCheckpointFile(path); err != nil {
		t.Fatalf("previous checkpoint damaged by torn write: %v", err)
	}
	if got := paramsOf(e2); !equalParams(goodParams, got) {
		t.Fatal("previous checkpoint content changed")
	}
	// No temp-file litter.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("leftover temp files: %v", ents)
	}
}

func TestAtomicSaveFlippedByteKeepsPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	e := trainedExecutor(t, 3)
	if err := e.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Config{Seed: 1, CheckpointFlipByte: 40})
	if err := e.SaveCheckpointFileVia(path, inj.WrapWriter); err == nil {
		t.Fatal("corrupted stream must not be promoted")
	}
	e2 := NewExecutor(smallNet(4), Options{Seed: 9})
	if err := e2.LoadCheckpointFile(path); err != nil {
		t.Fatalf("previous checkpoint damaged: %v", err)
	}
}

// FuzzReadCheckpoint asserts the parser's contract: arbitrary bytes never
// panic the loader — every malformed input maps to a typed error.
func FuzzReadCheckpoint(f *testing.F) {
	e := NewExecutor(smallNet(4), Options{Seed: 3})
	var buf bytes.Buffer
	if err := e.SaveCheckpoint(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x53, 0x49, 0x67}) // v1 magic, empty body
	f.Add([]byte{0x55, 0x53, 0x49, 0x67, 2, 0, 0, 0})
	f.Add(valid[:len(valid)/2])
	mangled := append([]byte(nil), valid...)
	mangled[20] ^= 0xff
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewExecutor(smallNet(4), Options{Seed: 3})
		err := e.LoadCheckpoint(bytes.NewReader(data))
		if err != nil &&
			!errors.Is(err, ErrCorruptCheckpoint) &&
			!errors.Is(err, ErrCheckpointVersion) &&
			!errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("untyped load error: %v", err)
		}
	})
}
