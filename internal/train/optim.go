package train

import (
	"fmt"
	"math"

	"gist/internal/layers"
	"gist/internal/tensor"
)

// Optimizer updates parameters from accumulated gradients. The executor's
// built-in momentum SGD remains the default; Adam is provided for the
// extension experiments and example applications.
type Optimizer interface {
	// Update applies one step to params given grads (same shapes), then
	// the caller zeroes the gradients.
	Update(params, grads []*tensor.Tensor)
}

// SGDOpt is momentum SGD with weight decay, equivalent to Executor.SGD.
type SGDOpt struct {
	LR, Momentum, WeightDecay float32
	velocity                  map[*tensor.Tensor]*tensor.Tensor
}

// NewSGD returns a momentum-SGD optimizer.
func NewSGD(lr, momentum, weightDecay float32) *SGDOpt {
	return &SGDOpt{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: map[*tensor.Tensor]*tensor.Tensor{}}
}

// Update applies one momentum-SGD step.
func (o *SGDOpt) Update(params, grads []*tensor.Tensor) {
	for i, p := range params {
		g := grads[i]
		v := o.velocity[p]
		if v == nil {
			v = tensor.New(p.Shape...)
			o.velocity[p] = v
		}
		for k := range p.Data {
			grad := g.Data[k] + o.WeightDecay*p.Data[k]
			v.Data[k] = o.Momentum*v.Data[k] + grad
			p.Data[k] -= o.LR * v.Data[k]
		}
	}
}

// AdamOpt is the Adam optimizer (Kingma & Ba) with bias correction.
type AdamOpt struct {
	LR, Beta1, Beta2, Eps float32
	step                  int
	m, v                  map[*tensor.Tensor]*tensor.Tensor
}

// NewAdam returns an Adam optimizer with the standard defaults for the
// unset fields.
func NewAdam(lr float32) *AdamOpt {
	return &AdamOpt{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*tensor.Tensor]*tensor.Tensor{},
		v: map[*tensor.Tensor]*tensor.Tensor{},
	}
}

// Update applies one Adam step.
func (o *AdamOpt) Update(params, grads []*tensor.Tensor) {
	o.step++
	bc1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.step)))
	bc2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.step)))
	for i, p := range params {
		g := grads[i]
		m, v := o.m[p], o.v[p]
		if m == nil {
			m = tensor.New(p.Shape...)
			v = tensor.New(p.Shape...)
			o.m[p], o.v[p] = m, v
		}
		for k := range p.Data {
			gk := g.Data[k]
			m.Data[k] = o.Beta1*m.Data[k] + (1-o.Beta1)*gk
			v.Data[k] = o.Beta2*v.Data[k] + (1-o.Beta2)*gk*gk
			mHat := m.Data[k] / bc1
			vHat := v.Data[k] / bc2
			p.Data[k] -= o.LR * mHat / (float32(math.Sqrt(float64(vHat))) + o.Eps)
		}
	}
}

// StepWith runs forward, backward and an update with the given optimizer
// (gradient clipping included), returning loss and top-1 errors. Like
// Step, it panics on stash-pipeline errors, which only fault-injected runs
// can produce.
func (e *Executor) StepWith(input *tensor.Tensor, labels []int, opt Optimizer) (loss float64, errors int) {
	e.Forward(input, labels, true)
	loss, errors = e.lossOf(labels)
	if err := e.Backward(); err != nil {
		panic(fmt.Sprintf("train: StepWith under fault injection: %v", err))
	}
	e.ClipGradNorm(5)
	for id, ps := range e.params {
		opt.Update(ps, e.grads[id])
		for _, g := range e.grads[id] {
			g.Zero()
		}
	}
	return loss, errors
}

// Eval runs an inference-mode forward pass (dropout off, batch-norm
// running statistics) and returns the loss and top-1 error count on the
// given labeled minibatch.
func (e *Executor) Eval(input *tensor.Tensor, labels []int) (loss float64, errors int) {
	e.Forward(input, labels, false)
	return e.lossOf(labels)
}

// lossOf reads the loss node's probabilities from the latest forward pass.
func (e *Executor) lossOf(labels []int) (float64, int) {
	lossNode := e.lossNode()
	sm := lossNode.Op.(*layers.SoftmaxXentOp)
	return sm.Loss(e.outs[lossNode.ID], labels)
}

// EvalAccuracy evaluates the executor over n minibatches from the dataset
// and returns the error rate — a held-out validation measurement for the
// example applications.
func (e *Executor) EvalAccuracy(d *Dataset, minibatch, n int) float64 {
	errs, total := 0, 0
	for i := 0; i < n; i++ {
		x, labels := d.Batch(minibatch)
		_, batchErrs := e.Eval(x, labels)
		errs += batchErrs
		total += minibatch
	}
	return float64(errs) / float64(total)
}
