package train

// The data-parallel replica engine. A ReplicaGroup runs N executor
// replicas of one graph and splits every training step's minibatch across
// them, merging the shard gradients with the deterministic tree reduce in
// internal/reduce and applying the identical update on every replica.
//
// The determinism unit is the micro-shard, not the replica: a group with S
// shards always cuts the step's minibatch into the same S fixed pieces
// (shard s = rows [s*b, (s+1)*b) at the graph's batch size b), runs each
// shard as an independent forward+backward, and merges the S shard
// gradients in canonical shard order. Replicas only decide which executor
// runs which shard (round-robin: replica r takes shards r, r+N, ...), so
// the merged gradient — and therefore every weight after the step — is
// byte-identical at every replica count and every worker count, as long as
// the shard count is fixed. Per-shard dropout reseeds from (seed, step,
// shard) for the same reason.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gist/internal/bufpool"
	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/graph"
	"gist/internal/reduce"
	"gist/internal/telemetry"
	"gist/internal/tensor"
)

// ErrStepAbandoned marks a replica step that exhausted its per-shard retry
// budget: every gradient was zeroed, no parameter update was applied, and
// the caller may simply issue the next step.
var ErrStepAbandoned = errors.New("train: replica step abandoned")

// ReplicaConfig sizes a ReplicaGroup.
type ReplicaConfig struct {
	// Replicas is the number of concurrent executor replicas (<=1 runs the
	// single-executor path inline). Clamped to Shards: an executor with no
	// shard assigned would sit idle.
	Replicas int
	// Shards is the number of micro-shards each step's minibatch is cut
	// into; the group consumes Shards x graph-batch rows per step. 0
	// defaults to Replicas. Results are bit-identical across replica and
	// worker counts only at a fixed shard count — pin Shards when comparing
	// runs at different Replicas.
	Shards int
	// MaxRetries is the per-shard retry budget for injected stash faults;
	// past it the whole step is abandoned with zeroed gradients.
	MaxRetries int
}

// Worker phases (sent over each replica worker's command channel).
const (
	phaseCompute = iota + 1
	phaseUpdate
)

// ReplicaGroup is N data-parallel executor replicas stepping in lockstep.
// Replica 0 owns the caller's graph; the others own clones (fresh operator
// state, identically seeded weights). All replicas share the group's
// buffer pool, codec, telemetry sink and fault injector. Not safe for
// concurrent Step calls; each group is one training loop.
type ReplicaGroup struct {
	cfg   ReplicaConfig
	execs []*Executor
	seed  uint64
	pool  *bufpool.Pool
	inj   *faults.Injector

	graphBatch int // rows per shard (the graph input's batch dimension)
	shardElems int // input elements per shard
	groupBatch int // rows per group step = Shards * graphBatch

	// Persistent per-shard input views: Data re-points into the step's
	// input tensor, so sharding allocates nothing.
	shardX []*tensor.Tensor
	// Per-replica persistent label buffers: each executor always sees the
	// same []int backing array, so the softmax layer's label re-boxing
	// (an allocation) never triggers in steady state.
	labelBuf [][]int

	gradElems int
	gradBufs  [][]float32 // per-shard flat gradients; pooled, or persistent when unpooled
	merger    *reduce.Merger

	shardLoss []float64
	shardErrs []int
	shardFail []error

	labels []int
	lr     float32
	step   int

	cmds      []chan int
	wg        sync.WaitGroup
	closeOnce sync.Once

	// ctx, when non-nil, is polled before every shard attempt so a
	// cancelled or deadline-expired group step aborts within one shard's
	// latency without applying a parameter update. Bound by SetContext.
	ctx context.Context

	tel         *telemetry.Sink
	reduceNS    *telemetry.Histogram // replica.reduce.ns
	reduceBytes *telemetry.Counter   // replica.reduce.bytes
	stragglerNS *telemetry.Gauge     // replica.straggler.ns
	retries     *telemetry.Counter   // replica.shard.retries
	failures    *telemetry.Counter   // replica.shard.failures
	abandons    *telemetry.Counter   // replica.steps.abandoned
	busyNS      []int64              // per-replica compute time this step (sink armed only)
}

// NewReplicaGroup builds a group of cfg.Replicas executors over g with the
// given executor options. Replicas beyond the first run on clones of g so
// mutable operator state (batch-norm running statistics) is never shared;
// when opts.Encodings is set, each clone gets its own analysis of the same
// configuration, which assigns identical encodings (same IDs, shapes and
// techniques). All replicas are seeded identically, so their weights start
// — and, fed identical merged gradients, remain — bit-equal.
func NewReplicaGroup(g *graph.Graph, opts Options, cfg ReplicaConfig) *ReplicaGroup {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Shards < 1 {
		cfg.Shards = cfg.Replicas
	}
	if cfg.Replicas > cfg.Shards {
		cfg.Replicas = cfg.Shards
	}

	rg := &ReplicaGroup{
		cfg:  cfg,
		seed: opts.Seed,
		pool: opts.Pool,
		inj:  opts.Faults,
		tel:  opts.Telemetry,
	}
	if opts.StashBudget > 0 && cfg.Replicas > 1 {
		// Split the group's stash budget statically across the replicas'
		// stores: a fixed per-replica share keeps eviction a pure function
		// of each replica's own liveness (a dynamically shared pot would
		// make placement depend on cross-replica timing). The shares sum to
		// at most the configured budget.
		if opts.StashBudget /= int64(cfg.Replicas); opts.StashBudget < 1 {
			opts.StashBudget = 1
		}
	}
	rg.execs = make([]*Executor, cfg.Replicas)
	rg.execs[0] = NewExecutor(g, opts)
	for r := 1; r < cfg.Replicas; r++ {
		ropts := opts
		gr := g.Clone()
		if opts.Encodings != nil {
			ropts.Encodings = encoding.Analyze(gr, opts.Encodings.Config)
		}
		rg.execs[r] = NewExecutor(gr, ropts)
	}

	in := g.InputNodes()
	if len(in) != 1 {
		panic(fmt.Sprintf("train: replica group wants exactly 1 input node, got %d", len(in)))
	}
	rg.graphBatch = in[0].OutShape[0]
	rg.shardElems = in[0].OutShape.NumElements()
	rg.groupBatch = cfg.Shards * rg.graphBatch

	rg.shardX = make([]*tensor.Tensor, cfg.Shards)
	for s := range rg.shardX {
		rg.shardX[s] = &tensor.Tensor{Shape: in[0].OutShape.Clone()}
	}
	rg.labelBuf = make([][]int, cfg.Replicas)
	for r := range rg.labelBuf {
		rg.labelBuf[r] = make([]int, rg.graphBatch)
	}

	for _, n := range g.Nodes {
		for _, sh := range n.ParamShapes {
			rg.gradElems += sh.NumElements()
		}
	}
	rg.gradBufs = make([][]float32, cfg.Shards)
	if rg.pool == nil {
		for s := range rg.gradBufs {
			rg.gradBufs[s] = make([]float32, rg.gradElems)
		}
	} else if rg.gradElems > 0 {
		// Self-prewarm: the merge holds all S shard buffers at once, so
		// seed S distinct free-list entries of that class.
		warm := make([]*tensor.Tensor, cfg.Shards)
		for s := range warm {
			warm[s] = rg.pool.Get(rg.gradElems)
		}
		for _, t := range warm {
			rg.pool.Recycle(t)
		}
	}
	// The merge runs on the executor's codec worker pool — the same budget
	// the encode/decode chunks share.
	rg.merger = reduce.NewMerger(rg.execs[0].codec().WorkerPool(), 0)

	rg.shardLoss = make([]float64, cfg.Shards)
	rg.shardErrs = make([]int, cfg.Shards)
	rg.shardFail = make([]error, cfg.Shards)

	rg.reduceNS = rg.tel.Histogram("replica.reduce.ns")
	rg.reduceBytes = rg.tel.Counter("replica.reduce.bytes")
	rg.stragglerNS = rg.tel.Gauge("replica.straggler.ns")
	rg.retries = rg.tel.Counter("replica.shard.retries")
	rg.failures = rg.tel.Counter("replica.shard.failures")
	rg.abandons = rg.tel.Counter("replica.steps.abandoned")
	rg.busyNS = make([]int64, cfg.Replicas)

	if cfg.Replicas > 1 {
		rg.cmds = make([]chan int, cfg.Replicas)
		for r := range rg.cmds {
			rg.cmds[r] = make(chan int)
			go rg.worker(r)
		}
	}
	return rg
}

// worker is replica r's persistent goroutine: it parks on the command
// channel between phases, so steady-state steps spawn nothing.
func (rg *ReplicaGroup) worker(r int) {
	for ph := range rg.cmds[r] {
		switch ph {
		case phaseCompute:
			rg.computeReplica(r)
		case phaseUpdate:
			rg.updateReplica(r)
		}
		rg.wg.Done()
	}
}

// runPhase drives every replica through one phase and waits for all of
// them — the step's barrier points.
func (rg *ReplicaGroup) runPhase(ph int) {
	if len(rg.cmds) == 0 {
		if ph == phaseCompute {
			rg.computeReplica(0)
		} else {
			rg.updateReplica(0)
		}
		return
	}
	rg.wg.Add(len(rg.cmds))
	for _, c := range rg.cmds {
		c <- ph
	}
	rg.wg.Wait()
}

// shardSeed mixes (seed, step, shard) into the dropout RNG state for one
// shard attempt (splitmix64 finalizer). Making the stream a pure function
// of step and shard — never of which replica ran the shard or what ran
// before it — keeps stochastic layers bit-identical across replica counts
// and across retries.
func shardSeed(seed uint64, step, shard int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(step+1) + 0x632be59bd9b4e019*uint64(shard+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// computeReplica runs replica r's round-robin share of the step's shards.
func (rg *ReplicaGroup) computeReplica(r int) {
	var t0 time.Time
	if rg.tel != nil {
		t0 = time.Now()
	}
	for s := r; s < rg.cfg.Shards; s += len(rg.execs) {
		rg.runShard(r, s)
	}
	if rg.tel != nil {
		rg.busyNS[r] = time.Since(t0).Nanoseconds()
	}
}

// runShard runs one micro-shard's forward+backward on replica r, retrying
// injected stash faults up to the budget. Each attempt reseeds the RNG and
// starts from zeroed gradients (Backward's failure path zeroes them), so a
// successful retry is bit-identical to a never-failed attempt. The shard's
// gradient is exported flat (graph-node order) and the executor's
// accumulators are re-zeroed for the replica's next shard.
func (rg *ReplicaGroup) runShard(r, s int) {
	e := rg.execs[r]
	lab := rg.labelBuf[r]
	copy(lab, rg.labels[s*rg.graphBatch:(s+1)*rg.graphBatch])
	for attempt := 0; ; attempt++ {
		if err := rg.ctxErr(); err != nil {
			// Cancellation between shards: this shard never ran, so its
			// gradient buffer stays zero and TryStep will refuse the
			// update. Remaining shards observe the same cancellation.
			rg.shardFail[s] = err
			return
		}
		e.rng.SetState(shardSeed(rg.seed, rg.step, s))
		e.Forward(rg.shardX[s], lab, true)
		loss, errs := e.lossOf(lab)
		rg.shardLoss[s], rg.shardErrs[s] = loss, errs
		err := e.Backward()
		if err == nil {
			rg.shardFail[s] = nil
			e.exportGrads(rg.gradBufs[s])
			return
		}
		if attempt >= rg.cfg.MaxRetries {
			rg.shardFail[s] = err
			rg.failures.Inc()
			return
		}
		rg.retries.Inc()
	}
}

// updateReplica applies the identical merged-gradient update on replica r.
// Every replica imports the same bytes and runs the same deterministic
// clip+SGD over identical parameters and momenta, so the replicas stay in
// bitwise lockstep without ever copying weights.
func (rg *ReplicaGroup) updateReplica(r int) {
	e := rg.execs[r]
	e.importGrads(rg.gradBufs[0])
	e.ClipGradNorm(5)
	e.SGD(rg.lr, 0.9, 1e-4)
}

// exportGrads copies every parameter gradient, in graph-node order, into
// dst, then zeroes the accumulators so the replica's next shard starts
// clean (backward accumulates; the single-executor path relies on SGD for
// this zeroing).
func (e *Executor) exportGrads(dst []float32) {
	off := 0
	for _, n := range e.G.Nodes {
		for _, g := range e.grads[n.ID] {
			off += copy(dst[off:], g.Data)
			g.Zero()
		}
	}
}

// importGrads loads a flat gradient vector (graph-node order) into the
// executor's accumulators.
func (e *Executor) importGrads(src []float32) {
	off := 0
	for _, n := range e.G.Nodes {
		for _, g := range e.grads[n.ID] {
			copy(g.Data, src[off:off+len(g.Data)])
			off += len(g.Data)
		}
	}
}

// SetContext binds a context to the group's step loop. TryStep polls it at
// step entry and before every shard attempt, so cancellation or deadline
// expiry aborts the step within one shard's latency: the merge and update
// phases are skipped, every pooled shard-gradient buffer is recycled, and
// the error wraps the context's error (test with errors.Is). A nil ctx
// unbinds. Not safe to call concurrently with a step in flight.
func (rg *ReplicaGroup) SetContext(ctx context.Context) { rg.ctx = ctx }

// ctxErr reports the bound context's cancellation state (nil when unbound).
func (rg *ReplicaGroup) ctxErr() error {
	if rg.ctx == nil {
		return nil
	}
	return rg.ctx.Err()
}

// GroupBatch returns the rows one group step consumes: Shards x the
// graph's batch size. Step inputs must carry exactly this many rows.
func (rg *ReplicaGroup) GroupBatch() int { return rg.groupBatch }

// Replicas returns the executor replica count after clamping.
func (rg *ReplicaGroup) Replicas() int { return len(rg.execs) }

// Shards returns the micro-shard count — the group's determinism unit.
func (rg *ReplicaGroup) Shards() int { return rg.cfg.Shards }

// Executor returns replica 0's executor (the one owning the caller's
// graph), for checkpoints and parameter inspection.
func (rg *ReplicaGroup) Executor() *Executor { return rg.execs[0] }

// Executors returns every replica's executor in replica order. Resuming a
// checkpointed group loads the same checkpoint into each one, so the
// replicas stay bit-equal.
func (rg *ReplicaGroup) Executors() []*Executor { return rg.execs }

// SetResumeStep aligns the group's internal step counter (the per-shard
// dropout reseed input and the fault injector's step clock) and every
// replica's resume count to n completed steps, so a resumed group
// replays the exact RNG streams of an uninterrupted run.
func (rg *ReplicaGroup) SetResumeStep(n int) {
	rg.step = n
	for _, e := range rg.execs {
		e.SetResumeStep(n)
	}
}

// ResumeStep returns the completed-step count (set by SetResumeStep or a
// v3 checkpoint load on replica 0).
func (rg *ReplicaGroup) ResumeStep() int { return rg.execs[0].ResumeStep() }

// Telemetry returns the sink the group reports to (nil when none).
func (rg *ReplicaGroup) Telemetry() *telemetry.Sink { return rg.tel }

// SetSparsityProbe arms per-step ReLU sparsity capture on every replica
// (ReLUSparsities reports replica 0's view — every replica sees the same
// distributions in expectation, and probe consumers plot trends).
func (rg *ReplicaGroup) SetSparsityProbe(on bool) {
	for _, e := range rg.execs {
		e.SetSparsityProbe(on)
	}
}

// ReLUSparsities returns the latest ReLU sparsity capture from the
// replica that computed the final shard. A probe capture is "the latest
// forward pass", and a single executor driven over S shards reports
// shard S-1 — so the group reads the replica that ran that same shard,
// keeping probe output independent of the replica count.
func (rg *ReplicaGroup) ReLUSparsities() map[string]float64 {
	return rg.execs[(rg.cfg.Shards-1)%rg.cfg.Replicas].ReLUSparsities()
}

// armShards re-points the persistent shard views at the step's input.
func (rg *ReplicaGroup) armShards(x *tensor.Tensor) {
	for s := range rg.shardX {
		rg.shardX[s].Data = x.Data[s*rg.shardElems : (s+1)*rg.shardElems]
	}
}

// TryStep runs one data-parallel training step over a Shards x graph-batch
// minibatch: shard forward/backward on the replicas, deterministic tree
// reduce of the shard gradients, identical clip+SGD on every replica. The
// returned loss is the mean over the step's shards (the same per-sample
// mean a single executor reports) and errs the summed top-1 errors.
//
// A non-nil error means the step was abandoned: some shard exhausted its
// retry budget against injected faults. All gradients are zero and no
// parameter update was applied; the error wraps ErrStepAbandoned and the
// shard's failure.
func (rg *ReplicaGroup) TryStep(x *tensor.Tensor, labels []int, lr float32) (loss float64, errs int, err error) {
	if len(x.Data) != rg.shardElems*rg.cfg.Shards {
		panic(fmt.Sprintf("train: replica step input has %d elements, want %d (batch %d)",
			len(x.Data), rg.shardElems*rg.cfg.Shards, rg.groupBatch))
	}
	if len(labels) != rg.groupBatch {
		panic(fmt.Sprintf("train: replica step got %d labels, want %d", len(labels), rg.groupBatch))
	}
	if cerr := rg.ctxErr(); cerr != nil {
		return 0, 0, fmt.Errorf("train: replica step not started: %w", cerr)
	}
	rg.step++
	rg.inj.BeginStep(rg.step)
	rg.armShards(x)
	rg.labels = labels
	rg.lr = lr
	if rg.pool != nil && rg.gradElems > 0 {
		for s := range rg.gradBufs {
			rg.gradBufs[s] = rg.pool.GetSlice(rg.gradElems)
		}
	}

	rg.runPhase(phaseCompute)

	var failed error
	for s := range rg.shardFail {
		loss += rg.shardLoss[s]
		errs += rg.shardErrs[s]
		if failed == nil && rg.shardFail[s] != nil {
			failed = rg.shardFail[s]
		}
	}
	loss /= float64(rg.cfg.Shards)
	if failed != nil {
		rg.recycleGradBufs(0)
		if errors.Is(failed, context.Canceled) || errors.Is(failed, context.DeadlineExceeded) {
			// Cancellation, not a fault: no update was applied and every
			// pooled shard buffer is back in the pool. Surface the context
			// error directly so callers can errors.Is on it.
			return loss, errs, fmt.Errorf("train: replica step canceled: %w", failed)
		}
		rg.abandons.Inc()
		return loss, errs, fmt.Errorf("%w: %w", ErrStepAbandoned, failed)
	}

	var t0 time.Time
	if rg.tel != nil {
		t0 = time.Now()
	}
	if err := rg.merger.Merge(rg.gradBufs, 1/float32(rg.cfg.Shards)); err != nil {
		// Unreachable by construction (equal-length persistent buffers);
		// fail loudly rather than training on garbage.
		panic("train: replica reduce: " + err.Error())
	}
	if rg.tel != nil {
		rg.reduceNS.Observe(time.Since(t0).Nanoseconds())
		rg.reduceBytes.Add(int64(rg.gradElems) * 4 * int64(rg.cfg.Shards))
		minB, maxB := rg.busyNS[0], rg.busyNS[0]
		for _, b := range rg.busyNS[1:] {
			minB = min(minB, b)
			maxB = max(maxB, b)
		}
		rg.stragglerNS.Set(maxB - minB)
	}
	// Shards 1..S-1 are dead at the reduce point; shard 0 carries the
	// merged gradient through the update phase.
	rg.recycleGradBufs(1)

	rg.runPhase(phaseUpdate)
	rg.recycleGradBufs(0)
	return loss, errs, nil
}

// recycleGradBufs returns pooled shard buffers from index lo up, keeping
// unpooled persistent buffers in place.
func (rg *ReplicaGroup) recycleGradBufs(lo int) {
	if rg.pool == nil || rg.gradElems == 0 {
		return
	}
	for s := lo; s < len(rg.gradBufs); s++ {
		if rg.gradBufs[s] != nil {
			rg.pool.RecycleSlice(rg.gradBufs[s])
			rg.gradBufs[s] = nil
		}
	}
}

// Step is TryStep for runs without fault injection, panicking on the
// abandon path exactly as Executor.Step does.
func (rg *ReplicaGroup) Step(x *tensor.Tensor, labels []int, lr float32) (loss float64, errors int) {
	loss, errors, err := rg.TryStep(x, labels, lr)
	if err != nil {
		panic(fmt.Sprintf("train: replica Step under fault injection must use TryStep: %v", err))
	}
	return loss, errors
}

// Eval runs an inference-mode forward over a group-batch minibatch on
// replica 0, shard by shard, returning the mean loss and summed top-1
// errors.
func (rg *ReplicaGroup) Eval(x *tensor.Tensor, labels []int) (loss float64, errors int) {
	if len(x.Data) != rg.shardElems*rg.cfg.Shards {
		panic(fmt.Sprintf("train: replica eval input has %d elements, want %d",
			len(x.Data), rg.shardElems*rg.cfg.Shards))
	}
	rg.armShards(x)
	for s := 0; s < rg.cfg.Shards; s++ {
		l, e := rg.execs[0].Eval(rg.shardX[s], labels[s*rg.graphBatch:(s+1)*rg.graphBatch])
		loss += l
		errors += e
	}
	return loss / float64(rg.cfg.Shards), errors
}

// Close shuts the replica workers down and promptly returns every pooled
// buffer the replicas still hold to the pool. Idempotent and safe to call
// from multiple goroutines concurrently — exactly one caller performs the
// shutdown, and a double Close never double-releases a pooled buffer. The
// group must not be stepped after (or concurrently with) Close.
func (rg *ReplicaGroup) Close() {
	rg.closeOnce.Do(func() {
		for _, c := range rg.cmds {
			close(c)
		}
		// Workers only run between runPhase barriers, so after the step
		// loop stops they are parked (or exiting) and each executor's
		// ledger is safe to sweep from here.
		for _, e := range rg.execs {
			e.ReleaseBuffers()
		}
	})
}
