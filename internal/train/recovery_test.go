package train

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/tensor"
)

// bnNet builds a small net with batch norm so snapshot/restore covers the
// running-statistics path too.
func bnNet(mb int) *graph.Graph {
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(mb, 2, 8, 8))
	c1 := g.MustAdd("conv1", layers.NewConv2D(4, 3, 1, 1), in)
	b1 := g.MustAdd("bn1", layers.NewBatchNorm(), c1)
	r1 := g.MustAdd("relu1", layers.NewReLU(), b1)
	fc := g.MustAdd("fc", layers.NewFC(4), r1)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	return g
}

func paramsOf(e *Executor) map[string][][]float32 {
	out := map[string][][]float32{}
	for _, n := range e.G.Nodes {
		for _, p := range e.Params(n) {
			out[n.Name] = append(out[n.Name], append([]float32(nil), p.Data...))
		}
		if bn, ok := n.Op.(*layers.BatchNormOp); ok {
			out[n.Name+"/mean"] = [][]float32{append([]float32(nil), bn.RunningMean...)}
			out[n.Name+"/var"] = [][]float32{append([]float32(nil), bn.RunningVar...)}
		}
	}
	return out
}

func TestSnapshotRestoreReplaysBitIdentically(t *testing.T) {
	g := bnNet(4)
	e := NewExecutor(g, Options{Seed: 5})
	d := NewDataset(4, 2, 8, 0.3, 6)
	// Fixed batches so both replays see identical data.
	var bx []*tensor.Tensor
	var bl [][]int
	for i := 0; i < 3; i++ {
		x, l := d.Batch(4)
		bx = append(bx, x)
		bl = append(bl, l)
	}

	snap := e.Snapshot()
	var losses1 []float64
	for i := 0; i < 3; i++ {
		loss, _ := e.Step(bx[i], bl[i], 0.05)
		losses1 = append(losses1, loss)
	}
	after1 := paramsOf(e)

	e.Restore(snap)
	var losses2 []float64
	for i := 0; i < 3; i++ {
		loss, _ := e.Step(bx[i], bl[i], 0.05)
		losses2 = append(losses2, loss)
	}
	after2 := paramsOf(e)

	if !reflect.DeepEqual(losses1, losses2) {
		t.Fatalf("replay losses differ: %v vs %v", losses1, losses2)
	}
	if !reflect.DeepEqual(after1, after2) {
		t.Fatal("replay parameters differ")
	}
}

func TestRunRecoverableCleanMatchesRun(t *testing.T) {
	cfg := RunConfig{Minibatch: 8, Steps: 60, LR: 0.05, ProbeEvery: 20}
	base := Run(NewExecutor(smallNet(8), Options{Seed: 3}), NewDataset(4, 2, 8, 0.3, 7), cfg)
	recs, report, err := RunRecoverable(context.Background(), NewExecutor(smallNet(8), Options{Seed: 3}),
		NewDataset(4, 2, 8, 0.3, 7), cfg, RecoveryConfig{})
	if err != nil {
		t.Fatalf("clean RunRecoverable: %v", err)
	}
	if !reflect.DeepEqual(base, recs) {
		t.Fatalf("clean recoverable run diverged from Run:\n%v\n%v", base, recs)
	}
	if report.Retries != 0 || report.RecoveredSteps != 0 || report.GaveUpStep != 0 {
		t.Fatalf("clean run reported recovery activity: %+v", report)
	}
	if report.Robust != (RobustnessStats{}) {
		t.Fatalf("clean run reported robustness events: %+v", report.Robust)
	}
	if report.FaultCounts != nil {
		t.Fatal("clean run has no injector, FaultCounts must be nil")
	}
}

func TestRunRecoverableSurvivesInjectedFaults(t *testing.T) {
	g := smallNet(4)
	a := encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))
	inj := faults.New(faults.Config{
		Seed:           99,
		BitFlipRate:    0.06,
		EncodeFailRate: 0.03,
		DecodeFailRate: 0.03,
	})
	e := NewExecutor(g, Options{Seed: 9, Encodings: a, Faults: inj})
	d := NewDataset(4, 2, 8, 0.3, 13)

	var slept []time.Duration
	recs, report, err := RunRecoverable(context.Background(), e, d,
		RunConfig{Minibatch: 4, Steps: 40, LR: 0.05, ProbeEvery: 10},
		RecoveryConfig{MaxRetries: 25, Sleep: func(d time.Duration) { slept = append(slept, d) }})
	if err != nil {
		t.Fatalf("run did not survive: %v\nreport:\n%s", err, report)
	}
	if report.Steps != 40 || len(recs) != 4 {
		t.Fatalf("steps %d, records %d", report.Steps, len(recs))
	}

	counts := inj.Counts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("injector fired no faults; raise the rates or change the seed")
	}
	// Cross-check: the executor must have seen exactly what the injector
	// logged. Every bit flip must have been detected by the CRC seal.
	if got, want := report.Robust.CRCFailures, int64(counts[faults.BitFlip]); got != want {
		t.Fatalf("CRC detections %d != injected bit flips %d", got, want)
	}
	if got, want := report.Robust.EncodeFailures, int64(counts[faults.EncodeFail]); got != want {
		t.Fatalf("encode failures %d != injected %d", got, want)
	}
	if got, want := report.Robust.DecodeFailures, int64(counts[faults.DecodeFail]); got != want {
		t.Fatalf("decode failures %d != injected %d", got, want)
	}
	// Each injected fault aborts exactly one step attempt, and the run
	// completed, so retries == total injected faults.
	if report.Retries != total {
		t.Fatalf("retries %d != injected faults %d\nreport:\n%s", report.Retries, total, report)
	}
	if len(slept) != report.Retries {
		t.Fatalf("backoff sleeps %d != retries %d", len(slept), report.Retries)
	}
	if report.RecoveredSteps == 0 || report.RecoveredSteps > report.Retries {
		t.Fatalf("recovered steps %d out of range (retries %d)", report.RecoveredSteps, report.Retries)
	}
	if report.FaultCounts[faults.BitFlip] != counts[faults.BitFlip] {
		t.Fatalf("report fault counts %v != injector %v", report.FaultCounts, counts)
	}
	// The run must still have trained (not diverged into NaN).
	if Diverged(recs, 4) {
		t.Fatal("fault-injected run diverged")
	}
}

func TestRunRecoverableAllocPressureClears(t *testing.T) {
	g := smallNet(4)
	a := encoding.Analyze(g, encoding.Lossless())
	inj := faults.New(faults.Config{Seed: 5, AllocBudgetBytes: 64, AllocFailures: 2})
	e := NewExecutor(g, Options{Seed: 9, Encodings: a, Faults: inj})
	d := NewDataset(4, 2, 8, 0.3, 13)

	_, report, err := RunRecoverable(context.Background(), e, d,
		RunConfig{Minibatch: 4, Steps: 5, LR: 0.05, ProbeEvery: 5},
		RecoveryConfig{Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatalf("alloc pressure must clear after 2 failures: %v", err)
	}
	if got := report.Robust.AllocFailures; got != 2 {
		t.Fatalf("alloc failures %d, want 2", got)
	}
	if got := report.FaultCounts[faults.AllocFail]; got != 2 {
		t.Fatalf("injector alloc count %d, want 2", got)
	}
	if report.RecoveredSteps != 1 || report.Retries != 2 {
		t.Fatalf("want step 1 recovered after 2 retries, got %+v", report)
	}
}

func TestRunRecoverableGivesUpAndBacksOff(t *testing.T) {
	g := smallNet(4)
	a := encoding.Analyze(g, encoding.Lossless())
	inj := faults.New(faults.Config{Seed: 5, DecodeFailRate: 1})
	e := NewExecutor(g, Options{Seed: 9, Encodings: a, Faults: inj})
	d := NewDataset(4, 2, 8, 0.3, 13)

	var slept []time.Duration
	_, report, err := RunRecoverable(context.Background(), e, d,
		RunConfig{Minibatch: 4, Steps: 10, LR: 0.05, ProbeEvery: 5},
		RecoveryConfig{
			MaxRetries:  5,
			BackoffBase: time.Millisecond,
			BackoffMax:  4 * time.Millisecond,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		})
	if err == nil {
		t.Fatal("permanent fault must exhaust the retry budget")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error should carry the injected cause: %v", err)
	}
	if report.GaveUpStep != 1 {
		t.Fatalf("gave up at step %d, want 1", report.GaveUpStep)
	}
	want := []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond,
		4 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond,
	}
	if !reflect.DeepEqual(slept, want) {
		t.Fatalf("backoff schedule %v, want %v (doubling, capped)", slept, want)
	}
	if report.BackoffTotal != 15*time.Millisecond {
		t.Fatalf("backoff total %v, want 15ms", report.BackoffTotal)
	}
	if report.Robust.DecodeFailures != 6 { // initial attempt + 5 retries
		t.Fatalf("decode failures %d, want 6", report.Robust.DecodeFailures)
	}
}

func TestRunRecoverablePeriodicCheckpoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	g := smallNet(4)
	e := NewExecutor(g, Options{Seed: 9})
	d := NewDataset(4, 2, 8, 0.3, 13)

	_, report, err := RunRecoverable(context.Background(), e, d,
		RunConfig{Minibatch: 4, Steps: 20, LR: 0.05, ProbeEvery: 5},
		RecoveryConfig{CheckpointPath: path, CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if report.CheckpointSaves != 4 || report.CheckpointFailures != 0 {
		t.Fatalf("checkpoint saves %d / failures %d, want 4 / 0",
			report.CheckpointSaves, report.CheckpointFailures)
	}
	// The persisted checkpoint must restore into a fresh executor.
	e2 := NewExecutor(smallNet(4), Options{Seed: 1})
	if err := e2.LoadCheckpointFile(path); err != nil {
		t.Fatalf("reload: %v", err)
	}
	for _, n := range e.G.Nodes {
		p1 := e.Params(n)
		p2 := e2.Params(e2.G.Lookup(n.Name))
		for j := range p1 {
			if !p1[j].Equal(p2[j]) {
				t.Fatalf("%s param %d not restored", n.Name, j)
			}
		}
	}
}
