package train

// Cancellation-path tests: the retry backoff must abort the moment the
// context is cancelled (not after sleeping out the full delay), a
// deadline must stop a run within one step's latency, and engine Close
// must be idempotent and concurrent-safe.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"gist/internal/bufpool"
	"gist/internal/encoding"
	"gist/internal/faults"
)

// TestBackoffAbortsOnCancel pins satellite: with every encode failing,
// RunRecoverable sits in retry backoff; cancelling the context must
// return immediately — not after the multi-second backoff — with an
// error that wraps ctx.Err() and names the last failure cause.
func TestBackoffAbortsOnCancel(t *testing.T) {
	g := smallNet(8)
	inj := faults.New(faults.Config{Seed: 1, EncodeFailRate: 1})
	e := NewExecutor(g, Options{Seed: 3, Faults: inj, Integrity: true,
		Encodings: encoding.Analyze(g, encoding.Lossless())})
	d := NewDataset(4, 2, 8, 0.3, 2)
	ctx, cancel := context.WithCancel(context.Background())

	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := RunRecoverable(ctx, e, d,
		RunConfig{Minibatch: 8, Steps: 5, LR: 0.05},
		RecoveryConfig{MaxRetries: 100, BackoffBase: 10 * time.Second, BackoffMax: 10 * time.Second})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("run completed despite every encode failing")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "last cause") {
		t.Fatalf("err %q does not name the last failure cause", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v; the 10s backoff was slept out", elapsed)
	}
}

// TestDeadlineStopsRun pins the deadline path: an expired deadline stops
// the loop with a wrapped DeadlineExceeded.
func TestDeadlineStopsRun(t *testing.T) {
	e := NewExecutor(smallNet(8), Options{Seed: 3})
	d := NewDataset(4, 2, 8, 0.3, 2)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(30*time.Millisecond))
	defer cancel()
	_, err := RunContext(ctx, e, d, RunConfig{Minibatch: 8, Steps: 1 << 30, LR: 0.05})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

// TestInjectedSleepStillChecksContext pins that a test-injected Sleep
// (which cannot observe the context) is still followed by a context
// check, so cancellation aborts between retries.
func TestInjectedSleepStillChecksContext(t *testing.T) {
	g := smallNet(8)
	inj := faults.New(faults.Config{Seed: 1, EncodeFailRate: 1})
	e := NewExecutor(g, Options{Seed: 3, Faults: inj, Integrity: true,
		Encodings: encoding.Analyze(g, encoding.Lossless())})
	d := NewDataset(4, 2, 8, 0.3, 2)
	ctx, cancel := context.WithCancel(context.Background())
	slept := 0
	_, _, err := RunRecoverable(ctx, e, d,
		RunConfig{Minibatch: 8, Steps: 5, LR: 0.05},
		RecoveryConfig{MaxRetries: 100, Sleep: func(time.Duration) {
			slept++
			cancel()
		}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if slept != 1 {
		t.Fatalf("retried %d times after cancellation, want exactly 1 sleep", slept)
	}
}

// TestReplicaGroupCloseIdempotentConcurrent closes a pooled replica
// group from many goroutines at once: pooled buffers must be released
// exactly once (a double release panics in the pool) and every call must
// return.
func TestReplicaGroupCloseIdempotentConcurrent(t *testing.T) {
	pool := bufpool.New()
	rg := NewReplicaGroup(smallNet(8), Options{Seed: 3, Pool: pool}, ReplicaConfig{Replicas: 2, Shards: 4})
	d := NewDataset(4, 2, 8, 0.3, 2)
	x, labels := d.Batch(rg.GroupBatch())
	rg.Step(x, labels, 0.05)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rg.Close()
		}()
	}
	wg.Wait()
	rg.Close() // and once more, sequentially
	if got := pool.Stats().InUseBytes; got != 0 {
		t.Fatalf("pool still holds %d bytes after Close", got)
	}
}

// TestExecutorReleaseBuffersIdempotent releases a pooled executor's
// buffers twice; the second call must be a no-op, not a double-recycle.
func TestExecutorReleaseBuffersIdempotent(t *testing.T) {
	pool := bufpool.New()
	e := NewExecutor(smallNet(8), Options{Seed: 3, Pool: pool})
	d := NewDataset(4, 2, 8, 0.3, 2)
	x, labels := d.Batch(8)
	e.Step(x, labels, 0.05)
	e.ReleaseBuffers()
	e.ReleaseBuffers()
	if got := pool.Stats().InUseBytes; got != 0 {
		t.Fatalf("pool still holds %d bytes after release", got)
	}
}
