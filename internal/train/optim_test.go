package train

import (
	"bytes"
	"math"
	"testing"

	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/tensor"
)

// smallNetWide mirrors smallNet's node names with wider shapes, for the
// checkpoint shape-mismatch test.
func smallNetWide(mb int) *graph.Graph {
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(mb, 2, 8, 8))
	c1 := g.MustAdd("conv1", layers.NewConv2D(8, 3, 1, 1), in) // 8 channels, not 4
	r1 := g.MustAdd("relu1", layers.NewReLU(), c1)
	p1 := g.MustAdd("pool1", layers.NewMaxPool(2, 2, 0), r1)
	fc := g.MustAdd("fc", layers.NewFC(4), p1)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	return g
}

func TestSGDOptMatchesExecutorSGD(t *testing.T) {
	// The standalone SGD optimizer must match the executor's built-in
	// update exactly on the same gradients.
	g1, g2 := smallNet(4), smallNet(4)
	e1 := NewExecutor(g1, Options{Seed: 3})
	e2 := NewExecutor(g2, Options{Seed: 3})
	d1 := NewDataset(4, 2, 8, 0.3, 4)
	d2 := NewDataset(4, 2, 8, 0.3, 4)
	opt := NewSGD(0.05, 0.9, 1e-4)
	for i := 0; i < 3; i++ {
		x1, l1 := d1.Batch(4)
		x2, l2 := d2.Batch(4)
		e1.Step(x1, l1, 0.05)
		e2.StepWith(x2, l2, opt)
	}
	for _, n := range g1.Nodes {
		p1, p2 := e1.Params(n), e2.Params(g2.Lookup(n.Name))
		for j := range p1 {
			if !p1[j].Equal(p2[j]) {
				t.Fatalf("%s param %d diverged between built-in and optimizer SGD", n.Name, j)
			}
		}
	}
}

func TestAdamTrains(t *testing.T) {
	g := smallNet(8)
	e := NewExecutor(g, Options{Seed: 5})
	d := NewDataset(4, 2, 8, 0.3, 6)
	opt := NewAdam(0.005)
	var first, last float64
	for i := 1; i <= 100; i++ {
		x, labels := d.Batch(8)
		loss, _ := e.StepWith(x, labels, opt)
		if i == 1 {
			first = loss
		}
		last = loss
	}
	if math.IsNaN(last) || last >= first {
		t.Fatalf("Adam did not reduce loss: %v -> %v", first, last)
	}
}

func TestAdamStepSizeBounded(t *testing.T) {
	// Adam's per-coordinate step is bounded by ~LR regardless of gradient
	// scale (bias-corrected), a defining property of the optimizer.
	opt := NewAdam(0.01)
	p := tensor.FromSlice([]float32{1}, 1)
	g := tensor.FromSlice([]float32{1e6}, 1)
	opt.Update([]*tensor.Tensor{p}, []*tensor.Tensor{g})
	moved := math.Abs(float64(p.Data[0] - 1))
	if moved > 0.011 {
		t.Fatalf("Adam step %v should be bounded by ~lr", moved)
	}
	if moved < 0.009 {
		t.Fatalf("Adam first step should be ~lr, got %v", moved)
	}
}

func TestEvalModeDeterministic(t *testing.T) {
	// Eval disables dropout: two eval passes on the same data must agree.
	g := smallNet(4)
	e := NewExecutor(g, Options{Seed: 9})
	d := NewDataset(4, 2, 8, 0.3, 10)
	x, labels := d.Batch(4)
	l1, e1 := e.Eval(x, labels)
	l2, e2 := e.Eval(x, labels)
	if l1 != l2 || e1 != e2 {
		t.Fatal("eval must be deterministic")
	}
}

func TestEvalAccuracyImprovesWithTraining(t *testing.T) {
	g := smallNet(8)
	e := NewExecutor(g, Options{Seed: 11})
	train := NewDataset(4, 2, 8, 0.3, 12)
	val := NewDataset(4, 2, 8, 0.3, 12) // same prototypes seed
	before := e.EvalAccuracy(val, 8, 5)
	Run(e, train, RunConfig{Minibatch: 8, Steps: 120, LR: 0.05, ProbeEvery: 40})
	after := e.EvalAccuracy(val, 8, 5)
	if after >= before {
		t.Fatalf("validation error should fall: %v -> %v", before, after)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	g1 := smallNet(4)
	e1 := NewExecutor(g1, Options{Seed: 21})
	d := NewDataset(4, 2, 8, 0.3, 22)
	Run(e1, d, RunConfig{Minibatch: 4, Steps: 20, LR: 0.05, ProbeEvery: 10})

	var buf bytes.Buffer
	if err := e1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// Load into a freshly initialized executor with different seed.
	g2 := smallNet(4)
	e2 := NewExecutor(g2, Options{Seed: 99})
	if err := e2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, n := range g1.Nodes {
		p1, p2 := e1.Params(n), e2.Params(g2.Lookup(n.Name))
		for j := range p1 {
			if !p1[j].Equal(p2[j]) {
				t.Fatalf("%s param %d not restored", n.Name, j)
			}
		}
	}
	// Restored executor must produce identical eval results.
	x, labels := d.Batch(4)
	l1, _ := e1.Eval(x, labels)
	l2, _ := e2.Eval(x, labels)
	if l1 != l2 {
		t.Fatalf("restored eval loss %v != original %v", l2, l1)
	}
}

func TestCheckpointBadMagic(t *testing.T) {
	e := NewExecutor(smallNet(2), Options{Seed: 1})
	err := e.LoadCheckpoint(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}))
	if err == nil {
		t.Fatal("bad magic must error")
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	e1 := NewExecutor(smallNet(4), Options{Seed: 1})
	var buf bytes.Buffer
	if err := e1.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// A different architecture with the same node names but different
	// shapes must refuse the checkpoint.
	other := smallNetWide(4)
	e2 := NewExecutor(other, Options{Seed: 2})
	if err := e2.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("shape mismatch must error")
	}
}
