package train

// Learning-rate schedules. The paper's suite trains with the networks'
// original recipes — step decay over ~90 epochs for the AlexNet-era models
// and warmup+steps for ResNets — so the trainer supports the standard
// schedule shapes.

import "math"

// LRSchedule maps a (0-based) step index to a learning rate.
type LRSchedule interface {
	At(step int) float32
}

// ConstantLR is a fixed learning rate.
type ConstantLR float32

// At returns the constant rate.
func (c ConstantLR) At(int) float32 { return float32(c) }

// StepDecay multiplies the base rate by Gamma every DecayEvery steps —
// the classic "divide by 10 every 30 epochs" recipe.
type StepDecay struct {
	Base       float32
	Gamma      float64
	DecayEvery int
}

// At returns Base * Gamma^(step/DecayEvery).
func (s StepDecay) At(step int) float32 {
	if s.DecayEvery <= 0 {
		return s.Base
	}
	k := step / s.DecayEvery
	return s.Base * float32(math.Pow(s.Gamma, float64(k)))
}

// CosineDecay anneals from Base to Floor over Horizon steps.
type CosineDecay struct {
	Base, Floor float32
	Horizon     int
}

// At returns the cosine-annealed rate (clamped at Floor past the horizon).
func (c CosineDecay) At(step int) float32 {
	if c.Horizon <= 0 || step >= c.Horizon {
		return c.Floor
	}
	frac := float64(step) / float64(c.Horizon)
	return c.Floor + (c.Base-c.Floor)*float32(0.5*(1+math.Cos(math.Pi*frac)))
}

// Warmup linearly ramps from 0 to the inner schedule's rate over
// WarmupSteps, then delegates — the deep-ResNet stabilizer.
type Warmup struct {
	WarmupSteps int
	Inner       LRSchedule
}

// At returns the warmed-up rate.
func (w Warmup) At(step int) float32 {
	inner := w.Inner.At(step)
	if step >= w.WarmupSteps || w.WarmupSteps <= 0 {
		return inner
	}
	return inner * float32(step+1) / float32(w.WarmupSteps)
}

// RunScheduled trains like Run but takes a learning-rate schedule.
func RunScheduled(e *Executor, d *Dataset, cfg RunConfig, sched LRSchedule) []Record {
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 10
	}
	if cfg.ProbeSparsity {
		e.SetSparsityProbe(true)
	}
	var records []Record
	windowErrs, windowN := 0, 0
	var lastLoss float64
	for step := 1; step <= cfg.Steps; step++ {
		x, labels := d.Batch(cfg.Minibatch)
		loss, errs := e.Step(x, labels, sched.At(step-1))
		windowErrs += errs
		windowN += cfg.Minibatch
		lastLoss = loss
		if step%cfg.ProbeEvery == 0 {
			rec := Record{
				Minibatch:    step,
				Loss:         lastLoss,
				AccuracyLoss: float64(windowErrs) / float64(windowN),
			}
			if cfg.ProbeSparsity {
				rec.ReLUSparsity = e.ReLUSparsities()
			}
			records = append(records, rec)
			windowErrs, windowN = 0, 0
		}
	}
	return records
}
