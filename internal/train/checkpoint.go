package train

// Checkpointing: a compact binary serialization of an executor's learned
// parameters and batch-norm running statistics, so example applications
// and long experiments can save and resume training.
//
// The format is crash-safe: a little-endian stream of magic, format
// version, the payload (node count, then per parameterized node its name,
// parameter tensors and any batch-norm running statistics), and a CRC32
// trailer over everything before it. Version 3 inserts a resume section
// between the node entries and the trailer — per-node momentum tensors,
// the RNG state (u64) and the completed-step count (u32) — so a paused
// job resumes byte-identically to a run that was never interrupted.
// Loading parses and validates the entire checkpoint against the graph
// before touching any executor state, so a corrupt or mismatched
// checkpoint never leaves the executor half-restored. SaveCheckpointFile
// writes atomically (temp file + fsync + verify + rename): a crash
// mid-write leaves the previous checkpoint intact. Legacy v1 streams (no
// version, no trailer) and v2 streams (no resume section) still load.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"gist/internal/layers"
	"gist/internal/tensor"
)

const (
	// checkpointMagicV1 is the legacy unversioned format ("gIST").
	checkpointMagicV1 = uint32(0x67495354)
	// checkpointMagicV2 marks the versioned, CRC-trailed format ("gISU").
	checkpointMagicV2 = uint32(0x67495355)
	// checkpointVersion is the current format version. Version 3 appends a
	// resume section after the node entries: per-node momentum tensors, the
	// executor's RNG state and the completed-step count, which together make
	// a resumed run byte-identical to an uninterrupted one. Version 2
	// streams (no resume section) still load; their momenta stay zero.
	checkpointVersion = uint32(3)
	// checkpointVersionV2 is the previous, still-loadable format version.
	checkpointVersionV2 = uint32(2)
	// maxCheckpointString bounds any length-prefixed string in the stream.
	maxCheckpointString = 1 << 20
)

// Typed checkpoint errors. Callers branch on these with errors.Is; every
// malformed input maps to one of them (never a panic).
var (
	// ErrCorruptCheckpoint reports a stream that is not a well-formed
	// checkpoint: bad magic, failed CRC, truncation, or any field that
	// contradicts the bytes that remain.
	ErrCorruptCheckpoint = errors.New("train: corrupt checkpoint")
	// ErrCheckpointVersion reports a well-formed v2 header with a version
	// this build does not understand.
	ErrCheckpointVersion = errors.New("train: unsupported checkpoint version")
	// ErrCheckpointMismatch reports a valid checkpoint that does not match
	// the executor's graph (unknown node, wrong arity or shape).
	ErrCheckpointMismatch = errors.New("train: checkpoint does not match graph")
)

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func writeTensor(w io.Writer, t *tensor.Tensor) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(t.Shape))); err != nil {
		return err
	}
	for _, d := range t.Shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, t.Data)
}

// cpReader is a bounds-checked cursor over an in-memory checkpoint
// payload. Every read knows exactly how many bytes remain, so a
// short-but-wrong length prefix fails immediately with
// ErrCorruptCheckpoint instead of misparsing downstream fields.
type cpReader struct {
	data []byte
	off  int
}

func (r *cpReader) remaining() int { return len(r.data) - r.off }

func (r *cpReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("%w: truncated at offset %d", ErrCorruptCheckpoint, r.off)
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *cpReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated at offset %d", ErrCorruptCheckpoint, r.off)
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *cpReader) bytes(n int) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("%w: field of %d bytes with %d remaining at offset %d",
			ErrCorruptCheckpoint, n, r.remaining(), r.off)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

// readString reads a length-prefixed string, bounding the length both by
// the absolute cap and by the bytes actually remaining in the stream.
func readString(r *cpReader) (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if n > maxCheckpointString {
		return "", fmt.Errorf("%w: string length %d exceeds cap", ErrCorruptCheckpoint, n)
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// readF32s reads n little-endian float32 values.
func readF32s(r *cpReader, n int) ([]float32, error) {
	b, err := r.bytes(n * 4)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out, nil
}

// readTensor reads a shape-prefixed tensor, bounding rank, dimensions and
// total element count against the remaining stream before allocating.
func readTensor(r *cpReader) (*tensor.Tensor, error) {
	rank, err := r.u32()
	if err != nil {
		return nil, err
	}
	if rank > 8 {
		return nil, fmt.Errorf("%w: tensor rank %d", ErrCorruptCheckpoint, rank)
	}
	shape := make([]int, rank)
	elems := int64(1)
	for i := range shape {
		d, err := r.u32()
		if err != nil {
			return nil, err
		}
		if d == 0 || int64(d) > int64(r.remaining()) {
			return nil, fmt.Errorf("%w: tensor dimension %d with %d bytes remaining",
				ErrCorruptCheckpoint, d, r.remaining())
		}
		shape[i] = int(d)
		// Bounding elems by the stream size on every multiply keeps the
		// product from overflowing and rejects impossible shapes early.
		elems *= int64(d)
		if elems*4 > int64(len(r.data)) {
			return nil, fmt.Errorf("%w: tensor of %d+ elements exceeds stream size %d",
				ErrCorruptCheckpoint, elems, len(r.data))
		}
	}
	data, err := readF32s(r, int(elems))
	if err != nil {
		return nil, err
	}
	t := tensor.New(shape...)
	copy(t.Data, data)
	return t, nil
}

// SaveCheckpoint writes the executor's parameters, batch-norm running
// statistics and full resume state (momenta, RNG, completed-step count)
// to w in the v3 format (versioned header, CRC32 trailer).
func (e *Executor) SaveCheckpoint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := crc32.NewIEEE()
	mw := io.MultiWriter(bw, h)

	if err := binary.Write(mw, binary.LittleEndian, checkpointMagicV2); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, checkpointVersion); err != nil {
		return err
	}
	var count uint32
	for _, n := range e.G.Nodes {
		if len(e.params[n.ID]) > 0 {
			count++
		}
	}
	if err := binary.Write(mw, binary.LittleEndian, count); err != nil {
		return err
	}
	for _, n := range e.G.Nodes {
		ps := e.params[n.ID]
		if len(ps) == 0 {
			continue
		}
		if err := writeString(mw, n.Name); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, uint32(len(ps))); err != nil {
			return err
		}
		for _, p := range ps {
			if err := writeTensor(mw, p); err != nil {
				return err
			}
		}
		// Batch-norm running statistics ride along (length 0 otherwise).
		var mean, variance []float32
		if bn, ok := n.Op.(*layers.BatchNormOp); ok {
			mean, variance = bn.RunningMean, bn.RunningVar
		}
		if err := binary.Write(mw, binary.LittleEndian, uint32(len(mean))); err != nil {
			return err
		}
		if len(mean) > 0 {
			if err := binary.Write(mw, binary.LittleEndian, mean); err != nil {
				return err
			}
			if err := binary.Write(mw, binary.LittleEndian, variance); err != nil {
				return err
			}
		}
	}
	// v3 resume section: momentum tensors in the same node order, then the
	// RNG state and the completed-step count.
	if err := binary.Write(mw, binary.LittleEndian, count); err != nil {
		return err
	}
	for _, n := range e.G.Nodes {
		ms := e.moms[n.ID]
		if len(e.params[n.ID]) == 0 {
			continue
		}
		if err := writeString(mw, n.Name); err != nil {
			return err
		}
		if err := binary.Write(mw, binary.LittleEndian, uint32(len(ms))); err != nil {
			return err
		}
		for _, m := range ms {
			if err := writeTensor(mw, m); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(mw, binary.LittleEndian, e.rng.State()); err != nil {
		return err
	}
	if err := binary.Write(mw, binary.LittleEndian, uint32(e.resumeStep)); err != nil {
		return err
	}
	// CRC trailer over magic, version and payload.
	if err := binary.Write(bw, binary.LittleEndian, h.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// ckptNode is the staged, parsed form of one node's checkpoint entry.
type ckptNode struct {
	name           string
	params         []*tensor.Tensor
	mean, variance []float32
}

// parseCheckpointBody decodes the node entries from a payload cursor.
func parseCheckpointBody(r *cpReader) ([]ckptNode, error) {
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Each node entry costs at least 12 bytes; a count beyond that bound
	// is a corrupt header, not a huge checkpoint.
	if int64(count) > int64(r.remaining()/12)+1 {
		return nil, fmt.Errorf("%w: node count %d with %d bytes remaining",
			ErrCorruptCheckpoint, count, r.remaining())
	}
	nodes := make([]ckptNode, 0, count)
	for i := uint32(0); i < count; i++ {
		var cn ckptNode
		if cn.name, err = readString(r); err != nil {
			return nil, err
		}
		nParams, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int64(nParams) > int64(r.remaining()/4)+1 {
			return nil, fmt.Errorf("%w: node %q claims %d params with %d bytes remaining",
				ErrCorruptCheckpoint, cn.name, nParams, r.remaining())
		}
		for j := uint32(0); j < nParams; j++ {
			t, err := readTensor(r)
			if err != nil {
				return nil, err
			}
			cn.params = append(cn.params, t)
		}
		nStats, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nStats > 0 {
			if int64(nStats)*8 > int64(r.remaining()) {
				return nil, fmt.Errorf("%w: %d batch-norm stats with %d bytes remaining",
					ErrCorruptCheckpoint, nStats, r.remaining())
			}
			if cn.mean, err = readF32s(r, int(nStats)); err != nil {
				return nil, err
			}
			if cn.variance, err = readF32s(r, int(nStats)); err != nil {
				return nil, err
			}
		}
		nodes = append(nodes, cn)
	}
	return nodes, nil
}

// LoadCheckpoint restores parameters saved by SaveCheckpoint into this
// executor. The graph must contain the same parameterized node names with
// the same shapes. The whole stream is parsed and validated before any
// executor state changes, so a failed load leaves the executor untouched.
// The v3 (resume section), v2 (versioned, CRC-trailed) and legacy v1
// formats are all accepted; only v3 restores momenta, the RNG state and
// the completed-step count.
func (e *Executor) LoadCheckpoint(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if len(data) < 4 {
		return fmt.Errorf("%w: %d-byte stream", ErrCorruptCheckpoint, len(data))
	}
	var body *cpReader
	version := uint32(0) // 0 marks a legacy v1 stream
	switch magic := binary.LittleEndian.Uint32(data); magic {
	case checkpointMagicV1:
		body = &cpReader{data: data, off: 4}
	case checkpointMagicV2:
		if len(data) < 12 {
			return fmt.Errorf("%w: v2 stream of %d bytes", ErrCorruptCheckpoint, len(data))
		}
		version = binary.LittleEndian.Uint32(data[4:])
		if version != checkpointVersion && version != checkpointVersionV2 {
			return fmt.Errorf("%w: version %d (supported: %d, %d)",
				ErrCheckpointVersion, version, checkpointVersionV2, checkpointVersion)
		}
		want := binary.LittleEndian.Uint32(data[len(data)-4:])
		if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != want {
			return fmt.Errorf("%w: CRC %#x, trailer %#x", ErrCorruptCheckpoint, got, want)
		}
		body = &cpReader{data: data[:len(data)-4], off: 8}
	default:
		return fmt.Errorf("%w: not a gist checkpoint (magic %#x)", ErrCorruptCheckpoint, magic)
	}

	nodes, err := parseCheckpointBody(body)
	if err != nil {
		return err
	}

	// v3 resume section: momenta (same entry layout, no batch-norm stats),
	// RNG state and completed-step count.
	var moms []ckptNode
	var rngState uint64
	var resumeStep uint32
	if version == checkpointVersion {
		count, err := body.u32()
		if err != nil {
			return err
		}
		if int64(count) > int64(body.remaining()/8)+1 {
			return fmt.Errorf("%w: momentum node count %d with %d bytes remaining",
				ErrCorruptCheckpoint, count, body.remaining())
		}
		for i := uint32(0); i < count; i++ {
			var cn ckptNode
			if cn.name, err = readString(body); err != nil {
				return err
			}
			nMoms, err := body.u32()
			if err != nil {
				return err
			}
			if int64(nMoms) > int64(body.remaining()/4)+1 {
				return fmt.Errorf("%w: node %q claims %d momenta with %d bytes remaining",
					ErrCorruptCheckpoint, cn.name, nMoms, body.remaining())
			}
			for j := uint32(0); j < nMoms; j++ {
				t, err := readTensor(body)
				if err != nil {
					return err
				}
				cn.params = append(cn.params, t)
			}
			moms = append(moms, cn)
		}
		if rngState, err = body.u64(); err != nil {
			return err
		}
		if resumeStep, err = body.u32(); err != nil {
			return err
		}
	}

	// Validate everything against the graph before mutating anything.
	for _, cn := range nodes {
		node := e.G.Lookup(cn.name)
		if node == nil {
			return fmt.Errorf("%w: node %q not in graph", ErrCheckpointMismatch, cn.name)
		}
		ps := e.params[node.ID]
		if len(cn.params) != len(ps) {
			return fmt.Errorf("%w: node %q has %d params, checkpoint has %d",
				ErrCheckpointMismatch, cn.name, len(ps), len(cn.params))
		}
		for j, t := range cn.params {
			if !t.Shape.Equal(ps[j].Shape) {
				return fmt.Errorf("%w: node %q param %d shape %v, checkpoint %v",
					ErrCheckpointMismatch, cn.name, j, ps[j].Shape, t.Shape)
			}
		}
	}
	for _, cn := range moms {
		node := e.G.Lookup(cn.name)
		if node == nil {
			return fmt.Errorf("%w: momentum node %q not in graph", ErrCheckpointMismatch, cn.name)
		}
		ms := e.moms[node.ID]
		if len(cn.params) != len(ms) {
			return fmt.Errorf("%w: node %q has %d momenta, checkpoint has %d",
				ErrCheckpointMismatch, cn.name, len(ms), len(cn.params))
		}
		for j, t := range cn.params {
			if !t.Shape.Equal(ms[j].Shape) {
				return fmt.Errorf("%w: node %q momentum %d shape %v, checkpoint %v",
					ErrCheckpointMismatch, cn.name, j, ms[j].Shape, t.Shape)
			}
		}
	}

	// Commit.
	for _, cn := range nodes {
		node := e.G.Lookup(cn.name)
		for j, t := range cn.params {
			copy(e.params[node.ID][j].Data, t.Data)
		}
		if len(cn.mean) > 0 {
			if bn, ok := node.Op.(*layers.BatchNormOp); ok {
				bn.RunningMean = append([]float32(nil), cn.mean...)
				bn.RunningVar = append([]float32(nil), cn.variance...)
			}
		}
	}
	for _, cn := range moms {
		node := e.G.Lookup(cn.name)
		for j, t := range cn.params {
			copy(e.moms[node.ID][j].Data, t.Data)
		}
	}
	if version == checkpointVersion {
		e.rng.SetState(rngState)
		e.resumeStep = int(resumeStep)
	}
	return nil
}

// VerifyCheckpoint checks that a byte stream is a structurally sound
// checkpoint: correct magic, supported version and matching CRC trailer
// (v1 streams only get the magic check — they carry no checksum). It does
// not compare against any graph.
func VerifyCheckpoint(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("%w: %d-byte stream", ErrCorruptCheckpoint, len(data))
	}
	switch magic := binary.LittleEndian.Uint32(data); magic {
	case checkpointMagicV1:
		return nil
	case checkpointMagicV2:
		if len(data) < 12 {
			return fmt.Errorf("%w: v2 stream of %d bytes", ErrCorruptCheckpoint, len(data))
		}
		if v := binary.LittleEndian.Uint32(data[4:]); v != checkpointVersion && v != checkpointVersionV2 {
			return fmt.Errorf("%w: version %d", ErrCheckpointVersion, v)
		}
		want := binary.LittleEndian.Uint32(data[len(data)-4:])
		if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != want {
			return fmt.Errorf("%w: CRC %#x, trailer %#x", ErrCorruptCheckpoint, got, want)
		}
		return nil
	default:
		return fmt.Errorf("%w: not a gist checkpoint (magic %#x)", ErrCorruptCheckpoint, magic)
	}
}

// SaveCheckpointFile atomically writes the executor's checkpoint to path:
// the stream goes to a temp file in the same directory, is fsynced,
// re-read and CRC-verified, and only then renamed over path. A crash or
// torn write at any point leaves the previous checkpoint file intact.
func (e *Executor) SaveCheckpointFile(path string) error {
	return e.SaveCheckpointFileVia(path, nil)
}

// SaveCheckpointFileVia is SaveCheckpointFile with an optional writer
// wrapper interposed on the stream — the hook the fault injector uses to
// tear or corrupt the write. Because the temp file is verified before the
// rename, an injected tear is caught here and the previous checkpoint
// survives.
func (e *Executor) SaveCheckpointFileVia(path string, wrap func(io.Writer) io.Writer) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	var w io.Writer = tmp
	if wrap != nil {
		w = wrap(w)
	}
	if err = e.SaveCheckpoint(w); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	// Verify what actually reached the disk before promoting it.
	if _, err = tmp.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, rerr := io.ReadAll(tmp)
	if rerr != nil {
		err = rerr
		return err
	}
	if err = VerifyCheckpoint(data); err != nil {
		return fmt.Errorf("train: refusing to promote checkpoint: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself (best effort — some filesystems refuse
	// directory fsync).
	if df, derr := os.Open(dir); derr == nil {
		df.Sync()
		df.Close()
	}
	return nil
}

// LoadCheckpointFile restores a checkpoint written by SaveCheckpointFile.
func (e *Executor) LoadCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return e.LoadCheckpoint(f)
}
