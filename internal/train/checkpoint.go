package train

// Checkpointing: a compact binary serialization of an executor's learned
// parameters and batch-norm running statistics, so example applications
// and long experiments can save and resume training. The format is a
// little-endian stream: magic, node count, then per parameterized node its
// name, parameter tensors (shape + raw FP32 data), and any batch-norm
// running statistics.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"gist/internal/layers"
	"gist/internal/tensor"
)

const checkpointMagic = uint32(0x67495354) // "gIST"

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("train: corrupt checkpoint (string length %d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeTensor(w io.Writer, t *tensor.Tensor) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(t.Shape))); err != nil {
		return err
	}
	for _, d := range t.Shape {
		if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, t.Data)
}

func readTensor(r io.Reader) (*tensor.Tensor, error) {
	var rank uint32
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return nil, err
	}
	if rank > 8 {
		return nil, fmt.Errorf("train: corrupt checkpoint (rank %d)", rank)
	}
	shape := make([]int, rank)
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return nil, err
		}
		shape[i] = int(d)
	}
	t := tensor.New(shape...)
	if err := binary.Read(r, binary.LittleEndian, t.Data); err != nil {
		return nil, err
	}
	return t, nil
}

// SaveCheckpoint writes the executor's parameters and batch-norm running
// statistics to w.
func (e *Executor) SaveCheckpoint(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, checkpointMagic); err != nil {
		return err
	}
	var count uint32
	for _, n := range e.G.Nodes {
		if len(e.params[n.ID]) > 0 {
			count++
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, count); err != nil {
		return err
	}
	for _, n := range e.G.Nodes {
		ps := e.params[n.ID]
		if len(ps) == 0 {
			continue
		}
		if err := writeString(bw, n.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(ps))); err != nil {
			return err
		}
		for _, p := range ps {
			if err := writeTensor(bw, p); err != nil {
				return err
			}
		}
		// Batch-norm running statistics ride along (length 0 otherwise).
		var mean, variance []float32
		if bn, ok := n.Op.(*layers.BatchNormOp); ok {
			mean, variance = bn.RunningMean, bn.RunningVar
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(mean))); err != nil {
			return err
		}
		if len(mean) > 0 {
			if err := binary.Write(bw, binary.LittleEndian, mean); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, variance); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadCheckpoint restores parameters saved by SaveCheckpoint into this
// executor. The graph must contain the same parameterized node names with
// the same shapes.
func (e *Executor) LoadCheckpoint(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return err
	}
	if magic != checkpointMagic {
		return fmt.Errorf("train: not a gist checkpoint (magic %#x)", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	for i := uint32(0); i < count; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		node := e.G.Lookup(name)
		if node == nil {
			return fmt.Errorf("train: checkpoint node %q not in graph", name)
		}
		var nParams uint32
		if err := binary.Read(br, binary.LittleEndian, &nParams); err != nil {
			return err
		}
		ps := e.params[node.ID]
		if int(nParams) != len(ps) {
			return fmt.Errorf("train: node %q has %d params, checkpoint has %d",
				name, len(ps), nParams)
		}
		for j := range ps {
			t, err := readTensor(br)
			if err != nil {
				return err
			}
			if !t.Shape.Equal(ps[j].Shape) {
				return fmt.Errorf("train: node %q param %d shape %v, checkpoint %v",
					name, j, ps[j].Shape, t.Shape)
			}
			copy(ps[j].Data, t.Data)
		}
		var nStats uint32
		if err := binary.Read(br, binary.LittleEndian, &nStats); err != nil {
			return err
		}
		if nStats > 0 {
			mean := make([]float32, nStats)
			variance := make([]float32, nStats)
			if err := binary.Read(br, binary.LittleEndian, mean); err != nil {
				return err
			}
			if err := binary.Read(br, binary.LittleEndian, variance); err != nil {
				return err
			}
			if bn, ok := node.Op.(*layers.BatchNormOp); ok {
				bn.RunningMean, bn.RunningVar = mean, variance
			}
		}
	}
	return nil
}
