package train

import (
	"errors"
	"sync"
	"testing"

	"gist/internal/bufpool"
	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/floatenc"
	"gist/internal/networks"
	"gist/internal/parallel"
	"gist/internal/telemetry"
)

// TestReplicaGroupsSharedPoolRace runs two replica groups concurrently on
// one shared buffer pool and one shared codec worker pool, with bit-flip
// fault injection corrupting sealed stashes under both. Its job is to give
// the race detector (make race-hot) the hottest cross-group interleaving
// we support: concurrent Get/Recycle on the pool, concurrent chunked
// encode/decode/reduce on the worker pool, and concurrent injector and
// telemetry writes. Checks are deliberately light — the value is the
// -race run staying silent.
func TestReplicaGroupsSharedPoolRace(t *testing.T) {
	const steps = 12
	pool := bufpool.New()
	workers := parallel.NewPool(4)
	tel := telemetry.New()

	mkGroup := func(seed uint64) *ReplicaGroup {
		g := networks.TinyCNN(2, 4)
		opts := Options{
			Seed:      seed,
			Encodings: encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16)),
			Integrity: true,
			Faults:    faults.New(faults.Config{Seed: seed, BitFlipRate: 0.05}),
			Telemetry: tel,
			Codec:     &encoding.Codec{Pool: workers},
			Pool:      pool,
		}
		return NewReplicaGroup(g, opts, ReplicaConfig{Replicas: 2, Shards: 4, MaxRetries: 6})
	}

	groups := []*ReplicaGroup{mkGroup(42), mkGroup(43)}
	var wg sync.WaitGroup
	for i, rg := range groups {
		wg.Add(1)
		go func(i int, rg *ReplicaGroup) {
			defer wg.Done()
			defer rg.Close()
			d := NewDataset(4, 3, 16, 0.3, uint64(100+i))
			for step := 0; step < steps; step++ {
				x, labels := d.Batch(rg.GroupBatch())
				_, _, err := rg.TryStep(x, labels, 0.05)
				if err != nil && !errors.Is(err, ErrStepAbandoned) {
					t.Errorf("group %d step %d: unexpected error %v", i, step, err)
					return
				}
			}
			for k, v := range flatParams(rg.Executor()) {
				if v != v {
					t.Errorf("group %d param %d is NaN", i, k)
					return
				}
			}
		}(i, rg)
	}
	wg.Wait()
}
