// Package train executes graphs for real: it allocates tensors, runs every
// operator's forward and backward kernels, applies SGD, and reproduces the
// numerical behaviour of Gist's encodings inside the training loop. The
// paper's accuracy experiment (Figure 12) is this package's reason to
// exist: the executor can quantize activations immediately after each layer
// (the conventional "All-FP16" scheme whose forward error compounds) or
// delay the reduction to the stashed copy only (DPR, forward stays exact),
// and it can round-trip stashes through the real Binarize/SSDC/DPR
// encoders.
package train

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/parallel"
	"gist/internal/telemetry"
	"gist/internal/tensor"
)

// PrecisionMode selects how activations are reduced during training.
type PrecisionMode int

const (
	// FullPrecision is the FP32 baseline.
	FullPrecision PrecisionMode = iota
	// AllReduced quantizes every layer output immediately after it is
	// computed, so the error is injected into the forward pass and
	// propagates — the conventional scheme the paper shows failing.
	AllReduced
	// DelayedReduced quantizes only the stashed copy used by the backward
	// pass; forward consumers see full FP32 values (Gist's DPR).
	DelayedReduced
)

// String names the mode as the paper's figures do.
func (m PrecisionMode) String() string {
	switch m {
	case FullPrecision:
		return "Baseline-FP32"
	case AllReduced:
		return "All-Reduced"
	case DelayedReduced:
		return "Gist-DPR"
	}
	return fmt.Sprintf("PrecisionMode(%d)", int(m))
}

// Options configures an executor.
type Options struct {
	Mode   PrecisionMode
	Format floatenc.Format
	// Encodings, when non-nil, round-trips every assigned stash through
	// the real encoder kernels (Binarize mask, narrow CSR, packed DPR)
	// instead of in-place quantization, verifying the full machinery.
	Encodings *encoding.Analysis
	// Seed drives weight initialization and dropout.
	Seed uint64
	// Integrity seals every encoded stash with a CRC32-C checksum at encode
	// and verifies it at decode, turning silent corruption of the held
	// representation into a typed ErrCorruptStash. Off by default (the
	// zero-overhead path); forced on while fault injection is active.
	Integrity bool
	// Faults, when non-nil and enabled, injects deterministic faults into
	// the encode→hold→decode path (see the faults package). Runs with
	// injection must drive the executor through TryStep or RunRecoverable,
	// which surface the injected failures as errors.
	Faults *faults.Injector
	// Telemetry, when non-nil, receives per-step phase spans
	// (forward/encode/backward/SGD), overlap hit/miss counters, robustness
	// counters mirroring RobustnessStats, and a per-step memory sample
	// (raw vs held stash bytes, split by technique). The nil default costs
	// only nil checks on the step path.
	Telemetry *telemetry.Sink
}

// execMetrics caches the executor's instruments so the step path never does
// a name lookup. All fields are nil (valid no-op instruments) when the
// executor has no sink.
type execMetrics struct {
	steps        *telemetry.Counter   // successful + failed step attempts
	stepFailures *telemetry.Counter   // attempts that returned an error
	stepNS       *telemetry.Histogram // whole-step latency
	forwardNS    *telemetry.Histogram
	encodeNS     *telemetry.Histogram // prepareStashes (encode + seal + sync decode)
	backwardNS   *telemetry.Histogram
	sgdNS        *telemetry.Histogram
	stashHeld    *telemetry.Histogram // per-step held stash bytes

	overlapHits *telemetry.Counter // decode future already resolved at use
	overlapMiss *telemetry.Counter // consumer had to wait on (or start) the decode
	gradZero    *telemetry.Counter // mid-backward failures that zeroed gradients

	// Mirrors of RobustnessStats, so the snapshot and the RecoveryReport
	// agree by construction.
	ssdcFallbacks *telemetry.Counter
	crcDetected   *telemetry.Counter
	chunkLocated  *telemetry.Counter // CRC detections localized to one chunk
	injEncode     *telemetry.Counter
	injDecode     *telemetry.Counter
	injAlloc      *telemetry.Counter
}

func newExecMetrics(s *telemetry.Sink) execMetrics {
	return execMetrics{
		steps:         s.Counter("train.steps"),
		stepFailures:  s.Counter("train.step.failures"),
		stepNS:        s.Histogram("train.step.ns"),
		forwardNS:     s.Histogram("train.forward.ns"),
		encodeNS:      s.Histogram("train.encode.ns"),
		backwardNS:    s.Histogram("train.backward.ns"),
		sgdNS:         s.Histogram("train.sgd.ns"),
		stashHeld:     s.Histogram("train.stash.held_bytes"),
		overlapHits:   s.Counter("train.overlap.hits"),
		overlapMiss:   s.Counter("train.overlap.misses"),
		gradZero:      s.Counter("train.grad_zeroing"),
		ssdcFallbacks: s.Counter("train.ssdc_fallbacks"),
		crcDetected:   s.Counter("train.crc_detected"),
		chunkLocated:  s.Counter("train.crc.chunk_located"),
		injEncode:     s.Counter("train.injected.encode_failures"),
		injDecode:     s.Counter("train.injected.decode_failures"),
		injAlloc:      s.Counter("train.injected.alloc_failures"),
	}
}

// RobustnessStats counts the degradation and corruption events one
// executor observed — the per-run robustness counters the RecoveryReport
// aggregates and cross-checks against the injector's log.
type RobustnessStats struct {
	// SSDCFallbacks counts stashes whose runtime sparsity made narrow CSR
	// larger than the dense DPR alternative, degrading to dense encoding.
	SSDCFallbacks int64
	// CRCFailures counts corrupt stashes detected by checksum at decode.
	CRCFailures int64
	// EncodeFailures, DecodeFailures and AllocFailures count injected
	// failures of the respective stash operations.
	EncodeFailures int64
	DecodeFailures int64
	AllocFailures  int64
}

// Executor owns the parameters and scratch state for training one graph.
type Executor struct {
	G    *graph.Graph
	opts Options

	params map[int][]*tensor.Tensor
	grads  map[int][]*tensor.Tensor
	moms   map[int][]*tensor.Tensor
	rng    *tensor.RNG

	// outs holds each node's forward output for the current step; stash
	// holds the (possibly reduced) view backward readers see. When async
	// decode is active, encoded stashes live in futures until the backward
	// pass resolves them (stash then caches the decoded tensor).
	outs    map[int]*tensor.Tensor
	stash   map[int]*tensor.Tensor
	futures map[int]*stashFuture
	aux     map[int]map[string]any

	// StashBytes records, per step, the total bytes of the stashed
	// representations the backward pass actually read (encoded when
	// encodings are active) — a runtime cross-check of the planner.
	StashBytes int64

	// Robust accumulates degradation and corruption counters over the
	// executor's lifetime.
	Robust RobustnessStats

	tel       *telemetry.Sink
	met       execMetrics
	stepCount int             // steps attempted, numbers spans and memory samples
	stepSpan  *telemetry.Span // root span of the in-flight TryStep (nil otherwise)
}

// NewExecutor initializes parameters (He init for conv/FC weights, ones and
// zeros for batch-norm scale/shift, zero biases).
func NewExecutor(g *graph.Graph, opts Options) *Executor {
	if opts.Format == floatenc.FP32 && opts.Mode != FullPrecision {
		panic("train: reduced mode requires a reduced format")
	}
	e := &Executor{
		G: g, opts: opts,
		params: map[int][]*tensor.Tensor{},
		grads:  map[int][]*tensor.Tensor{},
		moms:   map[int][]*tensor.Tensor{},
		rng:    tensor.NewRNG(opts.Seed),
		tel:    opts.Telemetry,
		met:    newExecMetrics(opts.Telemetry),
	}
	opts.Faults.SetTelemetry(opts.Telemetry)
	for _, n := range g.Nodes {
		if len(n.ParamShapes) == 0 {
			continue
		}
		ps := make([]*tensor.Tensor, len(n.ParamShapes))
		gs := make([]*tensor.Tensor, len(n.ParamShapes))
		ms := make([]*tensor.Tensor, len(n.ParamShapes))
		for i, shape := range n.ParamShapes {
			ps[i] = tensor.New(shape...)
			gs[i] = tensor.New(shape...)
			ms[i] = tensor.New(shape...)
			switch {
			case n.Kind() == layers.BatchNorm && i == 0:
				ps[i].Fill(1) // gamma
			case n.Kind() == layers.BatchNorm && i == 1:
				// beta stays zero
			case i == 0:
				fanIn := shape.NumElements() / shape[0]
				ps[i].FillHe(e.rng, fanIn)
			}
		}
		e.params[n.ID] = ps
		e.grads[n.ID] = gs
		e.moms[n.ID] = ms
	}
	return e
}

// Params returns the parameter tensors of a node (nil if none).
func (e *Executor) Params(n *graph.Node) []*tensor.Tensor { return e.params[n.ID] }

// Output returns node n's forward output from the latest step.
func (e *Executor) Output(n *graph.Node) *tensor.Tensor { return e.outs[n.ID] }

// Forward runs the forward pass on the given minibatch. Labels are needed
// only when the graph ends in a loss node and Backward will run.
func (e *Executor) Forward(input *tensor.Tensor, labels []int, training bool) {
	e.outs = map[int]*tensor.Tensor{}
	e.stash = map[int]*tensor.Tensor{}
	e.futures = map[int]*stashFuture{}
	e.aux = map[int]map[string]any{}
	for _, n := range e.G.Nodes {
		out := tensor.New(n.OutShape...)
		aux := map[string]any{}
		if n.Kind() == layers.Input {
			if !input.Shape.Equal(n.OutShape) {
				panic(fmt.Sprintf("train: input shape %v, want %v", input.Shape, n.OutShape))
			}
			copy(out.Data, input.Data)
		} else {
			ins := make([]*tensor.Tensor, len(n.Inputs))
			for i, in := range n.Inputs {
				ins[i] = e.outs[in.ID]
			}
			if n.Kind() == layers.SoftmaxXent {
				aux[layers.AuxKeyLabels] = labels
			}
			n.Op.Forward(&layers.FwdCtx{
				In: ins, Params: e.params[n.ID], Out: out,
				Aux: aux, RNG: e.rng, Train: training,
			})
		}
		if e.opts.Mode == AllReduced && n.Kind() != layers.SoftmaxXent {
			// Conventional scheme: inject quantization error immediately,
			// so every downstream layer consumes reduced values. The loss
			// layer itself stays exact (prior-work schemes quantize layer
			// activations, not the loss).
			floatenc.QuantizeSlice(e.opts.Format, out.Data)
		}
		e.outs[n.ID] = out
		e.aux[n.ID] = aux
	}
}

// integrity reports whether stashes are CRC-sealed and verified this run:
// explicitly requested, or forced on by active fault injection so every
// injected bit flip is detectable.
func (e *Executor) integrity() bool {
	return e.opts.Integrity || e.opts.Faults.Enabled()
}

// stashFuture is an in-flight asynchronous decode of one encoded stash.
// The backward pass starts a future one layer ahead of its consumer, so
// layer l-1's decode overlaps layer l's backward kernels on the shared
// worker pool. Start is lazy and idempotent: a consumer that arrives before
// its prefetch simply starts the decode itself and waits.
type stashFuture struct {
	enc     *encoding.EncodedStash
	node    string
	tel     *telemetry.Sink
	started atomic.Bool
	done    chan struct{}
	out     *tensor.Tensor
	err     error
}

func newStashFuture(enc *encoding.EncodedStash, node string, tel *telemetry.Sink) *stashFuture {
	return &stashFuture{enc: enc, node: node, tel: tel, done: make(chan struct{})}
}

// start launches the decode on the pool; only the first call fires.
func (f *stashFuture) start(p *parallel.Pool) {
	if f.started.CompareAndSwap(false, true) {
		p.Go(func() {
			defer close(f.done)
			defer func() {
				// Decode converts corruption to errors, but a panic on a
				// pool goroutine would kill the process; surface it as the
				// future's error instead.
				if r := recover(); r != nil {
					f.err = fmt.Errorf("stash decode panicked: %v", r)
				}
			}()
			// Root span on its own track: concurrent futures land on
			// separate tracks, so the trace shows the decode overlap.
			sp := f.tel.Begin("train", "async-decode", telemetry.Str("stash", f.node))
			defer sp.End()
			f.out, f.err = f.enc.Decode()
		})
	}
}

// wait starts the decode if needed and blocks for its result.
func (f *stashFuture) wait(p *parallel.Pool) (*tensor.Tensor, error) {
	f.start(p)
	<-f.done
	return f.out, f.err
}

// asyncDecode reports whether encoded stashes decode asynchronously on the
// worker pool. Fault-injected runs keep the synchronous path: the injector's
// corrupt-then-decode sequencing attributes each detection to its injection
// site, which deferred decode would smear across layers.
func (e *Executor) asyncDecode() bool {
	return e.opts.Encodings != nil && !e.opts.Faults.Enabled() && decodePool().Workers() > 1
}

// decodePool is the pool backing stash futures — the codec's own pool, so
// decode chunks and future goroutines share one bounded set of workers.
func decodePool() *parallel.Pool {
	if p := encoding.DefaultCodec().Pool; p != nil {
		return p
	}
	return parallel.Shared()
}

// prepareStashes builds the backward-pass view of every feature map after
// the forward pass completes — the executor's equivalent of Gist inserting
// encode functions after each stash's last forward use.
//
// This is where the robustness layer lives: injected encode/decode/alloc
// failures surface here as typed errors, corruption of a sealed stash is
// caught by the CRC check inside Decode, and an SSDC stash whose runtime
// sparsity fell below break-even degrades to the dense DPR encoding. With
// no injector and integrity off, every added path is a nil/bool check.
func (e *Executor) prepareStashes() error {
	e.StashBytes = 0
	inj := e.opts.Faults
	var mem *memAccum
	if e.tel != nil {
		mem = &memAccum{byTech: map[string]*telemetry.TechBytes{}}
	}
	for _, n := range e.G.Nodes {
		out := e.outs[n.ID]
		if e.opts.Encodings != nil {
			if as := e.opts.Encodings.ByNode[n.ID]; as != nil {
				if err := inj.FailEncode(n.Name); err != nil {
					e.Robust.EncodeFailures++
					e.met.injEncode.Inc()
					return err
				}
				enc, fellBack, err := encoding.EncodeStashAdaptive(as, out)
				if err != nil {
					return fmt.Errorf("train: stash %q: %w", n.Name, err)
				}
				if fellBack {
					e.Robust.SSDCFallbacks++
					e.met.ssdcFallbacks.Inc()
				}
				if err := inj.Alloc(n.Name, enc.Bytes()); err != nil {
					e.Robust.AllocFailures++
					e.met.injAlloc.Inc()
					return err
				}
				if err := inj.FailDecode(n.Name); err != nil {
					e.Robust.DecodeFailures++
					e.met.injDecode.Inc()
					return err
				}
				if e.integrity() {
					enc.Seal()
				}
				inj.CorruptStash(n.Name, enc)
				e.StashBytes += enc.Bytes()
				mem.add(enc.Tech.String(), out.Bytes(), enc.Bytes())
				if e.asyncDecode() {
					// Defer the decode: the backward pass starts it one
					// layer before the consumer needs it.
					e.futures[n.ID] = newStashFuture(enc, n.Name, e.tel)
					continue
				}
				dec, err := enc.Decode()
				if err != nil {
					if errors.Is(err, encoding.ErrCorruptStash) {
						e.Robust.CRCFailures++
						e.noteCorrupt(err)
					}
					return fmt.Errorf("train: stash %q: %w", n.Name, err)
				}
				e.stash[n.ID] = dec
				continue
			}
		}
		if e.opts.Mode == DelayedReduced && stashedForBackward(e, n) {
			q := out.Clone()
			floatenc.QuantizeSlice(e.opts.Format, q.Data)
			held := e.opts.Format.PackedBytes(len(q.Data))
			e.StashBytes += held
			mem.add("DPR", out.Bytes(), held)
			e.stash[n.ID] = q
			continue
		}
		if stashedForBackward(e, n) {
			e.StashBytes += out.Bytes()
			mem.add("FP32", out.Bytes(), out.Bytes())
		}
		e.stash[n.ID] = out
	}
	if mem != nil {
		e.tel.RecordMemSample(mem.sample(e.stepCount))
		e.met.stashHeld.Observe(mem.held)
	}
	return nil
}

// memAccum accumulates one step's stash-memory sample while stashes build.
// The nil accumulator (uninstrumented run) discards everything.
type memAccum struct {
	raw, held int64
	byTech    map[string]*telemetry.TechBytes
}

func (m *memAccum) add(tech string, raw, held int64) {
	if m == nil {
		return
	}
	m.raw += raw
	m.held += held
	tb := m.byTech[tech]
	if tb == nil {
		tb = &telemetry.TechBytes{Tech: tech}
		m.byTech[tech] = tb
	}
	tb.RawBytes += raw
	tb.HeldBytes += held
}

// sample freezes the accumulator into a MemSample with deterministically
// ordered technique rows.
func (m *memAccum) sample(step int) telemetry.MemSample {
	sm := telemetry.MemSample{Step: step, RawBytes: m.raw, HeldBytes: m.held}
	techs := make([]string, 0, len(m.byTech))
	for t := range m.byTech {
		techs = append(techs, t)
	}
	sort.Strings(techs)
	for _, t := range techs {
		sm.ByTech = append(sm.ByTech, *m.byTech[t])
	}
	return sm
}

// noteCorrupt mirrors one CRC detection into the sink, recording whether
// the error localized the corruption to a chunk.
func (e *Executor) noteCorrupt(err error) {
	e.met.crcDetected.Inc()
	if chunk, ok := encoding.CorruptedChunk(err); ok {
		e.met.chunkLocated.Inc()
		e.tel.Instant("train", "crc-chunk-located", telemetry.Int("chunk", int64(chunk)))
	}
}

// stashedForBackward reports whether n's output has a backward reader,
// under the encoding analysis when present.
func stashedForBackward(e *Executor, n *graph.Node) bool {
	if e.opts.Encodings != nil {
		return e.opts.Encodings.OutputStashed(n)
	}
	return graph.OutputStashed(n)
}

// Backward runs the backward pass, accumulating parameter gradients. The
// only failures are stash-pipeline ones (injected faults, detected
// corruption); without an injector and with well-formed encodings it
// always returns nil.
//
// With async decode active, each layer's backward kernels overlap the
// decode of the next layer's stashes: the loop prefetches layer l-1's
// futures onto the worker pool before running layer l's compute, then
// blocks only when a consumer actually needs a tensor still in flight.
// Gradients are identical to the synchronous pass — decode is bit-exact
// regardless of scheduling — which the parallel executor tests pin.
func (e *Executor) Backward() error {
	encSpan := e.stepSpan.Begin("train", "encode-stashes")
	var t0 time.Time
	if e.tel != nil {
		t0 = time.Now()
	}
	err := e.prepareStashes()
	if e.tel != nil {
		e.met.encodeNS.Observe(time.Since(t0).Nanoseconds())
	}
	encSpan.End()
	if err != nil {
		return err
	}
	pool := decodePool()
	defer e.drainFutures()
	gradOf := map[int]*tensor.Tensor{}
	nodes := e.G.Nodes
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		if n.Kind() == layers.Input {
			continue
		}
		dOut := gradOf[n.ID]
		if dOut == nil {
			if len(n.Consumers()) == 0 {
				// Loss node: its Backward seeds the gradient itself.
				dOut = tensor.New(n.OutShape...)
			} else {
				// Dead branch (no gradient flowed): skip.
				continue
			}
		}
		if i > 0 {
			e.prefetch(pool, nodes[i-1])
		}
		needs := n.Op.Needs()
		ins := make([]*tensor.Tensor, len(n.Inputs))
		dIns := make([]*tensor.Tensor, len(n.Inputs))
		for j, in := range n.Inputs {
			dIns[j] = tensor.New(in.OutShape...)
			if needs.X {
				t, err := e.stashOf(pool, in.ID)
				if err != nil {
					return e.failBackward(err)
				}
				ins[j] = t
			}
		}
		ctx := &layers.BwdCtx{
			Params: e.params[n.ID], DOut: dOut,
			DIn: dIns, DParams: e.grads[n.ID], Aux: e.aux[n.ID],
		}
		if needs.X {
			ctx.In = ins
		}
		if needs.Y {
			t, err := e.stashOf(pool, n.ID)
			if err != nil {
				return e.failBackward(err)
			}
			ctx.Out = t
		}
		n.Op.Backward(ctx)
		for j, in := range n.Inputs {
			if g := gradOf[in.ID]; g == nil {
				gradOf[in.ID] = dIns[j]
			} else {
				g.Add(dIns[j])
			}
		}
	}
	return nil
}

// prefetch starts the async decodes node n's backward will need, without
// waiting on them.
func (e *Executor) prefetch(p *parallel.Pool, n *graph.Node) {
	if n.Kind() == layers.Input || len(e.futures) == 0 {
		return
	}
	needs := n.Op.Needs()
	if needs.X {
		for _, in := range n.Inputs {
			if f := e.futures[in.ID]; f != nil {
				f.start(p)
			}
		}
	}
	if needs.Y {
		if f := e.futures[n.ID]; f != nil {
			f.start(p)
		}
	}
}

// stashOf resolves the backward view of a node's output, waiting on (and
// caching) the async decode when one is in flight.
func (e *Executor) stashOf(p *parallel.Pool, id int) (*tensor.Tensor, error) {
	if f := e.futures[id]; f != nil {
		if e.tel != nil {
			// Overlap accounting: a hit means the prefetched decode already
			// resolved when its consumer arrived; a miss means the consumer
			// had to wait on (or itself start) the decode.
			resolved := false
			if f.started.Load() {
				select {
				case <-f.done:
					resolved = true
				default:
				}
			}
			if resolved {
				e.met.overlapHits.Inc()
			} else {
				e.met.overlapMiss.Inc()
			}
		}
		out, err := f.wait(p)
		if err != nil {
			return nil, fmt.Errorf("train: stash %q: %w", f.node, err)
		}
		e.stash[id] = out
		return out, nil
	}
	return e.stash[id], nil
}

// failBackward preserves TryStep's no-partial-update contract when a stash
// failure surfaces mid-pass: backward kernels accumulate into e.grads
// directly, so every gradient is zeroed before the error propagates.
func (e *Executor) failBackward(err error) error {
	if errors.Is(err, encoding.ErrCorruptStash) {
		e.Robust.CRCFailures++
		e.noteCorrupt(err)
	}
	e.met.gradZero.Inc()
	e.tel.Instant("train", "grad-zeroing", telemetry.Str("cause", err.Error()))
	for _, gs := range e.grads {
		for _, g := range gs {
			g.Zero()
		}
	}
	return err
}

// drainFutures blocks until every started decode has finished, so no
// goroutine from this pass outlives Backward (un-started futures never
// spawned one).
func (e *Executor) drainFutures() {
	for _, f := range e.futures {
		if f.started.Load() {
			<-f.done
		}
	}
}

// ClipGradNorm rescales all parameter gradients so their global L2 norm is
// at most maxNorm, the standard guard against the exploding gradients that
// plain SGD on deeper ReLU stacks invites.
func (e *Executor) ClipGradNorm(maxNorm float64) {
	var sumSq float64
	for _, gs := range e.grads {
		for _, g := range gs {
			for _, v := range g.Data {
				sumSq += float64(v) * float64(v)
			}
		}
	}
	norm := math.Sqrt(sumSq)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := float32(maxNorm / norm)
	for _, gs := range e.grads {
		for _, g := range gs {
			g.Scale(scale)
		}
	}
}

// SGD applies one momentum-SGD update and zeroes the gradients.
func (e *Executor) SGD(lr, momentum, weightDecay float32) {
	for id, ps := range e.params {
		gs, ms := e.grads[id], e.moms[id]
		for i, p := range ps {
			g, m := gs[i], ms[i]
			for k := range p.Data {
				grad := g.Data[k] + weightDecay*p.Data[k]
				m.Data[k] = momentum*m.Data[k] + grad
				p.Data[k] -= lr * m.Data[k]
			}
			g.Zero()
		}
	}
}

// lossNode returns the graph's softmax cross-entropy node. It panics if
// there is none: the trainer only drives classification graphs.
func (e *Executor) lossNode() *graph.Node {
	for _, n := range e.G.Nodes {
		if n.Kind() == layers.SoftmaxXent {
			return n
		}
	}
	panic("train: graph has no SoftmaxXent loss node")
}

// TryStep runs forward, backward and an SGD update on one minibatch,
// returning the minibatch loss, top-1 error count and any stash-pipeline
// error. On error no parameter update has been applied: failures surface in
// stash preparation (before gradients accumulate) or, under async decode,
// mid-backward — where every partially accumulated gradient is zeroed
// before the error returns. Batch-norm running statistics and the dropout
// RNG have still advanced — restore a Snapshot before retrying for a
// bit-exact replay. Fault-injected runs must use TryStep
// (or RunRecoverable, which wraps it with snapshot/retry/backoff).
func (e *Executor) TryStep(input *tensor.Tensor, labels []int, lr float32) (loss float64, errs int, err error) {
	e.stepCount++
	instrumented := e.tel != nil
	var start time.Time
	if instrumented {
		start = time.Now()
		e.stepSpan = e.tel.Begin("train", "step", telemetry.Int("step", int64(e.stepCount)))
		defer func() {
			e.met.steps.Inc()
			if err != nil {
				e.met.stepFailures.Inc()
			}
			e.met.stepNS.Observe(time.Since(start).Nanoseconds())
			e.stepSpan.End()
			e.stepSpan = nil
		}()
	}

	fwd := e.stepSpan.Begin("train", "forward")
	var t time.Time
	if instrumented {
		t = time.Now()
	}
	e.Forward(input, labels, true)
	if instrumented {
		e.met.forwardNS.Observe(time.Since(t).Nanoseconds())
	}
	fwd.End()
	loss, errs = e.lossOf(labels)

	bwd := e.stepSpan.Begin("train", "backward")
	if instrumented {
		t = time.Now()
	}
	berr := e.Backward()
	if instrumented {
		e.met.backwardNS.Observe(time.Since(t).Nanoseconds())
	}
	bwd.End()
	if berr != nil {
		return loss, errs, berr
	}

	sgd := e.stepSpan.Begin("train", "sgd")
	if instrumented {
		t = time.Now()
	}
	e.ClipGradNorm(5)
	e.SGD(lr, 0.9, 1e-4)
	if instrumented {
		e.met.sgdNS.Observe(time.Since(t).Nanoseconds())
	}
	sgd.End()
	return loss, errs, nil
}

// Telemetry returns the sink the executor reports to (nil when
// uninstrumented).
func (e *Executor) Telemetry() *telemetry.Sink { return e.tel }

// Step runs forward, backward and an SGD update on one minibatch and
// returns the minibatch loss and top-1 error count. Without fault
// injection the stash pipeline cannot fail; Step panics if it somehow does
// (use TryStep to handle failures).
func (e *Executor) Step(input *tensor.Tensor, labels []int, lr float32) (loss float64, errors int) {
	loss, errors, err := e.TryStep(input, labels, lr)
	if err != nil {
		panic(fmt.Sprintf("train: Step under fault injection must use TryStep: %v", err))
	}
	return loss, errors
}

// ReLUSparsities returns the zero fraction of every ReLU output from the
// latest forward pass, keyed by node name — the Figure 14 probe.
func (e *Executor) ReLUSparsities() map[string]float64 {
	m := map[string]float64{}
	for _, n := range e.G.Nodes {
		if n.Kind() == layers.ReLU {
			if out := e.outs[n.ID]; out != nil {
				m[n.Name] = out.Sparsity()
			}
		}
	}
	return m
}
