// Package train executes graphs for real: it allocates tensors, runs every
// operator's forward and backward kernels, applies SGD, and reproduces the
// numerical behaviour of Gist's encodings inside the training loop. The
// paper's accuracy experiment (Figure 12) is this package's reason to
// exist: the executor can quantize activations immediately after each layer
// (the conventional "All-FP16" scheme whose forward error compounds) or
// delay the reduction to the stashed copy only (DPR, forward stays exact),
// and it can round-trip stashes through the real Binarize/SSDC/DPR
// encoders.
package train

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gist/internal/bufpool"
	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
	"gist/internal/parallel"
	"gist/internal/stashstore"
	"gist/internal/telemetry"
	"gist/internal/tensor"
)

// PrecisionMode selects how activations are reduced during training.
type PrecisionMode int

const (
	// FullPrecision is the FP32 baseline.
	FullPrecision PrecisionMode = iota
	// AllReduced quantizes every layer output immediately after it is
	// computed, so the error is injected into the forward pass and
	// propagates — the conventional scheme the paper shows failing.
	AllReduced
	// DelayedReduced quantizes only the stashed copy used by the backward
	// pass; forward consumers see full FP32 values (Gist's DPR).
	DelayedReduced
)

// String names the mode as the paper's figures do.
func (m PrecisionMode) String() string {
	switch m {
	case FullPrecision:
		return "Baseline-FP32"
	case AllReduced:
		return "All-Reduced"
	case DelayedReduced:
		return "Gist-DPR"
	}
	return fmt.Sprintf("PrecisionMode(%d)", int(m))
}

// Options configures an executor.
type Options struct {
	Mode   PrecisionMode
	Format floatenc.Format
	// Encodings, when non-nil, round-trips every assigned stash through
	// the real encoder kernels (Binarize mask, narrow CSR, packed DPR)
	// instead of in-place quantization, verifying the full machinery.
	Encodings *encoding.Analysis
	// Seed drives weight initialization and dropout.
	Seed uint64
	// Integrity seals every encoded stash with a CRC32-C checksum at encode
	// and verifies it at decode, turning silent corruption of the held
	// representation into a typed ErrCorruptStash. Off by default (the
	// zero-overhead path); forced on while fault injection is active.
	Integrity bool
	// Faults, when non-nil and enabled, injects deterministic faults into
	// the encode→hold→decode path (see the faults package). Runs with
	// injection must drive the executor through TryStep or RunRecoverable,
	// which surface the injected failures as errors.
	Faults *faults.Injector
	// Telemetry, when non-nil, receives per-step phase spans
	// (forward/encode/backward/SGD), overlap hit/miss counters, robustness
	// counters mirroring RobustnessStats, and a per-step memory sample
	// (raw vs held stash bytes, split by technique). The nil default costs
	// only nil checks on the step path.
	Telemetry *telemetry.Sink
	// Codec, when non-nil, is the codec this executor encodes, seals and
	// decodes stashes through — its own worker pool, chunk size, telemetry
	// and scratch pool, isolated from every other executor. The nil
	// default preserves the historical behavior of reading
	// encoding.DefaultCodec() at each step, so executors share codec state
	// only when both leave this unset.
	Codec *encoding.Codec
	// Pool, when non-nil, turns on liveness-driven buffer pooling: every
	// per-step tensor (activation, gradient, decode target, quantized
	// stash copy) is drawn from the pool and recycled at its last use —
	// encoded feature maps right after their stash is built, decoded
	// stashes and stashed activations after their final backward reader,
	// gradients once merged downstream. Encode containers are rebuilt in
	// place. Steady-state training then allocates almost nothing. Results
	// are byte-identical to the unpooled path. Under pooling, Output()
	// and live ReLU sparsity probing are unavailable (see those methods).
	Pool *bufpool.Pool
	// StashBudget, when positive, caps the bytes of encoded stashes held in
	// RAM across the forward→backward gap: stashes live in a tiered
	// stashstore.Store and the ones whose backward use is furthest away
	// spill to disk as sealed GSTP pages, to be fetched (and decoded) back
	// just before their backward reader needs them. Placement is a pure
	// function of the liveness analysis and the spill round-trip is
	// bit-exact, so results are identical to the unlimited-RAM run at any
	// budget. Zero (the default) keeps every stash in RAM.
	StashBudget int64
	// SpillDir is where the stash store's spill file lives; "" means the
	// OS temp dir. Only consulted when StashBudget is positive.
	SpillDir string
}

// execMetrics caches the executor's instruments so the step path never does
// a name lookup. All fields are nil (valid no-op instruments) when the
// executor has no sink.
type execMetrics struct {
	steps        *telemetry.Counter   // successful + failed step attempts
	stepFailures *telemetry.Counter   // attempts that returned an error
	stepNS       *telemetry.Histogram // whole-step latency
	forwardNS    *telemetry.Histogram
	encodeNS     *telemetry.Histogram // prepareStashes (encode + seal + sync decode)
	backwardNS   *telemetry.Histogram
	sgdNS        *telemetry.Histogram
	stashHeld    *telemetry.Histogram // per-step held stash bytes

	overlapHits *telemetry.Counter // decode future already resolved at use
	overlapMiss *telemetry.Counter // consumer had to wait on (or start) the decode
	gradZero    *telemetry.Counter // mid-backward failures that zeroed gradients

	// Mirrors of RobustnessStats, so the snapshot and the RecoveryReport
	// agree by construction.
	ssdcFallbacks *telemetry.Counter
	crcDetected   *telemetry.Counter
	chunkLocated  *telemetry.Counter // CRC detections localized to one chunk
	injEncode     *telemetry.Counter
	injDecode     *telemetry.Counter
	injAlloc      *telemetry.Counter
	spillWriteErr *telemetry.Counter // failed spill-page writes (injected ENOSPC)
	spillReadErr  *telemetry.Counter // corrupt/torn spill pages caught at fetch
}

func newExecMetrics(s *telemetry.Sink) execMetrics {
	return execMetrics{
		steps:         s.Counter("train.steps"),
		stepFailures:  s.Counter("train.step.failures"),
		stepNS:        s.Histogram("train.step.ns"),
		forwardNS:     s.Histogram("train.forward.ns"),
		encodeNS:      s.Histogram("train.encode.ns"),
		backwardNS:    s.Histogram("train.backward.ns"),
		sgdNS:         s.Histogram("train.sgd.ns"),
		stashHeld:     s.Histogram("train.stash.held_bytes"),
		overlapHits:   s.Counter("train.overlap.hits"),
		overlapMiss:   s.Counter("train.overlap.misses"),
		gradZero:      s.Counter("train.grad_zeroing"),
		ssdcFallbacks: s.Counter("train.ssdc_fallbacks"),
		crcDetected:   s.Counter("train.crc_detected"),
		chunkLocated:  s.Counter("train.crc.chunk_located"),
		injEncode:     s.Counter("train.injected.encode_failures"),
		injDecode:     s.Counter("train.injected.decode_failures"),
		injAlloc:      s.Counter("train.injected.alloc_failures"),
		spillWriteErr: s.Counter("train.spill.write_failures"),
		spillReadErr:  s.Counter("train.spill.read_failures"),
	}
}

// RobustnessStats counts the degradation and corruption events one
// executor observed — the per-run robustness counters the RecoveryReport
// aggregates and cross-checks against the injector's log.
type RobustnessStats struct {
	// SSDCFallbacks counts stashes whose runtime sparsity made narrow CSR
	// larger than the dense DPR alternative, degrading to dense encoding.
	SSDCFallbacks int64
	// CRCFailures counts corrupt stashes detected by checksum at decode.
	CRCFailures int64
	// EncodeFailures, DecodeFailures and AllocFailures count injected
	// failures of the respective stash operations.
	EncodeFailures int64
	DecodeFailures int64
	AllocFailures  int64
	// SpillWriteFailures counts failed spill-page writes (the injector's
	// ENOSPC transient); SpillReadFailures counts spill pages whose
	// corruption or truncation the page CRC / bounded parser caught at
	// fetch time.
	SpillWriteFailures int64
	SpillReadFailures  int64
}

// Executor owns the parameters and scratch state for training one graph.
type Executor struct {
	G    *graph.Graph
	opts Options

	params map[int][]*tensor.Tensor
	grads  map[int][]*tensor.Tensor
	moms   map[int][]*tensor.Tensor
	rng    *tensor.RNG

	// Per-step state, indexed by node ID (graph.Validate guarantees IDs
	// are dense). outs holds each node's forward output for the current
	// step; stash holds the (possibly reduced) view backward readers see.
	// When async decode is active, encoded stashes live in futures until
	// the backward pass resolves them (stash then caches the decoded
	// tensor). All slices are allocated once and reused every step.
	outs    []*tensor.Tensor
	stash   []*tensor.Tensor
	futures []*stashFuture
	aux     []map[string]any

	// futSlots backs futures: one persistent slot per node, re-armed each
	// step, so the async-decode machinery allocates nothing per step.
	futSlots []stashFuture
	nFutures int

	// encSlots holds, under pooling, one persistent encode container per
	// stashing node; EncodeStashInto rebuilds it in place every step.
	encSlots []*encoding.EncodedStash

	// Pooling state. pool is nil on the allocate-always path. checkedOut
	// is the executor-side ledger of pooled tensors currently held; every
	// alloc registers here and every recycle point goes through recycle(),
	// which ignores tensors not in the ledger — so an aliased stash
	// (stash == out) is returned exactly once, and anything a failed step
	// leaves behind is swept at the next Forward.
	pool       *bufpool.Pool
	checkedOut map[*tensor.Tensor]struct{}

	// bwdReads is the static per-node count of backward reads of each
	// node's stashed output, derived from the raw Op.Needs() of every
	// consumer (plus the node's own Y-dependence) — the executor-level
	// liveness the recycler drains. Raw needs, not the encoding analysis's
	// effective needs: a MaxPool above a Binarize-encoded ReLU still reads
	// its decoded X and Y stashes at runtime. bwdLeft is the per-pass
	// remaining count; gradOf accumulates downstream gradients.
	bwdReads []int
	bwdLeft  []int
	gradOf   []*tensor.Tensor

	// Reusable per-node scratch for forward/backward input and gradient
	// slices and the kernel contexts.
	insBuf  []*tensor.Tensor
	dInsBuf []*tensor.Tensor
	fwdCtx  layers.FwdCtx
	bwdCtx  layers.BwdCtx

	// probeSparsity arms per-step ReLU sparsity capture under pooling (set
	// by the trainer when RunConfig.ProbeSparsity asks for the Figure 14
	// probe); sparsities holds the last captured values.
	probeSparsity bool
	sparsities    map[string]float64

	// StashBytes records, per step, the total bytes of the stashed
	// representations the backward pass actually read (encoded when
	// encodings are active) — a runtime cross-check of the planner.
	StashBytes int64

	// Robust accumulates degradation and corruption counters over the
	// executor's lifetime.
	Robust RobustnessStats

	// store is the tiered stash home, built only when Options.StashBudget
	// is positive; nil keeps the historical all-in-RAM path byte-for-byte.
	store *stashstore.Store

	tel       *telemetry.Sink
	met       execMetrics
	stepCount int             // steps attempted, numbers spans and memory samples
	stepSpan  *telemetry.Span // root span of the in-flight TryStep (nil otherwise)

	// ctx, when non-nil, is polled at step phase boundaries (step entry,
	// post-forward, post-backward) so a cancelled or deadline-expired
	// training job aborts within one step's latency with no partial
	// parameter update. Bound by SetContext; nil means never cancelled.
	ctx context.Context

	// resumeStep is the completed-step count carried through checkpoints:
	// SaveCheckpoint embeds it and LoadCheckpoint restores it, so a resumed
	// job knows where its data stream must fast-forward to.
	resumeStep int
}

// NewExecutor initializes parameters (He init for conv/FC weights, ones and
// zeros for batch-norm scale/shift, zero biases).
func NewExecutor(g *graph.Graph, opts Options) *Executor {
	if opts.Format == floatenc.FP32 && opts.Mode != FullPrecision {
		panic("train: reduced mode requires a reduced format")
	}
	e := &Executor{
		G: g, opts: opts,
		params: map[int][]*tensor.Tensor{},
		grads:  map[int][]*tensor.Tensor{},
		moms:   map[int][]*tensor.Tensor{},
		rng:    tensor.NewRNG(opts.Seed),
		pool:   opts.Pool,
		tel:    opts.Telemetry,
		met:    newExecMetrics(opts.Telemetry),
	}
	opts.Faults.SetTelemetry(opts.Telemetry)

	if opts.StashBudget > 0 {
		// Eviction priorities are a pure function of the liveness analysis:
		// the stash whose first backward use lies furthest in the future
		// spills first, so placement never depends on timing.
		tl := graph.BuildTimeline(g)
		pri := make([]int, len(g.Nodes))
		names := make([]string, len(g.Nodes))
		for _, n := range g.Nodes {
			pri[n.ID] = graph.FirstBackwardUse(tl, n)
			names[n.ID] = n.Name
		}
		e.store = stashstore.New(stashstore.Config{
			Budget:   opts.StashBudget,
			Dir:      opts.SpillDir,
			Priority: pri,
			Names:    names,
			Tel:      opts.Telemetry,
			Faults:   opts.Faults,
		})
	}

	nn := len(g.Nodes)
	e.outs = make([]*tensor.Tensor, nn)
	e.stash = make([]*tensor.Tensor, nn)
	e.futures = make([]*stashFuture, nn)
	e.futSlots = make([]stashFuture, nn)
	e.encSlots = make([]*encoding.EncodedStash, nn)
	e.aux = make([]map[string]any, nn)
	e.bwdReads = make([]int, nn)
	e.bwdLeft = make([]int, nn)
	e.gradOf = make([]*tensor.Tensor, nn)
	e.sparsities = map[string]float64{}
	if e.pool != nil {
		e.checkedOut = make(map[*tensor.Tensor]struct{}, 2*nn)
	}
	for i := range e.futSlots {
		f := &e.futSlots[i]
		f.run = f.decode // bind the worker closure once, not per step
	}
	for _, n := range g.Nodes {
		e.aux[n.ID] = map[string]any{}
		// Count the backward pass's reads of this node's stashed output
		// from raw operator needs; recycle points drain these counts.
		needs := n.Op.Needs()
		if needs.Y {
			e.bwdReads[n.ID]++
		}
		if needs.X {
			for _, in := range n.Inputs {
				e.bwdReads[in.ID]++
			}
		}
	}

	for _, n := range g.Nodes {
		if len(n.ParamShapes) == 0 {
			continue
		}
		ps := make([]*tensor.Tensor, len(n.ParamShapes))
		gs := make([]*tensor.Tensor, len(n.ParamShapes))
		ms := make([]*tensor.Tensor, len(n.ParamShapes))
		for i, shape := range n.ParamShapes {
			ps[i] = tensor.New(shape...)
			gs[i] = tensor.New(shape...)
			ms[i] = tensor.New(shape...)
			switch {
			case n.Kind() == layers.BatchNorm && i == 0:
				ps[i].Fill(1) // gamma
			case n.Kind() == layers.BatchNorm && i == 1:
				// beta stays zero
			case i == 0:
				fanIn := shape.NumElements() / shape[0]
				ps[i].FillHe(e.rng, fanIn)
			}
		}
		e.params[n.ID] = ps
		e.grads[n.ID] = gs
		e.moms[n.ID] = ms
	}
	return e
}

// codec resolves the codec for the current operation: the injected
// Options.Codec when set, the process-wide default otherwise, with the
// executor's buffer pool threaded in as the codec's scratch source when the
// codec does not bring its own.
func (e *Executor) codec() encoding.Codec {
	var c encoding.Codec
	if e.opts.Codec != nil {
		c = *e.opts.Codec
	} else {
		c = encoding.DefaultCodec()
	}
	if c.Buf == nil {
		c.Buf = e.pool
	}
	return c
}

// alloc returns a zeroed tensor of the given shape — from the pool (and the
// checked-out ledger) when pooling is on, from the heap otherwise.
func (e *Executor) alloc(shape tensor.Shape) *tensor.Tensor {
	if e.pool == nil {
		return tensor.New(shape...)
	}
	t := e.pool.Get(shape...)
	e.checkedOut[t] = struct{}{}
	return t
}

// recycle returns a pooled tensor at its last use. Tensors the ledger does
// not hold — unpooled tensors, aliases already recycled, parameters — are
// ignored, so recycle points can be written against logical lifetimes
// without tracking aliasing.
func (e *Executor) recycle(t *tensor.Tensor) {
	if e.pool == nil || t == nil {
		return
	}
	if _, ok := e.checkedOut[t]; !ok {
		return
	}
	delete(e.checkedOut, t)
	e.pool.Recycle(t)
}

// sweep returns every pooled tensor still checked out — the step's
// leftovers (the loss output, dead branches, anything a failed step
// stranded). Runs at the start of each Forward, when nothing from the
// previous step can be referenced anymore.
func (e *Executor) sweep() {
	if e.pool == nil || len(e.checkedOut) == 0 {
		return
	}
	for t := range e.checkedOut {
		e.pool.Recycle(t)
	}
	clear(e.checkedOut)
}

// SetContext binds a context to the executor's step loop. TryStep polls it
// at phase boundaries — step entry, after the forward pass, and after the
// backward pass but before the SGD update — so cancellation or deadline
// expiry surfaces as a step error within one step's latency, always with
// the no-partial-update guarantee intact (a step aborted post-backward
// zeroes its accumulated gradients). A nil ctx unbinds (never cancelled).
// Not safe to call concurrently with a step in flight.
func (e *Executor) SetContext(ctx context.Context) { e.ctx = ctx }

// ctxErr reports the bound context's cancellation state (nil when unbound).
func (e *Executor) ctxErr() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// SetResumeStep records the completed-step count embedded in subsequent
// checkpoints (see ResumeStep).
func (e *Executor) SetResumeStep(n int) { e.resumeStep = n }

// ResumeStep returns the completed-step count of the last checkpoint loaded
// into (or recorded on) this executor — 0 for a fresh executor or a legacy
// v1/v2 checkpoint. A resumed training loop continues from step
// ResumeStep()+1 after fast-forwarding its dataset by ResumeStep() batches.
func (e *Executor) ResumeStep() int { return e.resumeStep }

// ReleaseBuffers promptly returns every pooled buffer the executor still
// holds — in-flight decode futures are drained first, then the checked-out
// ledger is swept — and drops the per-step output and stash references.
// This is the deterministic release point a job server needs when a job is
// cancelled, paused or quarantined: after ReleaseBuffers the shared pool
// owns every buffer again (Stats().InUseBytes from this executor is zero)
// without waiting for a next Forward's sweep. Must run on the executor's
// goroutine (not concurrent with a step); safe to call repeatedly and on
// an unpooled executor (where it only drops references).
func (e *Executor) ReleaseBuffers() {
	e.drainFutures()
	e.sweep()
	clear(e.outs)
	clear(e.stash)
	clear(e.gradOf)
	e.insBuf = e.insBuf[:0]
	e.dInsBuf = e.dInsBuf[:0]
	if e.store != nil {
		// Drop both tiers and delete the spill file. The store stays usable
		// (a later step lazily recreates the file), preserving this method's
		// safe-to-call-repeatedly contract.
		_ = e.store.Close()
	}
}

// StashStore returns the executor's tiered stash store, or nil when no
// stash budget is configured. Tests and the trainer's stats accessor read
// residency counters through it.
func (e *Executor) StashStore() *stashstore.Store { return e.store }

// Params returns the parameter tensors of a node (nil if none).
func (e *Executor) Params(n *graph.Node) []*tensor.Tensor { return e.params[n.ID] }

// Output returns node n's forward output from the latest step. Under
// pooling the executor recycles outputs at their last use, so Output is
// only meaningful on an unpooled executor (the experiment harnesses that
// compare per-layer activations run unpooled).
func (e *Executor) Output(n *graph.Node) *tensor.Tensor { return e.outs[n.ID] }

// Forward runs the forward pass on the given minibatch. Labels are needed
// only when the graph ends in a loss node and Backward will run.
func (e *Executor) Forward(input *tensor.Tensor, labels []int, training bool) {
	e.drainFutures() // settle anything a failed previous step left in flight
	e.sweep()
	clear(e.stash)
	for _, n := range e.G.Nodes {
		out := e.alloc(n.OutShape)
		aux := e.aux[n.ID]
		if n.Kind() == layers.Input {
			if !input.Shape.Equal(n.OutShape) {
				panic(fmt.Sprintf("train: input shape %v, want %v", input.Shape, n.OutShape))
			}
			copy(out.Data, input.Data)
		} else {
			ins := e.insBuf[:0]
			for _, in := range n.Inputs {
				ins = append(ins, e.outs[in.ID])
			}
			e.insBuf = ins
			if n.Kind() == layers.SoftmaxXent {
				// Re-box only when the labels slice itself changed:
				// storing a slice in the any-valued aux map allocates,
				// and steady-state loops pass the same batch buffer.
				prev, ok := aux[layers.AuxKeyLabels].([]int)
				if !ok || len(prev) != len(labels) ||
					(len(labels) > 0 && &prev[0] != &labels[0]) {
					aux[layers.AuxKeyLabels] = labels
				}
			}
			e.fwdCtx = layers.FwdCtx{
				In: ins, Params: e.params[n.ID], Out: out,
				Aux: aux, RNG: e.rng, Train: training,
			}
			n.Op.Forward(&e.fwdCtx)
		}
		if e.opts.Mode == AllReduced && n.Kind() != layers.SoftmaxXent {
			// Conventional scheme: inject quantization error immediately,
			// so every downstream layer consumes reduced values. The loss
			// layer itself stays exact (prior-work schemes quantize layer
			// activations, not the loss).
			floatenc.QuantizeSlice(e.opts.Format, out.Data)
		}
		e.outs[n.ID] = out
	}
}

// integrity reports whether stashes are CRC-sealed and verified this run:
// explicitly requested, or forced on by active fault injection so every
// injected bit flip is detectable.
func (e *Executor) integrity() bool {
	return e.opts.Integrity || e.opts.Faults.Enabled()
}

// stashFuture is an in-flight asynchronous decode of one encoded stash —
// generalized, when a stash store is active, to a fetch-then-decode future
// that first pulls the stash back from the tiered store (a pointer hand-off
// on a hot hit, a page read + CRC-verified parse on a spilled miss). The
// backward pass starts a future one layer ahead of its consumer, so layer
// l-1's fetch+decode overlaps layer l's backward kernels on the shared
// worker pool. Start is lazy and idempotent: a consumer that arrives before
// its prefetch simply starts the work itself and waits.
//
// Slots are persistent (one per node) and re-armed each step. Ownership of
// the pooled decode target dst transfers explicitly: the executor allocates
// it serially at arm time, exactly one worker goroutine writes it, and it
// returns to the executor at wait() — so the pool ledger is never touched
// off the executor's goroutine.
type stashFuture struct {
	enc     *encoding.EncodedStash
	store   *stashstore.Store // when set, decode fetches sid from here first
	sid     int               // node ID keying the store entry
	node    string
	tel     *telemetry.Sink
	cdc     encoding.Codec
	dst     *tensor.Tensor // pooled decode target; nil → decode allocates
	run     func()         // bound once at executor construction
	started atomic.Bool
	settled atomic.Bool // decode finished (overlap accounting)
	wg      sync.WaitGroup
	out     *tensor.Tensor
	err     error
}

// arm readies the slot for this step's decode. The WaitGroup count is taken
// here, on the executor's goroutine, before the future is visible to any
// concurrent start — drainFutures balances it even if the decode never
// launches.
func (f *stashFuture) arm(enc *encoding.EncodedStash, store *stashstore.Store, sid int, node string, tel *telemetry.Sink, cdc encoding.Codec, dst *tensor.Tensor) {
	f.enc, f.store, f.sid = enc, store, sid
	f.node, f.tel, f.cdc, f.dst = node, tel, cdc, dst
	f.out, f.err = nil, nil
	f.started.Store(false)
	f.settled.Store(false)
	f.wg.Add(1)
}

// start launches the decode on the pool; only the first call fires.
func (f *stashFuture) start(p *parallel.Pool) {
	if f.started.CompareAndSwap(false, true) {
		p.Go(f.run)
	}
}

// decode is the worker body (bound to f.run once at construction).
func (f *stashFuture) decode() {
	defer f.wg.Done()
	defer f.settled.Store(true)
	defer func() {
		// Decode converts corruption to errors, but a panic on a
		// pool goroutine would kill the process; surface it as the
		// future's error instead.
		if r := recover(); r != nil {
			f.err = fmt.Errorf("stash decode panicked: %v", r)
		}
	}()
	// Root span on its own track: concurrent futures land on
	// separate tracks, so the trace shows the decode overlap.
	sp := f.tel.Begin("train", "async-decode", telemetry.Str("stash", f.node))
	defer sp.End()
	enc := f.enc
	if f.store != nil {
		if enc, f.err = f.store.Fetch(f.sid); f.err != nil {
			return
		}
	}
	if f.dst != nil {
		if f.err = f.cdc.DecodeInto(f.dst, enc); f.err == nil {
			f.out = f.dst
		}
	} else {
		f.out, f.err = f.cdc.Decode(enc)
	}
}

// wait starts the decode if needed and blocks for its result.
func (f *stashFuture) wait(p *parallel.Pool) (*tensor.Tensor, error) {
	f.start(p)
	f.wg.Wait()
	return f.out, f.err
}

// asyncDecode reports whether stashes resolve asynchronously on the worker
// pool. Fault-injected runs keep the synchronous path: the injector's
// corrupt-then-decode and spill-tamper sequencing attributes each detection
// to its injection site, which deferred work would smear across layers.
// With a stash store active, futures run at every worker count (even a
// 1-worker pool spawns the fetch goroutine) so spilled-page reads overlap
// backward compute.
func (e *Executor) asyncDecode() bool {
	if e.opts.Faults.Enabled() {
		return false
	}
	if e.store != nil {
		return true
	}
	return e.opts.Encodings != nil && e.codec().WorkerPool().Workers() > 1
}

// prepareStashes builds the backward-pass view of every feature map after
// the forward pass completes — the executor's equivalent of Gist inserting
// encode functions after each stash's last forward use.
//
// This is where the robustness layer lives: injected encode/decode/alloc
// failures surface here as typed errors, corruption of a sealed stash is
// caught by the CRC check inside Decode, and an SSDC stash whose runtime
// sparsity fell below break-even degrades to the dense DPR encoding. With
// no injector and integrity off, every added path is a nil/bool check.
//
// It is also the first recycle point: once a node's stash exists in a form
// distinct from its forward output (encoded, or a quantized copy), the
// output itself is dead — no backward reader touches it — and returns to
// the pool here, closing the forward→backward lifetime gap the planner's
// liveness analysis identifies.
func (e *Executor) prepareStashes() error {
	e.StashBytes = 0
	inj := e.opts.Faults
	cdc := e.codec()
	if e.store != nil {
		// Every page from the previous step is dead: rewind the spill file.
		e.store.BeginStep()
	}
	async := e.asyncDecode()
	pooled := e.pool != nil
	probe := pooled && e.probeSparsity
	if probe {
		clear(e.sparsities)
	}
	var mem *memAccum
	if e.tel != nil {
		mem = &memAccum{byTech: map[string]*telemetry.TechBytes{}}
	}
	for _, n := range e.G.Nodes {
		out := e.outs[n.ID]
		if probe && n.Kind() == layers.ReLU {
			// Capture the Figure 14 probe before the output can recycle.
			e.sparsities[n.Name] = out.Sparsity()
		}
		if e.opts.Encodings != nil {
			if as := e.opts.Encodings.ByNode[n.ID]; as != nil {
				if err := inj.FailEncode(n.Name); err != nil {
					e.Robust.EncodeFailures++
					e.met.injEncode.Inc()
					return err
				}
				var enc *encoding.EncodedStash
				var fellBack bool
				var err error
				if pooled {
					// Rebuild into the node's persistent container.
					enc = e.encSlots[n.ID]
					if enc == nil {
						enc = &encoding.EncodedStash{}
						e.encSlots[n.ID] = enc
					}
					fellBack, err = cdc.EncodeStashAdaptiveInto(enc, as, out)
				} else {
					enc, fellBack, err = cdc.EncodeStashAdaptive(as, out)
				}
				if err != nil {
					return fmt.Errorf("train: stash %q: %w", n.Name, err)
				}
				if fellBack {
					e.Robust.SSDCFallbacks++
					e.met.ssdcFallbacks.Inc()
				}
				if err := inj.Alloc(n.Name, enc.Bytes()); err != nil {
					e.Robust.AllocFailures++
					e.met.injAlloc.Inc()
					return err
				}
				if err := inj.FailDecode(n.Name); err != nil {
					e.Robust.DecodeFailures++
					e.met.injDecode.Inc()
					return err
				}
				if e.integrity() {
					enc.Seal()
				}
				inj.CorruptStash(n.Name, enc)
				e.StashBytes += enc.Bytes()
				mem.add(enc.Tech.String(), out.Bytes(), enc.Bytes())
				// The encoded form now carries the forward→backward gap;
				// the raw output is dead.
				e.recycle(out)
				if e.store != nil {
					if err := e.storePut(n.ID, n.Name, enc); err != nil {
						return err
					}
				}
				if async {
					// Defer the (fetch-then-)decode: the backward pass starts
					// it one layer before the consumer needs it. Under pooling
					// the decode target is allocated here, serially, and
					// ownership transfers to the future until wait().
					var dst *tensor.Tensor
					if pooled {
						dst = e.alloc(enc.Shape)
					}
					f := &e.futSlots[n.ID]
					f.arm(enc, e.store, n.ID, n.Name, e.tel, cdc, dst)
					e.futures[n.ID] = f
					e.nFutures++
					continue
				}
				if e.store != nil {
					// Synchronous (fault-injected) path: fetch straight back
					// so read-side spill faults surface here, attributed to
					// this node, before the decode that would detect in-RAM
					// corruption.
					if enc, err = e.storeFetch(n.ID, n.Name); err != nil {
						return err
					}
				}
				var dec *tensor.Tensor
				if pooled {
					dec = e.alloc(enc.Shape)
					err = cdc.DecodeInto(dec, enc)
				} else {
					dec, err = cdc.Decode(enc)
				}
				if err != nil {
					e.noteStashErr(err)
					return fmt.Errorf("train: stash %q: %w", n.Name, err)
				}
				e.stash[n.ID] = dec
				continue
			}
		}
		if e.opts.Mode == DelayedReduced && stashedForBackward(e, n) {
			q := e.alloc(out.Shape)
			copy(q.Data, out.Data)
			floatenc.QuantizeSlice(e.opts.Format, q.Data)
			held := e.opts.Format.PackedBytes(len(q.Data))
			e.StashBytes += held
			mem.add("DPR", out.Bytes(), held)
			e.stash[n.ID] = q
			// Backward reads the quantized copy; the exact output is dead.
			e.recycle(out)
			continue
		}
		if e.store != nil && stashedForBackward(e, n) {
			// A stash with no encoding assignment (plain-FP32 run, or an
			// analysis gap) still lives in the tiered store when a budget is
			// set: dense-pack it at FP32 — an exact container — so it can
			// spill as a GSTP page like any encoded stash and the budget
			// covers every byte held across the forward→backward gap.
			var enc *encoding.EncodedStash
			if pooled {
				enc = e.encSlots[n.ID]
				if enc == nil {
					enc = &encoding.EncodedStash{}
					e.encSlots[n.ID] = enc
				}
				cdc.EncodeDenseInto(enc, floatenc.FP32, out)
			} else {
				enc = cdc.EncodeDense(floatenc.FP32, out)
			}
			if e.integrity() {
				enc.Seal()
			}
			inj.CorruptStash(n.Name, enc)
			e.StashBytes += enc.Bytes()
			mem.add("FP32", out.Bytes(), enc.Bytes())
			e.recycle(out)
			if err := e.storePut(n.ID, n.Name, enc); err != nil {
				return err
			}
			if async {
				var dst *tensor.Tensor
				if pooled {
					dst = e.alloc(enc.Shape)
				}
				f := &e.futSlots[n.ID]
				f.arm(enc, e.store, n.ID, n.Name, e.tel, cdc, dst)
				e.futures[n.ID] = f
				e.nFutures++
				continue
			}
			enc, err := e.storeFetch(n.ID, n.Name)
			if err != nil {
				return err
			}
			var dec *tensor.Tensor
			if pooled {
				dec = e.alloc(enc.Shape)
				err = cdc.DecodeInto(dec, enc)
			} else {
				dec, err = cdc.Decode(enc)
			}
			if err != nil {
				e.noteStashErr(err)
				return fmt.Errorf("train: stash %q: %w", n.Name, err)
			}
			e.stash[n.ID] = dec
			continue
		}
		if stashedForBackward(e, n) {
			e.StashBytes += out.Bytes()
			mem.add("FP32", out.Bytes(), out.Bytes())
		}
		e.stash[n.ID] = out
	}
	if mem != nil {
		e.tel.RecordMemSample(mem.sample(e.stepCount))
		e.met.stashHeld.Observe(mem.held)
	}
	return nil
}

// memAccum accumulates one step's stash-memory sample while stashes build.
// The nil accumulator (uninstrumented run) discards everything.
type memAccum struct {
	raw, held int64
	byTech    map[string]*telemetry.TechBytes
}

func (m *memAccum) add(tech string, raw, held int64) {
	if m == nil {
		return
	}
	m.raw += raw
	m.held += held
	tb := m.byTech[tech]
	if tb == nil {
		tb = &telemetry.TechBytes{Tech: tech}
		m.byTech[tech] = tb
	}
	tb.RawBytes += raw
	tb.HeldBytes += held
}

// sample freezes the accumulator into a MemSample with deterministically
// ordered technique rows.
func (m *memAccum) sample(step int) telemetry.MemSample {
	sm := telemetry.MemSample{Step: step, RawBytes: m.raw, HeldBytes: m.held}
	techs := make([]string, 0, len(m.byTech))
	for t := range m.byTech {
		techs = append(techs, t)
	}
	sort.Strings(techs)
	for _, t := range techs {
		sm.ByTech = append(sm.ByTech, *m.byTech[t])
	}
	return sm
}

// storePut hands one encoded stash to the tiered store, folding injected
// spill-write failures (the ENOSPC transient) into the robustness counters.
func (e *Executor) storePut(id int, name string, enc *encoding.EncodedStash) error {
	err := e.store.Put(id, enc)
	if err == nil {
		return nil
	}
	if errors.Is(err, faults.ErrInjected) {
		e.Robust.SpillWriteFailures++
		e.met.spillWriteErr.Inc()
	}
	return fmt.Errorf("train: stash %q: %w", name, err)
}

// storeFetch pulls one stash back from the tiered store on the synchronous
// (fault-injected) path, classifying detected page corruption.
func (e *Executor) storeFetch(id int, name string) (*encoding.EncodedStash, error) {
	enc, err := e.store.Fetch(id)
	if err != nil {
		e.noteStashErr(err)
		return nil, fmt.Errorf("train: stash %q: %w", name, err)
	}
	return enc, nil
}

// noteStashErr folds a stash-pipeline failure into the robustness counters:
// CRC-detected in-RAM corruption, or a corrupt/torn spill page caught by
// the GSTP page CRC and bounded parser.
func (e *Executor) noteStashErr(err error) {
	switch {
	case errors.Is(err, encoding.ErrCorruptStash):
		e.Robust.CRCFailures++
		e.noteCorrupt(err)
	case errors.Is(err, stashstore.ErrCorruptPage):
		e.Robust.SpillReadFailures++
		e.met.spillReadErr.Inc()
	}
}

// noteCorrupt mirrors one CRC detection into the sink, recording whether
// the error localized the corruption to a chunk.
func (e *Executor) noteCorrupt(err error) {
	e.met.crcDetected.Inc()
	if chunk, ok := encoding.CorruptedChunk(err); ok {
		e.met.chunkLocated.Inc()
		e.tel.Instant("train", "crc-chunk-located", telemetry.Int("chunk", int64(chunk)))
	}
}

// stashedForBackward reports whether n's output has a backward reader,
// under the encoding analysis when present.
func stashedForBackward(e *Executor, n *graph.Node) bool {
	if e.opts.Encodings != nil {
		return e.opts.Encodings.OutputStashed(n)
	}
	return graph.OutputStashed(n)
}

// releaseStash recycles node id's backward view once its last reader is
// done. The ledger makes the stash-aliases-output case safe: the shared
// tensor is returned exactly once.
func (e *Executor) releaseStash(id int) {
	if t := e.stash[id]; t != nil {
		e.stash[id] = nil
		e.recycle(t)
	}
}

// Backward runs the backward pass, accumulating parameter gradients. The
// only failures are stash-pipeline ones (injected faults, detected
// corruption); without an injector and with well-formed encodings it
// always returns nil.
//
// With async decode active, each layer's backward kernels overlap the
// decode of the next layer's stashes: the loop prefetches layer l-1's
// futures onto the worker pool before running layer l's compute, then
// blocks only when a consumer actually needs a tensor still in flight.
// Gradients are identical to the synchronous pass — decode is bit-exact
// regardless of scheduling — which the parallel executor tests pin.
//
// Under pooling this is also where the planner's liveness plays out at
// runtime: each stashed tensor recycles when its read count (bwdReads,
// from raw operator needs) drains to zero, each input gradient recycles
// the moment it merges into an existing accumulator, and each node's
// incoming gradient recycles after that node's kernels consume it.
func (e *Executor) Backward() error {
	defer e.drainFutures()
	encSpan := e.stepSpan.Begin("train", "encode-stashes")
	var t0 time.Time
	if e.tel != nil {
		t0 = time.Now()
	}
	err := e.prepareStashes()
	if e.tel != nil {
		e.met.encodeNS.Observe(time.Since(t0).Nanoseconds())
	}
	encSpan.End()
	if err != nil {
		return err
	}
	pool := e.codec().WorkerPool()
	copy(e.bwdLeft, e.bwdReads)
	clear(e.gradOf)
	nodes := e.G.Nodes
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		if n.Kind() == layers.Input {
			continue
		}
		dOut := e.gradOf[n.ID]
		if dOut == nil {
			if len(n.Consumers()) == 0 {
				// Loss node: its Backward seeds the gradient itself.
				dOut = e.alloc(n.OutShape)
			} else {
				// Dead branch (no gradient flowed): skip.
				continue
			}
		}
		if i > 0 {
			e.prefetch(pool, nodes[i-1])
		}
		needs := n.Op.Needs()
		ins := e.insBuf[:0]
		dIns := e.dInsBuf[:0]
		for _, in := range n.Inputs {
			dIns = append(dIns, e.alloc(in.OutShape))
			var t *tensor.Tensor
			if needs.X {
				t, err = e.stashOf(pool, in.ID)
				if err != nil {
					return e.failBackward(err)
				}
			}
			ins = append(ins, t)
		}
		e.insBuf, e.dInsBuf = ins, dIns
		e.bwdCtx = layers.BwdCtx{
			Params: e.params[n.ID], DOut: dOut,
			DIn: dIns, DParams: e.grads[n.ID], Aux: e.aux[n.ID],
		}
		if needs.X {
			e.bwdCtx.In = ins
		}
		if needs.Y {
			t, err := e.stashOf(pool, n.ID)
			if err != nil {
				return e.failBackward(err)
			}
			e.bwdCtx.Out = t
		}
		n.Op.Backward(&e.bwdCtx)
		for j, in := range n.Inputs {
			if g := e.gradOf[in.ID]; g == nil {
				e.gradOf[in.ID] = dIns[j]
			} else {
				g.Add(dIns[j])
				e.recycle(dIns[j]) // merged: this branch's gradient is dead
			}
		}
		// Drain this node's stash reads and release what went dead.
		if needs.X {
			for _, in := range n.Inputs {
				e.bwdLeft[in.ID]--
				if e.bwdLeft[in.ID] == 0 {
					e.releaseStash(in.ID)
				}
			}
		}
		if needs.Y {
			e.bwdLeft[n.ID]--
			if e.bwdLeft[n.ID] == 0 {
				e.releaseStash(n.ID)
			}
		}
		// The incoming gradient was fully consumed by this node's kernels.
		e.gradOf[n.ID] = nil
		e.recycle(dOut)
	}
	return nil
}

// prefetch starts the async decodes node n's backward will need, without
// waiting on them.
func (e *Executor) prefetch(p *parallel.Pool, n *graph.Node) {
	if n.Kind() == layers.Input || e.nFutures == 0 {
		return
	}
	needs := n.Op.Needs()
	if needs.X {
		for _, in := range n.Inputs {
			if f := e.futures[in.ID]; f != nil {
				f.start(p)
			}
		}
	}
	if needs.Y {
		if f := e.futures[n.ID]; f != nil {
			f.start(p)
		}
	}
}

// stashOf resolves the backward view of a node's output, waiting on (and
// caching) the async decode when one is in flight.
func (e *Executor) stashOf(p *parallel.Pool, id int) (*tensor.Tensor, error) {
	if f := e.futures[id]; f != nil {
		if e.tel != nil {
			// Overlap accounting: a hit means the prefetched decode already
			// resolved when its consumer arrived; a miss means the consumer
			// had to wait on (or itself start) the decode.
			if f.started.Load() && f.settled.Load() {
				e.met.overlapHits.Inc()
			} else {
				e.met.overlapMiss.Inc()
			}
		}
		out, err := f.wait(p)
		e.futures[id] = nil
		e.nFutures--
		if err != nil {
			return nil, fmt.Errorf("train: stash %q: %w", f.node, err)
		}
		e.stash[id] = out
		return out, nil
	}
	return e.stash[id], nil
}

// failBackward preserves TryStep's no-partial-update contract when a stash
// failure surfaces mid-pass: backward kernels accumulate into e.grads
// directly, so every gradient is zeroed before the error propagates.
// Pooled tensors stranded by the abort are swept at the next Forward.
func (e *Executor) failBackward(err error) error {
	e.noteStashErr(err)
	e.met.gradZero.Inc()
	e.tel.Instant("train", "grad-zeroing", telemetry.Str("cause", err.Error()))
	for _, gs := range e.grads {
		for _, g := range gs {
			g.Zero()
		}
	}
	return err
}

// drainFutures settles every armed future: started decodes are waited for
// (so no goroutine from this pass outlives Backward), and futures that
// never launched have their WaitGroup count balanced. Runs on the
// executor's goroutine only; idempotent, and re-run at Forward in case a
// failed step returned before Backward's deferred drain was registered.
func (e *Executor) drainFutures() {
	if e.nFutures == 0 {
		return
	}
	for i, f := range e.futures {
		if f == nil {
			continue
		}
		if f.started.Load() {
			f.wg.Wait()
		} else {
			f.wg.Done() // balance arm(); the decode never launched
		}
		e.futures[i] = nil
	}
	e.nFutures = 0
}

// ClipGradNorm rescales all parameter gradients so their global L2 norm is
// at most maxNorm, the standard guard against the exploding gradients that
// plain SGD on deeper ReLU stacks invites. The squared norm accumulates in
// graph-node order: float addition is not associative, so a map-order walk
// would make the clip scale (and therefore the updated weights) vary
// run-to-run — and diverge across the replicas of a ReplicaGroup, which
// rely on every replica computing the identical update from the identical
// merged gradient.
func (e *Executor) ClipGradNorm(maxNorm float64) {
	var sumSq float64
	for _, n := range e.G.Nodes {
		for _, g := range e.grads[n.ID] {
			for _, v := range g.Data {
				sumSq += float64(v) * float64(v)
			}
		}
	}
	norm := math.Sqrt(sumSq)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := float32(maxNorm / norm)
	for _, n := range e.G.Nodes {
		for _, g := range e.grads[n.ID] {
			g.Scale(scale)
		}
	}
}

// SGD applies one momentum-SGD update and zeroes the gradients.
func (e *Executor) SGD(lr, momentum, weightDecay float32) {
	for id, ps := range e.params {
		gs, ms := e.grads[id], e.moms[id]
		for i, p := range ps {
			g, m := gs[i], ms[i]
			for k := range p.Data {
				grad := g.Data[k] + weightDecay*p.Data[k]
				m.Data[k] = momentum*m.Data[k] + grad
				p.Data[k] -= lr * m.Data[k]
			}
			g.Zero()
		}
	}
}

// lossNode returns the graph's softmax cross-entropy node. It panics if
// there is none: the trainer only drives classification graphs.
func (e *Executor) lossNode() *graph.Node {
	for _, n := range e.G.Nodes {
		if n.Kind() == layers.SoftmaxXent {
			return n
		}
	}
	panic("train: graph has no SoftmaxXent loss node")
}

// TryStep runs forward, backward and an SGD update on one minibatch,
// returning the minibatch loss, top-1 error count and any stash-pipeline
// error. On error no parameter update has been applied: failures surface in
// stash preparation (before gradients accumulate) or, under async decode,
// mid-backward — where every partially accumulated gradient is zeroed
// before the error returns. Batch-norm running statistics and the dropout
// RNG have still advanced — restore a Snapshot before retrying for a
// bit-exact replay. Fault-injected runs must use TryStep
// (or RunRecoverable, which wraps it with snapshot/retry/backoff).
func (e *Executor) TryStep(input *tensor.Tensor, labels []int, lr float32) (loss float64, errs int, err error) {
	if cerr := e.ctxErr(); cerr != nil {
		return 0, 0, fmt.Errorf("train: step not started: %w", cerr)
	}
	e.stepCount++
	instrumented := e.tel != nil
	var start time.Time
	if instrumented {
		start = time.Now()
		e.stepSpan = e.tel.Begin("train", "step", telemetry.Int("step", int64(e.stepCount)))
		defer func() {
			e.met.steps.Inc()
			if err != nil {
				e.met.stepFailures.Inc()
			}
			e.met.stepNS.Observe(time.Since(start).Nanoseconds())
			e.stepSpan.End()
			e.stepSpan = nil
		}()
	}

	fwd := e.stepSpan.Begin("train", "forward")
	var t time.Time
	if instrumented {
		t = time.Now()
	}
	e.Forward(input, labels, true)
	if instrumented {
		e.met.forwardNS.Observe(time.Since(t).Nanoseconds())
	}
	fwd.End()
	loss, errs = e.lossOf(labels)
	if cerr := e.ctxErr(); cerr != nil {
		// Aborting between forward and backward: no gradient has
		// accumulated and no update has been applied. Pooled tensors the
		// forward checked out are swept at the next Forward or by
		// ReleaseBuffers.
		return loss, errs, fmt.Errorf("train: step canceled after forward: %w", cerr)
	}

	bwd := e.stepSpan.Begin("train", "backward")
	if instrumented {
		t = time.Now()
	}
	berr := e.Backward()
	if instrumented {
		e.met.backwardNS.Observe(time.Since(t).Nanoseconds())
	}
	bwd.End()
	if berr != nil {
		return loss, errs, berr
	}
	if cerr := e.ctxErr(); cerr != nil {
		// Aborting between backward and SGD: gradients have accumulated
		// but the parameters are untouched — zero the gradients so the
		// no-partial-update contract holds for a later retry or resume.
		for _, gs := range e.grads {
			for _, g := range gs {
				g.Zero()
			}
		}
		return loss, errs, fmt.Errorf("train: step canceled after backward: %w", cerr)
	}

	sgd := e.stepSpan.Begin("train", "sgd")
	if instrumented {
		t = time.Now()
	}
	e.ClipGradNorm(5)
	e.SGD(lr, 0.9, 1e-4)
	if instrumented {
		e.met.sgdNS.Observe(time.Since(t).Nanoseconds())
	}
	sgd.End()
	return loss, errs, nil
}

// Telemetry returns the sink the executor reports to (nil when
// uninstrumented).
func (e *Executor) Telemetry() *telemetry.Sink { return e.tel }

// BufferPool returns the buffer pool this executor recycles through (nil
// on the allocate-always path).
func (e *Executor) BufferPool() *bufpool.Pool { return e.pool }

// SetSparsityProbe arms (or disarms) per-step capture of ReLU output
// sparsities during stash preparation — required for ReLUSparsities to
// work under pooling, where outputs recycle before a post-step probe could
// read them. The trainer arms it when RunConfig.ProbeSparsity is set. The
// capture costs one pass over each ReLU output per step, so it is off by
// default.
func (e *Executor) SetSparsityProbe(on bool) { e.probeSparsity = on }

// Step runs forward, backward and an SGD update on one minibatch and
// returns the minibatch loss and top-1 error count. Without fault
// injection the stash pipeline cannot fail; Step panics if it somehow does
// (use TryStep to handle failures).
func (e *Executor) Step(input *tensor.Tensor, labels []int, lr float32) (loss float64, errors int) {
	loss, errors, err := e.TryStep(input, labels, lr)
	if err != nil {
		panic(fmt.Sprintf("train: Step under fault injection must use TryStep: %v", err))
	}
	return loss, errors
}

// ReLUSparsities returns the zero fraction of every ReLU output from the
// latest forward pass, keyed by node name — the Figure 14 probe. Under
// pooling the outputs recycle during the step, so the values come from the
// capture armed by SetSparsityProbe (taken during the latest training
// step's stash preparation); with the probe off, the pooled result is
// empty.
func (e *Executor) ReLUSparsities() map[string]float64 {
	m := map[string]float64{}
	if e.pool != nil {
		for k, v := range e.sparsities {
			m[k] = v
		}
		return m
	}
	for _, n := range e.G.Nodes {
		if n.Kind() == layers.ReLU {
			if out := e.outs[n.ID]; out != nil {
				m[n.Name] = out.Sparsity()
			}
		}
	}
	return m
}
