// Package entropy implements the byte-oriented lossless stage behind the
// Entropy stash technique: a zero-run-length transform (DNN activation
// payloads are dominated by zero bytes) followed by a canonical Huffman
// code over the resulting 257-symbol alphabet. Blocks are self-contained —
// each carries its own code-length table — so the chunked codec can
// compress and decompress chunks independently and in parallel, and a
// block's bytes depend only on its input, never on worker count.
//
// The coder is deterministic end to end: histogram ties break by symbol
// index, code lengths are limited to maxCodeLen by count scaling, and the
// canonical assignment orders by (length, symbol). Decode is fully
// bounds-checked and returns typed errors on malformed input; it never
// panics, whatever the bytes.
package entropy

import (
	"errors"
	"fmt"
)

const (
	// numSymbols is the ZRL alphabet: byte literals 0-255 plus the
	// zero-run symbol.
	numSymbols = 257
	// symZeroRun announces a run of zero bytes; its code is followed by 8
	// raw bits holding the run length (1-255).
	symZeroRun = 256
	// maxRun caps a single zero-run symbol's length at what 8 raw bits
	// express; longer runs split.
	maxRun = 255
	// maxCodeLen bounds Huffman code lengths so the decoder's canonical
	// tables stay small and a hostile table cannot demand absurd codes.
	maxCodeLen = 15
	// tableBytes is the nibble-packed code-length table leading every
	// block: 257 4-bit lengths.
	tableBytes = (numSymbols + 1) / 2

	// TableBytes is the fixed per-block table overhead, exported for
	// planning-time size models.
	TableBytes = tableBytes
)

// ErrCorrupt reports a malformed or truncated entropy block.
var ErrCorrupt = errors.New("entropy: corrupt block")

// MaxEncodedLen bounds Encode's output for n input bytes: the table, plus
// in the worst case every byte as a literal at the maximum code length.
func MaxEncodedLen(n int) int {
	return tableBytes + (n*maxCodeLen+7)/8 + 8
}

// Encode appends the compressed block for src to dst and returns the
// extended slice. The block is self-contained; Decode needs only the block
// bytes and the original length. Encoding an empty src appends nothing.
func Encode(dst []byte, src []byte) []byte {
	if len(src) == 0 {
		return dst
	}
	// ZRL symbol stream, materialized as (symbol, runLen) pairs only
	// implicitly: one pass builds the histogram, a second emits codes.
	var hist [numSymbols]int64
	zrl(src, func(sym int, _ byte) {
		hist[sym]++
	})
	lens := buildCodeLens(&hist)
	codes := canonicalCodes(&lens)

	// Nibble-packed code-length table.
	base := len(dst)
	dst = append(dst, make([]byte, tableBytes)...)
	for s := 0; s < numSymbols; s++ {
		dst[base+s/2] |= byte(lens[s]) << (uint(s%2) * 4)
	}

	// MSB-first bitstream.
	w := bitWriter{dst: dst}
	zrl(src, func(sym int, run byte) {
		w.write(uint32(codes[sym]), int(lens[sym]))
		if sym == symZeroRun {
			w.write(uint32(run), 8)
		}
	})
	return w.flush()
}

// Decode decompresses a block produced by Encode into dst, which must have
// exactly the original input's length. It returns an error wrapping
// ErrCorrupt when the block is malformed, truncated, or disagrees with
// len(dst).
func Decode(dst []byte, src []byte) error {
	if len(dst) == 0 {
		if len(src) != 0 {
			return fmt.Errorf("%w: %d bytes for empty output", ErrCorrupt, len(src))
		}
		return nil
	}
	if len(src) < tableBytes {
		return fmt.Errorf("%w: %d bytes, need %d for the code table", ErrCorrupt, len(src), tableBytes)
	}
	var lens [numSymbols]uint8
	for s := 0; s < numSymbols; s++ {
		lens[s] = src[s/2] >> (uint(s%2) * 4) & 0xf
	}
	dec, err := newDecoder(&lens)
	if err != nil {
		return err
	}
	r := bitReader{src: src[tableBytes:]}
	out := 0
	for out < len(dst) {
		sym, err := dec.read(&r)
		if err != nil {
			return err
		}
		if sym == symZeroRun {
			run, err := r.bits(8)
			if err != nil {
				return err
			}
			if run == 0 || out+int(run) > len(dst) {
				return fmt.Errorf("%w: zero run of %d at offset %d overflows %d", ErrCorrupt, run, out, len(dst))
			}
			for i := 0; i < int(run); i++ {
				dst[out] = 0
				out++
			}
			continue
		}
		dst[out] = byte(sym)
		out++
	}
	return nil
}

// zrl runs the zero-run-length transform over src, calling emit once per
// symbol: nonzero bytes as literals, zero runs (split at maxRun) as
// (symZeroRun, length) pairs.
func zrl(src []byte, emit func(sym int, run byte)) {
	for i := 0; i < len(src); {
		if src[i] != 0 {
			emit(int(src[i]), 0)
			i++
			continue
		}
		run := 1
		for i+run < len(src) && run < maxRun && src[i+run] == 0 {
			run++
		}
		emit(symZeroRun, byte(run))
		i += run
	}
}

// buildCodeLens computes length-limited Huffman code lengths for the
// histogram. Ties break by symbol index (the package-merge-free route:
// plain Huffman with a deterministic heap, retried with scaled counts
// until the longest code fits maxCodeLen — scaling terminates because
// all-equal counts yield a balanced tree of depth 9 < maxCodeLen).
func buildCodeLens(hist *[numSymbols]int64) [numSymbols]uint8 {
	var lens [numSymbols]uint8
	counts := *hist
	for {
		lens = huffmanLens(&counts)
		maxLen := uint8(0)
		for _, l := range lens {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= maxCodeLen {
			return lens
		}
		for s := range counts {
			if counts[s] > 0 {
				counts[s] = (counts[s] + 1) / 2
			}
		}
	}
}

// huffNode is one tree node: leaves carry their symbol, internal nodes -1.
type huffNode struct {
	weight      int64
	order       int // creation order: deterministic tie-break after weight
	sym         int
	left, right int // child node indices, -1 for leaves
}

// huffmanLens builds one Huffman tree over the nonzero-count symbols and
// returns the per-symbol code lengths (0 for absent symbols). A single
// present symbol gets length 1.
func huffmanLens(counts *[numSymbols]int64) [numSymbols]uint8 {
	var lens [numSymbols]uint8
	nodes := make([]huffNode, 0, 2*numSymbols)
	heap := make([]int, 0, numSymbols)
	push := func(n int) {
		heap = append(heap, n)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if !nodeLess(nodes, heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() int {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && nodeLess(nodes, heap[l], heap[small]) {
				small = l
			}
			if r < len(heap) && nodeLess(nodes, heap[r], heap[small]) {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	for s := 0; s < numSymbols; s++ {
		if counts[s] > 0 {
			nodes = append(nodes, huffNode{weight: counts[s], order: len(nodes), sym: s, left: -1, right: -1})
			push(len(nodes) - 1)
		}
	}
	if len(heap) == 0 {
		return lens
	}
	if len(heap) == 1 {
		lens[nodes[heap[0]].sym] = 1
		return lens
	}
	for len(heap) > 1 {
		a, b := pop(), pop()
		nodes = append(nodes, huffNode{
			weight: nodes[a].weight + nodes[b].weight,
			order:  len(nodes), sym: -1, left: a, right: b,
		})
		push(len(nodes) - 1)
	}
	// Iterative depth walk from the root.
	type frame struct{ node, depth int }
	stack := []frame{{heap[0], 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := nodes[f.node]
		if n.left < 0 {
			lens[n.sym] = uint8(f.depth)
			continue
		}
		stack = append(stack, frame{n.left, f.depth + 1}, frame{n.right, f.depth + 1})
	}
	return lens
}

// nodeLess orders heap nodes by (weight, creation order) — fully
// deterministic regardless of map/heap iteration quirks.
func nodeLess(nodes []huffNode, a, b int) bool {
	if nodes[a].weight != nodes[b].weight {
		return nodes[a].weight < nodes[b].weight
	}
	return nodes[a].order < nodes[b].order
}

// canonicalCodes assigns canonical codes from lengths: symbols sorted by
// (length, symbol index), codes counted up MSB-first per length.
func canonicalCodes(lens *[numSymbols]uint8) [numSymbols]uint16 {
	var codes [numSymbols]uint16
	var count [maxCodeLen + 1]int
	for _, l := range lens {
		count[l]++
	}
	count[0] = 0
	code := uint16(0)
	var next [maxCodeLen + 1]uint16
	for l := 1; l <= maxCodeLen; l++ {
		code = (code + uint16(count[l-1])) << 1
		next[l] = code
	}
	for s := 0; s < numSymbols; s++ {
		if l := lens[s]; l > 0 {
			codes[s] = next[l]
			next[l]++
		}
	}
	return codes
}

// decoder holds the canonical decode tables: per length, the first code,
// the symbol-table offset, and the count; syms lists symbols in canonical
// order.
type decoder struct {
	first  [maxCodeLen + 1]uint32
	offset [maxCodeLen + 1]int
	count  [maxCodeLen + 1]int
	syms   []uint16
}

func newDecoder(lens *[numSymbols]uint8) (*decoder, error) {
	d := &decoder{}
	for _, l := range lens {
		d.count[l]++
	}
	d.count[0] = 0
	// Kraft check: a decodable table must not oversubscribe the code space
	// (an incomplete table is tolerated; unused codes surface as ErrCorrupt
	// at read time).
	kraft := uint64(0)
	for l := 1; l <= maxCodeLen; l++ {
		kraft += uint64(d.count[l]) << uint(maxCodeLen-l)
	}
	if kraft > 1<<maxCodeLen {
		return nil, fmt.Errorf("%w: oversubscribed code table", ErrCorrupt)
	}
	code := uint32(0)
	off := 0
	for l := 1; l <= maxCodeLen; l++ {
		code = (code + uint32(d.count[l-1])) << 1
		d.first[l] = code
		d.offset[l] = off
		off += d.count[l]
	}
	d.syms = make([]uint16, off)
	var next [maxCodeLen + 1]int
	for s := 0; s < numSymbols; s++ {
		if l := lens[s]; l > 0 {
			d.syms[d.offset[l]+next[l]] = uint16(s)
			next[l]++
		}
	}
	if len(d.syms) == 0 {
		return nil, fmt.Errorf("%w: empty code table", ErrCorrupt)
	}
	return d, nil
}

// read decodes one symbol, lengthening the code bit by bit until it lands
// in a populated length class.
func (d *decoder) read(r *bitReader) (int, error) {
	code := uint32(0)
	for l := 1; l <= maxCodeLen; l++ {
		b, err := r.bits(1)
		if err != nil {
			return 0, err
		}
		code = code<<1 | b
		if d.count[l] > 0 && code >= d.first[l] && code-d.first[l] < uint32(d.count[l]) {
			return int(d.syms[d.offset[l]+int(code-d.first[l])]), nil
		}
	}
	return 0, fmt.Errorf("%w: code exceeds %d bits", ErrCorrupt, maxCodeLen)
}

// bitWriter accumulates MSB-first bits into bytes appended to dst.
type bitWriter struct {
	dst  []byte
	acc  uint64
	nacc int
}

func (w *bitWriter) write(v uint32, n int) {
	w.acc = w.acc<<uint(n) | uint64(v)
	w.nacc += n
	for w.nacc >= 8 {
		w.nacc -= 8
		w.dst = append(w.dst, byte(w.acc>>uint(w.nacc)))
	}
}

// flush pads the final partial byte with zero bits and returns dst.
func (w *bitWriter) flush() []byte {
	if w.nacc > 0 {
		w.dst = append(w.dst, byte(w.acc<<uint(8-w.nacc)))
		w.nacc = 0
	}
	return w.dst
}

// bitReader serves MSB-first bits from src, erroring (never panicking) on
// exhaustion.
type bitReader struct {
	src  []byte
	off  int
	acc  uint64
	nacc int
}

func (r *bitReader) bits(n int) (uint32, error) {
	for r.nacc < n {
		if r.off >= len(r.src) {
			return 0, fmt.Errorf("%w: truncated bitstream", ErrCorrupt)
		}
		r.acc = r.acc<<8 | uint64(r.src[r.off])
		r.off++
		r.nacc += 8
	}
	r.nacc -= n
	return uint32(r.acc >> uint(r.nacc) & (1<<uint(n) - 1)), nil
}
