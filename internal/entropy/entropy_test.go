package entropy

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// testInputs builds byte payloads across the profiles the stage sees:
// all-zero, dense random, sparse (zero-dominated, the DNN activation
// profile), single bytes, and run-boundary lengths.
func testInputs() [][]byte {
	r := rand.New(rand.NewSource(1))
	sparse := func(n int, density float64) []byte {
		b := make([]byte, n)
		for i := range b {
			if r.Float64() < density {
				b[i] = byte(1 + r.Intn(255))
			}
		}
		return b
	}
	inputs := [][]byte{
		nil,
		{},
		{0},
		{7},
		{0, 0, 0},
		bytes.Repeat([]byte{0}, 255),
		bytes.Repeat([]byte{0}, 256),
		bytes.Repeat([]byte{0}, 1024),
		bytes.Repeat([]byte{0xab}, 300),
	}
	for _, n := range []int{1, 2, 63, 64, 255, 256, 257, 1000, 4096} {
		inputs = append(inputs, sparse(n, 0.25), sparse(n, 0.9))
	}
	full := make([]byte, 512)
	for i := range full {
		full[i] = byte(i)
	}
	return append(inputs, full)
}

func TestRoundTrip(t *testing.T) {
	for i, src := range testInputs() {
		blk := Encode(nil, src)
		if len(blk) > MaxEncodedLen(len(src)) {
			t.Fatalf("input %d: block %d bytes exceeds MaxEncodedLen %d", i, len(blk), MaxEncodedLen(len(src)))
		}
		got := make([]byte, len(src))
		for j := range got {
			got[j] = 99 // stale bytes must be overwritten
		}
		if err := Decode(got, blk); err != nil {
			t.Fatalf("input %d: decode: %v", i, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("input %d: round-trip mismatch", i)
		}
	}
}

// TestDeterministic pins that encoding is a pure function of the input —
// the property the chunked codec's parallel==serial wall rests on.
func TestDeterministic(t *testing.T) {
	for i, src := range testInputs() {
		a := Encode(nil, src)
		b := Encode(nil, src)
		if !bytes.Equal(a, b) {
			t.Fatalf("input %d: two encodes differ", i)
		}
	}
}

// TestEncodeAppends verifies Encode appends to its dst argument, the
// contract the chunk concatenation path uses.
func TestEncodeAppends(t *testing.T) {
	prefix := []byte{1, 2, 3}
	src := []byte{0, 0, 5, 0}
	blk := Encode(append([]byte(nil), prefix...), src)
	if !bytes.Equal(blk[:3], prefix) {
		t.Fatalf("prefix clobbered: %v", blk[:3])
	}
	got := make([]byte, len(src))
	if err := Decode(got, blk[3:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("round-trip through appended block mismatch")
	}
}

// TestCompressesSparse pins the point of the stage: zero-dominated
// payloads must come out smaller than they went in.
func TestCompressesSparse(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	src := make([]byte, 64<<10)
	for i := range src {
		if r.Float64() < 0.1 {
			src[i] = byte(1 + r.Intn(255))
		}
	}
	blk := Encode(nil, src)
	if len(blk) >= len(src)/2 {
		t.Fatalf("90%%-zero payload compressed %d -> %d, want < half", len(src), len(blk))
	}
}

// TestDecodeNeverPanics drives truncations and single-byte corruptions of
// valid blocks, plus garbage, through Decode: every outcome must be a nil
// error with wrong bytes or an error wrapping ErrCorrupt — never a panic.
func TestDecodeNeverPanics(t *testing.T) {
	src := []byte{0, 0, 0, 9, 8, 0, 0, 7, 0, 0, 0, 0, 1, 2, 3}
	blk := Encode(nil, src)
	check := func(b []byte) {
		dst := make([]byte, len(src))
		if err := Decode(dst, b); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("error %v does not wrap ErrCorrupt", err)
		}
	}
	for n := 0; n <= len(blk); n++ {
		check(blk[:n])
	}
	for i := 0; i < len(blk); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), blk...)
			mut[i] ^= 1 << bit
			check(mut)
		}
	}
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		junk := make([]byte, r.Intn(400))
		r.Read(junk)
		check(junk)
	}
	// Length disagreement: a block decoded at the wrong output size.
	short := make([]byte, len(src)-3)
	if err := Decode(short, blk); err != nil && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short-output error %v does not wrap ErrCorrupt", err)
	}
	if err := Decode(make([]byte, 0), blk); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty-output with nonempty block: %v, want ErrCorrupt", err)
	}
}

// FuzzEntropyRoundTrip holds the two invariants under arbitrary inputs:
// Encode∘Decode is the identity, and Decode of mutated blocks never
// panics.
func FuzzEntropyRoundTrip(f *testing.F) {
	for _, src := range testInputs() {
		f.Add(src, false)
	}
	f.Fuzz(func(t *testing.T, data []byte, asBlock bool) {
		if asBlock {
			// Treat the input as a hostile block.
			dst := make([]byte, len(data)%512)
			if err := Decode(dst, data); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		blk := Encode(nil, data)
		if len(blk) > MaxEncodedLen(len(data)) {
			t.Fatalf("block %d bytes exceeds MaxEncodedLen %d", len(blk), MaxEncodedLen(len(data)))
		}
		got := make([]byte, len(data))
		if err := Decode(got, blk); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round-trip mismatch")
		}
	})
}
