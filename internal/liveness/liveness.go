// Package liveness performs the static lifetime analysis Gist's Schedule
// Builder hands to the memory allocator. It walks the forward+backward
// timeline of an execution graph and emits one Buffer per allocation with
// its class, size in bytes, and the inclusive step interval during which it
// must be resident.
//
// Under a Gist analysis, a stashed feature map's single long FP32 lifetime
// is split into the paper's three regions (Figure 2): an FP32 buffer live
// only through the forward use, an encoded buffer live across the temporal
// gap, and (for SSDC/DPR) a decoded FP32 staging buffer live only through
// the backward use.
package liveness

import (
	"fmt"

	"gist/internal/encoding"
	"gist/internal/graph"
	"gist/internal/layers"
)

// Buffer is one allocation with its lifetime on the timeline.
type Buffer struct {
	Name  string
	Class graph.BufferClass
	Bytes int64
	// Start and End are the inclusive timeline steps during which the
	// buffer must be resident.
	Start, End int
	// Node is the producing node (nil for none).
	Node *graph.Node
	// NoShare excludes the buffer from memory sharing — used by the
	// paper's "investigation baseline" for stashed feature maps.
	NoShare bool
}

// Overlaps reports whether two lifetimes intersect.
func (b *Buffer) Overlaps(o *Buffer) bool {
	return b.Start <= o.End && o.Start <= b.End
}

// String renders the buffer for debugging.
func (b *Buffer) String() string {
	return fmt.Sprintf("%s[%s %dB @%d..%d]", b.Name, b.Class, b.Bytes, b.Start, b.End)
}

// Options selects which buffer classes the analysis emits and which
// transforms apply.
type Options struct {
	// Analysis is the Gist encoding analysis; nil means baseline (no
	// encodings). Inplace is honored from the analysis config.
	Analysis *encoding.Analysis
	// IncludeWeights adds weights and weight gradients (Figure 1's full
	// breakdown; the paper's CNTK baseline excludes them).
	IncludeWeights bool
	// IncludeWorkspace adds cuDNN-style per-layer workspace buffers.
	IncludeWorkspace bool
	// WorkspaceBytes sizes the workspace of a node; nil uses
	// MemoryOptimalWorkspace.
	WorkspaceBytes func(n *graph.Node) int64
	// ElideDecoded drops decoded FP32 staging buffers — the paper's
	// "optimized software" scenario where cuDNN consumes encoded data.
	ElideDecoded bool
	// NoShareStashed marks stashed feature maps NoShare — the paper's
	// "investigation baseline".
	NoShareStashed bool
}

// MemoryOptimalWorkspace models cuDNN's memory-optimal convolution
// algorithms: implicit GEMM needs only a small tile buffer, modeled as 1/8
// of the layer output capped at 4 MB. Non-convolution layers need none.
// This is the paper's baseline configuration.
func MemoryOptimalWorkspace(n *graph.Node) int64 {
	if n.Kind() != layers.Conv {
		return 0
	}
	ws := n.OutShape.Bytes() / 8
	const cap4MB = 4 << 20
	if ws > cap4MB {
		ws = cap4MB
	}
	// The memory-optimal configuration picks the smallest-workspace
	// algorithm available, so it can never need more than the im2col
	// lowering does.
	if perf := PerformanceOptimalWorkspace(n); perf < ws {
		ws = perf
	}
	return ws
}

// PerformanceOptimalWorkspace models cuDNN's performance-optimal choice:
// the im2col/GEMM lowering, whose workspace is the column matrix of one
// image (inC*kh*kw x oh*ow FP32 values) — the other end of the
// performance/workspace tradeoff the paper describes in Section II.
func PerformanceOptimalWorkspace(n *graph.Node) int64 {
	conv, ok := n.Op.(*layers.Conv2D)
	if !ok {
		return 0
	}
	gemm := *conv
	gemm.Algo = layers.AlgoIm2col
	return gemm.WorkspaceBytes(n.Inputs[0].OutShape)
}

// Analyze emits the buffer set of the graph under the given options.
func Analyze(g *graph.Graph, tl *graph.Timeline, opts Options) []*Buffer {
	var bufs []*Buffer
	end := tl.Len() - 1

	stashed := func(n *graph.Node) bool {
		if opts.Analysis != nil {
			return opts.Analysis.OutputStashed(n)
		}
		return graph.OutputStashed(n)
	}
	// Backward use steps under effective needs.
	bwdUses := func(n *graph.Node) (first, last int) {
		first, last = -1, -1
		add := func(s int) {
			if first == -1 || s < first {
				first = s
			}
			if s > last {
				last = s
			}
		}
		needsY := n.Op.Needs().Y
		if opts.Analysis != nil {
			needsY = opts.Analysis.EffectiveNeeds(n).Y
		}
		if needsY {
			add(tl.BackwardStep(n))
		}
		for _, c := range n.Consumers() {
			needsX := c.Op.Needs().X
			if opts.Analysis != nil {
				needsX = opts.Analysis.EffectiveNeeds(c).X
			}
			if needsX {
				add(tl.BackwardStep(c))
			}
		}
		return first, last
	}

	inplaceInto := map[int]bool{}    // producer node IDs whose output buffer is elided
	gradInplaceInto := map[int]int{} // input node ID -> ReLU node ID whose grad buffer hosts it
	gradExtendedTo := map[int]int{}  // ReLU node ID -> merged grad end step
	if opts.Analysis != nil && opts.Analysis.Config.Inplace {
		for _, n := range g.Nodes {
			if graph.InplaceEligible(n) {
				inplaceInto[n.Inputs[0].ID] = true
			}
			// ReLU backward is read-once/write-once on gradients too: dX
			// can be computed in dY's buffer when the input's gradient has
			// no other producer (single consumer).
			if n.Kind() == layers.ReLU && len(n.Inputs) == 1 {
				in := n.Inputs[0]
				if len(in.Consumers()) == 1 && in.Kind() != layers.Input {
					gradInplaceInto[in.ID] = n.ID
					gradExtendedTo[n.ID] = tl.BackwardStep(in)
				}
			}
		}
	}

	for _, n := range g.Nodes {
		fp32 := n.OutShape.Bytes()
		fwd := tl.ForwardStep(n)
		lastFwdUse := graph.LastForwardUse(tl, n)

		var as *encoding.Assignment
		if opts.Analysis != nil {
			as = opts.Analysis.ByNode[n.ID]
		}

		if inplaceInto[n.ID] {
			// The single consumer (a ReLU) computes in this buffer; the
			// consumer's buffer entry covers the merged lifetime.
		} else {
			start := fwd
			if opts.Analysis != nil && opts.Analysis.Config.Inplace &&
				graph.InplaceEligible(n) {
				start = tl.ForwardStep(n.Inputs[0])
			}
			switch {
			case as != nil:
				// Encoded stash: FP32 form lives only through the forward
				// use (it is now immediately consumed data).
				bufs = append(bufs, &Buffer{
					Name: n.Name + ".out", Class: graph.ClassImmediateFmap,
					Bytes: fp32, Start: start, End: lastFwdUse, Node: n,
				})
				first, last := bwdUses(n)
				encEnd := last // Binarize: consumed in place through the last use
				if as.NeedsDecode {
					encEnd = first // freed once decoded
				}
				if encEnd < lastFwdUse {
					// Binarize rewires all backward readers; the mask is
					// still read by the ReLU's own backward step.
					encEnd = tl.BackwardStep(n)
				}
				bufs = append(bufs, &Buffer{
					Name: n.Name + ".enc", Class: graph.ClassEncoded,
					Bytes: as.EncodedBytes, Start: lastFwdUse, End: encEnd, Node: n,
				})
				if as.NeedsDecode && !opts.ElideDecoded {
					bufs = append(bufs, &Buffer{
						Name: n.Name + ".dec", Class: graph.ClassDecoded,
						Bytes: fp32, Start: first, End: last, Node: n,
					})
				}
			case stashed(n):
				_, last := bwdUses(n)
				bufs = append(bufs, &Buffer{
					Name: n.Name + ".out", Class: graph.ClassStashedFmap,
					Bytes: fp32, Start: start, End: last, Node: n,
					NoShare: opts.NoShareStashed,
				})
			default:
				bufs = append(bufs, &Buffer{
					Name: n.Name + ".out", Class: graph.ClassImmediateFmap,
					Bytes: fp32, Start: start, End: lastFwdUse, Node: n,
				})
			}
		}

		// Binarize pool-side argmax maps live from the pool's forward to
		// its backward step.
		if opts.Analysis != nil {
			if mapBytes, ok := opts.Analysis.PoolMaps[n.ID]; ok {
				bufs = append(bufs, &Buffer{
					Name: n.Name + ".argmax", Class: graph.ClassEncoded,
					Bytes: mapBytes, Start: fwd, End: tl.BackwardStep(n), Node: n,
				})
			}
		}

		// Gradient maps: the gradient w.r.t. n's output, produced by the
		// earliest consumer backward (or the loss itself) and consumed by
		// n's own backward step. The graph input needs no gradient. A ReLU
		// consumer computing its backward inplace hosts this gradient in
		// its own gradient buffer (gradInplaceInto); a ReLU whose backward
		// is inplace extends its gradient buffer to the merged lifetime.
		if n.Kind() != layers.Input {
			if _, merged := gradInplaceInto[n.ID]; !merged {
				end := tl.BackwardStep(n)
				if ext, ok := gradExtendedTo[n.ID]; ok && ext > end {
					end = ext
				}
				bufs = append(bufs, &Buffer{
					Name: n.Name + ".grad", Class: graph.ClassGradientMap,
					Bytes: fp32, Start: graph.GradProducedStep(tl, n),
					End: end, Node: n,
				})
			}
		}

		if opts.IncludeWeights {
			for i, p := range n.ParamShapes {
				bufs = append(bufs, &Buffer{
					Name: fmt.Sprintf("%s.w%d", n.Name, i), Class: graph.ClassWeights,
					Bytes: p.Bytes(), Start: 0, End: end, Node: n,
				})
				bufs = append(bufs, &Buffer{
					Name: fmt.Sprintf("%s.dw%d", n.Name, i), Class: graph.ClassWeightGrads,
					Bytes: p.Bytes(), Start: tl.BackwardStep(n), End: end, Node: n,
				})
			}
		}

		if opts.IncludeWorkspace {
			wsFn := opts.WorkspaceBytes
			if wsFn == nil {
				wsFn = MemoryOptimalWorkspace
			}
			if ws := wsFn(n); ws > 0 {
				bufs = append(bufs, &Buffer{
					Name: n.Name + ".ws.fwd", Class: graph.ClassWorkspace,
					Bytes: ws, Start: fwd, End: fwd, Node: n,
				})
				bufs = append(bufs, &Buffer{
					Name: n.Name + ".ws.bwd", Class: graph.ClassWorkspace,
					Bytes: ws, Start: tl.BackwardStep(n), End: tl.BackwardStep(n), Node: n,
				})
			}
		}
	}
	return bufs
}

// TotalByClass sums buffer bytes per class (raw, before any sharing).
func TotalByClass(bufs []*Buffer) map[graph.BufferClass]int64 {
	m := map[graph.BufferClass]int64{}
	for _, b := range bufs {
		m[b.Class] += b.Bytes
	}
	return m
}
