package liveness

import (
	"testing"

	"gist/internal/graph"
	"gist/internal/layers"
)

// Table-driven edge cases for the liveness analysis itself: graphs at the
// degenerate ends of the spectrum (no nodes, one node, everything consumed
// immediately) must come back with consistent buffer sets and lifetimes,
// because the pool prewarm and the memory planner both run unconditionally
// over whatever graph a trainer is built on.
func TestAnalyzeEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		build func() *graph.Graph
		check func(t *testing.T, g *graph.Graph, tl *graph.Timeline, bufs []*Buffer)
	}{
		{
			name:  "empty graph",
			build: graph.New,
			check: func(t *testing.T, g *graph.Graph, tl *graph.Timeline, bufs []*Buffer) {
				if len(bufs) != 0 {
					t.Fatalf("empty graph produced %d buffers", len(bufs))
				}
				if tl.Len() != 0 {
					t.Fatalf("empty timeline has %d steps", tl.Len())
				}
			},
		},
		{
			name: "single input node",
			build: func() *graph.Graph {
				g := graph.New()
				g.MustAdd("input", layers.NewInput(4, 3, 8, 8))
				return g
			},
			check: func(t *testing.T, g *graph.Graph, tl *graph.Timeline, bufs []*Buffer) {
				if len(bufs) != 1 {
					t.Fatalf("got %d buffers, want just input.out", len(bufs))
				}
				b := bufs[0]
				if b.Name != "input.out" || b.Class != graph.ClassImmediateFmap {
					t.Fatalf("buffer = %v", b)
				}
				if b.Bytes != 4*3*8*8*4 {
					t.Fatalf("input.out bytes = %d", b.Bytes)
				}
				// No consumers: the buffer lives only at its own forward step.
				if in := g.Lookup("input"); b.Start != tl.ForwardStep(in) || b.End != tl.ForwardStep(in) {
					t.Fatalf("input.out lifetime [%d,%d]", b.Start, b.End)
				}
				// An input has no gradient map.
				if find(bufs, "input.grad") != nil {
					t.Fatal("input node must not get a gradient buffer")
				}
			},
		},
		{
			name: "every fmap immediately consumed",
			build: func() *graph.Graph {
				// AvgPool's backward needs neither its input nor its
				// output, so nothing here survives past its consumer's
				// forward step: the whole graph is stash-free.
				g := graph.New()
				in := g.MustAdd("input", layers.NewInput(2, 3, 8, 8))
				p1 := g.MustAdd("pool1", layers.NewAvgPool(2, 2, 0), in)
				g.MustAdd("pool2", layers.NewAvgPool(2, 2, 0), p1)
				return g
			},
			check: func(t *testing.T, g *graph.Graph, tl *graph.Timeline, bufs []*Buffer) {
				for _, b := range bufs {
					if b.Class == graph.ClassStashedFmap {
						t.Errorf("%s is stashed; this graph stashes nothing", b.Name)
					}
				}
				// Each output dies at its consumer's forward step — the
				// shortest possible fmap lifetime.
				p1 := g.Lookup("pool1")
				out := find(bufs, "input.out")
				if out == nil || out.End != tl.ForwardStep(p1) {
					t.Fatalf("input.out = %v, want death at pool1's forward step %d",
						out, tl.ForwardStep(p1))
				}
				p2 := g.Lookup("pool2")
				mid := find(bufs, "pool1.out")
				if mid == nil || mid.Class != graph.ClassImmediateFmap || mid.End != tl.ForwardStep(p2) {
					t.Fatalf("pool1.out = %v", mid)
				}
				// The sink's output still spans to its own backward step
				// (the loss gradient is seeded there).
				last := find(bufs, "pool2.out")
				if last == nil || last.End < tl.ForwardStep(p2) {
					t.Fatalf("pool2.out = %v", last)
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := c.build()
			tl := graph.BuildTimeline(g)
			bufs := Analyze(g, tl, Options{})
			// Invariants that hold for every graph, degenerate or not.
			for _, b := range bufs {
				if b.Start > b.End {
					t.Errorf("%s has inverted lifetime [%d,%d]", b.Name, b.Start, b.End)
				}
				if b.Bytes < 0 {
					t.Errorf("%s has negative size %d", b.Name, b.Bytes)
				}
			}
			c.check(t, g, tl, bufs)
		})
	}
}
