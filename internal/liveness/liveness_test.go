package liveness

import (
	"strings"
	"testing"

	"gist/internal/encoding"
	"gist/internal/floatenc"
	"gist/internal/graph"
	"gist/internal/layers"
)

// testGraph: input -> conv1 -> relu1 -> pool1 -> conv2 -> relu2 -> fc -> loss
func testGraph(t *testing.T) (*graph.Graph, *graph.Timeline) {
	t.Helper()
	g := graph.New()
	in := g.MustAdd("input", layers.NewInput(2, 3, 16, 16))
	c1 := g.MustAdd("conv1", layers.NewConv2D(8, 3, 1, 1), in)
	r1 := g.MustAdd("relu1", layers.NewReLU(), c1)
	p1 := g.MustAdd("pool1", layers.NewMaxPool(2, 2, 0), r1)
	c2 := g.MustAdd("conv2", layers.NewConv2D(8, 3, 1, 1), p1)
	r2 := g.MustAdd("relu2", layers.NewReLU(), c2)
	fc := g.MustAdd("fc", layers.NewFC(10), r2)
	g.MustAdd("loss", layers.NewSoftmaxXent(), fc)
	return g, graph.BuildTimeline(g)
}

func find(bufs []*Buffer, name string) *Buffer {
	for _, b := range bufs {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func TestBaselineBufferClasses(t *testing.T) {
	g, tl := testGraph(t)
	bufs := Analyze(g, tl, Options{})
	// relu1 output is stashed (own Y need + pool X need).
	b := find(bufs, "relu1.out")
	if b == nil || b.Class != graph.ClassStashedFmap {
		t.Fatalf("relu1.out = %v", b)
	}
	// Its lifetime runs from its forward step to its own backward step.
	r1 := g.Lookup("relu1")
	if b.Start != tl.ForwardStep(r1) || b.End != tl.BackwardStep(r1) {
		t.Errorf("relu1.out lifetime [%d,%d]", b.Start, b.End)
	}
	// conv1 output is immediately consumed (ReLU backward needs only Y).
	c := find(bufs, "conv1.out")
	if c == nil || c.Class != graph.ClassImmediateFmap {
		t.Fatalf("conv1.out = %v", c)
	}
	if c.End != tl.ForwardStep(r1) {
		t.Errorf("conv1.out should die at relu1's forward step, got %d", c.End)
	}
	// Gradient maps exist for non-input nodes only.
	if find(bufs, "input.grad") != nil {
		t.Error("input must have no gradient map")
	}
	gm := find(bufs, "conv2.grad")
	if gm == nil || gm.Class != graph.ClassGradientMap {
		t.Fatalf("conv2.grad = %v", gm)
	}
	// Gradient is produced by relu2's backward and consumed by conv2's.
	c2, r2 := g.Lookup("conv2"), g.Lookup("relu2")
	if gm.Start != tl.BackwardStep(r2) || gm.End != tl.BackwardStep(c2) {
		t.Errorf("conv2.grad lifetime [%d,%d]", gm.Start, gm.End)
	}
}

func TestBaselineExcludesWeightsByDefault(t *testing.T) {
	g, tl := testGraph(t)
	bufs := Analyze(g, tl, Options{})
	for _, b := range bufs {
		if b.Class == graph.ClassWeights || b.Class == graph.ClassWeightGrads ||
			b.Class == graph.ClassWorkspace {
			t.Fatalf("baseline must exclude %v", b)
		}
	}
}

func TestWeightsAndWorkspaceIncluded(t *testing.T) {
	g, tl := testGraph(t)
	bufs := Analyze(g, tl, Options{IncludeWeights: true, IncludeWorkspace: true})
	w := find(bufs, "conv1.w0")
	if w == nil || w.Class != graph.ClassWeights || w.Start != 0 || w.End != tl.Len()-1 {
		t.Fatalf("conv1.w0 = %v", w)
	}
	dw := find(bufs, "conv1.dw0")
	if dw == nil || dw.Start != tl.BackwardStep(g.Lookup("conv1")) {
		t.Fatalf("conv1.dw0 = %v", dw)
	}
	ws := find(bufs, "conv1.ws.fwd")
	if ws == nil || ws.Class != graph.ClassWorkspace || ws.Start != ws.End {
		t.Fatalf("conv1.ws.fwd = %v", ws)
	}
	if find(bufs, "relu1.ws.fwd") != nil {
		t.Error("non-conv layers have no workspace")
	}
}

func TestGistSplitsStashedLifetime(t *testing.T) {
	g, tl := testGraph(t)
	a := encoding.Analyze(g, encoding.Lossless())
	bufs := Analyze(g, tl, Options{Analysis: a})

	// relu1 (Binarize): FP32 out now immediate, encoded mask spans the gap.
	r1 := g.Lookup("relu1")
	out := find(bufs, "relu1.out")
	if out == nil || out.Class != graph.ClassImmediateFmap {
		t.Fatalf("relu1.out = %v", out)
	}
	enc := find(bufs, "relu1.enc")
	if enc == nil || enc.Class != graph.ClassEncoded {
		t.Fatalf("relu1.enc = %v", enc)
	}
	if enc.Start != graph.LastForwardUse(tl, r1) || enc.End != tl.BackwardStep(r1) {
		t.Errorf("relu1.enc lifetime [%d,%d]", enc.Start, enc.End)
	}
	if enc.Bytes >= out.Bytes/30 {
		t.Errorf("Binarize mask too large: %d vs %d", enc.Bytes, out.Bytes)
	}
	// Binarize has no decoded staging buffer.
	if find(bufs, "relu1.dec") != nil {
		t.Error("Binarize must not create a decoded buffer")
	}
	// pool1 argmax map spans pool fwd..bwd.
	p1 := g.Lookup("pool1")
	am := find(bufs, "pool1.argmax")
	if am == nil || am.Start != tl.ForwardStep(p1) || am.End != tl.BackwardStep(p1) {
		t.Fatalf("pool1.argmax = %v", am)
	}

	// pool1 (SSDC, feeds conv2): encoded + decoded buffers.
	encP := find(bufs, "pool1.enc")
	if encP == nil {
		t.Fatal("pool1.enc missing")
	}
	decP := find(bufs, "pool1.dec")
	if decP == nil || decP.Class != graph.ClassDecoded {
		t.Fatalf("pool1.dec = %v", decP)
	}
	// Decode happens at conv2's backward step (pool1's only backward reader).
	c2 := g.Lookup("conv2")
	if decP.Start != tl.BackwardStep(c2) || decP.End != tl.BackwardStep(c2) {
		t.Errorf("pool1.dec lifetime [%d,%d]", decP.Start, decP.End)
	}
	// Encoded buffer is freed at the decode step.
	if encP.End != tl.BackwardStep(c2) {
		t.Errorf("pool1.enc end = %d", encP.End)
	}
}

func TestElideDecoded(t *testing.T) {
	g, tl := testGraph(t)
	a := encoding.Analyze(g, encoding.Lossless())
	bufs := Analyze(g, tl, Options{Analysis: a, ElideDecoded: true})
	for _, b := range bufs {
		if b.Class == graph.ClassDecoded {
			t.Fatalf("decoded buffer survived eliding: %v", b)
		}
	}
}

func TestInplaceElidesProducerBuffer(t *testing.T) {
	g, tl := testGraph(t)
	a := encoding.Analyze(g, encoding.Lossless())
	bufs := Analyze(g, tl, Options{Analysis: a})
	// conv1.out is elided (relu1 computes in place); relu1.out starts at
	// conv1's forward step instead.
	if find(bufs, "conv1.out") != nil {
		t.Fatal("conv1.out should be elided by inplace ReLU")
	}
	r1out := find(bufs, "relu1.out")
	if r1out.Start != tl.ForwardStep(g.Lookup("conv1")) {
		t.Errorf("relu1.out should start at conv1's step, got %d", r1out.Start)
	}
}

func TestNoShareStashed(t *testing.T) {
	g, tl := testGraph(t)
	bufs := Analyze(g, tl, Options{NoShareStashed: true})
	sawStash := false
	for _, b := range bufs {
		if b.Class == graph.ClassStashedFmap {
			sawStash = true
			if !b.NoShare {
				t.Fatalf("stashed buffer not NoShare: %v", b)
			}
		} else if b.NoShare {
			t.Fatalf("non-stashed buffer marked NoShare: %v", b)
		}
	}
	if !sawStash {
		t.Fatal("no stashed buffers found")
	}
}

func TestTotalByClass(t *testing.T) {
	g, tl := testGraph(t)
	bufs := Analyze(g, tl, Options{})
	m := TotalByClass(bufs)
	if m[graph.ClassStashedFmap] == 0 || m[graph.ClassGradientMap] == 0 {
		t.Fatalf("breakdown = %v", m)
	}
	var total int64
	for _, b := range bufs {
		total += b.Bytes
	}
	var sum int64
	for _, v := range m {
		sum += v
	}
	if sum != total {
		t.Fatalf("class sums %d != total %d", sum, total)
	}
}

func TestBufferStringAndOverlap(t *testing.T) {
	a := &Buffer{Name: "a", Class: graph.ClassStashedFmap, Bytes: 4, Start: 0, End: 5}
	b := &Buffer{Name: "b", Class: graph.ClassGradientMap, Bytes: 4, Start: 5, End: 9}
	c := &Buffer{Name: "c", Class: graph.ClassGradientMap, Bytes: 4, Start: 6, End: 9}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("inclusive endpoints must overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint intervals must not overlap")
	}
	if !strings.Contains(a.String(), "stashed") {
		t.Error("String should include the class")
	}
}

func TestMemoryOptimalWorkspace(t *testing.T) {
	g := graph.New()
	in := g.MustAdd("in", layers.NewInput(64, 3, 224, 224))
	conv := g.MustAdd("conv", layers.NewConv2D(64, 3, 1, 1), in)
	relu := g.MustAdd("relu", layers.NewReLU(), conv)
	if MemoryOptimalWorkspace(relu) != 0 {
		t.Error("relu workspace must be 0")
	}
	ws := MemoryOptimalWorkspace(conv)
	if ws <= 0 || ws > 4<<20 {
		t.Errorf("conv workspace = %d, want (0, 4MB]", ws)
	}
}

func TestEncodedMuchSmallerThanBaselineStash(t *testing.T) {
	// Summed over the whole graph, Gist's encoded stashes must be a small
	// fraction of the baseline stashed bytes.
	g, tl := testGraph(t)
	base := TotalByClass(Analyze(g, tl, Options{}))
	a := encoding.Analyze(g, encoding.LossyLossless(floatenc.FP16))
	enc := TotalByClass(Analyze(g, tl, Options{Analysis: a}))
	if enc[graph.ClassEncoded] >= base[graph.ClassStashedFmap]/2 {
		t.Errorf("encoded %d should be < half of stashed %d",
			enc[graph.ClassEncoded], base[graph.ClassStashedFmap])
	}
}
