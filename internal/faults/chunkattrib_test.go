package faults_test

import (
	"fmt"
	"testing"

	"gist/internal/encoding"
	"gist/internal/faults"
	"gist/internal/floatenc"
	"gist/internal/parallel"
	"gist/internal/tensor"
)

// TestInjectedFaultTripsExactlyItsChunk closes the loop between the fault
// injector and the chunked codec: the injector flips one random payload
// bit, the event log names the bit, and Verify's chunk-level attribution
// matches ChunkOfBit — corruption is localized to exactly the chunk that
// holds the flipped bit.
func TestInjectedFaultTripsExactlyItsChunk(t *testing.T) {
	rng := tensor.NewRNG(11)
	c := encoding.Codec{Pool: parallel.NewPool(2), ChunkElems: 768}
	inj := faults.New(faults.Config{Seed: 99, BitFlipRate: 1})
	assignments := []*encoding.Assignment{
		{Tech: encoding.Binarize, Format: floatenc.FP32},
		{Tech: encoding.SSDC, Format: floatenc.FP32},
		{Tech: encoding.SSDC, Format: floatenc.FP16},
		{Tech: encoding.DPR, Format: floatenc.FP16},
		{Tech: encoding.DPR, Format: floatenc.FP10},
		{Tech: encoding.DPR, Format: floatenc.FP8},
	}
	for _, as := range assignments {
		tt := tensor.New(4096)
		for i := range tt.Data {
			if rng.Float64() >= 0.8 {
				tt.Data[i] = rng.Float32()*2 - 1
			}
		}
		enc, _, err := c.EncodeStashAdaptive(as, tt)
		if err != nil {
			t.Fatalf("%v/%s: encode: %v", as.Tech, as.Format, err)
		}
		c.Seal(enc)
		before := len(inj.Events())
		if !inj.CorruptStash("probe", enc) {
			t.Fatalf("%v/%s: injector did not fire at rate 1", as.Tech, as.Format)
		}
		events := inj.Events()
		if len(events) != before+1 {
			t.Fatalf("%v/%s: %d new events, want 1", as.Tech, as.Format, len(events)-before)
		}
		var bit, bits int
		if _, err := fmt.Sscanf(events[len(events)-1].Detail, "payload bit %d of %d", &bit, &bits); err != nil {
			t.Fatalf("%v/%s: unparseable event detail %q", as.Tech, as.Format, events[len(events)-1].Detail)
		}
		if bits != enc.PayloadBits() {
			t.Fatalf("%v/%s: event says %d payload bits, stash has %d", as.Tech, as.Format, bits, enc.PayloadBits())
		}
		err = c.Verify(enc)
		if err == nil {
			t.Fatalf("%v/%s: injected flip of bit %d undetected", as.Tech, as.Format, bit)
		}
		chunk, ok := encoding.CorruptedChunk(err)
		if !ok {
			t.Fatalf("%v/%s: no chunk localization for injected flip: %v", as.Tech, as.Format, err)
		}
		if want := enc.ChunkOfBit(bit); chunk != want {
			t.Fatalf("%v/%s: injected flip of bit %d attributed to chunk %d, want %d",
				as.Tech, as.Format, bit, chunk, want)
		}
	}
}
